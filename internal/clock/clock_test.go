package clock

import "testing"

func TestGlobalCounterSemantics(t *testing.T) {
	tb := New(ModeGlobal, 4)
	if tb.Mode() != ModeGlobal {
		t.Fatalf("mode = %v", tb.Mode())
	}
	if got := tb.Begin(); got != InitialStamp {
		t.Fatalf("begin = %d", got)
	}
	// All partitions read the same counter.
	if tb.Now(0) != tb.Now(3) {
		t.Fatal("global counter differs across partitions")
	}
	// A commit over several partitions ticks once and shares the version.
	wv := make([]uint64, 2)
	tb.Commit([]uint32{0, 2}, wv)
	if wv[0] != InitialStamp+1 || wv[1] != InitialStamp+1 {
		t.Fatalf("wv = %v", wv)
	}
	if tb.Ceiling() != InitialStamp+1 {
		t.Fatalf("ceiling = %d", tb.Ceiling())
	}
	s := tb.Stats()
	if s.SharedRMWs != 1 || len(s.Parts) != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPartitionLocalSemantics(t *testing.T) {
	tb := New(ModePartitionLocal, 3)
	if tb.Mode() != ModePartitionLocal {
		t.Fatalf("mode = %v", tb.Mode())
	}
	ep0 := tb.Epoch()

	// Single-partition commits tick only their own counter and leave the
	// epoch alone.
	wv := make([]uint64, 1)
	tb.Commit([]uint32{1}, wv)
	if wv[0] != InitialStamp+1 {
		t.Fatalf("wv = %d", wv[0])
	}
	if tb.Now(1) != InitialStamp+1 || tb.Now(0) != InitialStamp || tb.Now(2) != InitialStamp {
		t.Fatalf("counters = %d %d %d", tb.Now(0), tb.Now(1), tb.Now(2))
	}
	if tb.Epoch() != ep0 {
		t.Fatal("single-partition commit bumped the epoch")
	}

	// A cross-partition commit ticks each written counter and the epoch.
	wv2 := make([]uint64, 2)
	tb.Commit([]uint32{0, 1}, wv2)
	if wv2[0] != InitialStamp+1 || wv2[1] != InitialStamp+2 {
		t.Fatalf("wv2 = %v", wv2)
	}
	if tb.Epoch() != ep0+1 {
		t.Fatalf("epoch = %d, want %d", tb.Epoch(), ep0+1)
	}

	s := tb.Stats()
	if s.CrossCommits != 1 || s.SharedRMWs != 1 || s.LocalTicks != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Parts[1] != InitialStamp+2 {
		t.Fatalf("parts = %v", s.Parts)
	}
}

func TestResizeRebasesAtCeiling(t *testing.T) {
	tb := New(ModePartitionLocal, 2)
	wv := make([]uint64, 1)
	for i := 0; i < 5; i++ {
		tb.Commit([]uint32{1}, wv)
	}
	ceil := tb.Ceiling()
	if ceil != InitialStamp+5 {
		t.Fatalf("ceiling = %d", ceil)
	}
	tb.Resize(4)
	for p := uint32(0); p < 4; p++ {
		if got := tb.Now(p); got != ceil {
			t.Fatalf("partition %d counter %d after resize, want %d", p, got, ceil)
		}
	}
	// Shrinking must not move time backwards either.
	tb.Resize(1)
	if got := tb.Now(0); got < ceil {
		t.Fatalf("counter %d after shrink, want >= %d", got, ceil)
	}
}

func TestAdvanceIsMonotoneEverywhere(t *testing.T) {
	for _, mode := range []Mode{ModeGlobal, ModePartitionLocal} {
		tb := New(mode, 3)
		tb.Advance(1 << 30)
		for p := uint32(0); p < 3; p++ {
			if got := tb.Now(p); got != InitialStamp+1<<30 {
				t.Fatalf("%v: partition %d = %d", mode, p, got)
			}
		}
		if tb.Ceiling() < 1<<30 {
			t.Fatalf("%v: ceiling = %d", mode, tb.Ceiling())
		}
	}
}

func TestMigrationFloor(t *testing.T) {
	tb := NewAt(ModePartitionLocal, 2, 42)
	if tb.Now(0) != 42 || tb.Now(1) != 42 {
		t.Fatalf("counters = %d %d", tb.Now(0), tb.Now(1))
	}
	// The start-at-InitialStamp invariant is asserted where counters are
	// created: a floor below it must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("floor 0 accepted")
		}
	}()
	NewAt(ModeGlobal, 1, 0)
}

func TestModeString(t *testing.T) {
	if ModeGlobal.String() != "global" || ModePartitionLocal.String() != "partition-local" {
		t.Fatal("mode strings")
	}
}

// TestSnapshotPinningProperties checks the two contracts snapshot
// pinning (core's SnapshotAtomic) relies on, for both time bases:
// a Begin/Now sample covers every version already published (coverage),
// and no sequence of commits ever moves a counter below a pin taken
// earlier (monotonicity) — any commit after the pin lands strictly above
// it.
func TestSnapshotPinningProperties(t *testing.T) {
	for _, mode := range []Mode{ModeGlobal, ModePartitionLocal} {
		tb := New(mode, 3)
		wv := make([]uint64, 1)
		// Publish some versions in partition 1.
		for i := 0; i < 5; i++ {
			tb.Commit([]uint32{1}, wv)
		}
		published := wv[0]
		// Coverage: a pin taken now is at or above everything published.
		pin := tb.Now(1)
		if pin < published {
			t.Fatalf("%v: pin %d below published version %d", mode, pin, published)
		}
		if g := tb.Begin(); mode == ModeGlobal && g < published {
			t.Fatalf("%v: Begin %d below published version %d", mode, g, published)
		}
		// Monotonicity: every later commit is strictly above the pin, and
		// the pinned timeline never reads below the pin afterwards.
		for i := 0; i < 5; i++ {
			tb.Commit([]uint32{1}, wv)
			if wv[0] <= pin {
				t.Fatalf("%v: commit version %d not above pin %d", mode, wv[0], pin)
			}
			if now := tb.Now(1); now < pin {
				t.Fatalf("%v: timeline moved backwards: %d < pin %d", mode, now, pin)
			}
		}
		// Commits in other partitions never disturb the pinned timeline's
		// floor either.
		tb.Commit([]uint32{2}, wv)
		if now := tb.Now(1); now < pin {
			t.Fatalf("%v: foreign commit dragged timeline below pin", mode)
		}
	}
}
