// Package clock owns commit time for the STM engine. It defines the
// TimeBase interface — the versioning time base behind conflict
// detection — and two implementations:
//
//   - GlobalCounter: one global atomic counter, TL2/TinySTM style. Every
//     update commit performs one shared read-modify-write, which caps
//     commit throughput on many-core machines but keeps the protocol
//     trivially serializable on a single timeline.
//
//   - PartitionLocal: one commit counter per partition plus a cheap
//     global epoch. An update transaction that stays inside a single
//     partition (the common case after automatic partitioning) ticks only
//     that partition's counter, so disjoint partitions never contend on
//     commit time. Cross-partition update commits tick every written
//     partition's counter and bump the shared epoch; readers spanning
//     partitions re-anchor their per-partition snapshots (validating
//     their read set) whenever any counter they depend on has moved, so
//     all transactions remain serializable. The epoch gives those readers
//     an O(1) early-out signal that a cross-partition writer committed.
//
// The engine (internal/core) holds exactly one TimeBase and routes every
// timestamp operation — begin snapshots, snapshot extension, write-version
// assignment, stress-test clock jumps — through it. "Who owns time" is
// thereby a per-engine policy that the runtime tuner can switch under
// quiescence instead of a hard-coded global.
//
// # Snapshot pinning
//
// Snapshot read-only transactions (core's SnapshotAtomic) pin the instant
// they read at and reconstruct overwritten values from the multi-version
// store instead of extending. Both time bases support pinning through the
// same two properties, which they must preserve:
//
//   - Coverage: a Begin/Now sample is at or above every version already
//     published in the sampled timeline, so a fresh pin never needs
//     reconstruction for values that predate it.
//   - Monotonicity: counters never move backwards (Commit, Advance,
//     Resize, and mode migration via NewAt all only increase readings),
//     so a pinned snapshot S stays meaningful for the whole transaction:
//     any later commit's version is strictly above S, which is exactly
//     the "orec newer than the snapshot" signal that routes a read to the
//     store.
//
// Under GlobalCounter the pin is the single Begin() sample; under
// PartitionLocal each touched partition is pinned by its own Now(part)
// sample, with the engine's footprint alignment ensuring all pins
// correspond to one common instant.
package clock

import (
	"fmt"
	"sync/atomic"
)

// InitialStamp is the value every commit counter starts at. It must be at
// least 1: a freshly built ownership-record table has every version at 0,
// and the protocol's readability rule is "version ≤ snapshot", so keeping
// all counters (and hence all snapshots) at or above 1 guarantees a fresh
// orec is always readable. This invariant used to live as a comment next
// to the engine's clock initialisation; it is now owned and asserted here
// (see checkFloor), the single place counters are created.
const InitialStamp = 1

// Mode names a TimeBase implementation.
type Mode uint8

const (
	// ModeGlobal is the single shared commit counter (the default; exact
	// TL2/TinySTM behaviour).
	ModeGlobal Mode = iota
	// ModePartitionLocal gives each partition its own commit counter plus
	// a global cross-partition epoch.
	ModePartitionLocal
)

func (m Mode) String() string {
	switch m {
	case ModeGlobal:
		return "global"
	case ModePartitionLocal:
		return "partition-local"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Stats is a momentary reading of a time base, for experiments and the
// tuner. All fields are derived from the counters themselves, so taking a
// snapshot costs no extra bookkeeping on the commit path.
type Stats struct {
	Mode Mode
	// Parts holds each partition counter's current value (one entry, the
	// global counter, in ModeGlobal).
	Parts []uint64
	// Epoch is the cross-partition epoch (ModePartitionLocal) or the
	// global counter reading (ModeGlobal).
	Epoch uint64
	// SharedRMWs counts commit-path read-modify-writes on shared (not
	// partition-local) words: every commit tick in ModeGlobal, only
	// cross-partition epoch bumps in ModePartitionLocal. This is the
	// contention figure the clockscale experiment reports.
	SharedRMWs uint64
	// LocalTicks counts partition-local commit ticks (ModePartitionLocal
	// only; 0 in ModeGlobal).
	LocalTicks uint64
	// CrossCommits counts cross-partition update commits
	// (ModePartitionLocal only).
	CrossCommits uint64
}

// TimeBase is the commit clock abstraction. Resize and the engine's mode
// migration run only under quiescence (no transaction active); every other
// method is safe for concurrent use by transaction and monitor threads.
type TimeBase interface {
	// Mode identifies the implementation.
	Mode() Mode
	// Begin returns the stamp a transaction records when it starts: the
	// global snapshot in ModeGlobal, the current epoch in
	// ModePartitionLocal (per-partition snapshots are then sampled lazily
	// at first touch via Now).
	Begin() uint64
	// Now returns partition part's current commit-counter reading. In
	// ModeGlobal the argument is ignored and the global counter returned.
	Now(part uint32) uint64
	// Commit assigns write versions for one update commit that locked the
	// given partitions (deduplicated), writing version i for partition
	// parts[i] into wv[i] (len(wv) == len(parts) ≥ 1). ModeGlobal ticks
	// the global counter once and hands every partition the same version;
	// ModePartitionLocal bumps the epoch first when the commit spans
	// several partitions and then ticks each partition's own counter (see
	// PartitionLocal.Commit for why the bump must come first). The caller
	// must invoke Commit while holding all write locks and before
	// releasing any of them, so clock state is visible before the new
	// versions are.
	Commit(parts []uint32, wv []uint64)
	// Epoch returns the cross-partition epoch (ModePartitionLocal) or the
	// global counter (ModeGlobal). It is monotone and moves whenever a
	// commit that spans partitions completes, giving multi-partition
	// readers a cheap staleness signal.
	Epoch() uint64
	// Advance adds delta to every counter (and the epoch), preserving
	// monotonicity; stress tests use it to exercise large timestamps.
	Advance(delta uint64)
	// Ceiling returns the maximum reading across all counters. Any version
	// ever written into an orec is ≤ Ceiling, which makes it the floor a
	// successor time base must start from when the engine migrates modes.
	Ceiling() uint64
	// Resize re-bases the time base for nparts partitions, starting every
	// counter — carried-over and new alike — at the current Ceiling, so no
	// partition's timeline ever moves backwards across a plan install.
	// Called only under quiescence, at plan install, when every orec
	// table is rebuilt (versions reset to 0).
	Resize(nparts int)
	// Stats returns a momentary reading (see Stats).
	Stats() Stats
}

// New returns a time base of the given mode covering nparts partitions,
// with all counters starting at InitialStamp.
func New(mode Mode, nparts int) TimeBase {
	return NewAt(mode, nparts, InitialStamp)
}

// NewAt is New with an explicit starting value for every counter. The
// engine uses it when switching modes on a live heap: floor must be at
// least the predecessor's Ceiling so that every version already stored in
// an orec stays at or below every future snapshot. floor below
// InitialStamp would let version-0 (fresh) orecs become unreadable and is
// rejected.
func NewAt(mode Mode, nparts int, floor uint64) TimeBase {
	checkFloor(floor)
	if nparts < 1 {
		nparts = 1
	}
	switch mode {
	case ModePartitionLocal:
		return newPartitionLocal(nparts, floor)
	default:
		g := &GlobalCounter{}
		g.c.Store(floor)
		return g
	}
}

// checkFloor asserts the start-at-InitialStamp rule in the one place
// counters come into existence.
func checkFloor(floor uint64) {
	if floor < InitialStamp {
		panic(fmt.Sprintf("clock: counter floor %d below InitialStamp %d (fresh orecs would be unreadable)",
			floor, InitialStamp))
	}
}

// GlobalCounter is the classic single shared commit counter.
type GlobalCounter struct {
	c atomic.Uint64
}

// Mode returns ModeGlobal.
func (g *GlobalCounter) Mode() Mode { return ModeGlobal }

// Begin returns the global snapshot.
func (g *GlobalCounter) Begin() uint64 { return g.c.Load() }

// Now returns the global counter (part is ignored).
func (g *GlobalCounter) Now(part uint32) uint64 { return g.c.Load() }

// Commit ticks the global counter once; every written partition shares the
// version.
func (g *GlobalCounter) Commit(parts []uint32, wv []uint64) {
	v := g.c.Add(1)
	for i := range wv {
		wv[i] = v
	}
}

// Epoch returns the global counter.
func (g *GlobalCounter) Epoch() uint64 { return g.c.Load() }

// Advance adds delta to the counter.
func (g *GlobalCounter) Advance(delta uint64) { g.c.Add(delta) }

// Ceiling returns the counter.
func (g *GlobalCounter) Ceiling() uint64 { return g.c.Load() }

// Resize is a no-op: one counter serves any number of partitions.
func (g *GlobalCounter) Resize(nparts int) {}

// Stats reports the counter; every commit tick is a shared RMW.
func (g *GlobalCounter) Stats() Stats {
	v := g.c.Load()
	return Stats{
		Mode:       ModeGlobal,
		Parts:      []uint64{v},
		Epoch:      v,
		SharedRMWs: v - InitialStamp,
	}
}

// partCounter is one partition's commit counter, padded to a cache line so
// adjacent partitions' commit ticks do not false-share.
type partCounter struct {
	c atomic.Uint64
	_ [7]uint64
}

// PartitionLocal keeps one commit counter per partition plus the global
// cross-partition epoch. See the package comment for the protocol role of
// each.
type PartitionLocal struct {
	epoch atomic.Uint64
	// parts is swapped wholesale by Resize (under quiescence); monitor
	// threads may read concurrently, hence the atomic pointer.
	parts atomic.Pointer[[]partCounter]
}

func newPartitionLocal(nparts int, floor uint64) *PartitionLocal {
	pl := &PartitionLocal{}
	cs := make([]partCounter, nparts)
	for i := range cs {
		cs[i].c.Store(floor)
	}
	pl.parts.Store(&cs)
	return pl
}

// Mode returns ModePartitionLocal.
func (pl *PartitionLocal) Mode() Mode { return ModePartitionLocal }

// Begin returns the current epoch; per-partition snapshots are sampled at
// first touch with Now.
func (pl *PartitionLocal) Begin() uint64 { return pl.epoch.Load() }

// Now returns partition part's counter. An out-of-range partition is a
// protocol violation (the engine resizes the time base and the topology
// together, under quiescence) and panics: an invented snapshot here would
// be the UNSAFE direction — a value above the partition's real counter
// lets a reader accept a later writer's versions without the alignment
// checks ever seeing that writer.
func (pl *PartitionLocal) Now(part uint32) uint64 {
	cs := *pl.parts.Load()
	if int(part) >= len(cs) {
		panic(fmt.Sprintf("clock: partition %d out of range (%d counters)", part, len(cs)))
	}
	return cs[part].c.Load()
}

// Commit ticks each written partition's counter; a commit spanning more
// than one partition first bumps the epoch. The bump MUST precede every
// counter tick: a reader that samples a partition counter at or after one
// of this commit's ticks is then guaranteed (sequentially consistent
// atomics) to observe the bump on any later epoch load — the ordering the
// engine's footprint-alignment check relies on to detect a cross-partition
// writer whose versions its fresh snapshot already covers.
func (pl *PartitionLocal) Commit(parts []uint32, wv []uint64) {
	if len(parts) > 1 {
		pl.epoch.Add(1)
	}
	cs := *pl.parts.Load()
	for i, p := range parts {
		wv[i] = cs[p].c.Add(1)
	}
}

// Epoch returns the cross-partition epoch.
func (pl *PartitionLocal) Epoch() uint64 { return pl.epoch.Load() }

// Advance adds delta to every partition counter and the epoch.
func (pl *PartitionLocal) Advance(delta uint64) {
	cs := *pl.parts.Load()
	for i := range cs {
		cs[i].c.Add(delta)
	}
	pl.epoch.Add(delta)
}

// Ceiling returns the maximum partition counter.
func (pl *PartitionLocal) Ceiling() uint64 {
	var max uint64
	cs := *pl.parts.Load()
	for i := range cs {
		if v := cs[i].c.Load(); v > max {
			max = v
		}
	}
	return max
}

// Resize replaces the counter set with nparts counters, all starting at
// the current Ceiling: every partition's timeline jumps forward to the
// engine-wide maximum, never backwards. (The caller rebuilds all orec
// tables in the same quiescent window, so re-basing lagging counters is
// safe — there is no version anywhere above the ceiling.)
func (pl *PartitionLocal) Resize(nparts int) {
	if nparts < 1 {
		nparts = 1
	}
	floor := pl.Ceiling()
	checkFloor(floor)
	cs := make([]partCounter, nparts)
	for i := range cs {
		cs[i].c.Store(floor)
	}
	pl.parts.Store(&cs)
}

// Stats derives the contention figures from the counters: each partition
// counter started at InitialStamp (or a migration floor — deltas are then
// upper bounds), the epoch counts cross-partition commits, and only those
// epoch bumps touched shared memory.
func (pl *PartitionLocal) Stats() Stats {
	cs := *pl.parts.Load()
	s := Stats{
		Mode:  ModePartitionLocal,
		Parts: make([]uint64, len(cs)),
		Epoch: pl.epoch.Load(),
	}
	for i := range cs {
		v := cs[i].c.Load()
		s.Parts[i] = v
		s.LocalTicks += v - InitialStamp
	}
	s.CrossCommits = s.Epoch
	s.SharedRMWs = s.Epoch
	return s
}
