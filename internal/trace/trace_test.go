package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	arena, err := memory.NewArena(memory.Config{CapacityWords: 1 << 18, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(arena, core.DefaultPartConfig())
}

// TestRecorderCountsCommitsExactly installs a recorder, runs a known
// number of conflict-free transactions, and checks the books.
func TestRecorderCountsCommitsExactly(t *testing.T) {
	e := newEngine(t)
	r := NewRecorder(64)
	e.SetTracer(r)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	const n = 100
	for i := 0; i < n; i++ {
		th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	e.SetTracer(nil)
	if got := r.Commits(); got != n+1 {
		t.Fatalf("commits = %d, want %d", got, n+1)
	}
	if r.Retried() != 0 {
		t.Fatalf("retries = %d on a conflict-free run", r.Retried())
	}
	if r.MaxOps() < 2 {
		t.Fatalf("maxOps = %d, want >= 2", r.MaxOps())
	}
	if !strings.Contains(r.Summary(), "commits") {
		t.Fatal("summary missing commits line")
	}
}

// TestRecorderSeesAborts forces an abort and checks cause accounting and
// the retry flag.
func TestRecorderSeesAborts(t *testing.T) {
	e := newEngine(t)
	r := NewRecorder(16)
	e.SetTracer(r)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	attempts := 0
	th.Atomic(func(tx *core.Tx) {
		attempts++
		if attempts == 1 {
			tx.Load(a)
			tx.Abort()
		}
		tx.Load(a)
	})
	e.SetTracer(nil)
	if got := r.Aborts(core.AbortExplicit); got != 1 {
		t.Fatalf("explicit aborts = %d, want 1", got)
	}
	if r.Retried() != 1 {
		t.Fatalf("retries = %d, want 1", r.Retried())
	}
	events := r.Snapshot()
	foundRetry := false
	for _, ev := range events {
		if ev.Attempt == 2 && ev.Cause == core.AbortNone {
			foundRetry = true
		}
	}
	if !foundRetry {
		t.Fatalf("no committed retry in snapshot: %+v", events)
	}
}

// TestRecorderRingWraps records more events than capacity and checks the
// snapshot holds exactly the newest events.
func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 20; i++ {
		r.TraceAttempt(core.AttemptEvent{Slot: 0, Attempt: 1, Cause: core.AbortNone, Ops: uint64(i)})
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot = %d events, want 8", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(13 + i); ev.Ops != want {
			t.Fatalf("snapshot[%d].Ops = %d, want %d", i, ev.Ops, want)
		}
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines
// through real transactions; totals must be consistent.
func TestRecorderConcurrent(t *testing.T) {
	e := newEngine(t)
	r := NewRecorder(1024)
	e.SetTracer(r)
	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	e.DetachThread(setup)
	const workers, perW = 6, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	wg.Wait()
	e.SetTracer(nil)
	// Every worker transaction commits exactly once; the setup tx is +1.
	if got := r.Commits(); got != workers*perW+1 {
		t.Fatalf("commits = %d, want %d", got, workers*perW+1)
	}
	var aborts uint64
	for c := core.AbortCause(1); c < core.NumAbortCauses; c++ {
		aborts += r.Aborts(c)
	}
	if r.Len() != r.Commits()+aborts {
		t.Fatalf("len %d != commits %d + aborts %d", r.Len(), r.Commits(), aborts)
	}
}

// TestTracerRemovalStopsRecording verifies SetTracer(nil) detaches.
func TestTracerRemovalStopsRecording(t *testing.T) {
	e := newEngine(t)
	r := NewRecorder(16)
	e.SetTracer(r)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	before := r.Len()
	e.SetTracer(nil)
	for i := 0; i < 50; i++ {
		th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	if r.Len() != before {
		t.Fatalf("recorder grew after removal: %d -> %d", before, r.Len())
	}
}

// TestSchedulerCountersInSummary checks the recorder aggregates wait
// escalations (yields, parks) from attempt events and surfaces them in
// the summary.
func TestSchedulerCountersInSummary(t *testing.T) {
	r := NewRecorder(8)
	r.TraceAttempt(core.AttemptEvent{Slot: 0, Attempt: 1, Cause: core.AbortNone, Yields: 4, Parks: 1})
	r.TraceAttempt(core.AttemptEvent{Slot: 1, Attempt: 2, Cause: core.AbortKilled, Yields: 2})
	if r.Yields() != 6 || r.Parks() != 1 {
		t.Fatalf("scheduler counters = %d/%d, want 6/1", r.Yields(), r.Parks())
	}
	if s := r.Summary(); !strings.Contains(s, "scheduler: 6 yields, 1 parks") {
		t.Fatalf("summary missing scheduler line:\n%s", s)
	}
	if s := NewRecorder(1).Summary(); strings.Contains(s, "scheduler") {
		t.Fatalf("idle summary mentions scheduler:\n%s", s)
	}
}

// TestSnapshotCountersInSummary checks the recorder aggregates
// snapshot-store hits and misses from attempt events and surfaces them
// in the summary.
func TestSnapshotCountersInSummary(t *testing.T) {
	r := NewRecorder(8)
	r.TraceAttempt(core.AttemptEvent{Slot: 0, Attempt: 1, Cause: core.AbortNone, SnapHits: 3, SnapMisses: 1})
	r.TraceAttempt(core.AttemptEvent{Slot: 1, Attempt: 1, Cause: core.AbortNone, SnapHits: 2})
	if r.SnapHits() != 5 || r.SnapMisses() != 1 {
		t.Fatalf("snap counters = %d/%d, want 5/1", r.SnapHits(), r.SnapMisses())
	}
	if s := r.Summary(); !strings.Contains(s, "snapshot store: 5 hits, 1 misses") {
		t.Fatalf("summary missing snapshot line:\n%s", s)
	}
	// And absent when idle.
	if s := NewRecorder(1).Summary(); strings.Contains(s, "snapshot store") {
		t.Fatalf("idle summary mentions snapshot store:\n%s", s)
	}
}
