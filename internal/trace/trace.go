// Package trace provides a lock-free ring-buffer recorder for
// transaction attempt events — the observability layer behind debugging
// STM protocol behaviour and explaining tuner decisions. Install a
// Recorder with Engine.SetTracer (or stm.Runtime.StartTracing), run the
// workload, then read back the tail of attempts or an aggregate summary.
//
// Recording is wait-free per event (one atomic counter increment and a
// slot store) and the buffer is fixed-size, so tracing can stay enabled
// in long experiments without growing memory.
package trace

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Recorder is a fixed-capacity ring buffer of attempt events implementing
// core.TxTracer. Writers claim slots with an atomic counter; a torn read
// of the currently-written slot is possible while recording is live (the
// documented trade of sampling observability), but Snapshot of a stopped
// recorder is exact.
type Recorder struct {
	events []atomic.Pointer[core.AttemptEvent]
	next   atomic.Uint64

	commits atomic.Uint64
	aborts  [core.NumAbortCauses]atomic.Uint64
	retried atomic.Uint64 // attempts with Attempt > 1
	maxOps  atomic.Uint64

	// snapHits/snapMisses aggregate snapshot-mode reads served from (or
	// missed by) the multi-version store across all recorded attempts.
	snapHits   atomic.Uint64
	snapMisses atomic.Uint64

	// yields/parks aggregate wait-loop escalations into the scheduler
	// (Gosched / timed sleep) across all recorded attempts — the
	// scheduler-cooperation picture next to the abort mix.
	yields atomic.Uint64
	parks  atomic.Uint64

	// retiredWords/reclaimedWords aggregate heap words retired into limbo
	// by recorded commits and migrated back to free lists by their
	// commit-path reclaims — the churn picture next to the abort mix. A
	// retired total far ahead of reclaimed across a long trace means the
	// horizon is not keeping up (see core.ReclaimStats.HorizonLag).
	retiredWords   atomic.Uint64
	reclaimedWords atomic.Uint64

	// commitLat aggregates committed attempts' durations (abortLat the
	// aborted ones') into latency histograms — the tail-latency picture
	// next to the abort mix. The engine timestamps every attempt while a
	// tracer is attached, so these populate with no extra configuration.
	// spinNs/yieldNs/parkNs total the recorded attempts' wait time by
	// stall phase (see the attribution note in core's wait discipline).
	commitLat stats.Histogram
	abortLat  stats.Histogram
	spinNs    atomic.Uint64
	yieldNs   atomic.Uint64
	parkNs    atomic.Uint64

	// walStats, when set, is polled at Summary time for the attached redo
	// log's counters (see SetWALStatsSource) — the durability picture next
	// to the abort mix.
	walStats atomic.Pointer[func() (wal.Stats, bool)]
}

// NewRecorder creates a recorder keeping the last capacity events
// (rounded up to at least 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{events: make([]atomic.Pointer[core.AttemptEvent], capacity)}
}

// TraceAttempt implements core.TxTracer.
func (r *Recorder) TraceAttempt(ev core.AttemptEvent) {
	i := r.next.Add(1) - 1
	e := ev // heap copy per event: slots hand out stable pointers
	r.events[i%uint64(len(r.events))].Store(&e)
	if ev.Cause == core.AbortNone {
		r.commits.Add(1)
		if ev.DurationNs > 0 {
			r.commitLat.Record(ev.DurationNs)
		}
	} else {
		r.aborts[ev.Cause].Add(1)
		if ev.DurationNs > 0 {
			r.abortLat.Record(ev.DurationNs)
		}
	}
	if ev.Attempt > 1 {
		r.retried.Add(1)
	}
	if ev.SnapHits > 0 {
		r.snapHits.Add(ev.SnapHits)
	}
	if ev.SnapMisses > 0 {
		r.snapMisses.Add(ev.SnapMisses)
	}
	if ev.Yields > 0 {
		r.yields.Add(ev.Yields)
	}
	if ev.Parks > 0 {
		r.parks.Add(ev.Parks)
	}
	if ev.RetiredWords > 0 {
		r.retiredWords.Add(ev.RetiredWords)
	}
	if ev.SpinNs > 0 {
		r.spinNs.Add(ev.SpinNs)
	}
	if ev.YieldNs > 0 {
		r.yieldNs.Add(ev.YieldNs)
	}
	if ev.ParkNs > 0 {
		r.parkNs.Add(ev.ParkNs)
	}
	if ev.ReclaimedWords > 0 {
		r.reclaimedWords.Add(ev.ReclaimedWords)
	}
	for {
		cur := r.maxOps.Load()
		if ev.Ops <= cur || r.maxOps.CompareAndSwap(cur, ev.Ops) {
			break
		}
	}
}

// Len returns the number of events recorded so far (monotonic; may
// exceed capacity).
func (r *Recorder) Len() uint64 { return r.next.Load() }

// Commits returns the number of committed attempts recorded.
func (r *Recorder) Commits() uint64 { return r.commits.Load() }

// Aborts returns the recorded abort count for one cause.
func (r *Recorder) Aborts(cause core.AbortCause) uint64 {
	return r.aborts[cause].Load()
}

// Retried returns the number of recorded attempts that were retries.
func (r *Recorder) Retried() uint64 { return r.retried.Load() }

// MaxOps returns the largest per-attempt operation count seen.
func (r *Recorder) MaxOps() uint64 { return r.maxOps.Load() }

// SnapHits returns the total snapshot-store reconstructions recorded.
func (r *Recorder) SnapHits() uint64 { return r.snapHits.Load() }

// SnapMisses returns the total snapshot-store misses (fallbacks to the
// validate/extend path) recorded.
func (r *Recorder) SnapMisses() uint64 { return r.snapMisses.Load() }

// Yields returns the total scheduler yields recorded in wait loops.
func (r *Recorder) Yields() uint64 { return r.yields.Load() }

// Parks returns the total timed-sleep parks recorded in wait loops.
func (r *Recorder) Parks() uint64 { return r.parks.Load() }

// RetiredWords returns the total heap words recorded commits retired into
// reclamation limbo.
func (r *Recorder) RetiredWords() uint64 { return r.retiredWords.Load() }

// ReclaimedWords returns the total heap words recorded attempts migrated
// from limbo back to free lists.
func (r *Recorder) ReclaimedWords() uint64 { return r.reclaimedWords.Load() }

// CommitLatency returns the histogram of committed attempts' durations
// (one sample per committed attempt, retries excluded — each attempt of
// a retried transaction lands in the histogram matching its outcome).
func (r *Recorder) CommitLatency() stats.HistSnapshot { return r.commitLat.Snapshot() }

// AbortLatency returns the histogram of aborted attempts' durations —
// the cost of wasted work, next to CommitLatency's cost of useful work.
func (r *Recorder) AbortLatency() stats.HistSnapshot { return r.abortLat.Snapshot() }

// WaitNs returns the recorded attempts' total wait time broken down by
// stall phase: on-CPU spinning, scheduler yields, and timed parks.
func (r *Recorder) WaitNs() (spin, yield, park uint64) {
	return r.spinNs.Load(), r.yieldNs.Load(), r.parkNs.Load()
}

// Snapshot returns the buffered events oldest-first. Call it after
// removing the recorder from the engine (SetTracer(nil)) for an exact
// tail; a live snapshot may miss events being written concurrently.
func (r *Recorder) Snapshot() []core.AttemptEvent {
	total := r.next.Load()
	n := uint64(len(r.events))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]core.AttemptEvent, 0, total-start)
	for i := start; i < total; i++ {
		if p := r.events[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Summary renders an aggregate report: outcome counts per cause, retry
// fraction, and the largest transaction seen.
func (r *Recorder) Summary() string {
	var b strings.Builder
	total := r.next.Load()
	fmt.Fprintf(&b, "trace: %d attempts, %d commits, %d retries, max %d ops/attempt\n",
		total, r.commits.Load(), r.retried.Load(), r.maxOps.Load())
	for c := core.AbortCause(1); c < core.NumAbortCauses; c++ {
		if n := r.aborts[c].Load(); n > 0 {
			fmt.Fprintf(&b, "  aborts[%s] = %d\n", c, n)
		}
	}
	if h, m := r.snapHits.Load(), r.snapMisses.Load(); h > 0 || m > 0 {
		fmt.Fprintf(&b, "  snapshot store: %d hits, %d misses\n", h, m)
	}
	if y, p := r.yields.Load(), r.parks.Load(); y > 0 || p > 0 {
		fmt.Fprintf(&b, "  scheduler: %d yields, %d parks\n", y, p)
	}
	if ret, rec := r.retiredWords.Load(), r.reclaimedWords.Load(); ret > 0 || rec > 0 {
		fmt.Fprintf(&b, "  reclamation: %d words retired, %d reclaimed\n", ret, rec)
	}
	if cl := r.commitLat.Snapshot(); cl.Count() > 0 {
		fmt.Fprintf(&b, "  latency: commit %s\n", cl.Summary())
	}
	if al := r.abortLat.Snapshot(); al.Count() > 0 {
		fmt.Fprintf(&b, "  latency: abort  %s\n", al.Summary())
	}
	if s, y, p := r.spinNs.Load(), r.yieldNs.Load(), r.parkNs.Load(); s+y+p > 0 {
		fmt.Fprintf(&b, "  wait time: spin %v, yield %v, park %v\n",
			time.Duration(s), time.Duration(y), time.Duration(p))
	}
	if src := r.walStats.Load(); src != nil {
		if ws, ok := (*src)(); ok && ws.Appends > 0 {
			perGroup := float64(ws.GroupedRecords)
			if ws.GroupCommits > 0 {
				perGroup /= float64(ws.GroupCommits)
			}
			fmt.Fprintf(&b, "  wal: %d appends (%d bytes), %d fsyncs, %.1f records/group, %d sync waits (%d parked)\n",
				ws.Appends, ws.AppendedBytes, ws.Fsyncs, perGroup, ws.SyncWaits, ws.SyncParks)
		}
	}
	return b.String()
}

// SetWALStatsSource installs (or with nil removes) a poll function for
// the redo log's counters; when set, Summary appends a "wal:" line.
func (r *Recorder) SetWALStatsSource(fn func() (wal.Stats, bool)) {
	if fn == nil {
		r.walStats.Store(nil)
		return
	}
	r.walStats.Store(&fn)
}
