package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig2 reproduces the multi-structure microbenchmark figure: throughput
// of the composite intset application (four structures with different
// characteristics in one program) under
//
//   - one global default configuration (invisible reads),
//   - one global update-oriented configuration (visible reads),
//   - automatic partitioning with the runtime tuner specializing each
//     partition.
//
// The paper's claim: no single global configuration suits all structures;
// per-partition tuning composes the best of each ("performance
// composability").
func Fig2(o Options) (*Report, error) {
	o = o.normalized()
	fig := stats.NewFigure("Fig. 2 — intset-multi throughput (ops/s)", "threads", "operations per second")

	type cfgCase struct {
		name        string
		global      *stm.PartConfig
		partitioned bool
	}
	inv := stm.DefaultPartConfig()
	vis := visibleConfig()
	cases := []cfgCase{
		{"global-invisible", &inv, false},
		{"global-visible", &vis, false},
		{"partitioned+tuned", nil, true},
	}

	var tunedBest, globalBest float64
	for _, threads := range o.threadSweep() {
		for _, c := range cases {
			rt := newRuntime(o, c.global)
			mcfg := multiSetConfig(o)
			var op bench.OpFunc
			if c.partitioned {
				m, _, err := buildMultiSetPartitioned(rt, mcfg)
				if err != nil {
					return nil, err
				}
				tc := stm.DefaultTunerConfig()
				tc.Interval = 30 * time.Millisecond
				tc.HillClimb = false // visibility is the per-partition knob here; fig4 studies granularity
				tc.Hysteresis = 1
				tc.MinCommits = 50
				rt.StartTuner(tc)
				op = func(th *stm.Thread, rng *workload.Rng) { m.Op(th, rng) }
			} else {
				th := rt.MustAttach()
				m := apps.NewMultiSetApp(rt, th, mcfg)
				rt.Detach(th)
				op = func(th *stm.Thread, rng *workload.Rng) { m.Op(th, rng) }
			}
			warmup := o.Warmup
			if c.partitioned {
				// Give the tuner a convergence window before measuring, as
				// the paper does (tuning happens continuously; steady-state
				// throughput is what the figure reports).
				warmup += 10 * 30 * time.Millisecond
			}
			res := bench.Run(rt, bench.RunConfig{
				Threads: threads,
				Warmup:  warmup,
				Measure: o.PointDuration,
				Seed:    uint64(threads),
			}, op)
			if c.partitioned {
				rt.StopTuner()
				if res.Throughput > tunedBest {
					tunedBest = res.Throughput
				}
			} else if res.Throughput > globalBest {
				globalBest = res.Throughput
			}
			fig.SeriesNamed(c.name).Add(float64(threads), res.Throughput)
		}
	}

	out := fig.Render()
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	verdict := "partitioned+tuned matches or beats the best global configuration"
	if tunedBest < globalBest*0.9 {
		verdict = fmt.Sprintf("REGRESSION: tuned peak %.0f < 0.9× best global %.0f", tunedBest, globalBest)
	}
	return &Report{
		ID:      "fig2",
		Title:   "Multi-structure application: partitioned+tuned vs global configs",
		Output:  out,
		Summary: verdict,
	}, nil
}
