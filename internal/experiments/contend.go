package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Contend is the multi-thread contention sweep the single-thread rsdedup
// experiment leaves open: a scaling artefact for the footprint-bounded
// hot path under real conflict pressure. Every transaction scans a slice
// of a small shared array (driving read-set extension whenever a
// concurrent writer commits mid-scan) and then writes two cells (driving
// lock conflicts on hot orecs). The sweep crosses thread counts with the
// contention-management policies whose pause behaviour matters at scale:
// tight spinning (CMSpin) and the randomized exponential pause
// (CMBackoff, whose spin loop a regression once compiled away), plus
// older-wins arbitration (CMTimestamp) as the convoy-free reference. For
// each point it reports throughput, abort rate, and wait cycles per
// commit — the cache-traffic proxy the backoff pause is supposed to
// shrink relative to spinning.
func Contend(o Options) (*Report, error) {
	o = o.normalized()
	cells := 64
	scan := 24
	if o.Quick {
		cells, scan = 32, 12
	}

	cms := []struct {
		name string
		cm   stm.CMPolicy
	}{
		{"spin", stm.CMSpin},
		{"backoff", stm.CMBackoff},
		{"timestamp", stm.CMTimestamp},
	}

	fig := stats.NewFigure("Contention sweep — commits/s by CM policy", "threads", "commits per second")
	var tbl strings.Builder
	tbl.WriteString("cm         threads  commits/s  abort-rate  waitcycles/commit\n")

	// waitPerCommit at the max-thread point, per policy, for the summary.
	waits := map[string]float64{}
	for _, c := range cms {
		for _, threads := range o.threadSweep() {
			cfg := stm.DefaultPartConfig()
			cfg.CM = c.cm
			rt := newRuntime(o, &cfg)
			th := rt.MustAttach()
			var base stm.Addr
			th.Atomic(func(tx *stm.Tx) {
				base = tx.Alloc(stm.SiteID(0), cells)
				for i := 0; i < cells; i++ {
					tx.Store(base+stm.Addr(i), 100)
				}
			})
			rt.Detach(th)
			res := bench.Run(rt, bench.RunConfig{
				Threads: threads,
				Warmup:  o.Warmup,
				Measure: o.PointDuration,
				Seed:    uint64(threads)*31 + 7,
			}, func(th *stm.Thread, rng *workload.Rng) {
				start := rng.Intn(cells)
				i := stm.Addr(rng.Intn(cells))
				j := stm.Addr(rng.Intn(cells))
				th.Atomic(func(tx *stm.Tx) {
					var sum uint64
					for k := 0; k < scan; k++ {
						sum += tx.Load(base + stm.Addr((start+k)%cells))
					}
					d := sum % 3
					vi := tx.Load(base + i)
					if vi < d || i == j {
						return
					}
					tx.Store(base+i, vi-d)
					tx.Store(base+j, tx.Load(base+j)+d)
				})
			})
			commitRate := float64(res.Commits) / res.Elapsed.Seconds()
			fig.SeriesNamed(c.name).Add(float64(threads), commitRate)
			var wait uint64
			for _, p := range res.PerPart {
				wait += p.WaitCycles
			}
			wpc := perTx(wait, res.Commits)
			tbl.WriteString(fmt.Sprintf("%-10s %-8d %-10.0f %-11.3f %.1f\n",
				c.name, threads, commitRate, res.AbortRate, wpc))
			if threads == o.threadSweep()[len(o.threadSweep())-1] {
				waits[c.name] = wpc
			}
		}
	}

	out := fig.Render() + "\n" + tbl.String()
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	return &Report{
		ID:     "contend",
		Title:  "Contention sweep: read-set extension and CM pauses at scale",
		Output: out,
		Summary: fmt.Sprintf("at %d threads: waitcycles/commit spin %.1f vs backoff %.1f vs timestamp %.1f over a contended scan+transfer mix",
			o.Threads, waits["spin"], waits["backoff"], waits["timestamp"]),
	}, nil
}
