package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/stm"
)

// MVScan quantifies what the multi-version snapshot store buys read-only
// transactions under writer contention: full-array scans run against
// saturating transfer writers, first on the classic validate/extend
// read path (ReadOnlyAtomic) and then in snapshot mode (SnapshotAtomic).
// The validate/extend readers abort and re-extend whenever a writer
// commits under them; the snapshot readers pin their snapshot and
// reconstruct overwritten cells from the store, so with adequate
// retention they must complete with zero aborts. Every scan also checks
// the writers' conservation invariant (transfers keep the array sum
// constant), so a torn snapshot would be caught immediately; a third
// phase measures writer-only throughput with the store attached vs.
// detached to price the commit-path append; and a fourth phase sweeps
// HistCap with deliberately aged snapshots (the ring wraps past the pin
// before the scan runs), demonstrating that a store miss costs the same
// no matter how large the ring — the address-indexed lookup's O(1) miss
// guarantee, where the linear ring scan it replaced paid O(HistCap) per
// missed load.
func MVScan(o Options) (*Report, error) {
	o = o.normalized()
	cells := 256
	histCap := uint(1 << 16) // ample retention: a scan must never outlive the ring
	if o.Quick {
		cells = 128
	}
	writers := o.Threads - 1
	if writers < 1 {
		writers = 1
	}
	if writers > 3 {
		writers = 3 // saturation does not need more; keep readers scheduled
	}
	const initVal = 1 << 20

	type readerResult struct {
		scans, aborts, hits, misses uint64
		sumViolation                uint64
	}

	// runPhase drives `writers` transfer threads — plus, unless
	// writerOnly, one scanning reader — for the measured window; snapshot
	// selects the reader's read path.
	runPhase := func(rt *stm.Runtime, base stm.Addr, snapshot, writerOnly bool) (readerResult, float64) {
		var (
			stop atomic.Bool
			wg   sync.WaitGroup
			res  readerResult
		)
		st0 := rt.PartitionStats(stm.GlobalPartition)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				th := rt.MustAttach()
				defer rt.Detach(th)
				rng := workload.NewRng(seed)
				for !stop.Load() {
					i := stm.Addr(rng.Intn(cells))
					j := stm.Addr(rng.Intn(cells))
					d := rng.Uint64() % 16
					th.Atomic(func(tx *stm.Tx) {
						vi := tx.Load(base + i)
						if vi < d {
							return
						}
						tx.Store(base+i, vi-d)
						tx.Store(base+j, tx.Load(base+j)+d)
					})
				}
			}(uint64(w) + 7)
		}
		if writerOnly {
			time.Sleep(o.Warmup + o.PointDuration)
			stop.Store(true)
			wg.Wait()
			d := rt.PartitionStats(stm.GlobalPartition).Sub(st0)
			return res, float64(d.UpdateCommits) / (o.Warmup + o.PointDuration).Seconds()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			run := func(fn func(func(*stm.Tx))) {
				attempts := uint64(0)
				fn(func(tx *stm.Tx) {
					attempts++
					var sum uint64
					for c := 0; c < cells; c++ {
						sum += tx.Load(base + stm.Addr(c))
					}
					if sum != uint64(cells)*initVal {
						res.sumViolation = sum
					}
				})
				res.scans++
				res.aborts += attempts - 1
			}
			for !stop.Load() {
				if snapshot {
					run(th.SnapshotAtomic)
				} else {
					run(th.ReadOnlyAtomic)
				}
			}
		}()
		time.Sleep(o.Warmup + o.PointDuration)
		stop.Store(true)
		wg.Wait()
		d := rt.PartitionStats(stm.GlobalPartition).Sub(st0)
		res.hits = d.SnapHits
		res.misses = d.SnapMisses
		return res, float64(d.UpdateCommits) / (o.Warmup + o.PointDuration).Seconds()
	}

	setup := func(hist uint) (*stm.Runtime, stm.Addr) {
		rt := stm.MustNew(stm.Config{
			HeapWords:       1 << 22,
			YieldEveryOps:   o.YieldEveryOps,
			SnapshotHistory: hist,
		})
		th := rt.MustAttach()
		var base stm.Addr
		th.Atomic(func(tx *stm.Tx) {
			base = tx.Alloc(stm.SiteID(0), cells)
			for c := 0; c < cells; c++ {
				tx.Store(base+stm.Addr(c), initVal)
			}
		})
		rt.Detach(th)
		return rt, base
	}

	var out strings.Builder
	out.WriteString(fmt.Sprintf("Read-only scans (%d cells) under %d saturating transfer writers\n", cells, writers))
	out.WriteString("reader      scans  ro-aborts  snap-hits  snap-misses  writer-commits/s\n")

	rt, base := setup(histCap)
	baseRes, baseWps := runPhase(rt, base, false, false)
	snapRes, wps := runPhase(rt, base, true, false)
	for _, r := range []struct {
		name string
		r    readerResult
		wps  float64
	}{{"validate", baseRes, baseWps}, {"snapshot", snapRes, wps}} {
		out.WriteString(fmt.Sprintf("%-11s %-6d %-10d %-10d %-12d %.0f\n",
			r.name, r.r.scans, r.r.aborts, r.r.hits, r.r.misses, r.wps))
	}
	if baseRes.sumViolation != 0 || snapRes.sumViolation != 0 {
		return nil, fmt.Errorf("mvscan: scan observed sum %d/%d, want %d (torn snapshot)",
			baseRes.sumViolation, snapRes.sumViolation, uint64(cells)*initVal)
	}
	if snapRes.aborts != 0 {
		return nil, fmt.Errorf("mvscan: %d snapshot-mode aborts with ample retention (want 0)", snapRes.aborts)
	}
	if snapRes.scans == 0 {
		return nil, fmt.Errorf("mvscan: no snapshot scans completed")
	}

	// Phase 3: writer-only throughput with and without the store — the
	// price of the commit-path append when snapshot mode is off vs. on.
	measureWriters := func(hist uint) float64 {
		wrt, wbase := setup(hist)
		_, wps := runPhase(wrt, wbase, false, true)
		return wps
	}
	offTput := measureWriters(0)
	onTput := measureWriters(histCap)
	ratio := safeDiv(onTput, offTput)
	out.WriteString(fmt.Sprintf("\nwriter-only update commits/s: store off %.0f, store on %.0f (on/off %.2f)\n",
		offTput, onTput, ratio))

	hist := rt.SnapshotHistory(stm.GlobalPartition)
	out.WriteString(fmt.Sprintf("store retention: cap=%d appends=%d live=%d version span [%d,%d]\n",
		hist.Cap, hist.Appends, hist.Live, hist.OldestVersion, hist.NewestVersion))

	// Phase 4: stale-snapshot sweep. Each scan pins its snapshot, then
	// deliberately waits until the writers have wrapped the ring past it
	// (so covering records are evicted and loads of overwritten cells
	// MISS the store), then scans. This is the path that used to cost
	// O(HistCap) seqlock probes per miss — per-cell scan cost grew with
	// the ring exactly when the store could not help. With the address
	// index a miss is O(1), so ns/cell must stay flat across HistCap.
	sweepScans := 8
	if o.Quick {
		sweepScans = 5
	}
	out.WriteString("\nStale-snapshot sweep (scan after the ring wrapped past the pinned snapshot)\n")
	out.WriteString("histcap  scans  ro-aborts  snap-hits  snap-misses  ret-misses  ns/cell\n")
	var sweepNsPerCell []float64
	for _, hc := range []uint{64, 512, 4096} {
		srt, sbase := setup(hc)
		var (
			stop     atomic.Bool
			wg       sync.WaitGroup
			badSum   uint64
			attempts uint64
			scanNs   int64
		)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				wth := srt.MustAttach()
				defer srt.Detach(wth)
				rng := workload.NewRng(seed)
				for !stop.Load() {
					i := stm.Addr(rng.Intn(cells))
					j := stm.Addr(rng.Intn(cells))
					d := rng.Uint64() % 16
					wth.Atomic(func(tx *stm.Tx) {
						vi := tx.Load(sbase + i)
						if vi < d {
							return
						}
						tx.Store(sbase+i, vi-d)
						tx.Store(sbase+j, tx.Load(sbase+j)+d)
					})
				}
			}(uint64(w) + 31)
		}
		st0 := srt.PartitionStats(stm.GlobalPartition)
		rth := srt.MustAttach()
		for s := 0; s < sweepScans; s++ {
			// Only the scan's first attempt ages its snapshot: a stale
			// attempt usually dies (reconstructed reads pin the snapshot,
			// so the inevitable retention miss aborts it), and re-aging
			// every retry would keep every attempt doomed forever. The
			// retries scan fresh and commit; the aged attempt is the one
			// that exercises — and times — the miss path.
			aged := false
			rth.SnapshotAtomic(func(tx *stm.Tx) {
				attempts++
				sum := tx.Load(sbase) // first access pins the snapshot
				if !aged {
					aged = true
					// Age the snapshot: wait for ~2 ring revolutions of
					// appends (bounded, in case the writers stall).
					start := srt.SnapshotHistory(stm.GlobalPartition).Appends
					deadline := time.Now().Add(150 * time.Millisecond)
					for srt.SnapshotHistory(stm.GlobalPartition).Appends < start+2*uint64(hc) &&
						time.Now().Before(deadline) {
						time.Sleep(500 * time.Microsecond)
					}
				}
				t0 := time.Now()
				// The deferred sample also charges aborted attempts'
				// partial scans (the abort unwinds through this defer).
				defer func() { scanNs += time.Since(t0).Nanoseconds() }()
				for c := 1; c < cells; c++ {
					sum += tx.Load(sbase + stm.Addr(c))
				}
				if sum != uint64(cells)*initVal {
					badSum = sum
				}
			})
		}
		srt.Detach(rth)
		stop.Store(true)
		wg.Wait()
		if badSum != 0 {
			return nil, fmt.Errorf("mvscan: stale sweep (hist=%d) observed sum %d, want %d (torn snapshot)",
				hc, badSum, uint64(cells)*initVal)
		}
		d := srt.PartitionStats(stm.GlobalPartition).Sub(st0)
		sh := srt.SnapshotHistory(stm.GlobalPartition)
		nsPerCell := float64(scanNs) / float64(attempts*uint64(cells-1))
		sweepNsPerCell = append(sweepNsPerCell, nsPerCell)
		out.WriteString(fmt.Sprintf("%-8d %-6d %-10d %-10d %-12d %-11d %.0f\n",
			hc, sweepScans, attempts-uint64(sweepScans), d.SnapHits, d.SnapMisses, sh.TruncMisses, nsPerCell))
	}

	return &Report{
		ID:     "mvscan",
		Title:  "Multi-version snapshot store: abort-free read-only scans under writers",
		Output: out.String(),
		Summary: fmt.Sprintf("snapshot scans: %d commits, 0 aborts, %d reconstructed reads (validate/extend path aborted %d times); writer throughput on/off ratio %.2f; stale-scan ns/cell %.0f @hist=64 vs %.0f @hist=4096",
			snapRes.scans, snapRes.hits, baseRes.aborts, ratio,
			sweepNsPerCell[0], sweepNsPerCell[len(sweepNsPerCell)-1]),
	}, nil
}
