package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/stm"
)

// MVScan quantifies what the multi-version snapshot store buys read-only
// transactions under writer contention: full-array scans run against
// saturating transfer writers, first on the classic validate/extend
// read path (ReadOnlyAtomic) and then in snapshot mode (SnapshotAtomic).
// The validate/extend readers abort and re-extend whenever a writer
// commits under them; the snapshot readers pin their snapshot and
// reconstruct overwritten cells from the store, so with adequate
// retention they must complete with zero aborts. Every scan also checks
// the writers' conservation invariant (transfers keep the array sum
// constant), so a torn snapshot would be caught immediately, and a third
// phase measures writer-only throughput with the store attached vs.
// detached to price the commit-path append.
func MVScan(o Options) (*Report, error) {
	o = o.normalized()
	cells := 256
	histCap := uint(1 << 16) // ample retention: a scan must never outlive the ring
	if o.Quick {
		cells = 128
	}
	writers := o.Threads - 1
	if writers < 1 {
		writers = 1
	}
	if writers > 3 {
		writers = 3 // saturation does not need more; keep readers scheduled
	}
	const initVal = 1 << 20

	type readerResult struct {
		scans, aborts, hits, misses uint64
		sumViolation                uint64
	}

	// runPhase drives `writers` transfer threads — plus, unless
	// writerOnly, one scanning reader — for the measured window; snapshot
	// selects the reader's read path.
	runPhase := func(rt *stm.Runtime, base stm.Addr, snapshot, writerOnly bool) (readerResult, float64) {
		var (
			stop atomic.Bool
			wg   sync.WaitGroup
			res  readerResult
		)
		st0 := rt.PartitionStats(stm.GlobalPartition)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				th := rt.MustAttach()
				defer rt.Detach(th)
				rng := workload.NewRng(seed)
				for !stop.Load() {
					i := stm.Addr(rng.Intn(cells))
					j := stm.Addr(rng.Intn(cells))
					d := rng.Uint64() % 16
					th.Atomic(func(tx *stm.Tx) {
						vi := tx.Load(base + i)
						if vi < d {
							return
						}
						tx.Store(base+i, vi-d)
						tx.Store(base+j, tx.Load(base+j)+d)
					})
				}
			}(uint64(w) + 7)
		}
		if writerOnly {
			time.Sleep(o.Warmup + o.PointDuration)
			stop.Store(true)
			wg.Wait()
			d := rt.PartitionStats(stm.GlobalPartition).Sub(st0)
			return res, float64(d.UpdateCommits) / (o.Warmup + o.PointDuration).Seconds()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			run := func(fn func(func(*stm.Tx))) {
				attempts := uint64(0)
				fn(func(tx *stm.Tx) {
					attempts++
					var sum uint64
					for c := 0; c < cells; c++ {
						sum += tx.Load(base + stm.Addr(c))
					}
					if sum != uint64(cells)*initVal {
						res.sumViolation = sum
					}
				})
				res.scans++
				res.aborts += attempts - 1
			}
			for !stop.Load() {
				if snapshot {
					run(th.SnapshotAtomic)
				} else {
					run(th.ReadOnlyAtomic)
				}
			}
		}()
		time.Sleep(o.Warmup + o.PointDuration)
		stop.Store(true)
		wg.Wait()
		d := rt.PartitionStats(stm.GlobalPartition).Sub(st0)
		res.hits = d.SnapHits
		res.misses = d.SnapMisses
		return res, float64(d.UpdateCommits) / (o.Warmup + o.PointDuration).Seconds()
	}

	setup := func(hist uint) (*stm.Runtime, stm.Addr) {
		rt := stm.MustNew(stm.Config{
			HeapWords:       1 << 22,
			YieldEveryOps:   o.YieldEveryOps,
			SnapshotHistory: hist,
		})
		th := rt.MustAttach()
		var base stm.Addr
		th.Atomic(func(tx *stm.Tx) {
			base = tx.Alloc(stm.SiteID(0), cells)
			for c := 0; c < cells; c++ {
				tx.Store(base+stm.Addr(c), initVal)
			}
		})
		rt.Detach(th)
		return rt, base
	}

	var out strings.Builder
	out.WriteString(fmt.Sprintf("Read-only scans (%d cells) under %d saturating transfer writers\n", cells, writers))
	out.WriteString("reader      scans  ro-aborts  snap-hits  snap-misses  writer-commits/s\n")

	rt, base := setup(histCap)
	baseRes, baseWps := runPhase(rt, base, false, false)
	snapRes, wps := runPhase(rt, base, true, false)
	for _, r := range []struct {
		name string
		r    readerResult
		wps  float64
	}{{"validate", baseRes, baseWps}, {"snapshot", snapRes, wps}} {
		out.WriteString(fmt.Sprintf("%-11s %-6d %-10d %-10d %-12d %.0f\n",
			r.name, r.r.scans, r.r.aborts, r.r.hits, r.r.misses, r.wps))
	}
	if baseRes.sumViolation != 0 || snapRes.sumViolation != 0 {
		return nil, fmt.Errorf("mvscan: scan observed sum %d/%d, want %d (torn snapshot)",
			baseRes.sumViolation, snapRes.sumViolation, uint64(cells)*initVal)
	}
	if snapRes.aborts != 0 {
		return nil, fmt.Errorf("mvscan: %d snapshot-mode aborts with ample retention (want 0)", snapRes.aborts)
	}
	if snapRes.scans == 0 {
		return nil, fmt.Errorf("mvscan: no snapshot scans completed")
	}

	// Phase 3: writer-only throughput with and without the store — the
	// price of the commit-path append when snapshot mode is off vs. on.
	measureWriters := func(hist uint) float64 {
		wrt, wbase := setup(hist)
		_, wps := runPhase(wrt, wbase, false, true)
		return wps
	}
	offTput := measureWriters(0)
	onTput := measureWriters(histCap)
	ratio := safeDiv(onTput, offTput)
	out.WriteString(fmt.Sprintf("\nwriter-only update commits/s: store off %.0f, store on %.0f (on/off %.2f)\n",
		offTput, onTput, ratio))

	hist := rt.SnapshotHistory(stm.GlobalPartition)
	out.WriteString(fmt.Sprintf("store retention: cap=%d appends=%d live=%d version span [%d,%d]\n",
		hist.Cap, hist.Appends, hist.Live, hist.OldestVersion, hist.NewestVersion))

	return &Report{
		ID:     "mvscan",
		Title:  "Multi-version snapshot store: abort-free read-only scans under writers",
		Output: out.String(),
		Summary: fmt.Sprintf("snapshot scans: %d commits, 0 aborts, %d reconstructed reads (validate/extend path aborted %d times); writer throughput on/off ratio %.2f",
			snapRes.scans, snapRes.hits, baseRes.aborts, ratio),
	}, nil
}
