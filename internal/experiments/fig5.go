package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig5 reproduces the application benchmark: vacation (four tables plus
// customer records) under three regimes — global default, global
// update-oriented, and automatic partitioning with runtime tuning. The
// application contains both read-dominated structures (reservation
// tables under the default low-update mix) and update-heavy ones
// (customer records during bookings), so per-partition settings should
// match or beat either global choice.
func Fig5(o Options) (*Report, error) {
	o = o.normalized()
	fig := stats.NewFigure("Fig. 5 — vacation throughput (ops/s)", "threads", "operations per second")

	vcfg := apps.DefaultVacationConfig()
	if o.Quick {
		vcfg.ItemsPerTable = 128
		vcfg.Customers = 128
	}
	// Raise the contention the way the paper's vacation-high mix does.
	vcfg.DeleteCustomerRatio = 0.05
	vcfg.UpdateTableRatio = 0.05

	inv := stm.DefaultPartConfig()
	vis := visibleConfig()
	cases := []struct {
		name        string
		global      *stm.PartConfig
		partitioned bool
	}{
		{"global-invisible", &inv, false},
		{"global-visible", &vis, false},
		{"partitioned+tuned", nil, true},
	}

	var tunedBest, globalBest float64
	for _, threads := range o.threadSweep() {
		for _, c := range cases {
			rt := newRuntime(o, c.global)
			if c.partitioned {
				rt.StartProfiling()
			}
			th := rt.MustAttach()
			v := apps.NewVacation(rt, th, vcfg)
			if c.partitioned {
				rng := workload.NewRng(31)
				for i := 0; i < 300; i++ {
					v.Op(th, rng)
				}
			}
			rt.Detach(th)
			if c.partitioned {
				if _, err := rt.StopProfilingAndPartition(); err != nil {
					return nil, err
				}
				tc := stm.DefaultTunerConfig()
				tc.Interval = 30 * time.Millisecond
				tc.HillClimb = false // visibility is the per-partition knob here; fig4 studies granularity
				rt.StartTuner(tc)
			}
			warmup := o.Warmup
			if c.partitioned {
				warmup += 10 * 30 * time.Millisecond // tuner convergence window
			}
			res := bench.Run(rt, bench.RunConfig{
				Threads: threads,
				Warmup:  warmup,
				Measure: o.PointDuration,
				Seed:    uint64(threads) + 77,
			}, func(th *stm.Thread, rng *workload.Rng) { v.Op(th, rng) })
			if c.partitioned {
				rt.StopTuner()
				if res.Throughput > tunedBest {
					tunedBest = res.Throughput
				}
			} else if res.Throughput > globalBest {
				globalBest = res.Throughput
			}
			fig.SeriesNamed(c.name).Add(float64(threads), res.Throughput)
		}
	}

	out := fig.Render()
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	return &Report{
		ID:     "fig5",
		Title:  "Vacation application: partitioned+tuned vs global configs",
		Output: out,
		Summary: fmt.Sprintf("tuned peak %.0f ops/s vs best global %.0f ops/s (ratio %.2f)",
			tunedBest, globalBest, safeDiv(tunedBest, globalBest)),
	}, nil
}
