package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Fig9 is the skew-sensitivity study (extension experiment; see DESIGN.md
// §5): how the conflict-detection granularity decision interacts with key
// skew. A hash set under a hotspot distribution is driven at several
// hot-fractions; for each skew level the static coarse (few orecs) and
// fine (many orecs) geometries are measured against the hill-climbing
// tuner.
//
// Expected shape: the gap between geometries is skew-dependent. Under
// uniform access at this table size aliasing is rare for both geometries
// and they tie; as skew concentrates traffic, the coarse table's hot
// orecs each cover 2^10 more addresses, so unrelated keys increasingly
// collide with the hot set (false conflicts) and fine granularity pulls
// ahead. Either way the *right* static choice depends on a workload
// parameter (skew), which is exactly what per-partition runtime tuning
// absorbs.
func Fig9(o Options) (*Report, error) {
	o = o.normalized()
	fig := stats.NewFigure("Fig. 9 — hash set throughput vs access skew (ops/s)",
		"hot%", "operations per second")

	keyRange := uint64(1 << 14)
	buckets := 1 << 10
	if o.Quick {
		keyRange = 1 << 10
		buckets = 1 << 6
	}
	skews := []float64{0, 0.5, 0.8, 0.95}
	if o.Quick {
		skews = []float64{0, 0.9}
	}

	geometries := []struct {
		name     string
		lockBits uint
	}{
		{"coarse(2^6)", 6},
		{"fine(2^16)", 16},
	}

	var summary string
	for _, hot := range skews {
		gen := workload.KeyGen(workload.Uniform{N: keyRange})
		if hot > 0 {
			gen = workload.Hotspot{N: keyRange, HotFrac: 0.01, HotProb: hot}
		}
		for _, g := range geometries {
			cfg := stm.DefaultPartConfig()
			cfg.LockBits = g.lockBits
			rt := newRuntime(o, &cfg)
			th := rt.MustAttach()
			var hs *txds.HashSet
			th.Atomic(func(tx *stm.Tx) { hs = txds.NewHashSet(tx, rt, "fig9.hash", buckets) })
			prng := workload.NewRng(41)
			for i := uint64(0); i < keyRange/2; i++ {
				k := gen.Next(prng)
				th.Atomic(func(tx *stm.Tx) { hs.Insert(tx, k, k) })
			}
			rt.Detach(th)
			mix := workload.Mix{UpdateRatio: 0.2}
			res := bench.Run(rt, bench.RunConfig{
				Threads: o.Threads, Warmup: o.Warmup, Measure: o.PointDuration,
				Seed: uint64(hot*100) + 900,
			}, func(th *stm.Thread, rng *workload.Rng) {
				k := gen.Next(rng)
				switch mix.Next(rng) {
				case workload.OpInsert:
					th.Atomic(func(tx *stm.Tx) { hs.Insert(tx, k, k) })
				case workload.OpRemove:
					th.Atomic(func(tx *stm.Tx) { hs.Remove(tx, k) })
				default:
					th.ReadOnlyAtomic(func(tx *stm.Tx) { hs.Contains(tx, k) })
				}
			})
			fig.SeriesNamed(g.name).Add(hot*100, res.Throughput)
		}
	}

	// Verdict: compare the geometry gap at the skew extremes.
	coarse := fig.SeriesNamed("coarse(2^6)").Points
	fine := fig.SeriesNamed("fine(2^16)").Points
	if len(coarse) > 0 && len(fine) > 0 {
		first := safeDiv(fine[0].Y, coarse[0].Y)
		last := safeDiv(fine[len(fine)-1].Y, coarse[len(coarse)-1].Y)
		summary = fmt.Sprintf("fine/coarse ratio %.2f at uniform vs %.2f at max skew", first, last)
	}

	out := fig.Render()
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	return &Report{
		ID:      "fig9",
		Title:   "Conflict-detection granularity vs access skew",
		Output:  out,
		Summary: summary,
	}, nil
}
