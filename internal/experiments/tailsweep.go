package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// TailSweep is an extension experiment beyond the paper's artefacts: the
// same contended workload measured closed-loop (the harness issues the
// next op when the previous returns) and open-loop (arrivals are due on
// a fixed schedule; latency counts from the due time), sweeping the
// offered rate as a fraction of closed-loop capacity. The point it
// makes is methodological: closed-loop latency is a service-time
// distribution — when the STM stalls a transaction, the harness stalls
// with it and stops generating the arrivals that would have queued — so
// its tail stays flat as load grows. The open-loop tail diverges as the
// offered rate approaches capacity, because queueing delay, the part of
// client-visible latency a closed loop cannot see, dominates p99 long
// before the median moves. The sweep also exercises the engine's own
// commit-latency histograms (stm.Config.LatencyStats): per-attempt
// service time measured inside the runtime, next to the harness's two
// external views.
func TailSweep(o Options) (*Report, error) {
	o = o.normalized()
	branches, per := 4, 64
	if o.Quick {
		branches, per = 2, 32
	}
	build := func(rt *stm.Runtime) (*branchBank, error) {
		// Few branches, small arrays, frequent cross-branch transfers:
		// saturating write contention so waits and retries stretch the
		// service-time tail that queueing then amplifies.
		return newBranchBank(rt, branches, per, 0.30)
	}

	// Closed-loop reference: capacity (ops/s at full speed) and the
	// service-time distribution the closed harness reports.
	rtC := newRuntime(o, nil)
	bankC, err := build(rtC)
	if err != nil {
		return nil, fmt.Errorf("tailsweep: %w", err)
	}
	closed := bench.Run(rtC, bench.RunConfig{
		Threads:       o.Threads,
		Warmup:        o.Warmup,
		Measure:       o.PointDuration,
		Seed:          41,
		SampleLatency: true,
	}, func(th *stm.Thread, rng *workload.Rng) { bankC.op(th, rng) })
	capacity := closed.Throughput
	if capacity <= 0 {
		return nil, fmt.Errorf("tailsweep: closed-loop capacity measured as 0")
	}
	closedLat := closed.Latency.Snapshot()

	fractions := []float64{0.25, 0.50, 0.75, 0.90}
	if o.Quick {
		fractions = []float64{0.50, 0.90}
	}

	fig := stats.NewFigure("Tail latency vs offered load — open-loop client view vs closed-loop service view (ns)",
		"offered rate (fraction of closed-loop capacity)", "latency (ns)")
	tbl := stats.NewTable("Tail sweep — closed-loop capacity "+fmtFloat(capacity, 0)+" ops/s",
		"offered", "achieved/s", "lag", "open p50", "open p99", "open p999", "service p99", "engine p99")

	var lastOpen, lastSvc uint64
	for _, f := range fractions {
		rt := newRuntime(o, nil)
		bank, err := build(rt)
		if err != nil {
			return nil, fmt.Errorf("tailsweep: %w", err)
		}
		rt.SetLatencyTracking(true)
		res := bench.RunOpenLoop(rt, bench.OpenLoopConfig{
			Threads: o.Threads,
			Rate:    capacity * f,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    43,
		}, func(th *stm.Thread, rng *workload.Rng, _ uint64) { bank.op(th, rng) })
		engine := rt.LatencyStats()

		fig.SeriesNamed("open/p50").Add(f, float64(res.Latency.Quantile(0.50)))
		fig.SeriesNamed("open/p99").Add(f, float64(res.Latency.Quantile(0.99)))
		fig.SeriesNamed("service/p99").Add(f, float64(res.Service.Quantile(0.99)))
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", f*100),
			fmtFloat(res.Achieved, 0),
			res.Lag.Round(time.Millisecond).String(),
			time.Duration(res.Latency.Quantile(0.50)).String(),
			time.Duration(res.Latency.Quantile(0.99)).String(),
			time.Duration(res.Latency.Quantile(0.999)).String(),
			time.Duration(res.Service.Quantile(0.99)).String(),
			time.Duration(engine.Quantile(0.99)).String(),
		)
		lastOpen, lastSvc = res.Latency.Quantile(0.99), res.Service.Quantile(0.99)
	}

	var b strings.Builder
	b.WriteString(fig.Render())
	b.WriteString("\n")
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "\nclosed-loop latency (service view, all ops): %s\n", closedLat.Summary())
	b.WriteString("\nReading: 'open' percentiles count from each arrival's due time (client view,\n" +
		"coordinated-omission-safe); 'service' counts from issue time — what a closed\n" +
		"loop reports; 'engine' is the runtime's own per-attempt commit histogram\n" +
		"(stm.Runtime.LatencyStats). The open tail diverging from the flat service\n" +
		"tail as offered load approaches capacity is queueing delay the closed-loop\n" +
		"methodology structurally hides.\n")
	out := b.String()
	if o.CSV {
		out += "\n" + fig.CSV()
	}

	ratio := safeDiv(float64(lastOpen), float64(lastSvc))
	return &Report{
		ID:     "tailsweep",
		Title:  "Open- vs closed-loop tail latency across offered load",
		Output: out,
		Summary: fmt.Sprintf("at 90%% of closed-loop capacity the open-loop (client-view) p99 is %.1fx the service-view p99 — queueing delay closed-loop measurement hides",
			ratio),
	}, nil
}
