package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Table3 measures operation-latency distributions (extension experiment;
// see DESIGN.md §5): mean and tail latency per intset structure under the
// default configuration and under visible reads, at 20% updates with the
// standard worker count. Throughput (fig2/fig3) hides tails; visible
// reads add a constant per-read RMW cost but remove validation-failure
// retries, so their effect shows up differently at p50 and p99 — a
// latency-vs-throughput trade the tuner's commit-rate objective cannot
// see, documented here for completeness.
func Table3(o Options) (*Report, error) {
	o = o.normalized()
	tbl := stats.NewTable("Table 3 — operation latency (ns), 20% updates",
		"structure", "config", "mean", "p50", "p99")

	configs := []struct {
		name string
		cfg  stm.PartConfig
	}{
		{"invisible", stm.DefaultPartConfig()},
		{"visible", visibleConfig()},
	}

	specs := multiSetSpecs(o)
	var rows int
	for _, spec := range specs {
		s := spec
		s.UpdateRatio = 0.20
		for _, c := range configs {
			cfg := c.cfg
			rt := newRuntime(o, &cfg)
			th := rt.MustAttach()
			is := apps.NewIntSet(rt, th, s)
			rt.Detach(th)
			res := bench.Run(rt, bench.RunConfig{
				Threads:       o.Threads,
				Warmup:        o.Warmup,
				Measure:       o.PointDuration,
				Seed:          uint64(rows) + 31,
				SampleLatency: true,
			}, func(th *stm.Thread, rng *workload.Rng) { is.Op(th, rng) })
			if res.Latency == nil || res.Latency.Count() == 0 {
				continue
			}
			tbl.AddRow(s.Kind.String(), c.name,
				fmt.Sprintf("%.0f", res.Latency.Mean()),
				fmt.Sprintf("%d", res.Latency.Quantile(0.50)),
				fmt.Sprintf("%d", res.Latency.Quantile(0.99)))
			rows++
		}
	}

	return &Report{
		ID:      "table3",
		Title:   "Operation latency distributions per structure and read mode",
		Output:  tbl.Render(),
		Summary: fmt.Sprintf("%d structure/config latency rows sampled", rows),
	}, nil
}
