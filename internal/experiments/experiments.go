// Package experiments defines the reproduction of every table and figure
// of the paper's evaluation (as reconstructed in DESIGN.md §5). Each
// experiment builds fresh runtimes, drives the harness, and renders the
// same rows/series the paper reports. cmd/partbench exposes them on the
// command line; bench_test.go runs scaled-down versions under testing.B.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Options control experiment scale.
type Options struct {
	// Threads is the maximum worker count (sweeps use 1..Threads in
	// powers of two).
	Threads int
	// PointDuration is the measured window per data point.
	PointDuration time.Duration
	// Warmup precedes each measured window.
	Warmup time.Duration
	// YieldEveryOps configures interleaving simulation (see stm.Config).
	YieldEveryOps uint64
	// Quick shrinks sweeps for use under testing.B.
	Quick bool
	// CSV adds machine-readable output after each rendered artefact.
	CSV bool
}

// DefaultOptions returns the sizes used by cmd/partbench.
func DefaultOptions() Options {
	return Options{
		Threads:       8,
		PointDuration: 400 * time.Millisecond,
		Warmup:        100 * time.Millisecond,
		YieldEveryOps: 8,
	}
}

func (o Options) normalized() Options {
	if o.Threads <= 0 {
		o.Threads = 8
	}
	if o.PointDuration <= 0 {
		o.PointDuration = 400 * time.Millisecond
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.YieldEveryOps == 0 {
		o.YieldEveryOps = 8
	}
	return o
}

// threadSweep returns the thread counts of a scaling sweep.
func (o Options) threadSweep() []int {
	if o.Quick {
		return []int{o.Threads}
	}
	var ts []int
	for t := 1; t <= o.Threads; t *= 2 {
		ts = append(ts, t)
	}
	if len(ts) == 0 || ts[len(ts)-1] != o.Threads {
		ts = append(ts, o.Threads)
	}
	return ts
}

// Report is an experiment's rendered artefact.
type Report struct {
	ID     string
	Title  string
	Output string
	// Summary is a one-line verdict used by EXPERIMENTS.md.
	Summary string
}

// Experiment is one reproducible artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Partition inventory and per-partition characteristics", Table1},
		{"table2", "Runtime overhead of partition tracking", Table2},
		{"table3", "Operation latency distributions per structure and read mode", Table3},
		{"fig2", "Multi-structure application: partitioned+tuned vs global configs", Fig2},
		{"fig3", "Visible vs invisible reads across update ratios", Fig3},
		{"fig4", "Conflict-detection granularity sweep and hill-climbing tuner", Fig4},
		{"fig5", "Vacation application: partitioned+tuned vs global configs", Fig5},
		{"fig6", "Dynamic workload phases: adaptive vs static configurations", Fig6},
		{"fig7", "Write-strategy ablation (ETL-WB / ETL-WT / CTL) per structure", Fig7},
		{"fig8", "Contention-manager ablation at high and low contention", Fig8},
		{"fig9", "Conflict-detection granularity vs access skew", Fig9},
		{"fig10", "Extension applications (genome, kmeans)", Fig10},
		{"fig11", "Long transactions (labyrinth): contention-management policies", Fig11},
		{"clockscale", "Commit-clock scaling: global vs partition-local time bases", ClockScale},
		{"rsdedup", "Footprint-bounded bookkeeping: validate cost vs loads executed", RsDedup},
		{"contend", "Contention sweep: read-set extension and CM pauses at scale", Contend},
		{"mvscan", "Multi-version snapshot store: abort-free read-only scans under writers", MVScan},
		{"tailsweep", "Open- vs closed-loop tail latency across offered load", TailSweep},
		{"waltorture", "Durable log crash torture: conservation and acked floors across recoveries", WALTorture},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
}
