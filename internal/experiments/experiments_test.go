package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions shrinks every experiment to smoke-test size.
func tinyOptions() Options {
	return Options{
		Threads:       4,
		PointDuration: 40 * time.Millisecond,
		Warmup:        10 * time.Millisecond,
		YieldEveryOps: 8,
		Quick:         true,
		CSV:           true,
	}
}

func TestLookup(t *testing.T) {
	for _, e := range All() {
		got, err := Lookup(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("Lookup(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	if n.Threads <= 0 || n.PointDuration <= 0 || n.YieldEveryOps == 0 {
		t.Fatalf("normalized = %+v", n)
	}
	sweep := Options{Threads: 8}.threadSweep()
	want := []int{1, 2, 4, 8}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v", sweep)
		}
	}
	q := Options{Threads: 8, Quick: true}.threadSweep()
	if len(q) != 1 || q[0] != 8 {
		t.Fatalf("quick sweep = %v", q)
	}
	odd := Options{Threads: 6}.threadSweep()
	if odd[len(odd)-1] != 6 {
		t.Fatalf("odd sweep = %v", odd)
	}
}

// TestAllExperimentsSmoke runs every artefact at tiny scale: each must
// produce non-empty output and a summary without error. This is the
// regression net for the whole evaluation pipeline.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %q", rep.ID)
			}
			if strings.TrimSpace(rep.Output) == "" {
				t.Fatal("empty output")
			}
			if strings.TrimSpace(rep.Summary) == "" {
				t.Fatal("empty summary")
			}
		})
	}
}
