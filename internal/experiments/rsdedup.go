package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stm"
)

// RsDedup is an extension experiment beyond the paper's artefacts: it
// quantifies that validation and per-access bookkeeping cost is bounded by
// a transaction's footprint (unique orecs touched), not by the number of
// loads it executes. A read-only transaction sweeps a fixed footprint of F
// words `passes` times, so loads grow as passes×F while the footprint
// stays F; TinySTM-style read-set deduplication must keep the read set at
// F entries and the per-load cost flat (the pre-dedup engine grew the read
// set — and with it every validate/extend walk — linearly in loads). A
// second table does the same for the write set across the three write
// modes, exercising the open-addressed write-set index.
func RsDedup(o Options) (*Report, error) {
	o = o.normalized()
	const words = 128
	passesSweep := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		passesSweep = []int{1, 4, 16}
	}

	var out strings.Builder
	out.WriteString("Read-set dedup: fixed footprint, growing loads (single thread)\n")
	out.WriteString("passes  loads/tx  readset  ns/load  ns/tx\n")

	// Single-thread latency measurement: interleaving simulation
	// (YieldEveryOps) would only add scheduler noise, so it stays off.
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	th := rt.MustAttach()
	var base stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		base = tx.Alloc(stm.SiteID(0), words)
		for i := 0; i < words; i++ {
			tx.Store(base+stm.Addr(i), uint64(i))
		}
	})
	rt.Detach(th)

	iters := 4000
	if o.Quick {
		iters = 800
	}
	var nsPerLoadMin, nsPerLoadMax float64
	var rsLen int
	for _, passes := range passesSweep {
		p := passes
		res := bench.MeasureOp(rt, iters/4, iters, func(th *stm.Thread, _ *workload.Rng) {
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				var sink uint64
				for k := 0; k < p; k++ {
					for i := 0; i < words; i++ {
						sink += tx.Load(base + stm.Addr(i))
					}
				}
				_ = sink
				rsLen = tx.ReadSetLen()
			})
		})
		loads := p * words
		nsPerLoad := res.NsPerOp / float64(loads)
		if nsPerLoadMin == 0 || nsPerLoad < nsPerLoadMin {
			nsPerLoadMin = nsPerLoad
		}
		if nsPerLoad > nsPerLoadMax {
			nsPerLoadMax = nsPerLoad
		}
		out.WriteString(fmt.Sprintf("%-7d %-9d %-8d %-8.1f %.0f\n",
			p, loads, rsLen, nsPerLoad, res.NsPerOp))
		if rsLen != words {
			return nil, fmt.Errorf("rsdedup: read set has %d entries for footprint %d", rsLen, words)
		}
	}

	out.WriteString("\nWrite-set index: unique addresses per transaction (single thread)\n")
	out.WriteString("mode  writes/tx  writeset  ns/store\n")
	wmodes := []struct {
		name string
		mut  func(*stm.PartConfig)
	}{
		{"wb", func(c *stm.PartConfig) {}},
		{"wt", func(c *stm.PartConfig) { c.Write = stm.WriteThrough }},
		{"ctl", func(c *stm.PartConfig) { c.Acquire = stm.CommitTime }},
	}
	wsizes := []int{4, 64, 512}
	if o.Quick {
		wsizes = []int{4, 64}
	}
	for _, m := range wmodes {
		for _, n := range wsizes {
			cfg := stm.DefaultPartConfig()
			m.mut(&cfg)
			wrt := stm.MustNew(stm.Config{HeapWords: 1 << 22, Default: &cfg})
			wth := wrt.MustAttach()
			var wbase stm.Addr
			wth.Atomic(func(tx *stm.Tx) {
				wbase = tx.Alloc(stm.SiteID(0), n)
				for i := 0; i < n; i++ {
					tx.Store(wbase+stm.Addr(i), 0)
				}
			})
			wrt.Detach(wth)
			wn := n
			var wsLen int
			witers := 2000
			if o.Quick {
				witers = 400
			}
			res := bench.MeasureOp(wrt, witers/4, witers, func(th *stm.Thread, _ *workload.Rng) {
				th.Atomic(func(tx *stm.Tx) {
					// Two rounds per address: the second round must dedup.
					for round := 0; round < 2; round++ {
						for i := 0; i < wn; i++ {
							tx.Store(wbase+stm.Addr(i), uint64(round*wn+i))
						}
					}
					wsLen = tx.WriteSetLen()
				})
			})
			out.WriteString(fmt.Sprintf("%-5s %-10d %-9d %.1f\n",
				m.name, 2*wn, wsLen, res.NsPerOp/float64(2*wn)))
			if wsLen != wn {
				return nil, fmt.Errorf("rsdedup: write set has %d entries for %d unique addresses", wsLen, wn)
			}
		}
	}

	flatness := safeDiv(nsPerLoadMax, nsPerLoadMin)
	return &Report{
		ID:     "rsdedup",
		Title:  "Footprint-bounded bookkeeping: validate cost vs loads executed",
		Output: out.String(),
		Summary: fmt.Sprintf("read set stays at footprint (%d orecs) across %dx load growth; ns/load max/min ratio %.2f (flat); write set bounded by unique addresses in all write modes",
			words, passesSweep[len(passesSweep)-1], flatness),
	}, nil
}
