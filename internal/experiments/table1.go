package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Table1 reproduces the partition inventory: for each benchmark
// application, the partitions the analysis discovers and their measured
// characteristics (reads/tx, writes/tx, update ratio, abort rate). This
// is the paper's motivating observation — partitions of one application
// differ enough that a single STM configuration cannot fit all of them.
func Table1(o Options) (*Report, error) {
	o = o.normalized()
	out := &strings.Builder{}
	summary := []string{}

	// --- intset-multi ---
	{
		rt := newRuntime(o, nil)
		m, plan, err := buildMultiSetPartitioned(rt, multiSetConfig(o))
		if err != nil {
			return nil, err
		}
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    1,
		}, func(th *stm.Thread, rng *workload.Rng) { m.Op(th, rng) })

		tbl := statsTable("Table 1a — intset-multi partitions", rt, plan, res)
		out.WriteString(tbl.Render())
		out.WriteByte('\n')
		summary = append(summary, fmt.Sprintf("intset-multi: %d partitions discovered", plan.NumPartitions()-1))
	}

	// --- vacation ---
	{
		rt := newRuntime(o, nil)
		rt.StartProfiling()
		th := rt.MustAttach()
		vcfg := apps.DefaultVacationConfig()
		if o.Quick {
			vcfg.ItemsPerTable = 128
			vcfg.Customers = 128
		}
		v := apps.NewVacation(rt, th, vcfg)
		rng := workload.NewRng(2)
		for i := 0; i < 300; i++ {
			v.Op(th, rng)
		}
		rt.Detach(th)
		plan, err := rt.StopProfilingAndPartition()
		if err != nil {
			return nil, err
		}
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    2,
		}, func(th *stm.Thread, rng *workload.Rng) { v.Op(th, rng) })

		tbl := statsTable("Table 1b — vacation partitions", rt, plan, res)
		out.WriteString(tbl.Render())
		out.WriteByte('\n')
		summary = append(summary, fmt.Sprintf("vacation: %d partitions discovered", plan.NumPartitions()-1))
	}

	// --- bank ---
	{
		rt := newRuntime(o, nil)
		rt.StartProfiling()
		th := rt.MustAttach()
		bcfg := apps.DefaultBankConfig()
		if o.Quick {
			bcfg.Accounts = 256
		}
		b := apps.NewBank(rt, th, bcfg)
		rng := workload.NewRng(3)
		for i := 0; i < 300; i++ {
			b.Op(th, rng, bcfg)
		}
		rt.Detach(th)
		plan, err := rt.StopProfilingAndPartition()
		if err != nil {
			return nil, err
		}
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    3,
		}, func(th *stm.Thread, rng *workload.Rng) { b.Op(th, rng, bcfg) })

		tbl := statsTable("Table 1c — bank partitions", rt, plan, res)
		out.WriteString(tbl.Render())
		out.WriteByte('\n')
		summary = append(summary, fmt.Sprintf("bank: %d partitions discovered", plan.NumPartitions()-1))
	}

	// --- genome (extension application) ---
	{
		rt := newRuntime(o, nil)
		rt.StartProfiling()
		th := rt.MustAttach()
		gcfg := apps.DefaultGenomeConfig()
		if o.Quick {
			gcfg.SegmentSpace = 1 << 10
			gcfg.Buckets = 64
			gcfg.LinkSlots = 128
		}
		g := apps.NewGenome(rt, th, gcfg)
		rng := workload.NewRng(4)
		for i := 0; i < 300; i++ {
			g.Op(th, rng)
		}
		rt.Detach(th)
		plan, err := rt.StopProfilingAndPartition()
		if err != nil {
			return nil, err
		}
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    4,
		}, func(th *stm.Thread, rng *workload.Rng) { g.Op(th, rng) })

		tbl := statsTable("Table 1d — genome partitions (extension)", rt, plan, res)
		out.WriteString(tbl.Render())
		out.WriteByte('\n')
		summary = append(summary, fmt.Sprintf("genome: %d partitions discovered", plan.NumPartitions()-1))
	}

	// --- kmeans (extension application) ---
	{
		rt := newRuntime(o, nil)
		rt.StartProfiling()
		th := rt.MustAttach()
		kcfg := apps.DefaultKMeansConfig()
		if o.Quick {
			kcfg.Points = 512
		}
		km := apps.NewKMeans(rt, th, kcfg, 11)
		rng := workload.NewRng(5)
		for i := 0; i < 300; i++ {
			km.Op(th, rng, kcfg)
		}
		rt.Detach(th)
		plan, err := rt.StopProfilingAndPartition()
		if err != nil {
			return nil, err
		}
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    5,
		}, func(th *stm.Thread, rng *workload.Rng) { km.Op(th, rng, kcfg) })

		tbl := statsTable("Table 1e — kmeans partitions (extension)", rt, plan, res)
		out.WriteString(tbl.Render())
		summary = append(summary, fmt.Sprintf("kmeans: %d partitions discovered", plan.NumPartitions()-1))
	}

	return &Report{
		ID:      "table1",
		Title:   "Partition inventory and per-partition characteristics",
		Output:  out.String(),
		Summary: strings.Join(summary, "; "),
	}, nil
}

// statsTable renders one application's per-partition characteristics.
func statsTable(title string, rt *stm.Runtime, plan *stm.Plan, res bench.Result) *stats.Table {
	tbl := stats.NewTable(title,
		"partition", "sites", "commits", "upd-ratio", "reads/tx", "writes/tx", "abort-rate")
	for i, d := range res.PerPart {
		if d.Commits == 0 && d.TotalAborts() == 0 {
			continue
		}
		nsites := "-"
		if i < len(plan.Groups) {
			nsites = fmt.Sprintf("%d", len(plan.Groups[i]))
		}
		tbl.AddRow(
			d.Name,
			nsites,
			fmt.Sprintf("%d", d.Commits),
			fmtFloat(d.UpdateRatio(), 2),
			fmtFloat(perTx(d.Loads, d.Commits), 1),
			fmtFloat(perTx(d.Stores, d.Commits), 1),
			fmtFloat(d.AbortRate(), 3),
		)
	}
	return tbl
}
