package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig8 is the contention-management ablation (extension experiment; see
// DESIGN.md §5). The paper delegates lock-conflict arbitration to a
// per-partition CM policy but, with the evaluation text unavailable, does
// not pin a winner; this experiment measures every policy the engine
// implements on two workloads at the contention extremes:
//
//   - hot-bank: transfers over a tiny account array (every transaction
//     conflicts) — the regime where arbitration choice dominates.
//   - rbtree: a 4K-key red/black tree at 20% updates — mostly conflict-free,
//     where any CM overhead shows up as lost baseline throughput.
//
// Expected shape: under high contention the waiting policies (spin,
// backoff, karma, timestamp) clearly beat suicide, and the kill-happy
// aggressive policy wastes work; under low contention all policies are
// within noise of each other because the CM path is rarely taken.
func Fig8(o Options) (*Report, error) {
	o = o.normalized()
	policies := []stm.PartConfig{
		cmCfg(stm.CMSuicide),
		cmCfg(stm.CMSpin),
		cmCfg(stm.CMBackoff),
		cmCfg(stm.CMKarma),
		cmCfg(stm.CMTimestamp),
		cmCfg(stm.CMAggressive),
	}

	tbl := stats.NewTable("Fig. 8 — contention-manager ablation (ops/s | abort-rate)",
		"policy", "hot-bank", "hb-aborts", "rbtree-20u", "rb-aborts")

	type outcome struct {
		name        string
		hot, tree   float64
		hotA, treeA float64
	}
	var rows []outcome

	accounts := 64
	keyRange := uint64(4096)
	if o.Quick {
		keyRange = 512
	}

	for i, cfg := range policies {
		pol := cfg // copy for the closure below
		name := cfg.CM.String()

		// High contention: transfers over a tiny account array.
		rtHot := newRuntime(o, &pol)
		th := rtHot.MustAttach()
		bank := apps.NewBank(rtHot, th, apps.BankConfig{
			Accounts: accounts, InitialBalance: 1000, MaxTransfer: 10,
		})
		rtHot.Detach(th)
		hot := bench.Run(rtHot, bench.RunConfig{
			Threads: o.Threads, Warmup: o.Warmup, Measure: o.PointDuration,
			Seed: uint64(i) + 101,
		}, func(th *stm.Thread, rng *workload.Rng) {
			bank.Transfer(th, rng, 10)
		})

		// Low contention: wide red/black tree, 20% updates.
		rtTree := newRuntime(o, &pol)
		th = rtTree.MustAttach()
		set := apps.NewIntSet(rtTree, th, apps.IntSetSpec{
			Kind: apps.SetRBTree, Name: "fig8.tree", KeyRange: keyRange, UpdateRatio: 0.2,
		})
		rtTree.Detach(th)
		tree := bench.Run(rtTree, bench.RunConfig{
			Threads: o.Threads, Warmup: o.Warmup, Measure: o.PointDuration,
			Seed: uint64(i) + 201,
		}, func(th *stm.Thread, rng *workload.Rng) { set.Op(th, rng) })

		rows = append(rows, outcome{
			name: name,
			hot:  hot.Throughput, hotA: hot.AbortRate,
			tree: tree.Throughput, treeA: tree.AbortRate,
		})
		tbl.AddRow(name,
			fmt.Sprintf("%.0f", hot.Throughput), fmtFloat(hot.AbortRate, 3),
			fmt.Sprintf("%.0f", tree.Throughput), fmtFloat(tree.AbortRate, 3))
	}

	// Summary: best policy per workload and the suicide-vs-best gap under
	// contention.
	bestHot, bestTree := rows[0], rows[0]
	var suicideHot float64
	for _, r := range rows {
		if r.hot > bestHot.hot {
			bestHot = r
		}
		if r.tree > bestTree.tree {
			bestTree = r
		}
		if r.name == "suicide" {
			suicideHot = r.hot
		}
	}
	gap := 0.0
	if suicideHot > 0 {
		gap = bestHot.hot / suicideHot
	}
	return &Report{
		ID:     "fig8",
		Title:  "Contention-manager ablation at high and low contention",
		Output: tbl.Render(),
		Summary: fmt.Sprintf("hot-bank best: %s (%.1fx over suicide); rbtree best: %s",
			bestHot.name, gap, bestTree.name),
	}, nil
}

// cmCfg returns the default configuration with one CM policy substituted.
func cmCfg(p stm.CMPolicy) stm.PartConfig {
	c := stm.DefaultPartConfig()
	c.CM = p
	return c
}
