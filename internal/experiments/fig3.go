package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Fig3 reproduces the visible-vs-invisible reads comparison. The paper's
// claim: visible reads "typically perform better on workloads with a high
// percentage of update transactions", invisible reads win otherwise.
//
// The workload makes the mechanism explicit: a counter array where each
// operation is either a short two-slot transfer or a "rebalance" — an
// update transaction that scans the whole array and then moves one unit
// out of its fullest slot. Rebalances have large read sets; under
// invisible reads the transfer churn invalidates their snapshots and
// they die repeatedly on validation, while visible reads with reader
// priority pin the scanned slots (the short transfers wait or yield) and
// the rebalance completes. The x-axis sweeps the share of these long
// update transactions.
//
// Reported: throughput and abort rate for both modes; the crossover point
// is the experiment's result.
func Fig3(o Options) (*Report, error) {
	o = o.normalized()
	thr := stats.NewFigure("Fig. 3a — throughput vs long-update-tx ratio (ops/s)", "rebalance%", "operations per second")
	ab := stats.NewFigure("Fig. 3b — abort rate vs long-update-tx ratio", "rebalance%", "aborts/(commits+aborts), ×1000")

	ratios := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5}
	if o.Quick {
		ratios = []float64{0, 0.05, 0.2}
	}
	slots := 1024
	if o.Quick {
		slots = 256
	}

	inv := stm.DefaultPartConfig()
	vis := stm.DefaultPartConfig()
	vis.Read = stm.VisibleReads
	vis.ReaderCM = stm.WriterYieldsToReaders
	modes := []struct {
		name string
		cfg  stm.PartConfig
	}{{"invisible", inv}, {"visible", vis}}

	type point struct{ inv, vis float64 }
	results := map[float64]*point{}
	for _, ratio := range ratios {
		results[ratio] = &point{}
		for _, m := range modes {
			cfg := m.cfg
			rt := newRuntime(o, &cfg)
			th := rt.MustAttach()
			var c *txds.CounterArray
			th.Atomic(func(tx *stm.Tx) { c = txds.NewCounterArray(tx, rt, "fig3.arr", slots, 100) })
			rt.Detach(th)
			res := bench.Run(rt, bench.RunConfig{
				Threads: o.Threads,
				Warmup:  o.Warmup,
				Measure: o.PointDuration,
				Seed:    uint64(ratio*100) + 11,
			}, scanUpdateOp(c, ratio))
			thr.SeriesNamed(m.name).Add(ratio*100, res.Throughput)
			ab.SeriesNamed(m.name).Add(ratio*100, res.AbortRate*1000)
			if m.name == "invisible" {
				results[ratio].inv = res.Throughput
			} else {
				results[ratio].vis = res.Throughput
			}
		}
	}

	// Locate the crossover (first ratio where visible wins).
	crossover := -1.0
	for _, r := range ratios {
		if results[r].vis > results[r].inv {
			crossover = r
			break
		}
	}

	out := thr.Render() + "\n" + ab.Render()
	if o.CSV {
		out += "\n" + thr.CSV() + "\n" + ab.CSV()
	}
	lo, hi := ratios[0], ratios[len(ratios)-1]
	summary := fmt.Sprintf(
		"invisible/visible at %.0f%% updates: %.2f; at %.0f%% updates: %.2f; ",
		lo*100, safeDiv(results[lo].inv, results[lo].vis),
		hi*100, safeDiv(results[hi].inv, results[hi].vis))
	if crossover >= 0 {
		summary += fmt.Sprintf("crossover at ~%.0f%% updates", crossover*100)
	} else {
		summary += "no crossover in the swept range"
	}
	return &Report{
		ID:      "fig3",
		Title:   "Visible vs invisible reads across update ratios",
		Output:  out,
		Summary: summary,
	}, nil
}

// scanUpdateOp builds the fig3 operation: rebalance with probability
// ratio, short transfer otherwise. The rebalance scans the whole array
// for its fullest slot and moves one unit to a random slot — the write is
// unconditional (except in the degenerate same-slot draw), so rebalances
// always churn the array.
func scanUpdateOp(c *txds.CounterArray, ratio float64) bench.OpFunc {
	return func(th *stm.Thread, rng *workload.Rng) {
		if rng.Float64() < ratio {
			to := rng.Intn(c.N())
			th.Atomic(func(tx *stm.Tx) {
				maxI := 0
				maxV := uint64(0)
				for i := 0; i < c.N(); i++ {
					if v := c.Get(tx, i); v > maxV {
						maxV, maxI = v, i
					}
				}
				if maxI != to && maxV > 0 {
					c.Transfer(tx, maxI, to, 1)
				}
			})
			return
		}
		from, to := rng.Intn(c.N()), rng.Intn(c.N())
		th.Atomic(func(tx *stm.Tx) { c.Transfer(tx, from, to, 1) })
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
