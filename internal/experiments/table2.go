package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Table2 measures the runtime overhead of partition tracking: the
// address→partition lookup on every access plus per-partition statistics.
// Single-threaded, no interleaving simulation, so the numbers isolate the
// bookkeeping cost rather than contention effects. The paper's claim is
// that this overhead is modest and recouped by per-partition tuning.
func Table2(o Options) (*Report, error) {
	o = o.normalized()
	tbl := stats.NewTable("Table 2 — partition-tracking overhead (1 thread, ops/s)",
		"structure", "updates", "unpartitioned", "partitioned", "overhead")

	specs := multiSetSpecs(o)
	var worst float64
	for _, spec := range specs {
		for _, upd := range []float64{0.0, 0.2} {
			s := spec
			s.UpdateRatio = upd

			// Baseline: single global partition (no plan installed).
			base := measureSingle(o, s, false)
			// Partitioned: the structure in its own partition.
			part := measureSingle(o, s, true)

			overhead := 0.0
			if part > 0 {
				overhead = base/part - 1
			}
			if overhead > worst {
				worst = overhead
			}
			tbl.AddRow(
				s.Kind.String(),
				fmtFloat(upd, 1),
				fmt.Sprintf("%.0f", base),
				fmt.Sprintf("%.0f", part),
				fmt.Sprintf("%+.1f%%", overhead*100),
			)
		}
	}

	return &Report{
		ID:      "table2",
		Title:   "Runtime overhead of partition tracking",
		Output:  tbl.Render(),
		Summary: fmt.Sprintf("worst-case tracking overhead %.1f%%", worst*100),
	}, nil
}

// measureSingle runs one structure single-threaded and returns ops/s.
func measureSingle(o Options, spec apps.IntSetSpec, partitioned bool) float64 {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22}) // no yield injection
	if partitioned {
		rt.StartProfiling()
	}
	th := rt.MustAttach()
	is := apps.NewIntSet(rt, th, spec)
	rt.Detach(th)
	if partitioned {
		if _, err := rt.StopProfilingAndPartition(); err != nil {
			panic(err) // configuration error in the experiment itself
		}
	}
	res := bench.Run(rt, bench.RunConfig{
		Threads: 1,
		Warmup:  o.Warmup,
		Measure: o.PointDuration,
		Seed:    7,
	}, func(th *stm.Thread, rng *workload.Rng) { is.Op(th, rng) })
	return res.Throughput
}
