package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/workload"
	"repro/stm"
)

// newRuntime builds a fresh runtime for one experiment point.
func newRuntime(o Options, cfg *stm.PartConfig) *stm.Runtime {
	c := stm.Config{
		HeapWords:     1 << 22,
		YieldEveryOps: o.YieldEveryOps,
	}
	if cfg != nil {
		c.Default = cfg
	}
	return stm.MustNew(c)
}

// multiSetSpecs returns the fig2/table1 structure mix, shrunk under Quick.
func multiSetSpecs(o Options) []apps.IntSetSpec {
	specs := apps.DefaultMultiSetSpecs()
	if o.Quick {
		for i := range specs {
			specs[i].KeyRange /= 8
			if specs[i].Buckets > 0 {
				specs[i].Buckets /= 8
			}
		}
	}
	return specs
}

// multiSetConfig returns the full composite-application configuration
// (structures plus ledger), shrunk under Quick.
func multiSetConfig(o Options) apps.MultiSetConfig {
	ledger := apps.DefaultLedgerSpec()
	if o.Quick {
		ledger.Slots /= 4
	}
	return apps.MultiSetConfig{Specs: multiSetSpecs(o), Ledger: &ledger}
}

// buildMultiSetPartitioned constructs the multi-structure app under
// profiling and installs the discovered plan. It returns the app and the
// plan.
func buildMultiSetPartitioned(rt *stm.Runtime, cfg apps.MultiSetConfig) (*apps.MultiSet, *stm.Plan, error) {
	rt.StartProfiling()
	th := rt.MustAttach()
	m := apps.NewMultiSetApp(rt, th, cfg)
	// A short mixed run gives the analyzer the steady-state pointer graph
	// (inserts during population already linked all sites, but exercise
	// removes too).
	rng := workload.NewRng(123)
	for i := 0; i < 500; i++ {
		m.Op(th, rng)
	}
	rt.Detach(th)
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		return nil, nil, fmt.Errorf("partitioning: %w", err)
	}
	return m, plan, nil
}

// visibleConfig returns the deliberately update-oriented global
// configuration used as the "wrong one-size-fits-all" contrast.
func visibleConfig() stm.PartConfig {
	c := stm.DefaultPartConfig()
	c.Read = stm.VisibleReads
	return c
}

// fmtFloat renders a float for table cells.
func fmtFloat(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// perTx divides safely.
func perTx(n, txs uint64) float64 {
	if txs == 0 {
		return 0
	}
	return float64(n) / float64(txs)
}
