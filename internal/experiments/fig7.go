package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig7 is the write-strategy ablation the paper's introduction motivates
// ("different workloads require ... even different transactional memory
// designs"): each intset structure at 20% updates under encounter-time
// write-back, encounter-time write-through, and commit-time locking.
// Expected shape: WT's cheap commits win when aborts are rare; CTL's
// short lock-hold times help contended structures; WB sits between.
func Fig7(o Options) (*Report, error) {
	o = o.normalized()
	tbl := stats.NewTable("Fig. 7 — write-strategy ablation (ops/s, 20% updates)",
		"structure", "etl-wb", "etl-wt", "ctl", "best")

	strategies := []struct {
		name    string
		acquire stm.PartConfig
	}{
		{"etl-wb", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Write = stm.WriteBack; return c }()},
		{"etl-wt", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Write = stm.WriteThrough; return c }()},
		{"ctl", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Acquire = stm.CommitTime; return c }()},
	}

	specs := multiSetSpecs(o)
	summary := make([]string, 0, len(specs))
	for _, spec := range specs {
		s := spec
		s.UpdateRatio = 0.20
		row := []string{s.Kind.String()}
		best, bestName := 0.0, ""
		for _, strat := range strategies {
			cfg := strat.acquire
			rt := newRuntime(o, &cfg)
			th := rt.MustAttach()
			is := apps.NewIntSet(rt, th, s)
			rt.Detach(th)
			res := bench.Run(rt, bench.RunConfig{
				Threads: o.Threads,
				Warmup:  o.Warmup,
				Measure: o.PointDuration,
				Seed:    uint64(len(row)) + 3,
			}, func(th *stm.Thread, rng *workload.Rng) { is.Op(th, rng) })
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
			if res.Throughput > best {
				best, bestName = res.Throughput, strat.name
			}
		}
		row = append(row, bestName)
		tbl.AddRow(row...)
		summary = append(summary, fmt.Sprintf("%s:%s", s.Kind, bestName))
	}

	return &Report{
		ID:      "fig7",
		Title:   "Write-strategy ablation (ETL-WB / ETL-WT / CTL) per structure",
		Output:  tbl.Render(),
		Summary: "best strategy per structure — " + fmt.Sprint(summary),
	}, nil
}
