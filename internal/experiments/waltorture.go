package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// WALTorture is a robustness artefact rather than a performance figure:
// repeated crash/recover rounds over one durable heap directory. Each
// round opens a Sync-durable runtime, verifies the two recovery
// invariants against what the previous round acknowledged — conservation
// (transfer traffic keeps the balance sum constant, so ANY consistent
// log prefix must reproduce it) and the acked floor (every commit whose
// Run returned under DurabilitySync must still be visible) — then runs
// transfer workers for a few milliseconds and crashes via Abandon (the
// log stops flushing mid-traffic, exactly what SIGKILL leaves on a
// filesystem whose fsynced prefix survives). Some rounds additionally
// tear the tail of the newest segment file with os.Truncate before
// recovery; recovery must truncate the torn frame and keep the prefix
// (the acked floor is waived on those rounds — a tear may legitimately
// eat fsynced-but-torn bytes — conservation is not). Checkpoints are
// taken on a cadence so recovery alternates between pure replay and
// checkpoint+tail replay, and truncation keeps the directory bounded.
// The separately shipped SIGKILL harness (internal/wal TestWALTorture)
// does the same with real process kills and crash-point injection; this
// experiment makes the protocol observable outside the test suite.
func WALTorture(o Options) (*Report, error) {
	o = o.normalized()
	rounds := 12
	if o.Quick {
		rounds = 5
	}
	const (
		accounts = 48
		balance  = 1000
		total    = accounts * balance
	)
	workers := o.Threads
	if workers > 4 {
		workers = 4
	}

	dir, err := os.MkdirTemp("", "waltorture")
	if err != nil {
		return nil, fmt.Errorf("waltorture: %w", err)
	}
	defer os.RemoveAll(dir)

	open := func() (*stm.Runtime, error) {
		return stm.New(stm.Config{
			HeapWords:  1 << 16,
			BlockShift: 8,
			WAL: &stm.WALConfig{
				Dir:                 dir,
				Durability:          stm.DurabilitySync,
				GroupCommitInterval: 100 * time.Microsecond,
			},
		})
	}

	// Seed the accounts and per-worker acked counters, crash immediately:
	// round 1 already starts from a recovery.
	rt, err := open()
	if err != nil {
		return nil, fmt.Errorf("waltorture: %w", err)
	}
	var base stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		base = tx.Alloc(rt.RegisterSite("torture.cells"), accounts+workers)
		for i := 0; i < accounts; i++ {
			tx.Store(base+stm.Addr(i), balance)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("waltorture: seed: %w", err)
	}
	rt.WAL().Abandon()

	tbl := stats.NewTable(
		fmt.Sprintf("WAL crash torture — %d rounds, %d workers, %d accounts (Sync durability)", rounds, workers, accounts),
		"round", "crash", "ckpt seq", "replayed", "torn bytes", "sum", "acked floor")

	rng := workload.NewRng(7)
	floors := make([]uint64, workers) // acked per-worker counters from the previous round
	floorsValid := true               // false after a tail-tear round
	var replayedTotal, tornRounds, checkpoints uint64

	for round := 1; round <= rounds; round++ {
		rt, err := open()
		if err != nil {
			return nil, fmt.Errorf("waltorture: round %d: recovery failed: %w", round, err)
		}
		info := rt.Recovery()
		replayedTotal += uint64(info.Records)

		// Invariant checks against the crashed previous round.
		var sum uint64
		floorOK := true
		if err := rt.Run(func(tx *stm.Tx) error {
			sum = 0
			for i := 0; i < accounts; i++ {
				sum += tx.Load(base + stm.Addr(i))
			}
			for w := 0; w < workers; w++ {
				if tx.Load(base+stm.Addr(accounts+w)) < floors[w] {
					floorOK = false
				}
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("waltorture: round %d: %w", round, err)
		}
		sumOK := sum == total
		floorCell := "ok"
		if !floorsValid {
			floorCell = "waived (torn)"
		} else if !floorOK {
			floorCell = "LOST"
		}
		sumCell := "ok"
		if !sumOK {
			sumCell = fmt.Sprintf("BROKEN (%d)", sum)
		}

		// Fresh traffic: transfer workers racing for a few milliseconds,
		// each bumping its acked counter inside the same transaction and
		// recording the floor only after Run returns.
		acked := make([]atomic.Uint64, workers)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := workload.NewRng(uint64(round*131 + w))
				for n := uint64(1); ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					i := stm.Addr(r.Intn(accounts))
					j := stm.Addr(r.Intn(accounts))
					amt := uint64(r.Intn(40))
					if err := rt.Run(func(tx *stm.Tx) error {
						tx.Store(base+i, tx.Load(base+i)-amt)
						tx.Store(base+j, tx.Load(base+j)+amt)
						tx.Store(base+stm.Addr(accounts+w), n)
						return nil
					}); err != nil {
						return
					}
					acked[w].Store(n)
				}
			}(w)
		}
		time.Sleep(time.Duration(2+rng.Intn(12)) * time.Millisecond)
		if round%3 == 0 {
			if _, err := rt.Checkpoint(); err != nil {
				return nil, fmt.Errorf("waltorture: round %d: checkpoint: %w", round, err)
			}
			checkpoints++
		}
		close(stop)
		wg.Wait()
		for w := 0; w < workers; w++ {
			floors[w] = acked[w].Load()
		}
		rt.WAL().Abandon() // crash

		// Some rounds tear the tail of the newest segment before the next
		// recovery sees the directory.
		tornBytes := 0
		floorsValid = true
		if round%4 == 2 {
			if n, err := tearNewestSegment(dir, rng); err == nil && n > 0 {
				tornBytes = n
				tornRounds++
				floorsValid = false // the tear may have eaten acked bytes
			}
		}

		tbl.AddRow(
			fmt.Sprintf("%d", round),
			crashKind(tornBytes),
			fmt.Sprintf("%d", info.CheckpointSeq),
			fmt.Sprintf("%d", info.Records),
			fmt.Sprintf("%d", tornBytes),
			sumCell,
			floorCell,
		)
		if !sumOK {
			return nil, fmt.Errorf("waltorture: round %d: conservation violated: sum %d, want %d", round, sum, total)
		}
		if floorCell == "LOST" {
			return nil, fmt.Errorf("waltorture: round %d: Sync-acked commit lost after recovery", round)
		}
	}

	// Final recovery must land clean as well.
	final, err := open()
	if err != nil {
		return nil, fmt.Errorf("waltorture: final recovery: %w", err)
	}
	defer final.Close()
	var sum uint64
	final.Run(func(tx *stm.Tx) error {
		for i := 0; i < accounts; i++ {
			sum += tx.Load(base + stm.Addr(i))
		}
		return nil
	})
	if sum != total {
		return nil, fmt.Errorf("waltorture: final sum %d, want %d", sum, total)
	}

	var b strings.Builder
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "\n%d crash/recover rounds over one directory: %d records replayed in total, %d checkpoints, %d torn-tail rounds.\n",
		rounds, replayedTotal, checkpoints, tornRounds)
	b.WriteString("Reading: 'sum' is conservation (balance total constant under transfers — any\n" +
		"consistent replay prefix reproduces it); 'acked floor' holds when every commit\n" +
		"acknowledged by a DurabilitySync Run before the crash is visible after recovery.\n" +
		"Torn-tail rounds truncate the newest segment mid-frame before recovering; the\n" +
		"floor is waived there (a tear may destroy fsynced bytes) but conservation never is.\n")

	return &Report{
		ID:     "waltorture",
		Title:  "Durable log crash torture: conservation and acked-commit floors across recoveries",
		Output: b.String(),
		Summary: fmt.Sprintf("%d crash/recover rounds (incl. %d torn tails): conservation held in every round and no Sync-acked commit was lost",
			rounds, tornRounds),
	}, nil
}

func crashKind(tornBytes int) string {
	if tornBytes > 0 {
		return "abandon+tear"
	}
	return "abandon"
}

// tearNewestSegment truncates a random number of bytes off the end of the
// newest WAL segment, leaving at least the segment header — the on-disk
// shape of a write torn by power loss.
func tearNewestSegment(dir string, rng *workload.Rng) (int, error) {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		return 0, err
	}
	sort.Strings(segs) // startSeq is %016x, so lexicographic == numeric
	newest := segs[len(segs)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		return 0, err
	}
	const segHeader = 20
	room := fi.Size() - segHeader
	if room <= 0 {
		return 0, nil
	}
	cut := int64(1 + rng.Intn(int(min64(room, 512))))
	if err := os.Truncate(newest, fi.Size()-cut); err != nil {
		return 0, err
	}
	return int(cut), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
