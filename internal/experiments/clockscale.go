package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// branchBank is a bank whose accounts are split into per-branch arrays,
// one partition per branch: the cleanest possible stage for the commit
// clock, because transfers inside a branch are single-partition update
// transactions while cross-branch transfers span two partitions.
type branchBank struct {
	branches []*txds.CounterArray
	perBr    int
	// crossRatio is the fraction of transfers that cross branches.
	crossRatio float64
}

func newBranchBank(rt *stm.Runtime, nBranches, perBranch int, crossRatio float64) (*branchBank, error) {
	b := &branchBank{perBr: perBranch, crossRatio: crossRatio}
	th := rt.MustAttach()
	groups := make(map[string][]string, nBranches)
	for i := 0; i < nBranches; i++ {
		name := fmt.Sprintf("branch%d", i)
		th.Atomic(func(tx *stm.Tx) {
			b.branches = append(b.branches, txds.NewCounterArray(tx, rt, name, perBranch, 1000))
		})
		groups[name] = []string{name + ".slots"}
	}
	rt.Detach(th)
	if _, err := rt.ManualPartition(groups); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *branchBank) op(th *stm.Thread, rng *workload.Rng) {
	fb := rng.Intn(len(b.branches))
	tb := fb
	if rng.Float64() < b.crossRatio {
		tb = rng.Intn(len(b.branches))
	}
	fi, ti := rng.Intn(b.perBr), rng.Intn(b.perBr)
	th.Atomic(func(tx *stm.Tx) {
		amt := 1 + rng.Uint64()%10
		v := b.branches[fb].Get(tx, fi)
		if v < amt || (fb == tb && fi == ti) {
			return
		}
		b.branches[fb].Set(tx, fi, v-amt)
		b.branches[tb].Add(tx, ti, amt)
	})
}

// clockCase is one workload of the clock-scaling comparison: build
// constructs and partitions the application on rt and returns the
// benchmark operation.
type clockCase struct {
	name  string
	build func(o Options, rt *stm.Runtime) (bench.OpFunc, error)
}

func clockCases(o Options) []clockCase {
	return []clockCase{
		{"bank", func(o Options, rt *stm.Runtime) (bench.OpFunc, error) {
			branches, per := 8, 1024
			if o.Quick {
				branches, per = 4, 256
			}
			b, err := newBranchBank(rt, branches, per, 0.02)
			if err != nil {
				return nil, err
			}
			return func(th *stm.Thread, rng *workload.Rng) { b.op(th, rng) }, nil
		}},
		{"intset", func(o Options, rt *stm.Runtime) (bench.OpFunc, error) {
			m, _, err := buildMultiSetPartitioned(rt, multiSetConfig(o))
			if err != nil {
				return nil, err
			}
			return func(th *stm.Thread, rng *workload.Rng) { m.Op(th, rng) }, nil
		}},
		{"vacation", func(o Options, rt *stm.Runtime) (bench.OpFunc, error) {
			vcfg := apps.DefaultVacationConfig()
			if o.Quick {
				vcfg.ItemsPerTable = 128
				vcfg.Customers = 128
			}
			rt.StartProfiling()
			th := rt.MustAttach()
			v := apps.NewVacation(rt, th, vcfg)
			rng := workload.NewRng(31)
			for i := 0; i < 300; i++ {
				v.Op(th, rng)
			}
			rt.Detach(th)
			if _, err := rt.StopProfilingAndPartition(); err != nil {
				return nil, err
			}
			return func(th *stm.Thread, rng *workload.Rng) { v.Op(th, rng) }, nil
		}},
	}
}

// ClockScale is an extension experiment beyond the paper's artefacts: the
// same partitioned workloads run under the global commit counter and
// under partition-local commit counters (internal/clock), sweeping
// threads. Alongside throughput it reports the shared-RMW ledger of each
// time base — the paper's "maintain the time base per partition" argument
// made measurable: under PartitionLocal only cross-partition commits
// touch shared clock state, so the shared-RMW count collapses from "every
// update commit" to "every cross-partition commit".
func ClockScale(o Options) (*Report, error) {
	o = o.normalized()
	fig := stats.NewFigure("Clock scaling — global vs partition-local time base (ops/s)",
		"threads", "operations per second")

	modes := []struct {
		name string
		tb   stm.TimeBaseMode
	}{
		{"global", stm.TimeBaseGlobal},
		{"plocal", stm.TimeBasePartitionLocal},
	}

	var ledger strings.Builder
	ledger.WriteString("shared-RMW ledger (max-thread point):\n")
	ledger.WriteString("workload   timebase  updates    shared-RMWs  cross-commits  shared/update\n")

	var sumRatio float64
	var nRatio int
	best := map[string]map[string]float64{} // workload -> mode -> peak ops/s
	for _, c := range clockCases(o) {
		best[c.name] = map[string]float64{}
		for _, m := range modes {
			for _, threads := range o.threadSweep() {
				rt := newRuntime(o, nil)
				op, err := c.build(o, rt)
				if err != nil {
					return nil, fmt.Errorf("clockscale %s: %w", c.name, err)
				}
				rt.SetTimeBase(m.tb)
				cs0 := rt.ClockStats()
				st0 := rt.Stats()
				res := bench.Run(rt, bench.RunConfig{
					Threads: threads,
					Warmup:  o.Warmup,
					Measure: o.PointDuration,
					Seed:    uint64(threads) + 19,
				}, op)
				fig.SeriesNamed(c.name+"/"+m.name).Add(float64(threads), res.Throughput)
				if res.Throughput > best[c.name][m.name] {
					best[c.name][m.name] = res.Throughput
				}
				if threads == o.threadSweep()[len(o.threadSweep())-1] {
					cs1 := rt.ClockStats()
					st1 := rt.Stats()
					var updates uint64
					for i := range st1 {
						updates += st1[i].UpdateCommits
						if i < len(st0) {
							updates -= st0[i].UpdateCommits
						}
					}
					shared := cs1.SharedRMWs - cs0.SharedRMWs
					cross := cs1.CrossCommits - cs0.CrossCommits
					ledger.WriteString(fmt.Sprintf("%-10s %-9s %-10d %-12d %-14d %.4f\n",
						c.name, m.name, updates, shared, cross,
						safeDiv(float64(shared), float64(updates))))
				}
			}
		}
		if g, p := best[c.name]["global"], best[c.name]["plocal"]; g > 0 && p > 0 {
			sumRatio += p / g
			nRatio++
		}
	}

	out := fig.Render() + "\n" + ledger.String()
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	meanRatio := 0.0
	if nRatio > 0 {
		meanRatio = sumRatio / float64(nRatio)
	}
	return &Report{
		ID:     "clockscale",
		Title:  "Commit-clock scaling: global vs partition-local time bases",
		Output: out,
		Summary: fmt.Sprintf("partition-local/global peak throughput ratio %.2f (mean over %d workloads); shared clock RMWs collapse to cross-partition commits only",
			meanRatio, nRatio),
	}, nil
}
