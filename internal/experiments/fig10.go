package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig10 extends the application study (fig5) to the two STAMP-inspired
// extension workloads, genome and kmeans (extension experiment; see
// DESIGN.md §5). Both contain structures whose transactional profiles
// differ sharply (genome: dedup set vs read-only index; kmeans: read-
// mostly centroids vs write-hot accumulators), so the partitioned+tuned
// configuration should track the better of the two global configurations
// on each application without per-application hand-tuning.
func Fig10(o Options) (*Report, error) {
	o = o.normalized()
	tbl := stats.NewTable("Fig. 10 — genome & kmeans (ops/s)",
		"app", "global-invisible", "global-visible", "partitioned+tuned", "tuned/best-global")

	type appCase struct {
		name  string
		setup func(rt *stm.Runtime, th *stm.Thread) (op func(*stm.Thread, *workload.Rng), warm func(*stm.Thread))
	}

	gcfg := apps.DefaultGenomeConfig()
	kcfg := apps.DefaultKMeansConfig()
	if o.Quick {
		gcfg.SegmentSpace = 1 << 10
		gcfg.Buckets = 64
		gcfg.LinkSlots = 128
		kcfg.Points = 512
	}

	cases := []appCase{
		{"genome", func(rt *stm.Runtime, th *stm.Thread) (func(*stm.Thread, *workload.Rng), func(*stm.Thread)) {
			g := apps.NewGenome(rt, th, gcfg)
			return func(th *stm.Thread, rng *workload.Rng) { g.Op(th, rng) },
				func(th *stm.Thread) {
					rng := workload.NewRng(51)
					for i := 0; i < 300; i++ {
						g.Op(th, rng)
					}
				}
		}},
		{"kmeans", func(rt *stm.Runtime, th *stm.Thread) (func(*stm.Thread, *workload.Rng), func(*stm.Thread)) {
			km := apps.NewKMeans(rt, th, kcfg, 7)
			return func(th *stm.Thread, rng *workload.Rng) { km.Op(th, rng, kcfg) },
				func(th *stm.Thread) {
					rng := workload.NewRng(53)
					for i := 0; i < 300; i++ {
						km.Op(th, rng, kcfg)
					}
				}
		}},
	}

	inv := stm.DefaultPartConfig()
	vis := visibleConfig()
	var summaries []string
	for _, c := range cases {
		var results [3]float64
		for i, regime := range []struct {
			global      *stm.PartConfig
			partitioned bool
		}{
			{&inv, false},
			{&vis, false},
			{nil, true},
		} {
			rt := newRuntime(o, regime.global)
			if regime.partitioned {
				rt.StartProfiling()
			}
			th := rt.MustAttach()
			op, warm := c.setup(rt, th)
			if regime.partitioned {
				warm(th)
			}
			rt.Detach(th)
			warmup := o.Warmup
			if regime.partitioned {
				if _, err := rt.StopProfilingAndPartition(); err != nil {
					return nil, err
				}
				tc := stm.DefaultTunerConfig()
				tc.Interval = 30 * time.Millisecond
				tc.HillClimb = false
				rt.StartTuner(tc)
				warmup += 10 * 30 * time.Millisecond
			}
			res := bench.Run(rt, bench.RunConfig{
				Threads: o.Threads, Warmup: warmup, Measure: o.PointDuration,
				Seed: uint64(i) + 501,
			}, op)
			if regime.partitioned {
				rt.StopTuner()
			}
			results[i] = res.Throughput
		}
		bestGlobal := results[0]
		if results[1] > bestGlobal {
			bestGlobal = results[1]
		}
		ratio := safeDiv(results[2], bestGlobal)
		tbl.AddRow(c.name,
			fmt.Sprintf("%.0f", results[0]),
			fmt.Sprintf("%.0f", results[1]),
			fmt.Sprintf("%.0f", results[2]),
			fmtFloat(ratio, 2))
		summaries = append(summaries, fmt.Sprintf("%s tuned/best-global %.2f", c.name, ratio))
	}

	return &Report{
		ID:      "fig10",
		Title:   "Extension applications (genome, kmeans): partitioned+tuned vs global configs",
		Output:  tbl.Render(),
		Summary: fmt.Sprint(summaries),
	}, nil
}
