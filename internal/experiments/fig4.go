package experiments

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Fig4 reproduces the conflict-detection granularity experiment: a
// counter array under concurrent transfers plus audit scans, swept across
// static lock-array sizes (LockBits), overlaid with the hill-climbing
// tuner's trajectory. Small tables make unrelated counters share orecs
// (false conflicts); oversized tables waste cache. The tuner should land
// on the flat part of the curve.
func Fig4(o Options) (*Report, error) {
	o = o.normalized()
	fig := stats.NewFigure("Fig. 4 — throughput vs lock-array size (ops/s)", "lockBits", "operations per second")

	bitsSweep := []uint{4, 6, 8, 10, 12, 14, 16}
	if o.Quick {
		bitsSweep = []uint{4, 10, 16}
	}
	slots := 1 << 14
	if o.Quick {
		slots = 1 << 10
	}

	op := func(c *txds.CounterArray) bench.OpFunc {
		return func(th *stm.Thread, rng *workload.Rng) {
			if rng.Float64() < 0.02 {
				th.ReadOnlyAtomic(func(tx *stm.Tx) { c.Sum(tx) })
				return
			}
			from, to := rng.Intn(c.N()), rng.Intn(c.N())
			th.Atomic(func(tx *stm.Tx) { c.Transfer(tx, from, to, 1) })
		}
	}

	var best float64
	var bestBits uint
	for _, bits := range bitsSweep {
		cfg := stm.DefaultPartConfig()
		cfg.LockBits = bits
		cfg.CM = stm.CMSuicide
		rt := newRuntime(o, &cfg)
		th := rt.MustAttach()
		var c *txds.CounterArray
		th.Atomic(func(tx *stm.Tx) { c = txds.NewCounterArray(tx, rt, "fig4.counters", slots, 100) })
		rt.Detach(th)
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads,
			Warmup:  o.Warmup,
			Measure: o.PointDuration,
			Seed:    uint64(bits),
		}, op(c))
		fig.SeriesNamed("static").Add(float64(bits), res.Throughput)
		if res.Throughput > best {
			best, bestBits = res.Throughput, bits
		}
	}

	// Tuner run: start mis-configured at the small end and let the hill
	// climber walk.
	start := stm.DefaultPartConfig()
	start.LockBits = 4
	start.CM = stm.CMSuicide
	rt := newRuntime(o, &start)
	th := rt.MustAttach()
	var c *txds.CounterArray
	th.Atomic(func(tx *stm.Tx) { c = txds.NewCounterArray(tx, rt, "fig4.counters", slots, 100) })
	rt.Detach(th)
	tc := stm.DefaultTunerConfig()
	tc.Interval = 25 * time.Millisecond
	tc.ToVisibleAbortRate = 2.0 // isolate the granularity knob
	tc.MinLockBits = 4
	tc.MaxLockBits = 18
	tc.ProbeEvery = 1
	tc.MinCommits = 50
	rt.StartTuner(tc)
	res := bench.Run(rt, bench.RunConfig{
		Threads: o.Threads,
		Warmup:  4 * o.PointDuration, // give the climber room to move
		Measure: o.PointDuration,
		Seed:    99,
	}, op(c))
	trace := rt.StopTuner()
	finalCfg, err := rt.PartitionConfig(stm.GlobalPartition)
	if err != nil {
		return nil, err
	}
	fig.SeriesNamed("tuner-final").Add(float64(finalCfg.LockBits), res.Throughput)

	out := fig.Render()
	out += fmt.Sprintf("\ntuner: started at lockBits=4, finished at lockBits=%d after %d decisions (static optimum %d)\n",
		finalCfg.LockBits, len(trace), bestBits)
	for _, d := range trace {
		out += "  " + d.String() + "\n"
	}
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	return &Report{
		ID:     "fig4",
		Title:  "Conflict-detection granularity sweep and hill-climbing tuner",
		Output: out,
		Summary: fmt.Sprintf("static optimum lockBits=%d (%.0f ops/s); tuner moved 4→%d",
			bestBits, best, finalCfg.LockBits),
	}, nil
}
