package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig6 reproduces the dynamic-workload experiment: the phases application
// flips between a read-heavy phase (range audits, invisible reads
// optimal) and an update-heavy phase (whole-array rebalances, visible
// reads with reader priority optimal). Static configurations are right in
// one phase and wrong in the other; the runtime tuner follows the flips
// with a reaction lag. Reported: throughput per phase segment and
// overall, plus the tuner's decision count.
func Fig6(o Options) (*Report, error) {
	o = o.normalized()

	pcfg := apps.DefaultPhasesConfig()
	if o.Quick {
		pcfg.Slots = 256
		pcfg.AuditRange = 64
		pcfg.PhaseOps = 30_000
	}
	segments := 6 // three full read/update cycles
	opsPerThread := pcfg.PhaseOps / o.Threads
	if opsPerThread == 0 {
		opsPerThread = 1
	}

	inv := stm.DefaultPartConfig()
	vis := stm.DefaultPartConfig()
	vis.Read = stm.VisibleReads
	vis.ReaderCM = stm.WriterYieldsToReaders
	cases := []struct {
		name     string
		global   stm.PartConfig
		adaptive bool
	}{
		{"static-invisible", inv, false},
		{"static-visible", vis, false},
		{"adaptive", inv, true}, // adaptive starts from the invisible default
	}

	fig := stats.NewFigure("Fig. 6 — throughput per phase segment (ops/s)", "segment", "operations per second")
	tbl := stats.NewTable("Fig. 6 summary — overall throughput", "configuration", "ops/s", "tuner decisions")

	var adaptive, bestStatic float64
	var adaptiveDecisions []stm.TunerDecision
	for _, c := range cases {
		cfg := c.global
		rt := newRuntime(o, &cfg)
		th := rt.MustAttach()
		p := apps.NewPhases(rt, th, pcfg)
		rt.Detach(th)
		if c.adaptive {
			tc := stm.DefaultTunerConfig()
			tc.Interval = 20 * time.Millisecond
			tc.Hysteresis = 1
			tc.HillClimb = false // isolate the visibility knob
			tc.MinCommits = 50
			rt.StartTuner(tc)
		}
		t0 := time.Now()
		var totalOps uint64
		for seg := 0; seg < segments; seg++ {
			res := bench.RunOps(rt, o.Threads, opsPerThread, uint64(seg)+5,
				func(th *stm.Thread, rng *workload.Rng) { p.Op(th, rng) })
			totalOps += res.Ops
			fig.SeriesNamed(c.name).Add(float64(seg), res.Throughput)
		}
		total := float64(totalOps) / time.Since(t0).Seconds()
		decisions := 0
		if c.adaptive {
			adaptiveDecisions = rt.StopTuner()
			decisions = len(adaptiveDecisions)
			adaptive = total
		} else if total > bestStatic {
			bestStatic = total
		}
		// Money is conserved across every regime or the experiment is void.
		chk := rt.MustAttach()
		if msg := p.CheckInvariants(chk); msg != "" {
			rt.Detach(chk)
			return nil, fmt.Errorf("fig6 (%s): %s", c.name, msg)
		}
		rt.Detach(chk)
		tbl.AddRow(c.name, fmt.Sprintf("%.0f", total), fmt.Sprintf("%d", decisions))
	}

	out := fig.Render() + "\n" + tbl.Render()
	if len(adaptiveDecisions) > 0 {
		out += "\nadaptive tuner decisions:\n"
		for _, d := range adaptiveDecisions {
			out += "  " + d.String() + "\n"
		}
	}
	if o.CSV {
		out += "\n" + fig.CSV()
	}
	return &Report{
		ID:     "fig6",
		Title:  "Dynamic workload phases: adaptive vs static configurations",
		Output: out,
		Summary: fmt.Sprintf("adaptive %.0f ops/s vs best static %.0f ops/s (ratio %.2f, %d decisions)",
			adaptive, bestStatic, safeDiv(adaptive, bestStatic), len(adaptiveDecisions)),
	}, nil
}
