package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Fig11 studies how to protect long transactions (extension experiment;
// see DESIGN.md §5). Labyrinth routes read hundreds of grid cells and
// write tens in one transaction, so one short conflicting commit can doom
// an almost-finished route. Two mechanisms could help:
//
//   - CM policy (suicide/spin/timestamp) — arbitrates what a route does
//     when its BFS hits a cell another route has locked. Waiting rarely
//     pays here: the lock holder is about to commit a conflicting
//     version, so patience only converts a lock abort into a validation
//     abort after more wasted reading.
//   - Read visibility — visible reads register the route's whole
//     frontier at the orecs, so a conflicting writer sees the reader
//     BEFORE committing; with WriterYieldsToReaders the short writer
//     defers to the long reader instead of dooming it.
//
// The experiment measures both axes and reports abort causes. Measured
// shape: the CM axis is nearly flat (suicide is as good as any), while
// visible/writer-yields cuts the abort rate by a third to a half; its
// throughput ranges from parity to ~30% below the invisible best (the
// per-read reader-bit RMW is costly on hundreds-of-cell scans), so the
// knob trades raw throughput against wasted work. Matching mechanism to
// abort cause, per partition, is exactly the paper's argument.
func Fig11(o Options) (*Report, error) {
	o = o.normalized()
	tbl := stats.NewTable("Fig. 11 — labyrinth (long transactions): what protects a route",
		"configuration", "routes/s", "abort-rate", "validation%", "lock%", "killed%")

	lcfg := apps.DefaultLabyrinthConfig()
	if o.Quick {
		lcfg = apps.LabyrinthConfig{Width: 16, Height: 16}
	}

	mk := func(read stm.ReadMode, cm stm.CMPolicy, rcm stm.ReaderPolicy) stm.PartConfig {
		c := stm.DefaultPartConfig()
		c.Read = read
		c.CM = cm
		c.ReaderCM = rcm
		return c
	}
	cases := []struct {
		name string
		cfg  stm.PartConfig
	}{
		{"invisible/suicide", mk(stm.InvisibleReads, stm.CMSuicide, stm.WriterKillsReaders)},
		{"invisible/spin", mk(stm.InvisibleReads, stm.CMSpin, stm.WriterKillsReaders)},
		{"invisible/timestamp", mk(stm.InvisibleReads, stm.CMTimestamp, stm.WriterKillsReaders)},
		{"visible/writer-kills", mk(stm.VisibleReads, stm.CMSpin, stm.WriterKillsReaders)},
		{"visible/writer-yields", mk(stm.VisibleReads, stm.CMSpin, stm.WriterYieldsToReaders)},
	}

	type row struct {
		name string
		rps  float64
	}
	var rows []row
	for i, c := range cases {
		cfg := c.cfg
		rt := newRuntime(o, &cfg)
		th := rt.MustAttach()
		l := apps.NewLabyrinth(rt, th, lcfg)
		rt.Detach(th)
		res := bench.Run(rt, bench.RunConfig{
			Threads: o.Threads, Warmup: o.Warmup, Measure: o.PointDuration,
			Seed: uint64(i) + 701,
		}, func(th *stm.Thread, rng *workload.Rng) { l.Op(th, rng) })

		// Aggregate abort causes across partitions for the window.
		var val, lock, killed, total uint64
		for _, p := range res.PerPart {
			val += p.Aborts[stm.AbortValidation]
			lock += p.Aborts[stm.AbortLockedOnRead] + p.Aborts[stm.AbortLockedOnWrite]
			killed += p.Aborts[stm.AbortKilled] + p.Aborts[stm.AbortReaderWall]
			total += p.TotalAborts()
		}
		pct := func(n uint64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
		}
		tbl.AddRow(c.name,
			fmt.Sprintf("%.0f", res.Throughput),
			fmtFloat(res.AbortRate, 3),
			pct(val), pct(lock), pct(killed))
		rows = append(rows, row{c.name, res.Throughput})
	}

	best := rows[0]
	for _, r := range rows {
		if r.rps > best.rps {
			best = r
		}
	}
	return &Report{
		ID:     "fig11",
		Title:  "Long transactions (labyrinth): CM policy vs read visibility",
		Output: tbl.Render(),
		Summary: fmt.Sprintf("best long-transaction configuration: %s (%.0f routes/s)",
			best.name, best.rps),
	}, nil
}
