package server

import (
	"errors"
	"fmt"

	"repro/internal/wire"
	"repro/stm"
)

// resolvedOp is one batch op with its key resolved to a heap address.
type resolvedOp struct {
	op   *wire.Op
	addr stm.Addr // Nil only for a GET of a never-created key
}

// execTxn runs one TXN batch as a single transaction and builds its
// response. Key resolution happens up front, outside the transaction
// (interning write-class keys creates their zeroed objects in separate
// commits); the batch transaction then touches only heap words, so the
// retried closure is pure STM work and safe to re-run on abort.
func (s *Server) execTxn(req *wire.TxnReq) *wire.TxnResp {
	s.stat.Txns.Add(1)
	s.stat.TxnOps.Add(uint64(len(req.Ops)))

	ops := make([]resolvedOp, len(req.Ops))
	for i := range req.Ops {
		op := &req.Ops[i]
		switch op.Code {
		case wire.OpGet:
			addr, ok := s.space.Lookup(op.Key)
			if !ok {
				addr = stm.Nil
			}
			ops[i] = resolvedOp{op: op, addr: addr}
		case wire.OpPut:
			if len(op.Vals) == 0 || len(op.Vals) > s.space.Arity() {
				return s.badRequest(req.ID, fmt.Sprintf("op %d: PUT with %d vals (space arity %d)", i, len(op.Vals), s.space.Arity()))
			}
			fallthrough
		case wire.OpAdd, wire.OpCAS:
			addr, err := s.space.Intern(op.Key)
			if err != nil {
				return s.internalErr(req.ID, err)
			}
			ops[i] = resolvedOp{op: op, addr: addr}
		default:
			return s.badRequest(req.ID, fmt.Sprintf("op %d: unknown opcode %d", i, op.Code))
		}
	}

	readOnly := req.ReadOnly()
	snap := readOnly && !s.cfg.DisableSnapshotReads && req.Flags&wire.FlagUpdate == 0
	if readOnly {
		s.stat.ReadOnlyTxns.Add(1)
	}
	if snap {
		s.stat.SnapshotTxns.Add(1)
	}

	arity := s.space.Arity()
	results := make([]wire.Result, len(ops))
	// One flat backing array for all GET vectors, rewritten per attempt.
	getWords := make([]uint64, 0, len(ops)*arity)

	opts := make([]stm.TxOpt, 0, 3)
	if snap {
		opts = append(opts, stm.Snapshot())
	} else if readOnly {
		opts = append(opts, stm.ReadOnly())
	}
	if s.cfg.MaxAttempts > 0 {
		opts = append(opts, stm.MaxAttempts(s.cfg.MaxAttempts))
	}
	opts = append(opts, stm.OnAbort(func(cause stm.AbortCause, attempt int) {
		s.stat.TxnAborts.Add(1)
		if snap {
			s.stat.SnapshotAborts.Add(1)
		}
	}))

	err := s.rt.Run(func(tx *stm.Tx) error {
		getWords = getWords[:0]
		for i := range ops {
			r := &ops[i]
			res := &results[i]
			switch r.op.Code {
			case wire.OpGet:
				if r.addr == stm.Nil {
					res.Flag, res.Vals = false, nil
					continue
				}
				getWords = append(getWords, make([]uint64, arity)...)
				vals := getWords[len(getWords)-arity:]
				tx.LoadWords(r.addr, vals)
				res.Flag, res.Vals = true, vals
			case wire.OpPut:
				// Short PUTs zero the tail: a PUT always writes the whole
				// fixed-arity vector.
				vals := r.op.Vals
				if len(vals) < arity {
					vals = append(append(make([]uint64, 0, arity), vals...), make([]uint64, arity-len(r.op.Vals))...)
				}
				tx.StoreWords(r.addr, vals)
				res.Flag, res.Vals = true, nil
			case wire.OpAdd:
				v := tx.Load(r.addr) + r.op.Delta
				tx.Store(r.addr, v)
				res.Flag, res.Vals = true, []uint64{v}
			case wire.OpCAS:
				v := tx.Load(r.addr)
				if v == r.op.Expect {
					tx.Store(r.addr, r.op.New)
					res.Flag = true
				} else {
					res.Flag = false
				}
				res.Vals = []uint64{v}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return s.txnError(req.ID, err)
	}
	return &wire.TxnResp{ID: req.ID, Status: wire.StatusOK, Results: results}
}

// txnError maps a Run error onto its typed wire status. The concrete
// error types cross the wire as codes plus their fields and are rebuilt
// by the client, so errors.Is/errors.As work end to end.
func (s *Server) txnError(id uint64, err error) *wire.TxnResp {
	var ma *stm.MaxAttemptsError
	if errors.As(err, &ma) {
		return &wire.TxnResp{
			ID:       id,
			Status:   wire.StatusMaxAttempts,
			Attempts: uint32(ma.Attempts),
			Cause:    ma.Cause,
		}
	}
	var nd *stm.NotDurableError
	if errors.As(err, &nd) {
		return &wire.TxnResp{ID: id, Status: wire.StatusNotDurable, Seq: nd.Seq}
	}
	return s.internalErr(id, err)
}

func (s *Server) badRequest(id uint64, msg string) *wire.TxnResp {
	s.stat.BadRequests.Add(1)
	return &wire.TxnResp{ID: id, Status: wire.StatusBadRequest, Msg: msg}
}

func (s *Server) internalErr(id uint64, err error) *wire.TxnResp {
	return &wire.TxnResp{ID: id, Status: wire.StatusInternal, Msg: err.Error()}
}
