package server

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/stm"
	"repro/txds"
)

// KeySpace is the server's keyed object space: string key → one
// fixed-arity vector of 64-bit heap words. Keys are INTERNED — the
// first write-class touch of a key allocates its value object once, at
// a dedicated allocation site, and the key resolves to that stable
// heap address forever after. Interning is what makes the space cheap
// AND observable:
//
//   - Request execution never parses or hashes keys inside the
//     transaction: ops resolve to plain Addrs up front and the batch
//     transaction touches only heap words, so the STM's partition
//     profiling and tuning see the keyed traffic exactly as they see
//     any in-process workload.
//   - The value site ("<name>.value") plus the directory's sites are
//     ordinary profiling sites, so AutoPartition can split the keyed
//     space away from other structures and the tuner specializes its
//     partition (read visibility, snapshot retention, spin budgets)
//     against real request traffic.
//
// The authoritative string→Addr mapping is a Go-side intern table
// (immutable entries, RWMutex + map). A transactional directory — the
// Ref-migrated txds.HashSet, key-hash → value address inserted through
// InsertRef — shadows it so the pointer graph bucket→node→value exists
// IN the heap for the profiler to walk. A 64-bit hash collision between
// distinct keys cannot be represented there; the entry is skipped (and
// counted) while the intern table keeps both keys correct — collisions
// cost profiling fidelity, never correctness.
//
// Value objects start zeroed: a key created by ADD or CAS reads as zero
// words until the creating batch's writes commit. Interning commits in
// its own transaction BEFORE the batch transaction runs, so a batch
// that ultimately fails (e.g. MaxAttempts) can leave behind a created,
// still-zero key — creation is idempotent and value-neutral, so this is
// observable only as found=true on a never-written key.
type KeySpace struct {
	rt      *stm.Runtime
	arity   int
	valSite stm.SiteID
	dir     *txds.HashSet

	mu   sync.RWMutex
	keys map[string]stm.Addr

	collisions atomic.Uint64
}

// NewKeySpace creates a keyed space over rt. name prefixes the
// allocation sites ("<name>.value" plus the directory's
// "<name>.dir.buckets"/"<name>.dir.node"); arity is the value vector
// size in words (1..wire MaxArity enforced by the caller); buckets
// sizes the transactional directory's chain table.
func NewKeySpace(rt *stm.Runtime, name string, arity, buckets int) (*KeySpace, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("server: arity %d (want >= 1)", arity)
	}
	if buckets <= 0 {
		buckets = 1 << 12
	}
	ks := &KeySpace{
		rt:      rt,
		arity:   arity,
		valSite: rt.RegisterSite(name + ".value"),
		keys:    make(map[string]stm.Addr),
	}
	err := rt.Run(func(tx *stm.Tx) error {
		ks.dir = txds.NewHashSet(tx, rt, name+".dir", buckets)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: creating key directory: %w", err)
	}
	return ks, nil
}

// Arity returns the value vector size in words.
func (ks *KeySpace) Arity() int { return ks.arity }

// Len returns the number of interned keys.
func (ks *KeySpace) Len() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return len(ks.keys)
}

// DirCollisions returns how many interned keys could not be indexed in
// the transactional directory because of a 64-bit hash collision.
func (ks *KeySpace) DirCollisions() uint64 { return ks.collisions.Load() }

// Lookup resolves key without creating it (the GET path).
func (ks *KeySpace) Lookup(key string) (stm.Addr, bool) {
	ks.mu.RLock()
	addr, ok := ks.keys[key]
	ks.mu.RUnlock()
	return addr, ok
}

// Intern resolves key, allocating its zeroed value object on first
// touch (the PUT/ADD/CAS path). The allocation commits in its own
// transaction; see the type comment for the visibility contract.
func (ks *KeySpace) Intern(key string) (stm.Addr, error) {
	ks.mu.RLock()
	addr, ok := ks.keys[key]
	ks.mu.RUnlock()
	if ok {
		return addr, nil
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if addr, ok = ks.keys[key]; ok {
		return addr, nil
	}
	err := ks.rt.Run(func(tx *stm.Tx) error {
		addr = tx.Alloc(ks.valSite, ks.arity)
		for i := 0; i < ks.arity; i++ {
			tx.Store(addr+stm.Addr(i), 0)
		}
		if !ks.dir.InsertRef(tx, hashKey(key), addr) {
			// A different key already owns this 64-bit hash: the
			// directory cannot hold both, the intern table can.
			ks.collisions.Add(1)
		}
		return nil
	})
	if err != nil {
		return stm.Nil, fmt.Errorf("server: interning %q: %w", key, err)
	}
	ks.keys[key] = addr
	return addr, nil
}

// hashKey maps a key onto the directory's uint64 key space (FNV-1a).
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
