package server_test

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/stm"
	"repro/stmnet"
)

// startServer brings up a loopback server and returns it with its
// address. The caller owns shutdown via srv.Close (which also closes the
// runtime); serveDone resolves with Serve's return.
func startServer(t *testing.T, scfg server.Config) (*server.Server, string, chan error) {
	t.Helper()
	if scfg.Runtime == nil {
		scfg.Runtime = stm.MustNew(stm.Config{HeapWords: 1 << 20, SnapshotHistory: 1 << 12})
	}
	srv, err := server.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	return srv, lis.Addr().String(), serveDone
}

// TestLoopbackPipelinedConservation is the headline integration test:
// 8 clients, each pipelining transfers from 4 goroutines over its one
// connection, against a concurrent stream of snapshot GET batches. The
// balance sum is conserved in every snapshot read and at the end, and
// the read batches commit abort-free.
func TestLoopbackPipelinedConservation(t *testing.T) {
	srv, addr, serveDone := startServer(t, server.Config{})
	defer srv.Close()

	const (
		nClients   = 8
		nPerClient = 4 // pipelining goroutines per connection
		nKeys      = 64
		nTransfers = 300
		initial    = uint64(1000)
	)
	wantSum := initial * nKeys
	key := func(k int) string { return fmt.Sprintf("acct:%d", k) }

	// Preload.
	c0, err := stmnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	b := stmnet.NewBatch()
	for k := 0; k < nKeys; k++ {
		b.Put(key(k), initial)
	}
	if _, err := c0.Do(b); err != nil {
		t.Fatal(err)
	}

	clients := make([]*stmnet.Client, nClients)
	for i := range clients {
		if clients[i], err = stmnet.Dial(addr); err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		readErr atomic.Value
	)
	// Writers: pipelined transfers, conserved by construction.
	for i, c := range clients {
		for g := 0; g < nPerClient; g++ {
			wg.Add(1)
			go func(c *stmnet.Client, seed uint64) {
				defer wg.Done()
				rng := seed
				for n := 0; n < nTransfers; n++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					from := int(rng>>33) % nKeys
					to := (from + 1 + int(rng>>17)%(nKeys-1)) % nKeys
					d := rng%97 + 1
					_, err := c.Do(stmnet.NewBatch().
						Add(key(from), stmnet.Neg(d)).
						Add(key(to), d))
					if err != nil {
						readErr.Store(fmt.Errorf("transfer: %w", err))
						return
					}
				}
			}(c, uint64(i*nPerClient+g+1))
		}
	}
	// Readers: all-GET snapshot batches racing the writers; every batch
	// must observe the conserved sum (atomicity) and the run as a whole
	// must not abort a single one (snapshot mode).
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		c := clients[0]
		for !stop.Load() {
			b := stmnet.NewBatch()
			for k := 0; k < nKeys; k++ {
				b.Get(key(k))
			}
			res, err := c.Do(b)
			if err != nil {
				readErr.Store(fmt.Errorf("snapshot read: %w", err))
				return
			}
			var sum uint64
			for k, r := range res {
				if !r.Flag {
					readErr.Store(fmt.Errorf("key %d missing", k))
					return
				}
				sum += r.Val()
			}
			if sum != wantSum {
				readErr.Store(fmt.Errorf("snapshot sum = %d, want %d (torn read)", sum, wantSum))
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	<-readerDone
	if err := readErr.Load(); err != nil {
		t.Fatal(err)
	}

	// Final balance check over a fresh connection.
	b = stmnet.NewBatch()
	for k := 0; k < nKeys; k++ {
		b.Get(key(k))
	}
	res, err := c0.Do(b)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, r := range res {
		sum += r.Val()
	}
	if sum != wantSum {
		t.Fatalf("final sum = %d, want %d", sum, wantSum)
	}
	c0.Close()

	st := srv.Stats()
	if st.SnapshotTxns == 0 {
		t.Fatal("no batch took the snapshot path")
	}
	if st.SnapshotAborts != 0 {
		t.Fatalf("snapshot read batches aborted %d times, want 0", st.SnapshotAborts)
	}
	if st.BadRequests != 0 {
		t.Fatalf("BadRequests = %d", st.BadRequests)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful Close", err)
	}
}

// TestTypedErrorsRoundTrip: the wire's status codes rebuild the stm
// error types on the client, so errors.Is/As work against a remote
// server exactly as in-process.
func TestTypedErrorsRoundTrip(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20, SnapshotHistory: 1 << 12})
	srv, addr, _ := startServer(t, server.Config{Runtime: rt, MaxAttempts: 1})
	defer srv.Close()

	c, err := stmnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Oversized PUT (arity defaults to 8) → ErrBadRequest.
	_, err = c.Do(stmnet.NewBatch().Put("k", make([]uint64, 9)...))
	if !errors.Is(err, stmnet.ErrBadRequest) {
		t.Fatalf("oversized PUT: err = %v, want ErrBadRequest", err)
	}

	// Force a deterministic abort: intern "hot", then park a server-side
	// transaction holding its encounter-time lock. The remote ADD spins
	// out its CM budget, aborts, and with a 1-attempt budget the typed
	// error crosses the wire.
	if _, err := c.Do(stmnet.NewBatch().Add("hot", 0)); err != nil {
		t.Fatal(err)
	}
	hot, ok := srv.Space().Lookup("hot")
	if !ok {
		t.Fatal("hot not interned")
	}
	held := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		th := rt.MustAttach()
		defer rt.Detach(th)
		th.Atomic(func(tx *stm.Tx) {
			tx.Store(hot, 99)
			close(held)
			<-release
		})
	}()
	<-held
	_, err = c.Do(stmnet.NewBatch().Add("hot", 1))
	close(release)
	<-holderDone
	var ma *stm.MaxAttemptsError
	if !errors.As(err, &ma) || !errors.Is(err, stm.ErrMaxAttempts) {
		t.Fatalf("contended ADD: err = %v, want *stm.MaxAttemptsError", err)
	}
	if ma.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", ma.Attempts)
	}
	if ma.Cause == 0 {
		t.Fatalf("Cause = %v, want a lock-conflict cause", ma.Cause)
	}
}

// TestKilledConnLeaksNothing kills a connection mid-pipeline and checks
// the server sheds both connection goroutines and every dispatched
// request — the graceful-teardown path under an abrupt peer death.
func TestKilledConnLeaksNothing(t *testing.T) {
	srv, addr, _ := startServer(t, server.Config{})
	defer srv.Close()

	// Settle, then baseline.
	time.Sleep(10 * time.Millisecond)
	base := runtime.NumGoroutine()

	for round := 0; round < 4; round++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c := stmnet.NewClient(nc)
		// A pipeline of in-flight batches, then kill the socket without
		// reading the responses.
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for n := 0; n < 20; n++ {
					if _, err := c.Do(stmnet.NewBatch().Add(fmt.Sprintf("leak:%d", g), 1)); err != nil {
						return // expected once the conn dies
					}
				}
			}(g)
		}
		time.Sleep(time.Millisecond)
		nc.Close()
		wg.Wait()
		c.Close()
	}

	// The server drains asynchronously; give it a bounded window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: baseline %d, now %d — connection teardown leaked", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cur := srv.Stats().CurConns; cur != 0 {
		t.Fatalf("CurConns = %d after all connections died", cur)
	}
}

// TestGracefulCloseDrains: Close completes with pipelined work in
// flight, every in-flight batch gets an answer or a clean connection
// error (never a hang), and the runtime closes without error.
func TestGracefulCloseDrains(t *testing.T) {
	srv, addr, serveDone := startServer(t, server.Config{})

	c, err := stmnet.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; ; n++ {
				if _, err := c.Do(stmnet.NewBatch().Add(fmt.Sprintf("drain:%d", g), 1)); err != nil {
					return // the closing server broke the connection
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)

	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()

	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful Close", err)
	}
	// New connections are refused once closed.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}
