// Package server puts the partitioned STM behind a TCP wire: a keyed
// object space (string key → fixed-arity word vector, see KeySpace)
// served over the internal/wire protocol with pipelined, batched
// multi-key transactions.
//
// # Connection model
//
// Each accepted connection runs two goroutines. A reader decodes frames
// and dispatches every TXN batch onto its own goroutine through the
// pooled stm.Runtime.Run path — the runtime's 64-slot thread pool with
// FIFO waiter handoff IS the server's admission control, so a burst of
// ten thousand pipelined batches queues at the slot pool instead of
// thundering into the engine. A writer streams encoded responses out of
// a per-connection channel IN COMPLETION ORDER: a slow batch never
// blocks the responses of faster batches pipelined behind it, and the
// client reorders by request id.
//
// All-GET batches are dispatched in snapshot mode (stm.Snapshot()), so
// heavy read traffic commits abort-free against any write load while
// retention suffices; wire.FlagUpdate opts a batch out for
// measurements. Write batches run as ordinary update transactions.
//
// # Durability of an acked response
//
// What a StatusOK TxnResp promises depends on the runtime's WAL mode:
// under DurabilityOff it means "committed in memory"; under
// DurabilityAsync "committed in memory, redo record queued" (a crash
// can lose the last group-commit interval); under DurabilitySync the
// response is written only after Run returns, i.e. after the commit's
// record is fsynced — an acked response survives any crash. A commit
// whose record could not become durable is reported as
// StatusNotDurable, never silently acked.
//
// # Shutdown
//
// Close is graceful by construction: stop accepting, unblock every
// reader, let all in-flight transactions finish and their responses
// flush, and only then close the runtime's redo log — so a
// DurabilitySync commit can never race the WAL teardown (stm/wal.go
// documents that hazard).
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/stm"
)

// Config configures a Server.
type Config struct {
	// Runtime is the embedded STM runtime (required). The server owns
	// its shutdown: Close drains in-flight transactions and then calls
	// Runtime.Close (flushing the redo log, when one is attached).
	Runtime *stm.Runtime
	// SpaceName prefixes the keyed space's allocation sites. Default
	// "kv".
	SpaceName string
	// Arity is the value vector size in words (1..wire.MaxArity).
	// Default 8.
	Arity int
	// DirBuckets sizes the transactional key directory. Default 4096.
	DirBuckets int
	// MaxAttempts bounds each batch's retry loop; past it the batch
	// fails with StatusMaxAttempts instead of retrying forever. 0 means
	// unlimited (the default).
	MaxAttempts int
	// DisableSnapshotReads sends all-GET batches down the ordinary
	// read-only path instead of snapshot mode.
	DisableSnapshotReads bool
	// WriteBuffer is the per-connection response channel depth (default
	// 1024 frames).
	WriteBuffer int
}

// serverStats holds the server's own counters (atomic mirrors of
// wire.ServerStats).
type serverStats struct {
	Conns          atomic.Uint64
	CurConns       atomic.Int64
	Frames         atomic.Uint64
	Txns           atomic.Uint64
	TxnOps         atomic.Uint64
	ReadOnlyTxns   atomic.Uint64
	SnapshotTxns   atomic.Uint64
	TxnAborts      atomic.Uint64
	SnapshotAborts atomic.Uint64
	BadRequests    atomic.Uint64
}

// closeWriteGrace bounds how long Close waits for a slow peer to drain
// its pending responses before dropping them.
const closeWriteGrace = 5 * time.Second

// Server serves the keyed object space over a listener.
type Server struct {
	cfg   Config
	rt    *stm.Runtime
	space *KeySpace
	stat  serverStats

	mu       sync.Mutex
	lis      net.Listener
	conns    map[*conn]struct{}
	closing  bool
	closed   chan struct{}
	connWG   sync.WaitGroup // one per live connection
	closeErr error
	closeOne sync.Once
}

// New creates a server over cfg.Runtime (which must outlive it; the
// server closes it on Close).
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("server: Config.Runtime is required")
	}
	if cfg.SpaceName == "" {
		cfg.SpaceName = "kv"
	}
	if cfg.Arity == 0 {
		cfg.Arity = 8
	}
	if cfg.Arity < 1 || cfg.Arity > wire.MaxArity {
		return nil, fmt.Errorf("server: arity %d (want 1..%d)", cfg.Arity, wire.MaxArity)
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 1024
	}
	space, err := NewKeySpace(cfg.Runtime, cfg.SpaceName, cfg.Arity, cfg.DirBuckets)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		rt:     cfg.Runtime,
		space:  space,
		conns:  make(map[*conn]struct{}),
		closed: make(chan struct{}),
	}, nil
}

// Space exposes the keyed object space (for tests and embedding).
func (s *Server) Space() *KeySpace { return s.space }

// Runtime exposes the embedded runtime.
func (s *Server) Runtime() *stm.Runtime { return s.rt }

// ListenAndServe listens on addr (":7437"-style) and serves until
// Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Close. It returns nil after a
// graceful Close, or the first accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("server: Serve after Close")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close shuts the server down gracefully: stop accepting, unblock every
// connection's reader, wait for all in-flight transactions to finish
// and their responses to flush, close the connections, and finally
// close the runtime (flushing the redo log). Safe to call multiple
// times and concurrently with Serve.
func (s *Server) Close() error {
	s.closeOne.Do(func() {
		s.mu.Lock()
		s.closing = true
		lis := s.lis
		live := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			live = append(live, c)
		}
		s.mu.Unlock()
		if lis != nil {
			lis.Close()
		}
		// Unblock every reader: a read past this deadline fails
		// immediately, the reader sees closing==true and begins the
		// drain (wait for in-flight, flush responses, close). Writes get
		// a bounded grace so a peer that stopped reading cannot hang
		// shutdown on TCP backpressure — its remaining responses drop.
		for _, c := range live {
			c.nc.SetReadDeadline(time.Now())
			c.nc.SetWriteDeadline(time.Now().Add(closeWriteGrace))
		}
		s.connWG.Wait()
		// No connection, no reader, no in-flight transaction: the redo
		// log can tear down without racing a Sync commit.
		s.closeErr = s.rt.Close()
		close(s.closed)
	})
	<-s.closed
	return s.closeErr
}

// Stats returns the server's own counters.
func (s *Server) Stats() wire.ServerStats {
	return wire.ServerStats{
		Conns:          s.stat.Conns.Load(),
		CurConns:       s.stat.CurConns.Load(),
		Frames:         s.stat.Frames.Load(),
		Txns:           s.stat.Txns.Load(),
		TxnOps:         s.stat.TxnOps.Load(),
		ReadOnlyTxns:   s.stat.ReadOnlyTxns.Load(),
		SnapshotTxns:   s.stat.SnapshotTxns.Load(),
		TxnAborts:      s.stat.TxnAborts.Load(),
		SnapshotAborts: s.stat.SnapshotAborts.Load(),
		BadRequests:    s.stat.BadRequests.Load(),
		Keys:           uint64(s.space.Len()),
		DirCollisions:  s.space.DirCollisions(),
	}
}

// statsPayload assembles the full statistics snapshot served by the
// STATS op.
func (s *Server) statsPayload() *wire.StatsPayload {
	p := &wire.StatsPayload{
		Server:  s.Stats(),
		Parts:   s.rt.Stats(),
		Latency: s.rt.LatencyStats(),
		Pool:    s.rt.PoolStats(),
	}
	if ws, ok := s.rt.WALStats(); ok {
		p.WAL = &ws
	}
	return p
}

// conn is one accepted connection.
type conn struct {
	srv *Server
	nc  net.Conn
	// out carries encoded response frames to the writer; send() drops
	// the frame instead when the connection is already tearing down.
	out chan []byte
	// done closes when the connection starts tearing down (write error
	// or dead peer); senders blocked on a full out channel unblock and
	// drop.
	done     chan struct{}
	doneOnce sync.Once
	// inflight tracks dispatched request goroutines.
	inflight sync.WaitGroup
}

// startConn registers and launches a connection.
func (s *Server) startConn(nc net.Conn) {
	c := &conn{
		srv:  s,
		nc:   nc,
		out:  make(chan []byte, s.cfg.WriteBuffer),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.mu.Unlock()
	s.stat.Conns.Add(1)
	s.stat.CurConns.Add(1)

	go c.writeLoop()
	go c.readLoop()
}

// fail marks the connection dead so pending senders drop their frames.
func (c *conn) fail() {
	c.doneOnce.Do(func() { close(c.done) })
}

// send hands an encoded frame to the writer, dropping it when the
// connection died first. Never blocks forever: a full out channel
// resolves as soon as the writer drains or the connection fails.
func (c *conn) send(frame []byte) {
	select {
	case c.out <- frame:
	case <-c.done:
	}
}

// readLoop decodes frames and dispatches requests until the peer hangs
// up, a protocol error breaks the connection, or the server closes.
// It then drains: every dispatched request finishes and its response is
// flushed (or dropped, if the peer is gone) before the connection is
// torn off the server.
func (c *conn) readLoop() {
	defer c.teardown()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var buf []byte
	for {
		payload, nbuf, err := wire.ReadFrame(br, buf)
		if err != nil {
			// EOF, peer reset, Close's read deadline, or a protocol
			// error: stop reading. Graceful drain happens in teardown.
			return
		}
		buf = nbuf
		c.srv.stat.Frames.Add(1)
		switch wire.Kind(payload) {
		case wire.KindTxnReq:
			req, err := wire.DecodeTxnReq(payload)
			if err != nil {
				// Handshake-level garbage: answer nothing (the id is
				// not trustworthy) and break the connection.
				c.srv.stat.BadRequests.Add(1)
				return
			}
			c.dispatch(func() []byte {
				return wire.AppendFrame(nil, wire.AppendTxnResp(nil, c.srv.execTxn(req)))
			})
		case wire.KindStatsReq:
			req, err := wire.DecodeStatsReq(payload)
			if err != nil {
				c.srv.stat.BadRequests.Add(1)
				return
			}
			c.dispatch(func() []byte {
				body, err := json.Marshal(c.srv.statsPayload())
				if err != nil {
					return wire.AppendFrame(nil, wire.AppendStatsResp(nil, req.ID, wire.StatusInternal, nil, err.Error()))
				}
				return wire.AppendFrame(nil, wire.AppendStatsResp(nil, req.ID, wire.StatusOK, body, ""))
			})
		default:
			// Unknown kind: protocol error, break the connection.
			c.srv.stat.BadRequests.Add(1)
			return
		}
	}
}

// dispatch runs fn on its own goroutine and sends its response frame.
// Concurrency control is the runtime's slot pool: dispatch never blocks
// the reader, and Run's FIFO admission queue bounds engine pressure.
func (c *conn) dispatch(fn func() []byte) {
	c.inflight.Add(1)
	go func() {
		defer c.inflight.Done()
		c.send(fn())
	}()
}

// teardown drains the connection after the reader stopped: wait for
// in-flight requests, close the response channel so the writer exits
// after flushing, and unregister.
func (c *conn) teardown() {
	c.inflight.Wait()
	close(c.out)
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stat.CurConns.Add(-1)
	s.connWG.Done()
}

// writeLoop streams response frames in completion order, batching
// flushes: it flushes only when the channel runs empty, so a pipelined
// burst costs one syscall per drain, not per response.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	dead := false
	for frame := range c.out {
		if dead {
			continue // drain without writing: the peer is gone
		}
		if _, err := bw.Write(frame); err != nil {
			dead = true
			c.fail()
			c.nc.Close() // unblock the reader too
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				c.fail()
				c.nc.Close()
			}
		}
	}
	if !dead {
		bw.Flush()
	}
	c.fail()
	c.nc.Close()
}
