package core

import "testing"

func TestTxIndexBasics(t *testing.T) {
	var idx txIndex
	idx.reset()
	if got := idx.get(42); got != -1 {
		t.Fatalf("empty get = %d, want -1", got)
	}
	// Insert well past several growth rounds; sequential keys stress the
	// hash's distribution of aligned addresses.
	const n = 10_000
	for i := 0; i < n; i++ {
		idx.put(uint64(i)*8, int32(i))
	}
	for i := 0; i < n; i++ {
		if got := idx.get(uint64(i) * 8); got != i {
			t.Fatalf("get(%d) = %d, want %d", i*8, got, i)
		}
	}
	if got := idx.get(n * 8); got != -1 {
		t.Fatalf("missing key = %d, want -1", got)
	}
	// Overwrite semantics.
	idx.put(0, 77)
	if got := idx.get(0); got != 77 {
		t.Fatalf("overwrite get = %d, want 77", got)
	}
	// O(1) reset invalidates everything.
	idx.reset()
	for _, k := range []uint64{0, 8, 16, (n - 1) * 8} {
		if got := idx.get(k); got != -1 {
			t.Fatalf("get(%d) after reset = %d, want -1", k, got)
		}
	}
	// The table is reusable after reset.
	idx.put(123, 9)
	if got := idx.get(123); got != 9 {
		t.Fatalf("post-reset get = %d, want 9", got)
	}
	if got := idx.get(124); got != -1 {
		t.Fatalf("post-reset missing key = %d, want -1", got)
	}
}

// TestTxIndexManyGenerations checks that generation stamping never lets a
// stale entry from a previous generation leak into a later one.
func TestTxIndexManyGenerations(t *testing.T) {
	var idx txIndex
	for gen := 0; gen < 200; gen++ {
		idx.reset()
		// Each generation uses a disjoint key range; any stale hit from an
		// earlier generation would return a wrong value for a missing key.
		lo := uint64(gen * 16)
		for i := uint64(0); i < 16; i++ {
			if got := idx.get(lo + i); got != -1 {
				t.Fatalf("gen %d: stale hit for %d = %d", gen, lo+i, got)
			}
			idx.put(lo+i, int32(i))
		}
		for i := uint64(0); i < 16; i++ {
			if got := idx.get(lo + i); got != int(i) {
				t.Fatalf("gen %d: get(%d) = %d, want %d", gen, lo+i, got, i)
			}
		}
	}
}
