package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/memory"
)

// poolCounter allocates a one-word counter for the pool tests.
func poolCounter(t *testing.T, e *Engine) memory.Addr {
	t.Helper()
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.SiteID(0), 1)
		tx.Store(a, 0)
	})
	return a
}

// TestPooledRunBasic checks a single borrow/run/return round trip and
// that the Thread goes back into the pool.
func TestPooledRunBasic(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	a := poolCounter(t, e)
	if err := e.RunPooled(func(tx *Tx) error {
		tx.Store(a, tx.Load(a)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ps := e.PoolStats()
	if ps.Size != 1 || ps.Idle != 1 {
		t.Fatalf("pool after one Run: %+v, want Size=1 Idle=1", ps)
	}
}

// TestPooledRunReclaimsWarmSlot: sequential Runs from one goroutine must
// re-claim the same Thread through the P-local hint, not grow the pool.
func TestPooledRunReclaimsWarmSlot(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	a := poolCounter(t, e)
	const n = 200
	for i := 0; i < n; i++ {
		if err := e.RunPooled(func(tx *Tx) error {
			tx.Store(a, tx.Load(a)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ps := e.PoolStats()
	if ps.Size != 1 {
		t.Fatalf("sequential Runs grew the pool to %d Threads", ps.Size)
	}
	// The first borrow necessarily misses (nothing cached yet); all
	// others must lift the warm slot straight out of the victim cache.
	if ps.Misses > n/2 {
		t.Fatalf("%d/%d borrows missed the victim cache", ps.Misses, n)
	}
}

// TestPooledRunTorture is the admission-control acceptance test: 1000
// concurrent goroutines complete through the 64-slot pool under
// GOMAXPROCS=2, with no ErrNoSlots-style failure and nothing lost.
func TestPooledRunTorture(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	e := newTestEngine(t, DefaultPartConfig())
	a := poolCounter(t, e)
	const goroutines, perG = 1000, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := e.RunPooled(func(tx *Tx) error {
					tx.Store(a, tx.Load(a)+1)
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var got uint64
	if err := e.RunPooled(func(tx *Tx) error { got = tx.Load(a); return nil }); err != nil {
		t.Fatal(err)
	}
	if got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	ps := e.PoolStats()
	if ps.Size > MaxThreads {
		t.Fatalf("pool grew past the slot space: %+v", ps)
	}
	if ps.Idle != ps.Size {
		t.Fatalf("drained pool should be fully idle: %+v", ps)
	}
}

// TestPooledRunTortureMixedModes is the -race torture variant: update,
// read-only and snapshot transactions interleaved through the pool while
// goroutines churn.
func TestPooledRunTortureMixedModes(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.HistCap = 256
	e := newTestEngine(t, cfg)
	a := poolCounter(t, e)
	goroutines := 120
	if testing.Short() {
		goroutines = 40
	}
	var wg sync.WaitGroup
	var roSum, snapSum atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var err error
				switch (g + i) % 3 {
				case 0:
					err = e.RunPooled(func(tx *Tx) error {
						tx.Store(a, tx.Load(a)+1)
						return nil
					})
				case 1:
					err = e.RunPooled(func(tx *Tx) error {
						roSum.Add(tx.Load(a))
						return nil
					}, ReadOnly())
				default:
					err = e.RunPooled(func(tx *Tx) error {
						snapSum.Add(tx.Load(a))
						return nil
					}, Snapshot())
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPooledRunHandsOffToWaiter drives the pool into saturation with the
// registry otherwise full, proving waiters are served by direct handoff
// rather than failing.
func TestPooledRunHandsOffToWaiter(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	a := poolCounter(t, e)
	// Pin all slots but one, so the pool can hold at most one Thread and
	// every concurrent Run beyond the first must park.
	pinned := make([]*Thread, 0, MaxThreads-1)
	for i := 0; i < MaxThreads-1; i++ {
		pinned = append(pinned, e.MustAttachThread())
	}
	defer func() {
		for _, th := range pinned {
			e.DetachThread(th)
		}
	}()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := e.RunPooled(func(tx *Tx) error {
					tx.Store(a, tx.Load(a)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ps := e.PoolStats(); ps.Size != 1 {
		t.Fatalf("pool size = %d with one free registry slot", ps.Size)
	}
	var got uint64
	pinned[0].Atomic(func(tx *Tx) { got = tx.Load(a) })
	if got != goroutines*25 {
		t.Fatalf("counter = %d, want %d", got, goroutines*25)
	}
}

// TestPooledThreadCannotDetach: returning pooled Threads through
// DetachThread would leak them out of the pool; the registry rejects it.
func TestPooledThreadCannotDetach(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.BorrowThread()
	defer e.ReturnThread(th)
	defer func() {
		if recover() == nil {
			t.Fatal("DetachThread accepted a pooled Thread")
		}
	}()
	e.DetachThread(th)
}

// TestPoolNoGoroutineLeak: the pool spawns no service goroutines, and a
// full borrow/park/return cycle leaves the goroutine count where it
// started once the borrowers exit.
func TestPoolNoGoroutineLeak(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	a := poolCounter(t, e)
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 200; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.RunPooled(func(tx *Tx) error {
				tx.Store(a, tx.Load(a)+1)
				return nil
			})
		}()
	}
	wg.Wait()
	// Give exiting goroutines a moment to be reaped.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d -> %d after pool drain", before, after)
	}
	if ps := e.PoolStats(); ps.Idle != ps.Size {
		t.Fatalf("pool not fully drained: %+v", ps)
	}
}
