package core

import (
	"runtime"
	"time"
)

// Waiting discipline. Every bounded wait loop in the transaction
// protocol — the snapshot reader waiting out a lock holder, a writer
// draining visible readers, the spinning contention managers — advances
// through stall, which escalates in three phases keyed to the
// partition's tuned SpinBudget:
//
//  1. spins <= budget: stay on-CPU. A short jittered pause (spinWait)
//     keeps re-probes off the contended cache line without entering the
//     scheduler, so waits shorter than a lock hold resolve in nanoseconds.
//  2. budget < spins <= parkFactor*budget: yield. On oversubscribed
//     hosts (goroutines >> GOMAXPROCS >> slots) the lock owner may simply
//     not be running; runtime.Gosched every iteration gives it the
//     processor instead of burning the core.
//  3. spins > parkFactor*budget: park. A hold this long means the owner
//     is descheduled or wedged; escalating time.Sleep takes this waiter
//     off the run queue entirely so pathological holds cannot starve the
//     scheduler.
//
// Loops whose contention manager aborts at the budget never leave phase
// 1; the unbounded waits (snapshot lock waits, reader draining, the
// 8x-budget karma/timestamp patience) are the ones the yield and park
// phases exist for. Every stall counts one WaitCycle; phases 2 and 3
// additionally count Yields and Parks — per partition (PartThreadStats)
// and per attempt (AttemptEvent) — so the tuner's spin-budget heuristic
// and the trace recorder see exactly how often waits escalate into the
// scheduler.
//
// Wait TIME is attributed alongside the counts (SpinNs/YieldNs/ParkNs):
// stall samples the clock once per iteration and charges the interval
// since the previous iteration — pause plus the caller's re-probe — to
// the phase that pause belonged to. The first iteration of a wait loop
// starts the clock and the final pause of a loop goes unattributed (the
// loop exits without calling stall again), so the breakdown undercounts
// each wait episode by one pause; in exchange the measurement costs one
// clock read per iteration and covers probe time, not just pause time.

// parkFactor is the multiple of the spin budget past which a waiter
// stops yielding and starts sleeping. It deliberately equals the
// patience bound of the waiting contention managers (8x budget), so CM
// waits abort before ever sleeping.
const parkFactor = 8

// maxParkMicros caps one park at 100µs: long enough to take a wedged
// waiter off the CPU, short enough to notice a release promptly.
const maxParkMicros = 100

// stall advances one iteration of a bounded wait loop; spins is the
// 1-based iteration count and budget the partition's SpinBudget.
func (tx *Tx) stall(spins, budget int, st *PartThreadStats) {
	st.WaitCycles.Add(1)
	now := time.Now()
	if spins > 1 {
		// Charge the interval since the previous iteration to the phase of
		// that iteration's pause.
		d := uint64(now.Sub(tx.stallMark))
		switch prev := spins - 1; {
		case prev <= budget:
			tx.spinNs += d
			st.SpinNs.Add(d)
		case prev <= parkFactor*budget:
			tx.yieldNs += d
			st.YieldNs.Add(d)
		default:
			tx.parkNs += d
			st.ParkNs.Add(d)
		}
	}
	tx.stallMark = now
	switch {
	case spins <= budget:
		spinWait(tx.th.nextRand() & 15)
	case spins <= parkFactor*budget:
		st.Yields.Add(1)
		tx.yields++
		runtime.Gosched()
	default:
		st.Parks.Add(1)
		tx.parks++
		over := spins - parkFactor*budget
		if over > maxParkMicros {
			over = maxParkMicros
		}
		time.Sleep(time.Duration(over) * time.Microsecond)
	}
}
