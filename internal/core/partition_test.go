package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memory"
)

func TestInstallPlanRoutesSitesToPartitions(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	sA := sites.Register("a")
	sB := sites.Register("b")

	sitePart := make([]PartID, sites.Count())
	sitePart[sA] = 1
	sitePart[sB] = 2
	cfgA := DefaultPartConfig()
	cfgA.Read = VisibleReads
	if err := e.InstallPlan(sitePart,
		[]string{"global", "partA", "partB"},
		[]PartConfig{DefaultPartConfig(), cfgA, DefaultPartConfig()}); err != nil {
		t.Fatal(err)
	}

	th := e.MustAttachThread()
	var aA, aB, aD memory.Addr
	th.Atomic(func(tx *Tx) {
		aA = tx.Alloc(sA, 2)
		aB = tx.Alloc(sB, 2)
		aD = tx.Alloc(memory.DefaultSite, 2)
		tx.Store(aA, 1)
		tx.Store(aB, 2)
		tx.Store(aD, 3)
	})
	if p := e.PartitionOfAddr(aA); p.ID() != 1 || p.Name() != "partA" {
		t.Fatalf("aA in partition %d (%s)", p.ID(), p.Name())
	}
	if p := e.PartitionOfAddr(aB); p.ID() != 2 {
		t.Fatalf("aB in partition %d", p.ID())
	}
	if p := e.PartitionOfAddr(aD); p.ID() != GlobalPartition {
		t.Fatalf("aD in partition %d", p.ID())
	}
	if got := e.Partition(1).Config().Read; got != VisibleReads {
		t.Fatalf("partA read mode = %v", got)
	}
}

func TestInstallPlanValidation(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	if err := e.InstallPlan(nil, nil, nil); err == nil {
		t.Fatal("empty plan accepted")
	}
	if err := e.InstallPlan([]PartID{5}, []string{"g"}, []PartConfig{DefaultPartConfig()}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := e.InstallPlan(nil, []string{"g", "x"}, []PartConfig{DefaultPartConfig()}); err == nil {
		t.Fatal("mismatched names/configs accepted")
	}
}

func TestCrossPartitionAtomicity(t *testing.T) {
	// A transfer between two partitions with different configurations must
	// stay atomic: the sum across partitions is invariant.
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	sA := sites.Register("xa")
	sB := sites.Register("xb")
	sitePart := make([]PartID, sites.Count())
	sitePart[sA] = 1
	sitePart[sB] = 2
	cfgVis := DefaultPartConfig()
	cfgVis.Read = VisibleReads
	cfgCTL := DefaultPartConfig()
	cfgCTL.Acquire = CommitTime
	if err := e.InstallPlan(sitePart, []string{"g", "vis", "ctl"},
		[]PartConfig{DefaultPartConfig(), cfgVis, cfgCTL}); err != nil {
		t.Fatal(err)
	}

	setup := e.MustAttachThread()
	var accA, accB memory.Addr
	setup.Atomic(func(tx *Tx) {
		accA = tx.Alloc(sA, 1)
		accB = tx.Alloc(sB, 1)
		tx.Store(accA, 10000)
		tx.Store(accB, 10000)
	})
	e.DetachThread(setup)

	const workers = 6
	const iters = 2000
	var wg sync.WaitGroup
	var inconsistent atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < iters; i++ {
				if id%2 == 0 {
					th.Atomic(func(tx *Tx) {
						a := tx.Load(accA)
						if a == 0 {
							return
						}
						tx.Store(accA, a-1)
						tx.Store(accB, tx.Load(accB)+1)
					})
				} else {
					th.Atomic(func(tx *Tx) {
						sum := tx.Load(accA) + tx.Load(accB)
						if sum != 20000 {
							inconsistent.Add(1)
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()
	if n := inconsistent.Load(); n != 0 {
		t.Fatalf("%d transactions observed a broken cross-partition sum", n)
	}
	var final uint64
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) { final = tx.Load(accA) + tx.Load(accB) })
	if final != 20000 {
		t.Fatalf("final sum = %d, want 20000", final)
	}
}

func TestReconfigureUnderLoad(t *testing.T) {
	// Flip the global partition between configurations while workers hammer
	// a counter; the count must be exact and the engine must not deadlock.
	e := newTestEngine(t, DefaultPartConfig())
	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	e.DetachThread(setup)

	const workers = 4
	const perW = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	stop := make(chan struct{})
	var reconfigs int
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		cfgs := []PartConfig{}
		for _, c := range allModeConfigs() {
			cfgs = append(cfgs, c)
		}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Reconfigure(GlobalPartition, cfgs[i%len(cfgs)]); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			reconfigs++
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	if reconfigs == 0 {
		t.Fatal("no reconfigurations happened during the test")
	}
	if got := e.STWCount(); got == 0 {
		t.Fatal("STWCount = 0")
	}
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != workers*perW {
			t.Errorf("counter = %d, want %d (lost updates across reconfiguration)", got, workers*perW)
		}
	})
}

func TestReconfigureUnknownPartition(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	if err := e.Reconfigure(42, DefaultPartConfig()); err == nil {
		t.Fatal("Reconfigure of unknown partition succeeded")
	}
}

func TestGenerationAdvances(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	p := e.Partition(GlobalPartition)
	g0 := p.Generation()
	cfg := p.Config()
	cfg.LockBits = 8
	if err := e.Reconfigure(GlobalPartition, cfg); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != g0+1 {
		t.Fatalf("generation %d -> %d, want +1", g0, p.Generation())
	}
	if p.Config().LockBits != 8 {
		t.Fatalf("LockBits = %d after reconfigure", p.Config().LockBits)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	for i := 0; i < 10; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	for i := 0; i < 5; i++ {
		th.ReadOnlyAtomic(func(tx *Tx) { tx.Load(a) })
	}
	s := e.StatsSnapshot(GlobalPartition)
	if s.Commits != 16 {
		t.Errorf("Commits = %d, want 16", s.Commits)
	}
	if s.UpdateCommits != 11 {
		t.Errorf("UpdateCommits = %d, want 11", s.UpdateCommits)
	}
	if s.ROCommits != 5 {
		t.Errorf("ROCommits = %d, want 5", s.ROCommits)
	}
	if s.Loads < 15 {
		t.Errorf("Loads = %d, want >= 15", s.Loads)
	}
	if s.Stores != 11 {
		t.Errorf("Stores = %d, want 11", s.Stores)
	}
	if s.UpdateRatio() <= 0.5 {
		t.Errorf("UpdateRatio = %v", s.UpdateRatio())
	}
	all := e.AllStats()
	if len(all) != 1 || all[0].Commits != s.Commits {
		t.Errorf("AllStats mismatch: %+v", all)
	}
}

func TestStatsDelta(t *testing.T) {
	a := PartStats{Commits: 10, Loads: 100}
	a.Aborts[AbortValidation] = 4
	b := PartStats{Commits: 25, Loads: 180}
	b.Aborts[AbortValidation] = 9
	d := b.Sub(a)
	if d.Commits != 15 || d.Loads != 80 || d.Aborts[AbortValidation] != 5 {
		t.Fatalf("delta = %+v", d)
	}
	if d.TotalAborts() != 5 {
		t.Fatalf("TotalAborts = %d", d.TotalAborts())
	}
	if r := d.AbortRate(); r < 0.24 || r > 0.26 {
		t.Fatalf("AbortRate = %v", r)
	}
}

func TestAdvanceClockStress(t *testing.T) {
	// Jump the clock far ahead; transactions must keep working (snapshot
	// extension against large timestamps).
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 1)
	})
	e.AdvanceClock(1 << 40)
	th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 2 {
			t.Errorf("value = %d", got)
		}
	})
	if e.Clock() < 1<<40 {
		t.Fatalf("clock = %d", e.Clock())
	}
}

func TestThreadSlotExhaustionAndReuse(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	var ths []*Thread
	for i := 0; i < MaxThreads; i++ {
		ths = append(ths, e.MustAttachThread())
	}
	if _, err := e.AttachThread(); err == nil {
		t.Fatal("65th attach succeeded")
	}
	e.DetachThread(ths[10])
	th, err := e.AttachThread()
	if err != nil {
		t.Fatalf("reattach after detach: %v", err)
	}
	if th.Slot() != 10 {
		t.Fatalf("reused slot = %d, want 10", th.Slot())
	}
}

func TestExplicitAbortRetries(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	tries := 0
	th.Atomic(func(tx *Tx) {
		tries++
		if tries < 3 {
			tx.Abort()
		}
		tx.Store(a, uint64(tries))
	})
	if tries != 3 {
		t.Fatalf("tries = %d, want 3", tries)
	}
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 3 {
			t.Errorf("value = %d, want 3", got)
		}
	})
}
