package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/memory"
)

// TestEpochStampHygienePooled verifies the epoch table's slot discipline
// across the pooled borrow/return cycle: a slot publishes a stamp only
// while a transaction is live on it, and a returned Thread can never
// strand a stale stamp that would pin the horizon forever.
func TestEpochStampHygienePooled(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.BorrowThread()
	slot := th.Slot()
	if got := e.EpochStamp(slot); got != HorizonIdle {
		t.Fatalf("borrowed idle slot publishes stamp %d, want HorizonIdle", got)
	}
	var inside uint64
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 1)
		inside = e.EpochStamp(slot)
	})
	if inside == HorizonIdle {
		t.Fatal("live transaction did not publish a stamp")
	}
	if got := e.EpochStamp(slot); got != HorizonIdle {
		t.Fatalf("slot still publishes %d after commit, want HorizonIdle", got)
	}
	e.ReturnThread(th)
	if got := e.EpochStamp(slot); got != HorizonIdle {
		t.Fatalf("slot publishes %d after return, want HorizonIdle", got)
	}
	if h := e.Horizon(); h != HorizonIdle {
		t.Fatalf("horizon %d with no live transaction, want HorizonIdle", h)
	}
}

// TestReclaimChurnTorture churns alloc/free under concurrent snapshot
// scans. Every node's words are stored equal, so any use-after-reclaim —
// a node recycled while a snapshot reader could still reach it — shows up
// as a mixed-word read (or as a -race report). After quiescing, one
// ReclaimNow must account for every retired word: retired == reclaimed,
// limbo empty.
func TestReclaimChurnTorture(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.HistCap = 1 << 14
	e := newTestEngine(t, cfg)

	const (
		cells   = 16
		nodeLen = 8
		writers = 4
		readers = 2
		rounds  = 300
	)
	// Each cell holds a pointer to a nodeLen-word node whose words all
	// carry the same value.
	var table memory.Addr
	if err := e.RunPooled(func(tx *Tx) error {
		table = tx.Alloc(memory.DefaultSite, cells)
		for i := 0; i < cells; i++ {
			n := tx.Alloc(memory.DefaultSite, nodeLen)
			for w := 0; w < nodeLen; w++ {
				tx.Store(n+memory.Addr(w), 1)
			}
			tx.StoreAddr(table+memory.Addr(i), n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var writersWG, readersWG sync.WaitGroup
	errs := make(chan string, writers+readers)
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(seed uint64) {
			defer writersWG.Done()
			rng := seed*2654435761 + 1
			for r := 0; r < rounds; r++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				cell := table + memory.Addr(rng%cells)
				err := e.RunPooled(func(tx *Tx) error {
					old := tx.LoadAddr(cell)
					v := tx.Load(old)
					for w := 1; w < nodeLen; w++ {
						if got := tx.Load(old + memory.Addr(w)); got != v {
							errs <- "writer read mixed node words (use-after-reclaim?)"
							return nil
						}
					}
					n := tx.Alloc(memory.DefaultSite, nodeLen)
					for w := 0; w < nodeLen; w++ {
						tx.Store(n+memory.Addr(w), v+1)
					}
					tx.StoreAddr(cell, n)
					tx.Free(old, nodeLen)
					return nil
				})
				if err != nil {
					errs <- err.Error()
					return
				}
			}
		}(uint64(g))
	}
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for !stop.Load() {
				err := e.RunPooled(func(tx *Tx) error {
					for i := 0; i < cells; i++ {
						n := tx.LoadAddr(table + memory.Addr(i))
						v := tx.Load(n)
						for w := 1; w < nodeLen; w++ {
							if got := tx.Load(n + memory.Addr(w)); got != v {
								errs <- "snapshot scan read mixed node words (use-after-reclaim?)"
								return nil
							}
						}
					}
					return nil
				}, Snapshot())
				if err != nil {
					errs <- err.Error()
					return
				}
			}
		}()
	}
	writersWG.Wait()
	stop.Store(true)
	readersWG.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// Quiesce: nothing is live, so one sweep must claim everything.
	reclaimed := e.ReclaimNow()
	rs := e.ReclaimStats()
	if rs.RetiredWords != rs.ReclaimedWords {
		t.Fatalf("after quiesce reclaim (%d words): retired %d != reclaimed %d (limbo %d)",
			reclaimed, rs.RetiredWords, rs.ReclaimedWords, rs.LimboWords)
	}
	if rs.LimboWords != 0 {
		t.Fatalf("limbo not empty after quiesce reclaim: %d words", rs.LimboWords)
	}
	if rs.RetiredWords == 0 {
		t.Fatal("churn retired no words: the retire path is not wired")
	}
}

// TestChurnArenaFlat is the steady-state leak check: rounds of alloc/free
// churn — small, large, and block-spanning objects — must not grow the
// arena's block consumption once the free lists are primed. Before the
// large-object fix, every Free of an n >= maxSmallSize object silently
// leaked it; this test pins the regression.
func TestChurnArenaFlat(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	defer e.DetachThread(th)

	sizes := []int{1, 7, 64, 100, 1500} // small, boundary, large, block-spanning
	const perSize = 8
	round := func() {
		var addrs []memory.Addr
		th.Atomic(func(tx *Tx) {
			addrs = addrs[:0]
			for _, n := range sizes {
				for i := 0; i < perSize; i++ {
					a := tx.Alloc(memory.DefaultSite, n)
					tx.Store(a, uint64(n))
					addrs = append(addrs, a)
				}
			}
		})
		th.Atomic(func(tx *Tx) {
			for i, a := range addrs {
				tx.Free(a, sizes[i/perSize])
			}
		})
		// Horizon is idle here (no live transaction): drain the limbo so
		// the next round reuses this round's memory.
		th.Reclaim()
	}

	round() // prime the free lists
	baseline := e.arena.BlocksInUse()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		round()
	}
	if got := e.arena.BlocksInUse(); got != baseline {
		t.Fatalf("arena grew under steady-state churn: %d blocks after warmup, %d after %d rounds",
			baseline, got, rounds)
	}
	rs := e.ReclaimStats()
	if rs.RetiredWords != rs.ReclaimedWords || rs.LimboWords != 0 {
		t.Fatalf("quiesced churn left limbo: retired %d, reclaimed %d, limbo %d",
			rs.RetiredWords, rs.ReclaimedWords, rs.LimboWords)
	}
}
