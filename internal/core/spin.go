package core

// spinQuantum is the unit of calibrated busy-waiting. It is deliberately
// an empty noinline function: the compiler deletes an empty counted loop
// outright (which silently turned the randomized backoff pauses into
// no-ops), but it cannot elide a call it is forbidden to inline, so each
// iteration of spinWait costs a real call-return round trip (~1-2ns).
//
//go:noinline
func spinQuantum() {}

// spinWait busy-waits for n spin quanta without touching shared memory;
// it is the pause primitive of CMBackoff and the engine's between-attempt
// backoff. Unlike runtime.Gosched it never enters the scheduler, so short
// pauses stay short, and unlike a shared volatile sink it is free of data
// races under the race detector.
func spinWait(n uint64) {
	for i := uint64(0); i < n; i++ {
		spinQuantum()
	}
}
