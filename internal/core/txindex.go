package core

import "unsafe"

// txIndex is a small open-addressed hash table mapping a uint64 key (a
// heap address or an orec's pointer bits) to a position in one of the
// transaction's bookkeeping slices (read set, write set, lock set). It is
// the footprint-bounding replacement for both the per-attempt Go map the
// write set used to carry and the linear scans the read set forced on
// every lookup.
//
// Slots are generation-stamped: reset is O(1) (bump the generation), so
// one table is reused across every attempt of a thread's lifetime without
// clearing. The table stores no pointers — orec keys are pointer bits used
// purely as hash identity; the referenced orecs are kept alive by the
// entries of the slice the index points into (and orec tables are only
// replaced under quiescence, never mid-attempt, so the bits stay valid for
// as long as a generation lives).
//
// Callers pair the table with an inline linear scan for small sets (see
// rsFind/wsFind/lkFind in tx.go): probing a table only beats scanning a
// handful of entries once the set has outgrown a cache line or two.
type txIndex struct {
	keys []uint64
	vals []int32
	gens []uint64
	// gen is the current generation; a slot is live iff its gens entry
	// matches.
	gen   uint64
	n     int    // live slots in the current generation
	mask  uint64 // len(keys)-1
	shift uint   // 64 - log2(len(keys)); hash uses the high multiply bits
}

// hashMul is the 64-bit Fibonacci multiplier; the high bits of key*hashMul
// are well mixed even for sequential addresses and pointer-aligned keys.
const hashMul = 0x9E3779B97F4A7C15

const txIndexInitialSize = 64

// orecKey converts an orec pointer into an index key. Go's collector does
// not move heap objects, and the orec outlives the generation (see the
// type comment), so the pointer bits are a stable identity.
func orecKey(o *orec) uint64 { return uint64(uintptr(unsafe.Pointer(o))) }

// reset invalidates every entry in O(1).
func (t *txIndex) reset() {
	t.gen++
	t.n = 0
}

// get returns the value stored for k, or -1.
func (t *txIndex) get(k uint64) int {
	if t.n == 0 {
		return -1
	}
	i := (k * hashMul) >> t.shift
	for {
		if t.gens[i] != t.gen {
			return -1
		}
		if t.keys[i] == k {
			return int(t.vals[i])
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or overwrites the value for k.
func (t *txIndex) put(k uint64, v int32) {
	if len(t.keys) == 0 || t.n >= (len(t.keys)/4)*3 {
		t.grow()
	}
	i := (k * hashMul) >> t.shift
	for {
		if t.gens[i] != t.gen {
			t.keys[i], t.vals[i], t.gens[i] = k, v, t.gen
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles capacity (or allocates the initial table) and rehashes the
// live generation.
func (t *txIndex) grow() {
	newCap := txIndexInitialSize
	if len(t.keys) > 0 {
		newCap = len(t.keys) * 2
	}
	oldKeys, oldVals, oldGens := t.keys, t.vals, t.gens
	oldGen := t.gen
	t.keys = make([]uint64, newCap)
	t.vals = make([]int32, newCap)
	t.gens = make([]uint64, newCap)
	t.mask = uint64(newCap) - 1
	t.shift = 64
	for c := newCap; c > 1; c >>= 1 {
		t.shift--
	}
	// Fresh arrays have gens all zero; restart the generation at 1 so no
	// stale slot can alias it.
	t.gen = 1
	t.n = 0
	for i := range oldKeys {
		if oldGens[i] == oldGen {
			t.reinsert(oldKeys[i], oldVals[i])
		}
	}
}

// reinsert is put without the growth check (capacity is already sufficient
// during a rehash).
func (t *txIndex) reinsert(k uint64, v int32) {
	i := (k * hashMul) >> t.shift
	for {
		if t.gens[i] != t.gen {
			t.keys[i], t.vals[i], t.gens[i] = k, v, t.gen
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}
