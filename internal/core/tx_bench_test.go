package core

import (
	"fmt"
	"testing"

	"repro/internal/memory"
)

// BenchmarkWriteSetProbe compares the transaction's hybrid write-set
// lookup (inline linear probe for small sets, generation-stamped
// open-addressed index beyond) against the Go map the write set used to
// carry. Acceptance: the hybrid must at least match the map on small sets
// and beat it on large ones.
func BenchmarkWriteSetProbe(b *testing.B) {
	for _, n := range []int{4, 8, 64, 1024} {
		keys := make([]memory.Addr, n)
		for i := range keys {
			keys[i] = memory.Addr(i*8 + 16)
		}
		b.Run(fmt.Sprintf("table/%d", n), func(b *testing.B) {
			tx := &Tx{}
			tx.ws = tx.ws[:0]
			tx.wsIdx.reset()
			tx.wsIndexed = 0
			for i, k := range keys {
				if tx.wsFind(k) < 0 {
					tx.ws = append(tx.ws, writeEntry{addr: k, val: uint64(i)})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tx.wsFind(keys[i%n]) < 0 {
					b.Fatal("missing key")
				}
			}
		})
		b.Run(fmt.Sprintf("gomap/%d", n), func(b *testing.B) {
			m := make(map[memory.Addr]int, 64)
			for i, k := range keys {
				m[k] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := m[keys[i%n]]; !ok {
					b.Fatal("missing key")
				}
			}
		})
	}
}

// BenchmarkRepeatedReadTx measures a read-only transaction that sweeps a
// fixed footprint of 64 words `passes` times. With read-set
// deduplication, per-load cost must stay flat (or fall, as the fixed
// begin/commit cost amortizes) as the loads multiply — the read set and
// the validation work are bounded by the footprint.
func BenchmarkRepeatedReadTx(b *testing.B) {
	const words = 64
	e := newTestEngine(b, DefaultPartConfig())
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var base memory.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.SiteID(0), words)
		for i := 0; i < words; i++ {
			tx.Store(base+memory.Addr(i), uint64(i))
		}
	})
	for _, passes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				th.ReadOnlyAtomic(func(tx *Tx) {
					var sink uint64
					for p := 0; p < passes; p++ {
						for j := 0; j < words; j++ {
							sink += tx.Load(base + memory.Addr(j))
						}
					}
					_ = sink
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*passes*words), "ns/load")
		})
	}
}

// BenchmarkWideWriteTx measures update transactions across write-set
// sizes spanning the inline-probe and indexed regimes, in all three write
// modes — plus write-back with a snapshot store attached, which prices
// the per-partition batched history publication on the widest commits.
func BenchmarkWideWriteTx(b *testing.B) {
	modes := []struct {
		name string
		mut  func(*PartConfig)
	}{
		{"wb", func(c *PartConfig) {}},
		{"wt", func(c *PartConfig) { c.Write = WriteThrough }},
		{"ctl", func(c *PartConfig) { c.Acquire = CommitTime }},
		{"wb-hist", func(c *PartConfig) { c.HistCap = 4096 }},
	}
	for _, m := range modes {
		for _, n := range []int{4, 64, 512} {
			b.Run(fmt.Sprintf("%s/writes=%d", m.name, n), func(b *testing.B) {
				cfg := DefaultPartConfig()
				m.mut(&cfg)
				e := newTestEngine(b, cfg)
				th := e.MustAttachThread()
				defer e.DetachThread(th)
				var base memory.Addr
				th.Atomic(func(tx *Tx) {
					base = tx.Alloc(memory.SiteID(0), n)
					for i := 0; i < n; i++ {
						tx.Store(base+memory.Addr(i), 0)
					}
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					th.Atomic(func(tx *Tx) {
						for j := 0; j < n; j++ {
							tx.Store(base+memory.Addr(j), uint64(i+j))
						}
					})
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/store")
			})
		}
	}
}

// BenchmarkSpinWait pins the cost of one spin quantum so backoff tuning
// has a number to reason about.
func BenchmarkSpinWait(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spinWait(64)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/quantum")
}
