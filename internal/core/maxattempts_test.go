package core

import (
	"errors"
	"testing"

	"repro/internal/memory"
)

// TestMaxAttemptsErrorLockConflict: a budget exhausted against a held
// encounter-time lock must surface a *MaxAttemptsError that matches the
// ErrMaxAttempts sentinel and carries the lock-conflict cause.
func TestMaxAttemptsErrorLockConflict(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.CM = CMSuicide // abort immediately on lock conflict, no waiting
	e := newTestEngine(t, cfg)

	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	e.DetachThread(setup)

	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := e.MustAttachThread()
		defer e.DetachThread(th)
		th.Atomic(func(tx *Tx) {
			tx.Store(a, 1) // encounter-time lock taken here
			close(held)
			<-release // park holding the lock
		})
	}()
	<-held

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	err := th.Run(func(tx *Tx) error {
		tx.Store(a, 2)
		return nil
	}, MaxAttempts(3))
	close(release)
	<-done

	if !errors.Is(err, ErrMaxAttempts) {
		t.Fatalf("err = %v, want errors.Is(_, ErrMaxAttempts)", err)
	}
	var mae *MaxAttemptsError
	if !errors.As(err, &mae) {
		t.Fatalf("err = %T, want *MaxAttemptsError", err)
	}
	if mae.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", mae.Attempts)
	}
	if mae.Cause != AbortLockedOnWrite {
		t.Errorf("Cause = %s, want %s", mae.Cause, AbortLockedOnWrite)
	}
}

// TestMaxAttemptsErrorKilled: the same budget exhausted by contention-
// manager kills must report AbortKilled as the cause — the two livelock
// flavors are distinguishable from the error alone.
func TestMaxAttemptsErrorKilled(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
	})
	e.DetachThread(setup)

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	err := th.Run(func(tx *Tx) error {
		tx.th.kill() // simulate a CM kill landing mid-attempt
		tx.Store(a, 1)
		return nil
	}, MaxAttempts(2))

	if !errors.Is(err, ErrMaxAttempts) {
		t.Fatalf("err = %v, want errors.Is(_, ErrMaxAttempts)", err)
	}
	var mae *MaxAttemptsError
	if !errors.As(err, &mae) {
		t.Fatalf("err = %T, want *MaxAttemptsError", err)
	}
	if mae.Cause != AbortKilled {
		t.Errorf("Cause = %s, want %s", mae.Cause, AbortKilled)
	}
	if mae.Error() == "" || mae.Attempts != 2 {
		t.Errorf("unexpected error contents: %q, attempts %d", mae.Error(), mae.Attempts)
	}
}
