package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func cmConfig(p CMPolicy) PartConfig {
	cfg := DefaultPartConfig()
	cfg.CM = p
	cfg.LockBits = 8
	return cfg
}

// TestCMPoliciesProgress checks that every contention-management policy
// lets a contended counter workload finish with the exact count (no lost
// updates, no livelock).
func TestCMPoliciesProgress(t *testing.T) {
	for _, pol := range []CMPolicy{CMSuicide, CMSpin, CMKarma, CMAggressive, CMBackoff, CMTimestamp} {
		t.Run(pol.String(), func(t *testing.T) {
			e := newTestEngine(t, cmConfig(pol))
			setup := e.MustAttachThread()
			var a memory.Addr
			setup.Atomic(func(tx *Tx) {
				a = tx.Alloc(memory.DefaultSite, 1)
				tx.Store(a, 0)
			})
			e.DetachThread(setup)
			const workers, perW = 6, 1500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					for i := 0; i < perW; i++ {
						th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
					}
				}()
			}
			wg.Wait()
			check := e.MustAttachThread()
			check.Atomic(func(tx *Tx) {
				if got := tx.Load(a); got != workers*perW {
					t.Errorf("counter = %d, want %d", got, workers*perW)
				}
			})
		})
	}
}

// TestVisibleReaderArbitration exercises writer-vs-reader policies on a
// visible-reads partition under contention.
func TestVisibleReaderArbitration(t *testing.T) {
	for _, rp := range []ReaderPolicy{WriterKillsReaders, WriterYieldsToReaders} {
		t.Run(rp.String(), func(t *testing.T) {
			cfg := DefaultPartConfig()
			cfg.Read = VisibleReads
			cfg.ReaderCM = rp
			cfg.LockBits = 4 // few orecs: force reader/writer collisions
			e := newTestEngine(t, cfg)
			setup := e.MustAttachThread()
			var base memory.Addr
			const slots = 16
			setup.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.DefaultSite, slots)
				for i := 0; i < slots; i++ {
					tx.Store(base+memory.Addr(i), 5)
				}
			})
			e.DetachThread(setup)

			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					for i := 0; i < 1000; i++ {
						if id%2 == 0 {
							th.Atomic(func(tx *Tx) {
								// Sum must always be slots*5.
								var s uint64
								for j := 0; j < slots; j++ {
									s += tx.Load(base + memory.Addr(j))
								}
								if s != slots*5 {
									t.Errorf("reader saw sum %d", s)
								}
							})
						} else {
							th.Atomic(func(tx *Tx) {
								j := memory.Addr(i % (slots - 1))
								v := tx.Load(base + j)
								if v == 0 {
									return
								}
								tx.Store(base+j, v-1)
								tx.Store(base+j+1, tx.Load(base+j+1)+1)
							})
						}
					}
				}(w)
			}
			wg.Wait()

			// Reader bits must all be clear when no transaction runs.
			ps := e.Partition(GlobalPartition).loadState()
			for i := range ps.table.orecs {
				if r := ps.table.orecs[i].readers.Load(); r != 0 {
					t.Fatalf("orec %d leaked reader bits %b", i, r)
				}
				if l := ps.table.orecs[i].lock.Load(); isLocked(l) {
					t.Fatalf("orec %d leaked lock %x", i, l)
				}
			}
		})
	}
}

func TestKillFlagAbortsVictim(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	attempts := 0
	th.Atomic(func(tx *Tx) {
		attempts++
		if attempts == 1 {
			th.kill() // simulate another thread's CM decision
		}
		tx.Load(a) // polls the flag
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	s := e.StatsSnapshot(GlobalPartition)
	if s.Aborts[AbortKilled] != 1 {
		t.Fatalf("killed aborts = %d, want 1", s.Aborts[AbortKilled])
	}
}

// TestTimestampCMOlderWins pits one long transaction (many reads before
// its write) against a stream of short writers under CMTimestamp. With
// older-wins arbitration the long transaction must complete in a bounded
// number of attempts; suicide CM under the same schedule starves it much
// longer, which is exactly the behaviour the policy exists to fix.
func TestTimestampCMOlderWins(t *testing.T) {
	e := newTestEngine(t, cmConfig(CMTimestamp))
	setup := e.MustAttachThread()
	const words = 32
	var base memory.Addr
	setup.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, words)
		for i := 0; i < words; i++ {
			tx.Store(base+memory.Addr(i), 1)
		}
	})
	e.DetachThread(setup)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				th.Atomic(func(tx *Tx) {
					a := base + memory.Addr(i%words)
					tx.Store(a, tx.Load(a))
				})
			}
		}(w * 7)
	}

	long := e.MustAttachThread()
	attempts := 0
	long.Atomic(func(tx *Tx) {
		attempts++
		var s uint64
		for i := 0; i < words; i++ {
			s += tx.Load(base + memory.Addr(i))
		}
		tx.Store(base, s-uint64(words)+1) // keep the constant-sum invariant
	})
	e.DetachThread(long)
	close(stop)
	wg.Wait()
	// The long transaction gets the oldest ordinal as soon as its first
	// attempt predates the current short writers, so it must not need an
	// unbounded number of attempts.
	if attempts > 200 {
		t.Fatalf("long transaction needed %d attempts under older-wins CM", attempts)
	}
}

// TestBackoffCMRecordsWaitCycles verifies CMBackoff waits (rather than
// aborting immediately) and accounts its waiting in the partition stats.
func TestBackoffCMRecordsWaitCycles(t *testing.T) {
	e := newTestEngine(t, cmConfig(CMBackoff))
	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	e.DetachThread(setup)
	var wg sync.WaitGroup
	const workers, perW = 4, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	wg.Wait()
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != workers*perW {
			t.Errorf("counter = %d, want %d", got, workers*perW)
		}
	})
	s := e.StatsSnapshot(GlobalPartition)
	if s.Commits < workers*perW {
		t.Fatalf("commits = %d, want >= %d", s.Commits, workers*perW)
	}
}

func TestOrecEncoding(t *testing.T) {
	f := func(ts uint64) bool {
		ts >>= 1 // version space is 63 bits
		w := versionWord(ts)
		return !isLocked(w) && versionOf(w) == ts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(slot uint8) bool {
		s := int(slot % MaxThreads)
		w := lockWordFor(s)
		return isLocked(w) && lockOwner(w) == s
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrecTableMapping(t *testing.T) {
	tbl := newOrecTable(4, 2) // 16 orecs, 4 words per orec
	if len(tbl.orecs) != 16 {
		t.Fatalf("orecs = %d", len(tbl.orecs))
	}
	// Words 0..3 share an orec; word 4 uses the next one.
	if tbl.of(0) != tbl.of(3) {
		t.Fatal("granularity grouping broken")
	}
	if tbl.of(3) == tbl.of(4) {
		t.Fatal("adjacent groups collide")
	}
	// Index wraps at table size.
	if tbl.indexOf(0) != tbl.indexOf(memory.Addr(16*4)) {
		t.Fatal("mask wrap broken")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := PartConfig{Acquire: CommitTime, Write: WriteThrough, LockBits: 1, GranShift: 40}
	n := c.Normalize()
	if n.Write != WriteBack {
		t.Error("CTL must force write-back")
	}
	if n.LockBits < 2 || n.LockBits > 24 {
		t.Errorf("LockBits = %d", n.LockBits)
	}
	if n.GranShift > 16 {
		t.Errorf("GranShift = %d", n.GranShift)
	}
	if n.SpinBudget <= 0 {
		t.Errorf("SpinBudget = %d", n.SpinBudget)
	}
	if DefaultPartConfig().String() == "" {
		t.Error("empty config string")
	}
}

func TestEnumStrings(t *testing.T) {
	// Exhaustive String() coverage, including out-of-range values.
	for _, s := range []string{
		InvisibleReads.String(), VisibleReads.String(), ReadMode(9).String(),
		EncounterTime.String(), CommitTime.String(), AcquireMode(9).String(),
		WriteBack.String(), WriteThrough.String(), WriteMode(9).String(),
		CMSuicide.String(), CMSpin.String(), CMKarma.String(), CMAggressive.String(),
		CMBackoff.String(), CMTimestamp.String(), CMPolicy(99).String(),
		WriterKillsReaders.String(), WriterYieldsToReaders.String(), ReaderPolicy(9).String(),
	} {
		if s == "" {
			t.Fatal("empty enum string")
		}
	}
	for c := AbortCause(0); c <= AbortExplicit; c++ {
		if c.String() == "" {
			t.Fatalf("empty string for cause %d", c)
		}
	}
	if AbortCause(200).String() == "" {
		t.Fatal("empty string for unknown cause")
	}
}

func TestWriteThroughVisibleCombination(t *testing.T) {
	// WT + visible reads + writer-kills: heavy single-word contention.
	cfg := DefaultPartConfig()
	cfg.Read = VisibleReads
	cfg.Write = WriteThrough
	cfg.ReaderCM = WriterKillsReaders
	e := newTestEngine(t, cfg)
	setup := e.MustAttachThread()
	var a memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	e.DetachThread(setup)
	var wg sync.WaitGroup
	const workers, perW = 8, 800
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	wg.Wait()
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != workers*perW {
			t.Errorf("counter = %d, want %d", got, workers*perW)
		}
	})
}
