package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the engine's Thread slot pool: the machinery that
// makes transactions goroutine-native. Any goroutine may call
// Engine.RunPooled (the facade's Runtime.Run); it transparently borrows
// one of the MaxThreads reader-bitmap slots for the duration of the call
// and returns it on completion, so callers never manage Thread lifetime
// and arbitrary goroutine churn is safe.
//
// The borrow/return path is lock-free in steady state:
//
//   - claimCache is a tiny engine-owned victim cache of idle slots (the
//     sync.Pool idea — cache the last-used slot for the next borrower —
//     but with the entry itself holding the claim). A return parks its
//     slot in an empty entry with one CAS; the next borrow lifts it out
//     with one CAS and owns the Thread directly, touching nothing else —
//     a hot goroutine keeps getting the same Thread, so its allocator
//     magazines, transaction index and first-touch filters stay warm
//     across calls. Unlike tokens in a sync.Pool, cached claims live in
//     an Engine field, so a GC can never drop one and strand its slot.
//   - poolFree is a 64-bit bitmap with one bit per slot (set = idle
//     pooled Thread), the overflow level behind the cache. A borrow
//     claims a specific bit with CAS; a return sets it back with an
//     atomic OR.
//   - Pooled Threads are created lazily, one registry slot at a time
//     under the registry lock, only when cache and bitmap are empty — so
//     pinned AttachThread workers and the pool share the same 64 slots
//     and all engine machinery (reader bitmaps, kill, quiescence, stats)
//     sees pooled Threads as ordinary attached threads.
//
// When every slot is busy a borrower parks on a FIFO waiter queue and a
// returning Thread is handed to the oldest waiter directly — admission
// control in place of the old ErrNoSlots failure.

// claimCacheSize is the number of victim-cache entries: enough that a
// few concurrently returning goroutines don't spill to the bitmap, small
// enough that a cold borrow's scan is a handful of loads.
const claimCacheSize = 4

// BorrowThread claims a pooled Thread, creating one if the pool has room
// to grow, and parking FIFO behind earlier borrowers when all slots are
// busy. It never fails; pair it with ReturnThread.
//
// Most callers want RunPooled instead; the pair is exported for tests
// and for callers that amortize one borrow over several transactions.
func (e *Engine) BorrowThread() *Thread {
	// Fast path: lift a recently returned slot out of the victim cache.
	// The warm path does no accounting — misses are counted below, on
	// the cold path, so PoolStats can still report the warm fraction.
	if th := e.cacheClaim(); th != nil {
		return th
	}
	e.poolMisses.Add(1)
	if th := e.claimAnyFree(); th != nil {
		return th
	}
	if th := e.growPool(); th != nil {
		return th
	}
	return e.waitForThread()
}

// ReturnThread gives a borrowed Thread back to the pool: into the victim
// cache (spilling to the free-slot bitmap when the cache is full), then
// wakes the oldest parked borrower if any. The caller must not use th
// afterwards.
//
// The no-waiter fast path takes no lock: one CAS to park the slot, one
// waiter-count load. The publish-then-check order pairs with
// waitForThread's enqueue-then-reclaim (both sequentially consistent):
// either this return sees the waiter's count and wakes it, or the
// waiter's re-claim sees this return's slot — a wakeup cannot be lost.
func (e *Engine) ReturnThread(th *Thread) {
	if th == nil || !th.pooled {
		panic("core: ReturnThread on a Thread not borrowed from the pool")
	}
	// Epoch hygiene: a returned slot is outside any transaction, so its
	// published reclamation stamp must be idle. finish() already cleared it
	// on every exit path; this defensive clear guarantees a parked pooled
	// slot can never strand a stale stamp and stall the horizon for the
	// engine's whole lifetime (one store on a slot only we own).
	e.epochs.Clear(th.slot)
	if !e.cachePut(th.slot) {
		e.poolFree.Or(uint64(1) << uint(th.slot))
	}
	if e.waiterCount.Load() != 0 {
		e.wakeWaiter()
	}
}

// cachePut parks an idle slot in an empty victim-cache entry; false
// means the cache is full and the slot must go to the bitmap. Entries
// store slot+1 so the zero value means empty.
func (e *Engine) cachePut(slot int) bool {
	for i := range e.claimCache {
		if e.claimCache[i].CompareAndSwap(0, uint32(slot+1)) {
			return true
		}
	}
	return false
}

// cacheClaim lifts a slot out of the victim cache, returning its Thread;
// a successful CAS transfers the claim the entry was holding.
func (e *Engine) cacheClaim() *Thread {
	for i := range e.claimCache {
		if v := e.claimCache[i].Load(); v != 0 && e.claimCache[i].CompareAndSwap(v, 0) {
			return e.threads[v-1].Load()
		}
	}
	return nil
}

// claimIdle claims any idle pooled Thread: cache first, then bitmap.
func (e *Engine) claimIdle() *Thread {
	if th := e.cacheClaim(); th != nil {
		return th
	}
	return e.claimAnyFree()
}

// wakeWaiter hands freshly freed slots to parked borrowers, oldest
// first. A miss on the bitmap means a third party snatched the slot; its
// own return will find the still-parked waiter and retry the wake.
func (e *Engine) wakeWaiter() {
	e.waitMu.Lock()
	defer e.waitMu.Unlock()
	for len(e.waiters) > 0 {
		th := e.claimIdle()
		if th == nil {
			return
		}
		ch := e.waiters[0]
		e.waiters = e.waiters[1:]
		e.waiterCount.Add(-1)
		e.poolHandoffs.Add(1)
		ch <- th // buffered: never blocks
	}
}

// RunPooled runs fn as a transaction on a Thread borrowed from the slot
// pool, in the mode selected by opts (see Run). It is the goroutine-
// native entrypoint: safe to call from any goroutine, with admission
// control (FIFO waiting) instead of attach failures when all slots are
// busy.
func (e *Engine) RunPooled(fn func(*Tx) error, opts ...TxOpt) error {
	th := e.BorrowThread()
	defer e.ReturnThread(th)
	return th.Run(fn, opts...)
}

// claimAnyFree claims the lowest free pooled slot from the bitmap, or
// nil if none.
//
// This deliberately uses a load+CAS loop, NOT the value-returning
// atomic.Uint64.And: go1.24.0's And intrinsic miscompiles here (the
// expanded CAS loop clobbers the register holding e, so the following
// e.threads[slot] load dereferences the bitmap value — SIGSEGV when the
// pool drains to empty).
func (e *Engine) claimAnyFree() *Thread {
	for {
		m := e.poolFree.Load()
		if m == 0 {
			return nil
		}
		slot := bits.TrailingZeros64(m)
		if e.poolFree.CompareAndSwap(m, m&^(uint64(1)<<uint(slot))) {
			return e.threads[slot].Load()
		}
	}
}

// growPool attaches one more pooled Thread (claimed by the caller), or
// returns nil when the registry is full — pinned threads and pooled
// threads share the MaxThreads slots.
func (e *Engine) growPool() *Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	th, err := e.attachLocked()
	if err != nil {
		return nil
	}
	th.pooled = true
	e.poolSize.Add(1)
	return th
}

// waitForThread parks the borrower on the FIFO waiter queue until a
// return hands it a Thread.
func (e *Engine) waitForThread() *Thread {
	e.poolWaits.Add(1)
	ch := make(chan *Thread, 1)
	e.waitMu.Lock()
	e.waiters = append(e.waiters, ch)
	e.waiterCount.Add(1)
	e.waitMu.Unlock()
	// Lost-wakeup guard: a return whose waiter-count check raced our
	// enqueue has already parked its slot in the cache or bitmap —
	// re-claim so that slot cannot sit idle while we sleep (see
	// ReturnThread).
	if th := e.claimIdle(); th != nil {
		if e.cancelWaiter(ch) {
			return th
		}
		// A wake popped us concurrently, so a handoff is inbound:
		// recycle the double-claim and take the handoff.
		e.ReturnThread(th)
		return <-ch
	}
	return <-ch
}

// cancelWaiter removes ch from the waiter queue; false means a wake
// already popped it (and sent on it).
func (e *Engine) cancelWaiter(ch chan *Thread) bool {
	e.waitMu.Lock()
	defer e.waitMu.Unlock()
	for i, w := range e.waiters {
		if w == ch {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			e.waiterCount.Add(-1)
			return true
		}
	}
	return false
}

// PoolStats is a momentary reading of the slot pool.
type PoolStats struct {
	// Size is the number of pooled Threads created so far (they are never
	// destroyed; at most MaxThreads minus pinned attachments).
	Size int
	// Idle is the number of pooled Threads currently idle (victim cache
	// plus free bitmap).
	Idle int
	// Misses counts borrows NOT served by the victim cache (counted on
	// the cold path so the warm path stays accounting-free); borrows
	// minus Misses is the warm fraction.
	Misses uint64
	// Handoffs counts returns delivered directly to a parked borrower.
	Handoffs uint64
	// Waits counts borrows that parked on the waiter queue.
	Waits uint64
}

// PoolStats returns pool counters (monotonic except Idle).
func (e *Engine) PoolStats() PoolStats {
	idle := bits.OnesCount64(e.poolFree.Load())
	for i := range e.claimCache {
		if e.claimCache[i].Load() != 0 {
			idle++
		}
	}
	return PoolStats{
		Size:     int(e.poolSize.Load()),
		Idle:     idle,
		Misses:   e.poolMisses.Load(),
		Handoffs: e.poolHandoffs.Load(),
		Waits:    e.poolWaits.Load(),
	}
}

// poolState bundles the engine's pool fields (embedded in Engine).
type poolState struct {
	// claimCache holds idle slots as slot+1 (0 = empty entry); a CAS out
	// of an entry transfers the claim (see cachePut/cacheClaim).
	claimCache [claimCacheSize]atomic.Uint32
	// poolFree is the free-slot bitmap: bit i set means the pooled Thread
	// in registry slot i is idle and claimable by CAS.
	poolFree atomic.Uint64

	waitMu  sync.Mutex
	waiters []chan *Thread
	// waiterCount mirrors len(waiters) so the return fast path can skip
	// waitMu entirely when nobody is parked.
	waiterCount atomic.Int32

	poolSize     atomic.Int32
	poolMisses   atomic.Uint64
	poolHandoffs atomic.Uint64
	poolWaits    atomic.Uint64
}
