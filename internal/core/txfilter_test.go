package core

import (
	"testing"

	"repro/internal/memory"
)

// TestFilterNoFalseNegatives is the load-bearing property: read-after-
// write trusts a clear bit to mean "never added", so every added key must
// report mayContain across the word regime, the growth boundary, and
// bitset regrowth.
func TestFilterNoFalseNegatives(t *testing.T) {
	var f txFilter
	var keys []uint64
	enum := func(yield func(uint64)) {
		for _, k := range keys {
			yield(k)
		}
	}
	rng := uint64(0x9E3779B97F4A7C15)
	f.reset()
	for i := 0; i < 4096; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		keys = append(keys, rng)
		f.add(rng, 16, enum)
		if i == 15 || i == 16 || i == 127 || i == 128 || i == 4095 {
			// Spot-check full membership at regime boundaries (word→
			// bitset at 16, regrowth at fill > 1/8) and at the end.
			for _, k := range keys {
				if !f.mayContain(k) {
					t.Fatalf("false negative for key %#x after %d adds", k, len(keys))
				}
			}
		}
	}
}

// TestFilterResetForgets checks reset actually clears membership (a
// filter remembering a previous attempt's keys would silently disable
// first-touch skipping, and in the grown regime waste memory bandwidth).
func TestFilterResetForgets(t *testing.T) {
	var f txFilter
	enum := func(yield func(uint64)) {}
	f.reset()
	for i := uint64(1); i <= 100; i++ {
		f.add(i*0x10001, 16, func(yield func(uint64)) {
			for j := uint64(1); j <= i; j++ {
				yield(j * 0x10001)
			}
		})
	}
	f.reset()
	hits := 0
	for i := uint64(1); i <= 100; i++ {
		if f.mayContain(i * 0x10001) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("%d keys still reported after reset", hits)
	}
	_ = enum
}

// TestFilterNoClearBetweenAttempts pins the generation-stamp contract: a
// grown filter that is reset and grown into again must NOT memset its
// retained backing array (reset is O(1) for huge transactions retrying),
// yet every key of the previous attempt must read as absent — staleness
// lives in the per-word stamps, not in zeroed bits.
func TestFilterNoClearBetweenAttempts(t *testing.T) {
	var f txFilter
	var keys []uint64
	enum := func(yield func(uint64)) {
		for _, k := range keys {
			yield(k)
		}
	}
	f.reset()
	for i := uint64(0); i < 1000; i++ {
		k := (i + 1) * 0x9E3779B9
		keys = append(keys, k)
		f.add(k, 16, enum)
	}
	if !f.grown {
		t.Fatal("filter did not grow")
	}
	stale := 0
	for _, w := range f.bits {
		if w != 0 {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("no bits set after 1000 adds")
	}

	// Second attempt: reset, regrow into the SAME backing array with one
	// fresh key.
	oldKeys := keys
	keys = keys[:0]
	f.reset()
	for i := 0; i <= 16; i++ { // push past smallMax so the bitset re-engages
		k := uint64(0xABCD_0000) + uint64(i)*0x2545F491
		keys = append(keys, k)
		f.add(k, 16, enum)
	}
	if !f.grown {
		t.Fatal("filter did not regrow")
	}
	// No clear happened: the previous attempt's bits are physically still
	// in the retained backing array (the regrow into a smaller geometry
	// resliced it; scan the full capacity) — only stamps went stale.
	bitsFull := f.bits[:cap(f.bits)]
	gensFull := f.gens[:cap(f.bits)]
	surviving := 0
	for i, w := range bitsFull {
		if w != 0 && gensFull[i] != f.gen {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("backing array was cleared between attempts (stamps should carry staleness)")
	}
	// ...yet none of them is visible through the membership query.
	for _, k := range oldKeys {
		hit := false
		for _, nk := range keys {
			if bitPos(nk, f.mask) == bitPos(k, f.mask) {
				hit = true // genuine collision with a fresh key: FP allowed
				break
			}
		}
		if !hit && f.mayContain(k) {
			t.Fatalf("stale key %#x leaked through a stale-generation word", k)
		}
	}
	// And the fresh keys are all present (no false negatives).
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("false negative for fresh key %#x", k)
		}
	}
}

// TestFilterFalsePositivesConfirmed drives enough distinct orecs through
// a transaction that the one-word filter must produce false positives
// (>64 keys into 64 bits), and checks dedup stays exact: the read set
// holds one entry per unique orec no matter how often each is re-read.
// A false positive that skipped the rsFind confirmation would appear as
// either a duplicate entry (dedup missed) or a wrongly-skipped append.
func TestFilterFalsePositivesConfirmed(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.GranShift = 0
	e := newTestEngine(t, cfg)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	const words = 500
	var base memory.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, words)
		for i := 0; i < words; i++ {
			tx.Store(base+memory.Addr(i), uint64(i))
		}
	})
	// Count the distinct orecs covering the range (addresses can collide
	// in the orec table; the read set is deduplicated per orec).
	ps := e.Partition(GlobalPartition).loadState()
	distinct := make(map[*orec]bool, words)
	for i := 0; i < words; i++ {
		distinct[ps.table.of(base+memory.Addr(i))] = true
	}
	th.ReadOnlyAtomic(func(tx *Tx) {
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < words; i++ {
				_ = tx.Load(base + memory.Addr(i))
			}
		}
		if got := tx.ReadSetLen(); got != len(distinct) {
			t.Fatalf("read set = %d entries after 3 passes over %d distinct orecs", got, len(distinct))
		}
	})
}

// TestFilterWriteSetExact mirrors the read-set check for writes: repeated
// stores to a large footprint keep one write-set entry per address, and
// read-after-write returns the buffered (not in-memory) value for every
// address — which fails if the filter ever reports a false negative.
func TestFilterWriteSetExact(t *testing.T) {
	for _, mode := range []struct {
		name string
		mut  func(*PartConfig)
	}{
		{"wb", func(c *PartConfig) {}},
		{"wt", func(c *PartConfig) { c.Write = WriteThrough }},
		{"ctl", func(c *PartConfig) { c.Acquire = CommitTime }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultPartConfig()
			mode.mut(&cfg)
			e := newTestEngine(t, cfg)
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			const words = 300
			var base memory.Addr
			th.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.DefaultSite, words)
				for i := 0; i < words; i++ {
					tx.Store(base+memory.Addr(i), 0)
				}
			})
			th.Atomic(func(tx *Tx) {
				for pass := 0; pass < 2; pass++ {
					for i := 0; i < words; i++ {
						tx.Store(base+memory.Addr(i), uint64(1000+pass*words+i))
					}
				}
				if got := tx.WriteSetLen(); got != words {
					t.Fatalf("write set = %d entries, want %d (one per address)", got, words)
				}
				for i := 0; i < words; i++ {
					want := uint64(1000 + words + i) // last pass's value
					if got := tx.Load(base + memory.Addr(i)); got != want {
						t.Fatalf("read-after-write at %d = %d, want %d", i, got, want)
					}
				}
			})
			// Committed state must reflect the buffered values.
			th.ReadOnlyAtomic(func(tx *Tx) {
				for i := 0; i < words; i++ {
					want := uint64(1000 + words + i)
					if got := tx.Load(base + memory.Addr(i)); got != want {
						t.Fatalf("committed value at %d = %d, want %d", i, got, want)
					}
				}
			})
		})
	}
}
