package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/epoch"
	"repro/internal/memory"
	"repro/internal/mvstore"
	"repro/internal/stats"
)

// PointerRecorder receives pointer-store events during profiling runs. The
// partition analyzer implements it; the engine stays ignorant of how
// partitions are derived.
type PointerRecorder interface {
	RecordPointer(from, to memory.SiteID)
}

// topology maps addresses to partitions. It is immutable; the engine swaps
// in a new topology (under quiescence) when a partitioning plan is
// installed.
type topology struct {
	// sitePart[s] is the partition owning allocation site s. Sites beyond
	// the slice fall into GlobalPartition.
	sitePart []PartID
	parts    []*Partition
}

func (t *topology) partForSite(site memory.SiteID) *Partition {
	if int(site) < len(t.sitePart) {
		return t.parts[t.sitePart[site]]
	}
	return t.parts[GlobalPartition]
}

// Engine is the STM runtime: commit time base, partitions, attached
// threads, and the quiescence gate used for reconfiguration.
type Engine struct {
	arena      *memory.Arena
	blockShift uint
	blockSite  []memory.SiteID // arena's block→site table (shared slice)

	// tb is the commit time base (internal/clock). It is replaced only
	// under quiescence (mode migration), but monitor threads — the tuner,
	// stats snapshots — read it concurrently with transactions, hence the
	// atomic pointer (interfaces are two words and not directly atomic).
	tb atomic.Pointer[tbBox]

	// gate, when nonzero, blocks new transaction attempts; reconfigurers
	// raise it and wait for all threads to go inactive.
	gate atomic.Uint32

	// epochs is the published-reader table behind the reclamation horizon:
	// every transaction publishes a clock-ceiling stamp at begin and clears
	// it at finish, and retired heap objects recycle only once the minimum
	// over live stamps passes their retire stamp (see reclaim.go).
	epochs *epoch.Table

	topo atomic.Pointer[topology]

	mu       sync.Mutex // serializes attach/detach and plan installs
	threads  [MaxThreads]atomic.Pointer[Thread]
	nthreads int

	// poolState is the goroutine-native slot pool behind RunPooled
	// (pool.go): pooled Threads live in the same registry as pinned ones,
	// so every engine mechanism treats them uniformly.
	poolState
	// retired accumulates the counters of detached threads so statistics
	// survive thread churn; guarded by mu.
	retired []PartStats

	profiling atomic.Bool
	profMu    sync.Mutex
	profiler  PointerRecorder

	// stwCount counts quiescent reconfigurations (exposed for tests and
	// the tuner's trace).
	stwCount atomic.Uint64

	// txSeq issues begin ordinals for CMTimestamp arbitration.
	txSeq atomic.Uint64

	// tracer, when set, receives one event per transaction attempt
	// outcome (commit or abort). One atomic pointer load per attempt when
	// unset; see SetTracer.
	tracer atomic.Pointer[txTracerBox]

	// walState, when set, makes every update commit tee its write set
	// into the attached redo log (wal.go). One atomic pointer load per
	// commit when unset; see SetWAL.
	walState atomic.Pointer[walBox]

	// latency, when set, makes every attempt measure its duration and
	// every committed attempt record it into the touched partitions'
	// commit-latency histograms (PartThreadStats.Lat). Off by default: the
	// cost when on is two clock reads per attempt plus one histogram
	// increment per touched partition at commit.
	latency atomic.Bool

	// yieldMask, when nonzero, makes every transactional operation a
	// potential scheduling point: a thread yields the processor with
	// probability 1/(yieldMask+1) per operation. On machines with fewer
	// cores than worker threads (notably the single-CPU hosts these
	// experiments run on) this simulates the instruction-level
	// interleaving of a real multiprocessor, so conflict windows inside
	// transactions actually overlap. Benchmarks enable it; unit tests of
	// the protocol logic run with it off.
	yieldMask atomic.Uint64
}

// tbBox wraps the TimeBase interface so the engine can store it in an
// atomic.Pointer.
type tbBox struct{ tb clock.TimeBase }

// NewEngine creates an engine over arena with a single global partition
// configured by cfg and the default (global-counter) time base. The
// counter start value — and the "fresh orec always readable" rule behind
// it — is owned by internal/clock (clock.InitialStamp).
func NewEngine(arena *memory.Arena, cfg PartConfig) *Engine {
	e := &Engine{
		arena:      arena,
		blockShift: arena.BlockShift(),
		blockSite:  arena.BlockSiteTable(),
		epochs:     epoch.New(),
	}
	global := newPartition(GlobalPartition, "global", cfg)
	e.topo.Store(&topology{parts: []*Partition{global}})
	e.tb.Store(&tbBox{tb: clock.New(clock.ModeGlobal, 1)})
	return e
}

// Arena returns the transactional heap.
func (e *Engine) Arena() *memory.Arena { return e.arena }

// timeBase returns the current commit time base.
func (e *Engine) timeBase() clock.TimeBase { return e.tb.Load().tb }

// Clock returns the current time-base ceiling: the maximum commit-counter
// reading, i.e. an upper bound on every version stored in any orec. With
// the default global counter this is exactly the classic global timestamp.
func (e *Engine) Clock() uint64 { return e.timeBase().Ceiling() }

// TimeBaseMode reports which commit time base the engine runs.
func (e *Engine) TimeBaseMode() TimeBaseMode { return e.timeBase().Mode() }

// SetTimeBaseMode switches the commit time base under quiescence. The
// successor starts every counter at the predecessor's ceiling, so versions
// already stored in orecs stay at or below every future snapshot — commit
// time never moves backwards across a migration.
func (e *Engine) SetTimeBaseMode(m TimeBaseMode) {
	e.quiesce(func() {
		old := e.timeBase()
		if old.Mode() == m {
			return
		}
		nparts := len(e.topo.Load().parts)
		e.tb.Store(&tbBox{tb: clock.NewAt(m, nparts, old.Ceiling())})
	})
}

// AdvanceClock adds delta to every commit counter of the time base; used
// by stress tests to exercise large-timestamp behaviour. Monotonicity is
// the time base's responsibility.
func (e *Engine) AdvanceClock(delta uint64) { e.timeBase().Advance(delta) }

// SetYieldEveryOps enables interleaving simulation: each transactional
// operation yields the processor with probability 1/n (n must be a power
// of two; 0 disables). See the yieldMask field for rationale.
func (e *Engine) SetYieldEveryOps(n uint64) {
	if n == 0 {
		e.yieldMask.Store(0)
		return
	}
	// Round up to a power of two and store the mask.
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	e.yieldMask.Store(m - 1)
}

// AttachThread registers the calling goroutine and returns its Thread.
// At most MaxThreads threads may be attached simultaneously — pinned
// attachments share the slot space with the RunPooled slot pool. Pin a
// Thread for long-lived workers that run many transactions back to back
// (or tests that need a stable slot); everything else should go through
// RunPooled.
func (e *Engine) AttachThread() (*Thread, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.attachLocked()
}

// attachLocked is AttachThread under e.mu; pool growth reuses it.
func (e *Engine) attachLocked() (*Thread, error) {
	slot := -1
	for i := 0; i < MaxThreads; i++ {
		if e.threads[i].Load() == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("core: all %d thread slots in use", MaxThreads)
	}
	th := &Thread{
		eng:   e,
		slot:  slot,
		alloc: memory.NewAllocator(e.arena),
		rng:   uint64(slot)*0x9E3779B97F4A7C15 + 0x1234567,
	}
	st := make([]PartThreadStats, len(e.topo.Load().parts))
	th.stats.Store(&st)
	th.tx.init(e, th)
	e.threads[slot].Store(th)
	e.nthreads++
	return th, nil
}

// threadBySlot returns the thread occupying slot, or nil.
func (e *Engine) threadBySlot(slot int) *Thread {
	if slot < 0 || slot >= MaxThreads {
		return nil
	}
	return e.threads[slot].Load()
}

// recordPointer forwards a pointer-store edge to the installed profiler.
func (e *Engine) recordPointer(from, to memory.SiteID) {
	e.profMu.Lock()
	p := e.profiler
	e.profMu.Unlock()
	if p != nil {
		p.RecordPointer(from, to)
	}
}

// MustAttachThread is AttachThread that panics on slot exhaustion.
func (e *Engine) MustAttachThread() *Thread {
	th, err := e.AttachThread()
	if err != nil {
		panic(err)
	}
	return th
}

// DetachThread releases a thread's slot. The thread must not be inside a
// transaction. Pooled threads are returned with ReturnThread, never
// detached: their slot belongs to the pool for the engine's lifetime.
func (e *Engine) DetachThread(th *Thread) {
	if th.pooled {
		panic("core: DetachThread on a pooled Thread (use ReturnThread)")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.threads[th.slot].Load() == th {
		// Slot hygiene: the thread is outside any transaction, so its epoch
		// slot must be idle — clear defensively so a recycled slot can never
		// stall the horizon — and its pending retires move to the arena's
		// shared overflow limbo, where any thread's next reclaim finds them.
		e.epochs.Clear(th.slot)
		th.alloc.FlushLimbo()
		e.threads[th.slot].Store(nil)
		e.nthreads--
		st := *th.stats.Load()
		for len(e.retired) < len(st) {
			e.retired = append(e.retired, PartStats{})
		}
		for p := range st {
			st[p].accumulateInto(&e.retired[p])
		}
	}
}

// Partitions returns the current partition list (index = PartID).
func (e *Engine) Partitions() []*Partition {
	t := e.topo.Load()
	out := make([]*Partition, len(t.parts))
	copy(out, t.parts)
	return out
}

// Partition returns the partition with the given id, or nil.
func (e *Engine) Partition(id PartID) *Partition {
	t := e.topo.Load()
	if int(id) >= len(t.parts) {
		return nil
	}
	return t.parts[id]
}

// partOf maps a word address to its partition: blockSite lookup then
// site→partition lookup. Two L1-resident slice indexes; this is the whole
// runtime cost of partition tracking on the access path (measured by the
// table2 experiment).
func (e *Engine) partOf(t *topology, addr memory.Addr) *Partition {
	site := e.blockSite[uint64(addr)>>e.blockShift]
	return t.partForSite(site)
}

// PartitionOfAddr reports which partition addr currently belongs to.
func (e *Engine) PartitionOfAddr(addr memory.Addr) *Partition {
	return e.partOf(e.topo.Load(), addr)
}

// SetProfiler installs the pointer-store recorder and enables or disables
// profiling. Profiling runs record site connectivity for the partition
// analyzer; measured runs disable it.
func (e *Engine) SetProfiler(p PointerRecorder, enabled bool) {
	e.profMu.Lock()
	e.profiler = p
	e.profMu.Unlock()
	e.profiling.Store(enabled)
}

// Profiling reports whether pointer-store profiling is enabled.
func (e *Engine) Profiling() bool { return e.profiling.Load() }

// InstallPlan replaces the partitioning topology: sitePart[s] gives the
// partition index for site s, and names/cfgs describe the partitions
// (index = PartID; entry 0 is the global/default partition and must be
// present). The swap happens under quiescence.
func (e *Engine) InstallPlan(sitePart []PartID, names []string, cfgs []PartConfig) error {
	if len(names) == 0 || len(cfgs) != len(names) {
		return fmt.Errorf("core: malformed plan: %d names, %d configs", len(names), len(cfgs))
	}
	for _, p := range sitePart {
		if int(p) >= len(names) {
			return fmt.Errorf("core: plan references partition %d of %d", p, len(names))
		}
	}
	parts := make([]*Partition, len(names))
	for i := range names {
		parts[i] = newPartition(PartID(i), names[i], cfgs[i])
	}
	sp := make([]PartID, len(sitePart))
	copy(sp, sitePart)

	e.quiesce(func() {
		// mu serializes the stats swap against attach/detach and against
		// StatsSnapshot's read of the retired aggregate.
		e.mu.Lock()
		defer e.mu.Unlock()
		oldTopo := e.topo.Load()
		e.topo.Store(&topology{sitePart: sp, parts: parts})
		// Counters for new partitions start at the time base's current
		// ceiling, keeping every partition's timeline monotone across the
		// install.
		e.timeBase().Resize(len(parts))
		// A partition's identity is its site membership. When a new
		// partition owns exactly the sites an old one did, its history is
		// still attributable and is carried over onto the new PartID
		// (site-keyed carryover); everything else — the old global
		// partition, and partitions whose membership changed — folds into
		// the global partition's retired aggregate. Either way every
		// counter survives, so engine-wide totals (and throughput measured
		// across the install) stay monotonic. Snapshots serialize against
		// this block on mu (StatsSnapshot), so no reader can observe the
		// swap half-applied.
		oldTotals := make([]PartStats, len(oldTopo.parts))
		for i := range e.retired {
			if i < len(oldTotals) {
				oldTotals[i].add(&e.retired[i])
			}
		}
		for i := range e.threads {
			th := e.threads[i].Load()
			if th == nil {
				continue
			}
			old := *th.stats.Load()
			fresh := make([]PartThreadStats, len(parts))
			th.stats.Store(&fresh)
			for p := range old {
				if p < len(oldTotals) {
					old[p].accumulateInto(&oldTotals[p])
				}
			}
		}
		oldSig := siteSignatures(oldTopo.sitePart, len(oldTopo.parts))
		newSig := siteSignatures(sp, len(parts))
		carried := make([]bool, len(oldTotals))
		retired := make([]PartStats, len(parts))
		for newPid := 1; newPid < len(parts); newPid++ {
			sig := newSig[newPid]
			if sig == "" {
				continue // partition with no sites: no identity to match
			}
			for oldPid := 1; oldPid < len(oldTotals); oldPid++ {
				if !carried[oldPid] && oldSig[oldPid] == sig {
					retired[newPid].add(&oldTotals[oldPid])
					carried[oldPid] = true
					break
				}
			}
		}
		var carry PartStats
		for oldPid := range oldTotals {
			if oldPid == 0 || !carried[oldPid] {
				carry.add(&oldTotals[oldPid])
			}
		}
		retired[GlobalPartition].add(&carry)
		for i := range retired {
			retired[i].Part = PartID(i)
		}
		e.retired = retired
	})
	return nil
}

// siteSignatures returns, for each partition id, a canonical encoding of
// the site set assigned to it by sitePart ("" for the global partition
// and for partitions owning no sites). Two partitions across a plan
// install are the same logical partition exactly when their signatures
// match.
func siteSignatures(sitePart []PartID, nparts int) []string {
	var bufs = make([][]byte, nparts)
	for s, p := range sitePart {
		if p == GlobalPartition || int(p) >= nparts {
			continue
		}
		bufs[p] = fmt.Appendf(bufs[p], "%d,", s)
	}
	out := make([]string, nparts)
	for i, b := range bufs {
		out[i] = string(b)
	}
	return out
}

// Reconfigure atomically replaces one partition's configuration (and its
// orec table, rebuilt for the new geometry) under quiescence. This is the
// tuner's actuation point.
func (e *Engine) Reconfigure(id PartID, cfg PartConfig) error {
	p := e.Partition(id)
	if p == nil {
		return fmt.Errorf("core: no partition %d", id)
	}
	cfg = cfg.Normalize()
	e.quiesce(func() {
		old := p.state.Load()
		p.state.Store(newPartState(p, cfg, old.gen+1))
	})
	return nil
}

// quiesce raises the gate, waits for every attached thread to leave its
// transaction, runs fn, and reopens the gate. New orec tables installed
// by fn start with all versions at 0, which is safe because fresh
// transactions take snapshots at or above the current clock and version 0
// never exceeds any snapshot.
func (e *Engine) quiesce(fn func()) {
	for !e.gate.CompareAndSwap(0, 1) {
		runtime.Gosched() // another reconfiguration in flight
	}
	for i := range e.threads {
		th := e.threads[i].Load()
		if th == nil {
			continue
		}
		for th.active.Load() != 0 {
			runtime.Gosched()
		}
	}
	fn()
	e.stwCount.Add(1)
	e.gate.Store(0)
}

// STWCount returns the number of quiescent reconfigurations performed.
func (e *Engine) STWCount() uint64 { return e.stwCount.Load() }

// StatsSnapshot aggregates per-thread counters for partition id. Counters
// are atomics incremented by their owning threads; the aggregate is a
// momentary view, and every counter is monotonic, so deltas between
// snapshots are exact in the long run — which is what the tuner consumes.
// Across a plan install the engine folds all prior counters into the
// global partition's aggregate (see InstallPlan), so engine-wide totals
// keep growing monotonically even though per-partition attribution resets
// with the new partition identities.
func (e *Engine) StatsSnapshot(id PartID) PartStats {
	p := e.Partition(id)
	out := PartStats{Part: id}
	if p != nil {
		out.Name = p.name
	}
	// mu covers both the retired aggregate and the walk over the per-thread
	// slices, so a snapshot serializes against a concurrent plan install
	// (which swaps the slices and folds them into retired under the same
	// lock): it observes the engine entirely before or entirely after the
	// install, never a mix — which is what keeps totals monotonic for
	// delta-taking consumers (bench harness, tuner).
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(id) < len(e.retired) {
		out.add(&e.retired[id])
	}
	for i := range e.threads {
		th := e.threads[i].Load()
		if th == nil {
			continue
		}
		st := *th.stats.Load()
		if int(id) >= len(st) {
			continue
		}
		st[id].accumulateInto(&out)
	}
	return out
}

// SnapshotHistory returns a momentary reading of partition id's
// multi-version store: capacity, total appends, live records and the
// retained version span ("retention depth"). The zero Stats is returned
// for unknown partitions and for partitions with no store configured
// (HistCap == 0).
func (e *Engine) SnapshotHistory(id PartID) mvstore.Stats {
	p := e.Partition(id)
	if p == nil {
		return mvstore.Stats{}
	}
	st := p.loadState()
	if st.hist == nil {
		return mvstore.Stats{}
	}
	return st.hist.Stats()
}

// SetLatencyTracking enables or disables per-attempt latency measurement:
// when on, every committed attempt records its duration (attempt begin to
// commit, retries excluded — each attempt is its own sample) into the
// commit-latency histogram of every partition it touched. Safe to toggle
// live; samples recorded while on remain in the histograms.
func (e *Engine) SetLatencyTracking(on bool) { e.latency.Store(on) }

// LatencyTracking reports whether per-attempt latency measurement is on.
func (e *Engine) LatencyTracking() bool { return e.latency.Load() }

// LatencySnapshot returns the engine-wide commit-latency histogram:
// every partition's per-thread shards merged (live threads and the
// retired aggregate). Empty unless SetLatencyTracking(true) has been
// recording.
func (e *Engine) LatencySnapshot() stats.HistSnapshot {
	var out stats.HistSnapshot
	for _, ps := range e.AllStats() {
		out = out.Add(ps.Latency)
	}
	return out
}

// AllStats returns a snapshot for every partition.
func (e *Engine) AllStats() []PartStats {
	t := e.topo.Load()
	out := make([]PartStats, len(t.parts))
	for i := range t.parts {
		out[i] = e.StatsSnapshot(PartID(i))
	}
	return out
}

// Atomic runs fn transactionally on thread th, retrying with randomized
// exponential backoff until the transaction commits. It is Run with no
// options, kept as the concise entrypoint for the common case.
func (e *Engine) Atomic(th *Thread, fn func(*Tx)) {
	e.run(th, runCfg{}, func(tx *Tx) error { fn(tx); return nil })
}

// AtomicErr runs fn transactionally; if fn returns a non-nil error the
// transaction aborts (all effects discarded) and the error is returned.
// Equivalent to Run(th, fn) with no options.
func (e *Engine) AtomicErr(th *Thread, fn func(*Tx) error) error {
	return e.run(th, runCfg{}, fn)
}

// readOnlyAtomic runs fn with the read-only fast path; it upgrades to an
// update transaction transparently if fn writes. Equivalent to Run with
// the ReadOnly option.
func (e *Engine) readOnlyAtomic(th *Thread, fn func(*Tx)) {
	e.run(th, runCfg{readOnly: true}, func(tx *Tx) error { fn(tx); return nil })
}

// SnapshotAtomic runs fn as a snapshot read-only transaction: the
// snapshot is pinned at the first access and reads of locations that
// writers have since overwritten are reconstructed from the touched
// partitions' multi-version stores (PartConfig.HistCap), so the
// transaction neither extends nor validates — under sufficient retention
// it commits without ever aborting, regardless of concurrent writers. A
// partition without a store (or an evicted record) degrades to the
// ordinary validate/extend read path; a write inside fn upgrades to a
// normal update transaction, as in ReadOnlyAtomic. Equivalent to Run with
// the Snapshot option.
func (e *Engine) SnapshotAtomic(th *Thread, fn func(*Tx)) {
	e.run(th, runCfg{readOnly: true, snap: true}, func(tx *Tx) error { fn(tx); return nil })
}

func (e *Engine) run(th *Thread, cfg runCfg, fn func(*Tx) error) error {
	tx := &th.tx
	th.beginSeq.Store(e.txSeq.Add(1))
	readOnly, snap := cfg.readOnly, cfg.snap
	attempt := 0
	for {
		attempt++
		th.enterGate()
		cause, userErr := e.attempt(tx, th, readOnly, snap, fn)
		th.exitGate()
		if box := e.tracer.Load(); box != nil {
			box.t.TraceAttempt(AttemptEvent{
				Slot:           th.slot,
				Attempt:        attempt,
				Cause:          cause,
				Ops:            tx.opCount,
				SnapHits:       tx.snapHits,
				SnapMisses:     tx.snapMisses,
				Yields:         tx.yields,
				Parks:          tx.parks,
				RetiredWords:   tx.retiredWords,
				ReclaimedWords: tx.reclaimedWords,
				DurationNs:     tx.durationNs,
				SpinNs:         tx.spinNs,
				YieldNs:        tx.yieldNs,
				ParkNs:         tx.parkNs,
			})
		}
		switch {
		case cause == AbortNone && userErr == nil:
			if box := tx.walDst; box != nil && box.sync {
				// Sync durability: park until this commit's redo record is
				// fsynced. The transaction has fully finished (locks
				// released, gate exited), so waiting here stalls only this
				// caller, never the protocol. When the record cannot become
				// durable — the log was already down at publish time
				// (walSeq 0), or died or closed before the fsync — the
				// commit has still applied in memory, and that divergence
				// must surface as ErrNotDurable, never as a silent nil.
				if tx.walSeq == 0 || !box.log.WaitDurable(tx.walSeq) {
					return &NotDurableError{Seq: tx.walSeq}
				}
			}
			return nil
		case userErr != nil:
			return userErr
		}
		if cfg.onAbort != nil {
			cfg.onAbort(cause, attempt)
		}
		if cfg.maxAttempts > 0 && attempt >= cfg.maxAttempts {
			return &MaxAttemptsError{Attempts: attempt, Cause: cause}
		}
		if cause == AbortUpgrade {
			readOnly = false
			snap = false
			continue
		}
		e.backoff(th, attempt)
	}
}

// attempt executes one try of fn. It returns (AbortNone, nil) on commit,
// (cause, nil) on a conflict abort, and (AbortExplicit, err) when user
// code aborted with an error.
func (e *Engine) attempt(tx *Tx, th *Thread, readOnly, snap bool, fn func(*Tx) error) (cause AbortCause, userErr error) {
	defer func() {
		if r := recover(); r != nil {
			sig, ok := r.(abortSignal)
			if !ok {
				// A user panic: roll the transaction back, then let the
				// panic continue so the caller sees it.
				tx.rollback(AbortExplicit)
				panic(r)
			}
			tx.rollback(sig.cause)
			cause = sig.cause
		}
	}()
	tx.begin(readOnly, snap)
	if err := fn(tx); err != nil {
		tx.rollback(AbortExplicit)
		return AbortExplicit, err
	}
	tx.commit()
	return AbortNone, nil
}

// AttemptEvent describes one transaction attempt outcome for tracing.
type AttemptEvent struct {
	// Slot is the executing thread's slot.
	Slot int
	// Attempt is 1 for the first try of a transaction, 2 for its first
	// retry, and so on.
	Attempt int
	// Cause is AbortNone for a commit, the abort cause otherwise.
	Cause AbortCause
	// Ops is the number of transactional operations the attempt executed.
	Ops uint64
	// SnapHits and SnapMisses count snapshot-mode reads served from (or
	// missed by) the multi-version store during the attempt; both are 0
	// outside snapshot mode.
	SnapHits   uint64
	SnapMisses uint64
	// Yields and Parks count wait-loop iterations that escalated past the
	// spin budget into a scheduler yield or a timed sleep (see the waiting
	// discipline in wait.go) — how much this attempt cooperated with the
	// Go scheduler instead of spinning.
	Yields uint64
	Parks  uint64
	// RetiredWords counts heap words this attempt's commit retired into
	// limbo (0 for aborts: their allocations recycle immediately without
	// entering limbo); ReclaimedWords counts words the attempt migrated
	// from limbo back to free lists when its commit-path reclaim ran.
	RetiredWords   uint64
	ReclaimedWords uint64
	// DurationNs is the attempt's wall-clock duration, begin to outcome.
	// Measured whenever a tracer is attached (and also when the engine's
	// latency tracking is on); each attempt is its own sample, so a
	// transaction that retries contributes one event per try.
	DurationNs uint64
	// SpinNs/YieldNs/ParkNs break the attempt's wait time down by stall
	// phase (on-CPU spin, scheduler yield, timed park) — the time-domain
	// companions of Yields/Parks; see the attribution note in wait.go.
	SpinNs  uint64
	YieldNs uint64
	ParkNs  uint64
}

// TxTracer receives one event per transaction attempt. Implementations
// must be safe for concurrent use and should be cheap: the engine calls
// TraceAttempt inline on every attempt of every thread while tracing is
// enabled.
type TxTracer interface {
	TraceAttempt(ev AttemptEvent)
}

// txTracerBox wraps the interface so the engine can store it in an
// atomic.Pointer (interfaces are two words and not directly atomic).
type txTracerBox struct{ t TxTracer }

// SetTracer installs (or, with nil, removes) the attempt tracer.
func (e *Engine) SetTracer(t TxTracer) {
	if t == nil {
		e.tracer.Store(nil)
		return
	}
	e.tracer.Store(&txTracerBox{t: t})
}

// backoff performs randomized exponential backoff between attempts; the
// schedule matches TinySTM's (cheap spin first, escalating to yields and
// short sleeps so that pathological livelocks settle).
func (e *Engine) backoff(th *Thread, attempt int) {
	if attempt < 2 {
		return
	}
	shift := attempt - 2
	if shift > 14 {
		shift = 14
	}
	max := uint64(1) << shift // in spin quanta
	spins := th.nextRand() % max
	if spins < 16 {
		spinWait(spins * 8)
		return
	}
	if spins < 512 {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Duration(spins>>3) * time.Microsecond)
}
