package core

import (
	"math/bits"
	"runtime"
	"time"

	"repro/internal/clock"
	"repro/internal/memory"
	"repro/internal/mvstore"
	"repro/internal/wal"
)

// writeMode tags how a write-set entry reaches memory.
type writeMode uint8

const (
	modeWB  writeMode = iota // buffered, applied at commit (ETL write-back)
	modeWT                   // written in place under lock, old value kept for undo
	modeCTL                  // buffered, orec acquired at commit time
)

type readEntry struct {
	o   *orec
	ver uint64
}

type writeEntry struct {
	addr memory.Addr
	val  uint64 // new value (WB/CTL)
	old  uint64 // pre-image (WT undo)
	o    *orec
	ps   *partState
	mode writeMode
}

type lockRec struct {
	o    *orec
	prev uint64
	// pid is the owning partition: the partition-local time base mints
	// this lock's release version from that partition's commit counter.
	pid PartID
}

type allocRec struct {
	addr memory.Addr
	n    int
}

type touchRec struct {
	p     *Partition
	wrote bool
	// snap is the transaction's snapshot of this partition's commit
	// counter. Under the global time base every entry mirrors tx.snapshot
	// (one shared timeline); under the partition-local time base each
	// partition has its own, sampled at first touch and re-anchored
	// together by extensions and footprint alignment.
	snap uint64
}

// Tx is a transaction descriptor. One lives in each Thread and is reused
// across attempts; all methods must be called from the owning goroutine,
// inside Engine.Atomic. Transactional operations abort by panicking with
// an internal signal that Engine.Atomic recovers; user code simply calls
// Load/Store and lets the engine retry.
type Tx struct {
	eng  *Engine
	th   *Thread
	topo *topology

	// tb and pl cache the engine's time base for the attempt (the time
	// base only changes under quiescence, never while an attempt runs).
	tb clock.TimeBase
	pl bool // tb is partition-local

	// snapshot is the global snapshot under the global time base. Under
	// the partition-local time base per-partition snapshots live in
	// touched[].snap and this field tracks the first-touched partition's
	// (see Snapshot).
	snapshot uint64
	// beginEpoch is the cross-partition epoch sampled at begin and
	// refreshed by every successful extension (partition-local mode only).
	beginEpoch uint64
	readOnly   bool
	hasVisible bool
	// snapMode marks a snapshot read-only attempt (SnapshotAtomic): the
	// transaction pins its snapshot and, on encountering an orec newer
	// than it, reconstructs the value at the snapshot from the partition's
	// multi-version store (partState.hist) instead of extending. snapHits
	// counts reconstructed reads this attempt; once nonzero the snapshot
	// can no longer move (extend refuses), because reconstructed values
	// are only correct at the pinned instant. snapMisses counts stale
	// reads the store could not serve (record evicted), which fall back to
	// the validate/extend path.
	snapMode   bool
	snapHits   uint64
	snapMisses uint64
	opCount    uint64
	// yields/parks count wait-loop escalations past the spin budget this
	// attempt (see wait.go); they ride into AttemptEvent next to opCount.
	yields uint64
	parks  uint64
	// spinNs/yieldNs/parkNs break this attempt's wait time down by phase,
	// and stallMark is the clock reading of the last stall iteration (the
	// attribution scheme is documented in wait.go).
	spinNs    uint64
	yieldNs   uint64
	parkNs    uint64
	stallMark time.Time
	// timed marks an attempt whose duration is being measured (latency
	// tracking enabled or a tracer attached): attemptStart is sampled at
	// begin and durationNs computed at finish, so committed attempts can
	// record into the touched partitions' latency histograms and the trace
	// event can carry the attempt duration.
	timed        bool
	attemptStart time.Time
	durationNs   uint64
	// retiredWords/reclaimedWords count heap words this attempt retired
	// into limbo at commit and migrated back to free lists (finish's
	// commit-path reclaim); they ride into AttemptEvent next to the wait
	// counters.
	retiredWords   uint64
	reclaimedWords uint64

	rs      []readEntry
	ws      []writeEntry
	locks   []lockRec
	vreads  []*orec
	allocs  []allocRec
	frees   []allocRec
	touched []touchRec

	// Footprint-bounded lookup structure: every per-access search (read-set
	// dedup, write-set probe, own-lock lookup) runs an inline linear scan
	// while the set is small and switches to a generation-stamped
	// open-addressed index once it outgrows the scan. rsIndexed/wsIndexed/
	// lkIndexed count how many entries of the corresponding slice have been
	// mirrored into the index so far (the index is synced lazily on the
	// first lookup past the small-set threshold).
	rsIdx     txIndex
	rsIndexed int
	wsIdx     txIndex
	wsIndexed int
	lkIdx     txIndex
	lkIndexed int

	// First-touch filters (txfilter.go): a clear filter bit proves an orec
	// (read set) or address (write set) was never recorded, so the first
	// touch — the common case of every large scan — skips the membership
	// probe entirely and appends directly. A set bit is only a hint; the
	// exact find still runs before any dedup decision.
	rsFilt txFilter
	wsFilt txFilter

	// touchIdx/touchGen give O(1) partition→touched lookup: touchIdx[pid]
	// is the partition's position in tx.touched when touchGen[pid] matches
	// touchGenVal (bumped every attempt; sized to the topology at begin).
	touchIdx    []int32
	touchGen    []uint64
	touchGenVal uint64

	// Commit/extension scratch, reused across attempts: the deduplicated
	// written partitions, their assigned write versions (also mirrored into
	// wvByPid for O(1) lookup at lock release), extension's resampled
	// snapshots, and appendHistory's per-partition record buckets (indexed
	// by the partition's position in tx.touched).
	commitParts []uint32
	commitWV    []uint64
	wvByPid     []uint64
	extSnaps    []uint64
	histRecs    [][]mvstore.Record
	histBufs    []*mvstore.Buffer

	// Redo-log scratch (wal.go): the record built under this commit's
	// write locks, the log sequence it claimed (0 when nothing was
	// published — read-only attempt, no log attached, or log shut down),
	// and the attached log state the write set teed into (nil when this
	// attempt had nothing to publish). walDst is what Run's post-commit
	// durability wait keys off, so a Sync commit whose record never
	// becomes durable surfaces as ErrNotDurable instead of nil.
	walOps []wal.Op
	walSeq uint64
	walDst *walBox
}

func (tx *Tx) init(e *Engine, th *Thread) {
	tx.eng = e
	tx.th = th
}

// Snapshot returns the transaction's current snapshot timestamp: the
// global snapshot under the global time base, or the first-touched
// partition's snapshot under the partition-local one (0 before any
// access). In both modes it never moves backwards within an attempt.
func (tx *Tx) Snapshot() uint64 { return tx.snapshot }

// ReadOnly reports whether this attempt runs in read-only mode.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// SnapshotMode reports whether this attempt runs as a snapshot read-only
// transaction (see Engine.SnapshotAtomic).
func (tx *Tx) SnapshotMode() bool { return tx.snapMode }

// SnapshotHits reports how many reads of this attempt were reconstructed
// from a partition's multi-version store (exposed for tests and
// experiments).
func (tx *Tx) SnapshotHits() uint64 { return tx.snapHits }

// Thread returns the owning thread.
func (tx *Tx) Thread() *Thread { return tx.th }

func (tx *Tx) begin(readOnly, snap bool) {
	tx.topo = tx.eng.topo.Load()
	tx.readOnly = readOnly
	tx.hasVisible = false
	tx.snapMode = snap && readOnly
	tx.snapHits = 0
	tx.snapMisses = 0
	tx.opCount = 0
	tx.yields = 0
	tx.parks = 0
	tx.spinNs, tx.yieldNs, tx.parkNs = 0, 0, 0
	tx.retiredWords = 0
	tx.reclaimedWords = 0
	tx.durationNs = 0
	tx.walSeq = 0
	tx.walDst = nil
	tx.timed = tx.eng.latency.Load() || tx.eng.tracer.Load() != nil
	if tx.timed {
		tx.attemptStart = time.Now()
	}
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.locks = tx.locks[:0]
	tx.vreads = tx.vreads[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.touched = tx.touched[:0]
	tx.rsIdx.reset()
	tx.wsIdx.reset()
	tx.lkIdx.reset()
	tx.rsIndexed, tx.wsIndexed, tx.lkIndexed = 0, 0, 0
	tx.rsFilt.reset()
	tx.wsFilt.reset()
	if n := len(tx.topo.parts); len(tx.touchIdx) < n {
		tx.touchIdx = make([]int32, n)
		tx.touchGen = make([]uint64, n)
	}
	tx.touchGenVal++
	tx.th.killed.Store(0) // stale kills from a previous attempt do not apply
	tx.th.progress.Store(0)
	tx.tb = tx.eng.timeBase()
	tx.pl = tx.tb.Mode() == clock.ModePartitionLocal
	// Publish the reclamation stamp BEFORE sampling any snapshot: the
	// horizon sweep must be able to see this transaction before it bases a
	// single read on the clock, else a reclaimer that misses the slot could
	// recycle an address an already-sampled snapshot can still reach (the
	// ordering contract in internal/epoch). The stamp is a ceiling sample —
	// comparable across both time-base modes, and a lower bound on every
	// snapshot this attempt will ever hold, pinned or extended. All modes
	// publish: snapshot readers reconstruct freed addresses from history,
	// and update/read-only attempts also gate on it so extension never
	// revalidates against a recycled word.
	tx.eng.epochs.Publish(tx.th.slot, tx.tb.Ceiling())
	if tx.pl {
		// Per-partition snapshots are sampled lazily at first touch; the
		// epoch sample anchors the cross-partition staleness check.
		tx.beginEpoch = tx.tb.Begin()
		tx.snapshot = 0
	} else {
		tx.snapshot = tx.tb.Begin()
	}
}

func (tx *Tx) abort(cause AbortCause) {
	panic(abortSignal{cause: cause})
}

// Abort aborts the transaction attempt and retries it (an explicit user
// restart).
func (tx *Tx) Abort() { tx.abort(AbortExplicit) }

func (tx *Tx) checkKilled() {
	if tx.th.killed.Load() != 0 {
		tx.th.killed.Store(0)
		tx.abort(AbortKilled)
	}
}

// touch registers partition p in the transaction's footprint and returns
// its index in tx.touched. Repeat touches resolve in O(1) through the
// generation-stamped touchIdx table (sized to the topology at begin).
// First touches sample the partition's snapshot; under the partition-local
// time base, widening the footprint beyond one partition first re-anchors
// the existing snapshots (alignFootprint), so all per-partition snapshots
// always correspond to one common instant.
func (tx *Tx) touch(p *Partition, wrote bool) int {
	id := int(p.id)
	if tx.touchGen[id] == tx.touchGenVal {
		i := int(tx.touchIdx[id])
		if wrote {
			tx.touched[i].wrote = true
		}
		return i
	}
	snap := tx.snapshot
	if tx.pl {
		if len(tx.touched) > 0 {
			snap = tx.alignFootprint(p)
		} else {
			snap = tx.tb.Now(uint32(p.id))
			tx.snapshot = snap
		}
	}
	tx.touched = append(tx.touched, touchRec{p: p, wrote: wrote, snap: snap})
	tx.touchIdx[id] = int32(len(tx.touched) - 1)
	tx.touchGen[id] = tx.touchGenVal
	return len(tx.touched) - 1
}

// Small-set thresholds: below these, set membership runs as an inline
// linear scan (the entries fit in a couple of cache lines and a scan beats
// a hash probe); above, lookups go through the generation-stamped index.
const (
	rsSmallMax = 16
	wsSmallMax = 8
	lkSmallMax = 8
)

// rsFind returns the read-set position holding orec o, or -1. Past the
// small-set threshold it lazily mirrors newly appended entries into rsIdx
// and probes that instead, so the cost of a lookup — and with it the cost
// of every load — is independent of how many loads the transaction has
// executed.
func (tx *Tx) rsFind(o *orec) int {
	if tx.rsIndexed == 0 && len(tx.rs) <= rsSmallMax {
		for i := range tx.rs {
			if tx.rs[i].o == o {
				return i
			}
		}
		return -1
	}
	for ; tx.rsIndexed < len(tx.rs); tx.rsIndexed++ {
		tx.rsIdx.put(orecKey(tx.rs[tx.rsIndexed].o), int32(tx.rsIndexed))
	}
	return tx.rsIdx.get(orecKey(o))
}

// wsFind returns the write-set position for addr, or -1 (same hybrid
// scheme as rsFind, keyed by address).
func (tx *Tx) wsFind(addr memory.Addr) int {
	if tx.wsIndexed == 0 && len(tx.ws) <= wsSmallMax {
		for i := range tx.ws {
			if tx.ws[i].addr == addr {
				return i
			}
		}
		return -1
	}
	for ; tx.wsIndexed < len(tx.ws); tx.wsIndexed++ {
		tx.wsIdx.put(uint64(tx.ws[tx.wsIndexed].addr), int32(tx.wsIndexed))
	}
	return tx.wsIdx.get(uint64(addr))
}

// rsFilterAdd records orec o in the read-set filter. Call after appending
// the entry: growth rehashes from tx.rs, which must already include o.
func (tx *Tx) rsFilterAdd(o *orec) {
	tx.rsFilt.add(orecKey(o), rsSmallMax, func(yield func(uint64)) {
		for i := range tx.rs {
			yield(orecKey(tx.rs[i].o))
		}
	})
}

// wsFilterAdd records addr in the write-set filter. Call after appending
// the entry: growth rehashes from tx.ws, which must already include addr.
// Every write-set append MUST be mirrored here — read-after-write trusts
// a clear filter bit to mean "no buffered value for this address".
func (tx *Tx) wsFilterAdd(addr memory.Addr) {
	tx.wsFilt.add(uint64(addr), wsSmallMax, func(yield func(uint64)) {
		for i := range tx.ws {
			yield(uint64(tx.ws[i].addr))
		}
	})
}

// lkFind returns the lock-set position holding orec o, or -1 (same hybrid
// scheme as rsFind; used by commit-time validation's own-lock lookups).
func (tx *Tx) lkFind(o *orec) int {
	if tx.lkIndexed == 0 && len(tx.locks) <= lkSmallMax {
		for i := range tx.locks {
			if tx.locks[i].o == o {
				return i
			}
		}
		return -1
	}
	for ; tx.lkIndexed < len(tx.locks); tx.lkIndexed++ {
		tx.lkIdx.put(orecKey(tx.locks[tx.lkIndexed].o), int32(tx.lkIndexed))
	}
	return tx.lkIdx.get(orecKey(o))
}

// ReadSetLen reports the current number of read-set entries. Deduplication
// bounds it by the number of unique orecs the transaction has read, not by
// the number of loads executed (exposed for tests and experiments).
func (tx *Tx) ReadSetLen() int { return len(tx.rs) }

// WriteSetLen reports the current number of write-set entries (one per
// unique address written).
func (tx *Tx) WriteSetLen() int { return len(tx.ws) }

// alignFootprint re-anchors a partition-local transaction's snapshots to a
// single common instant when a new partition p joins the footprint, and
// returns p's snapshot. If nothing has committed in any touched partition
// since its snapshot was taken — checked via the O(1) cross-partition
// epoch, then the touched partitions' counters — the read set is
// trivially still current and p's fresh sample shares the same instant.
// Otherwise the snapshots are extended together (full read-set
// validation), which either establishes a fresh common instant or aborts,
// and the sample-and-check is retried. This is what keeps transactions
// spanning partitions serializable when commit time is per-partition:
// without it, two partitions' snapshots could straddle a writer that
// committed between them.
//
// Ordering matters: p's counter is sampled BEFORE the staleness checks.
// A cross-partition writer bumps the epoch before ticking any counter
// (clock.PartitionLocal.Commit), so any writer whose tick the sample
// already covers — i.e. whose new versions the fresh snapshot would
// accept — is guaranteed to be visible to the epoch load that follows,
// and a writer confined to a touched partition is caught by that
// partition's counter comparison. Checking first and sampling after would
// let a writer that commits between the two slip half-visible through.
func (tx *Tx) alignFootprint(p *Partition) uint64 {
	// The retry budget breaks a livelock this loop is otherwise open to:
	// any commit in a touched partition — or any cross-partition commit
	// anywhere (epoch) — between an extension and the re-check dirties the
	// check again, and unlike the per-orec conflict loops there is no
	// single contended word whose release would end the wait. After a few
	// rounds, abort and let the engine's randomized backoff desynchronize
	// the attempt (and release any held locks in the meantime).
	const retryBudget = 8
	for try := 0; ; try++ {
		snap := tx.tb.Now(uint32(p.id))
		dirty := tx.tb.Epoch() != tx.beginEpoch
		if !dirty {
			for i := range tx.touched {
				if tx.tb.Now(uint32(tx.touched[i].p.id)) != tx.touched[i].snap {
					dirty = true
					break
				}
			}
		}
		if !dirty {
			return snap
		}
		if try >= retryBudget || !tx.extend() {
			tx.abort(AbortValidation)
		}
	}
}

func (tx *Tx) tick() {
	tx.opCount++
	tx.th.progress.Store(tx.opCount)
	if m := tx.eng.yieldMask.Load(); m != 0 && tx.th.nextRand()&m == 0 {
		runtime.Gosched()
	}
}

// Load transactionally reads the word at addr.
func (tx *Tx) Load(addr memory.Addr) uint64 {
	tx.checkKilled()
	tx.tick()
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Loads.Add(1)
	ti := tx.touch(p, false)

	// Read-after-write: buffered values win; write-through values are
	// already in memory and flow through the normal paths below.
	if v, ok := tx.wsBuffered(addr); ok {
		return v
	}

	o := ps.table.of(addr)
	// Snapshot-mode reads are invisible by nature regardless of the
	// partition's read mode: they never validate at commit (they serialize
	// at the pinned snapshot, not at commit time), so registering in
	// reader bitmaps would only make writers wait or kill us for no
	// protocol benefit.
	if ps.cfg.Read == VisibleReads && !tx.snapMode {
		tx.hasVisible = true
		return tx.loadVisible(ps, o, addr, st, ti)
	}
	return tx.loadInvisible(ps, o, addr, st, ti)
}

// wsBuffered returns the transaction's own buffered value for addr, when
// a write-back or commit-time write covers it (read-after-write). The
// filter's no-false-negative guarantee carries the correctness here: a
// clear bit proves addr was never written, so memory is current.
func (tx *Tx) wsBuffered(addr memory.Addr) (uint64, bool) {
	if len(tx.ws) > 0 && tx.wsFilt.mayContain(uint64(addr)) {
		if i := tx.wsFind(addr); i >= 0 && tx.ws[i].mode != modeWT {
			return tx.ws[i].val, true
		}
	}
	return 0, false
}

// loadInvisible implements the timestamp-validated invisible read: sample
// lock word, read value, resample; extend the snapshot when the version is
// newer than it. ti indexes the partition's entry in tx.touched, whose
// snap is the snapshot the version is checked against (the global
// snapshot mirrored there under the global time base).
func (tx *Tx) loadInvisible(ps *partState, o *orec, addr memory.Addr, st *PartThreadStats, ti int) uint64 {
	spins := 0
	// probedHead caches the store's append counter across spin iterations:
	// a lookup that missed can only start hitting after a new record lands,
	// so the O(capacity) scan is repeated only when the counter moved.
	probedHead := ^uint64(0)
	for {
		l1 := o.lock.Load()
		if isLocked(l1) {
			if lockOwner(l1) == tx.th.slot {
				// Self-locked: for WB the buffered value was returned by the
				// caller's write-set probe; reaching here means a different
				// word sharing the orec, whose memory is stable under our
				// own lock. For WT the current value is in memory.
				return tx.eng.arena.LoadAtomic(addr)
			}
			// Snapshot mode: the writer holding this orec cannot change
			// history at our pinned snapshot. If a retained record covers
			// the snapshot, read past the lock without waiting; the common
			// sequence is lock → (writer appends, releases) → our probe
			// hits on the freshly appended record. Otherwise just wait:
			// a snapshot reader holds no locks and no reader bits, so no
			// transaction can ever be waiting on it — waiting out the
			// owner is deadlock-free and, unlike the contention manager's
			// bounded spin, never turns a lock conflict into an abort.
			if tx.snapMode {
				if ps.hist != nil {
					if h := ps.hist.Head(); h != probedHead {
						probedHead = h
						if hv, ok := tx.snapRead(ps, addr, tx.touched[ti].snap, st); ok {
							return hv
						}
					}
				}
				tx.checkKilled()
				spins++
				tx.stall(spins, ps.cfg.SpinBudget, st)
				continue
			}
			tx.cmConflict(ps, o, l1, AbortLockedOnRead, &spins, st)
			continue
		}
		v := tx.eng.arena.LoadAtomic(addr)
		if o.lock.Load() != l1 {
			spins++
			continue
		}
		if ver := versionOf(l1); ver > tx.touched[ti].snap {
			// A commit moved the orec past the snapshot. In snapshot mode,
			// reconstruct the value at the snapshot from the partition's
			// multi-version store; the covering record exists unless the
			// ring has evicted it (then fall back to the validate/extend
			// path — correctness never depends on retention). A miss is
			// counted whether the record was evicted or no store exists at
			// all: SnapMisses is the partition's unserved snapshot demand,
			// which is what the tuner's AdaptSnapshot heuristic keys
			// attachment and retention growth on.
			if tx.snapMode {
				if ps.hist != nil {
					if hv, ok := tx.snapRead(ps, addr, tx.touched[ti].snap, st); ok {
						return hv
					}
				}
				st.SnapMisses.Add(1)
				tx.snapMisses++
			}
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			continue // re-read under the extended snapshot
		}
		// Dedup per orec: a repeat read of an orec whose recorded version
		// still matches adds nothing to validate — the read set stays
		// bounded by the unique orecs touched, not the loads executed. (A
		// version mismatch on a repeat read cannot pass the snapshot check
		// above — any commit to the orec postdates the snapshot — but if it
		// ever did, appending a second entry keeps validation exact.) The
		// first touch of an orec — the common case of a large scan — skips
		// even the probe: a clear filter bit proves the orec is new. A set
		// bit may be a false positive, so dedup still confirms via rsFind.
		if tx.rsFilt.mayContain(orecKey(o)) {
			if i := tx.rsFind(o); i >= 0 && tx.rs[i].ver == versionOf(l1) {
				return v
			}
		}
		tx.rs = append(tx.rs, readEntry{o: o, ver: versionOf(l1)})
		tx.rsFilterAdd(o)
		return v
	}
}

// loadVisible implements the visible read: register in the orec's reader
// bitmap, re-check the lock, and pin the location until commit/abort. The
// version check against the snapshot is kept so that a transaction mixing
// visible and invisible partitions still observes one consistent snapshot
// (opacity); visible entries themselves never need commit validation.
func (tx *Tx) loadVisible(ps *partState, o *orec, addr memory.Addr, st *PartThreadStats, ti int) uint64 {
	bit := tx.th.readerBit()
	spins := 0
	for {
		l := o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return tx.eng.arena.LoadAtomic(addr)
			}
			tx.cmConflict(ps, o, l, AbortLockedOnRead, &spins, st)
			continue
		}
		old := o.readers.Or(bit)
		mine := old&bit != 0
		if !mine {
			tx.vreads = append(tx.vreads, o)
		}
		l2 := o.lock.Load()
		if isLocked(l2) {
			// A writer slipped in between the check and the registration;
			// withdraw and arbitrate.
			if !mine {
				o.readers.And(^bit)
				tx.vreads = tx.vreads[:len(tx.vreads)-1]
			}
			tx.cmConflict(ps, o, l2, AbortLockedOnRead, &spins, st)
			continue
		}
		if ver := versionOf(l2); ver > tx.touched[ti].snap {
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			// Snapshot now covers the version; the bit pins the location.
		}
		return tx.eng.arena.LoadAtomic(addr)
	}
}

// Store transactionally writes v to addr.
func (tx *Tx) Store(addr memory.Addr, v uint64) {
	tx.checkKilled()
	tx.tick()
	if tx.readOnly {
		tx.abort(AbortUpgrade)
	}
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Stores.Add(1)
	ti := tx.touch(p, true)
	if ps.cfg.Read == VisibleReads {
		tx.hasVisible = true
	}
	o := ps.table.of(addr)

	switch {
	case ps.cfg.Acquire == CommitTime:
		tx.wsPut(addr, v, o, ps, modeCTL)
	case ps.cfg.Write == WriteBack:
		tx.acquire(ps, o, st, ti)
		tx.wsPut(addr, v, o, ps, modeWB)
	default: // encounter-time write-through
		tx.acquire(ps, o, st, ti)
		if !tx.wsFilt.mayContain(uint64(addr)) || tx.wsFind(addr) < 0 {
			// First write to addr: capture the undo pre-image.
			tx.ws = append(tx.ws, writeEntry{
				addr: addr,
				old:  tx.eng.arena.LoadAtomic(addr),
				o:    o,
				ps:   ps,
				mode: modeWT,
			})
			tx.wsFilterAdd(addr)
		}
		tx.eng.arena.StoreAtomic(addr, v)
	}
}

func (tx *Tx) wsPut(addr memory.Addr, v uint64, o *orec, ps *partState, mode writeMode) {
	if tx.wsFilt.mayContain(uint64(addr)) {
		if i := tx.wsFind(addr); i >= 0 {
			tx.ws[i].val = v
			return
		}
	}
	tx.ws = append(tx.ws, writeEntry{addr: addr, val: v, o: o, ps: ps, mode: mode})
	tx.wsFilterAdd(addr)
}

// blockChunk bounds a multi-word access at the enclosing heap block: all
// words of one block share a site, hence a partition, so per-chunk state
// (partition, orec table, stats block, touch entry) is resolved once.
func (tx *Tx) blockChunk(addr memory.Addr, n int) int {
	blockWords := uint64(1) << tx.eng.blockShift
	rem := blockWords - (uint64(addr) & (blockWords - 1))
	if uint64(n) > rem {
		return int(rem)
	}
	return n
}

// LoadWords transactionally reads the len(dst) consecutive words starting
// at addr into dst. It is equivalent to len(dst) calls of Load but pays
// the per-access overhead (partition lookup, footprint touch, statistics)
// once per object instead of once per word, reads words sharing an
// ownership record under a single lock-sample/re-sample pair with one
// read-set entry, and — in snapshot mode — reconstructs a whole object
// from the partition's multi-version store with one index probe when the
// object was written by a single commit (mvstore.ReadRangeAt). This is
// the primitive behind the typed object layer (stm.Ref).
func (tx *Tx) LoadWords(addr memory.Addr, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	tx.checkKilled()
	tx.tick()
	for len(dst) > 0 {
		c := tx.blockChunk(addr, len(dst))
		tx.loadWordsChunk(addr, dst[:c])
		addr += memory.Addr(c)
		dst = dst[c:]
	}
}

// loadWordsChunk reads a word range confined to one heap block (one
// partition): per-orec groups of consecutive words are read together, and
// buffered writes (read-after-write) are honored per word.
func (tx *Tx) loadWordsChunk(addr memory.Addr, dst []uint64) {
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Loads.Add(uint64(len(dst)))
	ti := tx.touch(p, false)
	if ps.cfg.Read == VisibleReads && !tx.snapMode {
		tx.hasVisible = true
		for i := range dst {
			a := addr + memory.Addr(i)
			if v, ok := tx.wsBuffered(a); ok {
				dst[i] = v
				continue
			}
			dst[i] = tx.loadVisible(ps, ps.table.of(a), a, st, ti)
		}
		return
	}
	i := 0
	for i < len(dst) {
		a := addr + memory.Addr(i)
		if v, ok := tx.wsBuffered(a); ok {
			dst[i] = v
			i++
			continue
		}
		o := ps.table.of(a)
		end := i + 1
		for end < len(dst) {
			na := addr + memory.Addr(end)
			if ps.table.of(na) != o {
				break
			}
			if _, ok := tx.wsBuffered(na); ok {
				break
			}
			end++
		}
		if tx.snapMode {
			i = tx.loadSnapWords(ps, o, addr, dst, i, end, st, ti)
			continue
		}
		tx.loadGroupInvisible(ps, o, a, dst[i:end], st, ti)
		i = end
	}
}

// loadGroupInvisible is loadInvisible generalized to a run of consecutive
// words sharing one ownership record: the whole group is read between one
// lock sample and one re-sample, and contributes one read-set entry — the
// protocol steps a per-word loop would repeat per word happen once per
// orec.
func (tx *Tx) loadGroupInvisible(ps *partState, o *orec, base memory.Addr, out []uint64, st *PartThreadStats, ti int) {
	spins := 0
	for {
		l1 := o.lock.Load()
		if isLocked(l1) {
			if lockOwner(l1) == tx.th.slot {
				// Self-locked: memory is stable under our own lock (WB
				// buffered values were peeled off by the caller).
				for i := range out {
					out[i] = tx.eng.arena.LoadAtomic(base + memory.Addr(i))
				}
				return
			}
			tx.cmConflict(ps, o, l1, AbortLockedOnRead, &spins, st)
			continue
		}
		for i := range out {
			out[i] = tx.eng.arena.LoadAtomic(base + memory.Addr(i))
		}
		if o.lock.Load() != l1 {
			spins++
			continue
		}
		if ver := versionOf(l1); ver > tx.touched[ti].snap {
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			continue // re-read under the extended snapshot
		}
		// One entry per orec, exactly as the per-word path deduplicates.
		if tx.rsFilt.mayContain(orecKey(o)) {
			if i := tx.rsFind(o); i >= 0 && tx.rs[i].ver == versionOf(l1) {
				return
			}
		}
		tx.rs = append(tx.rs, readEntry{o: o, ver: versionOf(l1)})
		tx.rsFilterAdd(o)
		return
	}
}

// loadSnapWords is the snapshot-mode word-range read: the group
// [i, end) shares orec o; when the orec has moved past (or is locked
// ahead of) the pinned snapshot, reconstruction is attempted for the
// WHOLE remaining chunk [i, len(dst)) in one mvstore range lookup — for
// an object written by a single commit that is one index probe instead
// of one per word. It returns the next unserved position.
func (tx *Tx) loadSnapWords(ps *partState, o *orec, addr memory.Addr, dst []uint64, i, end int, st *PartThreadStats, ti int) int {
	spins := 0
	probedHead := ^uint64(0)
	for {
		l1 := o.lock.Load()
		if isLocked(l1) {
			if lockOwner(l1) == tx.th.slot {
				for j := i; j < end; j++ {
					dst[j] = tx.eng.arena.LoadAtomic(addr + memory.Addr(j))
				}
				return end
			}
			// As in the per-word snapshot read: reconstruct past the lock
			// if the store covers the snapshot, else wait the owner out
			// (deadlock-free — snapshot readers hold no locks or bits).
			if ps.hist != nil {
				if h := ps.hist.Head(); h != probedHead {
					probedHead = h
					if tx.snapReadRange(ps, addr+memory.Addr(i), dst[i:], tx.touched[ti].snap, st) {
						return len(dst)
					}
				}
			}
			tx.checkKilled()
			spins++
			tx.stall(spins, ps.cfg.SpinBudget, st)
			continue
		}
		for j := i; j < end; j++ {
			dst[j] = tx.eng.arena.LoadAtomic(addr + memory.Addr(j))
		}
		if o.lock.Load() != l1 {
			spins++
			continue
		}
		if ver := versionOf(l1); ver > tx.touched[ti].snap {
			if ps.hist != nil && tx.snapReadRange(ps, addr+memory.Addr(i), dst[i:], tx.touched[ti].snap, st) {
				return len(dst)
			}
			st.SnapMisses.Add(uint64(end - i))
			tx.snapMisses += uint64(end - i)
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			continue // re-read under the extended snapshot
		}
		if tx.rsFilt.mayContain(orecKey(o)) {
			if j := tx.rsFind(o); j >= 0 && tx.rs[j].ver == versionOf(l1) {
				return end
			}
		}
		tx.rs = append(tx.rs, readEntry{o: o, ver: versionOf(l1)})
		tx.rsFilterAdd(o)
		return end
	}
}

// snapReadRange attempts to serve a snapshot-mode read of the word range
// [base, base+len(out)) at the pinned partition snapshot from the
// multi-version store; all-or-nothing. A hit pins the snapshot for the
// rest of the attempt (see extend).
func (tx *Tx) snapReadRange(ps *partState, base memory.Addr, out []uint64, snap uint64, st *PartThreadStats) bool {
	if !ps.hist.ReadRangeAt(uint64(base), snap, out) {
		return false
	}
	st.SnapHits.Add(uint64(len(out)))
	tx.snapHits += uint64(len(out))
	return true
}

// StoreWords transactionally writes the len(src) consecutive words
// starting at addr. Equivalent to len(src) calls of Store, with the
// per-access overhead paid once per object and the write lock of an
// ownership record shared by consecutive words taken once. Committing a
// StoreWords-written object publishes its history records back to back,
// which is what lets snapshot readers reconstruct it with one index probe
// (see mvstore.ReadRangeAt).
func (tx *Tx) StoreWords(addr memory.Addr, src []uint64) {
	if len(src) == 0 {
		return
	}
	tx.checkKilled()
	tx.tick()
	if tx.readOnly {
		tx.abort(AbortUpgrade)
	}
	for len(src) > 0 {
		c := tx.blockChunk(addr, len(src))
		tx.storeWordsChunk(addr, src[:c])
		addr += memory.Addr(c)
		src = src[c:]
	}
}

// storeWordsChunk writes a word range confined to one heap block (one
// partition).
func (tx *Tx) storeWordsChunk(addr memory.Addr, src []uint64) {
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Stores.Add(uint64(len(src)))
	ti := tx.touch(p, true)
	if ps.cfg.Read == VisibleReads {
		tx.hasVisible = true
	}
	var held *orec // last orec acquired by this chunk: skip re-acquisition
	for i := range src {
		a := addr + memory.Addr(i)
		o := ps.table.of(a)
		switch {
		case ps.cfg.Acquire == CommitTime:
			tx.wsPut(a, src[i], o, ps, modeCTL)
		case ps.cfg.Write == WriteBack:
			if o != held {
				tx.acquire(ps, o, st, ti)
				held = o
			}
			tx.wsPut(a, src[i], o, ps, modeWB)
		default: // encounter-time write-through
			if o != held {
				tx.acquire(ps, o, st, ti)
				held = o
			}
			if !tx.wsFilt.mayContain(uint64(a)) || tx.wsFind(a) < 0 {
				// First write to a: capture the undo pre-image.
				tx.ws = append(tx.ws, writeEntry{
					addr: a,
					old:  tx.eng.arena.LoadAtomic(a),
					o:    o,
					ps:   ps,
					mode: modeWT,
				})
				tx.wsFilterAdd(a)
			}
			tx.eng.arena.StoreAtomic(a, src[i])
		}
	}
}

// rangeChunkWords is LoadRange's internal buffer size: scans stream
// through the multi-word read path in chunks of this many words.
const rangeChunkWords = 64

// LoadRange transactionally reads the n consecutive words starting at
// addr, calling fn(i, v) for word i holding v, in order; fn returning
// false stops the scan. It streams through the LoadWords path, so long
// scans inherit its per-object amortization (and, in snapshot mode, the
// grouped store reconstruction) without the caller materializing a
// destination slice.
func (tx *Tx) LoadRange(addr memory.Addr, n int, fn func(i int, v uint64) bool) {
	var buf [rangeChunkWords]uint64
	for i := 0; i < n; {
		c := n - i
		if c > rangeChunkWords {
			c = rangeChunkWords
		}
		tx.LoadWords(addr+memory.Addr(i), buf[:c])
		for j := 0; j < c; j++ {
			if !fn(i+j, buf[j]) {
				return
			}
		}
		i += c
	}
}

// acquire takes the orec's write lock at encounter time, draining visible
// readers per the partition's reader policy. ti indexes the partition in
// tx.touched (for its snapshot).
func (tx *Tx) acquire(ps *partState, o *orec, st *PartThreadStats, ti int) {
	spins := 0
	for {
		l := o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return
			}
			tx.cmConflict(ps, o, l, AbortLockedOnWrite, &spins, st)
			continue
		}
		if versionOf(l) > tx.touched[ti].snap && len(tx.rs) > 0 {
			// The location moved past our snapshot; extend now so commit
			// validation is not doomed.
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
		}
		if o.lock.CompareAndSwap(l, lockWordFor(tx.th.slot)) {
			tx.locks = append(tx.locks, lockRec{o: o, prev: l, pid: ps.part.id})
			if ps.cfg.Read == VisibleReads {
				tx.drainReaders(ps, o, st)
			}
			return
		}
	}
}

// drainReaders resolves write-vs-visible-reader conflicts after the lock
// is held: either kill the registered readers and wait for their bits to
// clear, or yield (abort self) per the partition's reader policy.
func (tx *Tx) drainReaders(ps *partState, o *orec, st *PartThreadStats) {
	bit := tx.th.readerBit()
	spins := 0
	for {
		r := o.readers.Load() &^ bit
		if r == 0 {
			return
		}
		if ps.cfg.ReaderCM == WriterKillsReaders {
			for r != 0 {
				s := bits.TrailingZeros64(r)
				r &^= uint64(1) << uint(s)
				if other := tx.eng.threadBySlot(s); other != nil && other != tx.th {
					other.kill()
				}
			}
			// The killed readers need the processor to notice and clear
			// their bits: an unbounded wait, so the full spin→yield→park
			// escalation applies.
			spins++
			tx.stall(spins, ps.cfg.SpinBudget, st)
			tx.checkKilled() // we may be a visible reader elsewhere, under attack
			continue
		}
		// WriterYieldsToReaders: bounded patience, then step aside.
		spins++
		if spins > ps.cfg.SpinBudget {
			tx.abort(AbortReaderWall)
		}
		tx.stall(spins, ps.cfg.SpinBudget, st)
		tx.checkKilled()
	}
}

// cmConflict arbitrates a lock conflict per the partition's CM policy. It
// either returns (caller retries the protocol loop) or aborts by panic.
func (tx *Tx) cmConflict(ps *partState, o *orec, l uint64, cause AbortCause, spins *int, st *PartThreadStats) {
	tx.checkKilled()
	switch ps.cfg.CM {
	case CMSuicide:
		tx.abort(cause)
	case CMSpin:
		*spins++
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		tx.stall(*spins, ps.cfg.SpinBudget, st)
	case CMKarma:
		owner := tx.eng.threadBySlot(lockOwner(l))
		*spins++
		if owner == nil {
			if *spins > ps.cfg.SpinBudget {
				tx.abort(cause)
			}
			tx.stall(*spins, ps.cfg.SpinBudget, st)
			return
		}
		if tx.opCount > owner.progress.Load() {
			owner.kill()
			if *spins > 8*ps.cfg.SpinBudget {
				tx.abort(cause) // victim is not dying; give up
			}
			// The victim needs the processor to notice the kill; past the
			// budget, stall yields it ours.
			tx.stall(*spins, ps.cfg.SpinBudget, st)
			return
		}
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		tx.stall(*spins, ps.cfg.SpinBudget, st)
	case CMAggressive:
		owner := tx.eng.threadBySlot(lockOwner(l))
		if owner != nil {
			owner.kill()
		}
		*spins++
		if *spins > 8*ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		tx.stall(*spins, ps.cfg.SpinBudget, st)
	case CMBackoff:
		*spins++
		st.WaitCycles.Add(1)
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		// Randomized exponential pause: busy-wait a jittered
		// 2^min(spins,10)-bounded number of spin quanta between probes of
		// the lock word, so hot orecs see far fewer cache-line reads. The
		// pause is pure spinning (spinWait — a real pause the compiler
		// cannot delete); yield to the scheduler only once per long pause
		// (a Gosched per iteration costs more than the lock hold times it
		// waits out).
		shift := *spins
		if shift > 10 {
			shift = 10
		}
		pause := tx.th.nextRand() & ((uint64(1) << uint(shift)) - 1)
		spinWait(pause)
		if pause > 256 {
			runtime.Gosched()
		}
	case CMTimestamp:
		owner := tx.eng.threadBySlot(lockOwner(l))
		*spins++
		if owner == nil || owner == tx.th {
			if *spins > ps.cfg.SpinBudget {
				tx.abort(cause)
			}
			tx.stall(*spins, ps.cfg.SpinBudget, st)
			return
		}
		if tx.th.beginSeq.Load() < owner.beginSeq.Load() {
			// We are older: kill the owner and wait for the lock to drain
			// (stall yields past the budget so the victim can run and die).
			owner.kill()
			if *spins > 8*ps.cfg.SpinBudget {
				tx.abort(cause) // victim is not dying; give up
			}
			tx.stall(*spins, ps.cfg.SpinBudget, st)
			return
		}
		// We are younger: wait briefly for the elder, then step aside.
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		tx.stall(*spins, ps.cfg.SpinBudget, st)
	default:
		tx.abort(cause)
	}
}

// snapRead attempts to serve a snapshot-mode read of addr at the pinned
// partition snapshot from the multi-version store. A hit pins the
// snapshot for the rest of the attempt (see extend).
func (tx *Tx) snapRead(ps *partState, addr memory.Addr, snap uint64, st *PartThreadStats) (uint64, bool) {
	v, ok := ps.hist.ReadAt(uint64(addr), snap)
	if ok {
		st.SnapHits.Add(1)
		tx.snapHits++
	}
	return v, ok
}

// extend attempts a snapshot extension: validate the invisible read set
// and, on success, move the snapshot(s) forward. The new snapshots are
// sampled before validating (TL2 order): a commit that lands between the
// sample and the validation carries a version above the new snapshot, so
// later reads of it re-trigger extension — validation passing means every
// read was current at some instant at or after the sample.
//
// A snapshot-mode attempt that has already reconstructed reads from the
// multi-version store (snapHits > 0) refuses extension: those values are
// correct only at the pinned instant, and moving the snapshot would mix
// two instants in one read set. The caller then aborts and the retry
// re-pins a fresher snapshot.
func (tx *Tx) extend() bool {
	if tx.snapHits > 0 {
		return false
	}
	if tx.pl {
		return tx.extendPartitionLocal()
	}
	// No "clock unchanged" short-circuit here: every extension trigger has
	// already observed a version above the snapshot, and versions never
	// exceed the clock, so the fresh sample always postdates the snapshot.
	// The reachable form of that optimization lives at commit time
	// (assignWriteVersions), where validation is skipped when no foreign
	// commit has landed in the footprint.
	now := tx.tb.Now(0)
	if !tx.validate() {
		return false
	}
	tx.snapshot = now
	for i := range tx.touched {
		tx.touched[i].snap = now
	}
	return true
}

// extendPartitionLocal is extension under the partition-local time base:
// all touched partitions' snapshots (and the epoch anchor) move forward
// together, so a successful extension re-establishes one common instant
// at which the entire read set is valid.
func (tx *Tx) extendPartitionLocal() bool {
	ep := tx.tb.Epoch()
	n := len(tx.touched)
	if cap(tx.extSnaps) < n {
		tx.extSnaps = make([]uint64, n)
	}
	s := tx.extSnaps[:n]
	for i := range tx.touched {
		s[i] = tx.tb.Now(uint32(tx.touched[i].p.id))
	}
	// As in extend, a "counters and epoch unchanged" short-circuit would be
	// dead code here: every caller (alignFootprint's dirty path, a version
	// above a per-partition snapshot) has already observed monotone clock
	// state past the anchors. Commit-time validation has the reachable
	// equivalent (assignWriteVersions).
	if !tx.validate() {
		return false
	}
	for i := range tx.touched {
		tx.touched[i].snap = s[i]
	}
	tx.beginEpoch = ep
	if n > 0 {
		tx.snapshot = tx.touched[0].snap
	}
	return true
}

// validate checks every invisible read entry: the orec must carry the
// version observed at read time, or be locked by this transaction with an
// unchanged pre-image.
func (tx *Tx) validate() bool {
	for i := range tx.rs {
		en := &tx.rs[i]
		l := en.o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) != tx.th.slot {
				return false
			}
			prev, ok := tx.prevFor(en.o)
			if !ok || versionOf(prev) != en.ver {
				return false
			}
			continue
		}
		if versionOf(l) != en.ver {
			return false
		}
	}
	return true
}

// prevFor returns the pre-acquisition lock word of an orec this
// transaction holds (O(1) via the lock-set index for large lock sets).
func (tx *Tx) prevFor(o *orec) (uint64, bool) {
	if i := tx.lkFind(o); i >= 0 {
		return tx.locks[i].prev, true
	}
	return 0, false
}

// commit finishes the transaction: commit-time lock acquisition (CTL
// partitions), write-version assignment by the time base, read-set
// validation, write-back, lock release, visible-reader deregistration,
// bookkeeping.
func (tx *Tx) commit() {
	tx.checkKilled()
	if len(tx.ws) == 0 && len(tx.locks) == 0 {
		// Read-only commit. Invisible entries were continuously valid at
		// the snapshot; if any visible-mode partition was touched the
		// serialization point is commit time, so validate the invisible
		// entries against it.
		if tx.hasVisible && len(tx.rs) > 0 && !tx.validate() {
			tx.abort(AbortValidation)
		}
		tx.finish(true)
		return
	}
	for i := range tx.ws {
		en := &tx.ws[i]
		if en.mode == modeCTL {
			tx.acquireAtCommit(en)
		}
	}
	if tx.assignWriteVersions() || tx.hasVisible {
		if !tx.validate() {
			tx.abort(AbortValidation)
		}
	}
	tx.appendHistory()
	tx.teeWAL()
	for i := range tx.ws {
		en := &tx.ws[i]
		if en.mode != modeWT {
			tx.eng.arena.StoreAtomic(en.addr, en.val)
		}
	}
	if tx.pl {
		for i := range tx.locks {
			tx.locks[i].o.lock.Store(versionWord(tx.wvFor(tx.locks[i].pid)))
		}
	} else {
		wv := versionWord(tx.commitWV[0])
		for i := range tx.locks {
			tx.locks[i].o.lock.Store(wv)
		}
	}
	tx.finish(true)
}

// assignWriteVersions asks the time base for this commit's write versions
// — one per written partition, deduplicated from the lock set — and
// reports whether read-set validation is required before write-back.
//
// Under the global time base the classic TL2 rule applies: skip
// validation only when the single counter moved exactly one past our
// snapshot (no foreign commit in between). Under the partition-local time
// base the rule generalizes per partition across the whole footprint: all
// per-partition snapshots are anchored at one common instant (begin,
// alignFootprint, extension), and an orec can only change when a commit
// ticks its partition's counter — so if every written partition's assigned
// version is exactly one past its snapshot (our own tick) and every
// read-only touched partition's counter still equals its snapshot, no
// foreign commit has landed anywhere in the footprint since the anchor and
// the read set is trivially valid at the commit point. The counters are
// sampled while every write lock is held and a writer ticks before it
// publishes versions, so a foreign commit that escapes the sample
// serializes after this one. The time base is invoked while every write
// lock is held and before any is released, so the cross-partition epoch
// bump is visible before the new versions are (the ordering the alignment
// check relies on).
func (tx *Tx) assignWriteVersions() bool {
	if !tx.pl {
		// Global counter: one tick covers every lock regardless of
		// partition — skip the dedup scan entirely (this is the hottest
		// path in the default configuration).
		tx.commitParts = append(tx.commitParts[:0], uint32(GlobalPartition))
		if cap(tx.commitWV) < 1 {
			tx.commitWV = make([]uint64, 1)
		}
		tx.commitWV = tx.commitWV[:1]
		tx.tb.Commit(tx.commitParts, tx.commitWV)
		return tx.commitWV[0] > tx.snapshot+1
	}
	tx.commitParts = tx.commitParts[:0]
	for i := range tx.locks {
		pid := uint32(tx.locks[i].pid)
		dup := false
		for _, q := range tx.commitParts {
			if q == pid {
				dup = true
				break
			}
		}
		if !dup {
			tx.commitParts = append(tx.commitParts, pid)
		}
	}
	n := len(tx.commitParts)
	if cap(tx.commitWV) < n {
		tx.commitWV = make([]uint64, n)
	}
	tx.commitWV = tx.commitWV[:n]
	tx.tb.Commit(tx.commitParts, tx.commitWV)
	// Mirror the versions into a pid-indexed table so the release loop
	// looks each lock's version up in O(1) (wvFor). Stale entries from
	// earlier commits are harmless: wvFor is only asked about partitions
	// registered by this commit, which were just overwritten.
	if len(tx.wvByPid) < len(tx.topo.parts) {
		tx.wvByPid = make([]uint64, len(tx.topo.parts))
	}
	for i, pid := range tx.commitParts {
		tx.wvByPid[pid] = tx.commitWV[i]
	}
	for i := range tx.touched {
		pid := uint32(tx.touched[i].p.id)
		written := false
		for _, q := range tx.commitParts {
			if q == pid {
				written = true
				break
			}
		}
		if written {
			if tx.wvByPid[pid] != tx.touched[i].snap+1 {
				return true
			}
		} else if tx.tb.Now(pid) != tx.touched[i].snap {
			return true
		}
	}
	return false
}

// wvFor returns the write version assigned to partition pid by
// assignWriteVersions.
func (tx *Tx) wvFor(pid PartID) uint64 {
	return tx.wvByPid[pid]
}

// appendHistory publishes one multi-version record per written address
// into each written partition's snapshot store (skipped entirely for
// partitions with no store). It must run after assignWriteVersions (the
// records carry this commit's write versions), before write-back (the
// pre-image of a buffered write is still in memory), and before any lock
// release (a reader that observes the new orec version must be able to
// find the record) — i.e. exactly here in the commit sequence.
//
// Records are grouped per partition — one pass over the write set,
// bucketed through the O(1) partition→touched index — and published with
// one AppendBatch per written partition: a wide cross-partition commit
// issues one ring-head fetch-add per partition instead of one per
// address, and each store's publications land back to back instead of
// interleaved across rings — less store-buffer pressure exactly where
// the commit already holds every lock and wants to drain fast.
func (tx *Tx) appendHistory() {
	any := false
	for i := range tx.ws {
		if tx.ws[i].ps.hist != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	nt := len(tx.touched)
	if cap(tx.histRecs) < nt {
		fresh := make([][]mvstore.Record, nt)
		copy(fresh, tx.histRecs[:cap(tx.histRecs)])
		tx.histRecs = fresh
	}
	if cap(tx.histBufs) < nt {
		tx.histBufs = make([]*mvstore.Buffer, nt)
	}
	tx.histRecs = tx.histRecs[:nt]
	tx.histBufs = tx.histBufs[:nt]
	for ti := range tx.histRecs {
		tx.histRecs[ti] = tx.histRecs[ti][:0] // keep grown capacity
		tx.histBufs[ti] = nil
	}
	for i := range tx.ws {
		en := &tx.ws[i]
		if en.ps.hist == nil {
			continue
		}
		prev, ok := tx.prevFor(en.o)
		if !ok {
			continue // unreachable: every written orec is in the lock set
		}
		old := en.old // WT captured the pre-image at first write
		if en.mode != modeWT {
			old = tx.eng.arena.LoadAtomic(en.addr)
		}
		pid := en.ps.part.id
		wv := tx.commitWV[0]
		if tx.pl {
			wv = tx.wvFor(pid)
		}
		// A written partition is always in the footprint (Store touches
		// it), so touchIdx is current for this attempt.
		ti := int(tx.touchIdx[pid])
		tx.histBufs[ti] = en.ps.hist
		tx.histRecs[ti] = append(tx.histRecs[ti], mvstore.Record{
			Addr: uint64(en.addr), Val: old, PrevVer: versionOf(prev), NewVer: wv,
		})
	}
	for ti := range tx.histRecs {
		if tx.histBufs[ti] != nil {
			tx.histBufs[ti].AppendBatch(tx.histRecs[ti])
		}
	}
}

// acquireAtCommit locks a CTL entry's orec, deduplicating entries that
// share an orec and draining visible readers when required.
func (tx *Tx) acquireAtCommit(en *writeEntry) {
	st := tx.th.statsFor(en.ps.part.id)
	spins := 0
	for {
		l := en.o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return // another entry already acquired this orec
			}
			tx.cmConflict(en.ps, en.o, l, AbortLockedOnWrite, &spins, st)
			continue
		}
		if en.o.lock.CompareAndSwap(l, lockWordFor(tx.th.slot)) {
			tx.locks = append(tx.locks, lockRec{o: en.o, prev: l, pid: en.ps.part.id})
			if en.ps.cfg.Read == VisibleReads {
				tx.drainReaders(en.ps, en.o, st)
			}
			return
		}
	}
}

// rollback undoes an attempt: restore write-through pre-images, release
// locks to their previous words, clear reader bits, recycle allocations
// made by the attempt, and record the abort cause.
func (tx *Tx) rollback(cause AbortCause) {
	for i := len(tx.ws) - 1; i >= 0; i-- {
		en := &tx.ws[i]
		if en.mode == modeWT {
			tx.eng.arena.StoreAtomic(en.addr, en.old)
		}
	}
	for i := len(tx.locks) - 1; i >= 0; i-- {
		lr := &tx.locks[i]
		lr.o.lock.Store(lr.prev)
	}
	bit := tx.th.readerBit()
	for _, o := range tx.vreads {
		o.readers.And(^bit)
	}
	for _, a := range tx.allocs {
		tx.th.alloc.Free(a.addr, a.n)
	}
	if len(tx.touched) == 0 {
		// Aborted before touching any partition (e.g. killed at the first
		// operation): attribute to the global partition so the abort is
		// not lost from the books.
		tx.th.statsFor(GlobalPartition).Aborts[cause].Add(1)
	}
	for i := range tx.touched {
		tx.th.statsFor(tx.touched[i].p.id).Aborts[cause].Add(1)
	}
	tx.finish(false)
}

// finish releases per-attempt state. committed selects commit vs. abort
// bookkeeping (locks/bits are handled by the caller for commits).
func (tx *Tx) finish(committed bool) {
	if tx.timed {
		// Duration measured here, not in the run loop: finish is the last
		// act of both commit and rollback, and tx.touched is still intact,
		// so committed attempts can attribute their latency per partition.
		tx.durationNs = uint64(time.Since(tx.attemptStart))
		if committed && tx.eng.latency.Load() {
			for i := range tx.touched {
				tx.th.statsFor(tx.touched[i].p.id).Lat.Record(tx.durationNs)
			}
		}
	}
	// This attempt no longer reads anything: stop pinning the horizon
	// before doing reclamation bookkeeping, so a solo thread's own retires
	// become reclaimable immediately.
	tx.eng.epochs.Clear(tx.th.slot)
	if committed {
		bit := tx.th.readerBit()
		for _, o := range tx.vreads {
			o.readers.And(^bit)
		}
		if len(tx.frees) > 0 {
			// Commit-time frees enter limbo stamped with a ceiling sampled
			// after this commit's write versions published (tb.Commit ran,
			// locks may or may not be released yet — either way the unlink
			// is at or below this reading on every timeline). They recycle
			// only once the horizon passes the stamp; contrast the abort
			// path in rollback, which recycles never-published allocations
			// immediately.
			stamp := tx.tb.Ceiling()
			for _, f := range tx.frees {
				tx.th.alloc.Retire(f.addr, f.n, stamp)
				tx.retiredWords += uint64(f.n)
			}
		}
		if tx.th.alloc.NeedsReclaim() {
			// Amortized reclamation: one horizon sweep per ReclaimBatch
			// retires (the allocator re-arms the trigger), so a stalled
			// horizon costs a bounded fraction of commit work.
			tx.reclaimedWords += tx.th.alloc.Reclaim(tx.eng.epochs.Horizon())
		}
		for i := range tx.touched {
			st := tx.th.statsFor(tx.touched[i].p.id)
			st.Commits.Add(1)
			if tx.touched[i].wrote {
				st.UpdateCommits.Add(1)
			} else {
				st.ROCommits.Add(1)
			}
		}
	}
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.locks = tx.locks[:0]
	tx.vreads = tx.vreads[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.touched = tx.touched[:0]
}

// Alloc allocates a fresh object of n words at the given allocation site.
// If the transaction aborts, the object is recycled automatically.
// Recycled memory retains its previous committed contents (this preserves
// opacity for concurrent snapshot readers holding stale references), so
// the caller must initialize every word transactionally before publishing
// the object.
func (tx *Tx) Alloc(site memory.SiteID, n int) memory.Addr {
	a, err := tx.th.alloc.Alloc(site, n)
	if err != nil {
		panic(err) // arena exhaustion is a configuration error, not a conflict
	}
	tx.allocs = append(tx.allocs, allocRec{addr: a, n: n})
	return a
}

// Free schedules the object at addr (n words) for reclamation if and when
// the transaction commits. The caller must already have unlinked it. The
// object does not recycle at commit: it is retired into the thread's
// limbo stamped with the commit's clock reading and reaches a free list
// only once the global horizon passes that stamp — i.e. once no live
// reader, snapshot reconstruction included, could still traverse to it.
func (tx *Tx) Free(addr memory.Addr, n int) {
	if addr == memory.Nil {
		return
	}
	tx.frees = append(tx.frees, allocRec{addr: addr, n: n})
}

// LoadAddr reads a pointer-valued word.
func (tx *Tx) LoadAddr(a memory.Addr) memory.Addr { return memory.Addr(tx.Load(a)) }

// StoreAddr writes a pointer-valued word and, during profiling runs,
// reports the site→site edge to the partition analyzer. All data-structure
// link stores must go through this method; it is the dynamic stand-in for
// the points-to edges the paper's compile-time analysis extracts.
func (tx *Tx) StoreAddr(dst memory.Addr, target memory.Addr) {
	tx.Store(dst, uint64(target))
	if target != memory.Nil && tx.eng.profiling.Load() {
		tx.eng.recordPointer(tx.eng.arena.SiteOf(dst), tx.eng.arena.SiteOf(target))
	}
}
