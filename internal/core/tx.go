package core

import (
	"runtime"

	"repro/internal/memory"
)

// writeMode tags how a write-set entry reaches memory.
type writeMode uint8

const (
	modeWB  writeMode = iota // buffered, applied at commit (ETL write-back)
	modeWT                   // written in place under lock, old value kept for undo
	modeCTL                  // buffered, orec acquired at commit time
)

type readEntry struct {
	o   *orec
	ver uint64
}

type writeEntry struct {
	addr memory.Addr
	val  uint64 // new value (WB/CTL)
	old  uint64 // pre-image (WT undo)
	o    *orec
	ps   *partState
	mode writeMode
}

type lockRec struct {
	o    *orec
	prev uint64
}

type allocRec struct {
	addr memory.Addr
	n    int
}

type touchRec struct {
	p     *Partition
	wrote bool
}

// Tx is a transaction descriptor. One lives in each Thread and is reused
// across attempts; all methods must be called from the owning goroutine,
// inside Engine.Atomic. Transactional operations abort by panicking with
// an internal signal that Engine.Atomic recovers; user code simply calls
// Load/Store and lets the engine retry.
type Tx struct {
	eng  *Engine
	th   *Thread
	topo *topology

	snapshot   uint64
	readOnly   bool
	hasVisible bool
	opCount    uint64

	rs      []readEntry
	ws      []writeEntry
	wsIndex map[memory.Addr]int
	locks   []lockRec
	vreads  []*orec
	allocs  []allocRec
	frees   []allocRec
	touched []touchRec
}

func (tx *Tx) init(e *Engine, th *Thread) {
	tx.eng = e
	tx.th = th
	tx.wsIndex = make(map[memory.Addr]int, 64)
}

// Snapshot returns the transaction's current snapshot timestamp.
func (tx *Tx) Snapshot() uint64 { return tx.snapshot }

// ReadOnly reports whether this attempt runs in read-only mode.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// Thread returns the owning thread.
func (tx *Tx) Thread() *Thread { return tx.th }

func (tx *Tx) begin(readOnly bool) {
	tx.topo = tx.eng.topo.Load()
	tx.readOnly = readOnly
	tx.hasVisible = false
	tx.opCount = 0
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.locks = tx.locks[:0]
	tx.vreads = tx.vreads[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.touched = tx.touched[:0]
	if len(tx.wsIndex) > 0 {
		clear(tx.wsIndex)
	}
	tx.th.killed.Store(0) // stale kills from a previous attempt do not apply
	tx.th.progress.Store(0)
	tx.snapshot = tx.eng.clock.Load()
}

func (tx *Tx) abort(cause AbortCause) {
	panic(abortSignal{cause: cause})
}

// Abort aborts the transaction attempt and retries it (an explicit user
// restart).
func (tx *Tx) Abort() { tx.abort(AbortExplicit) }

func (tx *Tx) checkKilled() {
	if tx.th.killed.Load() != 0 {
		tx.th.killed.Store(0)
		tx.abort(AbortKilled)
	}
}

func (tx *Tx) touch(p *Partition, wrote bool) {
	for i := range tx.touched {
		if tx.touched[i].p == p {
			tx.touched[i].wrote = tx.touched[i].wrote || wrote
			return
		}
	}
	tx.touched = append(tx.touched, touchRec{p: p, wrote: wrote})
}

func (tx *Tx) tick() {
	tx.opCount++
	tx.th.progress.Store(tx.opCount)
	if m := tx.eng.yieldMask.Load(); m != 0 && tx.th.nextRand()&m == 0 {
		runtime.Gosched()
	}
}

// Load transactionally reads the word at addr.
func (tx *Tx) Load(addr memory.Addr) uint64 {
	tx.checkKilled()
	tx.tick()
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Loads.Add(1)
	tx.touch(p, false)

	// Read-after-write: buffered values win; write-through values are
	// already in memory and flow through the normal paths below.
	if len(tx.ws) > 0 {
		if i, ok := tx.wsIndex[addr]; ok && tx.ws[i].mode != modeWT {
			return tx.ws[i].val
		}
	}

	o := ps.table.of(addr)
	if ps.cfg.Read == VisibleReads {
		tx.hasVisible = true
		return tx.loadVisible(ps, o, addr, st)
	}
	return tx.loadInvisible(ps, o, addr, st)
}

// loadInvisible implements the timestamp-validated invisible read: sample
// lock word, read value, resample; extend the snapshot when the version is
// newer than it.
func (tx *Tx) loadInvisible(ps *partState, o *orec, addr memory.Addr, st *PartThreadStats) uint64 {
	spins := 0
	for {
		l1 := o.lock.Load()
		if isLocked(l1) {
			if lockOwner(l1) == tx.th.slot {
				// Self-locked: for WB the buffered value was returned by the
				// caller's write-set probe; reaching here means a different
				// word sharing the orec, whose memory is stable under our
				// own lock. For WT the current value is in memory.
				return tx.eng.arena.LoadAtomic(addr)
			}
			tx.cmConflict(ps, o, l1, AbortLockedOnRead, &spins, st)
			continue
		}
		v := tx.eng.arena.LoadAtomic(addr)
		if o.lock.Load() != l1 {
			spins++
			continue
		}
		if ver := versionOf(l1); ver > tx.snapshot {
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			continue // re-read under the extended snapshot
		}
		tx.rs = append(tx.rs, readEntry{o: o, ver: versionOf(l1)})
		return v
	}
}

// loadVisible implements the visible read: register in the orec's reader
// bitmap, re-check the lock, and pin the location until commit/abort. The
// version check against the snapshot is kept so that a transaction mixing
// visible and invisible partitions still observes one consistent snapshot
// (opacity); visible entries themselves never need commit validation.
func (tx *Tx) loadVisible(ps *partState, o *orec, addr memory.Addr, st *PartThreadStats) uint64 {
	bit := tx.th.readerBit()
	spins := 0
	for {
		l := o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return tx.eng.arena.LoadAtomic(addr)
			}
			tx.cmConflict(ps, o, l, AbortLockedOnRead, &spins, st)
			continue
		}
		old := o.readers.Or(bit)
		mine := old&bit != 0
		if !mine {
			tx.vreads = append(tx.vreads, o)
		}
		l2 := o.lock.Load()
		if isLocked(l2) {
			// A writer slipped in between the check and the registration;
			// withdraw and arbitrate.
			if !mine {
				o.readers.And(^bit)
				tx.vreads = tx.vreads[:len(tx.vreads)-1]
			}
			tx.cmConflict(ps, o, l2, AbortLockedOnRead, &spins, st)
			continue
		}
		if ver := versionOf(l2); ver > tx.snapshot {
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
			// Snapshot now covers the version; the bit pins the location.
		}
		return tx.eng.arena.LoadAtomic(addr)
	}
}

// Store transactionally writes v to addr.
func (tx *Tx) Store(addr memory.Addr, v uint64) {
	tx.checkKilled()
	tx.tick()
	if tx.readOnly {
		tx.abort(AbortUpgrade)
	}
	p := tx.eng.partOf(tx.topo, addr)
	ps := p.loadState()
	st := tx.th.statsFor(p.id)
	st.Stores.Add(1)
	tx.touch(p, true)
	if ps.cfg.Read == VisibleReads {
		tx.hasVisible = true
	}
	o := ps.table.of(addr)

	switch {
	case ps.cfg.Acquire == CommitTime:
		tx.wsPut(addr, v, o, ps, modeCTL)
	case ps.cfg.Write == WriteBack:
		tx.acquire(ps, o, st)
		tx.wsPut(addr, v, o, ps, modeWB)
	default: // encounter-time write-through
		tx.acquire(ps, o, st)
		if i, ok := tx.wsIndex[addr]; ok {
			_ = i // undo pre-image already captured on first write
		} else {
			tx.wsIndex[addr] = len(tx.ws)
			tx.ws = append(tx.ws, writeEntry{
				addr: addr,
				old:  tx.eng.arena.LoadAtomic(addr),
				o:    o,
				ps:   ps,
				mode: modeWT,
			})
		}
		tx.eng.arena.StoreAtomic(addr, v)
	}
}

func (tx *Tx) wsPut(addr memory.Addr, v uint64, o *orec, ps *partState, mode writeMode) {
	if i, ok := tx.wsIndex[addr]; ok {
		tx.ws[i].val = v
		return
	}
	tx.wsIndex[addr] = len(tx.ws)
	tx.ws = append(tx.ws, writeEntry{addr: addr, val: v, o: o, ps: ps, mode: mode})
}

// acquire takes the orec's write lock at encounter time, draining visible
// readers per the partition's reader policy.
func (tx *Tx) acquire(ps *partState, o *orec, st *PartThreadStats) {
	spins := 0
	for {
		l := o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return
			}
			tx.cmConflict(ps, o, l, AbortLockedOnWrite, &spins, st)
			continue
		}
		if versionOf(l) > tx.snapshot && len(tx.rs) > 0 {
			// The location moved past our snapshot; extend now so commit
			// validation is not doomed.
			if !tx.extend() {
				tx.abort(AbortValidation)
			}
		}
		if o.lock.CompareAndSwap(l, lockWordFor(tx.th.slot)) {
			tx.locks = append(tx.locks, lockRec{o: o, prev: l})
			if ps.cfg.Read == VisibleReads {
				tx.drainReaders(ps, o, st)
			}
			return
		}
	}
}

// drainReaders resolves write-vs-visible-reader conflicts after the lock
// is held: either kill the registered readers and wait for their bits to
// clear, or yield (abort self) per the partition's reader policy.
func (tx *Tx) drainReaders(ps *partState, o *orec, st *PartThreadStats) {
	bit := tx.th.readerBit()
	spins := 0
	for {
		r := o.readers.Load() &^ bit
		if r == 0 {
			return
		}
		if ps.cfg.ReaderCM == WriterKillsReaders {
			for r != 0 {
				s := trailingZeros(r)
				r &^= uint64(1) << uint(s)
				if other := tx.eng.threadBySlot(s); other != nil && other != tx.th {
					other.kill()
				}
			}
			st.WaitCycles.Add(1)
			spins++
			if spins&63 == 0 {
				runtime.Gosched()
			}
			tx.checkKilled() // we may be a visible reader elsewhere, under attack
			continue
		}
		// WriterYieldsToReaders
		st.WaitCycles.Add(1)
		spins++
		if spins > ps.cfg.SpinBudget {
			tx.abort(AbortReaderWall)
		}
		if spins&31 == 0 {
			runtime.Gosched()
		}
		tx.checkKilled()
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// cmConflict arbitrates a lock conflict per the partition's CM policy. It
// either returns (caller retries the protocol loop) or aborts by panic.
func (tx *Tx) cmConflict(ps *partState, o *orec, l uint64, cause AbortCause, spins *int, st *PartThreadStats) {
	tx.checkKilled()
	switch ps.cfg.CM {
	case CMSuicide:
		tx.abort(cause)
	case CMSpin:
		*spins++
		st.WaitCycles.Add(1)
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		if *spins&31 == 0 {
			runtime.Gosched()
		}
	case CMKarma:
		owner := tx.eng.threadBySlot(lockOwner(l))
		*spins++
		st.WaitCycles.Add(1)
		if owner == nil {
			if *spins > ps.cfg.SpinBudget {
				tx.abort(cause)
			}
			return
		}
		if tx.opCount > owner.progress.Load() {
			owner.kill()
			if *spins > 8*ps.cfg.SpinBudget {
				tx.abort(cause) // victim is not dying; give up
			}
			if *spins&31 == 0 {
				runtime.Gosched()
			}
			return
		}
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		if *spins&31 == 0 {
			runtime.Gosched()
		}
	case CMAggressive:
		owner := tx.eng.threadBySlot(lockOwner(l))
		if owner != nil {
			owner.kill()
		}
		*spins++
		st.WaitCycles.Add(1)
		if *spins > 8*ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		if *spins&31 == 0 {
			runtime.Gosched()
		}
	case CMBackoff:
		*spins++
		st.WaitCycles.Add(1)
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		// Randomized exponential pause: busy-wait a jittered
		// 2^min(spins,10)-bounded number of cycles between probes of the
		// lock word, so hot orecs see far fewer cache-line reads. The
		// pause is pure spinning; yield to the scheduler only once per
		// long pause (a Gosched per iteration costs more than the lock
		// hold times it waits out).
		shift := *spins
		if shift > 10 {
			shift = 10
		}
		pause := tx.th.nextRand() & ((uint64(1) << uint(shift)) - 1)
		for i := uint64(0); i < pause; i++ {
			_ = i
		}
		if pause > 256 {
			runtime.Gosched()
		}
	case CMTimestamp:
		owner := tx.eng.threadBySlot(lockOwner(l))
		*spins++
		st.WaitCycles.Add(1)
		if owner == nil || owner == tx.th {
			if *spins > ps.cfg.SpinBudget {
				tx.abort(cause)
			}
			return
		}
		if tx.th.beginSeq.Load() < owner.beginSeq.Load() {
			// We are older: kill the owner and wait for the lock to drain.
			owner.kill()
			if *spins > 8*ps.cfg.SpinBudget {
				tx.abort(cause) // victim is not dying; give up
			}
			if *spins&31 == 0 {
				runtime.Gosched()
			}
			return
		}
		// We are younger: wait briefly for the elder, then yield.
		if *spins > ps.cfg.SpinBudget {
			tx.abort(cause)
		}
		if *spins&31 == 0 {
			runtime.Gosched()
		}
	default:
		tx.abort(cause)
	}
}

// extend attempts a snapshot extension: validate the invisible read set
// against the current clock and, on success, move the snapshot forward.
func (tx *Tx) extend() bool {
	now := tx.eng.clock.Load()
	if !tx.validate() {
		return false
	}
	tx.snapshot = now
	return true
}

// validate checks every invisible read entry: the orec must carry the
// version observed at read time, or be locked by this transaction with an
// unchanged pre-image.
func (tx *Tx) validate() bool {
	for i := range tx.rs {
		en := &tx.rs[i]
		l := en.o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) != tx.th.slot {
				return false
			}
			prev, ok := tx.prevFor(en.o)
			if !ok || versionOf(prev) != en.ver {
				return false
			}
			continue
		}
		if versionOf(l) != en.ver {
			return false
		}
	}
	return true
}

func (tx *Tx) prevFor(o *orec) (uint64, bool) {
	for i := range tx.locks {
		if tx.locks[i].o == o {
			return tx.locks[i].prev, true
		}
	}
	return 0, false
}

// commit finishes the transaction: commit-time lock acquisition (CTL
// partitions), clock increment, read-set validation, write-back, lock
// release, visible-reader deregistration, bookkeeping.
func (tx *Tx) commit() {
	tx.checkKilled()
	if len(tx.ws) == 0 && len(tx.locks) == 0 {
		// Read-only commit. Invisible entries were continuously valid at
		// the snapshot; if any visible-mode partition was touched the
		// serialization point is commit time, so validate the invisible
		// entries against it.
		if tx.hasVisible && len(tx.rs) > 0 && !tx.validate() {
			tx.abort(AbortValidation)
		}
		tx.finish(true)
		return
	}
	for i := range tx.ws {
		en := &tx.ws[i]
		if en.mode == modeCTL {
			tx.acquireAtCommit(en)
		}
	}
	wv := tx.eng.clock.Add(1)
	if wv > tx.snapshot+1 || tx.hasVisible {
		if !tx.validate() {
			tx.abort(AbortValidation)
		}
	}
	for i := range tx.ws {
		en := &tx.ws[i]
		if en.mode != modeWT {
			tx.eng.arena.StoreAtomic(en.addr, en.val)
		}
	}
	for i := range tx.locks {
		tx.locks[i].o.lock.Store(versionWord(wv))
	}
	tx.finish(true)
}

// acquireAtCommit locks a CTL entry's orec, deduplicating entries that
// share an orec and draining visible readers when required.
func (tx *Tx) acquireAtCommit(en *writeEntry) {
	st := tx.th.statsFor(tx.eng.partOf(tx.topo, en.addr).id)
	spins := 0
	for {
		l := en.o.lock.Load()
		if isLocked(l) {
			if lockOwner(l) == tx.th.slot {
				return // another entry already acquired this orec
			}
			tx.cmConflict(en.ps, en.o, l, AbortLockedOnWrite, &spins, st)
			continue
		}
		if en.o.lock.CompareAndSwap(l, lockWordFor(tx.th.slot)) {
			tx.locks = append(tx.locks, lockRec{o: en.o, prev: l})
			if en.ps.cfg.Read == VisibleReads {
				tx.drainReaders(en.ps, en.o, st)
			}
			return
		}
	}
}

// rollback undoes an attempt: restore write-through pre-images, release
// locks to their previous words, clear reader bits, recycle allocations
// made by the attempt, and record the abort cause.
func (tx *Tx) rollback(cause AbortCause) {
	for i := len(tx.ws) - 1; i >= 0; i-- {
		en := &tx.ws[i]
		if en.mode == modeWT {
			tx.eng.arena.StoreAtomic(en.addr, en.old)
		}
	}
	for i := len(tx.locks) - 1; i >= 0; i-- {
		lr := &tx.locks[i]
		lr.o.lock.Store(lr.prev)
	}
	bit := tx.th.readerBit()
	for _, o := range tx.vreads {
		o.readers.And(^bit)
	}
	for _, a := range tx.allocs {
		tx.th.alloc.Free(a.addr, a.n)
	}
	if len(tx.touched) == 0 {
		// Aborted before touching any partition (e.g. killed at the first
		// operation): attribute to the global partition so the abort is
		// not lost from the books.
		tx.th.statsFor(GlobalPartition).Aborts[cause].Add(1)
	}
	for i := range tx.touched {
		tx.th.statsFor(tx.touched[i].p.id).Aborts[cause].Add(1)
	}
	tx.finish(false)
}

// finish releases per-attempt state. committed selects commit vs. abort
// bookkeeping (locks/bits are handled by the caller for commits).
func (tx *Tx) finish(committed bool) {
	if committed {
		bit := tx.th.readerBit()
		for _, o := range tx.vreads {
			o.readers.And(^bit)
		}
		for _, f := range tx.frees {
			tx.th.alloc.Free(f.addr, f.n)
		}
		for i := range tx.touched {
			st := tx.th.statsFor(tx.touched[i].p.id)
			st.Commits.Add(1)
			if tx.touched[i].wrote {
				st.UpdateCommits.Add(1)
			} else {
				st.ROCommits.Add(1)
			}
		}
	}
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.locks = tx.locks[:0]
	tx.vreads = tx.vreads[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.touched = tx.touched[:0]
	if len(tx.wsIndex) > 0 {
		clear(tx.wsIndex)
	}
}

// Alloc allocates a fresh object of n words at the given allocation site.
// If the transaction aborts, the object is recycled automatically.
// Recycled memory retains its previous committed contents (this preserves
// opacity for concurrent snapshot readers holding stale references), so
// the caller must initialize every word transactionally before publishing
// the object.
func (tx *Tx) Alloc(site memory.SiteID, n int) memory.Addr {
	a, err := tx.th.alloc.Alloc(site, n)
	if err != nil {
		panic(err) // arena exhaustion is a configuration error, not a conflict
	}
	tx.allocs = append(tx.allocs, allocRec{addr: a, n: n})
	return a
}

// Free schedules the object at addr (n words) for recycling if and when
// the transaction commits. The caller must already have unlinked it.
func (tx *Tx) Free(addr memory.Addr, n int) {
	if addr == memory.Nil {
		return
	}
	tx.frees = append(tx.frees, allocRec{addr: addr, n: n})
}

// LoadAddr reads a pointer-valued word.
func (tx *Tx) LoadAddr(a memory.Addr) memory.Addr { return memory.Addr(tx.Load(a)) }

// StoreAddr writes a pointer-valued word and, during profiling runs,
// reports the site→site edge to the partition analyzer. All data-structure
// link stores must go through this method; it is the dynamic stand-in for
// the points-to edges the paper's compile-time analysis extracts.
func (tx *Tx) StoreAddr(dst memory.Addr, target memory.Addr) {
	tx.Store(dst, uint64(target))
	if target != memory.Nil && tx.eng.profiling.Load() {
		tx.eng.recordPointer(tx.eng.arena.SiteOf(dst), tx.eng.arena.SiteOf(target))
	}
}
