package core

import (
	"fmt"
	"runtime"

	"repro/internal/clock"
	"repro/internal/memory"
	"repro/internal/wal"
)

// Checkpoint writes a snapshot-consistent image of the heap into the
// log's directory and retires the segments it makes dead. It prefers an
// ONLINE scan — concurrent transactions keep committing while the image
// is taken at a pinned snapshot — and falls back to a stop-the-world
// copy under the quiescence gate when the online scan cannot prove
// consistency (partition-local time base, a word overwritten past the
// snapshot with no multi-version record retained, a scan chasing a
// too-hot orec).
//
// The consistency argument for the online image: the log's publish
// horizon h0 is sampled BEFORE the snapshot version S. A commit tees
// (claims its sequence) only after assignWriteVersions, so any commit
// with seq <= h0 had already minted its version when h0 was read —
// before S was sampled from the same monotone clock — hence its version
// is <= S and its writes are fully contained in the image scanned at S.
// Records with seq > h0 may or may not be reflected; replaying them over
// the image is idempotent (absolute values in commit order). The scan is
// epoch-pinned at S through a borrowed pool slot so reclamation cannot
// recycle addresses out from under the multi-version reconstructions.
//
// Returns whether the image was taken online.
func (e *Engine) Checkpoint(log *wal.Log) (online bool, err error) {
	if log == nil {
		return false, fmt.Errorf("core: Checkpoint needs an attached log")
	}
	cp, online := e.checkpointImageOnline(log)
	if cp == nil {
		cp = e.checkpointImageSTW(log)
	}
	if err := wal.WriteCheckpoint(log.Dir(), cp); err != nil {
		return online, err
	}
	log.NoteCheckpoint()
	return online, log.TruncateBefore(cp.LastSeq)
}

// checkpointImageOnline scans the arena at a pinned snapshot without
// stopping traffic. It returns (nil, false) when any word cannot be
// proven consistent at the snapshot — the caller then takes the
// stop-the-world image instead.
func (e *Engine) checkpointImageOnline(log *wal.Log) (*wal.Checkpoint, bool) {
	if e.timeBase().Mode() != clock.ModeGlobal {
		// Partition-local counters are not comparable to one global S;
		// the STW image (where every commit has fully finished) is the
		// correct cut there.
		return nil, false
	}
	th := e.BorrowThread()
	defer e.ReturnThread(th)
	h0 := log.SeqHorizon()
	s := e.timeBase().Ceiling()
	// Pin reclamation at S for the duration of the scan, exactly like a
	// long snapshot reader.
	e.epochs.Publish(th.slot, s)
	defer e.epochs.Clear(th.slot)
	nextBlock, blockSite := e.arena.SnapshotBlocks()
	topo := e.topo.Load()
	nWords := nextBlock << e.blockShift
	words := make([]uint64, nWords)
	blockWords := uint64(1) << e.blockShift
	// Block 0 is reserved (Addr 0 is nil); its words are never written
	// transactionally and stay zero in the image.
	for a := blockWords; a < nWords; a++ {
		addr := memory.Addr(a)
		ps := e.partOf(topo, addr).loadState()
		o := ps.table.of(addr)
		ok := false
		for try := 0; try < 128; try++ {
			l := o.lock.Load()
			if isLocked(l) {
				runtime.Gosched()
				continue
			}
			if versionOf(l) > s {
				break // overwritten past the snapshot; try history
			}
			v := e.arena.LoadAtomic(addr)
			if o.lock.Load() == l { // seqlock recheck: value belongs to version<=S
				words[a] = v
				ok = true
				break
			}
		}
		if !ok && ps.hist != nil {
			if v, found := ps.hist.ReadAt(uint64(addr), s); found {
				words[a] = v
				ok = true
			}
		}
		if !ok {
			return nil, false
		}
	}
	return e.fillCheckpoint(h0, s, nextBlock, blockSite, words), true
}

// checkpointImageSTW copies the heap under the quiescence gate: no
// transaction is in flight, so every published record (seq <= horizon)
// is fully applied to memory and the plain copy is the exact state at
// the gate.
func (e *Engine) checkpointImageSTW(log *wal.Log) *wal.Checkpoint {
	var cp *wal.Checkpoint
	e.quiesce(func() {
		nextBlock, blockSite := e.arena.SnapshotBlocks()
		nWords := nextBlock << e.blockShift
		words := make([]uint64, nWords)
		for a := uint64(0); a < nWords; a++ {
			words[a] = e.arena.LoadAtomic(memory.Addr(a))
		}
		cp = e.fillCheckpoint(log.SeqHorizon(), e.timeBase().Ceiling(), nextBlock, blockSite, words)
	})
	return cp
}

func (e *Engine) fillCheckpoint(lastSeq, clk, nextBlock uint64, blockSite []memory.SiteID, words []uint64) *wal.Checkpoint {
	// Site names are sampled after the block table: registration precedes
	// use, so every site id in the table has its name present.
	names := e.arena.Sites().Names()
	bs := make([]uint32, len(blockSite))
	for i, sid := range blockSite {
		bs[i] = uint32(sid)
	}
	return &wal.Checkpoint{
		LastSeq:    lastSeq,
		Clock:      clk,
		BlockShift: uint32(e.blockShift),
		NextBlock:  nextBlock,
		Sites:      names,
		BlockSite:  bs,
		Words:      words,
	}
}
