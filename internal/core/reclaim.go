package core

// This file is the engine-level face of epoch-based memory reclamation:
// the horizon computed from the published-reader table (internal/epoch),
// the aggregate reclamation statistics, and the maintenance entry points
// (ReclaimNow, KillHorizonPinner) that tests, servers and the tuner's
// horizon-stall heuristic drive.
//
// The protocol pieces live elsewhere: tx.begin publishes a clock-ceiling
// stamp before sampling any snapshot, tx.finish clears it and retires
// commit-time frees at a post-commit ceiling (tx.go), and the limbo lists
// that hold retired objects until the horizon passes belong to the
// allocators (internal/memory).

import "repro/internal/epoch"

// HorizonIdle is the horizon reading when no transaction is live anywhere:
// everything retired is immediately reclaimable.
const HorizonIdle = epoch.Idle

// Horizon returns the global reclamation horizon: the minimum published
// begin stamp over all live transactions, or HorizonIdle when none is
// active. An object retired at stamp R may be recycled once Horizon() > R
// — every live reader then provably began after the freeing commit
// completed, so no snapshot it reads at (pinned or extended) can reach
// the object.
func (e *Engine) Horizon() uint64 { return e.epochs.Horizon() }

// ReclaimStats is a momentary reading of the engine's reclamation state.
type ReclaimStats struct {
	// Horizon is the minimum live begin stamp (HorizonIdle when no
	// transaction is running).
	Horizon uint64
	// Ceiling is the commit clock's current ceiling, the reference point
	// for lag.
	Ceiling uint64
	// HorizonLag is how far the oldest live reader's stamp trails the
	// clock ceiling (0 when idle): the age, in commit ticks, of the reader
	// currently gating all reclamation. A lag that keeps growing while
	// limbo is non-empty is a horizon stall — typically one parked
	// long-running snapshot transaction.
	HorizonLag uint64
	// RetiredWords and ReclaimedWords are the cumulative arena counters;
	// LimboWords is their difference, the words currently awaiting the
	// horizon. At quiesce (no live readers, after a ReclaimNow) Retired
	// equals Reclaimed.
	RetiredWords   uint64
	ReclaimedWords uint64
	LimboWords     uint64
}

// ReclaimStats returns the engine's current reclamation statistics.
func (e *Engine) ReclaimStats() ReclaimStats {
	h := e.epochs.Horizon()
	c := e.Clock()
	var lag uint64
	if h < c { // h == HorizonIdle exceeds any real ceiling: lag 0
		lag = c - h
	}
	m := e.arena.ReclaimStats()
	return ReclaimStats{
		Horizon:        h,
		Ceiling:        c,
		HorizonLag:     lag,
		RetiredWords:   m.RetiredWords,
		ReclaimedWords: m.ReclaimedWords,
		LimboWords:     m.LimboWords,
	}
}

// ReclaimNow sweeps the horizon once and drains every claimable limbo
// against it: all currently idle pooled Threads' limbos plus the arena's
// shared overflow. It returns the words reclaimed. Commit paths already
// reclaim incrementally (one sweep per ReclaimBatch retires); this is the
// quiesce/maintenance entry point — call it after a churn phase to verify
// RetiredWords == ReclaimedWords, or periodically from a server's
// housekeeping loop. Pinned Threads' limbos belong to their owners (see
// Thread.Reclaim). Must not be called from inside a transaction.
func (e *Engine) ReclaimNow() uint64 {
	h := e.epochs.Horizon()
	var claimed []*Thread
	for {
		th := e.claimIdle()
		if th == nil {
			break
		}
		claimed = append(claimed, th)
	}
	if len(claimed) == 0 {
		// No pooled Thread exists yet (pinned-only usage): try to create
		// one so the shared overflow still drains; if the registry is full
		// the drain simply waits for the next commit-path reclaim.
		if th := e.growPool(); th != nil {
			claimed = append(claimed, th)
		}
	}
	var words uint64
	for _, th := range claimed {
		words += th.alloc.Reclaim(h) // also drains the shared overflow
	}
	for _, th := range claimed {
		e.ReturnThread(th)
	}
	return words
}

// Reclaim drains this thread's own limbo (and the shared overflow)
// against the current horizon, returning the words reclaimed. For pinned
// workers that want deterministic reclamation points; must be called by
// the owning goroutine, outside a transaction.
func (th *Thread) Reclaim() uint64 {
	return th.alloc.Reclaim(th.eng.epochs.Horizon())
}

// EpochStamp returns the stamp slot currently publishes for the given
// thread slot (HorizonIdle when no transaction is live there). Exposed
// for tests and diagnostics.
func (e *Engine) EpochStamp(slot int) uint64 {
	if slot < 0 || slot >= MaxThreads {
		return HorizonIdle
	}
	return e.epochs.Load(slot)
}

// KillHorizonPinner kills the transaction currently pinning the horizon
// (the live attempt with the minimum published stamp), returning that
// stamp. The victim observes the kill at its next transactional operation,
// aborts, and retries with a fresh — current — stamp, which releases the
// horizon. This is the tuner's mitigation for horizon stalls caused by a
// parked long-running snapshot reader; the reader itself loses only its
// current attempt.
func (e *Engine) KillHorizonPinner() (uint64, bool) {
	slot, stamp := e.epochs.MinSlot()
	if slot < 0 {
		return 0, false
	}
	th := e.threadBySlot(slot)
	if th == nil {
		return 0, false
	}
	th.kill()
	return stamp, true
}
