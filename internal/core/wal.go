package core

import (
	"errors"
	"fmt"

	"repro/internal/memory"
	"repro/internal/wal"
)

// ErrNotDurable is the sentinel matched (via errors.Is) by the error Run
// returns when a commit under Sync durability applied in memory but its
// redo record never became durable: the log was already dead or closed
// when the commit published, or died (flusher I/O error, Abandon, Close)
// before the record was fsynced. The heap mutation is NOT rolled back —
// memory is ahead of the log — so the caller must treat the commit as
// applied-but-unacknowledged: it may or may not survive a crash.
var ErrNotDurable = errors.New("core: commit applied in memory but its redo record is not durable")

// NotDurableError is the concrete error behind ErrNotDurable.
type NotDurableError struct {
	// Seq is the log sequence the commit claimed, or 0 when the log
	// refused the publish outright (already dead or closed).
	Seq uint64
}

func (e *NotDurableError) Error() string {
	if e.Seq == 0 {
		return "core: commit applied in memory but the redo log was down at publish time"
	}
	return fmt.Sprintf("core: commit applied in memory but its redo record (seq %d) is not durable", e.Seq)
}

// Is makes errors.Is(err, ErrNotDurable) succeed on a *NotDurableError.
func (e *NotDurableError) Is(target error) bool { return target == ErrNotDurable }

// walBox pairs the engine's attached redo log with its durability mode
// (one atomic pointer load per commit when attached, one nil check when
// not — Durability Off costs the commit path nothing else).
type walBox struct {
	log  *wal.Log
	sync bool
}

// SetWAL attaches (or with nil detaches) the durable redo log. While
// attached, every update commit tees its write set into the log — still
// under its write locks, so log order is commit order — and block grabs
// are journaled through the arena's grab hook. With syncCommits set,
// Run parks each committing transaction until its record is fsynced.
func (e *Engine) SetWAL(log *wal.Log, syncCommits bool) {
	if log == nil {
		e.walState.Store(nil)
		e.arena.SetGrabHook(nil)
		return
	}
	sites := e.arena.Sites()
	e.arena.SetGrabHook(func(firstBlock, blocks uint64, site memory.SiteID) {
		log.PublishGrab(firstBlock, blocks, sites.Name(site))
	})
	e.walState.Store(&walBox{log: log, sync: syncCommits})
}

// WALLog returns the attached redo log, or nil.
func (e *Engine) WALLog() *wal.Log {
	if box := e.walState.Load(); box != nil {
		return box.log
	}
	return nil
}

// WALStats returns the attached log's counters (zero Stats, false when
// no log is attached).
func (e *Engine) WALStats() (wal.Stats, bool) {
	if box := e.walState.Load(); box != nil {
		return box.log.Stats(), true
	}
	return wal.Stats{}, false
}

// teeWAL publishes this commit's redo record: the write set's absolute
// post-images plus the commit's write version. It must run inside the
// commit sequence after assignWriteVersions (the record carries this
// commit's version) and before any lock release (the claimed log
// sequence then orders identically with commit order on every written
// address — the property that makes any recovered log prefix a
// consistent cut). The write set is deduplicated by address, so the
// record holds each written word once, with its final value.
func (tx *Tx) teeWAL() {
	box := tx.eng.walState.Load()
	if box == nil || len(tx.ws) == 0 {
		return
	}
	// Remember the exact log/mode this commit tees into: Run's
	// post-commit durability wait keys off it, so a concurrent SetWAL
	// cannot change which commits owe a durability promise.
	tx.walDst = box
	ver := tx.commitWV[0]
	if tx.pl {
		for _, wv := range tx.commitWV {
			if wv > ver {
				ver = wv
			}
		}
	}
	ops := tx.walOps[:0]
	for i := range tx.ws {
		en := &tx.ws[i]
		v := en.val
		if en.mode == modeWT {
			// Write-through stored the new value in place at encounter
			// time; the entry only keeps the undo pre-image.
			v = tx.eng.arena.LoadAtomic(en.addr)
		}
		ops = append(ops, wal.Op{Addr: uint64(en.addr), Val: v})
	}
	tx.walOps = ops
	tx.walSeq = box.log.PublishCommit(ver, ops)
}
