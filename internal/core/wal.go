package core

import (
	"repro/internal/memory"
	"repro/internal/wal"
)

// walBox pairs the engine's attached redo log with its durability mode
// (one atomic pointer load per commit when attached, one nil check when
// not — Durability Off costs the commit path nothing else).
type walBox struct {
	log  *wal.Log
	sync bool
}

// SetWAL attaches (or with nil detaches) the durable redo log. While
// attached, every update commit tees its write set into the log — still
// under its write locks, so log order is commit order — and block grabs
// are journaled through the arena's grab hook. With syncCommits set,
// Run parks each committing transaction until its record is fsynced.
func (e *Engine) SetWAL(log *wal.Log, syncCommits bool) {
	if log == nil {
		e.walState.Store(nil)
		e.arena.SetGrabHook(nil)
		return
	}
	sites := e.arena.Sites()
	e.arena.SetGrabHook(func(firstBlock, blocks uint64, site memory.SiteID) {
		log.PublishGrab(firstBlock, blocks, sites.Name(site))
	})
	e.walState.Store(&walBox{log: log, sync: syncCommits})
}

// WALLog returns the attached redo log, or nil.
func (e *Engine) WALLog() *wal.Log {
	if box := e.walState.Load(); box != nil {
		return box.log
	}
	return nil
}

// WALStats returns the attached log's counters (zero Stats, false when
// no log is attached).
func (e *Engine) WALStats() (wal.Stats, bool) {
	if box := e.walState.Load(); box != nil {
		return box.log.Stats(), true
	}
	return wal.Stats{}, false
}

// teeWAL publishes this commit's redo record: the write set's absolute
// post-images plus the commit's write version. It must run inside the
// commit sequence after assignWriteVersions (the record carries this
// commit's version) and before any lock release (the claimed log
// sequence then orders identically with commit order on every written
// address — the property that makes any recovered log prefix a
// consistent cut). The write set is deduplicated by address, so the
// record holds each written word once, with its final value.
func (tx *Tx) teeWAL() {
	box := tx.eng.walState.Load()
	if box == nil || len(tx.ws) == 0 {
		return
	}
	ver := tx.commitWV[0]
	if tx.pl {
		for _, wv := range tx.commitWV {
			if wv > ver {
				ver = wv
			}
		}
	}
	ops := tx.walOps[:0]
	for i := range tx.ws {
		en := &tx.ws[i]
		v := en.val
		if en.mode == modeWT {
			// Write-through stored the new value in place at encounter
			// time; the entry only keeps the undo pre-image.
			v = tx.eng.arena.LoadAtomic(en.addr)
		}
		ops = append(ops, wal.Op{Addr: uint64(en.addr), Val: v})
	}
	tx.walOps = ops
	tx.walSeq = box.log.PublishCommit(ver, ops)
}
