package core

import (
	"sync/atomic"

	"repro/internal/mvstore"
)

// PartID identifies a partition. Partition 0 always exists and is the
// default ("global") partition: with no partitioning plan installed, every
// address maps to it and the engine degenerates to a classic single-table
// STM — that configuration is the paper's baseline.
type PartID uint32

// GlobalPartition is the id of the default partition.
const GlobalPartition PartID = 0

// partState bundles a partition's configuration with the orec table built
// for it. Config and table are swapped together, atomically, during
// quiescent reconfiguration, so a transaction always sees a matching pair.
type partState struct {
	cfg   PartConfig
	table *orecTable
	gen   uint64 // configuration generation, bumped on every reconfigure
	// part points back to the owning partition, so protocol code holding a
	// state (write entries, lock records) can recover the partition id —
	// which the partition-local time base keys its commit counters by —
	// without re-running the address→partition lookup.
	part *Partition
	// hist is the partition's multi-version snapshot store (nil when
	// cfg.HistCap == 0). It lives in the state, not the partition, because
	// its records certify value intervals against THIS orec table's version
	// timeline: a reconfiguration rebuilds the table with versions reset to
	// 0, so the first commit after it records prevVersion 0 — which would
	// wrongly cover every older snapshot if stale records survived the
	// swap. Tying the buffer to the state makes every rebuild start clean.
	hist *mvstore.Buffer
}

// newPartState builds a state (config, orec table, snapshot store) for p.
func newPartState(p *Partition, cfg PartConfig, gen uint64) *partState {
	st := &partState{
		cfg:   cfg,
		table: newOrecTable(cfg.LockBits, cfg.GranShift),
		gen:   gen,
		part:  p,
	}
	if cfg.HistCap > 0 {
		st.hist = mvstore.New(int(cfg.HistCap))
	}
	return st
}

// Partition is one unit of independent concurrency control.
type Partition struct {
	id    PartID
	name  string
	state atomic.Pointer[partState]
}

func newPartition(id PartID, name string, cfg PartConfig) *Partition {
	p := &Partition{id: id, name: name}
	p.state.Store(newPartState(p, cfg.Normalize(), 0))
	return p
}

// ID returns the partition's identifier.
func (p *Partition) ID() PartID { return p.id }

// Name returns the partition's human-readable name.
func (p *Partition) Name() string { return p.name }

// Config returns the partition's current configuration.
func (p *Partition) Config() PartConfig { return p.state.Load().cfg }

// Generation returns the configuration generation (number of
// reconfigurations applied).
func (p *Partition) Generation() uint64 { return p.state.Load().gen }

// loadState returns the current state; stable for the duration of a
// transaction because reconfiguration only happens while no transaction
// is active (see Engine.Reconfigure).
func (p *Partition) loadState() *partState { return p.state.Load() }
