package core

import (
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/stats"
)

// PartThreadStats are one thread's counters for one partition. They are
// incremented only by the owning thread (so the atomic adds stay on a
// local cache line and are cheap) and read by the tuner's snapshot
// aggregation, which may run concurrently — hence atomics, not plain
// words.
type PartThreadStats struct {
	Loads   atomic.Uint64
	Stores  atomic.Uint64
	Commits atomic.Uint64
	// UpdateCommits counts committed transactions that wrote at least one
	// word of this partition.
	UpdateCommits atomic.Uint64
	// ROCommits counts committed transactions that only read this
	// partition.
	ROCommits atomic.Uint64
	Aborts    [NumAbortCauses]atomic.Uint64
	// WaitCycles approximates time spent spinning on this partition's
	// orecs (CM wait-loop iterations).
	WaitCycles atomic.Uint64
	// Yields counts wait-loop iterations that escalated past the spin
	// budget into a scheduler yield (runtime.Gosched), and Parks those
	// that escalated further into a timed sleep — the scheduler-
	// cooperation signals the tuner's spin-budget heuristic keys on. Both
	// are subsets of WaitCycles.
	Yields atomic.Uint64
	Parks  atomic.Uint64
	// SpinNs/YieldNs/ParkNs break wait time down by phase: nanoseconds
	// spent in wait-loop iterations that stayed on-CPU (spin), yielded the
	// processor, or slept (park) — the time-domain companions of
	// WaitCycles/Yields/Parks (see the attribution note in wait.go).
	SpinNs  atomic.Uint64
	YieldNs atomic.Uint64
	ParkNs  atomic.Uint64
	// Lat is this thread's commit-latency histogram for the partition:
	// every committed attempt that touched the partition records its
	// attempt duration here while the engine's latency tracking is enabled
	// (Engine.SetLatencyTracking). Owner-recorded — the per-worker shard
	// of the engine-wide histogram — so the hot-path cost is one increment
	// on an uncontended line; monitors merge shards via accumulateInto.
	Lat stats.Histogram
	// SnapHits counts snapshot-mode reads served from the partition's
	// multi-version store (a stale orec whose value at the pinned snapshot
	// was reconstructed instead of extending or aborting).
	SnapHits atomic.Uint64
	// SnapMisses counts snapshot-mode reads of a stale orec the store
	// could not serve — the covering record was evicted, or the partition
	// has no store at all — forcing the validate/extend fallback. It is
	// the partition's unserved snapshot demand, the signal the tuner's
	// AdaptSnapshot heuristic keys on.
	SnapMisses atomic.Uint64
}

// accumulateInto adds this block's current counter values into out.
func (s *PartThreadStats) accumulateInto(out *PartStats) {
	out.Loads += s.Loads.Load()
	out.Stores += s.Stores.Load()
	out.Commits += s.Commits.Load()
	out.UpdateCommits += s.UpdateCommits.Load()
	out.ROCommits += s.ROCommits.Load()
	out.WaitCycles += s.WaitCycles.Load()
	out.Yields += s.Yields.Load()
	out.Parks += s.Parks.Load()
	out.SpinNs += s.SpinNs.Load()
	out.YieldNs += s.YieldNs.Load()
	out.ParkNs += s.ParkNs.Load()
	out.SnapHits += s.SnapHits.Load()
	out.SnapMisses += s.SnapMisses.Load()
	out.Latency = out.Latency.Add(s.Lat.Snapshot())
	for i := range s.Aborts {
		out.Aborts[i] += s.Aborts[i].Load()
	}
}

// PartStats is an aggregated view of one partition's counters.
type PartStats struct {
	Part          PartID
	Name          string
	Loads         uint64
	Stores        uint64
	Commits       uint64
	UpdateCommits uint64
	ROCommits     uint64
	Aborts        [NumAbortCauses]uint64
	WaitCycles    uint64
	Yields        uint64
	Parks         uint64
	SpinNs        uint64
	YieldNs       uint64
	ParkNs        uint64
	SnapHits      uint64
	SnapMisses    uint64
	// Latency is the partition's commit-latency histogram (attempt begin
	// to commit, per committed attempt touching the partition), merged
	// across thread shards. Empty (Counts == nil) unless latency tracking
	// is enabled (Engine.SetLatencyTracking).
	Latency stats.HistSnapshot
}

// add accumulates o's counters into s (identity fields are untouched).
func (s *PartStats) add(o *PartStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Commits += o.Commits
	s.UpdateCommits += o.UpdateCommits
	s.ROCommits += o.ROCommits
	s.WaitCycles += o.WaitCycles
	s.Yields += o.Yields
	s.Parks += o.Parks
	s.SpinNs += o.SpinNs
	s.YieldNs += o.YieldNs
	s.ParkNs += o.ParkNs
	s.SnapHits += o.SnapHits
	s.SnapMisses += o.SnapMisses
	s.Latency = s.Latency.Add(o.Latency)
	for i := range s.Aborts {
		s.Aborts[i] += o.Aborts[i]
	}
}

// TotalAborts sums all abort causes.
func (s *PartStats) TotalAborts() uint64 {
	var t uint64
	for _, a := range s.Aborts {
		t += a
	}
	return t
}

// AbortRate returns aborts/(commits+aborts), or 0 when idle.
func (s *PartStats) AbortRate() float64 {
	a, c := s.TotalAborts(), s.Commits
	if a+c == 0 {
		return 0
	}
	return float64(a) / float64(a+c)
}

// UpdateRatio returns the fraction of committed transactions touching the
// partition that wrote to it.
func (s *PartStats) UpdateRatio() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.UpdateCommits) / float64(s.Commits)
}

// ClockStats returns a momentary reading of the commit time base:
// per-partition counter values plus the shared-RMW figures the clockscale
// experiment and the tuner's time-base heuristic consume. Fields are
// monotone only within one time base: a SetTimeBaseMode switch installs
// fresh counters (deltas straddling it are meaningless — the tuner guards
// for this), and AdvanceClock inflates every figure by its delta. Deltas
// between snapshots are exact when taken in the same mode with no
// Advance in between.
func (e *Engine) ClockStats() clock.Stats { return e.timeBase().Stats() }

// Sub returns s - old, counter-wise; used by the tuner to derive per-epoch
// deltas from monotonic totals.
func (s PartStats) Sub(old PartStats) PartStats {
	d := s
	d.Loads -= old.Loads
	d.Stores -= old.Stores
	d.Commits -= old.Commits
	d.UpdateCommits -= old.UpdateCommits
	d.ROCommits -= old.ROCommits
	d.WaitCycles -= old.WaitCycles
	d.Yields -= old.Yields
	d.Parks -= old.Parks
	d.SpinNs -= old.SpinNs
	d.YieldNs -= old.YieldNs
	d.ParkNs -= old.ParkNs
	d.SnapHits -= old.SnapHits
	d.SnapMisses -= old.SnapMisses
	d.Latency = s.Latency.Sub(old.Latency)
	for i := range d.Aborts {
		d.Aborts[i] -= old.Aborts[i]
	}
	return d
}
