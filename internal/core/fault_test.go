package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memory"
)

// TestKillStorm floods a worker with kill requests while it runs
// transactions: every kill must either hit between transactions (ignored)
// or abort exactly one attempt; the final counter must be exact and no
// locks or reader bits may leak.
func TestKillStorm(t *testing.T) {
	for _, read := range []ReadMode{InvisibleReads, VisibleReads} {
		t.Run(read.String(), func(t *testing.T) {
			cfg := DefaultPartConfig()
			cfg.Read = read
			e := newTestEngine(t, cfg)
			e.SetYieldEveryOps(4) // let the assassin interleave on one CPU
			victim := e.MustAttachThread()
			var a memory.Addr
			victim.Atomic(func(tx *Tx) {
				a = tx.Alloc(memory.DefaultSite, 1)
				tx.Store(a, 0)
			})

			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() { // the assassin: frequent but not saturating
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						victim.kill()
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()
			const iters = 5000
			for i := 0; i < iters; i++ {
				victim.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
			close(stop)
			wg.Wait()
			victim.Atomic(func(tx *Tx) {
				if got := tx.Load(a); got != iters {
					t.Errorf("counter = %d, want %d", got, iters)
				}
			})
			assertCleanOrecs(t, e)
			s := e.StatsSnapshot(GlobalPartition)
			if s.Aborts[AbortKilled] == 0 {
				t.Error("kill storm produced no killed aborts")
			}
		})
	}
}

// assertCleanOrecs fails if any orec of any partition is locked or holds
// reader bits while the system is idle.
func assertCleanOrecs(t *testing.T, e *Engine) {
	t.Helper()
	for _, p := range e.Partitions() {
		ps := p.loadState()
		for i := range ps.table.orecs {
			if l := ps.table.orecs[i].lock.Load(); isLocked(l) {
				t.Fatalf("partition %d orec %d leaked lock %x", p.ID(), i, l)
			}
			if r := ps.table.orecs[i].readers.Load(); r != 0 {
				t.Fatalf("partition %d orec %d leaked readers %b", p.ID(), i, r)
			}
		}
	}
}

// TestReconfigStorm reconfigures the partition continuously while
// transactions with all access patterns run; correctness must hold and
// nothing may leak.
func TestReconfigStorm(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	e.SetYieldEveryOps(4)
	setup := e.MustAttachThread()
	const slots = 64
	var base memory.Addr
	setup.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, slots)
		for i := 0; i < slots; i++ {
			tx.Store(base+memory.Addr(i), 100)
		}
	})
	e.DetachThread(setup)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := seed
			for i := 0; i < 3000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := memory.Addr(rng % slots)
				to := memory.Addr((rng >> 16) % slots)
				th.Atomic(func(tx *Tx) {
					v := tx.Load(base + from)
					if v == 0 {
						return
					}
					tx.Store(base+from, v-1)
					tx.Store(base+to, tx.Load(base+to)+1)
				})
			}
		}(uint64(w)*7919 + 3)
	}

	cfgs := make([]PartConfig, 0, 8)
	for _, c := range allModeConfigs() {
		cfgs = append(cfgs, c)
	}
	done := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			cfg := cfgs[i%len(cfgs)]
			cfg.LockBits = uint(4 + i%6)
			if err := e.Reconfigure(GlobalPartition, cfg); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			i++
			time.Sleep(300 * time.Microsecond) // storm, but let workers run
		}
	}()
	wg.Wait()
	close(done)
	rwg.Wait()

	check := e.MustAttachThread()
	defer e.DetachThread(check)
	check.Atomic(func(tx *Tx) {
		var sum uint64
		for i := 0; i < slots; i++ {
			sum += tx.Load(base + memory.Addr(i))
		}
		if sum != slots*100 {
			t.Errorf("sum = %d, want %d", sum, slots*100)
		}
	})
	assertCleanOrecs(t, e)
}

// TestAllocAbortRecycles verifies that objects allocated in an aborted
// attempt are recycled (the next allocation of the same size reuses the
// address).
func TestAllocAbortRecycles(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var firstAttempt memory.Addr
	attempt := 0
	th.Atomic(func(tx *Tx) {
		attempt++
		a := tx.Alloc(memory.DefaultSite, 5)
		if attempt == 1 {
			firstAttempt = a
			tx.Abort() // discard; allocation must return to the free list
		}
		if attempt == 2 && a != firstAttempt {
			t.Errorf("retry allocated %d, want recycled %d", a, firstAttempt)
		}
		tx.Store(a, 1)
	})
	if attempt != 2 {
		t.Fatalf("attempts = %d", attempt)
	}
}

// TestFreeRecyclesAfterCommit verifies transactional frees feed the free
// list only on commit — and, since frees retire into limbo, only after a
// reclaim pass sees the horizon move past the freeing commit.
func TestFreeRecyclesAfterCommit(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 7)
		tx.Store(a, 1)
	})
	// Free in an aborted tx: must NOT recycle.
	_ = th.AtomicErr(func(tx *Tx) error {
		tx.Free(a, 7)
		return ErrExplicitAbort
	})
	var b memory.Addr
	th.Atomic(func(tx *Tx) { b = tx.Alloc(memory.DefaultSite, 7) })
	if b == a {
		t.Fatal("free from aborted transaction took effect")
	}
	// Free in a committed tx: must recycle once reclaimed. No transaction
	// is live here, so the horizon is idle and one drain suffices.
	th.Atomic(func(tx *Tx) { tx.Free(a, 7) })
	th.Reclaim()
	var c memory.Addr
	th.Atomic(func(tx *Tx) { c = tx.Alloc(memory.DefaultSite, 7) })
	if c != a {
		t.Fatalf("committed free not recycled: got %d, want %d", c, a)
	}
}

// TestSequentialSemanticsProperty checks, with random operation tapes,
// that a transactional execution equals a plain map model when run
// single-threaded — the STM must be transparent without concurrency.
func TestSequentialSemanticsProperty(t *testing.T) {
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			th := e.MustAttachThread()
			const slots = 32
			var base memory.Addr
			th.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.DefaultSite, slots)
			})
			model := make(map[memory.Addr]uint64)
			f := func(ops []uint32) bool {
				th.Atomic(func(tx *Tx) {
					for _, op := range ops {
						slot := memory.Addr(op % slots)
						if op&(1<<20) != 0 {
							v := uint64(op >> 21)
							tx.Store(base+slot, v)
							model[slot] = v
						} else if tx.Load(base+slot) != model[slot] {
							t.Error("read diverged from model")
						}
					}
				})
				return !t.Failed()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotMonotonic checks that a transaction's snapshot never
// decreases across extensions.
func TestSnapshotMonotonic(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	other := e.MustAttachThread()
	var a, b memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		b = tx.Alloc(memory.DefaultSite, 1)
	})
	th.Atomic(func(tx *Tx) {
		s0 := tx.Snapshot()
		tx.Load(a)
		// A foreign commit advances the clock; the next read forces an
		// extension.
		other.Atomic(func(tx2 *Tx) { tx2.Store(b, 1) })
		tx.Load(b)
		if tx.Snapshot() < s0 {
			t.Errorf("snapshot moved backwards: %d -> %d", s0, tx.Snapshot())
		}
	})
}
