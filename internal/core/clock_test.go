package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/memory"
)

// plTestSetup installs nParts partitions (plus the global default), one
// allocation site each, fills one cell array per partition, and switches
// the engine to the partition-local time base. It returns the site ids
// and the base address of each partition's cells.
func plTestSetup(t *testing.T, e *Engine, nParts, cellsPer int, initVal uint64) ([]memory.SiteID, []memory.Addr) {
	t.Helper()
	sites := e.Arena().Sites()
	siteIDs := make([]memory.SiteID, nParts)
	names := []string{"g"}
	cfgs := []PartConfig{DefaultPartConfig()}
	for i := 0; i < nParts; i++ {
		siteIDs[i] = sites.Register("clk." + string(rune('a'+i)))
		names = append(names, "clk."+string(rune('a'+i)))
		cfgs = append(cfgs, DefaultPartConfig())
	}
	full := make([]PartID, sites.Count())
	for i := 0; i < nParts; i++ {
		full[siteIDs[i]] = PartID(i + 1)
	}
	if err := e.InstallPlan(full, names, cfgs); err != nil {
		t.Fatal(err)
	}
	e.SetTimeBaseMode(TimeBasePartitionLocal)

	bases := make([]memory.Addr, nParts)
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *Tx) {
		for i := 0; i < nParts; i++ {
			bases[i] = tx.Alloc(siteIDs[i], cellsPer)
			for j := 0; j < cellsPer; j++ {
				tx.Store(bases[i]+memory.Addr(j), initVal)
			}
		}
	})
	e.DetachThread(setup)
	return siteIDs, bases
}

// TestPartitionLocalNoSharedRMW is the acceptance check for the
// partition-local time base: update transactions confined to a single
// partition must never perform a shared-counter read-modify-write, i.e.
// the cross-partition epoch stays put while the per-partition counters
// advance. A single deliberate cross-partition transaction then moves the
// epoch by exactly one.
func TestPartitionLocalNoSharedRMW(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	_, bases := plTestSetup(t, e, 2, 4, 100)

	cs0 := e.ClockStats()
	if cs0.Mode != clock.ModePartitionLocal {
		t.Fatalf("mode = %v", cs0.Mode)
	}

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	const updates = 500
	for i := 0; i < updates; i++ {
		p := i % 2
		th.Atomic(func(tx *Tx) {
			a := bases[p] + memory.Addr(i%4)
			tx.Store(a, tx.Load(a)+1)
		})
	}
	cs1 := e.ClockStats()
	if got := cs1.SharedRMWs - cs0.SharedRMWs; got != 0 {
		t.Fatalf("single-partition updates performed %d shared RMWs", got)
	}
	if got := cs1.CrossCommits - cs0.CrossCommits; got != 0 {
		t.Fatalf("cross-commit count moved by %d without cross-partition transactions", got)
	}
	if ticks := cs1.LocalTicks - cs0.LocalTicks; ticks != updates {
		t.Fatalf("local ticks = %d, want %d", ticks, updates)
	}

	// One transaction spanning both partitions: exactly one epoch bump.
	th.Atomic(func(tx *Tx) {
		tx.Store(bases[0], tx.Load(bases[0])+1)
		tx.Store(bases[1], tx.Load(bases[1])-1)
	})
	cs2 := e.ClockStats()
	if got := cs2.CrossCommits - cs1.CrossCommits; got != 1 {
		t.Fatalf("cross-partition commit bumped epoch by %d, want 1", got)
	}
	if got := cs2.SharedRMWs - cs1.SharedRMWs; got != 1 {
		t.Fatalf("cross-partition commit performed %d shared RMWs, want 1", got)
	}
}

// TestPartitionLocalCrossPartitionBank is the torture-style
// serializability test for the partition-local time base: bank transfers
// within and across partitions, with interleaving simulation, while
// read-only audits assert the conserved total and a controller keeps
// flipping the time base under load. Any snapshot misalignment between
// partitions would surface as a broken sum.
func TestPartitionLocalCrossPartitionBank(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	e.SetYieldEveryOps(16)
	const nParts = 4
	const cellsPer = 8
	const initVal = 1000
	_, bases := plTestSetup(t, e, nParts, cellsPer, initVal)
	const wantTotal = nParts * cellsPer * initVal

	stop := make(chan struct{})
	var badSum atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // transfer; half stay inside one partition
					fp := rng.Intn(nParts)
					tp := fp
					if rng.Intn(2) == 0 {
						tp = rng.Intn(nParts)
					}
					fc, tc := rng.Intn(cellsPer), rng.Intn(cellsPer)
					amt := uint64(rng.Intn(5) + 1)
					th.Atomic(func(tx *Tx) {
						src := bases[fp] + memory.Addr(fc)
						dst := bases[tp] + memory.Addr(tc)
						if src == dst {
							return
						}
						v := tx.Load(src)
						if v < amt {
							return
						}
						tx.Store(src, v-amt)
						tx.Store(dst, tx.Load(dst)+amt)
					})
				default: // audit: cross-partition read-only scan
					th.ReadOnlyAtomic(func(tx *Tx) {
						var sum uint64
						for p := 0; p < nParts; p++ {
							for j := 0; j < cellsPer; j++ {
								sum += tx.Load(bases[p] + memory.Addr(j))
							}
						}
						if sum != wantTotal {
							badSum.Add(1)
						}
					})
				}
			}
		}(int64(w) + 1)
	}

	// Controller: flip the time base under load; each switch must migrate
	// commit time monotonically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		modes := []TimeBaseMode{TimeBaseGlobal, TimeBasePartitionLocal}
		for i := 0; i < 20; i++ {
			select {
			case <-stop:
				return
			default:
			}
			before := e.Clock()
			e.SetTimeBaseMode(modes[i%2])
			if after := e.Clock(); after < before {
				t.Errorf("time base switch moved clock backwards: %d -> %d", before, after)
				return
			}
		}
	}()

	waitCommits(t, e, 8_000)
	close(stop)
	wg.Wait()

	if n := badSum.Load(); n != 0 {
		t.Fatalf("%d audits observed a broken total", n)
	}
	check := e.MustAttachThread()
	defer e.DetachThread(check)
	check.Atomic(func(tx *Tx) {
		var sum uint64
		for p := 0; p < nParts; p++ {
			for j := 0; j < cellsPer; j++ {
				sum += tx.Load(bases[p] + memory.Addr(j))
			}
		}
		if sum != wantTotal {
			t.Fatalf("final sum %d, want %d", sum, wantTotal)
		}
	})
}

// TestInstallPlanMidTrafficTimeBaseMonotonic is the regression test for
// plan installs on a live partition-local engine: every install resizes
// the counter set, and no partition's counter — nor the engine ceiling —
// may ever move backwards, or snapshots taken after the install could
// precede versions minted before it.
func TestInstallPlanMidTrafficTimeBaseMonotonic(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	e.SetYieldEveryOps(8)
	sites := e.Arena().Sites()
	s0 := sites.Register("mono.a")
	s1 := sites.Register("mono.b")
	e.SetTimeBaseMode(TimeBasePartitionLocal)

	var a0, a1 memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *Tx) {
		a0 = tx.Alloc(s0, 1)
		a1 = tx.Alloc(s1, 1)
		tx.Store(a0, 500)
		tx.Store(a1, 500)
	})
	e.DetachThread(setup)

	stop := make(chan struct{})
	var badSum atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(3) == 0 {
					th.ReadOnlyAtomic(func(tx *Tx) {
						if tx.Load(a0)+tx.Load(a1) != 1000 {
							badSum.Add(1)
						}
					})
					continue
				}
				th.Atomic(func(tx *Tx) {
					v := tx.Load(a0)
					if v == 0 {
						return
					}
					tx.Store(a0, v-1)
					tx.Store(a1, tx.Load(a1)+1)
				})
			}
		}(int64(w) + 7)
	}

	// Install a sequence of plans with growing partition counts while the
	// transfer traffic runs.
	plans := [][]PartID{
		{0, 1, 2}, // a and b in their own partitions
		{0, 1, 1}, // both in one
		{0, 1, 2}, // split again
		{0, 2, 1}, // swapped
	}
	prevCeiling := e.Clock()
	for round, assign := range plans {
		full := make([]PartID, sites.Count())
		copy(full, assign)
		names := []string{"g", "p1", "p2"}
		cfgs := []PartConfig{DefaultPartConfig(), DefaultPartConfig(), DefaultPartConfig()}
		if err := e.InstallPlan(full, names, cfgs); err != nil {
			t.Fatal(err)
		}
		cs := e.ClockStats()
		for p, v := range cs.Parts {
			if v < prevCeiling {
				t.Fatalf("round %d: partition %d counter %d below prior ceiling %d", round, p, v, prevCeiling)
			}
			if v < clock.InitialStamp {
				t.Fatalf("round %d: partition %d counter %d below InitialStamp", round, p, v)
			}
		}
		if c := e.Clock(); c < prevCeiling {
			t.Fatalf("round %d: ceiling moved backwards %d -> %d", round, prevCeiling, c)
		}
		prevCeiling = e.Clock()
		waitCommits(t, e, uint64(2000*(round+1)))
	}
	close(stop)
	wg.Wait()
	if n := badSum.Load(); n != 0 {
		t.Fatalf("%d scans observed a broken sum across plan installs", n)
	}
}

// TestPartitionLocalAllPartConfigs runs the cross-partition transfer
// invariant under the partition-local time base for every concurrency
// configuration (visible reads, write-through, commit-time locking, and
// their CM variants): time-base correctness must be orthogonal to the
// per-partition protocol choices.
func TestPartitionLocalAllPartConfigs(t *testing.T) {
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			e.SetYieldEveryOps(8)
			sites := e.Arena().Sites()
			sa := sites.Register("mix.a")
			sb := sites.Register("mix.b")
			full := make([]PartID, sites.Count())
			full[sa], full[sb] = 1, 2
			if err := e.InstallPlan(full, []string{"g", "a", "b"}, []PartConfig{cfg, cfg, cfg}); err != nil {
				t.Fatal(err)
			}
			e.SetTimeBaseMode(TimeBasePartitionLocal)

			var aa, ab memory.Addr
			setup := e.MustAttachThread()
			setup.Atomic(func(tx *Tx) {
				aa = tx.Alloc(sa, 1)
				ab = tx.Alloc(sb, 1)
				tx.Store(aa, 300)
				tx.Store(ab, 300)
			})
			e.DetachThread(setup)

			var wg sync.WaitGroup
			var bad atomic.Uint64
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 400; i++ {
						if rng.Intn(4) == 0 {
							th.ReadOnlyAtomic(func(tx *Tx) {
								if tx.Load(aa)+tx.Load(ab) != 600 {
									bad.Add(1)
								}
							})
							continue
						}
						th.Atomic(func(tx *Tx) {
							v := tx.Load(aa)
							if v == 0 {
								return
							}
							tx.Store(aa, v-1)
							tx.Store(ab, tx.Load(ab)+1)
						})
					}
				}(int64(w) + 3)
			}
			wg.Wait()
			if n := bad.Load(); n != 0 {
				t.Fatalf("%d inconsistent cross-partition reads", n)
			}
		})
	}
}

// TestAdvanceClockPartitionLocal mirrors TestAdvanceClockStress for the
// partition-local time base: a large jump applied to every counter must
// leave transactions working and the ceiling reflecting the jump.
func TestAdvanceClockPartitionLocal(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	_, bases := plTestSetup(t, e, 2, 2, 7)
	e.AdvanceClock(1 << 40)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	th.Atomic(func(tx *Tx) {
		tx.Store(bases[0], tx.Load(bases[0])+1)
		tx.Store(bases[1], tx.Load(bases[1])+1)
	})
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(bases[0]) + tx.Load(bases[1]); got != 16 {
			t.Errorf("sum = %d, want 16", got)
		}
	})
	if e.Clock() < 1<<40 {
		t.Fatalf("ceiling = %d", e.Clock())
	}
}
