package core

import (
	"sync/atomic"

	"repro/internal/memory"
)

// orec is an ownership record: one entry of a partition's lock array.
//
// The lock word encodes, TinySTM-style:
//
//	unlocked: version<<1        (version = commit timestamp, minted by the
//	                             owning partition's time base, of the last
//	                             commit that wrote a word mapping here)
//	locked:   ownerSlot<<1 | 1  (ownerSlot = thread slot of the writer)
//
// The readers word is the visible-reader bitmap: bit i set means the
// thread in slot i currently holds a visible read on this orec. It is
// only used by partitions configured with VisibleReads, but the space is
// always present so a partition can switch visibility without changing
// table layout.
//
// The struct is padded to a 64-byte cache line to avoid false sharing
// between adjacent orecs.
type orec struct {
	lock    atomic.Uint64
	readers atomic.Uint64
	_       [6]uint64 // pad to 64 bytes
}

const lockedBit uint64 = 1

func isLocked(l uint64) bool { return l&lockedBit != 0 }

// lockOwner returns the thread slot encoded in a locked lock word.
func lockOwner(l uint64) int { return int(l >> 1) }

// lockWordFor encodes a locked lock word owned by slot.
func lockWordFor(slot int) uint64 { return uint64(slot)<<1 | lockedBit }

// versionOf returns the timestamp encoded in an unlocked lock word.
func versionOf(l uint64) uint64 { return l >> 1 }

// versionWord encodes an unlocked lock word carrying version ts.
func versionWord(ts uint64) uint64 { return ts << 1 }

// orecTable is one partition's lock array. Tables are immutable once
// published (the tuner swaps in a whole new table during quiescence when
// it changes LockBits or GranShift).
type orecTable struct {
	orecs     []orec
	mask      uint64
	granShift uint
}

func newOrecTable(lockBits, granShift uint) *orecTable {
	n := uint64(1) << lockBits
	return &orecTable{
		orecs:     make([]orec, n),
		mask:      n - 1,
		granShift: granShift,
	}
}

// of maps a word address to its ownership record.
func (t *orecTable) of(addr memory.Addr) *orec {
	return &t.orecs[(uint64(addr)>>t.granShift)&t.mask]
}

// indexOf returns the orec index for addr (used by tests and by
// commit-time deduplication).
func (t *orecTable) indexOf(addr memory.Addr) uint64 {
	return (uint64(addr) >> t.granShift) & t.mask
}
