package core

// txFilter is a bloom-style first-touch filter placed in front of the
// transaction's set-membership lookups (rsFind/wsFind). The overwhelmingly
// common membership query in a large scan is the first touch of an orec or
// address — a lookup that will NOT find anything — and the filter answers
// exactly that case without probing: a clear bit proves the key was never
// added, so the caller skips the find entirely and goes straight to
// append. A set bit proves nothing (false positives are expected and
// harmless); the caller must still confirm through the exact lookup
// before deduplicating.
//
// False negatives, by contrast, would be unsound — the write-set filter
// guards read-after-write, where "definitely not present" is trusted to
// read memory instead of the buffer — so every key ever added to the set
// must be added to the filter, and growth rehashes every key.
//
// Shape: one 64-bit word while the set is small (it rides in the Tx
// struct, zeroed per attempt for free), switching to a growable bitset
// once the entries outgrow the word. The bitset quadruples whenever fill
// exceeds 1/8 — keeping the false-positive rate (≈ fill for a one-hash
// bloom) near 12% — and its backing array is retained across attempts.
//
// The grown bitset is generation-stamped, exactly as txIndex stamps its
// slots: every bitset word carries the generation that last wrote it, a
// word whose stamp is stale reads as all-clear, and reset simply bumps
// the generation — O(1), never an O(words) clear. This is what lets a
// huge transaction (one whose filter grew to cover a large scan) retry
// without re-paying a full-bitset memset per attempt: the backing arrays
// are reused as-is, stale bits from the previous attempt are invisible
// behind their stamps, and only words actually touched by the new
// attempt are lazily cleared on first write.
type txFilter struct {
	word  uint64   // the small filter (used until grown is set)
	bits  []uint64 // growable bitset; len tracks the current size
	gens  []uint64 // per-word generation stamps (parallel to bits)
	gen   uint64   // current generation; a bits word is live iff stamps match
	mask  uint64   // current bitset size in bits - 1 (power of two)
	n     int      // keys added since reset
	grown bool
}

// filterGrowBits is the bitset size installed at the first growth; with
// growth triggered past the small-set thresholds (≤16 keys) the initial
// fill starts around 1/64.
const filterGrowBits = 1024

// reset invalidates the filter in O(1): the small word is re-zeroed
// inline and the grown bitset — if any backing array is retained — is
// invalidated wholesale by bumping the generation.
func (f *txFilter) reset() {
	f.word, f.n, f.grown = 0, 0, false
	f.gen++
}

// bitPos mixes a key into a bit index for the grown bitset. The word
// filter uses the top 6 bits of the same product; the two need not agree
// because growth rehashes everything.
func bitPos(k, mask uint64) uint64 { return ((k * hashMul) >> 32) & mask }

// mayContain reports whether k might have been added since the last
// reset. False positives possible; false negatives impossible (a stale
// generation stamp proves the word was never written this attempt, i.e.
// every one of its bits is clear).
func (f *txFilter) mayContain(k uint64) bool {
	if !f.grown {
		return f.word&(1<<((k*hashMul)>>58)) != 0
	}
	p := bitPos(k, f.mask)
	w := p >> 6
	return f.gens[w] == f.gen && f.bits[w]&(1<<(p&63)) != 0
}

// add records k. smallMax is the caller's small-set threshold: the word
// filter serves up to that many keys (matching the inline-scan regime of
// the guarded set), then the filter grows into the bitset. keys must
// enumerate every key added since reset — growth rehashes through it.
func (f *txFilter) add(k uint64, smallMax int, keys func(yield func(uint64))) {
	f.n++
	if !f.grown {
		if f.n <= smallMax {
			f.word |= 1 << ((k * hashMul) >> 58)
			return
		}
		f.growTo(filterGrowBits)
		keys(f.setBit)
		return
	}
	if uint64(f.n) > (f.mask+1)>>3 {
		f.growTo((f.mask + 1) << 2)
		keys(f.setBit)
		return
	}
	f.setBit(k)
}

func (f *txFilter) setBit(k uint64) {
	p := bitPos(k, f.mask)
	w := p >> 6
	if f.gens[w] != f.gen {
		// First write to this word in the current generation: whatever it
		// holds is stale — clear lazily, one word, exactly when touched.
		f.bits[w] = 0
		f.gens[w] = f.gen
	}
	f.bits[w] |= 1 << (p & 63)
}

// growTo installs a bitset of nbits (a power of two), reusing the backing
// arrays when they are large enough. No clearing happens in either case:
// a fresh generation makes every retained word stale, and fresh arrays
// carry stamp 0, which the generation floor below keeps unreachable.
func (f *txFilter) growTo(nbits uint64) {
	words := int(nbits >> 6)
	if cap(f.bits) < words {
		f.bits = make([]uint64, words)
		f.gens = make([]uint64, words)
	} else {
		f.bits = f.bits[:words]
		f.gens = f.gens[:words]
	}
	// A new geometry (or a reused array) must not see bits set under the
	// old mask as live: advance the generation so every word is stale, and
	// keep it at least 1 so the zero stamps of fresh arrays never match.
	f.gen++
	if f.gen == 0 {
		f.gen = 1
	}
	f.mask = nbits - 1
	f.grown = true
}
