package core

import "fmt"

// AbortCause classifies why a transaction attempt aborted. Per-partition
// abort-cause counters are a key input to the runtime tuner (a partition
// aborting mostly on validation wants visible reads; one aborting on lock
// conflicts wants finer granularity or a different CM).
type AbortCause uint8

const (
	// AbortNone means the transaction did not abort (slot for stats).
	AbortNone AbortCause = iota
	// AbortLockedOnRead: a read found the orec write-locked by another
	// transaction and CM decided against waiting.
	AbortLockedOnRead
	// AbortLockedOnWrite: a write found the orec locked by another
	// transaction.
	AbortLockedOnWrite
	// AbortValidation: read-set validation or snapshot extension failed.
	AbortValidation
	// AbortKilled: another transaction killed us (karma/aggressive CM or
	// a writer draining visible readers).
	AbortKilled
	// AbortReaderWall: a writer yielded to visible readers
	// (WriterYieldsToReaders) and aborted itself.
	AbortReaderWall
	// AbortUpgrade: a transaction started read-only attempted a write and
	// restarts in update mode.
	AbortUpgrade
	// AbortExplicit: user code requested an abort.
	AbortExplicit

	// NumAbortCauses is the size of abort-cause counter arrays.
	NumAbortCauses
)

func (c AbortCause) String() string {
	switch c {
	case AbortNone:
		return "none"
	case AbortLockedOnRead:
		return "locked-on-read"
	case AbortLockedOnWrite:
		return "locked-on-write"
	case AbortValidation:
		return "validation"
	case AbortKilled:
		return "killed"
	case AbortReaderWall:
		return "reader-wall"
	case AbortUpgrade:
		return "upgrade"
	case AbortExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortCause(%d)", uint8(c))
	}
}

// abortSignal is the panic payload used internally to unwind a transaction
// attempt. It never escapes the engine: Engine.Atomic recovers it and
// retries. Using panic/recover for the abort path keeps user code free of
// per-operation error plumbing, which is the established pattern for STM
// retry loops.
type abortSignal struct {
	cause AbortCause
}

// ErrExplicitAbort is returned by AtomicErr when user code calls Tx.Abort.
var ErrExplicitAbort = fmt.Errorf("stm: transaction explicitly aborted")
