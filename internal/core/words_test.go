package core

import (
	"testing"

	"repro/internal/memory"
)

// TestLoadStoreWordsMatchesPerWord checks the multi-word primitives are
// observationally identical to per-word loops across every mode
// combination, including read-after-write interleavings and coarse
// conflict-detection granularity (words sharing an orec).
func TestLoadStoreWordsMatchesPerWord(t *testing.T) {
	for name, cfg := range allModeConfigs() {
		for _, gran := range []uint{0, 3} {
			cfg := cfg
			cfg.GranShift = gran
			t.Run(name+"/gran="+string(rune('0'+gran)), func(t *testing.T) {
				e := newTestEngine(t, cfg)
				th := e.MustAttachThread()
				defer e.DetachThread(th)
				const n = 24
				var base memory.Addr
				th.Atomic(func(tx *Tx) {
					base = tx.Alloc(memory.DefaultSite, n)
					vals := make([]uint64, n)
					for i := range vals {
						vals[i] = uint64(100 + i)
					}
					tx.StoreWords(base, vals)
				})
				th.Atomic(func(tx *Tx) {
					// Committed state readable per word.
					for i := 0; i < n; i++ {
						if got := tx.Load(base + memory.Addr(i)); got != uint64(100+i) {
							t.Fatalf("word %d = %d, want %d", i, got, 100+i)
						}
					}
					// Mix per-word stores with a multi-word read: buffered
					// values must win inside the range.
					tx.Store(base+5, 9999)
					tx.Store(base+11, 8888)
					dst := make([]uint64, n)
					tx.LoadWords(base, dst)
					for i := 0; i < n; i++ {
						want := uint64(100 + i)
						switch i {
						case 5:
							want = 9999
						case 11:
							want = 8888
						}
						if dst[i] != want {
							t.Fatalf("LoadWords[%d] = %d, want %d", i, dst[i], want)
						}
					}
					// Multi-word store then per-word read-after-write.
					tx.StoreWords(base+8, []uint64{1, 2, 3})
					for i, want := range []uint64{1, 2, 3} {
						if got := tx.Load(base + 8 + memory.Addr(i)); got != want {
							t.Fatalf("RAW after StoreWords[%d] = %d, want %d", i, got, want)
						}
					}
				})
				// LoadRange sees the committed state, and early exit stops.
				th.ReadOnlyAtomic(func(tx *Tx) {
					seen := 0
					tx.LoadRange(base, n, func(i int, v uint64) bool {
						seen++
						return i < 3
					})
					if seen != 4 { // i=3 returns false: words 0..3 visited
						t.Fatalf("LoadRange visited %d words after early exit, want 4", seen)
					}
				})
			})
		}
	}
}

// TestWordsAcrossBlocks drives the primitives over an object spanning
// multiple heap blocks (the chunking boundary where the partition lookup
// must be redone).
func TestWordsAcrossBlocks(t *testing.T) {
	arena, err := memory.NewArena(memory.Config{CapacityWords: 1 << 12, BlockShift: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(arena, DefaultPartConfig())
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	const n = 40 // 3 blocks of 16 words
	var base memory.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, n)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) * 3
		}
		tx.StoreWords(base, vals)
	})
	th.ReadOnlyAtomic(func(tx *Tx) {
		dst := make([]uint64, n)
		tx.LoadWords(base, dst)
		for i := range dst {
			if dst[i] != uint64(i)*3 {
				t.Fatalf("word %d = %d, want %d", i, dst[i], i*3)
			}
		}
	})
}

// TestLoadWordsReadSetGrouping pins the amortization contract: a
// multi-word read of words sharing one orec (GranShift > 0) contributes
// one read-set entry per orec, not per word.
func TestLoadWordsReadSetGrouping(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.GranShift = 3 // 8 words per orec
	e := newTestEngine(t, cfg)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	const n = 64
	var base memory.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, n)
		for i := 0; i < n; i++ {
			tx.Store(base+memory.Addr(i), uint64(i))
		}
	})
	ps := e.Partition(GlobalPartition).loadState()
	distinct := make(map[*orec]bool)
	for i := 0; i < n; i++ {
		distinct[ps.table.of(base+memory.Addr(i))] = true
	}
	th.ReadOnlyAtomic(func(tx *Tx) {
		dst := make([]uint64, n)
		tx.LoadWords(base, dst)
		if got := tx.ReadSetLen(); got != len(distinct) {
			t.Fatalf("read set = %d entries for %d distinct orecs", got, len(distinct))
		}
	})
}

// TestSnapshotWordsGroupedReconstruction checks the snapshot-mode range
// read against the grouped store records: a snapshot reader that pinned
// its snapshot before a whole-object overwrite reconstructs the object —
// with the grouped fast path (one index probe for the whole object)
// actually taken, visible in the store's RangeFastHits.
func TestSnapshotWordsGroupedReconstruction(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.HistCap = 1 << 10
	e := newTestEngine(t, cfg)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	const n = 8
	var base memory.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, n)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = 1
		}
		tx.StoreWords(base, vals)
	})

	// Pin a snapshot, then overwrite the whole object from a second
	// thread mid-transaction.
	th2 := e.MustAttachThread()
	defer e.DetachThread(th2)
	var got [n]uint64
	var hits uint64
	e.SnapshotAtomic(th, func(tx *Tx) {
		_ = tx.Load(base) // pin the snapshot at the first access
		done := make(chan struct{})
		go func() {
			defer close(done)
			th2.Atomic(func(tx2 *Tx) {
				newVals := make([]uint64, n)
				for i := range newVals {
					newVals[i] = 2
				}
				tx2.StoreWords(base, newVals)
			})
		}()
		<-done
		tx.LoadWords(base, got[:])
		hits = tx.SnapshotHits()
	})
	for i, v := range got {
		if v != 1 {
			t.Fatalf("snapshot word %d = %d, want the pre-overwrite 1", i, v)
		}
	}
	if hits == 0 {
		t.Fatal("no reads reconstructed from the store")
	}
	st := e.SnapshotHistory(GlobalPartition)
	if st.RangeReads == 0 {
		t.Fatal("range lookup not used")
	}
	if st.RangeFastHits == 0 {
		t.Fatalf("grouped fast path not taken: %+v", st)
	}
	// One probe served the whole tail: strictly fewer probes than words.
	if st.Probes >= uint64(n) {
		t.Fatalf("object reconstruction paid %d index probes for %d words", st.Probes, n)
	}
}
