package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/memory"
)

// newTestEngine builds an engine over a fresh arena with the global
// partition configured by cfg.
func newTestEngine(t testing.TB, cfg PartConfig) *Engine {
	t.Helper()
	arena, err := memory.NewArena(memory.Config{CapacityWords: 1 << 20, BlockShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(arena, cfg)
}

// allModeConfigs enumerates the meaningful (read, acquire, write) mode
// combinations; the protocol tests run under each.
func allModeConfigs() map[string]PartConfig {
	out := make(map[string]PartConfig)
	for _, read := range []ReadMode{InvisibleReads, VisibleReads} {
		for _, mode := range []struct {
			acq AcquireMode
			wr  WriteMode
		}{
			{EncounterTime, WriteBack},
			{EncounterTime, WriteThrough},
			{CommitTime, WriteBack},
		} {
			cfg := DefaultPartConfig()
			cfg.Read = read
			cfg.Acquire = mode.acq
			cfg.Write = mode.wr
			cfg.LockBits = 10
			name := fmt.Sprintf("%s-%s-%s", read, mode.acq, mode.wr)
			out[name] = cfg
		}
	}
	return out
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			th := e.MustAttachThread()
			var a memory.Addr
			th.Atomic(func(tx *Tx) {
				a = tx.Alloc(memory.DefaultSite, 4)
				tx.Store(a, 11)
				tx.Store(a+1, 22)
				if got := tx.Load(a); got != 11 {
					t.Errorf("read-after-write = %d, want 11", got)
				}
				tx.Store(a, 33) // overwrite in same tx
			})
			th.Atomic(func(tx *Tx) {
				if got := tx.Load(a); got != 33 {
					t.Errorf("Load(a) = %d, want 33", got)
				}
				if got := tx.Load(a + 1); got != 22 {
					t.Errorf("Load(a+1) = %d, want 22", got)
				}
			})
		})
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			th := e.MustAttachThread()
			var a memory.Addr
			th.Atomic(func(tx *Tx) {
				a = tx.Alloc(memory.DefaultSite, 1)
				tx.Store(a, 100)
			})
			err := th.AtomicErr(func(tx *Tx) error {
				tx.Store(a, 999)
				return fmt.Errorf("boom")
			})
			if err == nil || err.Error() != "boom" {
				t.Fatalf("AtomicErr = %v, want boom", err)
			}
			th.Atomic(func(tx *Tx) {
				if got := tx.Load(a); got != 100 {
					t.Errorf("aborted write leaked: %d", got)
				}
			})
		})
	}
}

func TestUserPanicRollsBackAndPropagates(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.Write = WriteThrough
	e := newTestEngine(t, cfg)
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 5)
	})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("user panic swallowed")
			}
		}()
		th.Atomic(func(tx *Tx) {
			tx.Store(a, 6)
			panic("user bug")
		})
	}()
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 5 {
			t.Errorf("write-through undo failed: %d", got)
		}
	})
	// The engine must still be usable (locks released).
	th.Atomic(func(tx *Tx) { tx.Store(a, 7) })
}

func TestReadOnlyUpgrade(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 1)
	})
	attempts := 0
	th.ReadOnlyAtomic(func(tx *Tx) {
		attempts++
		tx.Store(a, tx.Load(a)+1) // forces an upgrade on the first attempt
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (RO attempt + upgraded attempt)", attempts)
	}
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 2 {
			t.Errorf("value = %d, want 2", got)
		}
	})
}

func TestConcurrentCounter(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			setup := e.MustAttachThread()
			var a memory.Addr
			setup.Atomic(func(tx *Tx) {
				a = tx.Alloc(memory.DefaultSite, 1)
				tx.Store(a, 0)
			})
			e.DetachThread(setup)

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					for i := 0; i < perG; i++ {
						th.Atomic(func(tx *Tx) {
							tx.Store(a, tx.Load(a)+1)
						})
					}
				}()
			}
			wg.Wait()

			check := e.MustAttachThread()
			check.Atomic(func(tx *Tx) {
				if got := tx.Load(a); got != goroutines*perG {
					t.Errorf("counter = %d, want %d", got, goroutines*perG)
				}
			})
		})
	}
}

// TestSnapshotConsistency keeps the sum of an array constant under
// concurrent transfers and checks that read-only transactions never see a
// broken sum — the fundamental opacity/serializability property.
func TestSnapshotConsistency(t *testing.T) {
	const (
		slots    = 32
		initial  = 1000
		writers  = 4
		readers  = 3
		transfer = 3000
	)
	for name, cfg := range allModeConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newTestEngine(t, cfg)
			setup := e.MustAttachThread()
			var base memory.Addr
			setup.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.DefaultSite, slots)
				for i := 0; i < slots; i++ {
					tx.Store(base+memory.Addr(i), initial)
				}
			})
			e.DetachThread(setup)

			var writerWG, readerWG sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(seed uint64) {
					defer writerWG.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					rng := seed*2654435761 + 1
					for i := 0; i < transfer; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						from := memory.Addr(rng % slots)
						to := memory.Addr((rng >> 8) % slots)
						th.Atomic(func(tx *Tx) {
							v := tx.Load(base + from)
							if v == 0 {
								return
							}
							tx.Store(base+from, v-1)
							tx.Store(base+to, tx.Load(base+to)+1)
						})
					}
				}(uint64(w) + 1)
			}
			errs := make(chan error, readers)
			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					for {
						select {
						case <-stop:
							return
						default:
						}
						var sum uint64
						th.ReadOnlyAtomic(func(tx *Tx) {
							sum = 0
							for i := 0; i < slots; i++ {
								sum += tx.Load(base + memory.Addr(i))
							}
						})
						if sum != slots*initial {
							select {
							case errs <- fmt.Errorf("inconsistent sum %d, want %d", sum, slots*initial):
							default:
							}
							return
						}
					}
				}()
			}
			writerWG.Wait()
			close(stop)
			readerWG.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
		})
	}
}
