package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memory"
)

// TestReadSetBoundedByFootprint is the regression test for read-set
// deduplication: len(tx.rs) must be bounded by the number of unique orecs
// read, no matter how many loads the transaction executes.
func TestReadSetBoundedByFootprint(t *testing.T) {
	cases := []struct {
		name      string
		words     int
		granShift uint
		passes    int
		wantOrecs int
	}{
		// Small footprint: the linear-scan fast path.
		{"small", 8, 0, 100, 8},
		// Large footprint: the open-addressed index path.
		{"large", 200, 0, 20, 200},
		// Several words per orec: the bound is orecs, not addresses.
		{"coarse-grain", 64, 3, 50, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultPartConfig()
			cfg.GranShift = tc.granShift
			e := newTestEngine(t, cfg)
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			var base memory.Addr
			th.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.SiteID(0), tc.words)
				for i := 0; i < tc.words; i++ {
					tx.Store(base+memory.Addr(i), uint64(i))
				}
			})
			th.ReadOnlyAtomic(func(tx *Tx) {
				for p := 0; p < tc.passes; p++ {
					for i := 0; i < tc.words; i++ {
						if got := tx.Load(base + memory.Addr(i)); got != uint64(i) {
							t.Fatalf("load %d = %d", i, got)
						}
					}
				}
				if got := tx.ReadSetLen(); got != tc.wantOrecs {
					t.Fatalf("read set has %d entries after %d loads; want %d (unique orecs)",
						got, tc.passes*tc.words, tc.wantOrecs)
				}
			})
		})
	}
}

// TestWriteSetDedupAllModes checks the open-addressed write-set index in
// all three write modes: one entry per unique address regardless of write
// count, correct read-after-write, and correct committed values — for both
// the inline-probe (≤8 entries) and indexed (larger) regimes.
func TestWriteSetDedupAllModes(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*PartConfig)
	}{
		{"wb", func(c *PartConfig) {}},
		{"wt", func(c *PartConfig) { c.Write = WriteThrough }},
		{"ctl", func(c *PartConfig) { c.Acquire = CommitTime }},
	}
	for _, m := range modes {
		for _, words := range []int{4, 64} {
			name := m.name + "-small"
			if words > wsSmallMax {
				name = m.name + "-large"
			}
			t.Run(name, func(t *testing.T) {
				cfg := DefaultPartConfig()
				m.mut(&cfg)
				e := newTestEngine(t, cfg)
				th := e.MustAttachThread()
				defer e.DetachThread(th)
				var base memory.Addr
				th.Atomic(func(tx *Tx) {
					base = tx.Alloc(memory.SiteID(0), words)
					for i := 0; i < words; i++ {
						tx.Store(base+memory.Addr(i), 0)
					}
				})
				th.Atomic(func(tx *Tx) {
					for round := 0; round < 5; round++ {
						for i := 0; i < words; i++ {
							tx.Store(base+memory.Addr(i), uint64(round*1000+i))
						}
					}
					if got := tx.WriteSetLen(); got != words {
						t.Fatalf("write set has %d entries after %d stores; want %d",
							got, 5*words, words)
					}
					for i := 0; i < words; i++ {
						if got := tx.Load(base + memory.Addr(i)); got != uint64(4000+i) {
							t.Fatalf("read-after-write %d = %d, want %d", i, got, 4000+i)
						}
					}
				})
				th.ReadOnlyAtomic(func(tx *Tx) {
					for i := 0; i < words; i++ {
						if got := tx.Load(base + memory.Addr(i)); got != uint64(4000+i) {
							t.Fatalf("committed %d = %d, want %d", i, got, 4000+i)
						}
					}
				})
			})
		}
	}
}

// TestSpinWaitProducesPause asserts the backoff pause primitive actually
// pauses: the old empty loops were compiled away, making every randomized
// backoff a no-op. Distinct spin counts must produce distinctly long
// pauses. Minimum-over-tries filters scheduler noise.
func TestSpinWaitProducesPause(t *testing.T) {
	minOver := func(n uint64) time.Duration {
		best := time.Duration(1<<63 - 1)
		for try := 0; try < 8; try++ {
			t0 := time.Now()
			spinWait(n)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	zero := minOver(0)
	mid := minOver(1 << 16)
	big := minOver(1 << 20)
	if big < 50*time.Microsecond {
		t.Fatalf("spinWait(1<<20) took %v; the pause loop is being compiled away", big)
	}
	if big < 4*mid {
		t.Fatalf("pause not scaling: spinWait(1<<16)=%v, spinWait(1<<20)=%v", mid, big)
	}
	if zero > mid {
		t.Fatalf("spinWait(0)=%v exceeds spinWait(1<<16)=%v", zero, mid)
	}
}

// TestInstallPlanStatsRace drives transactions, repeated plan installs and
// concurrent stats snapshots; under -race this is the regression test for
// the InstallPlan vs StatsSnapshot data race on the per-thread stats
// slices.
func TestInstallPlanStatsRace(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	sa := sites.Register("race.a")
	sb := sites.Register("race.b")
	var addrs [2]memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *Tx) {
		addrs[0] = tx.Alloc(sa, 4)
		addrs[1] = tx.Alloc(sb, 4)
		for _, a := range addrs {
			for j := 0; j < 4; j++ {
				tx.Store(a+memory.Addr(j), 1)
			}
		}
	})
	e.DetachThread(setup)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := addrs[rng.Intn(2)] + memory.Addr(rng.Intn(4))
				th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}(int64(w) + 1)
	}
	// Monitor: continuous snapshots (the racing reader of the old code).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.AllStats()
			_ = e.StatsSnapshot(GlobalPartition)
		}
	}()
	// Installer: alternately install a two-partition plan and revert.
	full := make([]PartID, sites.Count())
	full[sa], full[sb] = 1, 2
	for i := 0; i < 20; i++ {
		if err := e.InstallPlan(full, []string{"g", "a", "b"},
			[]PartConfig{DefaultPartConfig(), DefaultPartConfig(), DefaultPartConfig()}); err != nil {
			t.Fatal(err)
		}
		if err := e.InstallPlan(make([]PartID, sites.Count()), []string{"g"},
			[]PartConfig{DefaultPartConfig()}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestInstallPlanPreservesStats asserts commit/abort history survives a
// plan install: the old code silently zeroed every counter, making any
// experiment spanning an install under-report throughput.
func TestInstallPlanPreservesStats(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	sa := sites.Register("keep.a")
	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(sa, 1)
		tx.Store(a, 0)
	})
	const n = 500
	for i := 0; i < n; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	total := func() (commits, loads uint64) {
		for _, s := range e.AllStats() {
			commits += s.Commits
			loads += s.Loads
		}
		return
	}
	c0, l0 := total()
	if c0 < n {
		t.Fatalf("precondition: %d commits before install, want >= %d", c0, n)
	}
	full := make([]PartID, sites.Count())
	full[sa] = 1
	if err := e.InstallPlan(full, []string{"g", "a"},
		[]PartConfig{DefaultPartConfig(), DefaultPartConfig()}); err != nil {
		t.Fatal(err)
	}
	c1, l1 := total()
	if c1 != c0 || l1 != l0 {
		t.Fatalf("install dropped history: commits %d -> %d, loads %d -> %d", c0, c1, l0, l1)
	}
	// And the clock keeps running on top of the preserved aggregate.
	for i := 0; i < 100; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	e.DetachThread(th)
	c2, _ := total()
	if c2 < c1+100 {
		t.Fatalf("post-install commits not accumulating: %d -> %d", c1, c2)
	}
}

// TestTortureWriteModes is the write-set-index torture: for each write
// mode (WB, WT, CTL) several workers hammer wide transfers (write sets
// beyond the inline-probe threshold) and full scans (read sets beyond the
// linear fast path) while the total is conserved.
func TestTortureWriteModes(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	modes := []struct {
		name string
		mut  func(*PartConfig)
	}{
		{"wb", func(c *PartConfig) {}},
		{"wt", func(c *PartConfig) { c.Write = WriteThrough }},
		{"ctl", func(c *PartConfig) { c.Acquire = CommitTime }},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultPartConfig()
			cfg.CM = CMBackoff // exercise the repaired pause under load
			m.mut(&cfg)
			e := newTestEngine(t, cfg)
			e.SetYieldEveryOps(16)
			const cells = 64
			const initVal = 1000
			var base memory.Addr
			setup := e.MustAttachThread()
			setup.Atomic(func(tx *Tx) {
				base = tx.Alloc(memory.SiteID(0), cells)
				for i := 0; i < cells; i++ {
					tx.Store(base+memory.Addr(i), initVal)
				}
			})
			e.DetachThread(setup)
			const wantTotal = cells * initVal

			stop := make(chan struct{})
			var badSum atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						if rng.Intn(4) == 0 {
							// Full scan: the sum is invariant.
							th.ReadOnlyAtomic(func(tx *Tx) {
								var sum uint64
								for i := 0; i < cells; i++ {
									sum += tx.Load(base + memory.Addr(i))
								}
								if sum != wantTotal {
									badSum.Add(1)
								}
							})
							continue
						}
						// Wide transfer: move one unit along a 12-cell ring,
						// touching each cell twice (read+write) — a write set
						// past the inline-probe threshold.
						start := rng.Intn(cells)
						th.Atomic(func(tx *Tx) {
							for k := 0; k < 12; k++ {
								src := base + memory.Addr((start+k)%cells)
								dst := base + memory.Addr((start+k+1)%cells)
								v := tx.Load(src)
								if v == 0 {
									return
								}
								tx.Store(src, v-1)
								tx.Store(dst, tx.Load(dst)+1)
							}
						})
					}
				}(int64(w) + 1)
			}
			waitCommits(t, e, 5_000)
			close(stop)
			wg.Wait()
			if n := badSum.Load(); n != 0 {
				t.Fatalf("%d scans observed a broken sum", n)
			}
			check := e.MustAttachThread()
			defer e.DetachThread(check)
			check.Atomic(func(tx *Tx) {
				var sum uint64
				for i := 0; i < cells; i++ {
					sum += tx.Load(base + memory.Addr(i))
				}
				if sum != wantTotal {
					t.Fatalf("final sum %d, want %d", sum, wantTotal)
				}
			})
		})
	}
}
