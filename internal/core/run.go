package core

import (
	"errors"
	"fmt"
)

// ErrMaxAttempts is the sentinel for a MaxAttempts budget exhausted before
// the transaction commits. Run returns a *MaxAttemptsError carrying the
// final abort cause; match with errors.Is(err, ErrMaxAttempts) and dig the
// cause out with errors.As. The attempt that hit the limit has been rolled
// back completely; the caller may simply call Run again to keep trying.
var ErrMaxAttempts = errors.New("core: transaction aborted more than MaxAttempts times")

// MaxAttemptsError is the concrete error Run returns when a MaxAttempts
// budget runs out. It records how many attempts were made and why the last
// one aborted — so a caller can tell a lock-conflict livelock from, say,
// contention-manager kills — while still matching the ErrMaxAttempts
// sentinel through errors.Is.
type MaxAttemptsError struct {
	// Attempts is the number of attempts made (equal to the budget).
	Attempts int
	// Cause is the final attempt's abort cause.
	Cause AbortCause
}

func (e *MaxAttemptsError) Error() string {
	return fmt.Sprintf("core: transaction aborted %d times (last cause: %s)", e.Attempts, e.Cause)
}

// Is makes errors.Is(err, ErrMaxAttempts) succeed on a *MaxAttemptsError.
func (e *MaxAttemptsError) Is(target error) bool { return target == ErrMaxAttempts }

// runCfg is the resolved execution mode of one Run call. The zero value is
// a plain update transaction retried until commit — exactly Atomic.
type runCfg struct {
	readOnly bool
	snap     bool
	// maxAttempts bounds the number of attempts (0 = retry forever). When
	// the bound is hit Run returns ErrMaxAttempts.
	maxAttempts int
	// onAbort, when set, observes every aborted attempt.
	onAbort func(cause AbortCause, attempt int)
}

// TxOpt is a functional option selecting how Run executes a transaction.
// Options compose left to right; conflicting options resolve to the last
// one applied.
type TxOpt func(*runCfg)

// ReadOnly marks the transaction read-only: it takes the read-only fast
// path (no write set, no locks, cheap commit). A write inside the
// transaction restarts it transparently in update mode, so the hint is
// safe even when occasionally wrong.
func ReadOnly() TxOpt {
	return func(c *runCfg) { c.readOnly = true }
}

// Snapshot runs the transaction in snapshot mode (implies ReadOnly): reads
// are answered at a snapshot pinned at the first access, with overwritten
// values reconstructed from the touched partitions' multi-version stores
// (PartConfig.HistCap) — under sufficient retention the transaction never
// validates, extends or aborts, no matter how heavy the write traffic.
// Partitions without a store, evicted records, and writes inside the
// transaction all degrade gracefully (see Engine.SnapshotAtomic).
func Snapshot() TxOpt {
	return func(c *runCfg) { c.readOnly, c.snap = true, true }
}

// MaxAttempts bounds the retry loop: after n aborted attempts Run gives up
// and returns ErrMaxAttempts (n <= 0 means unlimited, the default). Every
// abort cause counts against the budget, including explicit Tx.Abort and
// the internal read-only→update upgrade restart.
func MaxAttempts(n int) TxOpt {
	return func(c *runCfg) { c.maxAttempts = n }
}

// OnAbort installs a hook observing every aborted attempt: it runs after
// the attempt has been rolled back (outside the transaction — it must not
// touch the Tx) with the abort cause and the 1-based attempt number. Use
// it for backpressure, logging, or tests counting retries.
func OnAbort(fn func(cause AbortCause, attempt int)) TxOpt {
	return func(c *runCfg) { c.onAbort = fn }
}

// Run runs fn as a transaction on thread th, in the mode selected by opts,
// retrying on conflict until it commits (or until a MaxAttempts budget is
// exhausted). With no options it is exactly AtomicErr: an update
// transaction retried forever, whose user error aborts and surfaces. This
// is the single entrypoint every other transaction method delegates to.
func (e *Engine) Run(th *Thread, fn func(*Tx) error, opts ...TxOpt) error {
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	return e.run(th, cfg, fn)
}

// Run runs fn as a transaction in the mode selected by opts. See
// Engine.Run; Thread.Atomic and friends are thin wrappers over this.
func (th *Thread) Run(fn func(*Tx) error, opts ...TxOpt) error {
	return th.eng.Run(th, fn, opts...)
}
