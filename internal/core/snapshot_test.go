package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memory"
)

// snapTestSetup builds an engine whose global partition runs cfg, with a
// cells-wide transfer array initialized to initVal per cell.
func snapTestSetup(t *testing.T, cfg PartConfig, cells int, initVal uint64) (*Engine, memory.Addr) {
	t.Helper()
	e := newTestEngine(t, cfg)
	var base memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.SiteID(0), cells)
		for j := 0; j < cells; j++ {
			tx.Store(base+memory.Addr(j), initVal)
		}
	})
	e.DetachThread(setup)
	return e, base
}

// TestSnapshotTortureWriteModes mixes SnapshotAtomic scans with transfer
// transactions in all three write modes. Writers conserve the array sum;
// every snapshot scan must observe exactly that sum — a torn snapshot
// (two instants mixed in one scan) breaks it immediately. The snapshot
// store is sized generously, so under the global time base the scans
// must additionally be abort-free.
func TestSnapshotTortureWriteModes(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	modes := []struct {
		name string
		mut  func(*PartConfig)
	}{
		{"wb", func(c *PartConfig) {}},
		{"wt", func(c *PartConfig) { c.Write = WriteThrough }},
		{"ctl", func(c *PartConfig) { c.Acquire = CommitTime }},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultPartConfig()
			cfg.HistCap = 1 << 16 // ample: a 32-cell scan never outlives the ring
			m.mut(&cfg)
			const cells = 32
			const initVal = 1000
			e, base := snapTestSetup(t, cfg, cells, initVal)
			e.SetYieldEveryOps(16)

			var (
				stop        atomic.Bool
				wg          sync.WaitGroup
				scanAborts  atomic.Uint64
				scans       atomic.Uint64
				sumViolated atomic.Uint64
			)
			const writers = 3
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					rng := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						i := memory.Addr(rng.Intn(cells))
						j := memory.Addr(rng.Intn(cells))
						d := uint64(rng.Intn(5))
						th.Atomic(func(tx *Tx) {
							vi := tx.Load(base + i)
							if vi < d {
								return
							}
							tx.Store(base+i, vi-d)
							tx.Store(base+j, tx.Load(base+j)+d)
						})
					}
				}(int64(w) + 1)
			}
			const readers = 2
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := e.MustAttachThread()
					defer e.DetachThread(th)
					for !stop.Load() {
						attempts := uint64(0)
						th.SnapshotAtomic(func(tx *Tx) {
							attempts++
							var sum uint64
							for j := 0; j < cells; j++ {
								sum += tx.Load(base + memory.Addr(j))
							}
							if sum != cells*initVal {
								sumViolated.Store(sum)
							}
						})
						scans.Add(1)
						scanAborts.Add(attempts - 1)
					}
				}()
			}
			time.Sleep(300 * time.Millisecond)
			stop.Store(true)
			wg.Wait()

			if v := sumViolated.Load(); v != 0 {
				t.Fatalf("snapshot scan observed sum %d, want %d (torn snapshot)", v, cells*initVal)
			}
			if scans.Load() == 0 {
				t.Fatal("no snapshot scans completed")
			}
			if a := scanAborts.Load(); a != 0 {
				t.Errorf("snapshot scans aborted %d times (retention was ample; expected abort-free)", a)
			}
			st := e.StatsSnapshot(GlobalPartition)
			if st.SnapHits == 0 {
				t.Error("no snapshot-store hits recorded under saturating writers")
			}
			hist := e.SnapshotHistory(GlobalPartition)
			if hist.Cap == 0 || hist.Appends == 0 {
				t.Errorf("snapshot store idle: %+v", hist)
			}
		})
	}
}

// TestSnapshotOverflowFallsBack shrinks the store to the minimum ring so
// records the readers need are routinely evicted: scans must stay
// consistent (the validate/extend fallback takes over) and the miss
// counter must move — proving the fallback path actually runs.
func TestSnapshotOverflowFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	cfg := DefaultPartConfig()
	cfg.HistCap = 1 // rounds up to the 8-record minimum ring
	const cells = 64
	const initVal = 500
	e, base := snapTestSetup(t, cfg, cells, initVal)
	e.SetYieldEveryOps(8)

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		bad  atomic.Uint64
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := memory.Addr(rng.Intn(cells))
				j := memory.Addr(rng.Intn(cells))
				th.Atomic(func(tx *Tx) {
					vi := tx.Load(base + i)
					if vi == 0 {
						return
					}
					tx.Store(base+i, vi-1)
					tx.Store(base+j, tx.Load(base+j)+1)
				})
			}
		}(int64(w) + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := e.MustAttachThread()
		defer e.DetachThread(th)
		for !stop.Load() {
			th.SnapshotAtomic(func(tx *Tx) {
				var sum uint64
				for j := 0; j < cells; j++ {
					sum += tx.Load(base + memory.Addr(j))
				}
				if sum != cells*initVal {
					bad.Store(sum)
				}
			})
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if v := bad.Load(); v != 0 {
		t.Fatalf("scan observed sum %d, want %d", v, cells*initVal)
	}
	st := e.StatsSnapshot(GlobalPartition)
	if st.SnapMisses == 0 {
		t.Error("no snapshot-store misses despite a minimum-size ring; overflow fallback untested")
	}
	if st.ROCommits == 0 {
		t.Error("no read-only commits: the fallback path never completed a scan")
	}
}

// TestSnapshotUpgradeOnWrite: a write inside SnapshotAtomic restarts the
// transaction in update mode, like ReadOnlyAtomic.
func TestSnapshotUpgradeOnWrite(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.HistCap = 64
	e, base := snapTestSetup(t, cfg, 4, 7)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	sawSnap, sawUpdate := false, false
	th.SnapshotAtomic(func(tx *Tx) {
		if tx.SnapshotMode() {
			sawSnap = true
		} else {
			sawUpdate = true
		}
		tx.Store(base, tx.Load(base)+1)
	})
	if !sawSnap || !sawUpdate {
		t.Fatalf("snapshot upgrade: first attempt snap=%v, retry update=%v", sawSnap, sawUpdate)
	}
	var v uint64
	th.ReadOnlyAtomic(func(tx *Tx) { v = tx.Load(base) })
	if v != 8 {
		t.Fatalf("upgraded write lost: %d, want 8", v)
	}
	st := e.StatsSnapshot(GlobalPartition)
	if st.Aborts[AbortUpgrade] == 0 {
		t.Fatal("no upgrade abort recorded")
	}
}

// TestSnapshotReadsHistoricalValue pins a snapshot, lets a writer commit
// over the whole array, and checks the snapshot transaction still reads
// the pre-write values from the store (counted as hits).
func TestSnapshotReadsHistoricalValue(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.HistCap = 256
	const cells = 8
	e, base := snapTestSetup(t, cfg, cells, 11)
	reader := e.MustAttachThread()
	writer := e.MustAttachThread()
	defer e.DetachThread(reader)
	defer e.DetachThread(writer)

	var hits uint64
	reader.SnapshotAtomic(func(tx *Tx) {
		// First load pins the snapshot.
		if got := tx.Load(base); got != 11 {
			t.Errorf("cell 0 = %d, want 11", got)
		}
		// A writer commits over every cell AFTER the pin.
		writer.Atomic(func(wtx *Tx) {
			for j := 0; j < cells; j++ {
				wtx.Store(base+memory.Addr(j), 99)
			}
		})
		for j := 1; j < cells; j++ {
			if got := tx.Load(base + memory.Addr(j)); got != 11 {
				t.Errorf("cell %d = %d at pinned snapshot, want 11", j, got)
			}
		}
		hits = tx.SnapshotHits()
	})
	if hits != cells-1 {
		t.Fatalf("snapshot hits = %d, want %d (one per overwritten cell read)", hits, cells-1)
	}
	var now uint64
	reader.ReadOnlyAtomic(func(tx *Tx) { now = tx.Load(base) })
	if now != 99 {
		t.Fatalf("post-snapshot read = %d, want 99", now)
	}
}

// TestInstallPlanSiteKeyedCarryover: when a partition's site membership
// survives a plan install, its statistics follow it to the new PartID
// instead of folding into the global aggregate; changed memberships still
// fold. Engine-wide totals stay monotonic either way.
func TestInstallPlanSiteKeyedCarryover(t *testing.T) {
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	sa := sites.Register("carry.a")
	sb := sites.Register("carry.b")
	install := func(pa, pb PartID, names []string) {
		t.Helper()
		full := make([]PartID, sites.Count())
		full[sa], full[sb] = pa, pb
		cfgs := make([]PartConfig, len(names))
		for i := range cfgs {
			cfgs[i] = DefaultPartConfig()
		}
		if err := e.InstallPlan(full, names, cfgs); err != nil {
			t.Fatal(err)
		}
	}
	install(1, 2, []string{"g", "a", "b"})

	th := e.MustAttachThread()
	var aAddr, bAddr memory.Addr
	th.Atomic(func(tx *Tx) {
		aAddr = tx.Alloc(sa, 1)
		bAddr = tx.Alloc(sb, 1)
		tx.Store(aAddr, 0)
		tx.Store(bAddr, 0)
	})
	const nA, nB = 300, 100
	for i := 0; i < nA; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(aAddr, tx.Load(aAddr)+1) })
	}
	for i := 0; i < nB; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(bAddr, tx.Load(bAddr)+1) })
	}
	aBefore := e.StatsSnapshot(1).Commits
	bBefore := e.StatsSnapshot(2).Commits
	if aBefore < nA || bBefore < nB {
		t.Fatalf("precondition: a=%d b=%d commits", aBefore, bBefore)
	}
	totalBefore := func() uint64 {
		var c uint64
		for _, s := range e.AllStats() {
			c += s.Commits
		}
		return c
	}()

	// Reinstall with partition ids swapped: site membership is identity,
	// so a's history must land on the NEW id owning site a (now 2), and
	// b's on 1.
	install(2, 1, []string{"g", "bb", "aa"})
	if got := e.StatsSnapshot(2).Commits; got != aBefore {
		t.Errorf("site-a partition carried %d commits, want %d", got, aBefore)
	}
	if got := e.StatsSnapshot(1).Commits; got != bBefore {
		t.Errorf("site-b partition carried %d commits, want %d", got, bBefore)
	}

	// Merge both sites into one partition: membership changed, history
	// folds into the global aggregate; totals must not drop.
	install(1, 1, []string{"g", "ab"})
	if got := e.StatsSnapshot(GlobalPartition).Commits; got < aBefore+bBefore {
		t.Errorf("global aggregate %d lost folded history (want >= %d)", got, aBefore+bBefore)
	}
	totalAfter := func() uint64 {
		var c uint64
		for _, s := range e.AllStats() {
			c += s.Commits
		}
		return c
	}()
	if totalAfter < totalBefore {
		t.Errorf("engine-wide commits dropped across installs: %d -> %d", totalBefore, totalAfter)
	}
	e.DetachThread(th)
}
