package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memory"
)

// TestTortureMixedEverything is the kitchen-sink stress test: several
// partitions with heterogeneous configurations, workers running transfer
// rings, long scans, allocation churn and explicit aborts, while a
// control goroutine keeps reconfiguring partitions (visibility flips,
// geometry changes, CM changes) under load. One invariant decides
// everything: the global sum across all cells never changes, observed by
// every scan and verified at the end.
func TestTortureMixedEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in -short mode")
	}
	e := newTestEngine(t, DefaultPartConfig())
	e.SetYieldEveryOps(16)
	sites := e.Arena().Sites()
	const nParts = 4
	var siteIDs [nParts]memory.SiteID
	names := []string{"g"}
	cfgs := []PartConfig{DefaultPartConfig()}
	for i := 0; i < nParts; i++ {
		siteIDs[i] = sites.Register("torture." + string(rune('a'+i)))
		names = append(names, "torture."+string(rune('a'+i)))
		cfg := DefaultPartConfig()
		switch i % 4 {
		case 1:
			cfg.Read = VisibleReads
			cfg.ReaderCM = WriterYieldsToReaders
		case 2:
			cfg.Write = WriteThrough
			cfg.CM = CMTimestamp
		case 3:
			cfg.Acquire = CommitTime
			cfg.LockBits = 6
			cfg.GranShift = 2
		}
		cfgs = append(cfgs, cfg)
	}
	full := make([]PartID, sites.Count())
	for i := 0; i < nParts; i++ {
		full[siteIDs[i]] = PartID(i + 1)
	}
	if err := e.InstallPlan(full, names, cfgs); err != nil {
		t.Fatal(err)
	}

	// One cell array per partition; ring transfers cross partitions.
	const cellsPer = 16
	const initVal = 100
	var bases [nParts]memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *Tx) {
		for i := 0; i < nParts; i++ {
			bases[i] = tx.Alloc(siteIDs[i], cellsPer)
			for j := 0; j < cellsPer; j++ {
				tx.Store(bases[i]+memory.Addr(j), initVal)
			}
		}
	})
	e.DetachThread(setup)
	const wantTotal = nParts * cellsPer * initVal

	stop := make(chan struct{})
	var badSum atomic.Uint64
	var wg sync.WaitGroup

	// Workers: transfers, scans, churn, explicit aborts.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // cross-partition transfer
					fp, tp := rng.Intn(nParts), rng.Intn(nParts)
					fc, tc := rng.Intn(cellsPer), rng.Intn(cellsPer)
					amt := uint64(rng.Intn(5) + 1)
					th.Atomic(func(tx *Tx) {
						src := bases[fp] + memory.Addr(fc)
						dst := bases[tp] + memory.Addr(tc)
						if src == dst {
							return
						}
						v := tx.Load(src)
						if v < amt {
							return
						}
						tx.Store(src, v-amt)
						tx.Store(dst, tx.Load(dst)+amt)
					})
				case 6, 7: // full read-only scan: sum must be exact
					th.ReadOnlyAtomic(func(tx *Tx) {
						var sum uint64
						for p := 0; p < nParts; p++ {
							for j := 0; j < cellsPer; j++ {
								sum += tx.Load(bases[p] + memory.Addr(j))
							}
						}
						if sum != wantTotal {
							badSum.Add(1)
						}
					})
				case 8: // allocation churn in a random partition
					p := rng.Intn(nParts)
					th.Atomic(func(tx *Tx) {
						a := tx.Alloc(siteIDs[p], 4)
						tx.Store(a, 1)
						tx.Free(a, 4)
					})
				default: // doomed transaction: writes then aborts via user error
					p := rng.Intn(nParts)
					c := rng.Intn(cellsPer)
					_ = th.AtomicErr(func(tx *Tx) error {
						a := bases[p] + memory.Addr(c)
						tx.Store(a, tx.Load(a)+1_000_000) // would break the sum
						return ErrExplicitAbort           // ...but never commits
					})
				}
				_ = i
			}
		}(int64(w) + 1)
	}

	// Controller: random reconfigurations under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := PartID(rng.Intn(nParts) + 1)
			cfg := e.Partition(id).Config()
			switch rng.Intn(4) {
			case 0:
				if cfg.Read == InvisibleReads {
					cfg.Read = VisibleReads
					cfg.ReaderCM = WriterYieldsToReaders
				} else {
					cfg.Read = InvisibleReads
				}
			case 1:
				cfg.LockBits = uint(4 + rng.Intn(10))
			case 2:
				cfg.GranShift = uint(rng.Intn(4))
			default:
				cfg.CM = []CMPolicy{CMSuicide, CMSpin, CMKarma, CMTimestamp, CMBackoff}[rng.Intn(5)]
			}
			if err := e.Reconfigure(id, cfg); err != nil {
				t.Errorf("reconfigure: %v", err)
				return
			}
		}
	}()

	// Let it cook briefly, then stop.
	waitCommits(t, e, 10_000)
	close(stop)
	wg.Wait()

	if n := badSum.Load(); n != 0 {
		t.Fatalf("%d scans observed a broken global sum", n)
	}
	check := e.MustAttachThread()
	defer e.DetachThread(check)
	check.Atomic(func(tx *Tx) {
		var sum uint64
		for p := 0; p < nParts; p++ {
			for j := 0; j < cellsPer; j++ {
				sum += tx.Load(bases[p] + memory.Addr(j))
			}
		}
		if sum != wantTotal {
			t.Fatalf("final sum %d, want %d", sum, wantTotal)
		}
	})
	// No locks or reader bits may survive quiescence.
	for _, p := range e.Partitions() {
		ps := p.loadState()
		for i := range ps.table.orecs {
			if l := ps.table.orecs[i].lock.Load(); isLocked(l) {
				t.Fatalf("partition %s orec %d leaked lock", p.Name(), i)
			}
			if r := ps.table.orecs[i].readers.Load(); r != 0 {
				t.Fatalf("partition %s orec %d leaked readers %b", p.Name(), i, r)
			}
		}
	}
}

// waitCommits polls until the engine has accumulated at least n commits
// across all partitions (bounded by test timeout). It sleeps between
// polls: AllStats takes the registry lock, and a tight polling loop
// starves the workers it is waiting for on small hosts.
func waitCommits(t *testing.T, e *Engine, n uint64) {
	t.Helper()
	for {
		var total uint64
		for _, s := range e.AllStats() {
			total += s.Commits
		}
		if total >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
