// Package core implements the software transactional memory engine: a
// word-based STM in the TinySTM family (global version clock, versioned
// ownership records, lazy snapshot validation with extension) extended with
// per-partition concurrency control as described in Riegel, Fetzer and
// Felber, "Automatic Data Partitioning in Software Transactional
// Memories" (SPAA 2008).
//
// Every partition owns its own ownership-record table and its own
// configuration: read visibility (invisible, timestamp-validated reads vs.
// visible reads through per-orec reader bitmaps), lock acquisition time
// (encounter-time vs. commit-time), write strategy (write-back buffering
// vs. write-through with an undo log), conflict-detection granularity
// (lock-array size and words-per-lock), and contention-management policy.
//
// Commit time itself is a pluggable policy (internal/clock): the default
// global counter keeps all partitions on one shared timeline, while the
// partition-local time base gives every partition its own commit counter
// and keeps cross-partition transactions serializable through snapshot
// alignment and commit-time validation. See TimeBaseMode.
//
// Transactions run through Engine.Run (Thread.Run), the single
// options-driven entrypoint: TxOpt functional options select read-only,
// snapshot, bounded-retry (MaxAttempts) and abort-observing (OnAbort)
// behaviour, and the legacy Atomic/ReadOnlyAtomic/SnapshotAtomic
// entrypoints are thin wrappers over it. Word access is single
// (Tx.Load/Store) or multi-word (Tx.LoadWords/StoreWords/LoadRange); the
// multi-word forms pay per-access overhead once per object and handle
// words sharing an orec with one protocol round trip — the primitives
// behind the public typed object layer (stm.Ref).
//
// Per-transaction bookkeeping is footprint-bounded: the read set is
// deduplicated per orec and the write set holds one entry per unique
// address, so validation, extension and commit cost scale with the unique
// locations a transaction touches, never with the operations it executes.
// Set-membership lookups run as inline linear scans while sets are small
// and through generation-stamped open-addressed indexes (txIndex) beyond;
// a bloom-style first-touch filter (txFilter) in front of both makes the
// dominant query of a large scan — "is this orec/address new to me?" —
// answer without probing at all (a clear bit proves first touch; a set
// bit still confirms through the exact lookup). Commit-time validation is
// skipped when no foreign commit has landed in the footprint (the TL2
// rule, generalized per partition). See tx.go, txindex.go and
// txfilter.go.
//
// Partitions may additionally retain a bounded multi-version history of
// overwritten values (PartConfig.HistCap, internal/mvstore), indexed by
// address so both hits and misses cost O(1) in the ring capacity.
// Read-only transactions run in snapshot mode (Engine.SnapshotAtomic)
// then pin their snapshot and reconstruct any location a writer has
// since committed over from that history instead of extending or
// aborting — abort-free read-only transactions under write traffic,
// degrading to the ordinary validate/extend path when a needed record
// has been evicted. Commits publish their history records in one batch
// per written partition.
package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mvstore"
)

// TimeBaseMode selects the engine's commit time base (see internal/clock
// for the implementations and their protocol contracts).
type TimeBaseMode = clock.Mode

const (
	// TimeBaseGlobal is the single shared commit counter — the default,
	// with exact TL2/TinySTM semantics. Every update commit performs one
	// shared read-modify-write.
	TimeBaseGlobal = clock.ModeGlobal
	// TimeBasePartitionLocal gives each partition its own commit counter
	// plus a global cross-partition epoch. Update commits confined to one
	// partition never touch shared clock state; transactions spanning
	// partitions pay snapshot alignment and commit-time validation.
	TimeBasePartitionLocal = clock.ModePartitionLocal
)

// ReadMode selects how a partition's reads are performed.
type ReadMode uint8

const (
	// InvisibleReads uses timestamp-validated invisible reads: a reader
	// leaves no trace at the orec and validates its read set against the
	// global clock (with snapshot extension). Cheap for read-dominated
	// partitions; wasted work under heavy write contention, because
	// conflicts surface only at validation time.
	InvisibleReads ReadMode = iota
	// VisibleReads registers the reader in the orec's reader bitmap, so
	// writers detect read-write conflicts eagerly. More expensive per
	// read (a shared-memory RMW) but avoids doomed executions in
	// update-heavy, contended partitions.
	VisibleReads
)

func (m ReadMode) String() string {
	switch m {
	case InvisibleReads:
		return "invisible"
	case VisibleReads:
		return "visible"
	default:
		return fmt.Sprintf("ReadMode(%d)", uint8(m))
	}
}

// AcquireMode selects when write locks are taken.
type AcquireMode uint8

const (
	// EncounterTime acquires the orec at first write (eager; conflicts
	// detected early, as in TinySTM's default).
	EncounterTime AcquireMode = iota
	// CommitTime buffers writes and acquires all orecs at commit (lazy;
	// short lock hold times, doomed transactions run longer).
	CommitTime
)

func (m AcquireMode) String() string {
	switch m {
	case EncounterTime:
		return "encounter"
	case CommitTime:
		return "commit"
	default:
		return fmt.Sprintf("AcquireMode(%d)", uint8(m))
	}
}

// WriteMode selects how writes reach memory (meaningful only with
// EncounterTime; CommitTime implies write-back buffering).
type WriteMode uint8

const (
	// WriteBack buffers new values in the write set and applies them at
	// commit.
	WriteBack WriteMode = iota
	// WriteThrough writes in place under the orec lock and keeps an undo
	// log for abort. Cheaper commits, dearer aborts.
	WriteThrough
)

func (m WriteMode) String() string {
	switch m {
	case WriteBack:
		return "write-back"
	case WriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("WriteMode(%d)", uint8(m))
	}
}

// CMPolicy is the contention-management policy applied when a transaction
// finds an orec locked by another transaction.
type CMPolicy uint8

const (
	// CMSuicide aborts the requesting transaction immediately.
	CMSuicide CMPolicy = iota
	// CMSpin spins for the partition's SpinBudget, then aborts self.
	CMSpin
	// CMKarma compares accumulated work (reads+writes); the transaction
	// with less work yields: if the requester has strictly more work it
	// kills the owner, otherwise it aborts itself.
	CMKarma
	// CMAggressive kills the lock owner and takes the lock.
	CMAggressive
	// CMBackoff waits with randomized exponential backoff between probes
	// of the lock word, aborting itself when the budget is exhausted.
	// Compared to CMSpin's tight polling it trades latency for much less
	// cache-line traffic on hot orecs.
	CMBackoff
	// CMTimestamp is Greedy-style older-wins arbitration: the transaction
	// with the older begin ordinal has priority. A younger requester waits
	// briefly and aborts itself; an older requester kills the owner. The
	// strictly increasing ordinal gives livelock freedom: the oldest
	// transaction in the system is never killed by this policy.
	CMTimestamp
)

func (p CMPolicy) String() string {
	switch p {
	case CMSuicide:
		return "suicide"
	case CMSpin:
		return "spin"
	case CMKarma:
		return "karma"
	case CMAggressive:
		return "aggressive"
	case CMBackoff:
		return "backoff"
	case CMTimestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("CMPolicy(%d)", uint8(p))
	}
}

// ReaderPolicy arbitrates between a writer acquiring an orec and the
// visible readers registered at it.
type ReaderPolicy uint8

const (
	// WriterKillsReaders kills all visible readers and waits for their
	// bits to drain (writer priority — matches update-heavy partitions
	// where writers must make progress).
	WriterKillsReaders ReaderPolicy = iota
	// WriterYieldsToReaders waits briefly for readers to finish, then
	// releases the lock and aborts itself (reader priority).
	WriterYieldsToReaders
)

func (p ReaderPolicy) String() string {
	switch p {
	case WriterKillsReaders:
		return "writer-kills"
	case WriterYieldsToReaders:
		return "writer-yields"
	default:
		return fmt.Sprintf("ReaderPolicy(%d)", uint8(p))
	}
}

// PartConfig is the complete concurrency-control configuration of one
// partition. The runtime tuner mutates these per partition; a single
// global STM corresponds to one partition holding everything.
type PartConfig struct {
	Read    ReadMode
	Acquire AcquireMode
	Write   WriteMode
	// LockBits: the partition's orec table has 1<<LockBits entries.
	LockBits uint
	// GranShift: 1<<GranShift consecutive words share one orec
	// (conflict-detection granularity).
	GranShift uint
	// CM is the lock-conflict policy.
	CM CMPolicy
	// ReaderCM arbitrates writers against visible readers.
	ReaderCM ReaderPolicy
	// SpinBudget bounds CM wait loops (iterations).
	SpinBudget int
	// HistCap, when nonzero, attaches a multi-version snapshot store of
	// that many overwrite records to the partition (internal/mvstore):
	// update commits append the values they overwrite, and read-only
	// transactions in snapshot mode (Thread.SnapshotAtomic) reconstruct
	// reads at their pinned snapshot from it instead of extending or
	// aborting. 0 disables the store (and with it any append cost on the
	// commit path). Capacity is rounded up to a power of two and clamped
	// to mvstore.MaxCap (Normalize applies the same ceiling, so the
	// store's round-up loop can never be fed a value that overflows it).
	HistCap uint
}

// DefaultPartConfig mirrors TinySTM's defaults: encounter-time locking,
// write-back, invisible reads, 2^16 orecs mapping one word per orec
// stripe, bounded spinning.
func DefaultPartConfig() PartConfig {
	return PartConfig{
		Read:       InvisibleReads,
		Acquire:    EncounterTime,
		Write:      WriteBack,
		LockBits:   16,
		GranShift:  0,
		CM:         CMSpin,
		ReaderCM:   WriterKillsReaders,
		SpinBudget: 128,
	}
}

// Normalize clamps invalid combinations and ranges; it returns the
// effective configuration the engine will run.
func (c PartConfig) Normalize() PartConfig {
	if c.Acquire == CommitTime {
		c.Write = WriteBack // commit-time locking cannot write through
	}
	if c.LockBits < 2 {
		c.LockBits = 2
	}
	if c.LockBits > 24 {
		c.LockBits = 24
	}
	if c.GranShift > 16 {
		c.GranShift = 16
	}
	if c.SpinBudget <= 0 {
		c.SpinBudget = 128
	}
	if c.HistCap > mvstore.MaxCap {
		// Keep in lockstep with the store's own clamp: mvstore.New rounds
		// capacity up to a power of two, and an unbounded request would
		// overflow that loop (see mvstore.MaxCap).
		c.HistCap = mvstore.MaxCap
	}
	return c
}

// String renders the configuration compactly, e.g.
// "invisible/encounter/write-back lockBits=16 gran=1 cm=spin".
func (c PartConfig) String() string {
	s := fmt.Sprintf("%s/%s/%s lockBits=%d gran=%d cm=%s rcm=%s",
		c.Read, c.Acquire, c.Write, c.LockBits, uint64(1)<<c.GranShift, c.CM, c.ReaderCM)
	if c.HistCap > 0 {
		s += fmt.Sprintf(" hist=%d", c.HistCap)
	}
	return s
}
