package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// installFourConfigPlan builds an engine with four partitions covering the
// configuration space: invisible/WB (default), visible/WB, invisible/WT
// and CTL. Returns the engine and one allocation site per partition.
func installFourConfigPlan(t *testing.T) (*Engine, [4]memory.SiteID) {
	t.Helper()
	e := newTestEngine(t, DefaultPartConfig())
	sites := e.Arena().Sites()
	var s [4]memory.SiteID
	s[0] = sites.Register("m.invwb")
	s[1] = sites.Register("m.viswb")
	s[2] = sites.Register("m.invwt")
	s[3] = sites.Register("m.ctl")

	vis := DefaultPartConfig()
	vis.Read = VisibleReads
	wt := DefaultPartConfig()
	wt.Write = WriteThrough
	ctl := DefaultPartConfig()
	ctl.Acquire = CommitTime

	sitePart := make([]PartID, sites.Count())
	sitePart[s[0]] = 1
	sitePart[s[1]] = 2
	sitePart[s[2]] = 3
	sitePart[s[3]] = 4
	if err := e.InstallPlan(sitePart,
		[]string{"g", "invwb", "viswb", "invwt", "ctl"},
		[]PartConfig{DefaultPartConfig(), DefaultPartConfig(), vis, wt, ctl}); err != nil {
		t.Fatal(err)
	}
	return e, s
}

// TestFourConfigRingConservation runs ring transfers across four
// partitions with four different concurrency-control configurations in a
// single transaction, while read-only auditors check the cross-partition
// sum. This is the strongest mixed-mode property: one serializable
// timeline across heterogeneous protocols.
func TestFourConfigRingConservation(t *testing.T) {
	e, s := installFourConfigPlan(t)
	setup := e.MustAttachThread()
	var cells [4]memory.Addr
	const perCell = 1000
	setup.Atomic(func(tx *Tx) {
		for i, site := range s {
			cells[i] = tx.Alloc(site, 1)
			tx.Store(cells[i], perCell)
		}
	})
	e.DetachThread(setup)

	const workers, iters = 6, 1500
	var bad atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < iters; i++ {
				if id%3 == 2 {
					th.ReadOnlyAtomic(func(tx *Tx) {
						var sum uint64
						for _, c := range cells {
							sum += tx.Load(c)
						}
						if sum != 4*perCell {
							bad.Add(1)
						}
					})
					continue
				}
				from := (id + i) % 4
				to := (from + 1) % 4
				th.Atomic(func(tx *Tx) {
					v := tx.Load(cells[from])
					if v == 0 {
						return
					}
					tx.Store(cells[from], v-1)
					tx.Store(cells[to], tx.Load(cells[to])+1)
				})
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d auditors saw a broken four-partition sum", n)
	}
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		var sum uint64
		for _, c := range cells {
			sum += tx.Load(c)
		}
		if sum != 4*perCell {
			t.Fatalf("final sum = %d, want %d", sum, 4*perCell)
		}
	})
}

// TestGranularityAliasingCorrectness uses a deliberately tiny, coarse orec
// table (4 orecs, 16 words per orec) so that distinct words constantly
// alias to the same orec. False conflicts may cost throughput but must
// never cost updates.
func TestGranularityAliasingCorrectness(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.LockBits = 2
	cfg.GranShift = 4
	e := newTestEngine(t, cfg)
	setup := e.MustAttachThread()
	const slots = 64
	var base memory.Addr
	setup.Atomic(func(tx *Tx) {
		base = tx.Alloc(memory.DefaultSite, slots)
		for i := 0; i < slots; i++ {
			tx.Store(base+memory.Addr(i), 0)
		}
	})
	e.DetachThread(setup)

	const workers, perW = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				slot := memory.Addr((id*perW + i) % slots)
				th.Atomic(func(tx *Tx) {
					tx.Store(base+slot, tx.Load(base+slot)+1)
				})
			}
		}(w)
	}
	wg.Wait()
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		var sum uint64
		for i := 0; i < slots; i++ {
			sum += tx.Load(base + memory.Addr(i))
		}
		if sum != workers*perW {
			t.Fatalf("sum = %d, want %d (updates lost to aliasing)", sum, workers*perW)
		}
	})
}

// TestCTLSymmetricOrders has workers updating the same pair of words in
// opposite program orders under commit-time locking. Address-ordered
// commit acquisition must prevent both deadlock and lost updates.
func TestCTLSymmetricOrders(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.Acquire = CommitTime
	e := newTestEngine(t, cfg)
	setup := e.MustAttachThread()
	var a, b memory.Addr
	setup.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		b = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
		tx.Store(b, 0)
	})
	e.DetachThread(setup)

	const workers, perW = 6, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < perW; i++ {
				if id%2 == 0 {
					th.Atomic(func(tx *Tx) {
						tx.Store(a, tx.Load(a)+1)
						tx.Store(b, tx.Load(b)+1)
					})
				} else {
					th.Atomic(func(tx *Tx) {
						tx.Store(b, tx.Load(b)+1)
						tx.Store(a, tx.Load(a)+1)
					})
				}
			}
		}(w)
	}
	wg.Wait()
	check := e.MustAttachThread()
	check.Atomic(func(tx *Tx) {
		va, vb := tx.Load(a), tx.Load(b)
		if va != workers*perW || vb != workers*perW {
			t.Fatalf("a=%d b=%d, want both %d", va, vb, workers*perW)
		}
	})
}

// TestWriteThroughUndoVisibility verifies a write-through transaction that
// aborts restores pre-images before anyone can commit against them: a
// concurrent reader may never observe the doomed intermediate value.
func TestWriteThroughUndoVisibility(t *testing.T) {
	cfg := DefaultPartConfig()
	cfg.Write = WriteThrough
	e := newTestEngine(t, cfg)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 7)
	})
	attempts := 0
	err := th.AtomicErr(func(tx *Tx) error {
		attempts++
		tx.Store(a, 999) // written in place under lock
		return ErrExplicitAbort
	})
	if err == nil {
		t.Fatal("expected user error")
	}
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 7 {
			t.Fatalf("pre-image not restored: %d", got)
		}
	})
	if attempts != 1 {
		t.Fatalf("user-error abort retried: attempts=%d", attempts)
	}
}

// TestMixedVisibilityOpacity runs writers that update one word in a
// visible-reads partition and one in an invisible-reads partition
// atomically, with readers loading them in both orders; every reader must
// see the two words equal (single snapshot across modes).
func TestMixedVisibilityOpacity(t *testing.T) {
	e, s := installFourConfigPlan(t)
	setup := e.MustAttachThread()
	var inv, vis memory.Addr
	setup.Atomic(func(tx *Tx) {
		inv = tx.Alloc(s[0], 1) // invisible/WB partition
		vis = tx.Alloc(s[1], 1) // visible/WB partition
		tx.Store(inv, 0)
		tx.Store(vis, 0)
	})
	e.DetachThread(setup)

	stop := make(chan struct{})
	var writerWg, wg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		th := e.MustAttachThread()
		defer e.DetachThread(th)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			th.Atomic(func(tx *Tx) {
				v := tx.Load(inv) + 1
				tx.Store(inv, v)
				tx.Store(vis, v)
			})
		}
	}()

	var torn atomic.Uint64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(flip bool) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			for i := 0; i < 2000; i++ {
				th.Atomic(func(tx *Tx) {
					var x, y uint64
					if flip {
						x, y = tx.Load(vis), tx.Load(inv)
					} else {
						x, y = tx.Load(inv), tx.Load(vis)
					}
					if x != y {
						torn.Add(1)
					}
				})
			}
		}(w%2 == 0)
	}
	wg.Wait()
	close(stop)
	writerWg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d readers saw a torn mixed-visibility snapshot", n)
	}
}

// TestMixedModeSequentialEquivalence is the property test: any sequence of
// single-threaded transfers over the four heterogeneous partitions leaves
// exactly the balance a plain model computes.
func TestMixedModeSequentialEquivalence(t *testing.T) {
	e, s := installFourConfigPlan(t)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var cells [4]memory.Addr
	th.Atomic(func(tx *Tx) {
		for i, site := range s {
			cells[i] = tx.Alloc(site, 1)
			tx.Store(cells[i], 100)
		}
	})
	model := [4]uint64{100, 100, 100, 100}

	f := func(moves []uint16) bool {
		for _, m := range moves {
			from := int(m) % 4
			to := int(m>>2) % 4
			amt := uint64(m>>4) % 8
			th.Atomic(func(tx *Tx) {
				v := tx.Load(cells[from])
				if v < amt {
					return
				}
				tx.Store(cells[from], v-amt)
				tx.Store(cells[to], tx.Load(cells[to])+amt)
			})
			if model[from] >= amt {
				model[from] -= amt
				model[to] += amt
			}
		}
		ok := true
		th.Atomic(func(tx *Tx) {
			for i := range cells {
				if tx.Load(cells[i]) != model[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
