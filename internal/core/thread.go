package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/memory"
)

// MaxThreads is the maximum number of concurrently attached threads. The
// bound comes from the visible-reader bitmap: one bit per thread slot in a
// 64-bit word, exactly as in reader-bitmap STM designs.
const MaxThreads = 64

// cacheLine is the assumed coherence granule for the padding that keeps
// the Thread's cross-thread control words off the owner's hot state.
const cacheLine = 64

// Thread is a per-goroutine transaction context. Pinned workers attach
// one explicitly (Engine.AttachThread) and run transactions through
// Thread.Run; ordinary goroutines never see one — Engine.RunPooled (the
// facade's Runtime.Run) borrows a pooled Thread per call. A Thread must
// not be shared across goroutines.
//
// Layout: the owner-private fields come first; the control words that
// cross thread boundaries are split into two cache-line-padded groups so
// that (a) a contender's kill store never invalidates the line the owner
// rewrites on every operation (progress), and (b) neither group shares a
// line with the owner-hot Tx state behind it.
type Thread struct {
	eng  *Engine
	slot int
	// pooled marks Threads owned by the engine's slot pool: they are
	// attached once, borrowed and returned by RunPooled, and never
	// detached (DetachThread rejects them).
	pooled bool

	alloc *memory.Allocator

	// stats points to this thread's per-partition counter blocks. The
	// engine replaces the slice (under the registry lock, during quiescence)
	// when a plan install changes the partition count; monitor threads
	// (tuner, StatsSnapshot) read it concurrently with the owning thread's
	// increments, hence the atomic pointer. Counters of a replaced slice
	// are folded into the engine's retired aggregate so history survives
	// plan installs.
	stats atomic.Pointer[[]PartThreadStats]

	rng uint64 // xorshift state for backoff jitter

	_ [cacheLine]byte
	// Owner-written, cross-thread-read: active gates quiescence, progress
	// and beginSeq feed karma/timestamp arbitration in other threads.
	// progress is rewritten every transactional operation, so this line
	// must hold nothing any other thread writes.
	active   atomic.Uint32
	progress atomic.Uint64
	// beginSeq is the transaction's begin ordinal, assigned once per
	// top-level transaction (not per attempt) so that CMTimestamp's
	// older-wins arbitration gives long-retrying transactions priority.
	beginSeq atomic.Uint64
	_        [cacheLine - 20]byte

	// killed is the one word other threads write (contention managers'
	// kill); polled at every transactional operation and at commit. It
	// gets a line of its own so a kill storm against this thread does not
	// bounce the owner-written line above.
	killed atomic.Uint32
	_      [cacheLine - 4]byte

	tx Tx // reusable transaction descriptor
}

// Slot returns the thread's slot index (0..MaxThreads-1).
func (th *Thread) Slot() int { return th.slot }

// Engine returns the engine this thread is attached to.
func (th *Thread) Engine() *Engine { return th.eng }

// Allocator returns the thread-local heap allocator.
func (th *Thread) Allocator() *memory.Allocator { return th.alloc }

// readerBit returns this thread's bit in visible-reader bitmaps.
func (th *Thread) readerBit() uint64 { return uint64(1) << uint(th.slot) }

// kill asks the thread to abort its current transaction attempt. Safe to
// call from any thread; the target polls the flag at its next STM
// operation or at commit.
func (th *Thread) kill() { th.killed.Store(1) }

// nextRand is a small xorshift64* generator for backoff jitter.
func (th *Thread) nextRand() uint64 {
	x := th.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	th.rng = x
	return x * 0x2545F4914F6CDD1D
}

// enterGate marks the thread active, honoring the engine's quiescence
// gate: if a reconfiguration is pending, the thread parks until the gate
// reopens. The store-then-check order pairs with the gate-then-wait order
// in Engine.quiesce (sequentially consistent atomics).
func (th *Thread) enterGate() {
	for {
		th.active.Store(1)
		if th.eng.gate.Load() == 0 {
			return
		}
		th.active.Store(0)
		for th.eng.gate.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// exitGate marks the thread idle.
func (th *Thread) exitGate() { th.active.Store(0) }

// statsFor returns this thread's counter block for partition p.
func (th *Thread) statsFor(p PartID) *PartThreadStats {
	return &(*th.stats.Load())[p]
}

// Atomic runs fn as a transaction, retrying on conflict until it commits.
// See Engine.Atomic.
//
// Deprecated: equivalent to Run with no options (modulo fn's missing
// error return). Kept as a thin wrapper; new code should prefer Run.
func (th *Thread) Atomic(fn func(*Tx)) { th.eng.Atomic(th, fn) }

// AtomicErr runs fn as a transaction; a non-nil error from fn aborts the
// transaction (its effects are discarded) and is returned to the caller.
// Conflict aborts still retry.
//
// Deprecated: identical to Run with no options. Kept as a thin wrapper;
// new code should prefer Run.
func (th *Thread) AtomicErr(fn func(*Tx) error) error { return th.eng.AtomicErr(th, fn) }

// ReadOnlyAtomic runs fn as a read-only transaction. If fn attempts a
// write the transaction restarts in update mode, so the hint is safe even
// when occasionally wrong.
//
// Deprecated: equivalent to Run with the ReadOnly option. Kept as a thin
// wrapper; new code should prefer Run.
func (th *Thread) ReadOnlyAtomic(fn func(*Tx)) { th.eng.readOnlyAtomic(th, fn) }

// SnapshotAtomic runs fn as a snapshot read-only transaction: reads are
// answered at a snapshot pinned at the first access, with values that
// concurrent writers have since overwritten reconstructed from the
// touched partitions' multi-version stores (PartConfig.HistCap) — so
// under sufficient retention the transaction never extends, validates or
// aborts, no matter how heavy the write traffic. Partitions without a
// store, evicted records, and writes inside fn all degrade gracefully to
// ReadOnlyAtomic behaviour. See Engine.SnapshotAtomic.
//
// Deprecated: equivalent to Run with the Snapshot option. Kept as a thin
// wrapper; new code should prefer Run.
func (th *Thread) SnapshotAtomic(fn func(*Tx)) { th.eng.SnapshotAtomic(th, fn) }
