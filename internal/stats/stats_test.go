package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []uint64{1, 2, 4, 8, 16, 1000, 1000000} {
		h.Record(v)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	if m := h.Mean(); m < 143000 || m > 143100 {
		t.Fatalf("Mean = %f", m)
	}
	// Median upper bound must cover the middle value (8).
	if q := h.Quantile(0.5); q < 8 {
		t.Fatalf("Quantile(0.5) = %d", q)
	}
	if q := h.Quantile(1.0); q < 1000000 {
		t.Fatalf("Quantile(1.0) = %d", q)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := &Histogram{}
	f := func(vals []uint16) bool {
		for _, v := range vals {
			h.Record(uint64(v) + 1)
		}
		return h.Quantile(0.1) <= h.Quantile(0.5) &&
			h.Quantile(0.5) <= h.Quantile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Test fig", "x", "y")
	s1 := f.SeriesNamed("alpha")
	s1.Add(1, 100)
	s1.Add(2, 200)
	f.SeriesNamed("beta").Add(1, 50)
	if f.SeriesNamed("alpha") != s1 {
		t.Fatal("SeriesNamed created a duplicate")
	}
	out := f.Render()
	for _, want := range []string{"Test fig", "alpha", "beta", "100", "200", "50", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,alpha,beta\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1,100,50") || !strings.Contains(csv, "2,200,") {
		t.Fatalf("csv body: %q", csv)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("T", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.Render()
	for _, want := range []string{"## T", "name", "alpha", "a-much-longer-name", "22", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table lacks %q:\n%s", want, out)
		}
	}
	// Aligned: the header line must be at least as wide as the longest
	// name cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", out)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	// Every value must land in a bucket whose [lo, hi] range contains it,
	// and bucket indexes must be monotone in the value.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 1000, 1023, 1024,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("bucketIndex(%d) = %d with bounds [%d, %d]", v, i, lo, hi)
		}
		if i < prev {
			t.Errorf("bucketIndex(%d) = %d not monotone (prev %d)", v, i, prev)
		}
		prev = i
	}
	// The linear split bounds relative error: bucket width / lower bound
	// <= 2^-subBits for all log-range buckets.
	for i := subBuckets; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if width := hi - lo + 1; float64(width)/float64(lo) > 1.0/subBuckets+1e-9 {
			t.Fatalf("bucket %d [%d, %d]: relative width %g too coarse",
				i, lo, hi, float64(width)/float64(lo))
		}
	}
}
