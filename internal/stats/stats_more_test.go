package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// TestHistogramConcurrentRecord checks the lock-free histogram loses no
// observations under concurrent writers.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, perW = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < perW; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				h.Record(x % 1_000_000)
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perW {
		t.Fatalf("count = %d, want %d", got, workers*perW)
	}
	if h.Mean() <= 0 {
		t.Fatal("mean not positive")
	}
}

// TestHistogramQuantileBounds is the testing/quick law: for any sample
// set, every recorded value is ≤ the q=1 bound, and quantiles are
// monotonic in q.
func TestHistogramQuantileBounds(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var max uint64
		for _, v := range vals {
			h.Record(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		q100 := h.Quantile(1.0)
		if q100 < max {
			return false
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyHistogram checks the zero-value histogram's accessors.
func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

// TestFigureCSVShape checks CSV output has one header plus one row per
// distinct x, and missing cells render empty.
func TestFigureCSVShape(t *testing.T) {
	f := NewFigure("t", "x", "y")
	f.SeriesNamed("a").Add(1, 10)
	f.SeriesNamed("a").Add(2, 20)
	f.SeriesNamed("b").Add(2, 200) // b has no x=1 point
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1,10," {
		t.Fatalf("row %q, want missing b cell empty", lines[1])
	}
}

// TestSeriesNamedIdempotent verifies SeriesNamed returns the same series
// per name.
func TestSeriesNamedIdempotent(t *testing.T) {
	f := NewFigure("t", "x", "y")
	s1 := f.SeriesNamed("s")
	s2 := f.SeriesNamed("s")
	if s1 != s2 {
		t.Fatal("SeriesNamed created a duplicate")
	}
	if len(f.Series) != 1 {
		t.Fatalf("series count = %d", len(f.Series))
	}
}

// TestTableRenderAlignment checks rows wider than headers still render.
func TestTableRenderAlignment(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("longvalue", "x")
	tbl.AddRow("y", "longervalue")
	out := tbl.Render()
	if !strings.Contains(out, "longvalue") || !strings.Contains(out, "longervalue") {
		t.Fatalf("missing cells:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if len(line) == 0 {
			t.Fatal("blank table line")
		}
	}
}
