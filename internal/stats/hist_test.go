package stats

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

// xorshift is the deterministic sample generator for the accuracy tests.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// distributions the quantile-accuracy test sweeps: the shapes latency
// data actually takes (flat, two-mode, and heavy-tailed), not just the
// uniform case that happens to be kind to histograms.
var distributions = []struct {
	name string
	gen  func(x *xorshift) uint64
}{
	{"uniform", func(x *xorshift) uint64 {
		return 1 + x.next()%1_000_000
	}},
	{"bimodal", func(x *xorshift) uint64 {
		// 90% fast path around 1µs, 10% slow path around 1ms.
		if x.next()%10 == 0 {
			return 900_000 + x.next()%200_000
		}
		return 800 + x.next()%400
	}},
	{"heavy-tail", func(x *xorshift) uint64 {
		// Pareto-ish: u^-2 scaled, values span 1e3..1e9.
		u := float64(x.next()%1_000_000+1) / 1_000_000
		return uint64(1000 / (u * u))
	}},
}

// TestQuantileAccuracy records each distribution into a histogram and
// into a plain slice, and checks every reported quantile against the
// exact order statistic: the histogram's answer must be an upper bound
// no more than one sub-bucket width (2^-4 relative) above it. This is
// the bound the log-linear layout exists to provide — the old
// power-of-two histogram fails this test at most quantiles with errors
// approaching 2x.
func TestQuantileAccuracy(t *testing.T) {
	const n = 200_000
	for _, d := range distributions {
		t.Run(d.name, func(t *testing.T) {
			var h Histogram
			exact := make([]uint64, n)
			x := xorshift(12345)
			for i := range exact {
				v := d.gen(&x)
				exact[i] = v
				h.Record(v)
			}
			sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
			for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 0.9999, 1.0} {
				rank := int(math.Ceil(q*n)) - 1
				if rank < 0 {
					rank = 0
				}
				want := exact[rank]
				got := h.Quantile(q)
				if got < want {
					t.Errorf("q=%v: got %d < exact %d (quantile must be an upper bound)", q, got, want)
				}
				// Upper bound of the bucket holding the exact value:
				// at most one sub-bucket width above it.
				if limit := want + want/subBuckets + 1; got > limit {
					t.Errorf("q=%v: got %d > %d (exact %d + 1/%d relative error)",
						q, got, limit, want, subBuckets)
				}
			}
			if h.Max() != exact[n-1] {
				t.Errorf("Max = %d, want exact %d", h.Max(), exact[n-1])
			}
			if mean, want := h.Mean(), meanOf(exact); math.Abs(mean-want) > 0.5 {
				t.Errorf("Mean = %f, want %f (sum is exact, not bucketed)", mean, want)
			}
		})
	}
}

func meanOf(vals []uint64) float64 {
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	return sum / float64(len(vals))
}

// TestMergeEqualsUnion: merging two histograms must be indistinguishable
// from recording both sample sets into one — bucket counts, N, Sum and
// MaxSeen all equal. Checked for both Histogram.Merge and the snapshot-
// level HistSnapshot.Add.
func TestMergeEqualsUnion(t *testing.T) {
	var a, b, union Histogram
	x := xorshift(99)
	for i := 0; i < 50_000; i++ {
		v := x.next() % 10_000_000
		if i%3 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	assertSnapshotsEqual(t, "Merge", merged.Snapshot(), union.Snapshot())
	assertSnapshotsEqual(t, "Add", a.Snapshot().Add(b.Snapshot()), union.Snapshot())
}

func assertSnapshotsEqual(t *testing.T, how string, got, want HistSnapshot) {
	t.Helper()
	if got.N != want.N || got.Sum != want.Sum || got.MaxSeen != want.MaxSeen {
		t.Fatalf("%s: N/Sum/Max = %d/%d/%d, want %d/%d/%d",
			how, got.N, got.Sum, got.MaxSeen, want.N, want.Sum, want.MaxSeen)
	}
	for i := range want.Counts {
		g := uint64(0)
		if i < len(got.Counts) {
			g = got.Counts[i]
		}
		if g != want.Counts[i] {
			t.Fatalf("%s: bucket %d = %d, want %d", how, i, g, want.Counts[i])
		}
	}
}

// TestSnapshotSubWindow: (cut2 - cut1) of a monotonic histogram must
// equal a histogram of only the between-cuts observations.
func TestSnapshotSubWindow(t *testing.T) {
	var h, window Histogram
	x := xorshift(7)
	for i := 0; i < 10_000; i++ {
		h.Record(x.next() % 1000)
	}
	cut1 := h.Snapshot()
	for i := 0; i < 10_000; i++ {
		v := x.next() % 1000
		h.Record(v)
		window.Record(v)
	}
	got := h.Snapshot().Sub(cut1)
	want := window.Snapshot()
	if got.N != want.N || got.Sum != want.Sum {
		t.Fatalf("windowed N/Sum = %d/%d, want %d/%d", got.N, got.Sum, want.N, want.Sum)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("windowed bucket %d = %d, want %d", i, got.Counts[i], want.Counts[i])
		}
	}
	if got.Quantile(0.99) != want.Quantile(0.99) {
		t.Fatalf("windowed p99 = %d, want %d", got.Quantile(0.99), want.Quantile(0.99))
	}
}

// TestConcurrentRecordMergeSnapshot is the -race exercise for the
// documented concurrency contract: Record, Merge and Snapshot may all
// run at once; after quiescing, the destination must account for every
// observation exactly once.
func TestConcurrentRecordMergeSnapshot(t *testing.T) {
	const workers, perW = 4, 20_000
	shards := make([]Histogram, workers)
	var dst Histogram
	var recorders sync.WaitGroup
	for w := range shards {
		recorders.Add(1)
		go func(w int) {
			defer recorders.Done()
			x := xorshift(w + 1)
			for i := 0; i < perW; i++ {
				shards[w].Record(x.next() % 1_000_000)
			}
		}(w)
		recorders.Add(1)
		go func(w int) {
			defer recorders.Done()
			x := xorshift(1000 + w)
			for i := 0; i < perW; i++ {
				dst.Record(x.next() % 1_000_000)
			}
		}(w)
	}
	// Concurrent live merges and snapshots while recording runs:
	// momentary cuts, must not race or corrupt (counts are re-merged
	// exactly below).
	stop := make(chan struct{})
	merger := make(chan struct{})
	go func() {
		defer close(merger)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var live Histogram
			for w := range shards {
				live.Merge(&shards[w])
			}
			_ = live.Snapshot().Quantile(0.99)
			_ = dst.Snapshot()
		}
	}()
	recorders.Wait()
	close(stop)
	<-merger
	for w := range shards {
		dst.Merge(&shards[w])
	}
	if got, want := dst.Count(), uint64(2*workers*perW); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// TestSummaryShape pins the trace-facing one-line format.
func TestSummaryShape(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1µs..1ms
	}
	s := h.Snapshot().Summary()
	for _, want := range []string{"n=1000", "p50=", "p99=", "p999=", "max=1ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q lacks %q", s, want)
		}
	}
}

// BenchmarkRecord prices the hot-path contract: one observation is a
// bucket increment plus count/sum/max upkeep on an uncontended line.
func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i)&0xfffff + 1)
	}
}

// BenchmarkRecordSharded is the per-worker shard pattern the harness
// uses: every worker owns a histogram, so recording scales with no
// shared-line contention.
func BenchmarkRecordSharded(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		var h Histogram
		v := uint64(1)
		for pb.Next() {
			v = v*2862933555777941757 + 3037000493
			h.Record(v & 0xfffff)
		}
	})
}
