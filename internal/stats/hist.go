package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is HDR-style log-linear: values are bucketed by their
// power-of-two magnitude (major bucket, found with one bits.Len64) and
// each major bucket is split into 2^subBits linear sub-buckets, so the
// relative error of any reported quantile is bounded by 2^-subBits
// (~1/16) instead of the up-to-2x bucket-ceiling error of a plain
// power-of-two histogram. Values below 2^subBits land in exact unit
// buckets.
const (
	subBits    = 4
	subBuckets = 1 << subBits // linear sub-buckets per power-of-two range
	// numBuckets covers the full uint64 range: subBuckets exact unit
	// buckets for values < subBuckets, then (64-subBits) log ranges of
	// subBuckets linear buckets each.
	numBuckets = (64 - subBits + 1) * subBuckets
)

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v) // exact unit buckets
	}
	major := bits.Len64(v) - 1 // floor(log2(v)), >= subBits
	sub := (v >> (uint(major) - subBits)) & (subBuckets - 1)
	return (major-subBits+1)*subBuckets + int(sub)
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < subBuckets {
		return uint64(i), uint64(i)
	}
	major := uint(i/subBuckets + subBits - 1)
	sub := uint64(i % subBuckets)
	width := uint64(1) << (major - subBits)
	lo = (uint64(1) << major) + sub*width
	return lo, lo + width - 1
}

// Histogram is a lock-free log-linear histogram suitable for nanosecond
// latencies: Record is one atomic increment on a lazily allocated bucket
// array plus count/sum/max upkeep, and concurrent Record/Merge/Snapshot
// are all safe. The zero value is ready to use; an unused histogram
// allocates nothing. For contention-free recording across workers give
// each worker its own Histogram (one cache-resident line per hot bucket)
// and Merge them afterwards — merge is bucket-wise atomic addition, so it
// may run while recording continues (the merged view is then a momentary,
// not instantaneous, cut: the documented trade of live sampling).
type Histogram struct {
	buckets atomic.Pointer[[numBuckets]atomic.Uint64]
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// lazyBuckets returns the bucket array, allocating it on first use. The
// CAS makes concurrent first Records agree on one array.
func (h *Histogram) lazyBuckets() *[numBuckets]atomic.Uint64 {
	if b := h.buckets.Load(); b != nil {
		return b
	}
	fresh := new([numBuckets]atomic.Uint64)
	if h.buckets.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return h.buckets.Load()
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.lazyBuckets()[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since start in nanoseconds — the
// common latency-recording idiom.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(uint64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value (exact, not bucket-rounded).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Quantile returns an upper bound for quantile q (0..1), with relative
// error bounded by 2^-4 (the sub-bucket width).
func (h *Histogram) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// Merge adds o's observations into h. Safe against concurrent Record on
// either side.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count.Load() == 0 {
		return
	}
	ob := o.buckets.Load()
	if ob == nil {
		return
	}
	hb := h.lazyBuckets()
	for i := range ob {
		if n := ob[i].Load(); n > 0 {
			hb[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Snapshot returns a passive copy of the histogram's current state. A
// snapshot taken while recording continues is a momentary cut (counts may
// be mid-update across buckets); a snapshot of a quiesced histogram is
// exact.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		N:       h.count.Load(),
		Sum:     h.sum.Load(),
		MaxSeen: h.max.Load(),
	}
	if b := h.buckets.Load(); b != nil && s.N > 0 {
		s.Counts = make([]uint64, numBuckets)
		for i := range b {
			s.Counts[i] = b[i].Load()
		}
	}
	return s
}

// HistSnapshot is a passive histogram state: plain counters, no atomics,
// cheap to copy when empty (the common case when latency tracking is
// off — Counts stays nil). Snapshots add, subtract and merge, so windowed
// deltas of monotonic histograms work exactly like the scalar counters in
// PartStats.
type HistSnapshot struct {
	// Counts holds one count per log-linear bucket (nil when empty).
	Counts []uint64
	// N and Sum are the observation count and value sum.
	N   uint64
	Sum uint64
	// MaxSeen is the largest value recorded over the histogram's whole
	// lifetime. It is not windowed: Sub keeps the newer reading, because a
	// maximum cannot be subtracted.
	MaxSeen uint64
}

// Count returns the number of observations.
func (s HistSnapshot) Count() uint64 { return s.N }

// Max returns the largest recorded value.
func (s HistSnapshot) Max() uint64 { return s.MaxSeen }

// Mean returns the arithmetic mean, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Quantile returns an upper bound for quantile q (0..1): the upper edge
// of the bucket holding the q-th observation, so the relative error is
// bounded by the sub-bucket width (2^-4). The top bucket is clamped to
// MaxSeen.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.N == 0 || len(s.Counts) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.N)))
	if target == 0 {
		target = 1
	}
	if target > s.N {
		target = s.N
	}
	var cum uint64
	for i, n := range s.Counts {
		cum += n
		if cum >= target {
			_, hi := bucketBounds(i)
			if hi > s.MaxSeen {
				hi = s.MaxSeen
			}
			return hi
		}
	}
	return s.MaxSeen
}

// Add accumulates o into s and returns the result (counts align because
// every histogram shares one bucket layout).
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	if o.N == 0 {
		return s
	}
	if s.N == 0 {
		out := o
		out.Counts = append([]uint64(nil), o.Counts...)
		return out
	}
	out := s
	out.Counts = append([]uint64(nil), s.Counts...)
	for len(out.Counts) < len(o.Counts) {
		out.Counts = append(out.Counts, 0)
	}
	for i, n := range o.Counts {
		out.Counts[i] += n
	}
	out.N += o.N
	out.Sum += o.Sum
	if o.MaxSeen > out.MaxSeen {
		out.MaxSeen = o.MaxSeen
	}
	return out
}

// Sub returns s - old bucket-wise (both cuts of the same monotonic
// histogram): the observations recorded between the two snapshots.
// MaxSeen keeps s's reading — the lifetime maximum at the newer cut.
func (s HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	if old.N == 0 {
		return s
	}
	out := s
	out.Counts = append([]uint64(nil), s.Counts...)
	for i := range old.Counts {
		if i < len(out.Counts) {
			out.Counts[i] -= old.Counts[i]
		}
	}
	out.N -= old.N
	out.Sum -= old.Sum
	return out
}

// Summary renders the headline tail figures on one line.
func (s HistSnapshot) Summary() string {
	return fmt.Sprintf("n=%d p50=%s p99=%s p999=%s max=%s",
		s.N,
		time.Duration(s.Quantile(0.50)),
		time.Duration(s.Quantile(0.99)),
		time.Duration(s.Quantile(0.999)),
		time.Duration(s.MaxSeen))
}
