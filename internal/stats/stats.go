// Package stats provides small measurement utilities for the benchmark
// harness and the engine's observability layer: HDR-style log-linear
// latency histograms (lock-free recording, mergeable snapshots) and
// labeled time/value series with text rendering.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one line of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a set of series over a shared x-axis — the unit the harness
// prints for each reproduced figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Series returns (creating if needed) the series with the given name.
func (f *Figure) SeriesNamed(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render prints the figure as an aligned text table: one row per x value,
// one column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", f.Title)
	fmt.Fprintf(&b, "# y: %s\n", f.YLabel)
	// Collect the x axis.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	axis := make([]float64, 0, len(xs))
	for x := range xs {
		axis = append(axis, x)
	}
	sort.Float64s(axis)
	// Header.
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range axis {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			y, ok := lookupX(s, x)
			if !ok {
				fmt.Fprintf(&b, " %20s", "-")
			} else {
				fmt.Fprintf(&b, " %20.0f", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	axis := make([]float64, 0, len(xs))
	for x := range xs {
		axis = append(axis, x)
	}
	sort.Float64s(axis)
	for _, x := range axis {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if y, ok := lookupX(s, x); ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				fmt.Fprintf(&b, ",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupX(s *Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table is a simple aligned text table for the "Table N" artefacts.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row (stringified cells).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", width[i], h)
	}
	b.WriteByte('\n')
	for i := range t.Headers {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", width[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s  ", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
