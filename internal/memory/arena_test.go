package memory

import (
	"testing"
	"testing/quick"
)

func testArena(t *testing.T) *Arena {
	t.Helper()
	a, err := NewArena(Config{CapacityWords: 1 << 16, BlockShift: 8})
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	return a
}

func TestNewArenaValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{CapacityWords: 1 << 16}, true},
		{"too small", Config{CapacityWords: 16, BlockShift: 8}, false},
		{"tiny shift", Config{CapacityWords: 1 << 16, BlockShift: 2}, false},
		{"huge shift", Config{CapacityWords: 1 << 26, BlockShift: 25}, false},
		{"exact two blocks", Config{CapacityWords: 512, BlockShift: 8}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewArena(tc.cfg)
			if (err == nil) != tc.ok {
				t.Fatalf("NewArena(%+v) err=%v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestArenaLoadStore(t *testing.T) {
	a := testArena(t)
	al := NewAllocator(a)
	addr := al.MustAlloc(DefaultSite, 4)
	if addr == Nil {
		t.Fatal("allocated Nil")
	}
	a.Store(addr, 42)
	if got := a.Load(addr); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	a.StoreAtomic(addr+1, 7)
	if got := a.LoadAtomic(addr + 1); got != 7 {
		t.Fatalf("LoadAtomic = %d, want 7", got)
	}
}

func TestAddrZeroIsReserved(t *testing.T) {
	a := testArena(t)
	al := NewAllocator(a)
	for i := 0; i < 100; i++ {
		if addr := al.MustAlloc(DefaultSite, 1); addr == Nil {
			t.Fatal("allocator returned the nil address")
		}
	}
}

func TestSiteOwnership(t *testing.T) {
	a := testArena(t)
	s1 := a.Sites().Register("alpha")
	s2 := a.Sites().Register("beta")
	al := NewAllocator(a)
	a1 := al.MustAlloc(s1, 8)
	a2 := al.MustAlloc(s2, 8)
	if got := a.SiteOf(a1); got != s1 {
		t.Fatalf("SiteOf(a1) = %d, want %d", got, s1)
	}
	if got := a.SiteOf(a2); got != s2 {
		t.Fatalf("SiteOf(a2) = %d, want %d", got, s2)
	}
	// Objects from different sites never share a block.
	if a.BlockOf(a1) == a.BlockOf(a2) {
		t.Fatal("different sites share a block")
	}
}

func TestSitesRegistry(t *testing.T) {
	a := testArena(t)
	s := a.Sites()
	id1 := s.Register("x.list")
	id2 := s.Register("x.tree")
	if id1 == id2 {
		t.Fatal("distinct names share an id")
	}
	if again := s.Register("x.list"); again != id1 {
		t.Fatalf("re-register changed id: %d != %d", again, id1)
	}
	if got, ok := s.Lookup("x.tree"); !ok || got != id2 {
		t.Fatalf("Lookup = %d,%v", got, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing site")
	}
	if s.Name(id1) != "x.list" {
		t.Fatalf("Name = %q", s.Name(id1))
	}
	if s.Name(DefaultSite) != "default" {
		t.Fatalf("default site name = %q", s.Name(DefaultSite))
	}
	if s.Count() != 3 { // default + 2
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "default" {
		t.Fatalf("Names = %v", names)
	}
	sorted := s.SortedByName()
	for i := 1; i < len(sorted); i++ {
		if s.Name(sorted[i-1]) > s.Name(sorted[i]) {
			t.Fatalf("SortedByName out of order: %v", sorted)
		}
	}
}

func TestAllocRecycling(t *testing.T) {
	a := testArena(t)
	al := NewAllocator(a)
	x := al.MustAlloc(DefaultSite, 4)
	al.Free(x, 4)
	y := al.MustAlloc(DefaultSite, 4)
	if x != y {
		t.Fatalf("free-list recycle: got %d, want %d", y, x)
	}
	// Different size does not hit the same free list.
	al.Free(y, 4)
	z := al.MustAlloc(DefaultSite, 5)
	if z == y {
		t.Fatal("5-word alloc reused a 4-word free object")
	}
}

func TestAllocErrors(t *testing.T) {
	a := testArena(t)
	al := NewAllocator(a)
	if _, err := al.Alloc(DefaultSite, 0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := al.Alloc(DefaultSite, -3); err == nil {
		t.Fatal("Alloc(-3) succeeded")
	}
	if _, err := al.Alloc(DefaultSite, 1<<20); err == nil {
		t.Fatal("Alloc larger than a block succeeded")
	}
	// Free of Nil and nonsense sizes must be harmless no-ops.
	al.Free(Nil, 4)
	al.Free(al.MustAlloc(DefaultSite, 2), 0)
}

func TestArenaExhaustion(t *testing.T) {
	a, err := NewArena(Config{CapacityWords: 1 << 10, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	al := NewAllocator(a)
	var lastErr error
	for i := 0; i < 100; i++ {
		_, lastErr = al.Alloc(SiteID(i%4)+100, 200) // spread across sites to burn blocks
		if lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("arena never exhausted")
	}
}

func TestBlocksInUseGrows(t *testing.T) {
	a := testArena(t)
	al := NewAllocator(a)
	before := a.BlocksInUse()
	al.MustAlloc(a.Sites().Register("g1"), 8)
	after := a.BlocksInUse()
	if after != before+1 {
		t.Fatalf("BlocksInUse %d -> %d, want +1", before, after)
	}
}

func TestAllocDistinctness(t *testing.T) {
	// Property: live allocations never overlap.
	a := MustNewArena(Config{CapacityWords: 1 << 18, BlockShift: 8})
	al := NewAllocator(a)
	type span struct{ lo, hi uint64 }
	var live []span
	f := func(rawSize uint8, siteSel uint8) bool {
		n := int(rawSize%16) + 1
		site := SiteID(siteSel % 4)
		addr, err := al.Alloc(site, n)
		if err != nil {
			return true // exhaustion is acceptable under quick's draws
		}
		lo, hi := uint64(addr), uint64(addr)+uint64(n)
		for _, s := range live {
			if lo < s.hi && s.lo < hi {
				return false
			}
		}
		live = append(live, span{lo, hi})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReuseRoundTrip(t *testing.T) {
	// Property: alloc→free→alloc of the same size returns a previously
	// freed address (LIFO) and never corrupts other live objects.
	a := MustNewArena(Config{CapacityWords: 1 << 16, BlockShift: 8})
	al := NewAllocator(a)
	canary := al.MustAlloc(DefaultSite, 3)
	a.Store(canary, 0xDEAD)
	f := func(sz uint8) bool {
		n := int(sz%8) + 1
		x := al.MustAlloc(DefaultSite, n)
		a.Store(x, uint64(n))
		al.Free(x, n)
		y := al.MustAlloc(DefaultSite, n)
		if y != x {
			return false
		}
		al.Free(y, n)
		return a.Load(canary) == 0xDEAD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
