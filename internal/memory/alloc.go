package memory

import "fmt"

// maxSmallSize is the largest object size (in words) served from per-size
// free lists. Larger objects go through per-site large free lists keyed by
// exact size (bucket arrays, wide nodes); both classes are recycled.
const maxSmallSize = 64

// ReclaimBatch is the limbo growth (in objects) between horizon sweeps:
// the owner of an allocator should attempt a Reclaim once NeedsReclaim
// reports true, which re-arms ReclaimBatch objects past whatever the sweep
// left behind — so a stalled horizon costs one sweep per batch of retires,
// not one per commit.
const ReclaimBatch = 64

// retiredObj is one limbo entry: an object whose words may reach a free
// list only after the global horizon passes its retire stamp.
type retiredObj struct {
	addr  Addr
	n     int
	stamp uint64
}

// Allocator is a per-thread allocation cache over an Arena. Each worker
// thread owns one Allocator; free lists, bump regions and the limbo list
// are thread-local, and only grabbing a fresh block from the arena (or
// draining the arena's shared limbo) takes a lock. This keeps the
// allocator off the measured critical path the same way TinySTM's malloc
// wrappers do.
//
// Transactionally freed objects do not reach the free lists directly: the
// engine retires them into the limbo list stamped with the freeing
// commit's clock reading (Retire), and they migrate to the real free
// lists only once the published-reader horizon (internal/epoch) passes
// their stamp (Reclaim) — the epoch-based grace period that makes address
// recycling safe under concurrent snapshot reconstruction. The abort
// path's never-published objects skip limbo entirely (Free).
//
// Allocators are NOT safe for concurrent use; create one per goroutine.
type Allocator struct {
	arena  *Arena
	caches []siteCache // indexed by SiteID; grown on demand

	// limbo is the FIFO of retired-not-yet-reclaimable objects. Stamps are
	// non-decreasing (each is a clock-ceiling sample taken by the owning
	// thread's successive commits), so Reclaim pops a prefix. limboHead
	// avoids re-slicing the backing array on every pop; the slice compacts
	// when the dead prefix dominates.
	limbo      []retiredObj
	limboHead  int
	limboWords uint64
	// reclaimAt is the live limbo length at which NeedsReclaim next fires;
	// re-armed after every Reclaim so a stalled horizon is probed once per
	// ReclaimBatch retires instead of once per commit.
	reclaimAt int
}

type siteCache struct {
	bump Addr     // next free word in current block (0 = none)
	end  Addr     // one past the current block
	free [][]Addr // free[size] = stack of freed addresses of that size
	// large holds recycled objects of maxSmallSize words or more, keyed by
	// exact word size. Lazily allocated: most sites never free a large
	// object.
	large map[int][]Addr
}

// NewAllocator creates a thread-local allocator over arena.
func NewAllocator(arena *Arena) *Allocator {
	return &Allocator{arena: arena, reclaimAt: ReclaimBatch}
}

// Arena returns the backing arena.
func (al *Allocator) Arena() *Arena { return al.arena }

func (al *Allocator) cache(site SiteID) *siteCache {
	if int(site) >= len(al.caches) {
		grown := make([]siteCache, int(site)+1)
		copy(grown, al.caches)
		al.caches = grown
	}
	return &al.caches[site]
}

// Alloc returns the address of an object of n words owned by site. It
// returns an error only when the arena is exhausted.
//
// Recycled objects retain their previous committed contents — they are
// deliberately NOT zeroed here, because a non-transactional clear would
// break opacity for concurrent snapshot readers still holding a stale
// reference (the old contents are exactly the values their snapshot
// expects). Callers must initialize every word transactionally before
// publishing the object. Fresh bump memory is zero.
func (al *Allocator) Alloc(site SiteID, n int) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("memory: alloc of %d words", n)
	}
	c := al.cache(site)
	if n < maxSmallSize {
		if n < len(c.free) {
			if fl := c.free[n]; len(fl) > 0 {
				addr := fl[len(fl)-1]
				c.free[n] = fl[:len(fl)-1]
				return addr, nil
			}
		}
	} else if fl := c.large[n]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		c.large[n] = fl[:len(fl)-1]
		return addr, nil
	}
	if uint64(n) > al.arena.blockSize {
		// Large object: spans dedicated contiguous blocks; recycled through
		// the per-site large free list above on exact-size match.
		k := (uint64(n) + al.arena.blockSize - 1) / al.arena.blockSize
		addr, err := al.arena.grabBlocks(site, k)
		if err != nil {
			return Nil, err
		}
		al.arena.allocated.Add(uint64(n))
		return addr, nil
	}
	if c.bump == Nil || uint64(c.end-c.bump) < uint64(n) {
		b, err := al.arena.grabBlock(site)
		if err != nil {
			return Nil, err
		}
		c.bump = b
		c.end = b + Addr(al.arena.blockSize)
	}
	addr := c.bump
	c.bump += Addr(n)
	al.arena.allocated.Add(uint64(n))
	return addr, nil
}

// MustAlloc is Alloc that panics on arena exhaustion; used by benchmarks
// whose arenas are sized for the workload.
func (al *Allocator) MustAlloc(site SiteID, n int) Addr {
	a, err := al.Alloc(site, n)
	if err != nil {
		panic(err)
	}
	return a
}

// Free recycles an object of n words at addr directly into this thread's
// free list for its site, with no grace period. The caller asserts that no
// live reference to addr EVER existed outside the calling thread — the
// abort path's unpublished allocations qualify; anything a commit made
// reachable does not and must go through Retire instead.
func (al *Allocator) Free(addr Addr, n int) {
	if addr == Nil || n <= 0 {
		return
	}
	al.recycle(addr, n)
}

// recycle pushes an object onto the owning site's free list (small sizes)
// or large list (maxSmallSize and up).
func (al *Allocator) recycle(addr Addr, n int) {
	site := al.arena.SiteOf(addr)
	c := al.cache(site)
	if n < maxSmallSize {
		for len(c.free) <= n {
			c.free = append(c.free, nil)
		}
		c.free[n] = append(c.free[n], addr)
		return
	}
	if c.large == nil {
		c.large = make(map[int][]Addr)
	}
	c.large[n] = append(c.large[n], addr)
}

// Retire places an object in limbo stamped with the freeing commit's
// clock reading. The object reaches a free list only when a Reclaim sees
// the global horizon pass the stamp. Stamps across successive Retire
// calls must be non-decreasing (they are: each is a ceiling sample from
// the owning thread's commit sequence).
func (al *Allocator) Retire(addr Addr, n int, stamp uint64) {
	if addr == Nil || n <= 0 {
		return
	}
	al.limbo = append(al.limbo, retiredObj{addr: addr, n: n, stamp: stamp})
	al.limboWords += uint64(n)
	al.arena.retiredWords.Add(uint64(n))
}

// LimboLen returns the number of objects currently in this allocator's
// limbo.
func (al *Allocator) LimboLen() int { return len(al.limbo) - al.limboHead }

// LimboWords returns the words currently held in this allocator's limbo.
func (al *Allocator) LimboWords() uint64 { return al.limboWords }

// NeedsReclaim reports whether the limbo has grown enough since the last
// Reclaim that the owner should sweep the horizon and call Reclaim.
func (al *Allocator) NeedsReclaim() bool { return al.LimboLen() >= al.reclaimAt }

// Reclaim moves every limbo object whose retire stamp the horizon has
// passed (stamp < horizon) onto the real free lists, then drains any
// eligible objects from the arena's shared overflow limbo into this
// allocator. It returns the number of words reclaimed and re-arms
// NeedsReclaim.
func (al *Allocator) Reclaim(horizon uint64) uint64 {
	var words uint64
	i := al.limboHead
	for ; i < len(al.limbo); i++ {
		r := al.limbo[i]
		if r.stamp >= horizon {
			break
		}
		al.recycle(r.addr, r.n)
		words += uint64(r.n)
	}
	al.limboHead = i
	if al.limboHead == len(al.limbo) {
		al.limbo = al.limbo[:0]
		al.limboHead = 0
	} else if al.limboHead > len(al.limbo)/2 {
		n := copy(al.limbo, al.limbo[al.limboHead:])
		al.limbo = al.limbo[:n]
		al.limboHead = 0
	}
	al.limboWords -= words
	if words > 0 {
		al.arena.reclaimedWords.Add(words)
	}
	words += al.arena.drainShared(al, horizon)
	al.reclaimAt = al.LimboLen() + ReclaimBatch
	return words
}

// FlushLimbo hands every limbo entry to the arena's shared overflow
// drain. Called when the allocator's owning thread detaches, so retired
// objects are not stranded in a dead allocator: any thread's next Reclaim
// picks them up once the horizon allows.
func (al *Allocator) FlushLimbo() {
	if al.limboHead < len(al.limbo) {
		al.arena.flushShared(al.limbo[al.limboHead:])
	}
	al.limbo = al.limbo[:0]
	al.limboHead = 0
	al.limboWords = 0
	al.reclaimAt = ReclaimBatch
}
