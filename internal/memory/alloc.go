package memory

import "fmt"

// maxSmallSize is the largest object size (in words) served from per-size
// free lists. Larger objects are bump-allocated and never recycled; the
// workloads in this repository allocate nodes of a handful of words, and
// bucket arrays once at setup, so this matches their behaviour.
const maxSmallSize = 64

// Allocator is a per-thread allocation cache over an Arena. Each worker
// thread owns one Allocator; free lists and bump regions are thread-local,
// and only grabbing a fresh block from the arena takes a lock. This keeps
// the allocator off the measured critical path the same way TinySTM's
// malloc wrappers do.
//
// Allocators are NOT safe for concurrent use; create one per goroutine.
type Allocator struct {
	arena  *Arena
	caches []siteCache // indexed by SiteID; grown on demand
}

type siteCache struct {
	bump Addr     // next free word in current block (0 = none)
	end  Addr     // one past the current block
	free [][]Addr // free[size] = stack of freed addresses of that size
}

// NewAllocator creates a thread-local allocator over arena.
func NewAllocator(arena *Arena) *Allocator {
	return &Allocator{arena: arena}
}

// Arena returns the backing arena.
func (al *Allocator) Arena() *Arena { return al.arena }

func (al *Allocator) cache(site SiteID) *siteCache {
	if int(site) >= len(al.caches) {
		grown := make([]siteCache, int(site)+1)
		copy(grown, al.caches)
		al.caches = grown
	}
	return &al.caches[site]
}

// Alloc returns the address of an object of n words owned by site. It
// returns an error only when the arena is exhausted.
//
// Recycled objects retain their previous committed contents — they are
// deliberately NOT zeroed here, because a non-transactional clear would
// break opacity for concurrent snapshot readers still holding a stale
// reference (the old contents are exactly the values their snapshot
// expects). Callers must initialize every word transactionally before
// publishing the object. Fresh bump memory is zero.
func (al *Allocator) Alloc(site SiteID, n int) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("memory: alloc of %d words", n)
	}
	c := al.cache(site)
	if n < maxSmallSize && n < len(c.free) {
		if fl := c.free[n]; len(fl) > 0 {
			addr := fl[len(fl)-1]
			c.free[n] = fl[:len(fl)-1]
			return addr, nil
		}
	}
	if uint64(n) > al.arena.blockSize {
		// Large object: spans dedicated contiguous blocks; never recycled.
		k := (uint64(n) + al.arena.blockSize - 1) / al.arena.blockSize
		addr, err := al.arena.grabBlocks(site, k)
		if err != nil {
			return Nil, err
		}
		al.arena.allocated.Add(uint64(n))
		return addr, nil
	}
	if c.bump == Nil || uint64(c.end-c.bump) < uint64(n) {
		b, err := al.arena.grabBlock(site)
		if err != nil {
			return Nil, err
		}
		c.bump = b
		c.end = b + Addr(al.arena.blockSize)
	}
	addr := c.bump
	c.bump += Addr(n)
	al.arena.allocated.Add(uint64(n))
	return addr, nil
}

// MustAlloc is Alloc that panics on arena exhaustion; used by benchmarks
// whose arenas are sized for the workload.
func (al *Allocator) MustAlloc(site SiteID, n int) Addr {
	a, err := al.Alloc(site, n)
	if err != nil {
		panic(err)
	}
	return a
}

// Free recycles an object of n words at addr into this thread's free list
// for its site. The caller asserts that no live reference to addr remains
// (the STM's commit protocol guarantees this for transactionally freed
// objects).
func (al *Allocator) Free(addr Addr, n int) {
	if addr == Nil || n <= 0 {
		return
	}
	if n >= maxSmallSize {
		return // large objects are not recycled
	}
	site := al.arena.SiteOf(addr)
	c := al.cache(site)
	for len(c.free) <= n {
		c.free = append(c.free, nil)
	}
	c.free[n] = append(c.free[n], addr)
}
