package memory

import (
	"fmt"
	"sort"
	"sync"
)

// Sites is the allocation-site table. A site stands in for a static
// allocation site in the program source: in the paper's system the
// compile-time data-structure analysis operates on allocation sites of the
// C program; here, code registers a named site per logical allocation
// point ("vacation.flights.node", "intset.list.node", ...) and tags every
// allocation with it. The partitioning analysis groups sites into
// partitions.
type Sites struct {
	mu    sync.RWMutex
	names []string          // SiteID -> name
	ids   map[string]SiteID // name -> SiteID
}

func newSites() *Sites {
	s := &Sites{ids: make(map[string]SiteID)}
	// SiteID 0 is the default site.
	s.names = append(s.names, "default")
	s.ids["default"] = DefaultSite
	return s
}

// Register returns the SiteID for name, creating it if needed. Site
// registration is expected at setup time, but is safe concurrently.
func (s *Sites) Register(name string) SiteID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := SiteID(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// Lookup returns the SiteID for name and whether it exists.
func (s *Sites) Lookup(name string) (SiteID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the name of site id.
func (s *Sites) Name(id SiteID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.names) {
		return fmt.Sprintf("site#%d", id)
	}
	return s.names[id]
}

// Count returns the number of registered sites (including the default).
func (s *Sites) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Names returns all registered site names sorted by SiteID.
func (s *Sites) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// SortedByName returns all site IDs ordered by site name; useful for
// stable report output.
func (s *Sites) SortedByName() []SiteID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]SiteID, len(s.names))
	for i := range ids {
		ids[i] = SiteID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return s.names[ids[i]] < s.names[ids[j]] })
	return ids
}
