// Package memory implements the word-addressable transactional heap that
// the STM instruments.
//
// The paper's STM (TinySTM under the Tanger compiler) operates on raw C
// memory: every transactional load/store targets a machine word, and the
// word's address is hashed into an ownership-record table. Go cannot
// intercept raw loads and stores, so this package reproduces the object the
// STM actually manipulates: a flat arena of 64-bit words addressed by Addr
// offsets. All contention, conflict-detection and locking behaviour of the
// STM is expressed in terms of these word addresses, exactly as in the
// word-based original.
//
// The arena is divided into fixed-size blocks. Every block is owned by a
// single allocation site (see Sites); the partitioning subsystem assigns
// sites to partitions, which makes address→partition lookup a single slice
// index on the block number.
//
// Reclamation is epoch-based: transactionally freed objects are retired
// into per-thread limbo lists stamped with the freeing commit's clock
// reading (Allocator.Retire) and migrate to the real free lists only once
// the engine's published-reader horizon (internal/epoch) passes their
// stamp (Allocator.Reclaim) — so an address is never recycled while any
// live snapshot reader could still reconstruct it. A shared overflow
// limbo on the arena catches retires from detached allocators, and
// Arena.ReclaimStats exposes the retire/reclaim/limbo word counters.
package memory

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a word index into the arena. Address 0 is reserved as the nil
// reference so that pointer-valued words can use 0 as "no object".
type Addr uint64

// Nil is the null address.
const Nil Addr = 0

// SiteID identifies an allocation site. Sites are registered once at
// program setup (they stand in for the static allocation sites a compiler
// pass would see) and every allocation names its site.
type SiteID uint32

// DefaultSite is the site used for allocations that do not name one.
const DefaultSite SiteID = 0

// Config configures an Arena.
type Config struct {
	// CapacityWords is the total number of words in the arena. The arena
	// is allocated eagerly so that the backing slice never moves while
	// concurrent transactions are indexing it. Must be at least one block.
	CapacityWords uint64
	// BlockShift is log2 of the block size in words. Blocks are the unit
	// of site (and therefore partition) ownership. Default 12 (4096 words,
	// 32 KiB per block).
	BlockShift uint
}

const defaultBlockShift = 12

// Arena is the transactional heap: a fixed slice of words plus a block
// table mapping block number to owning allocation site.
//
// The word slice is created once and never resized, so concurrent readers
// may index it without synchronization beyond the STM's own protocol.
type Arena struct {
	words      []uint64
	blockShift uint
	blockSize  uint64 // words per block
	numBlocks  uint64

	mu        sync.Mutex
	blockSite []SiteID // block -> owning site; only grows under mu, read racily after publication
	nextBlock uint64   // next unassigned block (block 0 is reserved: holds Addr 0)
	// grabHook, when set, observes every block-range assignment (under
	// mu, immediately after it happens). The durable log journals grabs
	// through it so a recovered arena never re-hands-out blocks that
	// replayed commit records have repopulated.
	grabHook func(firstBlock, blocks uint64, site SiteID)

	sites *Sites

	allocated atomic.Uint64 // words handed out (for stats)

	// Epoch-based reclamation state (see reclaim.go): cumulative retire and
	// reclaim word counters (their difference is the live limbo footprint),
	// and the shared overflow limbo where detached allocators flush pending
	// retires. sharedLive mirrors "sharedLimbo non-empty" so the drain's
	// common case skips the mutex.
	retiredWords   atomic.Uint64
	reclaimedWords atomic.Uint64
	limboMu        sync.Mutex
	sharedLimbo    []retiredObj
	sharedLive     atomic.Uint32
}

// NewArena creates an arena with the given configuration.
func NewArena(cfg Config) (*Arena, error) {
	if cfg.BlockShift == 0 {
		cfg.BlockShift = defaultBlockShift
	}
	if cfg.BlockShift < 4 || cfg.BlockShift > 24 {
		return nil, fmt.Errorf("memory: block shift %d out of range [4,24]", cfg.BlockShift)
	}
	bs := uint64(1) << cfg.BlockShift
	if cfg.CapacityWords < 2*bs {
		return nil, fmt.Errorf("memory: capacity %d words below minimum of two blocks (%d)", cfg.CapacityWords, 2*bs)
	}
	nb := cfg.CapacityWords / bs
	a := &Arena{
		words:      make([]uint64, nb*bs),
		blockShift: cfg.BlockShift,
		blockSize:  bs,
		numBlocks:  nb,
		blockSite:  make([]SiteID, nb),
		nextBlock:  1, // block 0 reserved so that Addr 0 is never a live object
		sites:      newSites(),
	}
	return a, nil
}

// MustNewArena is NewArena that panics on configuration error; intended for
// tests and examples where the configuration is a constant.
func MustNewArena(cfg Config) *Arena {
	a, err := NewArena(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Sites returns the arena's allocation-site table.
func (a *Arena) Sites() *Sites { return a.sites }

// BlockShift returns log2 of the block size in words.
func (a *Arena) BlockShift() uint { return a.blockShift }

// NumBlocks returns the total number of blocks in the arena.
func (a *Arena) NumBlocks() uint64 { return a.numBlocks }

// BlocksInUse returns the number of blocks that have been assigned to a
// site so far (including the reserved block 0).
func (a *Arena) BlocksInUse() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextBlock
}

// AllocatedWords returns the cumulative number of words handed out by the
// allocator (freed words are not subtracted; free lists recycle them).
func (a *Arena) AllocatedWords() uint64 { return a.allocated.Load() }

// BlockOf returns the block number containing addr.
func (a *Arena) BlockOf(addr Addr) uint64 { return uint64(addr) >> a.blockShift }

// SiteOf returns the allocation site owning the block that contains addr.
// addr must be a live address previously returned by an allocator.
func (a *Arena) SiteOf(addr Addr) SiteID {
	return a.blockSite[uint64(addr)>>a.blockShift]
}

// Load reads the word at addr without any transactional protocol. It is
// intended for the STM core and for single-threaded inspection.
func (a *Arena) Load(addr Addr) uint64 { return a.words[addr] }

// Store writes the word at addr without any transactional protocol. It is
// intended for the STM core and for single-threaded initialization.
func (a *Arena) Store(addr Addr, v uint64) { a.words[addr] = v }

// Word returns a pointer to the word at addr for atomic access by the STM
// core.
func (a *Arena) Word(addr Addr) *uint64 { return &a.words[addr] }

// LoadAtomic reads the word at addr with atomic semantics.
func (a *Arena) LoadAtomic(addr Addr) uint64 {
	return atomic.LoadUint64(&a.words[addr])
}

// StoreAtomic writes the word at addr with atomic semantics.
func (a *Arena) StoreAtomic(addr Addr, v uint64) {
	atomic.StoreUint64(&a.words[addr], v)
}

// grabBlock assigns the next free block to site and returns its first word
// address. It is called by allocator caches when they exhaust their bump
// region.
func (a *Arena) grabBlock(site SiteID) (Addr, error) {
	return a.grabBlocks(site, 1)
}

// grabBlocks assigns k consecutive blocks to site (large objects span
// contiguous blocks so a single slice of words backs them).
func (a *Arena) grabBlocks(site SiteID, k uint64) (Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.nextBlock+k > a.numBlocks {
		return Nil, fmt.Errorf("memory: arena exhausted (%d blocks of %d words, %d requested)",
			a.numBlocks, a.blockSize, k)
	}
	b := a.nextBlock
	a.nextBlock += k
	for i := uint64(0); i < k; i++ {
		a.blockSite[b+i] = site
	}
	if a.grabHook != nil {
		// Under mu, before the range is visible to the caller: the hook's
		// log sequence therefore precedes any commit record that writes
		// into these blocks.
		a.grabHook(b, k, site)
	}
	return Addr(b << a.blockShift), nil
}

// SetGrabHook installs (or with nil removes) the block-grab observer,
// called under the arena mutex right after each assignment.
func (a *Arena) SetGrabHook(fn func(firstBlock, blocks uint64, site SiteID)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.grabHook = fn
}

// ApplyGrab replays a journaled block-range assignment: blocks
// [firstBlock, firstBlock+blocks) belong to site, and the next-free
// cursor moves past them. Idempotent; used only during recovery, before
// concurrent traffic starts.
func (a *Arena) ApplyGrab(firstBlock, blocks uint64, site SiteID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if firstBlock+blocks > a.numBlocks {
		return fmt.Errorf("memory: replayed grab [%d,%d) exceeds arena of %d blocks",
			firstBlock, firstBlock+blocks, a.numBlocks)
	}
	for i := uint64(0); i < blocks; i++ {
		a.blockSite[firstBlock+i] = site
	}
	if a.nextBlock < firstBlock+blocks {
		a.nextBlock = firstBlock + blocks
	}
	return nil
}

// SnapshotBlocks returns the next-free-block cursor and a copy of the
// block→site table up to it, taken atomically with respect to grabs.
func (a *Arena) SnapshotBlocks() (nextBlock uint64, blockSite []SiteID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs := make([]SiteID, a.nextBlock)
	copy(bs, a.blockSite[:a.nextBlock])
	return a.nextBlock, bs
}

// RestoreSnapshot installs a checkpoint image: heap words, the block→site
// table prefix, and the next-free cursor. It must run before any
// transactional traffic (recovery only); the arena must be at least as
// large as the image.
func (a *Arena) RestoreSnapshot(nextBlock uint64, blockSite []SiteID, words []uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if nextBlock > a.numBlocks {
		return fmt.Errorf("memory: checkpoint has %d blocks, arena only %d — grow CapacityWords", nextBlock, a.numBlocks)
	}
	if uint64(len(blockSite)) != nextBlock {
		return fmt.Errorf("memory: checkpoint block table has %d entries for %d blocks", len(blockSite), nextBlock)
	}
	if uint64(len(words)) != nextBlock<<a.blockShift {
		return fmt.Errorf("memory: checkpoint image has %d words for %d blocks of %d", len(words), nextBlock, a.blockSize)
	}
	copy(a.words, words)
	copy(a.blockSite, blockSite)
	if a.nextBlock < nextBlock {
		a.nextBlock = nextBlock
	}
	return nil
}

// BlockSiteTable returns the block→site table. The slice is owned by the
// arena; callers must treat it as read-only. Entries for blocks not yet
// assigned are DefaultSite. The partition registry uses this to map blocks
// to partitions.
func (a *Arena) BlockSiteTable() []SiteID { return a.blockSite }
