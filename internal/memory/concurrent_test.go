package memory

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestConcurrentAllocatorsDisjoint hammers per-thread allocators from many
// goroutines and checks that no two live allocations ever overlap: each
// allocation's word range is stamped with a unique tag and re-verified
// before free.
func TestConcurrentAllocatorsDisjoint(t *testing.T) {
	a := MustNewArena(Config{CapacityWords: 1 << 20, BlockShift: 10})
	site := a.Sites().Register("conc")
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	errCh := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			al := NewAllocator(a)
			type rec struct {
				addr Addr
				n    int
				tag  uint64
			}
			var live []rec
			tag := uint64(id) << 32
			for i := 0; i < iters; i++ {
				if len(live) < 32 {
					n := 1 + i%7
					addr, err := al.Alloc(site, n)
					if err != nil {
						errCh <- err.Error()
						return
					}
					tag++
					for j := 0; j < n; j++ {
						a.Store(addr+Addr(j), tag)
					}
					live = append(live, rec{addr, n, tag})
					continue
				}
				r := live[0]
				live = live[1:]
				for j := 0; j < r.n; j++ {
					if got := a.Load(r.addr + Addr(j)); got != r.tag {
						errCh <- "allocation overwritten: overlap between live allocations"
						return
					}
				}
				al.Free(r.addr, r.n)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
}

// TestAllocatorSiteIsolation verifies blocks handed to one site are never
// re-labeled for another even when allocators interleave.
func TestAllocatorSiteIsolation(t *testing.T) {
	a := MustNewArena(Config{CapacityWords: 1 << 16, BlockShift: 8})
	s1 := a.Sites().Register("iso.one")
	s2 := a.Sites().Register("iso.two")
	al := NewAllocator(a)
	var from1, from2 []Addr
	for i := 0; i < 200; i++ {
		a1 := al.MustAlloc(s1, 3)
		a2 := al.MustAlloc(s2, 5)
		from1 = append(from1, a1)
		from2 = append(from2, a2)
	}
	for _, addr := range from1 {
		if got := a.SiteOf(addr); got != s1 {
			t.Fatalf("addr %d labeled site %d, want %d", addr, got, s1)
		}
	}
	for _, addr := range from2 {
		if got := a.SiteOf(addr); got != s2 {
			t.Fatalf("addr %d labeled site %d, want %d", addr, got, s2)
		}
	}
}

// TestAllocFreeProperty is the testing/quick law: for any sequence of
// sizes, allocating then freeing then allocating the same sizes at one
// site never errors and never hands out address 0.
func TestAllocFreeProperty(t *testing.T) {
	a := MustNewArena(Config{CapacityWords: 1 << 18, BlockShift: 8})
	site := a.Sites().Register("prop")
	al := NewAllocator(a)
	f := func(sizes []uint8) bool {
		type rec struct {
			addr Addr
			n    int
		}
		var recs []rec
		for _, s := range sizes {
			n := int(s%32) + 1
			addr, err := al.Alloc(site, n)
			if err != nil || addr == Nil {
				return false
			}
			recs = append(recs, rec{addr, n})
		}
		for _, r := range recs {
			al.Free(r.addr, r.n)
		}
		for _, r := range recs {
			addr, err := al.Alloc(site, r.n)
			if err != nil || addr == Nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSitesConcurrentRegister registers overlapping name sets from many
// goroutines; every name must map to exactly one stable id.
func TestSitesConcurrentRegister(t *testing.T) {
	a := MustNewArena(Config{CapacityWords: 1 << 12, BlockShift: 8})
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const workers = 8
	ids := make([][]SiteID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ids[id] = make([]SiteID, len(names))
			for i, n := range names {
				ids[id][i] = a.Sites().Register(n)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range names {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("site %q: worker %d got id %d, worker 0 got %d",
					names[i], w, ids[w][i], ids[0][i])
			}
		}
	}
}
