package memory

// This file holds the arena-level half of epoch-based reclamation: the
// shared overflow limbo (where detached allocators flush their pending
// retires so no retired object is ever stranded) and the arena-wide
// retire/reclaim counters behind ReclaimStats.
//
// The per-thread half — limbo lists, free-list migration — lives on
// Allocator (alloc.go); the horizon itself is owned by the engine, which
// computes it from the internal/epoch table and passes it down.

// ReclaimStats is a momentary reading of the arena's reclamation
// counters. RetiredWords and ReclaimedWords are cumulative and monotonic;
// LimboWords is their difference — the words currently awaiting the
// horizon, across every allocator's limbo plus the shared overflow.
type ReclaimStats struct {
	RetiredWords   uint64
	ReclaimedWords uint64
	LimboWords     uint64
}

// ReclaimStats returns the arena-wide reclamation counters.
func (a *Arena) ReclaimStats() ReclaimStats {
	// Load reclaimed first: retired only grows, so racing with a concurrent
	// retire/reclaim pair can only over-report LimboWords, never underflow.
	rec := a.reclaimedWords.Load()
	ret := a.retiredWords.Load()
	return ReclaimStats{
		RetiredWords:   ret,
		ReclaimedWords: rec,
		LimboWords:     ret - rec,
	}
}

// flushShared appends limbo entries to the shared overflow limbo.
func (a *Arena) flushShared(recs []retiredObj) {
	if len(recs) == 0 {
		return
	}
	a.limboMu.Lock()
	a.sharedLimbo = append(a.sharedLimbo, recs...)
	a.limboMu.Unlock()
	a.sharedLive.Store(1)
}

// drainShared moves every shared-limbo entry whose stamp the horizon has
// passed into al's free lists, returning the words reclaimed. Entries from
// different threads interleave arbitrarily, so this filters rather than
// popping a prefix. The sharedLive flag keeps the common case — nothing
// ever flushed — to one atomic load, off the mutex.
func (a *Arena) drainShared(al *Allocator, horizon uint64) uint64 {
	if a.sharedLive.Load() == 0 {
		return 0
	}
	a.limboMu.Lock()
	var words uint64
	kept := a.sharedLimbo[:0]
	var take []retiredObj
	for _, r := range a.sharedLimbo {
		if r.stamp < horizon {
			take = append(take, r)
			words += uint64(r.n)
		} else {
			kept = append(kept, r)
		}
	}
	a.sharedLimbo = kept
	if len(kept) == 0 {
		a.sharedLive.Store(0)
	}
	a.limboMu.Unlock()
	// Recycling touches only the calling thread's allocator; no need to
	// hold the shared lock for it.
	for _, r := range take {
		al.recycle(r.addr, r.n)
	}
	if words > 0 {
		a.reclaimedWords.Add(words)
	}
	return words
}

// SharedLimboLen returns the number of objects in the shared overflow
// limbo (for tests and diagnostics).
func (a *Arena) SharedLimboLen() int {
	a.limboMu.Lock()
	defer a.limboMu.Unlock()
	return len(a.sharedLimbo)
}
