package memory

import "testing"

func newTestAllocator(t *testing.T) *Allocator {
	t.Helper()
	a := MustNewArena(Config{CapacityWords: 1 << 16, BlockShift: 8})
	return NewAllocator(a)
}

// TestRetireHoldsUntilHorizon: a retired object must not be reused before
// the horizon passes its stamp, and must be reused after.
func TestRetireHoldsUntilHorizon(t *testing.T) {
	al := newTestAllocator(t)
	site := al.Arena().Sites().Register("s")
	addr := al.MustAlloc(site, 8)
	al.Retire(addr, 8, 10)
	if got := al.LimboLen(); got != 1 {
		t.Fatalf("limbo len = %d, want 1", got)
	}
	if got := al.LimboWords(); got != 8 {
		t.Fatalf("limbo words = %d, want 8", got)
	}
	// Horizon at the stamp: a reader published at 10 may still reach the
	// object, so it stays in limbo (reclaim condition is strict).
	if w := al.Reclaim(10); w != 0 {
		t.Fatalf("reclaim at horizon==stamp freed %d words, want 0", w)
	}
	if next := al.MustAlloc(site, 8); next == addr {
		t.Fatalf("address %d recycled while still in limbo", addr)
	}
	if w := al.Reclaim(11); w != 8 {
		t.Fatalf("reclaim past stamp freed %d words, want 8", w)
	}
	if got := al.MustAlloc(site, 8); got != addr {
		t.Fatalf("reclaimed address not recycled: got %d, want %d", got, addr)
	}
	st := al.Arena().ReclaimStats()
	if st.RetiredWords != 8 || st.ReclaimedWords != 8 || st.LimboWords != 0 {
		t.Fatalf("stats = %+v, want 8 retired, 8 reclaimed, 0 limbo", st)
	}
}

// TestReclaimPrefix: stamps are non-decreasing, so a partial horizon
// reclaims exactly the eligible prefix.
func TestReclaimPrefix(t *testing.T) {
	al := newTestAllocator(t)
	site := al.Arena().Sites().Register("s")
	var addrs []Addr
	for i := 0; i < 10; i++ {
		a := al.MustAlloc(site, 4)
		al.Retire(a, 4, uint64(i+1))
		addrs = append(addrs, a)
	}
	if w := al.Reclaim(6); w != 5*4 {
		t.Fatalf("reclaim(6) freed %d words, want %d", w, 5*4)
	}
	if got := al.LimboLen(); got != 5 {
		t.Fatalf("limbo len after partial reclaim = %d, want 5", got)
	}
	// The five reclaimed addresses come back (LIFO per free list).
	seen := map[Addr]bool{}
	for i := 0; i < 5; i++ {
		seen[al.MustAlloc(site, 4)] = true
	}
	for _, a := range addrs[:5] {
		if !seen[a] {
			t.Fatalf("address %d not recycled after reclaim", a)
		}
	}
}

// TestLargeObjectRecycling pins the large-object leak fix: sizes at or
// above maxSmallSize round-trip through Free/Retire into per-site large
// free lists and are reused on exact-size match.
func TestLargeObjectRecycling(t *testing.T) {
	al := newTestAllocator(t)
	site := al.Arena().Sites().Register("big")
	// One mid-size (between maxSmallSize and blockSize) and one
	// block-spanning object.
	for _, n := range []int{maxSmallSize, 100, 1000} {
		addr := al.MustAlloc(site, n)
		al.Retire(addr, n, 1)
		al.Reclaim(2)
		if got := al.MustAlloc(site, n); got != addr {
			t.Fatalf("large object of %d words not recycled: got %d, want %d", n, got, addr)
		}
		// A different size must not match the recycled extent.
		al.Free(addr, n) // immediate path also routes large sizes
		if got := al.MustAlloc(site, n+1); got == addr {
			t.Fatalf("size-%d request served from size-%d extent", n+1, n)
		}
		if got := al.MustAlloc(site, n); got != addr {
			t.Fatalf("Free'd large object of %d words not recycled", n)
		}
	}
}

// TestFlushLimboSharedDrain: a flushed limbo survives its allocator and is
// drained into another allocator's free lists once the horizon allows.
func TestFlushLimboSharedDrain(t *testing.T) {
	arena := MustNewArena(Config{CapacityWords: 1 << 16, BlockShift: 8})
	site := arena.Sites().Register("s")
	a1 := NewAllocator(arena)
	a2 := NewAllocator(arena)
	addr := a1.MustAlloc(site, 8)
	a1.Retire(addr, 8, 5)
	a1.FlushLimbo()
	if a1.LimboLen() != 0 {
		t.Fatalf("limbo not empty after flush")
	}
	if arena.SharedLimboLen() != 1 {
		t.Fatalf("shared limbo len = %d, want 1", arena.SharedLimboLen())
	}
	// Horizon not yet past the stamp: drain keeps the entry.
	if w := a2.Reclaim(5); w != 0 {
		t.Fatalf("premature shared drain reclaimed %d words", w)
	}
	if arena.SharedLimboLen() != 1 {
		t.Fatalf("shared limbo drained early")
	}
	if w := a2.Reclaim(6); w != 8 {
		t.Fatalf("shared drain reclaimed %d words, want 8", w)
	}
	if got := a2.MustAlloc(site, 8); got != addr {
		t.Fatalf("drained object not recycled into draining allocator: got %d, want %d", got, addr)
	}
	st := arena.ReclaimStats()
	if st.LimboWords != 0 {
		t.Fatalf("limbo words = %d after full drain, want 0", st.LimboWords)
	}
}

// TestNeedsReclaimArming: NeedsReclaim fires once per ReclaimBatch of
// growth, and a fruitless reclaim (stalled horizon) re-arms rather than
// firing on every subsequent retire.
func TestNeedsReclaimArming(t *testing.T) {
	al := newTestAllocator(t)
	site := al.Arena().Sites().Register("s")
	for i := 0; i < ReclaimBatch-1; i++ {
		al.Retire(al.MustAlloc(site, 1), 1, 1)
	}
	if al.NeedsReclaim() {
		t.Fatalf("NeedsReclaim before %d retires", ReclaimBatch)
	}
	al.Retire(al.MustAlloc(site, 1), 1, 1)
	if !al.NeedsReclaim() {
		t.Fatalf("NeedsReclaim not set at %d retires", ReclaimBatch)
	}
	// Stalled horizon: nothing reclaimable, threshold moves out.
	if w := al.Reclaim(1); w != 0 {
		t.Fatalf("stalled reclaim freed %d words", w)
	}
	if al.NeedsReclaim() {
		t.Fatalf("NeedsReclaim still set right after a fruitless reclaim")
	}
}
