package apps

import (
	"fmt"
	"sync/atomic"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Labyrinth is a STAMP-labyrinth-inspired path-routing workload: each
// operation claims a shortest path between two random free cells of a
// shared grid, reading every cell the search frontier touches and writing
// every cell of the chosen path in one transaction. It is the long-
// transaction extreme of the suite — read sets of hundreds of words,
// write sets of tens — and therefore the workload where contention
// management policy (not read visibility) dominates: a suicide CM
// livelocks long routes behind short ones, while older-wins arbitration
// lets them finish. When the grid congests, a clearing transaction wipes
// it (the STAMP benchmark instead pre-sizes its grid to fit all paths).
type Labyrinth struct {
	grid *txds.CounterArray
	w, h int
	// pathID hands out path ids; it intentionally lives OUTSIDE the
	// transactional heap (ids may be burned by aborted attempts, which is
	// fine — they only need uniqueness, and keeping the counter out of
	// the heap keeps it from serializing all routing transactions). It is
	// atomic because every routing worker draws from it.
	pathID atomic.Uint64
}

// LabyrinthConfig sizes the grid.
type LabyrinthConfig struct {
	Width, Height int
}

// DefaultLabyrinthConfig returns the sizing used by the experiments.
func DefaultLabyrinthConfig() LabyrinthConfig {
	return LabyrinthConfig{Width: 32, Height: 32}
}

// NewLabyrinth allocates the grid (all cells free).
func NewLabyrinth(rt *stm.Runtime, th *stm.Thread, cfg LabyrinthConfig) *Labyrinth {
	if cfg.Width == 0 {
		cfg = DefaultLabyrinthConfig()
	}
	l := &Labyrinth{w: cfg.Width, h: cfg.Height}
	th.Atomic(func(tx *stm.Tx) {
		l.grid = txds.NewCounterArray(tx, rt, "labyrinth.grid", cfg.Width*cfg.Height, 0)
	})
	return l
}

func (l *Labyrinth) cell(x, y int) int { return y*l.w + x }

// Route claims a path from (x1,y1) to (x2,y2) in one transaction. It
// returns the path length, or 0 when no free path exists or an endpoint
// is occupied. The BFS reads grid cells transactionally, so the claimed
// path is consistent with every concurrent routing transaction.
func (l *Labyrinth) Route(th *stm.Thread, x1, y1, x2, y2 int) int {
	pathID := l.pathID.Add(1)<<8 | 1 // nonzero marker
	var length int
	th.Atomic(func(tx *stm.Tx) {
		length = 0
		if tx.Load(l.grid.Addr(l.cell(x1, y1))) != 0 || tx.Load(l.grid.Addr(l.cell(x2, y2))) != 0 {
			return
		}
		// BFS from src to dst over free cells. prev[c] = c2+1 encodes the
		// predecessor; 0 = unvisited. Private (non-transactional) scratch:
		// only the grid reads/writes are part of the transaction.
		prev := make([]int, l.w*l.h)
		queue := []int{l.cell(x1, y1)}
		prev[l.cell(x1, y1)] = l.cell(x1, y1) + 1
		dst := l.cell(x2, y2)
		found := false
		for len(queue) > 0 && !found {
			c := queue[0]
			queue = queue[1:]
			cx, cy := c%l.w, c/l.w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || ny < 0 || nx >= l.w || ny >= l.h {
					continue
				}
				n := l.cell(nx, ny)
				if prev[n] != 0 {
					continue
				}
				if tx.Load(l.grid.Addr(n)) != 0 {
					continue // occupied: read is part of the snapshot
				}
				prev[n] = c + 1
				if n == dst {
					found = true
					break
				}
				queue = append(queue, n)
			}
		}
		if !found {
			return
		}
		// Walk back and claim the path.
		for c := dst; ; c = prev[c] - 1 {
			tx.Store(l.grid.Addr(c), pathID)
			length++
			if prev[c]-1 == c {
				break
			}
		}
	})
	return length
}

// Clear wipes the grid in one (very large) transaction.
func (l *Labyrinth) Clear(th *stm.Thread) {
	th.Atomic(func(tx *stm.Tx) {
		for i := 0; i < l.w*l.h; i++ {
			l.grid.Set(tx, i, 0)
		}
	})
}

// Op routes between two random cells, clearing the grid when it has
// congested (routing keeps failing).
func (l *Labyrinth) Op(th *stm.Thread, rng *workload.Rng) bool {
	x1, y1 := rng.Intn(l.w), rng.Intn(l.h)
	x2, y2 := rng.Intn(l.w), rng.Intn(l.h)
	if x1 == x2 && y1 == y2 {
		return false
	}
	if l.Route(th, x1, y1, x2, y2) > 0 {
		return true
	}
	// Congestion heuristic: if more than half the grid is claimed, clear.
	var used uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		for i := 0; i < l.w*l.h; i++ {
			if l.grid.Get(tx, i) != 0 {
				used++
			}
		}
	})
	if used > uint64(l.w*l.h/2) {
		l.Clear(th)
	}
	return false
}

// Occupancy returns the number of claimed cells.
func (l *Labyrinth) Occupancy(th *stm.Thread) int {
	n := 0
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		for i := 0; i < l.w*l.h; i++ {
			if l.grid.Get(tx, i) != 0 {
				n++
			}
		}
	})
	return n
}

// CheckInvariants verifies every claimed path is intact: cells sharing a
// path id form one 4-connected component with no cell claimed twice
// (serializability of routing transactions implies exactly this).
func (l *Labyrinth) CheckInvariants(th *stm.Thread) string {
	var snapshot []uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		snapshot = make([]uint64, l.w*l.h)
		for i := range snapshot {
			snapshot[i] = l.grid.Get(tx, i)
		}
	})
	// Group cells by path id and check connectivity per group.
	cellsByID := map[uint64][]int{}
	for c, id := range snapshot {
		if id != 0 {
			cellsByID[id] = append(cellsByID[id], c)
		}
	}
	for id, cells := range cellsByID {
		inPath := map[int]bool{}
		for _, c := range cells {
			inPath[c] = true
		}
		// Flood from the first cell; all cells of the id must be reached.
		seen := map[int]bool{cells[0]: true}
		stack := []int{cells[0]}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := c%l.w, c/l.w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || ny < 0 || nx >= l.w || ny >= l.h {
					continue
				}
				n := l.cell(nx, ny)
				if inPath[n] && !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		if len(seen) != len(cells) {
			return fmt.Sprintf("labyrinth: path %d fragmented (%d of %d cells connected)",
				id, len(seen), len(cells))
		}
	}
	return ""
}
