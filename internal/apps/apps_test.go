package apps

import (
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/stm"
)

func newRT(t testing.TB, yield uint64) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 22, BlockShift: 10, YieldEveryOps: yield})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestItemPacking(t *testing.T) {
	cases := []struct{ total, free, price uint64 }{
		{0, 0, 0},
		{100, 100, 499},
		{0xFFFFFF, 0xFFFFFF, 0xFFFF},
		{1, 0, 50},
	}
	for _, c := range cases {
		tt, f, p := unpackItem(packItem(c.total, c.free, c.price))
		if tt != c.total || f != c.free || p != c.price {
			t.Fatalf("pack/unpack(%v) = (%d,%d,%d)", c, tt, f, p)
		}
	}
}

func TestVacationSequential(t *testing.T) {
	rt := newRT(t, 0)
	th := rt.MustAttach()
	defer rt.Detach(th)
	cfg := VacationConfig{
		ItemsPerTable:       64,
		Customers:           32,
		InitialSeats:        5,
		QueriesPerTx:        3,
		UpdateTableRatio:    0.05,
		DeleteCustomerRatio: 0.05,
	}
	v := NewVacation(rt, th, cfg)
	rng := workload.NewRng(2)
	booked := 0
	for i := 0; i < 2000; i++ {
		if v.Op(th, rng) == "reserve" {
			booked++
		}
	}
	if booked == 0 {
		t.Fatal("no reservations made")
	}
	if msg := v.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestVacationConcurrentInvariants(t *testing.T) {
	rt := newRT(t, 8)
	setup := rt.MustAttach()
	cfg := VacationConfig{
		ItemsPerTable:       128,
		Customers:           64,
		InitialSeats:        4,
		QueriesPerTx:        4,
		UpdateTableRatio:    0.02,
		DeleteCustomerRatio: 0.05,
	}
	v := NewVacation(rt, setup, cfg)
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < 1500; i++ {
				v.Op(th, rng)
			}
		}(uint64(w) + 10)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := v.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestVacationPartitions(t *testing.T) {
	rt := newRT(t, 0)
	rt.StartProfiling()
	th := rt.MustAttach()
	defer rt.Detach(th)
	cfg := DefaultVacationConfig()
	cfg.ItemsPerTable = 64
	cfg.Customers = 32
	v := NewVacation(rt, th, cfg)
	rng := workload.NewRng(4)
	for i := 0; i < 500; i++ {
		v.Op(th, rng)
	}
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	// Expected components: flights, cars, rooms, customers-tree+record+resv
	// (the customer record holds pointers to reservation nodes, and the
	// tree's value IS the record address but stored as a plain value; the
	// record→resv pointer links record and resv sites; the tree's root/node
	// sites link to each other) → at least 5 partitions incl. global.
	if got := plan.NumPartitions(); got < 5 {
		t.Fatalf("NumPartitions = %d, want >= 5\n%s", got, plan.Describe(rt.Sites()))
	}
	if msg := v.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestBankConservationConcurrent(t *testing.T) {
	rt := newRT(t, 8)
	setup := rt.MustAttach()
	cfg := BankConfig{Accounts: 128, InitialBalance: 500, AuditRatio: 0.1, MaxTransfer: 30}
	b := NewBank(rt, setup, cfg)
	rt.Detach(setup)
	var wg sync.WaitGroup
	audits := make(chan uint64, 10000)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < 2000; i++ {
				if b.Op(th, rng, cfg) == "audit" {
					// Op discards the audit result; re-audit to record it.
					audits <- b.Audit(th)
				}
			}
		}(uint64(w) * 7)
	}
	wg.Wait()
	close(audits)
	want := b.ExpectedTotal()
	for got := range audits {
		if got != want {
			t.Fatalf("audit saw %d, want %d", got, want)
		}
	}
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := b.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestIntSetPopulation(t *testing.T) {
	rt := newRT(t, 0)
	th := rt.MustAttach()
	defer rt.Detach(th)
	for _, spec := range []IntSetSpec{
		{Kind: SetList, Name: "tl.list", KeyRange: 64, UpdateRatio: 0.5},
		{Kind: SetSkipList, Name: "tl.skip", KeyRange: 128, UpdateRatio: 0.2},
		{Kind: SetRBTree, Name: "tl.tree", KeyRange: 256, UpdateRatio: 0.1},
		{Kind: SetHash, Name: "tl.hash", KeyRange: 256, UpdateRatio: 0.5, Buckets: 32},
	} {
		is := NewIntSet(rt, th, spec)
		n := is.Len(th)
		if n != int(spec.KeyRange/2) {
			t.Errorf("%s: populated %d, want %d", spec.Name, n, spec.KeyRange/2)
		}
		rng := workload.NewRng(3)
		for i := 0; i < 500; i++ {
			is.Op(th, rng)
		}
		// Stationary mix: size should stay in a broad band around half.
		n = is.Len(th)
		if n < int(spec.KeyRange/4) || n > int(3*spec.KeyRange/4) {
			t.Errorf("%s: size drifted to %d (range %d)", spec.Name, n, spec.KeyRange)
		}
	}
}

func TestMultiSetPartitions(t *testing.T) {
	rt := newRT(t, 0)
	rt.StartProfiling()
	th := rt.MustAttach()
	defer rt.Detach(th)
	specs := []IntSetSpec{
		{Kind: SetList, Name: "mm.list", KeyRange: 64, UpdateRatio: 0.5},
		{Kind: SetSkipList, Name: "mm.skip", KeyRange: 128, UpdateRatio: 0.2},
		{Kind: SetRBTree, Name: "mm.tree", KeyRange: 128, UpdateRatio: 0.05},
		{Kind: SetHash, Name: "mm.hash", KeyRange: 128, UpdateRatio: 0.5, Buckets: 32},
	}
	m := NewMultiSet(rt, th, specs)
	rng := workload.NewRng(8)
	for i := 0; i < 1000; i++ {
		m.Op(th, rng)
	}
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.NumPartitions(); got != 5 { // global + 4 structures
		t.Fatalf("NumPartitions = %d, want 5\n%s", got, plan.Describe(rt.Sites()))
	}
}

func TestPhasesFlip(t *testing.T) {
	rt := newRT(t, 0)
	th := rt.MustAttach()
	defer rt.Detach(th)
	cfg := PhasesConfig{
		Slots:                    64,
		InitialBalance:           100,
		PhaseOps:                 100,
		AuditRange:               16,
		ReadPhaseUpdateRatio:     0.05,
		WritePhaseRebalanceRatio: 0.5,
	}
	p := NewPhases(rt, th, cfg)
	if p.CurrentPhase() != "read-heavy" {
		t.Fatalf("initial phase = %s", p.CurrentPhase())
	}
	rng := workload.NewRng(6)
	seen := map[string]bool{}
	for i := 0; i < 450; i++ {
		seen[p.CurrentPhase()] = true
		p.Op(th, rng)
	}
	if !seen["read-heavy"] || !seen["update-heavy"] {
		t.Fatalf("phases seen: %v", seen)
	}
	if msg := p.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestPhasesConcurrentConservation(t *testing.T) {
	rt := newRT(t, 8)
	setup := rt.MustAttach()
	cfg := PhasesConfig{
		Slots:                    128,
		InitialBalance:           100,
		PhaseOps:                 500,
		AuditRange:               32,
		ReadPhaseUpdateRatio:     0.1,
		WritePhaseRebalanceRatio: 0.5,
	}
	p := NewPhases(rt, setup, cfg)
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < 1000; i++ {
				p.Op(th, rng)
			}
		}(uint64(w) + 21)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := p.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestKindStrings(t *testing.T) {
	for k := ReservationKind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if ReservationKind(9).String() == "" {
		t.Fatal("empty unknown kind string")
	}
	for k := IntSetKind(0); k < NumSetKinds; k++ {
		if k.String() == "" {
			t.Fatal("empty set kind string")
		}
	}
	if IntSetKind(9).String() == "" {
		t.Fatal("empty unknown set kind string")
	}
}
