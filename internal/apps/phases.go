package apps

import (
	"fmt"
	"sync/atomic"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Phases is the dynamic-workload application (fig6): a counter array
// under an operation mix that flips between
//
//   - a read-heavy phase (mostly read-only range audits, few transfers),
//     where invisible reads are optimal, and
//   - an update-heavy phase (rebalance transactions that scan the whole
//     array and then move value between its extreme slots, plus
//     transfers), where long update transactions starve under invisible
//     reads and visible reads with reader priority are optimal.
//
// A static configuration is right in one phase and wrong in the other;
// the runtime tuner should follow the flips. The conserved array total
// doubles as the invariant check.
type Phases struct {
	arr      *txds.CounterArray
	slots    int
	initial  uint64
	schedule *workload.Schedule
	cfg      PhasesConfig
	// opIndex is the global operation counter that advances the schedule
	// (shared across threads so all threads see the same phase).
	opIndex atomic.Int64
}

// PhasesConfig sizes the dynamic workload.
type PhasesConfig struct {
	Slots          int
	InitialBalance uint64
	// PhaseOps is the length of each phase in operations (across all
	// threads).
	PhaseOps int
	// AuditRange is the span of read-only range audits.
	AuditRange int
	// ReadPhaseUpdateRatio is the fraction of transfers during the
	// read-heavy phase (the rest are audits).
	ReadPhaseUpdateRatio float64
	// WritePhaseRebalanceRatio is the fraction of whole-array rebalance
	// transactions during the update-heavy phase (the rest are
	// transfers).
	WritePhaseRebalanceRatio float64
}

// DefaultPhasesConfig returns the experiment sizing.
func DefaultPhasesConfig() PhasesConfig {
	return PhasesConfig{
		Slots:                    1024,
		InitialBalance:           1000,
		PhaseOps:                 120_000,
		AuditRange:               128,
		ReadPhaseUpdateRatio:     0.05,
		WritePhaseRebalanceRatio: 0.50,
	}
}

// NewPhases builds the array.
func NewPhases(rt *stm.Runtime, th *stm.Thread, cfg PhasesConfig) *Phases {
	if cfg.AuditRange <= 0 || cfg.AuditRange > cfg.Slots {
		cfg.AuditRange = cfg.Slots
	}
	p := &Phases{
		slots:   cfg.Slots,
		initial: cfg.InitialBalance,
		cfg:     cfg,
		schedule: workload.NewSchedule(
			workload.Phase{Ops: cfg.PhaseOps, UpdateRatio: cfg.ReadPhaseUpdateRatio, Label: "read-heavy"},
			workload.Phase{Ops: cfg.PhaseOps, UpdateRatio: cfg.WritePhaseRebalanceRatio, Label: "update-heavy"},
		),
	}
	th.Atomic(func(tx *stm.Tx) {
		p.arr = txds.NewCounterArray(tx, rt, "phases.arr", cfg.Slots, cfg.InitialBalance)
	})
	return p
}

// CurrentPhase returns the label of the active phase.
func (p *Phases) CurrentPhase() string {
	return p.schedule.At(int(p.opIndex.Load())).Label
}

// Op runs one operation under the phase active at the global counter.
func (p *Phases) Op(th *stm.Thread, rng *workload.Rng) {
	idx := int(p.opIndex.Add(1))
	phase := p.schedule.At(idx)
	switch phase.Label {
	case "read-heavy":
		if rng.Float64() < phase.UpdateRatio {
			p.transfer(th, rng)
		} else {
			p.audit(th, rng)
		}
	default: // update-heavy
		if rng.Float64() < phase.UpdateRatio {
			p.rebalance(th, rng)
		} else {
			p.transfer(th, rng)
		}
	}
}

// audit is a read-only range sum.
func (p *Phases) audit(th *stm.Thread, rng *workload.Rng) {
	start := rng.Intn(p.slots - p.cfg.AuditRange + 1)
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		var s uint64
		for i := 0; i < p.cfg.AuditRange; i++ {
			s += p.arr.Get(tx, start+i)
		}
		_ = s
	})
}

// transfer is a short two-slot update.
func (p *Phases) transfer(th *stm.Thread, rng *workload.Rng) {
	from, to := rng.Intn(p.slots), rng.Intn(p.slots)
	th.Atomic(func(tx *stm.Tx) { p.arr.Transfer(tx, from, to, 1) })
}

// rebalance scans the whole array, finds the fullest and emptiest slots,
// and moves one unit between them — a long update transaction whose read
// set spans the array.
func (p *Phases) rebalance(th *stm.Thread, rng *workload.Rng) {
	th.Atomic(func(tx *stm.Tx) {
		maxI, minI := 0, 0
		var maxV, minV uint64
		maxV, minV = 0, ^uint64(0)
		for i := 0; i < p.slots; i++ {
			v := p.arr.Get(tx, i)
			if v > maxV {
				maxV, maxI = v, i
			}
			if v < minV {
				minV, minI = v, i
			}
		}
		if maxI != minI && maxV > 0 {
			p.arr.Transfer(tx, maxI, minI, 1)
		}
	})
}

// CheckInvariants verifies conservation of the array total.
func (p *Phases) CheckInvariants(th *stm.Thread) string {
	var sum uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) { sum = p.arr.Sum(tx) })
	want := uint64(p.slots) * p.initial
	if sum != want {
		return fmt.Sprintf("phases: array total %d, want %d", sum, want)
	}
	return ""
}
