package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// IntSetKind selects one of the four integer-set structures.
type IntSetKind int

// The intset structures of the microbenchmarks.
const (
	SetList IntSetKind = iota
	SetSkipList
	SetRBTree
	SetHash
	SetBTree
	NumSetKinds
)

func (k IntSetKind) String() string {
	switch k {
	case SetList:
		return "list"
	case SetSkipList:
		return "skiplist"
	case SetRBTree:
		return "rbtree"
	case SetHash:
		return "hashset"
	case SetBTree:
		return "btree"
	default:
		return fmt.Sprintf("set(%d)", int(k))
	}
}

// set is the common interface the intset driver uses.
type set interface {
	Contains(tx *stm.Tx, k uint64) bool
	Insert(tx *stm.Tx, k, v uint64) bool
	Remove(tx *stm.Tx, k uint64) (uint64, bool)
	Len(tx *stm.Tx) int
}

// IntSet wraps one structure with its benchmark parameters (key range and
// operation mix), pre-populated to half its key range so inserts and
// removes succeed about half the time (the standard intset methodology).
type IntSet struct {
	Kind IntSetKind
	Name string
	s    set
	keys workload.KeyGen
	mix  workload.Mix
}

// IntSetSpec declares one structure of a multi-structure application.
type IntSetSpec struct {
	Kind        IntSetKind
	Name        string
	KeyRange    uint64
	UpdateRatio float64
	Buckets     int // hash sets only; default 1024
}

// NewIntSet builds and populates one intset structure.
func NewIntSet(rt *stm.Runtime, th *stm.Thread, spec IntSetSpec) *IntSet {
	is := &IntSet{
		Kind: spec.Kind,
		Name: spec.Name,
		keys: workload.Uniform{N: spec.KeyRange},
		mix:  workload.Mix{UpdateRatio: spec.UpdateRatio},
	}
	th.Atomic(func(tx *stm.Tx) {
		switch spec.Kind {
		case SetList:
			is.s = txds.NewList(tx, rt, spec.Name)
		case SetSkipList:
			is.s = txds.NewSkipList(tx, rt, spec.Name, 17)
		case SetRBTree:
			is.s = txds.NewRBTree(tx, rt, spec.Name)
		case SetHash:
			b := spec.Buckets
			if b == 0 {
				b = 1024
			}
			is.s = txds.NewHashSet(tx, rt, spec.Name, b)
		case SetBTree:
			is.s = txds.NewBTree(tx, rt, spec.Name)
		default:
			panic(fmt.Sprintf("apps: unknown set kind %d", spec.Kind))
		}
	})
	// Populate to half occupancy, a few keys per transaction.
	rng := workload.NewRng(uint64(spec.Kind) + 99)
	target := spec.KeyRange / 2
	added := uint64(0)
	for added < target {
		before := added
		th.Atomic(func(tx *stm.Tx) {
			added = before // retries must not double-count
			for i := 0; i < 32 && added < target; i++ {
				k := is.keys.Next(rng)
				if is.s.Insert(tx, k, k) {
					added++
				}
			}
		})
	}
	return is
}

// Op runs one operation from the structure's mix.
func (is *IntSet) Op(th *stm.Thread, rng *workload.Rng) {
	k := is.keys.Next(rng)
	switch is.mix.Next(rng) {
	case workload.OpLookup:
		th.ReadOnlyAtomic(func(tx *stm.Tx) { is.s.Contains(tx, k) })
	case workload.OpInsert:
		th.Atomic(func(tx *stm.Tx) { is.s.Insert(tx, k, k) })
	case workload.OpRemove:
		th.Atomic(func(tx *stm.Tx) { is.s.Remove(tx, k) })
	}
}

// Len returns the current element count.
func (is *IntSet) Len(th *stm.Thread) int {
	var n int
	th.Atomic(func(tx *stm.Tx) { n = is.s.Len(tx) })
	return n
}

// Ledger is the long-update-transaction component of the composite
// application: a counter array where a fraction of operations scan the
// whole array and move one unit out of the fullest slot ("rebalance"),
// and the rest are short transfers. Rebalances have array-sized read
// sets, so under invisible reads the transfer churn keeps killing them
// on validation — this is the partition that wants visible reads with
// reader priority, while the set structures next to it want invisible
// reads. No global configuration satisfies both.
type Ledger struct {
	arr           *txds.CounterArray
	slots         int
	rebalanceFrac float64
}

// LedgerSpec sizes the ledger component.
type LedgerSpec struct {
	Slots         int
	RebalanceFrac float64
}

// NewLedger builds the ledger.
func NewLedger(rt *stm.Runtime, th *stm.Thread, name string, spec LedgerSpec) *Ledger {
	l := &Ledger{slots: spec.Slots, rebalanceFrac: spec.RebalanceFrac}
	th.Atomic(func(tx *stm.Tx) {
		l.arr = txds.NewCounterArray(tx, rt, name, spec.Slots, 100)
	})
	return l
}

// Op runs one ledger operation.
func (l *Ledger) Op(th *stm.Thread, rng *workload.Rng) {
	if rng.Float64() < l.rebalanceFrac {
		to := rng.Intn(l.slots)
		th.Atomic(func(tx *stm.Tx) {
			maxI, maxV := 0, uint64(0)
			for i := 0; i < l.slots; i++ {
				if v := l.arr.Get(tx, i); v > maxV {
					maxV, maxI = v, i
				}
			}
			if maxI != to && maxV > 0 {
				l.arr.Transfer(tx, maxI, to, 1)
			}
		})
		return
	}
	from, to := rng.Intn(l.slots), rng.Intn(l.slots)
	th.Atomic(func(tx *stm.Tx) { l.arr.Transfer(tx, from, to, 1) })
}

// Total returns the conserved array sum (invariant check).
func (l *Ledger) Total(th *stm.Thread) uint64 {
	var s uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) { s = l.arr.Sum(tx) })
	return s
}

// ExpectedTotal returns the invariant value.
func (l *Ledger) ExpectedTotal() uint64 { return uint64(l.slots) * 100 }

// MultiSet is the fig2 application: several structures with different
// characteristics living in one program — read-mostly trees, churning
// sets, and a ledger with long update transactions — so that no single
// global STM configuration suits all of them.
type MultiSet struct {
	Sets   []*IntSet
	Ledger *Ledger // optional
}

// MultiSetConfig declares the composite application.
type MultiSetConfig struct {
	Specs []IntSetSpec
	// Ledger, when non-nil, adds the long-update-transaction component.
	Ledger *LedgerSpec
}

// DefaultMultiSetSpecs returns the heterogeneous four-structure workload:
// a short contended list with heavy updates, a mid-size skip list, a
// large read-mostly red-black tree, and a hash set with moderate churn.
func DefaultMultiSetSpecs() []IntSetSpec {
	return []IntSetSpec{
		{Kind: SetList, Name: "intset.list", KeyRange: 256, UpdateRatio: 0.50},
		{Kind: SetSkipList, Name: "intset.skip", KeyRange: 4096, UpdateRatio: 0.20},
		{Kind: SetRBTree, Name: "intset.tree", KeyRange: 16384, UpdateRatio: 0.02},
		{Kind: SetHash, Name: "intset.hash", KeyRange: 16384, UpdateRatio: 0.50, Buckets: 2048},
	}
}

// DefaultLedgerSpec returns the fig2/table1 ledger sizing (10% rebalance
// share puts invisible reads well past the fig3 crossover).
func DefaultLedgerSpec() LedgerSpec {
	return LedgerSpec{Slots: 1024, RebalanceFrac: 0.10}
}

// NewMultiSet builds all structures of the composite application.
func NewMultiSet(rt *stm.Runtime, th *stm.Thread, specs []IntSetSpec) *MultiSet {
	return NewMultiSetApp(rt, th, MultiSetConfig{Specs: specs})
}

// NewMultiSetApp builds the composite application, including the ledger
// when configured.
func NewMultiSetApp(rt *stm.Runtime, th *stm.Thread, cfg MultiSetConfig) *MultiSet {
	m := &MultiSet{}
	for _, sp := range cfg.Specs {
		m.Sets = append(m.Sets, NewIntSet(rt, th, sp))
	}
	if cfg.Ledger != nil {
		m.Ledger = NewLedger(rt, th, "intset.ledger", *cfg.Ledger)
	}
	return m
}

// Op picks a component uniformly and runs one of its operations — every
// transaction touches exactly one structure, as in the paper's
// per-data-structure workload model.
func (m *MultiSet) Op(th *stm.Thread, rng *workload.Rng) {
	n := len(m.Sets)
	if m.Ledger != nil {
		n++
	}
	i := rng.Intn(n)
	if i < len(m.Sets) {
		m.Sets[i].Op(th, rng)
		return
	}
	m.Ledger.Op(th, rng)
}
