// Package apps contains the application benchmarks of the evaluation:
// vacation (a STAMP-style travel reservation system), bank (transfers and
// audits over an account array), the phase-switching composite workload,
// and the multi-structure intset application. Each app exposes a Setup
// step, per-thread operation drivers, and invariant checks used by the
// tests.
package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Reservation tables, STAMP-style: flights, cars and rooms are red-black
// trees keyed by item id; each item packs (total, free, price) into the
// value word. Customers are a fourth tree whose value is the address of a
// customer record holding a linked list of reservations.
//
// The partitioning story is exactly the paper's: the four tables are
// pointer-disjoint structures, so the analyzer places each in its own
// partition, and the reservation tables (update-heavy during bookings)
// can be tuned differently from, say, a read-mostly flights table.

// ReservationKind distinguishes the three bookable tables.
type ReservationKind uint64

// Bookable tables.
const (
	KindFlight ReservationKind = iota
	KindCar
	KindRoom
	numKinds
)

func (k ReservationKind) String() string {
	switch k {
	case KindFlight:
		return "flight"
	case KindCar:
		return "car"
	case KindRoom:
		return "room"
	default:
		return fmt.Sprintf("kind(%d)", uint64(k))
	}
}

// Item value packing: price (16 bits) | free (24 bits) | total (24 bits).
func packItem(total, free, price uint64) uint64 {
	return total&0xFFFFFF | (free&0xFFFFFF)<<24 | (price&0xFFFF)<<48
}

func unpackItem(v uint64) (total, free, price uint64) {
	return v & 0xFFFFFF, (v >> 24) & 0xFFFFFF, (v >> 48) & 0xFFFF
}

// Customer record layout: [0] = reservation list head.
// Reservation node layout: [0]=kind, [1]=itemID, [2]=price, [3]=next.
const (
	custWords = 1
	resvKind  = 0
	resvItem  = 1
	resvPrice = 2
	resvNext  = 3
	resvWords = 4
)

// VacationConfig sizes the reservation system.
type VacationConfig struct {
	ItemsPerTable int // rows per bookable table
	Customers     int
	InitialSeats  uint64 // capacity per item
	QueriesPerTx  int    // items examined per reservation transaction
	// UpdateTableRatio and DeleteCustomerRatio give the STAMP-style mix;
	// the rest are MakeReservation transactions.
	UpdateTableRatio    float64
	DeleteCustomerRatio float64
}

// DefaultVacationConfig mirrors STAMP vacation-low proportions.
func DefaultVacationConfig() VacationConfig {
	return VacationConfig{
		ItemsPerTable:       1 << 10,
		Customers:           1 << 10,
		InitialSeats:        100,
		QueriesPerTx:        4,
		UpdateTableRatio:    0.01,
		DeleteCustomerRatio: 0.01,
	}
}

// Vacation is the travel reservation system.
type Vacation struct {
	cfg       VacationConfig
	tables    [numKinds]*txds.RBTree
	customers *txds.RBTree
	custSite  stm.SiteID
	resvSite  stm.SiteID
}

// NewVacation builds the tables and populates them. Call inside a setup
// thread; population runs many small transactions so it also serves as
// the profiling workload for partition discovery.
func NewVacation(rt *stm.Runtime, th *stm.Thread, cfg VacationConfig) *Vacation {
	v := &Vacation{cfg: cfg}
	th.Atomic(func(tx *stm.Tx) {
		v.tables[KindFlight] = txds.NewRBTree(tx, rt, "vacation.flights")
		v.tables[KindCar] = txds.NewRBTree(tx, rt, "vacation.cars")
		v.tables[KindRoom] = txds.NewRBTree(tx, rt, "vacation.rooms")
		v.customers = txds.NewRBTree(tx, rt, "vacation.customers")
		v.custSite = rt.RegisterSite("vacation.customers.record")
		v.resvSite = rt.RegisterSite("vacation.customers.resv")
	})
	rng := workload.NewRng(1)
	for i := 0; i < cfg.ItemsPerTable; i++ {
		id := uint64(i)
		price := 50 + uint64(rng.Intn(450))
		th.Atomic(func(tx *stm.Tx) {
			for k := ReservationKind(0); k < numKinds; k++ {
				v.tables[k].Insert(tx, id, packItem(cfg.InitialSeats, cfg.InitialSeats, price))
			}
		})
	}
	for c := 0; c < cfg.Customers; c++ {
		id := uint64(c)
		th.Atomic(func(tx *stm.Tx) {
			rec := tx.Alloc(v.custSite, custWords)
			tx.Store(rec, uint64(stm.Nil))
			v.customers.Insert(tx, id, uint64(rec))
		})
	}
	return v
}

// Config returns the sizing used.
func (v *Vacation) Config() VacationConfig { return v.cfg }

// MakeReservation examines QueriesPerTx random items in a random table
// and books the cheapest one with free capacity for the customer. It
// reports whether a booking was made.
func (v *Vacation) MakeReservation(th *stm.Thread, rng *workload.Rng) bool {
	kind := ReservationKind(rng.Intn(int(numKinds)))
	custID := uint64(rng.Intn(v.cfg.Customers))
	ids := make([]uint64, v.cfg.QueriesPerTx)
	for i := range ids {
		ids[i] = uint64(rng.Intn(v.cfg.ItemsPerTable))
	}
	booked := false
	th.Atomic(func(tx *stm.Tx) {
		booked = false // reset on retry
		table := v.tables[kind]
		bestID, bestPrice := uint64(0), ^uint64(0)
		found := false
		for _, id := range ids {
			val, ok := table.Lookup(tx, id)
			if !ok {
				continue // item removed by a table update
			}
			_, free, price := unpackItem(val)
			if free > 0 && price < bestPrice {
				bestID, bestPrice, found = id, price, true
			}
		}
		if !found {
			return
		}
		recAddr, ok := v.customers.Lookup(tx, custID)
		if !ok {
			return // customer deleted concurrently
		}
		val, _ := table.Lookup(tx, bestID)
		total, free, price := unpackItem(val)
		if free == 0 {
			return
		}
		table.Set(tx, bestID, packItem(total, free-1, price))
		n := tx.Alloc(v.resvSite, resvWords)
		tx.Store(n+resvKind, uint64(kind))
		tx.Store(n+resvItem, bestID)
		tx.Store(n+resvPrice, price)
		rec := stm.Addr(recAddr)
		tx.StoreAddr(n+resvNext, tx.LoadAddr(rec))
		tx.StoreAddr(rec, n)
		booked = true
	})
	return booked
}

// DeleteCustomer removes a customer and releases all their reservations
// back to the tables. Reports whether the customer existed.
func (v *Vacation) DeleteCustomer(th *stm.Thread, rng *workload.Rng) bool {
	custID := uint64(rng.Intn(v.cfg.Customers))
	existed := false
	th.Atomic(func(tx *stm.Tx) {
		existed = false
		recAddr, ok := v.customers.Remove(tx, custID)
		if !ok {
			return
		}
		existed = true
		rec := stm.Addr(recAddr)
		n := tx.LoadAddr(rec)
		for n != stm.Nil {
			kind := ReservationKind(tx.Load(n + resvKind))
			item := tx.Load(n + resvItem)
			if val, ok := v.tables[kind].Lookup(tx, item); ok {
				total, free, price := unpackItem(val)
				v.tables[kind].Set(tx, item, packItem(total, free+1, price))
			}
			next := tx.LoadAddr(n + resvNext)
			tx.Free(n, resvWords)
			n = next
		}
		tx.Free(rec, custWords)
		// Recreate the customer empty so the id space stays stable (the
		// STAMP benchmark deletes and re-adds customers over time; keeping
		// the population constant keeps the mix stationary).
		fresh := tx.Alloc(v.custSite, custWords)
		tx.Store(fresh, uint64(stm.Nil))
		v.customers.Insert(tx, custID, uint64(fresh))
	})
	return existed
}

// UpdateTables performs the STAMP "manager" operation: for a few random
// items, either re-price them or toggle them out of/into existence.
func (v *Vacation) UpdateTables(th *stm.Thread, rng *workload.Rng) {
	kind := ReservationKind(rng.Intn(int(numKinds)))
	n := 1 + rng.Intn(4)
	ids := make([]uint64, n)
	prices := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(rng.Intn(v.cfg.ItemsPerTable))
		prices[i] = 50 + uint64(rng.Intn(450))
	}
	th.Atomic(func(tx *stm.Tx) {
		table := v.tables[kind]
		for i, id := range ids {
			if val, ok := table.Lookup(tx, id); ok {
				total, free, _ := unpackItem(val)
				table.Set(tx, id, packItem(total, free, prices[i]))
			} else {
				table.Insert(tx, id, packItem(v.cfg.InitialSeats, v.cfg.InitialSeats, prices[i]))
			}
		}
	})
}

// Op runs one operation drawn from the configured mix; it returns a label
// for throughput accounting.
func (v *Vacation) Op(th *stm.Thread, rng *workload.Rng) string {
	u := rng.Float64()
	switch {
	case u < v.cfg.UpdateTableRatio:
		v.UpdateTables(th, rng)
		return "update"
	case u < v.cfg.UpdateTableRatio+v.cfg.DeleteCustomerRatio:
		v.DeleteCustomer(th, rng)
		return "delete"
	default:
		v.MakeReservation(th, rng)
		return "reserve"
	}
}

// CheckInvariants validates that for every item, used seats (reservations
// held by customers) + free seats == total seats, and that all table
// shapes are valid red-black trees. Returns "" when consistent.
func (v *Vacation) CheckInvariants(th *stm.Thread) string {
	var msg string
	th.Atomic(func(tx *stm.Tx) {
		msg = ""
		for k := ReservationKind(0); k < numKinds; k++ {
			if m := v.tables[k].CheckInvariants(tx); m != "" {
				msg = fmt.Sprintf("%s table: %s", k, m)
				return
			}
		}
		if m := v.customers.CheckInvariants(tx); m != "" {
			msg = "customers table: " + m
			return
		}
		// Count reservations per (kind, item).
		used := make(map[[2]uint64]uint64)
		for _, custID := range v.customers.Keys(tx) {
			recAddr, _ := v.customers.Lookup(tx, custID)
			for n := tx.LoadAddr(stm.Addr(recAddr)); n != stm.Nil; n = tx.LoadAddr(n + resvNext) {
				used[[2]uint64{tx.Load(n + resvKind), tx.Load(n + resvItem)}]++
			}
		}
		for k := ReservationKind(0); k < numKinds; k++ {
			for _, id := range v.tables[k].Keys(tx) {
				val, _ := v.tables[k].Lookup(tx, id)
				total, free, _ := unpackItem(val)
				u := used[[2]uint64{uint64(k), id}]
				if free+u != total {
					msg = fmt.Sprintf("%s item %d: free %d + used %d != total %d", k, id, free, u, total)
					return
				}
			}
		}
	})
	return msg
}
