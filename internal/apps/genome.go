package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Genome is a STAMP-genome-inspired sequence-assembly workload. The
// original benchmark deduplicates DNA segments into a hash set, indexes
// them by prefix, and links overlapping segments into contigs. This
// reimplementation keeps the three structures and their very different
// transactional profiles:
//
//   - segments: a hash set taking the dedup inserts — update-heavy while
//     fresh segments arrive, read-mostly once the pool saturates.
//   - index: a hash set keyed by segment prefix — written once per unique
//     segment, then read-only during matching.
//   - contigs: link nodes chaining matched segments — append-only writes
//     concentrated on recently inserted segments.
//
// Because the phases drift (dedup-heavy at the start, match-heavy later),
// genome exercises both the partitioner (three structures, three
// partitions) and the runtime tuner (per-partition profiles change as the
// pool saturates). Segments are synthetic 64-bit values; the "overlap" of
// the paper's DNA strings is modeled as suffix-half == prefix-half, which
// preserves the index-lookup-then-link transaction shape.
type Genome struct {
	segments *txds.HashSet // segment value → 1 (dedup set)
	index    *txds.HashSet // prefix (high 32 bits) → segment value
	links    *txds.CounterArray
	nLinks   int

	segGen workload.KeyGen
}

// GenomeConfig sizes the workload.
type GenomeConfig struct {
	// SegmentSpace is the number of distinct possible segments; smaller
	// values saturate the dedup set sooner.
	SegmentSpace uint64
	// Buckets sizes both hash sets.
	Buckets int
	// LinkSlots bounds the contig link table.
	LinkSlots int
}

// DefaultGenomeConfig returns the sizing used by the experiments.
func DefaultGenomeConfig() GenomeConfig {
	return GenomeConfig{SegmentSpace: 1 << 14, Buckets: 1 << 10, LinkSlots: 1 << 12}
}

// NewGenome allocates the three structures (empty; segments arrive through
// Op).
func NewGenome(rt *stm.Runtime, th *stm.Thread, cfg GenomeConfig) *Genome {
	if cfg.SegmentSpace == 0 {
		cfg = DefaultGenomeConfig()
	}
	g := &Genome{
		nLinks: cfg.LinkSlots,
		segGen: workload.Uniform{N: cfg.SegmentSpace},
	}
	th.Atomic(func(tx *stm.Tx) {
		g.segments = txds.NewHashSet(tx, rt, "genome.segments", cfg.Buckets)
		g.index = txds.NewHashSet(tx, rt, "genome.index", cfg.Buckets)
		g.links = txds.NewCounterArray(tx, rt, "genome.links", cfg.LinkSlots, 0)
	})
	return g
}

// Op processes one arriving segment: dedup-insert it, and if it is fresh,
// index its prefix and try to link it to an already-indexed segment whose
// prefix equals this segment's suffix. One transaction, the same shape as
// STAMP genome's per-segment work.
func (g *Genome) Op(th *stm.Thread, rng *workload.Rng) {
	raw := g.segGen.Next(rng)
	// Derive a segment whose suffix half overlaps another segment's prefix
	// half with reasonable probability: fold the space onto 16-bit halves.
	seg := ((raw&0xFFFF)<<16 | (raw>>16)&0xFFFF) | 1
	th.Atomic(func(tx *stm.Tx) {
		if !g.segments.Insert(tx, seg, 1) {
			return // duplicate: dedup rejected it, nothing else to do
		}
		prefix := seg >> 16 & 0xFFFF
		suffix := seg & 0xFFFF
		g.index.Insert(tx, prefix, seg)
		if other, ok := g.index.Lookup(tx, suffix); ok && other != seg {
			// Record the link in the contig table (slot hashed by pair).
			slot := int((seg*0x9E3779B97F4A7C15 ^ other) % uint64(g.nLinks))
			g.links.Add(tx, slot, 1)
		}
	})
}

// Stats summarizes assembly progress.
func (g *Genome) Stats(th *stm.Thread) (unique, indexed int, linkCount uint64) {
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		unique = g.segments.Len(tx)
		indexed = g.index.Len(tx)
		linkCount = g.links.Sum(tx)
	})
	return unique, indexed, linkCount
}

// CheckInvariants verifies the dedup and index relationship: the index
// holds at most one entry per distinct prefix, and never more entries
// than unique segments.
func (g *Genome) CheckInvariants(th *stm.Thread) string {
	unique, indexed, _ := g.Stats(th)
	if indexed > unique {
		return fmt.Sprintf("genome: %d indexed prefixes > %d unique segments", indexed, unique)
	}
	if indexed > 1<<16 {
		return fmt.Sprintf("genome: %d indexed prefixes exceeds prefix space", indexed)
	}
	return ""
}
