package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Pipeline is a staged producer/consumer application: tokens flow from an
// intake queue through a transform stage into an output queue. Queues
// concentrate all traffic on their head/tail words, so each queue is a
// maximal-contention partition — the opposite end of the spectrum from
// the reservation tables, and the reason a queue partition wants a
// different concurrency-control configuration (short spins, coarse
// detection) than a tree partition.
type Pipeline struct {
	intake *txds.Queue
	output *txds.Queue
	// produced/consumed counters live on the heap so the token balance
	// is transactionally consistent.
	counters stm.Addr // [0]=produced, [1]=consumed
}

// PipelineConfig sizes the pipeline.
type PipelineConfig struct {
	// InitialTokens are preloaded into the intake queue.
	InitialTokens int
}

// NewPipeline builds the queues and preloads tokens.
func NewPipeline(rt *stm.Runtime, th *stm.Thread, cfg PipelineConfig) *Pipeline {
	p := &Pipeline{}
	ctrSite := rt.RegisterSite("pipeline.counters")
	th.Atomic(func(tx *stm.Tx) {
		p.intake = txds.NewQueue(tx, rt, "pipeline.intake")
		p.output = txds.NewQueue(tx, rt, "pipeline.output")
		p.counters = tx.Alloc(ctrSite, 2)
		tx.Store(p.counters, 0)
		tx.Store(p.counters+1, 0)
	})
	for i := 0; i < cfg.InitialTokens; i++ {
		v := uint64(i)
		th.Atomic(func(tx *stm.Tx) {
			p.intake.Enqueue(tx, v)
			tx.Store(p.counters, tx.Load(p.counters)+1)
		})
	}
	return p
}

// Produce enqueues a fresh token.
func (p *Pipeline) Produce(th *stm.Thread, rng *workload.Rng) {
	v := rng.Uint64() >> 1
	th.Atomic(func(tx *stm.Tx) {
		p.intake.Enqueue(tx, v)
		tx.Store(p.counters, tx.Load(p.counters)+1)
	})
}

// Transform moves one token from intake to output, applying a small
// computation; it reports whether a token was available.
func (p *Pipeline) Transform(th *stm.Thread) bool {
	moved := false
	th.Atomic(func(tx *stm.Tx) {
		moved = false
		v, ok := p.intake.Dequeue(tx)
		if !ok {
			return
		}
		p.output.Enqueue(tx, v*2+1)
		moved = true
	})
	return moved
}

// Consume removes one token from the output; it reports whether one was
// available.
func (p *Pipeline) Consume(th *stm.Thread) bool {
	got := false
	th.Atomic(func(tx *stm.Tx) {
		got = false
		if _, ok := p.output.Dequeue(tx); !ok {
			return
		}
		tx.Store(p.counters+1, tx.Load(p.counters+1)+1)
		got = true
	})
	return got
}

// Op runs one pipeline step drawn from a balanced mix.
func (p *Pipeline) Op(th *stm.Thread, rng *workload.Rng) {
	switch rng.Intn(3) {
	case 0:
		p.Produce(th, rng)
	case 1:
		p.Transform(th)
	default:
		p.Consume(th)
	}
}

// CheckInvariants verifies token conservation:
// produced == consumed + in(intake) + in(output).
func (p *Pipeline) CheckInvariants(th *stm.Thread) string {
	var msg string
	th.Atomic(func(tx *stm.Tx) {
		msg = ""
		produced := tx.Load(p.counters)
		consumed := tx.Load(p.counters + 1)
		inFlight := uint64(p.intake.Len(tx) + p.output.Len(tx))
		if produced != consumed+inFlight {
			msg = fmt.Sprintf("pipeline: produced %d != consumed %d + in-flight %d",
				produced, consumed, inFlight)
		}
	})
	return msg
}
