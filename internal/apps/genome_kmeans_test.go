package apps

import (
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/stm"
)

func newAppRT(t testing.TB) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 21, BlockShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestGenomeSingleThread(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	g := NewGenome(rt, th, GenomeConfig{SegmentSpace: 1 << 10, Buckets: 64, LinkSlots: 128})
	rng := workload.NewRng(3)
	for i := 0; i < 4000; i++ {
		g.Op(th, rng)
	}
	unique, indexed, links := g.Stats(th)
	if unique == 0 {
		t.Fatal("no unique segments deduplicated")
	}
	if indexed == 0 {
		t.Fatal("no prefixes indexed")
	}
	if links == 0 {
		t.Fatal("no overlaps linked — segment folding should produce matches")
	}
	if msg := g.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	// The pool must saturate: with a 1024-value space, 4000 arrivals leave
	// few fresh segments, so uniques are far below arrivals.
	if unique > 2048 {
		t.Fatalf("unique = %d, expected saturation below space size", unique)
	}
}

// TestGenomeDedupExact checks the dedup set admits each distinct segment
// exactly once even when every arrival is a duplicate storm.
func TestGenomeDedupExact(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	g := NewGenome(rt, th, GenomeConfig{SegmentSpace: 32, Buckets: 16, LinkSlots: 64})
	rng := workload.NewRng(5)
	for i := 0; i < 2000; i++ {
		g.Op(th, rng)
	}
	unique, _, _ := g.Stats(th)
	// 32 raw values fold to at most 32 distinct segments.
	if unique > 32 {
		t.Fatalf("unique = %d from a 32-value space", unique)
	}
	if msg := g.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestGenomeConcurrent(t *testing.T) {
	rt := newAppRT(t)
	setup := rt.MustAttach()
	g := NewGenome(rt, setup, GenomeConfig{SegmentSpace: 1 << 10, Buckets: 64, LinkSlots: 128})
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < 1500; i++ {
				g.Op(th, rng)
			}
		}(uint64(w) + 11)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := g.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	unique, indexed, _ := g.Stats(th)
	if unique == 0 || indexed == 0 {
		t.Fatalf("no progress under concurrency: unique=%d indexed=%d", unique, indexed)
	}
}

// TestGenomePartitionDiscovery verifies the profiler separates genome's
// three structures into distinct partitions.
func TestGenomePartitionDiscovery(t *testing.T) {
	rt := newAppRT(t)
	rt.StartProfiling()
	th := rt.MustAttach()
	g := NewGenome(rt, th, GenomeConfig{SegmentSpace: 1 << 10, Buckets: 64, LinkSlots: 128})
	rng := workload.NewRng(7)
	for i := 0; i < 1000; i++ {
		g.Op(th, rng)
	}
	rt.Detach(th)
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	if n := rt.NumPartitions(); n < 4 { // global + 3 structures
		t.Fatalf("partitions = %d, want >= 4\n%s", n, plan.Describe(rt.Sites()))
	}
}

func TestKMeansSingleThread(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	cfg := KMeansConfig{K: 4, Dim: 2, Points: 256, RecomputeRatio: 0.01}
	km := NewKMeans(rt, th, cfg, 1)
	rng := workload.NewRng(9)
	for i := 0; i < 3000; i++ {
		km.Op(th, rng, cfg)
	}
	if msg := km.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	km.Recompute(th)
	if got := km.AssignedCount(th); got != 0 {
		t.Fatalf("accumulators not cleared after recompute: %d", got)
	}
}

// TestKMeansAssignCounts verifies each assignment increments exactly one
// accumulator count.
func TestKMeansAssignCounts(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	cfg := KMeansConfig{K: 4, Dim: 2, Points: 128, RecomputeRatio: 0}
	km := NewKMeans(rt, th, cfg, 2)
	rng := workload.NewRng(4)
	const ops = 500
	for i := 0; i < ops; i++ {
		km.Assign(th, rng)
	}
	if got := km.AssignedCount(th); got != ops {
		t.Fatalf("assigned count = %d, want %d", got, ops)
	}
}

func TestKMeansConcurrent(t *testing.T) {
	rt := newAppRT(t)
	setup := rt.MustAttach()
	cfg := KMeansConfig{K: 4, Dim: 2, Points: 512, RecomputeRatio: 0.005}
	km := NewKMeans(rt, setup, cfg, 3)
	rt.Detach(setup)
	const workers, perW = 4, 800
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < perW; i++ {
				km.Op(th, rng, cfg)
			}
		}(uint64(w) + 31)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := km.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

// TestKMeansPartitionDiscovery verifies points, centroids and accumulators
// land in separate partitions with visibly different profiles.
func TestKMeansPartitionDiscovery(t *testing.T) {
	rt := newAppRT(t)
	rt.StartProfiling()
	th := rt.MustAttach()
	cfg := KMeansConfig{K: 4, Dim: 2, Points: 256, RecomputeRatio: 0.01}
	km := NewKMeans(rt, th, cfg, 5)
	rng := workload.NewRng(6)
	for i := 0; i < 500; i++ {
		km.Op(th, rng, cfg)
	}
	rt.Detach(th)
	if _, err := rt.StopProfilingAndPartition(); err != nil {
		t.Fatal(err)
	}
	if n := rt.NumPartitions(); n < 4 { // global + 3 arrays
		t.Fatalf("partitions = %d, want >= 4", n)
	}
}
