package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// Bank is the classic STM bank benchmark: an array of accounts, short
// transfer transactions, and long read-only audit scans. Transfers are
// tiny update transactions (high update ratio); audits read every
// account (long invisible read sets that writers love to invalidate) —
// the two faces the paper's visible/invisible discussion contrasts,
// inside a single application.
type Bank struct {
	accounts *txds.CounterArray
	n        int
	initial  uint64
}

// BankConfig sizes the bank.
type BankConfig struct {
	Accounts       int
	InitialBalance uint64
	// AuditRatio is the fraction of operations that are full audits.
	AuditRatio float64
	// MaxTransfer bounds the amount moved per transfer.
	MaxTransfer uint64
}

// DefaultBankConfig returns the sizing used by the experiments.
func DefaultBankConfig() BankConfig {
	return BankConfig{
		Accounts:       1 << 12,
		InitialBalance: 1000,
		AuditRatio:     0.05,
		MaxTransfer:    50,
	}
}

// NewBank allocates and fills the account array.
func NewBank(rt *stm.Runtime, th *stm.Thread, cfg BankConfig) *Bank {
	b := &Bank{n: cfg.Accounts, initial: cfg.InitialBalance}
	th.Atomic(func(tx *stm.Tx) {
		b.accounts = txds.NewCounterArray(tx, rt, "bank.accounts", cfg.Accounts, cfg.InitialBalance)
	})
	return b
}

// Transfer moves a random amount between two random accounts.
func (b *Bank) Transfer(th *stm.Thread, rng *workload.Rng, maxAmount uint64) {
	from := rng.Intn(b.n)
	to := rng.Intn(b.n)
	amount := 1 + rng.Uint64()%maxAmount
	th.Atomic(func(tx *stm.Tx) {
		b.accounts.Transfer(tx, from, to, amount)
	})
}

// Audit sums all accounts in a read-only transaction and returns the
// total.
func (b *Bank) Audit(th *stm.Thread) uint64 {
	var sum uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		sum = b.accounts.Sum(tx)
	})
	return sum
}

// ExpectedTotal returns the invariant sum.
func (b *Bank) ExpectedTotal() uint64 { return uint64(b.n) * b.initial }

// Op runs one operation from the configured mix.
func (b *Bank) Op(th *stm.Thread, rng *workload.Rng, cfg BankConfig) string {
	if rng.Float64() < cfg.AuditRatio {
		b.Audit(th)
		return "audit"
	}
	b.Transfer(th, rng, cfg.MaxTransfer)
	return "transfer"
}

// CheckInvariants verifies conservation of money.
func (b *Bank) CheckInvariants(th *stm.Thread) string {
	if got, want := b.Audit(th), b.ExpectedTotal(); got != want {
		return fmt.Sprintf("bank: total %d, want %d", got, want)
	}
	return ""
}
