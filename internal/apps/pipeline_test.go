package apps

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestPipelineSequential(t *testing.T) {
	rt := newRT(t, 0)
	th := rt.MustAttach()
	defer rt.Detach(th)
	p := NewPipeline(rt, th, PipelineConfig{InitialTokens: 10})
	if msg := p.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	if !p.Transform(th) {
		t.Fatal("transform with tokens available failed")
	}
	if !p.Consume(th) {
		t.Fatal("consume with output available failed")
	}
	// Drain completely.
	for p.Transform(th) {
	}
	for p.Consume(th) {
	}
	if p.Transform(th) || p.Consume(th) {
		t.Fatal("empty pipeline still moved tokens")
	}
	if msg := p.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestPipelineConcurrentConservation(t *testing.T) {
	rt := newRT(t, 8)
	setup := rt.MustAttach()
	p := NewPipeline(rt, setup, PipelineConfig{InitialTokens: 50})
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for i := 0; i < 2000; i++ {
				p.Op(th, rng)
			}
		}(uint64(w) + 40)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := p.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestPipelinePartitions(t *testing.T) {
	rt := newRT(t, 0)
	rt.StartProfiling()
	th := rt.MustAttach()
	p := NewPipeline(rt, th, PipelineConfig{InitialTokens: 20})
	rng := workload.NewRng(3)
	for i := 0; i < 200; i++ {
		p.Op(th, rng)
	}
	rt.Detach(th)
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	// intake (meta+node), output (meta+node), counters → 3 partitions + global.
	if got := plan.NumPartitions(); got != 4 {
		t.Fatalf("NumPartitions = %d\n%s", got, plan.Describe(rt.Sites()))
	}
}
