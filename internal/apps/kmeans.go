package apps

import (
	"fmt"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

// KMeans is a STAMP-kmeans-inspired clustering workload. Each operation
// assigns one point to its nearest centroid and folds the point into that
// centroid's accumulator; a periodic long transaction recomputes centroid
// positions from the accumulators. The two structures are transactional
// opposites:
//
//   - centroids (K positions): read by every assignment, rewritten only by
//     the rare recompute — a read-mostly partition that wants invisible
//     reads.
//   - accumulators (K sum/count pairs): written by every assignment — a
//     tiny write-hot partition where visible reads or coarse conflict
//     detection pay off.
//
// Points live in an immutable table read transactionally, adding a large
// read-only partition. K is small, so accumulator contention is real, as
// in STAMP where kmeans is the high-contention member of the suite.
type KMeans struct {
	k      int
	dim    int
	points *txds.CounterArray // n*dim point coordinates, written once
	cents  *txds.CounterArray // k*dim centroid coordinates
	accum  *txds.CounterArray // k*(dim+1): per-cluster coordinate sums + count
	n      int
}

// KMeansConfig sizes the workload.
type KMeansConfig struct {
	K      int // clusters
	Dim    int // coordinates per point
	Points int
	// RecomputeRatio is the fraction of operations that run the long
	// centroid-recompute transaction.
	RecomputeRatio float64
}

// DefaultKMeansConfig returns the sizing used by the experiments.
func DefaultKMeansConfig() KMeansConfig {
	return KMeansConfig{K: 8, Dim: 4, Points: 1 << 12, RecomputeRatio: 0.002}
}

// NewKMeans allocates and fills the point table and seeds centroids with
// the first K points.
func NewKMeans(rt *stm.Runtime, th *stm.Thread, cfg KMeansConfig, seed uint64) *KMeans {
	if cfg.K == 0 {
		cfg = DefaultKMeansConfig()
	}
	if cfg.Dim > 16 {
		cfg.Dim = 16 // Assign's coordinate buffer is fixed-size
	}
	km := &KMeans{k: cfg.K, dim: cfg.Dim, n: cfg.Points}
	rng := workload.NewRng(seed)
	th.Atomic(func(tx *stm.Tx) {
		km.points = txds.NewCounterArray(tx, rt, "kmeans.points", cfg.Points*cfg.Dim, 0)
		km.cents = txds.NewCounterArray(tx, rt, "kmeans.centroids", cfg.K*cfg.Dim, 0)
		km.accum = txds.NewCounterArray(tx, rt, "kmeans.accum", cfg.K*(cfg.Dim+1), 0)
	})
	// Fill points in batches (one giant transaction would dwarf the arena
	// write set; batches keep populate cheap and conflict-free).
	const batch = 256
	for base := 0; base < cfg.Points*cfg.Dim; base += batch {
		end := base + batch
		if end > cfg.Points*cfg.Dim {
			end = cfg.Points * cfg.Dim
		}
		th.Atomic(func(tx *stm.Tx) {
			for i := base; i < end; i++ {
				km.points.Set(tx, i, rng.Uint64()%1024)
			}
		})
	}
	th.Atomic(func(tx *stm.Tx) {
		for c := 0; c < cfg.K; c++ {
			for d := 0; d < cfg.Dim; d++ {
				km.cents.Set(tx, c*cfg.Dim+d, km.points.Get(tx, c*cfg.Dim+d))
			}
		}
	})
	return km
}

// Assign runs one assignment transaction: read a random point, find the
// nearest centroid (reads K*dim centroid words), and fold the point into
// that centroid's accumulator (dim+1 writes to the hot partition).
func (km *KMeans) Assign(th *stm.Thread, rng *workload.Rng) int {
	p := rng.Intn(km.n)
	var chosen int
	th.Atomic(func(tx *stm.Tx) {
		var coords [16]uint64
		for d := 0; d < km.dim; d++ {
			coords[d] = km.points.Get(tx, p*km.dim+d)
		}
		best, bestDist := 0, ^uint64(0)
		for c := 0; c < km.k; c++ {
			var dist uint64
			for d := 0; d < km.dim; d++ {
				cv := km.cents.Get(tx, c*km.dim+d)
				diff := coords[d] - cv
				if cv > coords[d] {
					diff = cv - coords[d]
				}
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		for d := 0; d < km.dim; d++ {
			km.accum.Add(tx, best*(km.dim+1)+d, coords[d])
		}
		km.accum.Add(tx, best*(km.dim+1)+km.dim, 1)
		chosen = best
	})
	return chosen
}

// Recompute folds the accumulators into new centroid positions and clears
// them — the long update transaction that sweeps both partitions.
func (km *KMeans) Recompute(th *stm.Thread) {
	th.Atomic(func(tx *stm.Tx) {
		for c := 0; c < km.k; c++ {
			count := km.accum.Get(tx, c*(km.dim+1)+km.dim)
			if count == 0 {
				continue
			}
			for d := 0; d < km.dim; d++ {
				sum := km.accum.Get(tx, c*(km.dim+1)+d)
				km.cents.Set(tx, c*km.dim+d, sum/count)
				km.accum.Set(tx, c*(km.dim+1)+d, 0)
			}
			km.accum.Set(tx, c*(km.dim+1)+km.dim, 0)
		}
	})
}

// Op runs one operation from the configured mix.
func (km *KMeans) Op(th *stm.Thread, rng *workload.Rng, cfg KMeansConfig) {
	if rng.Float64() < cfg.RecomputeRatio {
		km.Recompute(th)
		return
	}
	km.Assign(th, rng)
}

// AssignedCount sums the accumulator counts (assignments since the last
// recompute).
func (km *KMeans) AssignedCount(th *stm.Thread) uint64 {
	var total uint64
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		for c := 0; c < km.k; c++ {
			total += km.accum.Get(tx, c*(km.dim+1)+km.dim)
		}
	})
	return total
}

// CheckInvariants verifies centroid coordinates stay inside the point
// coordinate domain (means of values < 1024 must be < 1024) and that
// accumulator counts are consistent with their sums.
func (km *KMeans) CheckInvariants(th *stm.Thread) string {
	var bad string
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		for c := 0; c < km.k; c++ {
			for d := 0; d < km.dim; d++ {
				if v := km.cents.Get(tx, c*km.dim+d); v >= 1024 {
					bad = fmt.Sprintf("kmeans: centroid %d dim %d = %d out of domain", c, d, v)
					return
				}
			}
			count := km.accum.Get(tx, c*(km.dim+1)+km.dim)
			for d := 0; d < km.dim; d++ {
				sum := km.accum.Get(tx, c*(km.dim+1)+d)
				if count == 0 && sum != 0 {
					bad = fmt.Sprintf("kmeans: cluster %d has sum %d with zero count", c, sum)
					return
				}
				if sum > count*1024 {
					bad = fmt.Sprintf("kmeans: cluster %d sum %d exceeds count %d * max", c, sum, count)
					return
				}
			}
		}
	})
	return bad
}
