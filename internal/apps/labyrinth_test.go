package apps

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestLabyrinthRouteBasics(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	l := NewLabyrinth(rt, th, LabyrinthConfig{Width: 8, Height: 8})

	// A straight route across an empty grid is the Manhattan distance + 1.
	if got := l.Route(th, 0, 0, 7, 0); got != 8 {
		t.Fatalf("Route length = %d, want 8", got)
	}
	if occ := l.Occupancy(th); occ != 8 {
		t.Fatalf("occupancy = %d, want 8", occ)
	}
	// Endpoints on the claimed path must be refused.
	if got := l.Route(th, 0, 0, 3, 3); got != 0 {
		t.Fatalf("route from occupied endpoint succeeded (len %d)", got)
	}
	// A route below the wall still fits.
	if got := l.Route(th, 0, 2, 7, 2); got != 8 {
		t.Fatalf("second route length = %d, want 8", got)
	}
	if msg := l.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	l.Clear(th)
	if occ := l.Occupancy(th); occ != 0 {
		t.Fatalf("occupancy after clear = %d", occ)
	}
}

func TestLabyrinthRoutesAroundWalls(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	l := NewLabyrinth(rt, th, LabyrinthConfig{Width: 8, Height: 8})
	// Wall across row 3, full width minus one gap at x=7.
	if got := l.Route(th, 0, 3, 6, 3); got != 7 {
		t.Fatalf("wall route = %d, want 7", got)
	}
	// Route from above to below the wall must detour through the gap.
	got := l.Route(th, 3, 0, 3, 6)
	if got == 0 {
		t.Fatal("no route found around wall")
	}
	if got <= 10 { // direct distance is 7; detour via x=7 costs more
		t.Fatalf("route length %d too short to be a detour", got)
	}
	if msg := l.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
}

func TestLabyrinthNoRouteWhenBlocked(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	l := NewLabyrinth(rt, th, LabyrinthConfig{Width: 8, Height: 8})
	// Full wall across row 3: top and bottom halves are disconnected.
	if got := l.Route(th, 0, 3, 7, 3); got != 8 {
		t.Fatalf("wall route = %d, want 8", got)
	}
	if got := l.Route(th, 2, 0, 2, 6); got != 0 {
		t.Fatalf("route across a full wall succeeded (len %d)", got)
	}
}

// TestLabyrinthConcurrentDisjointPaths is the serializability check: many
// goroutines route simultaneously; afterwards every committed path must
// be intact (no cell stolen by another path).
func TestLabyrinthConcurrentDisjointPaths(t *testing.T) {
	rt := newAppRT(t)
	setup := rt.MustAttach()
	l := NewLabyrinth(rt, setup, LabyrinthConfig{Width: 24, Height: 24})
	rt.Detach(setup)

	const workers = 6
	var wg sync.WaitGroup
	var routed, failed [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(uint64(id) + 91)
			for i := 0; i < 60; i++ {
				x1, y1 := rng.Intn(24), rng.Intn(24)
				x2, y2 := rng.Intn(24), rng.Intn(24)
				if x1 == x2 && y1 == y2 {
					continue
				}
				if l.Route(th, x1, y1, x2, y2) > 0 {
					routed[id]++
				} else {
					failed[id]++
				}
			}
		}(w)
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	if msg := l.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	total := 0
	for _, r := range routed {
		total += r
	}
	if total == 0 {
		t.Fatal("no routes committed under concurrency")
	}
}

// TestLabyrinthOpClearsCongestion drives Op until the congestion path
// (clear) has certainly triggered and checks the grid stays consistent.
func TestLabyrinthOpClearsCongestion(t *testing.T) {
	rt := newAppRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	l := NewLabyrinth(rt, th, LabyrinthConfig{Width: 8, Height: 8})
	rng := workload.NewRng(17)
	for i := 0; i < 400; i++ {
		l.Op(th, rng)
	}
	if msg := l.CheckInvariants(th); msg != "" {
		t.Fatal(msg)
	}
	// With only 64 cells and 400 ops the grid must have been cleared at
	// least once, so occupancy is bounded by a fresh fill, not 400 paths.
	if occ := l.Occupancy(th); occ > 64 {
		t.Fatalf("impossible occupancy %d", occ)
	}
}
