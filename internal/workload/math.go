package workload

import "math"

// mathPow isolates the single math.Pow dependency of the zipf generator.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// Phase describes one segment of a phase schedule.
type Phase struct {
	// Ops is the number of operations the phase lasts (per thread).
	Ops int
	// UpdateRatio is the operation mix during the phase.
	UpdateRatio float64
	// Label names the phase in reports.
	Label string
}

// Schedule is a cyclic phase schedule: the workload runs phase 0 for its
// Ops, then phase 1, ..., then wraps around.
type Schedule struct {
	Phases []Phase
	total  int
}

// NewSchedule builds a schedule; it panics on an empty phase list (a
// configuration error in the experiment definitions).
func NewSchedule(phases ...Phase) *Schedule {
	if len(phases) == 0 {
		panic("workload: empty phase schedule")
	}
	s := &Schedule{Phases: phases}
	for _, p := range phases {
		if p.Ops <= 0 {
			panic("workload: phase with non-positive length")
		}
		s.total += p.Ops
	}
	return s
}

// At returns the phase active at operation index i (cyclic).
func (s *Schedule) At(i int) Phase {
	i %= s.total
	for _, p := range s.Phases {
		if i < p.Ops {
			return p
		}
		i -= p.Ops
	}
	return s.Phases[len(s.Phases)-1] // unreachable
}

// CycleOps returns the total operations in one schedule cycle.
func (s *Schedule) CycleOps() int { return s.total }
