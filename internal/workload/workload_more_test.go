package workload

import (
	"testing"
	"testing/quick"
)

// TestKeyGenRangeProperty is the testing/quick law: every generator's
// Next stays strictly inside [0, Range()) for any seed.
func TestKeyGenRangeProperty(t *testing.T) {
	gens := []KeyGen{
		Uniform{N: 100},
		Hotspot{N: 100, HotFrac: 0.1, HotProb: 0.9},
		NewZipf(100, 0.8),
		NewZipf(1<<20, 1.1),
	}
	f := func(seed uint64) bool {
		r := NewRng(seed)
		for _, g := range gens {
			for i := 0; i < 200; i++ {
				if k := g.Next(r); k >= g.Range() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHotspotExtremes checks degenerate hotspot parameters stay safe.
func TestHotspotExtremes(t *testing.T) {
	r := NewRng(1)
	for _, h := range []Hotspot{
		{N: 10, HotFrac: 0, HotProb: 1},   // empty hot set
		{N: 10, HotFrac: 1, HotProb: 0.5}, // everything hot
		{N: 1, HotFrac: 0.5, HotProb: 0.5},
	} {
		for i := 0; i < 500; i++ {
			if k := h.Next(r); k >= h.N {
				t.Fatalf("hotspot %+v emitted %d", h, k)
			}
		}
	}
}

// TestZipfMonotoneSkew checks a higher exponent concentrates more mass on
// the head key.
func TestZipfMonotoneSkew(t *testing.T) {
	const n, draws = 256, 40000
	headShare := func(s float64) float64 {
		z := NewZipf(n, s)
		r := NewRng(7)
		head := 0
		for i := 0; i < draws; i++ {
			if z.Next(r) == 0 {
				head++
			}
		}
		return float64(head) / draws
	}
	low, high := headShare(0.5), headShare(1.2)
	if high <= low {
		t.Fatalf("head share did not grow with skew: s=0.5 -> %.4f, s=1.2 -> %.4f", low, high)
	}
}

// TestMixZeroAndFull checks the degenerate operation mixes.
func TestMixZeroAndFull(t *testing.T) {
	r := NewRng(3)
	ro := Mix{UpdateRatio: 0}
	for i := 0; i < 200; i++ {
		if op := ro.Next(r); op != OpLookup {
			t.Fatalf("0%% update mix emitted %v", op)
		}
	}
	wo := Mix{UpdateRatio: 1}
	for i := 0; i < 200; i++ {
		if op := wo.Next(r); op == OpLookup {
			t.Fatal("100% update mix emitted a lookup")
		}
	}
}

// TestRngStreamsIndependent verifies different seeds do not produce the
// same stream (collision smoke test).
func TestRngStreamsIndependent(t *testing.T) {
	a, b := NewRng(1), NewRng(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d collisions in 100 draws between different seeds", same)
	}
}
