// Package workload provides deterministic workload generation for the
// benchmarks: per-thread PRNGs, key distributions (uniform, zipfian,
// hotspot) and operation mixes, plus phase schedules for the dynamic
// experiments.
package workload

// Rng is a splitmix64 PRNG: tiny state, good quality, deterministic per
// seed — one per worker thread so runs are reproducible regardless of
// scheduling.
type Rng struct {
	state uint64
}

// NewRng returns a generator seeded with seed.
func NewRng(seed uint64) *Rng {
	return &Rng{state: seed*0x9E3779B97F4A7C15 + 0x1234567}
}

// Uint64 returns the next 64 random bits.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// KeyGen draws keys for set operations.
type KeyGen interface {
	// Next draws a key using r.
	Next(r *Rng) uint64
	// Range returns the size of the key space.
	Range() uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct{ N uint64 }

// Next implements KeyGen.
func (u Uniform) Next(r *Rng) uint64 { return r.Uint64() % u.N }

// Range implements KeyGen.
func (u Uniform) Range() uint64 { return u.N }

// Hotspot sends HotProb of accesses to the first HotFrac of the key
// space — the classic skew model for contention experiments.
type Hotspot struct {
	N       uint64
	HotFrac float64 // fraction of keys that are hot (e.g. 0.1)
	HotProb float64 // probability an access goes to a hot key (e.g. 0.9)
}

// Next implements KeyGen.
func (h Hotspot) Next(r *Rng) uint64 {
	hotKeys := uint64(float64(h.N) * h.HotFrac)
	if hotKeys == 0 {
		hotKeys = 1
	}
	if hotKeys >= h.N {
		// Degenerate: the whole space is hot.
		return r.Uint64() % h.N
	}
	if r.Float64() < h.HotProb {
		return r.Uint64() % hotKeys
	}
	return hotKeys + r.Uint64()%(h.N-hotKeys)
}

// Range implements KeyGen.
func (h Hotspot) Range() uint64 { return h.N }

// Zipf draws keys with a zipfian distribution of exponent S over [0, N)
// using Gray's rejection-inversion-free approximation: a precomputed
// cumulative table for small N, falling back to a power-law transform for
// large N. Good enough for benchmark skew; not a statistics library.
type Zipf struct {
	N   uint64
	S   float64
	cdf []float64 // built lazily for N <= zipfTableMax
}

const zipfTableMax = 1 << 16

// NewZipf builds a zipfian generator (s > 0; s=0 degrades to uniform).
func NewZipf(n uint64, s float64) *Zipf {
	z := &Zipf{N: n, S: s}
	if n <= zipfTableMax && s > 0 {
		z.cdf = make([]float64, n)
		var sum float64
		for i := uint64(0); i < n; i++ {
			sum += 1 / pow(float64(i+1), s)
			z.cdf[i] = sum
		}
		for i := range z.cdf {
			z.cdf[i] /= sum
		}
	}
	return z
}

// Next implements KeyGen.
func (z *Zipf) Next(r *Rng) uint64 {
	if z.S <= 0 {
		return r.Uint64() % z.N
	}
	u := r.Float64()
	if z.cdf != nil {
		// Binary search the CDF.
		lo, hi := 0, len(z.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo)
	}
	// Large N: inverse-power transform (approximate zipf).
	x := pow(1-u, -1/(z.S))
	k := uint64(x) - 1
	if k >= z.N {
		k = z.N - 1
	}
	return k
}

// Range implements KeyGen.
func (z *Zipf) Range() uint64 { return z.N }

// pow is a small local x^y for y>0 via exp/log-free repeated operations;
// math.Pow would be fine but this keeps the package dependency-free and
// deterministic across platforms.
func pow(x, y float64) float64 {
	// Handle the common fast cases exactly.
	if y == 1 {
		return x
	}
	if y == 2 {
		return x * x
	}
	// exp(y*ln(x)) via the standard library is deterministic enough; use
	// a simple series-free approach: math is allowed, but keep one spot.
	return mathPow(x, y)
}

// Op is one generated set operation.
type Op uint8

// Operation kinds produced by Mix.
const (
	OpLookup Op = iota
	OpInsert
	OpRemove
)

// Mix generates the standard intset operation mix: UpdateRatio of
// operations are updates, split evenly between inserts and removes so the
// set size stays stationary.
type Mix struct {
	UpdateRatio float64 // 0..1
}

// Next draws the next operation kind.
func (m Mix) Next(r *Rng) Op {
	u := r.Float64()
	if u >= m.UpdateRatio {
		return OpLookup
	}
	if u < m.UpdateRatio/2 {
		return OpInsert
	}
	return OpRemove
}
