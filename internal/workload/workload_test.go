package workload

import (
	"testing"
	"testing/quick"
)

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRng(43)
	same := 0
	a = NewRng(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestRngRanges(t *testing.T) {
	r := NewRng(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive n must be 0")
	}
}

func TestUniformCoverage(t *testing.T) {
	r := NewRng(7)
	g := Uniform{N: 16}
	seen := make(map[uint64]int)
	for i := 0; i < 16000; i++ {
		k := g.Next(r)
		if k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	if len(seen) != 16 {
		t.Fatalf("only %d distinct keys", len(seen))
	}
	for k, n := range seen {
		if n < 500 || n > 1500 {
			t.Fatalf("key %d drawn %d times (expected ~1000)", k, n)
		}
	}
	if g.Range() != 16 {
		t.Fatal("Range")
	}
}

func TestHotspotSkew(t *testing.T) {
	r := NewRng(3)
	g := Hotspot{N: 100, HotFrac: 0.1, HotProb: 0.9}
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := g.Next(r)
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := NewRng(11)
	z := NewZipf(1000, 1.0)
	counts := make([]int, 1000)
	const draws = 50000
	for i := 0; i < draws; i++ {
		k := z.Next(r)
		if k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate: for s=1, N=1000, P(0) ~ 1/H(1000) ~ 0.133.
	if counts[0] < draws/15 {
		t.Fatalf("key 0 drawn %d times, want > %d", counts[0], draws/15)
	}
	if counts[0] <= counts[500] {
		t.Fatal("no skew: head not heavier than tail")
	}
	if z.Range() != 1000 {
		t.Fatal("Range")
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewRng(5)
	z := NewZipf(64, 0) // s=0 → uniform
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		seen[z.Next(r)] = true
	}
	if len(seen) != 64 {
		t.Fatalf("uniform fallback covered %d/64 keys", len(seen))
	}
}

func TestZipfLargeN(t *testing.T) {
	r := NewRng(9)
	z := NewZipf(1<<20, 1.2) // beyond table threshold
	for i := 0; i < 10000; i++ {
		if k := z.Next(r); k >= 1<<20 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestMixProportions(t *testing.T) {
	r := NewRng(13)
	m := Mix{UpdateRatio: 0.4}
	var look, ins, rem int
	const draws = 50000
	for i := 0; i < draws; i++ {
		switch m.Next(r) {
		case OpLookup:
			look++
		case OpInsert:
			ins++
		case OpRemove:
			rem++
		}
	}
	if f := float64(look) / draws; f < 0.57 || f > 0.63 {
		t.Fatalf("lookup fraction %.3f, want ~0.6", f)
	}
	if f := float64(ins) / draws; f < 0.17 || f > 0.23 {
		t.Fatalf("insert fraction %.3f, want ~0.2", f)
	}
	if f := float64(rem) / draws; f < 0.17 || f > 0.23 {
		t.Fatalf("remove fraction %.3f, want ~0.2", f)
	}
}

func TestMixProperty(t *testing.T) {
	// Property: insert and remove fractions stay balanced for any ratio.
	f := func(seed uint64, ratioRaw uint8) bool {
		ratio := float64(ratioRaw%101) / 100
		r := NewRng(seed)
		m := Mix{UpdateRatio: ratio}
		var upd int
		const draws = 4000
		for i := 0; i < draws; i++ {
			if m.Next(r) != OpLookup {
				upd++
			}
		}
		got := float64(upd) / draws
		return got > ratio-0.06 && got < ratio+0.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedule(t *testing.T) {
	s := NewSchedule(
		Phase{Ops: 10, UpdateRatio: 0.1, Label: "read"},
		Phase{Ops: 20, UpdateRatio: 0.9, Label: "write"},
	)
	if s.CycleOps() != 30 {
		t.Fatalf("CycleOps = %d", s.CycleOps())
	}
	cases := []struct {
		i    int
		want string
	}{
		{0, "read"}, {9, "read"}, {10, "write"}, {29, "write"},
		{30, "read"}, {45, "write"}, {60, "read"},
	}
	for _, c := range cases {
		if got := s.At(c.i).Label; got != c.want {
			t.Errorf("At(%d) = %s, want %s", c.i, got, c.want)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewSchedule() })
	mustPanic(func() { NewSchedule(Phase{Ops: 0}) })
}
