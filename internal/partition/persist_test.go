package partition

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
)

func persistSites(t *testing.T) *memory.Sites {
	t.Helper()
	a := memory.MustNewArena(memory.Config{CapacityWords: 1 << 12, BlockShift: 8})
	s := a.Sites()
	for _, n := range []string{"t.head", "t.node", "q.meta", "q.node"} {
		s.Register(n)
	}
	return s
}

// TestSaveLoadRoundTrip checks a plan with tuned configs survives
// serialize → parse with identical assignment and configuration.
func TestSaveLoadRoundTrip(t *testing.T) {
	sites := persistSites(t)
	orig, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{
		"tree":  {"t.head", "t.node"},
		"queue": {"q.meta", "q.node"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tune partition "queue" (id depends on sort order: queue < tree).
	tuned := core.DefaultPartConfig()
	tuned.Read = core.VisibleReads
	tuned.CM = core.CMTimestamp
	tuned.LockBits = 7
	tuned.GranShift = 2
	tuned.ReaderCM = core.WriterYieldsToReaders
	if err := orig.SetConfig(1, tuned); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.Save(&buf, sites, nil); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(&buf, sites, core.DefaultPartConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPartitions() != orig.NumPartitions() {
		t.Fatalf("partitions %d != %d", loaded.NumPartitions(), orig.NumPartitions())
	}
	for s := memory.SiteID(0); int(s) < sites.Count(); s++ {
		op := orig.Names[orig.PartitionOfSite(s)]
		lp := loaded.Names[loaded.PartitionOfSite(s)]
		if op != lp {
			t.Fatalf("site %q moved: %q -> %q", sites.Name(s), op, lp)
		}
	}
	// Find the loaded "queue" partition and compare its config.
	for id, name := range loaded.Names {
		if name != "queue" {
			continue
		}
		got := loaded.Configs[id]
		if got.Read != core.VisibleReads || got.CM != core.CMTimestamp ||
			got.LockBits != 7 || got.GranShift != 2 ||
			got.ReaderCM != core.WriterYieldsToReaders {
			t.Fatalf("queue config lost in round trip: %v", got)
		}
	}
}

// TestSaveUsesProvidedConfigs verifies the configs argument (what the
// engine currently runs) wins over the plan's initial configs.
func TestSaveUsesProvidedConfigs(t *testing.T) {
	sites := persistSites(t)
	p, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{
		"tree": {"t.head", "t.node"},
	})
	if err != nil {
		t.Fatal(err)
	}
	current := make([]core.PartConfig, p.NumPartitions())
	for i := range current {
		current[i] = core.DefaultPartConfig()
	}
	current[1].Read = core.VisibleReads
	var buf bytes.Buffer
	if err := p.Save(&buf, sites, current); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"read": "visible"`) {
		t.Fatalf("saved JSON missing tuned config:\n%s", buf.String())
	}
}

// TestLoadErrors covers the rejection paths: bad JSON, bad version,
// unknown site, duplicated site, unknown enum.
func TestLoadErrors(t *testing.T) {
	sites := persistSites(t)
	def := core.DefaultPartConfig()
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "{not json"},
		{"version", `{"version": 99, "partitions": []}`},
		{"unknown-site", `{"version":1,"partitions":[{"name":"x","sites":["nope"],"config":{}}]}`},
		{"dup-site", `{"version":1,"partitions":[
			{"name":"a","sites":["t.head"],"config":{}},
			{"name":"b","sites":["t.head"],"config":{}}]}`},
		{"bad-enum", `{"version":1,"partitions":[{"name":"x","sites":["t.head"],"config":{"read":"psychic"}}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := LoadPlan(strings.NewReader(c.in), sites, def); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}

// TestSavedConfigDefaults checks an empty config object loads as the
// normalized default (hand-edited plans may omit fields).
func TestSavedConfigDefaults(t *testing.T) {
	sites := persistSites(t)
	in := `{"version":1,"partitions":[{"name":"x","sites":["t.head"],"config":{}}]}`
	p, err := LoadPlan(strings.NewReader(in), sites, core.DefaultPartConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := p.Configs[1]
	want := core.DefaultPartConfig()
	if got.Read != want.Read || got.LockBits != want.LockBits || got.CM != want.CM {
		t.Fatalf("defaults not applied: %v", got)
	}
}
