package partition

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
)

func testPlan(t *testing.T, sites *memory.Sites) *Plan {
	t.Helper()
	p, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{
		"tree":  {"t.head", "t.node"},
		"queue": {"q.meta", "q.node"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	sites := persistSites(t)
	p := testPlan(t, sites)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.SaveFile(path, sites, nil); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadPlanFile(path, sites, core.DefaultPartConfig())
	if err != nil {
		t.Fatalf("LoadPlanFile: %v", err)
	}
	if loaded.NumPartitions() != p.NumPartitions() {
		t.Fatalf("partitions %d != %d", loaded.NumPartitions(), p.NumPartitions())
	}
	for s := memory.SiteID(0); int(s) < sites.Count(); s++ {
		if p.Names[p.PartitionOfSite(s)] != loaded.Names[loaded.PartitionOfSite(s)] {
			t.Fatalf("site %q moved across the file round trip", sites.Name(s))
		}
	}
	// No temp file may linger after a successful save.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("SaveFile left its temp file behind")
	}
}

// TestLoadPlanFileRejectsTornWrites truncates the saved file at a sweep
// of offsets: every prefix must be rejected as ErrCorruptPlan (or load
// fully at the complete length) — never half-parse into a partial plan.
func TestLoadPlanFileRejectsTornWrites(t *testing.T) {
	sites := persistSites(t)
	p := testPlan(t, sites)
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := p.SaveFile(path, sites, nil); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	for cut := 0; cut < len(full); cut += 7 {
		if err := os.WriteFile(torn, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		_, err := LoadPlanFile(torn, sites, core.DefaultPartConfig())
		if err == nil {
			t.Fatalf("cut=%d: torn plan file loaded without error", cut)
		}
		if !errors.Is(err, ErrCorruptPlan) {
			t.Fatalf("cut=%d: err = %v, want ErrCorruptPlan", cut, err)
		}
	}
}

func TestLoadPlanFileRejectsBitRot(t *testing.T) {
	sites := persistSites(t)
	p := testPlan(t, sites)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.SaveFile(path, sites, nil); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a character inside the embedded plan JSON (keep the envelope
	// parseable: change a letter, not a quote or brace).
	i := bytes.Index(data, []byte("queue"))
	if i < 0 {
		t.Fatal("marker not found")
	}
	data[i] = 'Q'
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err := LoadPlanFile(path, sites, core.DefaultPartConfig())
	if !errors.Is(err, ErrCorruptPlan) {
		t.Fatalf("err = %v, want ErrCorruptPlan on checksum mismatch", err)
	}
}

// TestLoadPlanFileLegacyFormat: a plain Plan.Save file (no envelope)
// still loads, so existing plan files survive the format change.
func TestLoadPlanFileLegacyFormat(t *testing.T) {
	sites := persistSites(t)
	p := testPlan(t, sites)
	var buf bytes.Buffer
	if err := p.Save(&buf, sites, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlanFile(path, sites, core.DefaultPartConfig())
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if loaded.NumPartitions() != p.NumPartitions() {
		t.Fatalf("legacy load lost partitions: %d != %d", loaded.NumPartitions(), p.NumPartitions())
	}
}

func TestLoadPlanFileMissing(t *testing.T) {
	sites := persistSites(t)
	_, err := LoadPlanFile(filepath.Join(t.TempDir(), "nope.json"), sites, core.DefaultPartConfig())
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestSaveFileCleansCrashLeftover: a stale .tmp from a crashed save is
// removed by the next load and never mistaken for the plan.
func TestSaveFileCleansCrashLeftover(t *testing.T) {
	sites := persistSites(t)
	p := testPlan(t, sites)
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := p.SaveFile(path, sites, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("{\"half\":"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlanFile(path, sites, core.DefaultPartConfig()); err != nil {
		t.Fatalf("load with leftover tmp: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("leftover tmp not cleaned up")
	}
}
