package partition

import (
	"sort"
	"sync"

	"repro/internal/memory"
)

// Edge is one observed pointer relation between two allocation sites,
// with the number of times it was seen during profiling.
type Edge struct {
	From, To memory.SiteID
	Count    uint64
}

// Analyzer records allocation-site connectivity during a profiling run.
// It implements core.PointerRecorder. It is safe for concurrent use (the
// profiling workload is multi-threaded).
type Analyzer struct {
	mu    sync.Mutex
	uf    *unionFind
	edges map[[2]memory.SiteID]uint64
}

// NewAnalyzer creates an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		uf:    newUnionFind(1),
		edges: make(map[[2]memory.SiteID]uint64),
	}
}

// RecordPointer unions the two sites and counts the edge. Self-edges are
// counted (intra-structure links like list next pointers) but do not
// affect the grouping.
func (a *Analyzer) RecordPointer(from, to memory.SiteID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := [2]memory.SiteID{from, to}
	if from > to {
		key = [2]memory.SiteID{to, from}
	}
	a.edges[key]++
	if from != to {
		a.uf.union(uint32(from), uint32(to))
	}
}

// Connected reports whether two sites ended up in one group.
func (a *Analyzer) Connected(x, y memory.SiteID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.uf.sameSet(uint32(x), uint32(y))
}

// Edges returns the observed site graph sorted by (From, To).
func (a *Analyzer) Edges() []Edge {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Edge, 0, len(a.edges))
	for k, c := range a.edges {
		out = append(out, Edge{From: k[0], To: k[1], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeCount returns the number of distinct site edges observed.
func (a *Analyzer) EdgeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.edges)
}

// groups returns the connected components over sites [1, numSites).
// Site 0 (the default site) is excluded: it always maps to the global
// partition. Components are ordered by their smallest member so output is
// deterministic.
func (a *Analyzer) groups(numSites int) [][]memory.SiteID {
	a.mu.Lock()
	defer a.mu.Unlock()
	byRoot := make(map[uint32][]memory.SiteID)
	for s := 1; s < numSites; s++ {
		r := a.uf.find(uint32(s))
		byRoot[r] = append(byRoot[r], memory.SiteID(s))
	}
	out := make([][]memory.SiteID, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
