package partition

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/memory"
)

// ErrCorruptPlan marks a plan file that failed integrity validation — a
// torn write from a crash mid-save, or bit rot. Callers doing warm starts
// should treat it like a missing file (cold start) rather than a fatal
// error; errors.Is(err, ErrCorruptPlan) distinguishes it from genuine
// configuration mistakes such as unregistered sites.
var ErrCorruptPlan = errors.New("partition: plan file corrupt")

// savedPlanFile is the on-disk envelope of SaveFile: the SavedPlan JSON
// plus a CRC32C over its compacted form (JSON indentation is not stable
// across re-marshalling, the value is), so a half-written or bit-rotted
// file is detected instead of half-parsed.
type savedPlanFile struct {
	Version int             `json:"fileVersion"`
	CRC32C  uint32          `json:"crc32c"`
	Plan    json.RawMessage `json:"plan"`
}

// planChecksum is the CRC32C of the plan JSON in compact form.
func planChecksum(plan []byte) (uint32, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, plan); err != nil {
		return 0, err
	}
	return crc32.Checksum(compact.Bytes(), planCastagnoli), nil
}

const savedPlanFileVersion = 1

var planCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SaveFile atomically writes the plan (with configs, as in Save) to path:
// the checksummed envelope goes to a temp file in the same directory,
// which is fsynced, renamed over path, and the directory fsynced. A crash
// at any point leaves either the old file or the new one — never a torn
// mix, which LoadPlanFile would reject as ErrCorruptPlan anyway.
func (p *Plan) SaveFile(path string, sites *memory.Sites, configs []core.PartConfig) error {
	var buf bytes.Buffer
	if err := p.Save(&buf, sites, configs); err != nil {
		return err
	}
	sum, err := planChecksum(buf.Bytes())
	if err != nil {
		return err
	}
	env, err := json.MarshalIndent(savedPlanFile{
		Version: savedPlanFileVersion,
		CRC32C:  sum,
		Plan:    json.RawMessage(buf.Bytes()),
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		if _, err := f.Write(env); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncParentDir(path)
}

// LoadPlanFile reads a plan written by SaveFile, validates its checksum,
// and rebinds it to the current site table (as LoadPlan). A missing file
// returns os.ErrNotExist; a file failing envelope or checksum validation
// returns an error matching ErrCorruptPlan. Plain SavedPlan JSON written
// by Plan.Save (no envelope) is still accepted, so pre-envelope plan
// files keep loading.
func LoadPlanFile(path string, sites *memory.Sites, defaultCfg core.PartConfig) (*Plan, error) {
	os.Remove(path + ".tmp") // crash leftover from SaveFile, never valid
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env savedPlanFile
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptPlan, path, err)
	}
	if len(env.Plan) == 0 {
		// No envelope: a legacy Plan.Save file (its top level has no
		// "plan" key). Parse it directly, but still fail as corrupt when
		// it isn't a plan either.
		p, err := LoadPlan(bytes.NewReader(data), sites, defaultCfg)
		if err != nil && !isPlanContentError(err) {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorruptPlan, path, err)
		}
		return p, err
	}
	if env.Version != savedPlanFileVersion {
		return nil, fmt.Errorf("%w: %s: file version %d, want %d", ErrCorruptPlan, path, env.Version, savedPlanFileVersion)
	}
	got, err := planChecksum(env.Plan)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptPlan, path, err)
	}
	if got != env.CRC32C {
		return nil, fmt.Errorf("%w: %s: checksum %08x, want %08x", ErrCorruptPlan, path, got, env.CRC32C)
	}
	return LoadPlan(bytes.NewReader(env.Plan), sites, defaultCfg)
}

// isPlanContentError reports whether a LoadPlan failure is about the
// plan's CONTENT (unknown sites, bad enum values) rather than its syntax.
// Content errors surface as-is — the file is intact, the configuration is
// wrong — while syntax errors on an unenveloped file mean corruption.
func isPlanContentError(err error) bool {
	if err == nil {
		return true
	}
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	return !errors.As(err, &syn) && !errors.As(err, &typ)
}

func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
