package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/memory"
)

func TestUnionFindBasics(t *testing.T) {
	u := newUnionFind(4)
	if u.sameSet(0, 1) {
		t.Fatal("fresh elements connected")
	}
	if !u.union(0, 1) {
		t.Fatal("union of distinct sets returned false")
	}
	if u.union(0, 1) {
		t.Fatal("repeat union returned true")
	}
	u.union(2, 3)
	if u.sameSet(0, 2) {
		t.Fatal("0 and 2 merged unexpectedly")
	}
	u.union(1, 3)
	if !u.sameSet(0, 2) {
		t.Fatal("transitive merge failed")
	}
	// Growth on demand.
	u.find(100)
	if u.size() < 101 {
		t.Fatalf("size = %d", u.size())
	}
}

func TestUnionFindProperties(t *testing.T) {
	// Properties: reflexive, symmetric, transitive under random unions.
	u := newUnionFind(64)
	f := func(a, b, c uint8) bool {
		x, y, z := uint32(a%64), uint32(b%64), uint32(c%64)
		u.union(x, y)
		if !u.sameSet(x, y) {
			return false
		}
		if u.sameSet(x, z) != u.sameSet(z, x) {
			return false
		}
		if u.sameSet(x, y) && u.sameSet(y, z) && !u.sameSet(x, z) {
			return false
		}
		return u.sameSet(x, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerGrouping(t *testing.T) {
	a := NewAnalyzer()
	// Sites: 1,2 linked (one structure); 3 isolated-but-self-linked; 4,5
	// linked; 6 never seen.
	a.RecordPointer(1, 2)
	a.RecordPointer(2, 1)
	a.RecordPointer(3, 3)
	a.RecordPointer(4, 5)
	g := a.groups(7)
	want := [][]memory.SiteID{{1, 2}, {3}, {4, 5}, {6}}
	if len(g) != len(want) {
		t.Fatalf("groups = %v, want %v", g, want)
	}
	for i := range g {
		if len(g[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, g[i], want[i])
		}
		for j := range g[i] {
			if g[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, g[i], want[i])
			}
		}
	}
	if !a.Connected(1, 2) || a.Connected(1, 3) {
		t.Fatal("Connected() disagrees with groups")
	}
	if a.EdgeCount() != 3 { // (1,2), (3,3), (4,5)
		t.Fatalf("EdgeCount = %d", a.EdgeCount())
	}
	edges := a.Edges()
	if len(edges) != 3 || edges[0].From != 1 || edges[0].To != 2 || edges[0].Count != 2 {
		t.Fatalf("Edges = %+v", edges)
	}
}

func newSites(t *testing.T, names ...string) *memory.Sites {
	t.Helper()
	arena := memory.MustNewArena(memory.Config{CapacityWords: 1 << 12, BlockShift: 8})
	s := arena.Sites()
	for _, n := range names {
		s.Register(n)
	}
	return s
}

func TestBuildPlan(t *testing.T) {
	sites := newSites(t, "app.list.node", "app.list.head", "app.tree.node", "app.tree.root")
	list1, _ := sites.Lookup("app.list.node")
	list2, _ := sites.Lookup("app.list.head")
	tree1, _ := sites.Lookup("app.tree.node")
	tree2, _ := sites.Lookup("app.tree.root")

	a := NewAnalyzer()
	a.RecordPointer(list2, list1) // head -> node
	a.RecordPointer(list1, list1) // node -> node
	a.RecordPointer(tree2, tree1)
	a.RecordPointer(tree1, tree1)

	p := BuildPlan(a, sites, core.DefaultPartConfig())
	if p.NumPartitions() != 3 { // global + list + tree
		t.Fatalf("NumPartitions = %d; plan:\n%s", p.NumPartitions(), p.Describe(sites))
	}
	if p.PartitionOfSite(list1) != p.PartitionOfSite(list2) {
		t.Fatal("list sites split across partitions")
	}
	if p.PartitionOfSite(list1) == p.PartitionOfSite(tree1) {
		t.Fatal("list and tree merged")
	}
	if p.PartitionOfSite(memory.DefaultSite) != core.GlobalPartition {
		t.Fatal("default site not in global partition")
	}
	// Group names use the common dot prefix.
	listPart := p.PartitionOfSite(list1)
	if got := p.Names[listPart]; got != "app.list" {
		t.Fatalf("list partition name = %q, want app.list", got)
	}
	if p.Describe(sites) == "" {
		t.Fatal("empty describe")
	}
}

func TestPlanInstallAndRun(t *testing.T) {
	arena := memory.MustNewArena(memory.Config{CapacityWords: 1 << 16, BlockShift: 8})
	sL := arena.Sites().Register("t.list")
	sT := arena.Sites().Register("t.tree")
	e := core.NewEngine(arena, core.DefaultPartConfig())

	// Profile: link each structure internally.
	an := NewAnalyzer()
	e.SetProfiler(an, true)
	th := e.MustAttachThread()
	var headL, headT memory.Addr
	th.Atomic(func(tx *core.Tx) {
		headL = tx.Alloc(sL, 2)
		n := tx.Alloc(sL, 2)
		tx.StoreAddr(headL, n)
		headT = tx.Alloc(sT, 2)
		m := tx.Alloc(sT, 2)
		tx.StoreAddr(headT, m)
	})
	e.SetProfiler(nil, false)

	p := BuildPlan(an, arena.Sites(), core.DefaultPartConfig())
	if p.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", p.NumPartitions())
	}
	visCfg := core.DefaultPartConfig()
	visCfg.Read = core.VisibleReads
	if err := p.SetConfig(p.PartitionOfSite(sT), visCfg); err != nil {
		t.Fatal(err)
	}
	if err := p.Install(e); err != nil {
		t.Fatal(err)
	}
	if got := e.PartitionOfAddr(headL).Name(); got != "t.list" {
		t.Fatalf("headL partition = %q", got)
	}
	if got := e.PartitionOfAddr(headT).Config().Read; got != core.VisibleReads {
		t.Fatalf("tree partition read mode = %v", got)
	}
	// Transactions still work after the install.
	th.Atomic(func(tx *core.Tx) {
		tx.Store(headL+1, 42)
		tx.Store(headT+1, 43)
	})
	th.Atomic(func(tx *core.Tx) {
		if tx.Load(headL+1) != 42 || tx.Load(headT+1) != 43 {
			t.Error("values lost across plan install")
		}
	})
}

func TestManualPlan(t *testing.T) {
	sites := newSites(t, "m.a", "m.b", "m.c")
	p, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{
		"ab": {"m.a", "m.b"},
		"c":  {"m.c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d", p.NumPartitions())
	}
	sa, _ := sites.Lookup("m.a")
	sb, _ := sites.Lookup("m.b")
	sc, _ := sites.Lookup("m.c")
	if p.PartitionOfSite(sa) != p.PartitionOfSite(sb) || p.PartitionOfSite(sa) == p.PartitionOfSite(sc) {
		t.Fatal("manual grouping wrong")
	}
	if _, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{"x": {"missing"}}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := ManualPlan(sites, core.DefaultPartConfig(), map[string][]string{"x": {"m.a"}, "y": {"m.a"}}); err == nil {
		t.Fatal("duplicate site accepted")
	}
}

func TestSingleGlobalPlan(t *testing.T) {
	sites := newSites(t, "s.one", "s.two")
	p := SingleGlobalPlan(sites, core.DefaultPartConfig())
	if p.NumPartitions() != 1 {
		t.Fatalf("NumPartitions = %d", p.NumPartitions())
	}
	for s := 0; s < sites.Count(); s++ {
		if p.PartitionOfSite(memory.SiteID(s)) != core.GlobalPartition {
			t.Fatalf("site %d not global", s)
		}
	}
	if err := p.SetConfig(7, core.DefaultPartConfig()); err == nil {
		t.Fatal("SetConfig out of range accepted")
	}
}

func TestCommonDotPrefix(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"a.b.c", "a.b.d"}, "a.b"},
		{[]string{"a.b", "a.b"}, "a.b"},
		{[]string{"x", "y"}, ""},
		{[]string{"app.t.n", "app.t.r", "app.t.x"}, "app.t"},
	}
	for _, c := range cases {
		if got := commonDotPrefix(c.in); got != c.want {
			t.Errorf("commonDotPrefix(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
