// Package partition derives data partitions automatically.
//
// The paper discovers partitions at compile time: a data-structure
// analysis (ref [6] of the paper, Lattner-style points-to analysis inside
// the Tanger/LLVM compiler) groups allocation sites whose objects are
// connected by stored pointers into disjoint logical data structures, and
// each group becomes a partition the STM manages independently.
//
// Go has no such compiler pass, so this package computes the same
// equivalence dynamically: during a profiling run, every pointer store
// (Tx.StoreAddr) reports an allocation-site edge; the analyzer unions the
// two sites. Connected components of the resulting graph are exactly the
// data structures the static analysis would find on the executed paths.
// As in the paper, discovery cost is paid outside the measured runs, and
// the measured runtime pays only an O(1) address→partition lookup.
package partition

// unionFind is a classic disjoint-set forest with union by rank and path
// compression, keyed by dense uint32 ids (allocation sites).
type unionFind struct {
	parent []uint32
	rank   []uint8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{}
	u.grow(n)
	return u
}

func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, uint32(len(u.parent)))
		u.rank = append(u.rank, 0)
	}
}

// find returns the representative of x, growing the forest if needed.
func (u *unionFind) find(x uint32) uint32 {
	u.grow(int(x) + 1)
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// union merges the sets containing a and b; it returns true if they were
// previously distinct.
func (u *unionFind) union(a, b uint32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// sameSet reports whether a and b are currently in one set.
func (u *unionFind) sameSet(a, b uint32) bool { return u.find(a) == u.find(b) }

// size returns the number of tracked elements.
func (u *unionFind) size() int { return len(u.parent) }
