package partition

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memory"
)

// Plan is a frozen site→partition assignment plus partition metadata,
// ready to install into an engine. Partition 0 is always the global
// partition; discovered groups occupy ids 1..N.
type Plan struct {
	// SitePart[s] is the partition of site s.
	SitePart []core.PartID
	// Names[p] is the partition's display name (derived from the common
	// prefix of its member sites).
	Names []string
	// Groups[p] lists the member sites of partition p (Groups[0] holds
	// whatever fell through to the global partition).
	Groups [][]memory.SiteID
	// Configs[p] is the configuration the partition starts with.
	Configs []core.PartConfig
}

// BuildPlan freezes the analyzer's current grouping over all registered
// sites. Every connected component becomes a partition (singleton sites —
// structures whose nodes only link among themselves or that were never
// linked — become singleton partitions, matching the paper's behaviour of
// treating each discovered data structure independently). defaultCfg is
// the initial configuration of every partition; the tuner specializes
// them at runtime.
func BuildPlan(a *Analyzer, sites *memory.Sites, defaultCfg core.PartConfig) *Plan {
	n := sites.Count()
	p := &Plan{
		SitePart: make([]core.PartID, n),
		Names:    []string{"global"},
		Groups:   [][]memory.SiteID{nil},
		Configs:  []core.PartConfig{defaultCfg},
	}
	used := map[string]int{"global": 1}
	for _, g := range a.groups(n) {
		id := core.PartID(len(p.Names))
		for _, s := range g {
			p.SitePart[s] = id
		}
		name := groupName(sites, g)
		used[name]++
		if c := used[name]; c > 1 {
			name = fmt.Sprintf("%s#%d", name, c)
		}
		p.Names = append(p.Names, name)
		p.Groups = append(p.Groups, g)
		p.Configs = append(p.Configs, defaultCfg)
	}
	return p
}

// SingleGlobalPlan returns the baseline plan: every site in partition 0.
// Installing it reproduces a classic unpartitioned STM.
func SingleGlobalPlan(sites *memory.Sites, cfg core.PartConfig) *Plan {
	return &Plan{
		SitePart: make([]core.PartID, sites.Count()),
		Names:    []string{"global"},
		Groups:   [][]memory.SiteID{nil},
		Configs:  []core.PartConfig{cfg},
	}
}

// ManualPlan builds a plan from explicit site-name groups; used by tests,
// by benchmarks that want a known partitioning, and as the escape hatch
// the paper gives programmers who know better than the analysis.
func ManualPlan(sites *memory.Sites, defaultCfg core.PartConfig, groups map[string][]string) (*Plan, error) {
	p := &Plan{
		SitePart: make([]core.PartID, sites.Count()),
		Names:    []string{"global"},
		Groups:   [][]memory.SiteID{nil},
		Configs:  []core.PartConfig{defaultCfg},
	}
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		id := core.PartID(len(p.Names))
		var members []memory.SiteID
		for _, sn := range groups[name] {
			sid, ok := sites.Lookup(sn)
			if !ok {
				return nil, fmt.Errorf("partition: unknown site %q in group %q", sn, name)
			}
			if p.SitePart[sid] != 0 {
				return nil, fmt.Errorf("partition: site %q assigned to two groups", sn)
			}
			p.SitePart[sid] = id
			members = append(members, sid)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		p.Names = append(p.Names, name)
		p.Groups = append(p.Groups, members)
		p.Configs = append(p.Configs, defaultCfg)
	}
	return p, nil
}

// NumPartitions returns the number of partitions in the plan (including
// the global partition).
func (p *Plan) NumPartitions() int { return len(p.Names) }

// SetConfig overrides the starting configuration of partition id.
func (p *Plan) SetConfig(id core.PartID, cfg core.PartConfig) error {
	if int(id) >= len(p.Configs) {
		return fmt.Errorf("partition: no partition %d in plan", id)
	}
	p.Configs[id] = cfg
	return nil
}

// PartitionOfSite returns the partition a site is assigned to.
func (p *Plan) PartitionOfSite(s memory.SiteID) core.PartID {
	if int(s) < len(p.SitePart) {
		return p.SitePart[s]
	}
	return core.GlobalPartition
}

// Install freezes the plan into the engine (under quiescence).
func (p *Plan) Install(e *core.Engine) error {
	return e.InstallPlan(p.SitePart, p.Names, p.Configs)
}

// Describe renders the plan as a human-readable multi-line string.
func (p *Plan) Describe(sites *memory.Sites) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d partitions\n", p.NumPartitions())
	for i, name := range p.Names {
		fmt.Fprintf(&b, "  [%d] %-24s", i, name)
		if i == 0 {
			fmt.Fprintf(&b, " (default)")
		}
		var members []string
		for _, s := range p.Groups[i] {
			members = append(members, sites.Name(s))
		}
		if len(members) > 0 {
			fmt.Fprintf(&b, " sites: %s", strings.Join(members, ", "))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// groupName derives a partition name from its member sites: the longest
// common dot-separated prefix, or the first member's name plus a count.
func groupName(sites *memory.Sites, g []memory.SiteID) string {
	if len(g) == 0 {
		return "empty"
	}
	names := make([]string, len(g))
	for i, s := range g {
		names[i] = sites.Name(s)
	}
	if len(names) == 1 {
		return names[0]
	}
	prefix := commonDotPrefix(names)
	if prefix != "" {
		return prefix
	}
	return fmt.Sprintf("%s+%d", names[0], len(names)-1)
}

func commonDotPrefix(names []string) string {
	parts := strings.Split(names[0], ".")
	k := len(parts)
	for _, n := range names[1:] {
		p := strings.Split(n, ".")
		if len(p) < k {
			k = len(p)
		}
		for i := 0; i < k; i++ {
			if p[i] != parts[i] {
				k = i
				break
			}
		}
	}
	if k == 0 {
		return ""
	}
	// Don't use the full name of one member as the group name when members
	// differ only in the last component; that is exactly what we want, so
	// keep up to k components.
	return strings.Join(parts[:k], ".")
}
