package partition

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/memory"
)

// SavedPlan is the serialized form of a Plan plus its per-partition
// configurations, keyed by site NAME so it survives process restarts
// (site ids are assigned in registration order, which may differ between
// runs). Saving a tuned topology and reloading it at the next start
// extends the paper's hybrid story: discovery and tuning results move
// across runs the way its compile-time partitioning does, and the runtime
// tuner then only has to track drift, not rediscover the configuration.
type SavedPlan struct {
	// Version guards the format.
	Version int `json:"version"`
	// Partitions holds the named groups (the global partition, id 0, is
	// implicit and holds every site not listed).
	Partitions []SavedPartition `json:"partitions"`
}

// SavedPartition is one partition of a SavedPlan.
type SavedPartition struct {
	Name  string      `json:"name"`
	Sites []string    `json:"sites"`
	Cfg   SavedConfig `json:"config"`
}

// SavedConfig is the serialized PartConfig (enums as strings, so the
// JSON is reviewable and hand-editable).
type SavedConfig struct {
	Read       string `json:"read"`
	Acquire    string `json:"acquire"`
	Write      string `json:"write"`
	LockBits   uint   `json:"lockBits"`
	GranShift  uint   `json:"granShift"`
	CM         string `json:"cm"`
	ReaderCM   string `json:"readerCM"`
	SpinBudget int    `json:"spinBudget"`
}

// savedPlanVersion is the current format version.
const savedPlanVersion = 1

func configToSaved(c core.PartConfig) SavedConfig {
	return SavedConfig{
		Read:       c.Read.String(),
		Acquire:    c.Acquire.String(),
		Write:      c.Write.String(),
		LockBits:   c.LockBits,
		GranShift:  c.GranShift,
		CM:         c.CM.String(),
		ReaderCM:   c.ReaderCM.String(),
		SpinBudget: c.SpinBudget,
	}
}

func savedToConfig(s SavedConfig) (core.PartConfig, error) {
	c := core.DefaultPartConfig()
	switch s.Read {
	case "invisible", "":
		c.Read = core.InvisibleReads
	case "visible":
		c.Read = core.VisibleReads
	default:
		return c, fmt.Errorf("partition: unknown read mode %q", s.Read)
	}
	switch s.Acquire {
	case "encounter", "":
		c.Acquire = core.EncounterTime
	case "commit":
		c.Acquire = core.CommitTime
	default:
		return c, fmt.Errorf("partition: unknown acquire mode %q", s.Acquire)
	}
	switch s.Write {
	case "write-back", "":
		c.Write = core.WriteBack
	case "write-through":
		c.Write = core.WriteThrough
	default:
		return c, fmt.Errorf("partition: unknown write mode %q", s.Write)
	}
	switch s.CM {
	case "suicide":
		c.CM = core.CMSuicide
	case "spin", "":
		c.CM = core.CMSpin
	case "karma":
		c.CM = core.CMKarma
	case "aggressive":
		c.CM = core.CMAggressive
	case "backoff":
		c.CM = core.CMBackoff
	case "timestamp":
		c.CM = core.CMTimestamp
	default:
		return c, fmt.Errorf("partition: unknown CM policy %q", s.CM)
	}
	switch s.ReaderCM {
	case "writer-kills", "":
		c.ReaderCM = core.WriterKillsReaders
	case "writer-yields":
		c.ReaderCM = core.WriterYieldsToReaders
	default:
		return c, fmt.Errorf("partition: unknown reader policy %q", s.ReaderCM)
	}
	if s.LockBits != 0 {
		c.LockBits = s.LockBits
	}
	c.GranShift = s.GranShift
	if s.SpinBudget != 0 {
		c.SpinBudget = s.SpinBudget
	}
	return c.Normalize(), nil
}

// Save serializes the plan (with configs) as indented JSON. Pass the
// engine's CURRENT configurations (e.g. after a tuning run) to persist
// what the tuner learned rather than the plan's initial configs.
func (p *Plan) Save(w io.Writer, sites *memory.Sites, configs []core.PartConfig) error {
	if configs == nil {
		configs = p.Configs
	}
	if len(configs) != len(p.Names) {
		return fmt.Errorf("partition: %d configs for %d partitions", len(configs), len(p.Names))
	}
	sp := SavedPlan{Version: savedPlanVersion}
	for id := 1; id < len(p.Names); id++ { // global partition implicit
		names := make([]string, 0, len(p.Groups[id]))
		for _, s := range p.Groups[id] {
			names = append(names, sites.Name(s))
		}
		sort.Strings(names)
		sp.Partitions = append(sp.Partitions, SavedPartition{
			Name:  p.Names[id],
			Sites: names,
			Cfg:   configToSaved(configs[id]),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}

// LoadPlan parses a SavedPlan and rebinds it to the current site table.
// Every saved site must already be registered (register sites at setup,
// before loading); unknown sites are an error so that a stale plan fails
// loudly instead of silently mis-partitioning.
func LoadPlan(r io.Reader, sites *memory.Sites, defaultCfg core.PartConfig) (*Plan, error) {
	var sp SavedPlan
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("partition: parsing saved plan: %w", err)
	}
	if sp.Version != savedPlanVersion {
		return nil, fmt.Errorf("partition: saved plan version %d, want %d", sp.Version, savedPlanVersion)
	}
	p := &Plan{
		SitePart: make([]core.PartID, sites.Count()),
		Names:    []string{"global"},
		Groups:   [][]memory.SiteID{nil},
		Configs:  []core.PartConfig{defaultCfg},
	}
	for _, part := range sp.Partitions {
		cfg, err := savedToConfig(part.Cfg)
		if err != nil {
			return nil, fmt.Errorf("partition %q: %w", part.Name, err)
		}
		id := core.PartID(len(p.Names))
		var members []memory.SiteID
		for _, sn := range part.Sites {
			sid, ok := sites.Lookup(sn)
			if !ok {
				return nil, fmt.Errorf("partition: saved plan references unregistered site %q", sn)
			}
			if p.SitePart[sid] != 0 {
				return nil, fmt.Errorf("partition: site %q appears in two saved partitions", sn)
			}
			p.SitePart[sid] = id
			members = append(members, sid)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		p.Names = append(p.Names, part.Name)
		p.Groups = append(p.Groups, members)
		p.Configs = append(p.Configs, cfg)
	}
	return p, nil
}
