package bench

import (
	"testing"
	"time"

	"repro/internal/workload"
	"repro/stm"
)

func newRT(t testing.TB) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRunMeasuresWindow(t *testing.T) {
	rt := newRT(t)
	site := rt.RegisterSite("h.c")
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
	})
	rt.Detach(setup)
	res := Run(rt, RunConfig{
		Threads: 2,
		Warmup:  10 * time.Millisecond,
		Measure: 60 * time.Millisecond,
		Seed:    1,
	}, func(th *stm.Thread, rng *workload.Rng) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if res.Ops == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Commits == 0 {
		t.Fatal("no commits in per-partition delta")
	}
	if len(res.PerPart) != 1 {
		t.Fatalf("PerPart = %d entries", len(res.PerPart))
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("window too short: %v", res.Elapsed)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestRunSampleLatency(t *testing.T) {
	rt := newRT(t)
	site := rt.RegisterSite("h.l")
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) { a = tx.Alloc(site, 1) })
	rt.Detach(setup)
	res := Run(rt, RunConfig{
		Threads:       1,
		Measure:       50 * time.Millisecond,
		SampleLatency: true,
	}, func(th *stm.Thread, rng *workload.Rng) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	if res.Latency.Quantile(0.5) == 0 {
		t.Fatal("zero median latency")
	}
}

func TestRunOpsExactCount(t *testing.T) {
	rt := newRT(t)
	site := rt.RegisterSite("h.o")
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
	})
	rt.Detach(setup)
	res := RunOps(rt, 3, 500, 2, func(th *stm.Thread, rng *workload.Rng) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if res.Ops != 1500 {
		t.Fatalf("Ops = %d", res.Ops)
	}
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		if got := tx.Load(a); got != 1500 {
			t.Fatalf("counter = %d", got)
		}
	})
}

func TestRunDefaultsThreads(t *testing.T) {
	rt := newRT(t)
	res := Run(rt, RunConfig{Measure: 20 * time.Millisecond}, func(th *stm.Thread, rng *workload.Rng) {
		th.Atomic(func(tx *stm.Tx) {})
	})
	if res.Ops == 0 {
		t.Fatal("zero ops with defaulted thread count")
	}
}
