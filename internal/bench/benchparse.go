package bench

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseGoBench extracts ns/op figures from `go test -bench` output text:
// one entry per benchmark name (including sub-benchmark path and -N
// GOMAXPROCS suffix). A name appearing on several lines — the output of
// `-count=N` — keeps the MINIMUM ns/op: the min is the standard noise-
// resistant estimator for benchmarks (interference only ever slows a run
// down), and best-of-N is what makes a 2x regression threshold usable on
// shared CI runners. Non-benchmark lines are ignored, so the whole
// captured stdout of a bench run can be fed in unfiltered.
func ParseGoBench(text string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8   100   1234 ns/op   [extra metrics...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err == nil {
				if prev, seen := out[fields[0]]; !seen || v < prev {
					out[fields[0]] = v
				}
			}
			break
		}
	}
	return out
}

// ParseGoBenchMetrics extracts named secondary metrics — the units
// benchmarks emit via b.ReportMetric, e.g. "p99-ns/op" — from `go test
// -bench` output text. Returns unit -> benchmark name -> value, keeping
// the MINIMUM per (name, unit) across -count=N repetitions, same
// best-of-N estimator as ParseGoBench. Callers must therefore only name
// lower-is-better units here: for a higher-is-better metric (reads/s)
// the min keeps the WORST run and a diff against it is meaningless.
func ParseGoBenchMetrics(text string, units []string) map[string]map[string]float64 {
	want := make(map[string]bool, len(units))
	for _, u := range units {
		want[u] = true
	}
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			if !want[unit] {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m := out[unit]
			if m == nil {
				m = make(map[string]float64)
				out[unit] = m
			}
			if prev, seen := m[fields[0]]; !seen || v < prev {
				m[fields[0]] = v
			}
		}
	}
	return out
}

// Regression is one benchmark whose new ns/op exceeds the old by more
// than the comparison threshold.
type Regression struct {
	Name     string
	OldNsOp  float64
	NewNsOp  float64
	Factor   float64 // NewNsOp / OldNsOp
	Breached bool    // Factor > threshold
}

// CompareBench matches benchmarks present in both maps and returns one
// row per match, sorted by slowdown factor (worst first). Benchmarks
// present in only one run are skipped: artifact sets drift as benches are
// added, and a diff tool that fails on drift would just be disabled.
func CompareBench(old, new map[string]float64, threshold float64) []Regression {
	var rows []Regression
	for name, o := range old {
		n, ok := new[name]
		if !ok || o <= 0 {
			continue
		}
		f := n / o
		rows = append(rows, Regression{
			Name:     name,
			OldNsOp:  o,
			NewNsOp:  n,
			Factor:   f,
			Breached: f > threshold,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Factor > rows[j].Factor })
	return rows
}

// FormatComparison renders the comparison as an aligned table and
// reports whether any row breached the threshold.
func FormatComparison(rows []Regression, threshold float64) (string, bool) {
	var b strings.Builder
	breached := false
	fmt.Fprintf(&b, "%-60s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "factor")
	for _, r := range rows {
		mark := ""
		if r.Breached {
			mark = "  << REGRESSION"
			breached = true
		}
		fmt.Fprintf(&b, "%-60s %12.1f %12.1f %7.2fx%s\n", r.Name, r.OldNsOp, r.NewNsOp, r.Factor, mark)
	}
	if breached {
		fmt.Fprintf(&b, "\nFAIL: at least one benchmark regressed by more than %.1fx\n", threshold)
	}
	return b.String(), breached
}
