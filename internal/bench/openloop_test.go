package bench

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/stm"
)

func newTestRuntime(t testing.TB) (*stm.Runtime, stm.Addr) {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	th := rt.MustAttach()
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
	})
	rt.Detach(th)
	return rt, a
}

// TestOpenLoopKeepsSchedule: at a rate far below capacity the generator
// must serve ~every arrival on time — achieved rate near offered, no
// terminal lag, and one latency sample per measured arrival.
func TestOpenLoopKeepsSchedule(t *testing.T) {
	rt, a := newTestRuntime(t)
	cfg := OpenLoopConfig{
		Threads: 2,
		Rate:    5000,
		Warmup:  20 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Seed:    1,
	}
	res := RunOpenLoop(rt, cfg, func(th *stm.Thread, rng *workload.Rng, i uint64) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if res.Ops == 0 {
		t.Fatal("no measured ops")
	}
	if res.Latency.Count() != res.Ops || res.Service.Count() != res.Ops {
		t.Fatalf("latency samples %d, service %d, ops %d — every measured op must be sampled",
			res.Latency.Count(), res.Service.Count(), res.Ops)
	}
	// The schedule has Measure/interval measured arrivals; allow the
	// boundary arrival either way.
	want := uint64(float64(cfg.Measure.Seconds()) * cfg.Rate)
	if res.Ops < want-2 || res.Ops > want+2 {
		t.Fatalf("measured ops = %d, want ~%d (open loop must serve every arrival)", res.Ops, want)
	}
	if res.Lag > 50*time.Millisecond {
		t.Fatalf("terminal lag %v at 10%% load — generator cannot keep its own schedule", res.Lag)
	}
	// Client-view latency includes queueing and pacing jitter, so it
	// dominates pure service time.
	if res.Latency.Quantile(0.5) < res.Service.Quantile(0.5) {
		t.Fatalf("median latency %d < median service %d", res.Latency.Quantile(0.5), res.Service.Quantile(0.5))
	}
}

// TestCoordinatedOmission is the methodological point of the open loop,
// asserted: the same workload with one injected 10ms server stall is
// measured both ways. The closed-loop harness — whose arrival stream
// pauses with the stalled worker — sees the stall only as a single slow
// sample (its max), leaving p99.9 at microseconds: the stall's impact on
// every request that would have arrived meanwhile is omitted. The open
// loop keeps those arrivals on schedule, so the backlog the stall
// created lands in the tail and p99.9 rises to the stall's scale.
func TestCoordinatedOmission(t *testing.T) {
	const (
		stall   = 10 * time.Millisecond
		warmup  = 20 * time.Millisecond
		measure = 200 * time.Millisecond
	)

	// Closed loop: one worker, next op issued when the previous returns.
	{
		rt, a := newTestRuntime(t)
		var armed atomic.Bool
		timer := time.AfterFunc(warmup+measure/2, func() { armed.Store(true) })
		defer timer.Stop()
		res := Run(rt, RunConfig{
			Threads:       1,
			Warmup:        warmup,
			Measure:       measure,
			Seed:          3,
			SampleLatency: true,
		}, func(th *stm.Thread, rng *workload.Rng) {
			if armed.CompareAndSwap(true, false) {
				time.Sleep(stall)
			}
			th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
		})
		snap := res.Latency.Snapshot()
		if snap.Count() < 10_000 {
			t.Fatalf("closed loop made only %d samples; too few for the p99.9 argument", snap.Count())
		}
		// The harness DID experience the stall (it is the sample max)...
		if max := snap.Max(); time.Duration(max) < stall {
			t.Fatalf("closed-loop max %v < injected stall %v — stall not hit during the measured window", time.Duration(max), stall)
		}
		// ...yet the tail hides it: one sample among tens of thousands.
		if p999 := time.Duration(snap.Quantile(0.999)); p999 >= stall/2 {
			t.Fatalf("closed-loop p99.9 %v unexpectedly shows the stall (machine too noisy for this test?)", p999)
		}
	}

	// Open loop: same stall injected on one arrival index; the fixed
	// schedule keeps generating during the stall, so the queue it builds
	// is measured.
	{
		rt, a := newTestRuntime(t)
		const rate = 20000.0
		warmArrivals := uint64(warmup.Seconds() * rate)
		measArrivals := uint64(measure.Seconds() * rate)
		stallIndex := warmArrivals + measArrivals/2
		res := RunOpenLoop(rt, OpenLoopConfig{
			Threads: 1,
			Rate:    rate,
			Warmup:  warmup,
			Measure: measure,
			Seed:    3,
		}, func(th *stm.Thread, rng *workload.Rng, i uint64) {
			if i == stallIndex {
				time.Sleep(stall)
			}
			th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
		})
		// ~rate*stall arrivals queued behind the stall: 200 of ~4000
		// measured, i.e. ~5% of samples — far past the 0.1% mark.
		if p999 := time.Duration(res.Latency.Quantile(0.999)); p999 < stall/2 {
			t.Fatalf("open-loop p99.9 %v does not show the %v stall (queued arrivals lost?)", p999, stall)
		}
		// The service view of the very same run still hides it, which is
		// exactly the closed-loop blind spot.
		if svc999 := time.Duration(res.Service.Quantile(0.999)); svc999 >= stall/2 {
			t.Fatalf("open-loop service-view p99.9 %v shows the stall; expected it hidden", svc999)
		}
	}
}
