package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// Open-loop load generation. The closed-loop harness (Run) issues the
// next operation the moment the previous one returns, so a slow response
// slows the request stream itself: a 10ms server stall suppresses ~10ms
// of arrivals, and the latency sample silently omits the very ops that
// would have observed the stall. That is coordinated omission, and it
// makes closed-loop tail percentiles an artifact of the harness rather
// than a property of the system.
//
// RunOpenLoop instead fixes the arrival schedule in advance: arrival i
// is DUE at start + i/rate regardless of how the system is doing, and
// each op's latency is measured from its intended start, not from when a
// worker got around to issuing it. When the system stalls, arrivals
// queue; every queued op's measurement accrues the full queueing delay,
// so stalls appear in the tail with their true weight — the measurement
// is coordinated-omission-safe by construction, not by correction.
//
// The schedule is virtual: workers claim arrival indexes from one shared
// atomic counter (no central dispatcher goroutine, no channel), pace
// themselves to each claim's due time, and run ops back-to-back when the
// schedule is behind. Each worker records into its own histogram shard,
// merged after the run.
//
// The schedule-drain core is RunOpenLoopFunc, which knows nothing about
// the STM: its ops are plain closures, so the same harness (and the same
// coordinated-omission discipline) drives in-process transactions and
// remote ones over network connections (cmd/netbench). RunOpenLoop is
// the *stm.Runtime wrapper, adding per-worker thread attachment and
// partition-stats windowing.

// IndexedOpFunc is one open-loop operation; i is the op's global arrival
// index (0-based, dense), which deterministic fault-injection harnesses
// can key on (e.g. "stall on arrival 5000").
type IndexedOpFunc func(th *stm.Thread, rng *workload.Rng, i uint64)

// RawOpFunc is one open-loop operation for harnesses that do not run over
// an attached STM thread (e.g. a network client): same contract as
// IndexedOpFunc minus the thread.
type RawOpFunc func(rng *workload.Rng, i uint64)

// WorkerSetup prepares one open-loop worker. It runs on the worker's own
// goroutine before its first arrival and returns the worker's op plus a
// teardown (either may close over per-worker state: an attached thread,
// a network connection). teardown may be nil.
type WorkerSetup func(worker int) (op RawOpFunc, teardown func())

// OpenLoopConfig configures one open-loop run.
type OpenLoopConfig struct {
	// Threads is the worker-pool size draining the arrival schedule. It
	// bounds in-flight concurrency, not the arrival rate: when all
	// workers are busy, due arrivals queue (their latency keeps
	// accruing) until a worker frees.
	Threads int
	// Rate is the target arrival rate in ops/second.
	Rate float64
	// Warmup arrivals run on schedule but are not measured.
	Warmup  time.Duration
	Measure time.Duration
	Seed    uint64
	// OnMeasureStart, when set, fires once at the warmup/measure
	// boundary, concurrent with the workers (RunOpenLoop uses it to
	// snapshot partition stats without stopping the run). It is
	// guaranteed to have returned before RunOpenLoopFunc does.
	OnMeasureStart func()
}

// OpenLoopResult is one open-loop run's measurements.
type OpenLoopResult struct {
	// Ops counts measured (post-warmup) operations.
	Ops     uint64
	Elapsed time.Duration
	// Offered is the configured arrival rate; Achieved the measured
	// completion rate. Achieved < Offered means the system could not
	// keep up and the run finished late (see Lag).
	Offered  float64
	Achieved float64
	// Lag is how far past the schedule's end the last op finished —
	// the run's terminal backlog, expressed in time. ~0 when the system
	// keeps up with the offered rate.
	Lag time.Duration
	// Latency measures each op from its INTENDED start (due time) and
	// so includes queueing delay: the client-visible, coordinated-
	// omission-safe distribution.
	Latency stats.HistSnapshot
	// Service measures each op from its actual issue time — what a
	// closed-loop harness would have reported. The gap between
	// Service and Latency tails is the queueing the closed loop hides.
	Service   stats.HistSnapshot
	Commits   uint64
	Aborts    uint64
	AbortRate float64
	// PerPart holds per-partition deltas over the measured window
	// (including any late drain of the backlog). Populated by
	// RunOpenLoop only; RunOpenLoopFunc has no runtime to sample.
	PerPart []core.PartStats
}

// String summarizes the result on one line.
func (r OpenLoopResult) String() string {
	return fmt.Sprintf("offered %.0f/s achieved %.0f/s lag=%v latency[%s] service[%s]",
		r.Offered, r.Achieved, r.Lag, r.Latency.Summary(), r.Service.Summary())
}

// RunOpenLoopFunc drives an open-loop run: a fixed schedule of
// (Warmup+Measure)*Rate arrivals at 1/Rate spacing, drained by
// cfg.Threads workers, with per-op latency measured from each arrival's
// due time. The run ends when every scheduled arrival has been served —
// possibly after the nominal window, if the system fell behind.
func RunOpenLoopFunc(cfg OpenLoopConfig, setup WorkerSetup) OpenLoopResult {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1000
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = 1
	}
	total := uint64((cfg.Warmup + cfg.Measure) / interval)
	if total == 0 {
		total = 1
	}

	var (
		next      atomic.Uint64
		served    atomic.Uint64
		wg        sync.WaitGroup
		latShards = make([]stats.Histogram, cfg.Threads)
		svcShards = make([]stats.Histogram, cfg.Threads)
	)
	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	deadline := warmEnd.Add(cfg.Measure)

	boundary := make(chan struct{})
	go func() {
		defer close(boundary)
		time.Sleep(time.Until(warmEnd))
		if cfg.OnMeasureStart != nil {
			cfg.OnMeasureStart()
		}
	}()

	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int, seed uint64) {
			defer wg.Done()
			op, teardown := setup(w)
			if teardown != nil {
				defer teardown()
			}
			rng := workload.NewRng(seed)
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				due := start.Add(time.Duration(i) * interval)
				pace(due)
				t0 := time.Now()
				op(rng, i)
				end := time.Now()
				if !due.Before(warmEnd) {
					latShards[w].Record(uint64(end.Sub(due)))
					svcShards[w].Record(uint64(end.Sub(t0)))
					served.Add(1)
				}
			}
		}(w, cfg.Seed*1000+uint64(w)+1)
	}
	wg.Wait()
	finish := time.Now()
	<-boundary

	var lat, svc stats.Histogram
	for i := range latShards {
		lat.Merge(&latShards[i])
		svc.Merge(&svcShards[i])
	}
	res := OpenLoopResult{
		Ops:     served.Load(),
		Elapsed: finish.Sub(warmEnd),
		Offered: cfg.Rate,
		Latency: lat.Snapshot(),
		Service: svc.Snapshot(),
	}
	if lag := finish.Sub(deadline); lag > 0 {
		res.Lag = lag
	}
	if res.Elapsed > 0 {
		res.Achieved = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res
}

// RunOpenLoop is RunOpenLoopFunc over an *stm.Runtime: each worker runs
// with its own attached thread, and partition stats are windowed to the
// measured interval (snapshot at the warmup/measure boundary without
// stopping the workers, again after the drain).
func RunOpenLoop(rt *stm.Runtime, cfg OpenLoopConfig, op IndexedOpFunc) OpenLoopResult {
	var before []core.PartStats
	userBoundary := cfg.OnMeasureStart
	cfg.OnMeasureStart = func() {
		before = rt.Stats()
		if userBoundary != nil {
			userBoundary()
		}
	}
	res := RunOpenLoopFunc(cfg, func(worker int) (RawOpFunc, func()) {
		th := rt.MustAttach()
		return func(rng *workload.Rng, i uint64) {
			op(th, rng, i)
		}, func() { rt.Detach(th) }
	})
	after := rt.Stats()

	n := min(len(after), len(before))
	for i := 0; i < n; i++ {
		d := after[i].Sub(before[i])
		res.PerPart = append(res.PerPart, d)
		res.Commits += d.Commits
		res.Aborts += d.TotalAborts()
	}
	if res.Commits+res.Aborts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(res.Commits+res.Aborts)
	}
	return res
}

// pace blocks until t is due, then returns; it returns immediately when
// t has already passed, so a backlogged schedule drains at full speed.
// Coarse waits sleep (leaving ~100µs of slack for the scheduler's wakeup
// granularity), the slack yields, and the last few microseconds spin, so
// arrival jitter stays well under typical op latency without burning a
// core during idle stretches of slow schedules.
func pace(t time.Time) {
	for {
		d := time.Until(t)
		switch {
		case d <= 0:
			return
		case d > 200*time.Microsecond:
			time.Sleep(d - 100*time.Microsecond)
		case d > 20*time.Microsecond:
			runtime.Gosched()
		}
	}
}
