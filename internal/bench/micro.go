package bench

import (
	"time"

	"repro/internal/workload"
	"repro/stm"
)

// MicroResult is one micro-measurement: wall time per operation on a
// single thread, free of harness scheduling noise.
type MicroResult struct {
	Iters   int
	Total   time.Duration
	NsPerOp float64
}

// MeasureOp times op on a single freshly attached thread: warmup
// iterations untimed, then iters timed. Use it for microbenchmarks of
// primitive transaction costs inside experiments, where testing.B is not
// available.
func MeasureOp(rt *stm.Runtime, warmup, iters int, op OpFunc) MicroResult {
	th := rt.MustAttach()
	defer rt.Detach(th)
	rng := workload.NewRng(42)
	for i := 0; i < warmup; i++ {
		op(th, rng)
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op(th, rng)
	}
	total := time.Since(t0)
	return MicroResult{
		Iters:   iters,
		Total:   total,
		NsPerOp: float64(total.Nanoseconds()) / float64(iters),
	}
}
