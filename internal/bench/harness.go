// Package bench is the experiment harness: it drives worker threads over
// a runtime for timed windows, snapshots per-partition statistics, and
// assembles the tables and figures of the paper's evaluation (see
// internal/experiments for the experiment definitions).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// RunConfig configures one measured run.
type RunConfig struct {
	Threads int
	Warmup  time.Duration
	Measure time.Duration
	Seed    uint64
	// SampleLatency, when true, records one op latency in 64 into the
	// result histogram.
	SampleLatency bool
}

// Result is one run's measurements.
type Result struct {
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // operations per second
	Commits    uint64
	Aborts     uint64
	AbortRate  float64
	PerPart    []core.PartStats // per-partition deltas over the window
	Latency    *stats.Histogram
}

// String summarizes the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%.0f ops/s (ops=%d commits=%d aborts=%d rate=%.3f)",
		r.Throughput, r.Ops, r.Commits, r.Aborts, r.AbortRate)
}

// OpFunc is one benchmark operation: it may run any number of
// transactions on th.
type OpFunc func(th *stm.Thread, rng *workload.Rng)

// Run drives cfg.Threads workers executing op in a loop: warm-up window,
// then a measured window, and returns aggregate and per-partition deltas.
func Run(rt *stm.Runtime, cfg RunConfig, op OpFunc) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	var (
		stop    atomic.Bool
		measure atomic.Bool
		ops     atomic.Uint64
		wg      sync.WaitGroup
		hist    = &stats.Histogram{}
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			local := uint64(0)
			for !stop.Load() {
				if cfg.SampleLatency && measure.Load() && local&63 == 0 {
					t0 := time.Now()
					op(th, rng)
					hist.Record(uint64(time.Since(t0)))
				} else {
					op(th, rng)
				}
				if measure.Load() {
					local++
				}
			}
			ops.Add(local)
		}(cfg.Seed*1000 + uint64(w) + 1)
	}

	time.Sleep(cfg.Warmup)
	before := rt.Stats()
	measure.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	measure.Store(false)
	elapsed := time.Since(t0)
	after := rt.Stats()
	stop.Store(true)
	wg.Wait()

	res := Result{
		Ops:     ops.Load(),
		Elapsed: elapsed,
		Latency: hist,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	n := len(after)
	if len(before) < n {
		n = len(before)
	}
	for i := 0; i < n; i++ {
		d := after[i].Sub(before[i])
		res.PerPart = append(res.PerPart, d)
		res.Commits += d.Commits
		res.Aborts += d.TotalAborts()
	}
	if res.Commits+res.Aborts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(res.Commits+res.Aborts)
	}
	return res
}

// RunOps drives cfg.Threads workers until each has executed opsPerThread
// operations (no timed window); used where exact operation counts matter
// more than duration, e.g. the phase experiments.
func RunOps(rt *stm.Runtime, threads int, opsPerThread int, seed uint64, op OpFunc) Result {
	var wg sync.WaitGroup
	before := rt.Stats()
	t0 := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(s uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(s)
			for i := 0; i < opsPerThread; i++ {
				op(th, rng)
			}
		}(seed*1000 + uint64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	after := rt.Stats()
	res := Result{
		Ops:     uint64(threads * opsPerThread),
		Elapsed: elapsed,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	n := min(len(after), len(before))
	for i := 0; i < n; i++ {
		d := after[i].Sub(before[i])
		res.PerPart = append(res.PerPart, d)
		res.Commits += d.Commits
		res.Aborts += d.TotalAborts()
	}
	if res.Commits+res.Aborts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(res.Commits+res.Aborts)
	}
	return res
}
