// Package bench is the experiment harness: it drives worker threads over
// a runtime for timed windows, snapshots per-partition statistics, and
// assembles the tables and figures of the paper's evaluation (see
// internal/experiments for the experiment definitions).
//
// Two load models are provided. Run is closed-loop: each worker issues
// its next operation the moment the previous one returns, which measures
// service time and peak throughput but lets a stalled system pause its
// own load (coordinated omission). RunOpenLoop is open-loop: operations
// arrive on a fixed schedule and latency counts from each arrival's due
// time, so queueing delay — the part of client-visible latency a closed
// loop cannot observe — lands in the measured tail. Use Run for
// capacity questions, RunOpenLoop for latency questions. Both record
// every measured operation into per-worker histogram shards
// (internal/stats) merged after the run. ParseGoBench/CompareBench and
// friends parse and diff `go test -bench` output for the CI trajectory
// guard (cmd/benchdiff).
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/stm"
)

// RunConfig configures one measured run.
type RunConfig struct {
	Threads int
	Warmup  time.Duration
	Measure time.Duration
	Seed    uint64
	// SampleLatency, when true, records every measured op's latency into
	// the result histogram. Workers record into per-worker shards (one
	// uncontended counter increment per op) merged after the run, so
	// enabling it neither serializes workers nor biases the sample — the
	// old 1-in-64 subsampling systematically missed rare slow ops, which
	// is exactly the tail the histogram exists to expose.
	SampleLatency bool
}

// Result is one run's measurements.
type Result struct {
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // operations per second
	Commits    uint64
	Aborts     uint64
	AbortRate  float64
	PerPart    []core.PartStats // per-partition deltas over the window
	Latency    *stats.Histogram
}

// String summarizes the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%.0f ops/s (ops=%d commits=%d aborts=%d rate=%.3f)",
		r.Throughput, r.Ops, r.Commits, r.Aborts, r.AbortRate)
}

// OpFunc is one benchmark operation: it may run any number of
// transactions on th.
type OpFunc func(th *stm.Thread, rng *workload.Rng)

// Run drives cfg.Threads workers executing op in a loop: warm-up window,
// then a measured window, and returns aggregate and per-partition deltas.
func Run(rt *stm.Runtime, cfg RunConfig, op OpFunc) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	var (
		stop    atomic.Bool
		measure atomic.Bool
		ops     atomic.Uint64
		wg      sync.WaitGroup
		hist    = &stats.Histogram{}
		shards  = make([]stats.Histogram, cfg.Threads)
	)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(seed uint64, shard *stats.Histogram) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			local := uint64(0)
			for !stop.Load() {
				if cfg.SampleLatency && measure.Load() {
					t0 := time.Now()
					op(th, rng)
					shard.RecordSince(t0)
				} else {
					op(th, rng)
				}
				if measure.Load() {
					local++
				}
			}
			ops.Add(local)
		}(cfg.Seed*1000+uint64(w)+1, &shards[w])
	}

	time.Sleep(cfg.Warmup)
	before := rt.Stats()
	measure.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Measure)
	measure.Store(false)
	elapsed := time.Since(t0)
	after := rt.Stats()
	stop.Store(true)
	wg.Wait()
	for i := range shards {
		hist.Merge(&shards[i])
	}

	res := Result{
		Ops:     ops.Load(),
		Elapsed: elapsed,
		Latency: hist,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	n := len(after)
	if len(before) < n {
		n = len(before)
	}
	for i := 0; i < n; i++ {
		d := after[i].Sub(before[i])
		res.PerPart = append(res.PerPart, d)
		res.Commits += d.Commits
		res.Aborts += d.TotalAborts()
	}
	if res.Commits+res.Aborts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(res.Commits+res.Aborts)
	}
	return res
}

// RunOps drives cfg.Threads workers until each has executed opsPerThread
// operations (no timed window); used where exact operation counts matter
// more than duration, e.g. the phase experiments.
func RunOps(rt *stm.Runtime, threads int, opsPerThread int, seed uint64, op OpFunc) Result {
	var wg sync.WaitGroup
	before := rt.Stats()
	t0 := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(s uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(s)
			for i := 0; i < opsPerThread; i++ {
				op(th, rng)
			}
		}(seed*1000 + uint64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	after := rt.Stats()
	res := Result{
		Ops:     uint64(threads * opsPerThread),
		Elapsed: elapsed,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	n := min(len(after), len(before))
	for i := 0; i < n; i++ {
		d := after[i].Sub(before[i])
		res.PerPart = append(res.PerPart, d)
		res.Commits += d.Commits
		res.Aborts += d.TotalAborts()
	}
	if res.Commits+res.Aborts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(res.Commits+res.Aborts)
	}
	return res
}
