package bench

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkUncontendedIncrement/etl-wb-8         	     100	      1200 ns/op
BenchmarkUncontendedIncrement/ctl-8            	     100	      1500 ns/op	 123 B/op	       2 allocs/op
BenchmarkWriteSetProbe-8                       	     100	       800 ns/op
PASS
ok  	repro	1.234s
`

func TestParseGoBench(t *testing.T) {
	got := ParseGoBench(sampleBench)
	want := map[string]float64{
		"BenchmarkUncontendedIncrement/etl-wb-8": 1200,
		"BenchmarkUncontendedIncrement/ctl-8":    1500,
		"BenchmarkWriteSetProbe-8":               800,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	old := map[string]float64{"A-8": 100, "B-8": 100, "OnlyOld-8": 50}
	new := map[string]float64{"A-8": 150, "B-8": 250, "OnlyNew-8": 10}
	rows := CompareBench(old, new, 2.0)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (unmatched benches skipped): %v", len(rows), rows)
	}
	if rows[0].Name != "B-8" || !rows[0].Breached {
		t.Fatalf("worst row = %+v, want breached B-8", rows[0])
	}
	if rows[1].Name != "A-8" || rows[1].Breached {
		t.Fatalf("second row = %+v, want unbreached A-8", rows[1])
	}
	out, breached := FormatComparison(rows, 2.0)
	if !breached || !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL") {
		t.Fatalf("formatted output missed the breach:\n%s", out)
	}
	okRows := CompareBench(old, map[string]float64{"A-8": 110, "B-8": 90}, 2.0)
	if out, breached := FormatComparison(okRows, 2.0); breached {
		t.Fatalf("false positive:\n%s", out)
	}
}
