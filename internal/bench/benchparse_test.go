package bench

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkUncontendedIncrement/etl-wb-8         	     100	      1200 ns/op
BenchmarkUncontendedIncrement/ctl-8            	     100	      1500 ns/op	 123 B/op	       2 allocs/op
BenchmarkWriteSetProbe-8                       	     100	       800 ns/op
PASS
ok  	repro	1.234s
`

func TestParseGoBench(t *testing.T) {
	got := ParseGoBench(sampleBench)
	want := map[string]float64{
		"BenchmarkUncontendedIncrement/etl-wb-8": 1200,
		"BenchmarkUncontendedIncrement/ctl-8":    1500,
		"BenchmarkWriteSetProbe-8":               800,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %v, want %v", k, got[k], v)
		}
	}
}

const sampleMetricBench = `goos: linux
BenchmarkOpenLoopLatency 	    2000	     22520 ns/op	     50007 ops/s	      4351 p99-ns/op
BenchmarkOpenLoopLatency 	    2000	     22511 ns/op	     50008 ops/s	      2431 p99-ns/op
BenchmarkOther-8         	     100	       800 ns/op
PASS
`

func TestParseGoBenchMetrics(t *testing.T) {
	got := ParseGoBenchMetrics(sampleMetricBench, []string{"p99-ns/op"})
	m := got["p99-ns/op"]
	if len(m) != 1 {
		t.Fatalf("parsed %d benchmarks with p99-ns/op, want 1: %v", len(m), m)
	}
	// -count=N repetitions keep the minimum, same as the primary metric.
	if v := m["BenchmarkOpenLoopLatency"]; v != 2431 {
		t.Fatalf("p99 = %v, want min-of-N 2431", v)
	}
	// Un-requested units are not extracted — reads/s-style higher-is-
	// better figures must never fall into the lower-is-better diff.
	if _, ok := got["ops/s"]; ok {
		t.Fatal("extracted a unit that was not asked for")
	}
	if none := ParseGoBenchMetrics(sampleMetricBench, nil); len(none) != 0 {
		t.Fatalf("no units requested but got %v", none)
	}
}

func TestCompareBenchSecondaryMetric(t *testing.T) {
	oldT := "BenchmarkA 	 2000	 100 ns/op	 1000 p99-ns/op\n"
	newT := "BenchmarkA 	 2000	 101 ns/op	 3000 p99-ns/op\n"
	oldM := ParseGoBenchMetrics(oldT, []string{"p99-ns/op"})["p99-ns/op"]
	newM := ParseGoBenchMetrics(newT, []string{"p99-ns/op"})["p99-ns/op"]
	rows := CompareBench(oldM, newM, 2.0)
	if len(rows) != 1 || !rows[0].Breached || rows[0].Factor != 3.0 {
		t.Fatalf("3x p99 regression not flagged: %+v", rows)
	}
	// The primary figure alone would have sailed through.
	prim := CompareBench(ParseGoBench(oldT), ParseGoBench(newT), 2.0)
	if len(prim) != 1 || prim[0].Breached {
		t.Fatalf("primary ns/op should not breach: %+v", prim)
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	old := map[string]float64{"A-8": 100, "B-8": 100, "OnlyOld-8": 50}
	new := map[string]float64{"A-8": 150, "B-8": 250, "OnlyNew-8": 10}
	rows := CompareBench(old, new, 2.0)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (unmatched benches skipped): %v", len(rows), rows)
	}
	if rows[0].Name != "B-8" || !rows[0].Breached {
		t.Fatalf("worst row = %+v, want breached B-8", rows[0])
	}
	if rows[1].Name != "A-8" || rows[1].Breached {
		t.Fatalf("second row = %+v, want unbreached A-8", rows[1])
	}
	out, breached := FormatComparison(rows, 2.0)
	if !breached || !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL") {
		t.Fatalf("formatted output missed the breach:\n%s", out)
	}
	okRows := CompareBench(old, map[string]float64{"A-8": 110, "B-8": 90}, 2.0)
	if out, breached := FormatComparison(okRows, 2.0); breached {
		t.Fatalf("false positive:\n%s", out)
	}
}
