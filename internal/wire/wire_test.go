package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
)

func frameOf(t *testing.T, payload []byte) []byte {
	t.Helper()
	return AppendFrame(nil, payload)
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{1},
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	rest := stream
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameShortAndCorrupt(t *testing.T) {
	full := frameOf(t, []byte("payload-bytes"))
	// Every strict prefix is ErrShortFrame, never a hard error or panic.
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeFrame(full[:n]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d: err = %v, want ErrShortFrame", n, err)
		}
	}
	// Any single bit flip in the payload is a checksum mismatch.
	for bit := 0; bit < 8; bit++ {
		bad := bytes.Clone(full)
		bad[FrameHeaderSize+3] ^= 1 << bit
		if _, _, err := DecodeFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
			t.Fatalf("payload bit flip %d: err = %v, want checksum error", bit, err)
		}
	}
	// A zero or giant length field is rejected before any allocation.
	zero := bytes.Clone(full)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, _, err := DecodeFrame(zero); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("zero length: err = %v, want hard error", err)
	}
	giant := bytes.Clone(full)
	giant[3] = 0xFF
	if _, _, err := DecodeFrame(giant); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("giant length: err = %v, want hard error", err)
	}
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, []byte("first"))
	stream = AppendFrame(stream, []byte("second-longer-payload"))
	r := bytes.NewReader(stream)
	var buf []byte
	p1, buf, err := ReadFrame(r, buf)
	if err != nil || string(p1) != "first" {
		t.Fatalf("frame 1: %q, %v", p1, err)
	}
	p2, buf, err := ReadFrame(r, buf)
	if err != nil || string(p2) != "second-longer-payload" {
		t.Fatalf("frame 2: %q, %v", p2, err)
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("clean end: err = %v, want io.EOF", err)
	}
	// A stream dying mid-frame is ErrUnexpectedEOF, not a clean EOF.
	if _, _, err := ReadFrame(bytes.NewReader(stream[:len(stream)-3]), nil); len(stream) > 3 {
		// first frame still decodes; only the second is torn
		_ = err
	}
	r2 := bytes.NewReader(stream[:len(stream)-3])
	if _, buf2, err := ReadFrame(r2, nil); err != nil {
		t.Fatalf("torn stream frame 1: %v", err)
	} else if _, _, err := ReadFrame(r2, buf2); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream frame 2: err = %v, want ErrUnexpectedEOF", err)
	}
}

func sampleTxnReq() *TxnReq {
	return &TxnReq{
		ID:    0xDEADBEEF01,
		Flags: FlagUpdate,
		Ops: []Op{
			{Code: OpGet, Key: "alpha"},
			{Code: OpPut, Key: "beta", Vals: []uint64{1, 2, 3}},
			{Code: OpAdd, Key: "gamma", Delta: ^uint64(0)}, // -1
			{Code: OpCAS, Key: "delta", Expect: 7, New: 9},
		},
	}
}

func TestTxnReqRoundTrip(t *testing.T) {
	want := sampleTxnReq()
	buf, err := AppendTxnReq(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if Kind(buf) != KindTxnReq {
		t.Fatalf("kind = %d", Kind(buf))
	}
	got, err := DecodeTxnReq(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.ReadOnly() {
		t.Fatal("mixed batch reported read-only")
	}
	ro := &TxnReq{ID: 1, Ops: []Op{{Code: OpGet, Key: "a"}, {Code: OpGet, Key: "b"}}}
	if !ro.ReadOnly() {
		t.Fatal("all-GET batch not read-only")
	}
}

func TestTxnRespRoundTrip(t *testing.T) {
	cases := []*TxnResp{
		{ID: 1, Status: StatusOK, Results: []Result{
			{Flag: true, Vals: []uint64{10, 20}},
			{Flag: false},
			{Flag: true, Vals: []uint64{5}},
		}},
		{ID: 2, Status: StatusMaxAttempts, Attempts: 17, Cause: core.AbortLockedOnWrite},
		{ID: 3, Status: StatusNotDurable, Seq: 12345},
		{ID: 4, Status: StatusBadRequest, Msg: "op 2 PUT with 0 vals"},
		{ID: 5, Status: StatusClosing, Msg: "server shutting down"},
	}
	for _, want := range cases {
		buf := AppendTxnResp(nil, want)
		got, err := DecodeTxnResp(buf)
		if err != nil {
			t.Fatalf("%v: %v", want.Status, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	req := &StatsReq{ID: 42}
	buf := AppendStatsReq(nil, req)
	got, err := DecodeStatsReq(buf)
	if err != nil || got.ID != 42 {
		t.Fatalf("stats req: %+v, %v", got, err)
	}
	payload := &StatsPayload{Server: ServerStats{Conns: 3, Txns: 99, Keys: 7}}
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	rbuf := AppendStatsResp(nil, 42, StatusOK, body, "")
	resp, rawBody, err := DecodeStatsResp(rbuf)
	if err != nil || resp.ID != 42 || resp.Status != StatusOK {
		t.Fatalf("stats resp: %+v, %v", resp, err)
	}
	var back StatsPayload
	if err := json.Unmarshal(rawBody, &back); err != nil {
		t.Fatal(err)
	}
	if back.Server != payload.Server {
		t.Fatalf("stats payload mismatch: %+v", back.Server)
	}
	// Error form.
	ebuf := AppendStatsResp(nil, 43, StatusInternal, nil, "boom")
	eresp, _, err := DecodeStatsResp(ebuf)
	if err != nil || eresp.Status != StatusInternal || eresp.Msg != "boom" {
		t.Fatalf("stats error resp: %+v, %v", eresp, err)
	}
}

// TestDecodeRejectsTrailingGarbage: extra bytes after a message are a
// protocol error, not silently ignored.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	buf, err := AppendTxnReq(nil, sampleTxnReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTxnReq(append(buf, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	rbuf := AppendTxnResp(nil, &TxnResp{ID: 9, Status: StatusOK})
	if _, err := DecodeTxnResp(append(rbuf, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeBounds: oversized counts embedded in otherwise well-formed
// messages are rejected by the named bounds, not by allocation failure.
func TestDecodeBounds(t *testing.T) {
	req := &TxnReq{ID: 1, Ops: []Op{{Code: OpGet, Key: string(make([]byte, MaxKeyLen+1))}}}
	if _, err := AppendTxnReq(nil, req); err == nil {
		t.Fatal("oversized key encoded")
	}
	big := &TxnReq{ID: 1, Ops: make([]Op, MaxOpsPerTxn+1)}
	for i := range big.Ops {
		big.Ops[i] = Op{Code: OpGet, Key: "k"}
	}
	if _, err := AppendTxnReq(nil, big); err == nil {
		t.Fatal("oversized batch encoded")
	}
	vals := &TxnReq{ID: 1, Ops: []Op{{Code: OpPut, Key: "k", Vals: make([]uint64, MaxArity+1)}}}
	if _, err := AppendTxnReq(nil, vals); err == nil {
		t.Fatal("oversized value vector encoded")
	}
}
