package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame transport: len uint32 | crc uint32 (CRC32C over payload) |
// payload. See the package comment for the trust model — a bad frame
// breaks the connection, it is never resynchronized.

const (
	// FrameHeaderSize is the fixed per-frame overhead in bytes.
	FrameHeaderSize = 4 + 4
	// MaxFramePayload bounds the length field so a corrupt or hostile
	// frame cannot provoke a giant allocation (same guard as the WAL's
	// recovery path).
	MaxFramePayload = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrShortFrame reports a frame whose bytes have not fully arrived yet —
// the one decode failure that is NOT a protocol error on a stream (more
// bytes may be in flight). Stream readers should use ReadFrame, which
// blocks instead; DecodeFrame exists for tests and fuzzing over byte
// slices.
var ErrShortFrame = errors.New("wire: incomplete frame")

// AppendFrame wraps payload in a frame header and appends the whole
// frame to buf.
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// DecodeFrame decodes one frame from the front of data, returning its
// payload (aliasing data) and the remaining bytes. A frame that has not
// fully arrived is ErrShortFrame; an implausible length or a checksum
// mismatch is a hard protocol error.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < FrameHeaderSize {
		return nil, data, ErrShortFrame
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n == 0 || n > MaxFramePayload {
		return nil, data, fmt.Errorf("wire: implausible frame length %d", n)
	}
	if len(data)-FrameHeaderSize < n {
		return nil, data, ErrShortFrame
	}
	payload = data[FrameHeaderSize : FrameHeaderSize+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, data, fmt.Errorf("wire: frame checksum mismatch")
	}
	return payload, data[FrameHeaderSize+n:], nil
}

// ReadFrame reads one complete frame from r into buf (grown as needed)
// and returns the payload, which aliases buf. io.EOF surfaces unwrapped
// only on a clean frame boundary; a connection dying mid-frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (payload, newBuf []byte, err error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFramePayload {
		return nil, buf, fmt.Errorf("wire: implausible frame length %d", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, buf, fmt.Errorf("wire: frame checksum mismatch")
	}
	return buf, buf, nil
}
