// Package wire is the binary protocol between the network-facing store
// (internal/server, cmd/stmd) and its clients (stmnet). It carries
// pipelined, batched multi-key transactions over any byte stream.
//
// # Framing
//
// The transport is a sequence of length-prefixed frames, the same
// checksummed record idiom as the redo log (internal/wal):
//
//	len uint32  payload length in bytes
//	crc uint32  CRC32C (Castagnoli) over the payload
//	payload
//
// A frame whose length is implausible or whose checksum does not match
// the payload is a protocol error: the connection is broken, not
// resynchronized — TCP does not tear frames, so a bad frame means a bug
// or a hostile peer, and the only safe reaction is to drop the
// connection. Decoding is allocation-bounded (MaxFramePayload) and never
// panics on arbitrary bytes (FuzzDecodeFrame pins this).
//
// # Messages
//
// Every payload begins with a kind byte and a request id. Request ids
// are chosen by the client and echoed verbatim in the response; they
// need only be unique among the connection's in-flight requests, which
// is what makes pipelining work — the server executes batches
// concurrently and streams responses back in completion order, and the
// client routes each response to its caller by id.
//
//	kind 1 (TxnReq):    id, flags, ops — one batched transaction
//	kind 2 (TxnResp):   id, status, results or error detail
//	kind 3 (StatsReq):  id
//	kind 4 (StatsResp): id, status, JSON statistics payload
//
// A TxnReq's ops execute as ONE transaction (stm.Runtime.Run): all of
// them commit atomically or the batch fails as a unit. A batch of only
// GET ops is read-only; the server dispatches it in snapshot mode so
// heavy read traffic commits abort-free (FlagUpdate opts out, for
// measurements that want the validate/extend path).
//
// # Errors
//
// Failures carry typed status codes, not strings: StatusMaxAttempts
// round-trips a *core.MaxAttemptsError (attempt count and final abort
// cause), StatusNotDurable a *core.NotDurableError (the commit applied
// in memory but its redo record never became durable — see the
// durability notes in stm/wal.go). The client package rebuilds the
// concrete error types so errors.Is/errors.As work across the wire
// exactly as they do in-process.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Message kinds (first payload byte).
const (
	// KindTxnReq is a batched multi-key transaction request.
	KindTxnReq = 1
	// KindTxnResp answers one TxnReq.
	KindTxnResp = 2
	// KindStatsReq asks for the server's statistics snapshot.
	KindStatsReq = 3
	// KindStatsResp answers one StatsReq with a JSON payload.
	KindStatsResp = 4
)

// OpCode selects one operation inside a TXN batch. Every op names a key;
// values are fixed-arity vectors of 64-bit words (the space's arity is a
// server-side configuration — see internal/server).
type OpCode uint8

const (
	// OpGet reads the key's whole value vector (found=false when the key
	// was never written, with no side effect — a GET does not create).
	OpGet OpCode = 1
	// OpPut writes the key's whole value vector, creating the key if
	// needed. Vals must carry exactly the space's arity.
	OpPut OpCode = 2
	// OpAdd adds Delta (two's-complement, so negative deltas subtract) to
	// word 0 of the key's value, creating the key as zero first; the
	// result carries the post-add word.
	OpAdd OpCode = 3
	// OpCAS compares word 0 against Expect and stores New on match,
	// creating the key as zero first; the result carries the observed old
	// word and whether the swap happened.
	OpCAS OpCode = 4
)

func (c OpCode) String() string {
	switch c {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpAdd:
		return "ADD"
	case OpCAS:
		return "CAS"
	}
	return fmt.Sprintf("OpCode(%d)", uint8(c))
}

// TxnReq flags.
const (
	// FlagUpdate forces an all-GET batch down the ordinary update-mode
	// path instead of the snapshot-mode read path. Measurement escape
	// hatch; normal clients leave flags zero.
	FlagUpdate uint8 = 1 << 0
)

// Status classifies a response. Zero is success.
type Status uint8

const (
	// StatusOK: the batch committed; results are present.
	StatusOK Status = 0
	// StatusMaxAttempts: the batch exhausted the server's retry budget
	// and was rolled back. Attempts and Cause carry the
	// *core.MaxAttemptsError detail.
	StatusMaxAttempts Status = 1
	// StatusNotDurable: the batch COMMITTED in memory, but the server
	// runs DurabilitySync and the commit's redo record never became
	// durable (log closed or died). Seq carries the claimed LSN (0 when
	// the publish was refused). Treat as applied-but-unacknowledged.
	StatusNotDurable Status = 2
	// StatusBadRequest: the batch was malformed (unknown op, wrong
	// arity, oversized key...) and nothing was executed. Msg explains.
	StatusBadRequest Status = 3
	// StatusInternal: the server failed to execute the batch for a
	// reason that is not the client's fault. Msg explains.
	StatusInternal Status = 4
	// StatusClosing: the server is shutting down and refused the batch
	// before executing it.
	StatusClosing Status = 5
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusMaxAttempts:
		return "MAX_ATTEMPTS"
	case StatusNotDurable:
		return "NOT_DURABLE"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	case StatusClosing:
		return "CLOSING"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Protocol bounds. Violations are StatusBadRequest (server side) or a
// decode error (codec side), never a large allocation.
const (
	// MaxKeyLen bounds one key's byte length.
	MaxKeyLen = 1024
	// MaxOpsPerTxn bounds the ops in one batch.
	MaxOpsPerTxn = 4096
	// MaxArity bounds a value vector's word count.
	MaxArity = 64
)

// Op is one operation of a TXN batch.
type Op struct {
	Code OpCode
	// Key names the target object (1..MaxKeyLen bytes).
	Key string
	// Vals is OpPut's value vector.
	Vals []uint64
	// Delta is OpAdd's addend (two's-complement).
	Delta uint64
	// Expect and New are OpCAS's comparands (word 0).
	Expect, New uint64
}

// TxnReq is one batched transaction request.
type TxnReq struct {
	ID    uint64
	Flags uint8
	Ops   []Op
}

// ReadOnly reports whether every op in the batch is a GET — the
// precondition for the snapshot-mode read path.
func (r *TxnReq) ReadOnly() bool {
	for i := range r.Ops {
		if r.Ops[i].Code != OpGet {
			return false
		}
	}
	return true
}

// Result is one op's outcome inside a committed batch, indexed like the
// request's Ops. Flag means: GET — key found; CAS — swap happened;
// PUT/ADD — always true.
type Result struct {
	Flag bool
	// Vals: GET — the value vector (nil when not found); ADD — one word,
	// the post-add value; CAS — one word, the observed old value.
	Vals []uint64
}

// TxnResp answers one TxnReq.
type TxnResp struct {
	ID     uint64
	Status Status
	// Results is present iff Status == StatusOK, one entry per request
	// op.
	Results []Result
	// Attempts and Cause carry StatusMaxAttempts detail.
	Attempts uint32
	Cause    core.AbortCause
	// Seq carries StatusNotDurable detail (the commit's claimed LSN).
	Seq uint64
	// Msg carries human-readable detail for StatusBadRequest,
	// StatusInternal and StatusClosing.
	Msg string
}

// StatsReq asks for the server's statistics snapshot.
type StatsReq struct {
	ID uint64
}

// StatsResp answers one StatsReq.
type StatsResp struct {
	ID     uint64
	Status Status
	// Payload is the JSON-decoded statistics (nil unless StatusOK).
	Payload *StatsPayload
	Msg     string
}

// ServerStats is the server's own counter block inside a StatsPayload
// (the engine-level statistics ride alongside as PartStats etc).
type ServerStats struct {
	// Conns counts connections ever accepted; CurConns the live ones.
	Conns    uint64
	CurConns int64
	// Frames counts frames read; Txns batches executed; TxnOps the ops
	// they carried.
	Frames uint64
	Txns   uint64
	TxnOps uint64
	// ReadOnlyTxns counts all-GET batches; SnapshotTxns the subset
	// dispatched in snapshot mode.
	ReadOnlyTxns uint64
	SnapshotTxns uint64
	// TxnAborts counts aborted attempts across all batches;
	// SnapshotAborts the subset inside snapshot-mode batches (zero while
	// retention suffices — the loopback integration test pins this).
	TxnAborts      uint64
	SnapshotAborts uint64
	// BadRequests counts batches refused before execution.
	BadRequests uint64
	// Keys counts interned keys (live objects in the keyed space);
	// DirCollisions counts 64-bit key-hash collisions the transactional
	// directory could not index (the Go-side intern table stays
	// authoritative, so collisions cost profiling fidelity, not
	// correctness).
	Keys          uint64
	DirCollisions uint64
}

// StatsPayload is the JSON body of a StatsResp: the server's counters
// plus the embedded runtime's per-partition statistics, commit-latency
// histogram, thread-pool counters and (when durable) redo-log counters.
type StatsPayload struct {
	Server  ServerStats
	Parts   []core.PartStats
	Latency stats.HistSnapshot
	Pool    core.PoolStats
	WAL     *wal.Stats `json:",omitempty"`
}

// --- Message encoding ---------------------------------------------------

// AppendTxnReq appends req's encoded payload (no frame header) to buf.
func AppendTxnReq(buf []byte, req *TxnReq) ([]byte, error) {
	if len(req.Ops) == 0 || len(req.Ops) > MaxOpsPerTxn {
		return buf, fmt.Errorf("wire: batch of %d ops (want 1..%d)", len(req.Ops), MaxOpsPerTxn)
	}
	buf = append(buf, KindTxnReq)
	buf = binary.LittleEndian.AppendUint64(buf, req.ID)
	buf = append(buf, req.Flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Ops)))
	for i := range req.Ops {
		op := &req.Ops[i]
		if len(op.Key) == 0 || len(op.Key) > MaxKeyLen {
			return buf, fmt.Errorf("wire: op %d key length %d (want 1..%d)", i, len(op.Key), MaxKeyLen)
		}
		buf = append(buf, uint8(op.Code))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(op.Key)))
		buf = append(buf, op.Key...)
		switch op.Code {
		case OpGet:
		case OpPut:
			if len(op.Vals) == 0 || len(op.Vals) > MaxArity {
				return buf, fmt.Errorf("wire: op %d PUT with %d vals (want 1..%d)", i, len(op.Vals), MaxArity)
			}
			buf = append(buf, uint8(len(op.Vals)))
			for _, v := range op.Vals {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		case OpAdd:
			buf = binary.LittleEndian.AppendUint64(buf, op.Delta)
		case OpCAS:
			buf = binary.LittleEndian.AppendUint64(buf, op.Expect)
			buf = binary.LittleEndian.AppendUint64(buf, op.New)
		default:
			return buf, fmt.Errorf("wire: op %d has unknown opcode %d", i, op.Code)
		}
	}
	return buf, nil
}

// AppendTxnResp appends resp's encoded payload (no frame header) to buf.
func AppendTxnResp(buf []byte, resp *TxnResp) []byte {
	buf = append(buf, KindTxnResp)
	buf = binary.LittleEndian.AppendUint64(buf, resp.ID)
	buf = append(buf, uint8(resp.Status))
	switch resp.Status {
	case StatusOK:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(resp.Results)))
		for i := range resp.Results {
			r := &resp.Results[i]
			flag := uint8(0)
			if r.Flag {
				flag = 1
			}
			buf = append(buf, flag, uint8(len(r.Vals)))
			for _, v := range r.Vals {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		}
	case StatusMaxAttempts:
		buf = binary.LittleEndian.AppendUint32(buf, resp.Attempts)
		buf = append(buf, uint8(resp.Cause))
	case StatusNotDurable:
		buf = binary.LittleEndian.AppendUint64(buf, resp.Seq)
	default:
		msg := resp.Msg
		if len(msg) > 1<<15 {
			msg = msg[:1<<15]
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
		buf = append(buf, msg...)
	}
	return buf
}

// AppendStatsReq appends req's encoded payload (no frame header) to buf.
func AppendStatsReq(buf []byte, req *StatsReq) []byte {
	buf = append(buf, KindStatsReq)
	return binary.LittleEndian.AppendUint64(buf, req.ID)
}

// AppendStatsResp appends a StatsResp payload carrying the pre-marshaled
// JSON body (status StatusOK), or an error status with msg.
func AppendStatsResp(buf []byte, id uint64, status Status, body []byte, msg string) []byte {
	buf = append(buf, KindStatsResp)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = append(buf, uint8(status))
	if status == StatusOK {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		return append(buf, body...)
	}
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	return append(buf, msg...)
}

// --- Message decoding ---------------------------------------------------

// reader is a bounds-checked little-endian cursor over one payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u8(what string) uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) words(n int, what string) []uint64 {
	if r.err != nil || n < 0 || r.off+8*n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off+8*i:])
	}
	r.off += 8 * n
	return out
}

// done returns the decode error, including trailing-garbage detection:
// a payload with bytes past the message is malformed, not ignorable.
func (r *reader) done(kind string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %s carries %d trailing bytes", kind, len(r.b)-r.off)
	}
	return nil
}

// Kind peeks a payload's message kind (0 when empty).
func Kind(payload []byte) uint8 {
	if len(payload) == 0 {
		return 0
	}
	return payload[0]
}

// DecodeTxnReq decodes a KindTxnReq payload.
func DecodeTxnReq(payload []byte) (*TxnReq, error) {
	r := &reader{b: payload}
	if k := r.u8("kind"); k != KindTxnReq && r.err == nil {
		return nil, fmt.Errorf("wire: kind %d is not a TxnReq", k)
	}
	req := &TxnReq{ID: r.u64("id"), Flags: r.u8("flags")}
	n := int(r.u16("op count"))
	if r.err == nil && (n == 0 || n > MaxOpsPerTxn) {
		return nil, fmt.Errorf("wire: batch of %d ops (want 1..%d)", n, MaxOpsPerTxn)
	}
	if r.err != nil {
		return nil, r.err
	}
	req.Ops = make([]Op, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var op Op
		op.Code = OpCode(r.u8("opcode"))
		kl := int(r.u16("key length"))
		if r.err == nil && (kl == 0 || kl > MaxKeyLen) {
			return nil, fmt.Errorf("wire: op %d key length %d (want 1..%d)", i, kl, MaxKeyLen)
		}
		op.Key = string(r.bytes(kl, "key"))
		switch op.Code {
		case OpGet:
		case OpPut:
			nv := int(r.u8("val count"))
			if r.err == nil && (nv == 0 || nv > MaxArity) {
				return nil, fmt.Errorf("wire: op %d PUT with %d vals (want 1..%d)", i, nv, MaxArity)
			}
			op.Vals = r.words(nv, "vals")
		case OpAdd:
			op.Delta = r.u64("delta")
		case OpCAS:
			op.Expect = r.u64("expect")
			op.New = r.u64("new")
		default:
			if r.err == nil {
				return nil, fmt.Errorf("wire: op %d has unknown opcode %d", i, op.Code)
			}
		}
		req.Ops = append(req.Ops, op)
	}
	if err := r.done("TxnReq"); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeTxnResp decodes a KindTxnResp payload.
func DecodeTxnResp(payload []byte) (*TxnResp, error) {
	r := &reader{b: payload}
	if k := r.u8("kind"); k != KindTxnResp && r.err == nil {
		return nil, fmt.Errorf("wire: kind %d is not a TxnResp", k)
	}
	resp := &TxnResp{ID: r.u64("id"), Status: Status(r.u8("status"))}
	switch resp.Status {
	case StatusOK:
		n := int(r.u16("result count"))
		if r.err == nil && n > MaxOpsPerTxn {
			return nil, fmt.Errorf("wire: %d results (max %d)", n, MaxOpsPerTxn)
		}
		if r.err != nil {
			return nil, r.err
		}
		resp.Results = make([]Result, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var res Result
			res.Flag = r.u8("flag") != 0
			nv := int(r.u8("val count"))
			if r.err == nil && nv > MaxArity {
				return nil, fmt.Errorf("wire: result %d with %d vals (max %d)", i, nv, MaxArity)
			}
			if nv > 0 {
				res.Vals = r.words(nv, "vals")
			}
			resp.Results = append(resp.Results, res)
		}
	case StatusMaxAttempts:
		resp.Attempts = r.u32("attempts")
		resp.Cause = core.AbortCause(r.u8("cause"))
	case StatusNotDurable:
		resp.Seq = r.u64("seq")
	default:
		ml := int(r.u16("msg length"))
		resp.Msg = string(r.bytes(ml, "msg"))
	}
	if err := r.done("TxnResp"); err != nil {
		return nil, err
	}
	return resp, nil
}

// DecodeStatsReq decodes a KindStatsReq payload.
func DecodeStatsReq(payload []byte) (*StatsReq, error) {
	r := &reader{b: payload}
	if k := r.u8("kind"); k != KindStatsReq && r.err == nil {
		return nil, fmt.Errorf("wire: kind %d is not a StatsReq", k)
	}
	req := &StatsReq{ID: r.u64("id")}
	if err := r.done("StatsReq"); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeStatsResp decodes a KindStatsResp payload, returning the raw
// JSON body for the caller to unmarshal (Payload stays nil here — the
// codec does not pull encoding/json into the hot path).
func DecodeStatsResp(payload []byte) (*StatsResp, []byte, error) {
	r := &reader{b: payload}
	if k := r.u8("kind"); k != KindStatsResp && r.err == nil {
		return nil, nil, fmt.Errorf("wire: kind %d is not a StatsResp", k)
	}
	resp := &StatsResp{ID: r.u64("id"), Status: Status(r.u8("status"))}
	var body []byte
	if resp.Status == StatusOK {
		bl := int(r.u32("body length"))
		if r.err == nil && bl > MaxFramePayload {
			return nil, nil, fmt.Errorf("wire: stats body of %d bytes (max %d)", bl, MaxFramePayload)
		}
		body = r.bytes(bl, "body")
	} else {
		ml := int(r.u16("msg length"))
		resp.Msg = string(r.bytes(ml, "msg"))
	}
	if err := r.done("StatsResp"); err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}
