package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame pins the codec's arbitrary-input contract: torn
// frames, corrupt length fields and CRC flips never panic, never
// allocate unboundedly, and never MISparse — any frame the decoder
// accepts must re-encode to the exact accepted bytes, and message
// payloads that decode must round-trip through their encoder.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with well-formed traffic so mutations explore the interesting
	// neighborhoods: a mixed TXN batch, responses of every status, stats.
	req, err := AppendTxnReq(nil, &TxnReq{
		ID:    7,
		Flags: FlagUpdate,
		Ops: []Op{
			{Code: OpGet, Key: "k0"},
			{Code: OpPut, Key: "k1", Vals: []uint64{1, 2, 3, 4}},
			{Code: OpAdd, Key: "k2", Delta: ^uint64(0)},
			{Code: OpCAS, Key: "k3", Expect: 5, New: 6},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(AppendFrame(nil, req))
	f.Add(AppendFrame(nil, AppendTxnResp(nil, &TxnResp{ID: 8, Status: StatusOK, Results: []Result{
		{Flag: true, Vals: []uint64{42}}, {Flag: false},
	}})))
	f.Add(AppendFrame(nil, AppendTxnResp(nil, &TxnResp{ID: 9, Status: StatusMaxAttempts, Attempts: 3, Cause: 2})))
	f.Add(AppendFrame(nil, AppendTxnResp(nil, &TxnResp{ID: 10, Status: StatusNotDurable, Seq: 99})))
	f.Add(AppendFrame(nil, AppendStatsReq(nil, &StatsReq{ID: 11})))
	f.Add(AppendFrame(nil, AppendStatsResp(nil, 12, StatusOK, []byte(`{"Server":{}}`), "")))
	// Torn and corrupted variants.
	torn := AppendFrame(nil, req)
	f.Add(torn[:len(torn)-5])
	flipped := bytes.Clone(torn)
	flipped[FrameHeaderSize+2] ^= 0x40
	f.Add(flipped)
	badLen := bytes.Clone(torn)
	badLen[2] = 0xFF
	f.Add(badLen)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for depth := 0; depth < 64; depth++ {
			payload, next, err := DecodeFrame(rest)
			if err != nil {
				if errors.Is(err, ErrShortFrame) && len(rest) >= FrameHeaderSize+1+MaxFramePayload {
					t.Fatalf("ErrShortFrame on %d buffered bytes — decoder refused a decidable frame", len(rest))
				}
				return
			}
			// An accepted frame must re-encode bit-for-bit: the framing
			// layer cannot have normalized or misread anything.
			reenc := AppendFrame(nil, payload)
			if !bytes.Equal(reenc, rest[:len(rest)-len(next)]) {
				t.Fatalf("accepted frame does not re-encode to its input bytes")
			}
			fuzzPayload(t, payload)
			if len(next) >= len(rest) {
				t.Fatalf("decode made no progress")
			}
			rest = next
		}
	})
}

// fuzzPayload decodes payload as every message kind; whichever decode
// succeeds must round-trip through its encoder to the same bytes.
func fuzzPayload(t *testing.T, payload []byte) {
	if req, err := DecodeTxnReq(payload); err == nil {
		reenc, err := AppendTxnReq(nil, req)
		if err != nil {
			t.Fatalf("decoded TxnReq does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, payload) {
			t.Fatalf("TxnReq round trip changed bytes")
		}
	}
	if resp, err := DecodeTxnResp(payload); err == nil {
		if !bytes.Equal(AppendTxnResp(nil, resp), payload) {
			t.Fatalf("TxnResp round trip changed bytes")
		}
	}
	if req, err := DecodeStatsReq(payload); err == nil {
		if !bytes.Equal(AppendStatsReq(nil, req), payload) {
			t.Fatalf("StatsReq round trip changed bytes")
		}
	}
	if resp, body, err := DecodeStatsResp(payload); err == nil {
		if !bytes.Equal(AppendStatsResp(nil, resp.ID, resp.Status, body, resp.Msg), payload) {
			t.Fatalf("StatsResp round trip changed bytes")
		}
	}
}
