//go:build !unix

package wal

import "os"

// kill approximates SIGKILL on platforms without it. os.Exit skips
// deferred functions and buffered flushes, which is the property the
// crash points rely on.
func kill() {
	os.Exit(137)
}
