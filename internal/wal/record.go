package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Log format. A log is a directory of rotating segment files
// (wal-<%016x startSeq>.seg) plus at most one CHECKPOINT file
// (checkpoint.go). Every segment starts with a fixed header
//
//	magic  [8]byte "WALSEG01"
//	start  uint64  sequence number of the segment's first record
//	crc    uint32  CRC32C over magic+start
//
// followed by length-prefixed frames, one per record:
//
//	len    uint32  payload length in bytes
//	crc    uint32  CRC32C over the payload
//	payload
//
// The payload begins with a kind byte and the record's sequence number;
// sequence numbers are assigned contiguously at publish time (under the
// committing transaction's write locks), so file order is commit order
// and any prefix of the log is a causally consistent cut. Recovery
// validates every frame; a failed length or checksum in the LAST segment
// is a torn tail from a crash mid-write and is truncated away, anywhere
// else it is corruption and recovery fails loudly.
//
//	kind 1 (commit): ver uint64, n uint32, n × (addr uint64, val uint64)
//	kind 2 (grab):   firstBlock uint64, blocks uint64,
//	                 nameLen uint16, name []byte
//
// Commit records carry absolute post-images, so replay in sequence order
// is idempotent: replaying any suffix twice, or replaying records already
// reflected in a checkpoint image, rewrites the same final values.
// Grab records journal arena block-range assignments (block→site, bump of
// the next-free-block cursor) so that replayed commit records land in
// blocks the restarted allocator will never hand out again.
const (
	segMagic      = "WALSEG01"
	segHeaderSize = 8 + 8 + 4

	frameHeaderSize = 4 + 4
	// maxFramePayload bounds the length field so a corrupt frame cannot
	// provoke a giant allocation during recovery.
	maxFramePayload = 1 << 26

	// KindCommit is a committed transaction's redo record.
	KindCommit = 1
	// KindGrab is an arena block-range assignment record.
	KindGrab = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is one word write of a commit record: the address and the absolute
// new value.
type Op struct {
	Addr uint64
	Val  uint64
}

// Record is one decoded log record, as handed to Replay callbacks.
type Record struct {
	// Seq is the record's log sequence number.
	Seq uint64
	// Kind is KindCommit or KindGrab.
	Kind uint8

	// Ver is the commit's write version (KindCommit). Under the
	// partition-local time base it is the maximum over the commit's
	// per-partition versions — an upper bound suitable for re-seeding the
	// clock after recovery.
	Ver uint64
	// Ops are the commit's word writes (KindCommit).
	Ops []Op

	// FirstBlock and Blocks describe the assigned block range (KindGrab).
	FirstBlock uint64
	Blocks     uint64
	// Site is the owning allocation site's name (KindGrab) — names, not
	// ids, because site ids are assigned in registration order, which a
	// restart replays from the checkpoint's site list plus these records.
	Site string
}

func segName(startSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", startSeq)
}

func appendSegHeader(buf []byte, startSeq uint64) []byte {
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, startSeq)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(buf)-16:], castagnoli))
}

// parseSegHeader validates a segment header and returns its start
// sequence number.
func parseSegHeader(hdr []byte) (uint64, error) {
	if len(hdr) < segHeaderSize {
		return 0, fmt.Errorf("wal: short segment header (%d bytes)", len(hdr))
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", hdr[:8])
	}
	if crc32.Checksum(hdr[:16], castagnoli) != binary.LittleEndian.Uint32(hdr[16:20]) {
		return 0, fmt.Errorf("wal: segment header checksum mismatch")
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// appendFrame wraps payload (buf[payloadStart:]) in the length+checksum
// frame header. Callers append the header placeholder first via
// beginFrame and call endFrame with the payload start.
func beginFrame(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
}

func endFrame(buf []byte, frameStart int) []byte {
	payload := buf[frameStart+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[frameStart:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[frameStart+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

func appendCommitFrame(buf []byte, seq, ver uint64, ops []Op) []byte {
	start := len(buf)
	buf = beginFrame(buf)
	buf = append(buf, KindCommit)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, ver)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint64(buf, op.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, op.Val)
	}
	return endFrame(buf, start)
}

func appendGrabFrame(buf []byte, seq, firstBlock, blocks uint64, site string) []byte {
	start := len(buf)
	buf = beginFrame(buf)
	buf = append(buf, KindGrab)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, firstBlock)
	buf = binary.LittleEndian.AppendUint64(buf, blocks)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(site)))
	buf = append(buf, site...)
	return endFrame(buf, start)
}

// decodePayload decodes one validated frame payload into rec. ops is a
// reusable scratch slice for commit records.
func decodePayload(payload []byte, ops []Op) (Record, error) {
	var rec Record
	if len(payload) < 9 {
		return rec, fmt.Errorf("wal: frame payload too short (%d bytes)", len(payload))
	}
	rec.Kind = payload[0]
	rec.Seq = binary.LittleEndian.Uint64(payload[1:9])
	body := payload[9:]
	switch rec.Kind {
	case KindCommit:
		if len(body) < 12 {
			return rec, fmt.Errorf("wal: truncated commit record")
		}
		rec.Ver = binary.LittleEndian.Uint64(body[:8])
		n := int(binary.LittleEndian.Uint32(body[8:12]))
		body = body[12:]
		if len(body) != n*16 {
			return rec, fmt.Errorf("wal: commit record claims %d ops, has %d bytes", n, len(body))
		}
		ops = ops[:0]
		for i := 0; i < n; i++ {
			ops = append(ops, Op{
				Addr: binary.LittleEndian.Uint64(body[i*16:]),
				Val:  binary.LittleEndian.Uint64(body[i*16+8:]),
			})
		}
		rec.Ops = ops
	case KindGrab:
		if len(body) < 18 {
			return rec, fmt.Errorf("wal: truncated grab record")
		}
		rec.FirstBlock = binary.LittleEndian.Uint64(body[:8])
		rec.Blocks = binary.LittleEndian.Uint64(body[8:16])
		nl := int(binary.LittleEndian.Uint16(body[16:18]))
		if len(body) != 18+nl {
			return rec, fmt.Errorf("wal: grab record name length mismatch")
		}
		rec.Site = string(body[18 : 18+nl])
	default:
		return rec, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	return rec, nil
}

// segmentInfo is one on-disk segment.
type segmentInfo struct {
	path     string
	startSeq uint64
}

// scanSegments lists dir's segment files ordered by start sequence.
func scanSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: unparsable segment name %q", name)
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), startSeq: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].startSeq < segs[j].startSeq })
	return segs, nil
}

// walkFrames reads a segment's frames from data (everything after the
// header), calling fn per validated frame payload. It returns the number
// of valid payload bytes consumed (for torn-tail truncation) and, when
// the tail failed validation, a description of the tear; err is non-nil
// for I/O-level problems and when the failed tail is provably mid-log
// corruption rather than a tear.
func walkFrames(data []byte, fn func(payload []byte) error) (valid int, torn string, err error) {
	off := 0
	// tornAt classifies the invalid bytes at off. A torn group write
	// leaves only trailing garbage: nothing after a half-written frame
	// can be a completed write. So an invalid frame FOLLOWED by a frame
	// that validates is mid-log corruption (bit rot, external damage) —
	// refuse to repair rather than silently drop committed records. The
	// search is byte-granular: the corrupt frame's own length field may
	// be the damaged bytes, so it cannot be trusted to locate the next
	// frame boundary.
	tornAt := func(reason string) (int, string, error) {
		if scanForValidFrame(data, off+1) {
			return off, "", fmt.Errorf("wal: invalid frame at offset %d (%s) is followed by valid frames — mid-log corruption, not a torn tail", off, reason)
		}
		return off, reason, nil
	}
	for {
		if off == len(data) {
			return off, "", nil
		}
		if len(data)-off < frameHeaderSize {
			return tornAt("short frame header")
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxFramePayload {
			return tornAt(fmt.Sprintf("implausible frame length %d", n))
		}
		if len(data)-off-frameHeaderSize < n {
			return tornAt("short frame payload")
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return tornAt("frame checksum mismatch")
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, "", err
			}
		}
		off += frameHeaderSize + n
	}
}

// scanForValidFrame reports whether data holds a complete frame —
// plausible length, matching CRC32C, decodable payload — starting at any
// byte offset >= from. Length fields are mostly implausible in garbage,
// so the CRC is computed rarely; the full-payload checksum plus a clean
// decode make an accidental match on torn-tail garbage vanishingly
// unlikely, while a real surviving record past a damaged region is
// always found no matter how the damage mangled earlier frame headers.
func scanForValidFrame(data []byte, from int) bool {
	for off := from; off+frameHeaderSize < len(data); off++ {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n == 0 || n > maxFramePayload || len(data)-off-frameHeaderSize < n {
			continue
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			continue
		}
		if _, err := decodePayload(payload, nil); err != nil {
			continue
		}
		return true
	}
	return false
}

// RecoveryInfo summarizes what Open found and repaired.
type RecoveryInfo struct {
	// Segments is the number of valid segment files found.
	Segments int
	// Records is the number of validated records across all segments.
	Records uint64
	// LastSeq is the highest durable sequence number recovered (0 when
	// the log is empty and no checkpoint floor was given).
	LastSeq uint64
	// CheckpointSeq is the checkpoint floor passed to Open (records at or
	// below it are already reflected in the checkpoint image).
	CheckpointSeq uint64
	// TornBytes counts bytes truncated off the final segment's tail; a
	// nonzero value means the process died mid-append and recovery
	// repaired the tear. TornReason describes the failed validation.
	TornBytes  int64
	TornReason string
	// DroppedSegments counts invalid trailing segments removed whole (a
	// crash can die inside the segment header write of a fresh segment).
	DroppedSegments int
}

// recoverSegments validates dir's segments, truncates a torn tail, and
// returns the surviving segments plus the recovery summary. floor is the
// checkpoint's last covered sequence (0 without a checkpoint).
func recoverSegments(dir string, floor uint64) ([]segmentInfo, *RecoveryInfo, error) {
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{CheckpointSeq: floor, LastSeq: floor}
	out := segs[:0]
	var lastRecs uint64 // record count of the newest surviving segment
	for i, seg := range segs {
		last := i == len(segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, nil, err
		}
		start, err := parseSegHeader(data)
		if err != nil || start != seg.startSeq {
			if err == nil {
				err = fmt.Errorf("wal: segment %s header start %d does not match name", seg.path, start)
			}
			if last {
				// A crash inside the header write of a freshly rotated
				// segment: nothing in it can be valid, drop it whole.
				if rmErr := os.Remove(seg.path); rmErr != nil {
					return nil, nil, rmErr
				}
				info.DroppedSegments++
				info.TornReason = err.Error()
				break
			}
			return nil, nil, err
		}
		if len(out) > 0 && start != info.LastSeq+1 {
			return nil, nil, fmt.Errorf("wal: segment %s starts at seq %d, want %d (gap)", seg.path, start, info.LastSeq+1)
		}
		expect := start
		valid, torn, err := walkFrames(data[segHeaderSize:], func(payload []byte) error {
			rec, err := decodePayload(payload, nil)
			if err != nil {
				return err
			}
			if rec.Seq != expect {
				return fmt.Errorf("wal: segment %s carries seq %d, want %d", seg.path, rec.Seq, expect)
			}
			expect++
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if torn != "" {
			if !last {
				return nil, nil, fmt.Errorf("wal: segment %s corrupt mid-log (%s); only the final segment may be torn", seg.path, torn)
			}
			tornBytes := int64(len(data)) - int64(segHeaderSize+valid)
			if err := os.Truncate(seg.path, int64(segHeaderSize+valid)); err != nil {
				return nil, nil, err
			}
			info.TornBytes = tornBytes
			info.TornReason = torn
		}
		info.Records += expect - start
		if expect > start {
			info.LastSeq = expect - 1
		}
		lastRecs = expect - start
		out = append(out, seg)
	}
	// A valid but zero-record tail segment (graceful close with no
	// traffic, or a crash right after rotation) is deleted rather than
	// kept: Open recreates the active segment at LastSeq+1 — this
	// segment's own name — and keeping the recovered entry too would put
	// two entries for one path in the segment list, letting a later
	// checkpoint's TruncateBefore count the duplicate as fully covered
	// and unlink the file the flusher is actively writing. Only the tail
	// can be empty: the start-sequence gap check above makes any two
	// consecutive empty segments collide on the same name.
	if n := len(out); n > 0 && lastRecs == 0 {
		if err := os.Remove(out[n-1].path); err != nil {
			return nil, nil, err
		}
		out = out[:n-1]
	}
	info.Segments = len(out)
	if info.LastSeq < floor {
		info.LastSeq = floor
	}
	return out, info, nil
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Records uint64
	Commits uint64
	Grabs   uint64
	Ops     uint64
	// MaxVer is the highest commit version replayed; the recovering
	// engine advances its clock at least this far so post-restart commits
	// version strictly after every recovered one.
	MaxVer uint64
}

// replaySegments re-reads the given (already validated) segments in
// order, invoking fn for every record with Seq > fromSeq.
func replaySegments(segs []segmentInfo, fromSeq uint64, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	var ops []Op
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return st, err
		}
		if len(data) < segHeaderSize {
			return st, fmt.Errorf("wal: segment %s shrank below its header", seg.path)
		}
		_, torn, err := walkFrames(data[segHeaderSize:], func(payload []byte) error {
			rec, err := decodePayload(payload, ops[:0])
			if err != nil {
				return err
			}
			if cap(rec.Ops) > cap(ops) {
				ops = rec.Ops
			}
			if rec.Seq <= fromSeq {
				return nil
			}
			st.Records++
			switch rec.Kind {
			case KindCommit:
				st.Commits++
				st.Ops += uint64(len(rec.Ops))
				if rec.Ver > st.MaxVer {
					st.MaxVer = rec.Ver
				}
			case KindGrab:
				st.Grabs++
			}
			return fn(rec)
		})
		if err != nil {
			return st, err
		}
		if torn != "" {
			return st, fmt.Errorf("wal: segment %s torn during replay (%s)", seg.path, torn)
		}
	}
	return st, nil
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
