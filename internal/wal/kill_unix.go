//go:build unix

package wal

import "syscall"

// kill terminates the process with SIGKILL: uncatchable, no deferred
// functions, no buffered writes — the in-process stand-in for pulling the
// plug. Used only by armed crash points (see Crashpoint).
func kill() {
	_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery can lag the syscall return on a loaded scheduler;
	// never fall through into the post-crash-point code.
	select {}
}
