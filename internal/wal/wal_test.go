package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) (*Log, *RecoveryInfo) {
	t.Helper()
	l, info, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, info
}

func publishN(t *testing.T, l *Log, from, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		seq := l.PublishCommit(from+i, []Op{{Addr: from + i, Val: (from + i) * 10}})
		if seq != from+i {
			t.Fatalf("PublishCommit returned seq %d, want %d", seq, from+i)
		}
	}
}

func collect(t *testing.T, dir string, fromSeq uint64) []Record {
	t.Helper()
	l, _ := openTest(t, dir, Options{StartSeq: fromSeq})
	defer l.Abandon()
	var recs []Record
	_, err := l.Replay(fromSeq, func(r Record) error {
		r.Ops = append([]Op(nil), r.Ops...)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info := openTest(t, dir, Options{})
	if info.Records != 0 || info.LastSeq != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	publishN(t, l, 1, 100)
	if seq := l.PublishGrab(3, 2, "app.site"); seq != 101 {
		t.Fatalf("PublishGrab seq = %d, want 101", seq)
	}
	if !l.WaitDurable(101) {
		t.Fatal("WaitDurable(101) = false")
	}
	if d := l.DurableSeq(); d < 101 {
		t.Fatalf("DurableSeq = %d after WaitDurable(101)", d)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs := collect(t, dir, 0)
	if len(recs) != 101 {
		t.Fatalf("recovered %d records, want 101", len(recs))
	}
	for i, r := range recs[:100] {
		want := uint64(i + 1)
		if r.Seq != want || r.Kind != KindCommit || r.Ver != want ||
			len(r.Ops) != 1 || r.Ops[0].Addr != want || r.Ops[0].Val != want*10 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	g := recs[100]
	if g.Kind != KindGrab || g.FirstBlock != 3 || g.Blocks != 2 || g.Site != "app.site" {
		t.Fatalf("grab record = %+v", g)
	}
}

func TestAbandonLosesNothingAcked(t *testing.T) {
	// Abandon simulates a crash: whatever WaitDurable acknowledged must
	// still recover; unacked tail records may or may not survive.
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{GroupCommitInterval: time.Millisecond})
	publishN(t, l, 1, 50)
	if !l.WaitDurable(50) {
		t.Fatal("WaitDurable(50) = false")
	}
	publishN(t, l, 51, 10) // unacked; no flush guaranteed
	l.Abandon()
	recs := collect(t, dir, 0)
	if len(recs) < 50 {
		t.Fatalf("recovered %d records, acked 50", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: recovery must be a gap-free prefix", i, r.Seq)
		}
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; publish in acked batches so each
	// flush group lands (and rotates) separately.
	l, _ := openTest(t, dir, Options{SegmentBytes: 256})
	for batch := uint64(0); batch < 20; batch++ {
		publishN(t, l, batch*10+1, 10)
		if !l.WaitDurable(batch*10 + 10) {
			t.Fatalf("WaitDurable(batch %d) = false", batch)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("no rotations with 256-byte segments: %+v", st)
	}
	segsBefore, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segsBefore) < 4 {
		t.Fatalf("got %d segments (%v), want several", len(segsBefore), err)
	}
	if err := l.TruncateBefore(100); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncation kept %d of %d segments", len(segsAfter), len(segsBefore))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Everything past the truncation floor must still replay contiguously.
	recs := collect(t, dir, 100)
	if len(recs) != 100 {
		t.Fatalf("recovered %d records past seq 100, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(101+i) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, 101+i)
		}
	}
}

func TestRecoveryResumesPublishing(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, info := openTest(t, dir, Options{})
	if info.LastSeq != 10 {
		t.Fatalf("recovered LastSeq = %d, want 10", info.LastSeq)
	}
	if seq := l2.PublishCommit(11, []Op{{Addr: 1, Val: 1}}); seq != 11 {
		t.Fatalf("post-recovery publish got seq %d, want 11", seq)
	}
	if !l2.WaitDurable(11) {
		t.Fatal("WaitDurable after recovery failed")
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, dir, 0); len(recs) != 11 {
		t.Fatalf("recovered %d records, want 11", len(recs))
	}
}

// TestTornTailEveryOffset is the satellite-3 table test: truncate the
// final segment at EVERY byte offset inside the last record and verify
// recovery repairs the tear to exactly the preceding records — never an
// error, never a phantom record.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 3)
	if !l.WaitDurable(3) {
		t.Fatal("WaitDurable(3) = false")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Find where record 3 starts: walk the two leading frames.
	off := segHeaderSize
	for i := 0; i < 2; i++ {
		n := int(binary.LittleEndian.Uint32(full[off:]))
		off += frameHeaderSize + n
	}
	if off >= len(full) {
		t.Fatalf("frame walk overran: off %d of %d", off, len(full))
	}

	for cut := off; cut < len(full); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			sub := t.TempDir()
			path := filepath.Join(sub, filepath.Base(segs[0]))
			if err := os.WriteFile(path, full[:cut], 0o666); err != nil {
				t.Fatal(err)
			}
			l2, info, err := Open(sub, Options{})
			if err != nil {
				t.Fatalf("Open on torn tail: %v", err)
			}
			defer l2.Abandon()
			if info.LastSeq != 2 {
				t.Fatalf("LastSeq = %d, want 2 (record 3 torn)", info.LastSeq)
			}
			// cut == off is a clean end exactly at the record boundary —
			// nothing to repair; every cut inside the record is a tear.
			if cut > off && info.TornBytes == 0 {
				t.Fatal("TornBytes = 0, tear not reported")
			}
			var seqs []uint64
			if _, err := l2.Replay(0, func(r Record) error {
				seqs = append(seqs, r.Seq)
				return nil
			}); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
				t.Fatalf("replayed seqs %v, want [1 2]", seqs)
			}
			// The repaired log must accept new records at seq 3.
			if seq := l2.PublishCommit(9, []Op{{Addr: 9, Val: 9}}); seq != 3 {
				t.Fatalf("post-repair publish seq = %d, want 3", seq)
			}
			if !l2.WaitDurable(3) {
				t.Fatal("post-repair WaitDurable failed")
			}
		})
	}
}

// TestReopenEmptyLogThenTruncate is the duplicate-active-segment
// regression: reopening a log whose newest segment holds zero records
// (graceful close with no traffic) must not leave two segment-list
// entries for one path — otherwise the first checkpoint's TruncateBefore
// counts the duplicate as fully covered, unlinks the file the flusher is
// actively writing, and every later record (Sync-acked included) dies
// with it on the next restart.
func TestReopenEmptyLogThenTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := openTest(t, dir, Options{})
	publishN(t, l2, 1, 3)
	if !l2.WaitDurable(3) {
		t.Fatal("WaitDurable(3) = false")
	}
	if err := l2.TruncateBefore(0); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(segs) != 1 {
		t.Fatalf("got %d segment files after TruncateBefore, want 1 (active segment removed?)", len(segs))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
}

// TestReopenReusesEmptyTailSegment: repeated crash/reopen cycles with no
// traffic in between must not accumulate (or duplicate) empty tail
// segments — each reopen drops the previous empty active segment and
// recreates it under the same name.
func TestReopenReusesEmptyTailSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 5)
	if !l.WaitDurable(5) {
		t.Fatal("WaitDurable(5) = false")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l2, info := openTest(t, dir, Options{})
		if info.LastSeq != 5 {
			t.Fatalf("reopen %d: LastSeq = %d, want 5", i, info.LastSeq)
		}
		l2.Abandon()
	}
	// wal-…1.seg with the five records plus one fresh active segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 2 {
		t.Fatalf("got %d segment files after repeated reopens, want 2: %v", len(segs), segs)
	}
	if recs := collect(t, dir, 0); len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
}

// TestCorruptLengthMidLogFails: corrupting a frame's LENGTH field (not
// its payload) in the middle of the log must still be detected as
// mid-log corruption — the search for surviving later frames cannot
// trust the corrupt length to find the next frame boundary.
func TestCorruptLengthMidLogFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 5)
	if !l.WaitDurable(5) {
		t.Fatal("WaitDurable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	// Bump record 1's length: the claimed payload end no longer lands on
	// the next frame boundary, so only a byte-granular scan can see that
	// records 2..5 are intact.
	n := binary.LittleEndian.Uint32(data[segHeaderSize:])
	binary.LittleEndian.PutUint32(data[segHeaderSize:], n+1)
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open silently truncated a log whose mid-stream length field was corrupted")
	}
}

// TestCorruptLengthLastFrameIsTorn: the same length corruption on the
// FINAL frame has no valid frames after it — indistinguishable from a
// torn tail, so recovery must repair it, not fail.
func TestCorruptLengthLastFrameIsTorn(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 3)
	if !l.WaitDurable(3) {
		t.Fatal("WaitDurable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	off := segHeaderSize
	for i := 0; i < 2; i++ { // walk to record 3's frame
		off += frameHeaderSize + int(binary.LittleEndian.Uint32(data[off:]))
	}
	n := binary.LittleEndian.Uint32(data[off:])
	binary.LittleEndian.PutUint32(data[off:], n+1)
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open refused a torn final frame: %v", err)
	}
	defer l2.Abandon()
	if info.LastSeq != 2 || info.TornBytes == 0 {
		t.Fatalf("recovery = %+v, want LastSeq 2 with a reported tear", info)
	}
}

// TestCorruptMidLogFails: a checksum flip in the MIDDLE of the log (with
// valid records after it) is real corruption, not a torn tail — recovery
// must refuse rather than silently drop committed records.
func TestCorruptMidLogFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	publishN(t, l, 1, 5)
	if !l.WaitDurable(5) {
		t.Fatal("WaitDurable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	// Flip one payload byte of the FIRST record (past its frame header).
	data[segHeaderSize+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a log with mid-stream corruption")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := &Checkpoint{
		LastSeq:    42,
		Clock:      99,
		BlockShift: 4,
		NextBlock:  3,
		Sites:      []string{"default", "app.a", "app.b"},
		BlockSite:  []uint32{0, 1, 2},
		Words:      make([]uint64, 3<<4),
	}
	for i := range cp.Words {
		cp.Words[i] = uint64(i) * 7
	}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.LastSeq != cp.LastSeq || got.Clock != cp.Clock || got.BlockShift != cp.BlockShift ||
		got.NextBlock != cp.NextBlock {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Sites) != 3 || got.Sites[1] != "app.a" {
		t.Fatalf("sites = %v", got.Sites)
	}
	for i := range cp.Words {
		if got.Words[i] != cp.Words[i] {
			t.Fatalf("word %d = %d, want %d", i, got.Words[i], cp.Words[i])
		}
	}
	// Overwrite with a newer image: the old one must be fully replaced.
	cp2 := *cp
	cp2.LastSeq = 50
	if err := WriteCheckpoint(dir, &cp2); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadCheckpoint(dir)
	if err != nil || got2.LastSeq != 50 {
		t.Fatalf("after overwrite: %+v, %v", got2, err)
	}
}

func TestCheckpointMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if cp, err := ReadCheckpoint(dir); cp != nil || err != nil {
		t.Fatalf("empty dir: cp=%v err=%v", cp, err)
	}
	// A leftover temp file (crash mid-checkpoint) is ignored and removed.
	tmp := filepath.Join(dir, ckptTmpName)
	if err := os.WriteFile(tmp, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if cp, err := ReadCheckpoint(dir); cp != nil || err != nil {
		t.Fatalf("with tmp leftover: cp=%v err=%v", cp, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp checkpoint not cleaned up")
	}
	// A corrupted CHECKPOINT proper is a hard error.
	cp := &Checkpoint{BlockShift: 4, NextBlock: 1, Sites: []string{"default"},
		BlockSite: []uint32{0}, Words: make([]uint64, 1<<4)}
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptName)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("ReadCheckpoint accepted a corrupt image")
	}
}

// TestReplayTwiceIdentical is satellite 3's idempotency half at the log
// layer: applying the same records twice must yield the same state as
// once (absolute post-images).
func TestReplayTwiceIdentical(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := uint64(1); i <= 20; i++ {
		// Overlapping addresses so replay order matters.
		l.PublishCommit(i, []Op{{Addr: i % 5, Val: i}, {Addr: 5 + i%3, Val: i * i}})
	}
	if !l.WaitDurable(20) {
		t.Fatal("WaitDurable")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	apply := func(heap []uint64, times int) {
		l2, _ := openTest(t, dir, Options{})
		defer l2.Abandon()
		for n := 0; n < times; n++ {
			if _, err := l2.Replay(0, func(r Record) error {
				for _, op := range r.Ops {
					heap[op.Addr] = op.Val
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	once, twice := make([]uint64, 10), make([]uint64, 10)
	apply(once, 1)
	apply(twice, 2)
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("heap[%d]: once %d, twice %d", i, once[i], twice[i])
		}
	}
}

func TestParseCrashpoint(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Crashpoint
		ok   bool
	}{
		{"", CrashNone, true},
		{"none", CrashNone, true},
		{"mid-append", CrashMidAppend, true},
		{"pre-fsync", CrashPreFsync, true},
		{"post-fsync-pre-ack", CrashPostFsyncPreAck, true},
		{"mid-checkpoint", CrashMidCheckpoint, true},
		{"mid-truncate", CrashMidTruncate, true},
		{"bogus", CrashNone, false},
	} {
		got, err := ParseCrashpoint(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCrashpoint(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, p := range []Crashpoint{CrashMidAppend, CrashPreFsync, CrashPostFsyncPreAck, CrashMidCheckpoint, CrashMidTruncate} {
		rt, err := ParseCrashpoint(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v: got %v, %v", p, rt, err)
		}
	}
}

func TestFrameEncodingRejectsOversize(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 64)
	buf := appendCommitFrame(nil, 1, 1, []Op{{Addr: 1, Val: 2}})
	if len(buf) <= frameHeaderSize {
		t.Fatal("empty frame")
	}
	// Corrupt the declared length beyond the cap: walkFrames must stop.
	oversize := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(oversize, uint32(maxFramePayload+1))
	valid, torn, err := walkFrames(append(oversize, payload...), func([]byte) error { return nil })
	if err != nil {
		t.Fatalf("walkFrames: %v", err)
	}
	if valid != 0 || torn == "" {
		t.Fatalf("oversize frame: valid=%d torn=%q, want rejection as tear", valid, torn)
	}
}
