// Crash-torture harness for the durable redo log: the parent test forks
// this test binary as a child workload process, SIGKILLs it at a random
// moment (or lets an injected wal.Crashpoint kill it at a chosen point in
// the append/fsync/checkpoint/truncate protocol), then recovers the heap
// from the surviving directory and checks the two durability invariants:
//
//  1. conservation — transfers move value between accounts, so the sum
//     of all balances recovered after ANY crash equals the initial total;
//  2. no acked loss — every commit a DurabilitySync Run acknowledged
//     (recorded by the child in an O_APPEND ack file only AFTER Run
//     returned) is present in the recovered heap.
//
// The round count is WAL_TORTURE_ROUNDS (default 10, -short 4); CI runs a
// longer sweep. Every round reuses one directory, so recovery is also
// exercised against logs that have survived many previous crashes,
// checkpoints and truncations.
package wal_test

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/stm"
)

const (
	tortureAccounts = 32
	tortureWorkers  = 4
	tortureBalance  = 1000
	tortureSite     = "torture.cells"
)

func tortureRuntime(t *testing.T, dir string) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{
		HeapWords:  1 << 16,
		BlockShift: 8,
		WAL: &stm.WALConfig{
			Dir:                 dir,
			Durability:          stm.DurabilitySync,
			GroupCommitInterval: 100 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatalf("New over %s: %v", dir, err)
	}
	return rt
}

// tortureMeta round-trips the heap layout through a file so the child and
// later rounds never assume address determinism.
func writeTortureMeta(dir string, base stm.Addr) error {
	return os.WriteFile(filepath.Join(dir, "meta"),
		[]byte(fmt.Sprintf("%d %d %d\n", base, tortureAccounts, tortureWorkers)), 0o666)
}

func readTortureMeta(dir string) (base stm.Addr, err error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta"))
	if err != nil {
		return 0, err
	}
	var n, w int
	var b uint64
	if _, err := fmt.Sscanf(string(data), "%d %d %d", &b, &n, &w); err != nil {
		return 0, err
	}
	if n != tortureAccounts || w != tortureWorkers {
		return 0, fmt.Errorf("meta mismatch: %d/%d accounts, %d/%d workers", n, tortureAccounts, w, tortureWorkers)
	}
	return stm.Addr(b), nil
}

func TestWALTorture(t *testing.T) {
	if os.Getenv("WAL_TORTURE_CHILD") != "" {
		t.Skip("parent test skipped inside torture child")
	}
	rounds := 10
	if v := os.Getenv("WAL_TORTURE_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("WAL_TORTURE_ROUNDS=%q: %v", v, err)
		}
		rounds = n
	} else if testing.Short() {
		rounds = 4
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))

	// Round 0 setup: one durable runtime seeds the accounts (first
	// tortureAccounts cells) and the per-worker ack counters (next
	// tortureWorkers cells), then closes gracefully.
	rt := tortureRuntime(t, dir)
	var base stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		base = tx.Alloc(rt.RegisterSite(tortureSite), tortureAccounts+tortureWorkers)
		for i := 0; i < tortureAccounts; i++ {
			tx.Store(base+stm.Addr(i), tortureBalance)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeTortureMeta(dir, base); err != nil {
		t.Fatal(err)
	}
	const total = tortureAccounts * tortureBalance

	// Crash-point schedule: plain SIGKILL rounds interleaved with every
	// injected protocol point.
	crashpoints := []string{
		"", "mid-append", "", "pre-fsync", "post-fsync-pre-ack",
		"", "mid-checkpoint", "mid-truncate",
	}
	ackPath := filepath.Join(dir, "ack")

	for round := 0; round < rounds; round++ {
		os.Remove(ackPath)
		cp := crashpoints[round%len(crashpoints)]

		cmd := exec.Command(os.Args[0], "-test.run", "^TestWALTortureChild$", "-test.timeout", "60s")
		cmd.Env = append(os.Environ(),
			"WAL_TORTURE_CHILD=1",
			"WAL_TORTURE_DIR="+dir,
		)
		if cp != "" {
			cmd.Env = append(cmd.Env,
				"WAL_CRASHPOINT="+cp,
				fmt.Sprintf("WAL_CRASHPOINT_SKIP=%d", rng.Intn(20)),
			)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: starting child: %v", round, err)
		}
		// Let the workload run, then SIGKILL. Crash-point rounds usually
		// die on their own first; the timer is the backstop when the
		// armed point is never reached.
		wait := time.Duration(5+rng.Intn(55)) * time.Millisecond
		if cp != "" {
			wait = 2 * time.Second
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(wait):
			cmd.Process.Kill()
			<-done
		}

		// Recover and check the invariants.
		maxAck := readAcks(t, ackPath)
		rt2 := tortureRuntime(t, dir)
		b2, err := readTortureMeta(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := rt2.Run(func(tx *stm.Tx) error {
			var sum uint64
			for i := 0; i < tortureAccounts; i++ {
				sum += tx.Load(b2 + stm.Addr(i))
			}
			if sum != total {
				t.Errorf("round %d (%s): recovered sum %d, want %d — conservation violated", round, cpName(cp), sum, total)
			}
			for w := 0; w < tortureWorkers; w++ {
				got := tx.Load(b2 + stm.Addr(tortureAccounts+w))
				if got < maxAck[w] {
					t.Errorf("round %d (%s): worker %d counter %d < acked %d — Sync-acked commit lost",
						round, cpName(cp), w, got, maxAck[w])
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d: verify: %v", round, err)
		}
		// Keep the directory evolving: occasional checkpoints bound the
		// log, and post-recovery commits prove the log accepts traffic.
		if round%3 == 1 {
			if _, err := rt2.Checkpoint(); err != nil {
				t.Errorf("round %d: checkpoint: %v", round, err)
			}
		}
		if err := rt2.Run(func(tx *stm.Tx) error {
			i, j := stm.Addr(round%tortureAccounts), stm.Addr((round+9)%tortureAccounts)
			tx.Store(b2+i, tx.Load(b2+i)-3)
			tx.Store(b2+j, tx.Load(b2+j)+3)
			return nil
		}); err != nil {
			t.Fatalf("round %d: post-recovery commit: %v", round, err)
		}
		if err := rt2.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

func cpName(cp string) string {
	if cp == "" {
		return "sigkill"
	}
	return cp
}

func readAcks(t *testing.T, path string) [tortureWorkers]uint64 {
	t.Helper()
	var max [tortureWorkers]uint64
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return max // child died before any ack; nothing to hold it to
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue // torn final line from the kill
		}
		var w int
		var n uint64
		if _, err := fmt.Sscanf(line, "%d %d", &w, &n); err != nil {
			continue // torn final line
		}
		if w >= 0 && w < tortureWorkers && n > max[w] {
			max[w] = n
		}
	}
	return max
}

// TestWALTortureChild is the forked workload process: transfer traffic
// from several workers under DurabilitySync, acking each commit to the
// ack file only after Run returns. It never exits on its own within the
// parent's kill window; crash points injected via WAL_CRASHPOINT die
// inside the wal package.
func TestWALTortureChild(t *testing.T) {
	dir := os.Getenv("WAL_TORTURE_DIR")
	if os.Getenv("WAL_TORTURE_CHILD") == "" || dir == "" {
		t.Skip("torture child runs only under TestWALTorture")
	}
	base, err := readTortureMeta(dir)
	if err != nil {
		t.Fatalf("meta: %v", err)
	}
	rt := tortureRuntime(t, dir)
	ack, err := os.OpenFile(filepath.Join(dir, "ack"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < tortureWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)*7919 + int64(os.Getpid())))
			for n := uint64(1); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := stm.Addr(r.Intn(tortureAccounts))
				j := stm.Addr(r.Intn(tortureAccounts))
				amt := uint64(r.Intn(50))
				if err := rt.Run(func(tx *stm.Tx) error {
					tx.Store(base+i, tx.Load(base+i)-amt)
					tx.Store(base+j, tx.Load(base+j)+amt)
					tx.Store(base+stm.Addr(tortureAccounts+w), n)
					return nil
				}); err != nil {
					return
				}
				// Only now is the commit acked as durable: a single
				// O_APPEND write keeps concurrent workers' lines whole.
				fmt.Fprintf(ack, "%d %d\n", w, n)
			}
		}(w)
	}
	// Checkpoint pressure so mid-checkpoint/mid-truncate points can fire
	// and so recovery sees every directory shape.
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				rt.Checkpoint()
			}
		}
	}()

	// Watchdog: the parent kills this process long before 10s; exiting
	// cleanly is also a legal outcome for the invariants.
	time.Sleep(10 * time.Second)
	close(stop)
	wg.Wait()
}
