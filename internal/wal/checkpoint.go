package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint is a snapshot-consistent image of the transactional heap:
// everything recovery needs to rebuild the arena without replaying the
// whole log. Records with Seq <= LastSeq are fully reflected in Words
// (the checkpointing engine proves this by sampling the log's publish
// watermark BEFORE pinning the snapshot the image is taken at); recovery
// replays only the tail beyond it. Replaying records already in the image
// is harmless — commit records carry absolute values.
type Checkpoint struct {
	// LastSeq is the highest log sequence number the image covers.
	LastSeq uint64
	// Clock is the commit time-base ceiling at the snapshot; recovery
	// re-seeds the clock at least this far.
	Clock uint64
	// BlockShift is the arena's block geometry; a restart must be
	// configured compatibly, so it is validated on restore.
	BlockShift uint32
	// NextBlock is the arena's next-unassigned-block cursor.
	NextBlock uint64
	// Sites lists allocation-site names in SiteID order; restoring
	// re-registers them in the same order so the ids embedded in
	// BlockSite stay valid across the restart.
	Sites []string
	// BlockSite maps block -> owning SiteID for blocks [0, NextBlock).
	BlockSite []uint32
	// Words is the heap image for addresses [0, NextBlock<<BlockShift).
	Words []uint64
}

const (
	ckptMagic   = "WALCKPT1"
	ckptName    = "CHECKPOINT"
	ckptTmpName = "CHECKPOINT.tmp"
)

type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	buf [8]byte
}

func (c *crcWriter) u16(v uint16) error {
	binary.LittleEndian.PutUint16(c.buf[:2], v)
	return c.write(c.buf[:2])
}

func (c *crcWriter) u32(v uint32) error {
	binary.LittleEndian.PutUint32(c.buf[:4], v)
	return c.write(c.buf[:4])
}

func (c *crcWriter) u64(v uint64) error {
	binary.LittleEndian.PutUint64(c.buf[:8], v)
	return c.write(c.buf[:8])
}

func (c *crcWriter) write(p []byte) error {
	c.crc.Write(p) // hash.Hash never errors
	_, err := c.w.Write(p)
	return err
}

// WriteCheckpoint atomically replaces dir's checkpoint with cp: write to
// a temp file, fsync, rename over CHECKPOINT, fsync the directory. A
// crash at any point leaves either the old checkpoint or the new one,
// never a torn mix — the mid-checkpoint crash point dies with only the
// temp file written, which recovery ignores.
func WriteCheckpoint(dir string, cp *Checkpoint) error {
	if uint64(len(cp.BlockSite)) != cp.NextBlock {
		return fmt.Errorf("wal: checkpoint block table has %d entries for %d blocks", len(cp.BlockSite), cp.NextBlock)
	}
	if uint64(len(cp.Words)) != cp.NextBlock<<cp.BlockShift {
		return fmt.Errorf("wal: checkpoint image has %d words for %d blocks of 2^%d", len(cp.Words), cp.NextBlock, cp.BlockShift)
	}
	tmp := filepath.Join(dir, ckptTmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := &crcWriter{w: bufio.NewWriterSize(f, 1<<16), crc: crc32.New(castagnoli)}
	err = func() error {
		if _, err := w.w.WriteString(ckptMagic); err != nil {
			return err
		}
		if err := w.u64(cp.LastSeq); err != nil {
			return err
		}
		if err := w.u64(cp.Clock); err != nil {
			return err
		}
		if err := w.u32(cp.BlockShift); err != nil {
			return err
		}
		if err := w.u64(cp.NextBlock); err != nil {
			return err
		}
		if err := w.u32(uint32(len(cp.Sites))); err != nil {
			return err
		}
		for _, name := range cp.Sites {
			if err := w.u16(uint16(len(name))); err != nil {
				return err
			}
			if err := w.write([]byte(name)); err != nil {
				return err
			}
		}
		for _, sid := range cp.BlockSite {
			if err := w.u32(sid); err != nil {
				return err
			}
		}
		for i, word := range cp.Words {
			if i == len(cp.Words)/2 {
				// Half the image on disk, rename still pending: the
				// canonical torn-checkpoint state.
				if hit(CrashMidCheckpoint) {
					w.w.Flush()
					kill()
				}
			}
			if err := w.u64(word); err != nil {
				return err
			}
		}
		// Trailing CRC32C over everything after the magic; not fed back
		// into the hash.
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], w.crc.Sum32())
		if _, err := w.w.Write(tail[:]); err != nil {
			return err
		}
		if err := w.w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadCheckpoint loads dir's checkpoint, or returns (nil, nil) when none
// exists. A leftover temp file from a crash mid-checkpoint is removed. A
// CHECKPOINT that fails validation is an error: the atomic write protocol
// never produces one, so it signals real corruption.
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	os.Remove(filepath.Join(dir, ckptTmpName)) // crash leftover, never valid
	data, err := os.ReadFile(filepath.Join(dir, ckptName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: checkpoint magic missing")
	}
	body := data[len(ckptMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	r := ckptReader{data: body}
	cp := &Checkpoint{}
	cp.LastSeq = r.u64()
	cp.Clock = r.u64()
	cp.BlockShift = r.u32()
	cp.NextBlock = r.u64()
	nSites := int(r.u32())
	if r.err == nil && nSites > len(body) { // implausible, pre-allocation guard
		return nil, fmt.Errorf("wal: checkpoint claims %d sites", nSites)
	}
	for i := 0; i < nSites && r.err == nil; i++ {
		cp.Sites = append(cp.Sites, r.str())
	}
	if r.err == nil {
		cp.BlockSite = make([]uint32, cp.NextBlock)
		for i := range cp.BlockSite {
			cp.BlockSite[i] = r.u32()
		}
		cp.Words = make([]uint64, cp.NextBlock<<cp.BlockShift)
		for i := range cp.Words {
			cp.Words[i] = r.u64()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("wal: checkpoint decode: %w", r.err)
	}
	if len(r.data) != r.off {
		return nil, fmt.Errorf("wal: checkpoint has %d trailing bytes", len(r.data)-r.off)
	}
	return cp, nil
}

type ckptReader struct {
	data []byte
	off  int
	err  error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *ckptReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *ckptReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *ckptReader) str() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}
