// Package wal is the engine's durable redo log: an asynchronous,
// group-committed write-ahead log plus checkpointing and recovery.
//
// Committing transactions tee their write set — absolute post-images,
// the same per-commit batches the multi-version store buckets — into a
// bounded lock-free publish ring while still holding every write lock,
// which makes the assigned log sequence order identical to commit order
// per address. A single flusher goroutine drains the ring in sequence
// order, encodes the batch into length-prefixed CRC32C-checksummed
// frames, appends them to the active segment file, and fsyncs once per
// group — one fsync amortized over every commit that landed in the
// window. Durability is a knob:
//
//   - Off:   the log is not attached at all; zero cost on the commit path.
//   - Async: commits publish and return; a crash may lose the last
//     unflushed window, never more (prefix durability: what survives is
//     a causally consistent prefix of the commit order).
//   - Sync:  a committing transaction additionally parks until the
//     flusher's durable watermark passes its sequence (WaitDurable, a
//     spin → yield → park escalation mirroring the engine's wait
//     discipline). An acked Sync commit survives any crash; a commit the
//     log cannot make durable (WaitDurable returning false) is reported
//     to the caller by the engine (core.ErrNotDurable), never acked.
//
// Recovery (Open) validates every segment frame, truncates a torn tail
// (the signature of dying mid-append), and replays the redo records past
// the newest checkpoint onto the restored heap image — idempotently,
// since records carry absolute values in commit order. Crash-point fault
// injection (Crashpoint) turns every window of the protocol into a
// testable SIGKILL site.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Durability selects how hard commits lean on the log.
type Durability int

const (
	// Off disables the log entirely.
	Off Durability = iota
	// Async publishes commit records without waiting for them to reach
	// disk.
	Async
	// Sync parks every committing transaction until its record is
	// fsynced.
	Sync
)

// String names the durability mode.
func (d Durability) String() string {
	switch d {
	case Off:
		return "off"
	case Async:
		return "async"
	case Sync:
		return "sync"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// Options configure Open.
type Options struct {
	// GroupCommitInterval is the flusher's coalescing window: commits
	// published within one interval share a single write+fsync. Default
	// 200µs.
	GroupCommitInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 64 MiB.
	SegmentBytes int64
	// RingSize is the publish ring's capacity in records (rounded up to a
	// power of two; default 8192). Publishers that outrun the flusher by
	// a full ring spin until it catches up (Stats.PublishStalls).
	RingSize int
	// StartSeq is the checkpoint's last covered sequence number: the
	// floor recovery resumes from when the segments hold nothing newer.
	StartSeq uint64
}

func (o Options) withDefaults() Options {
	if o.GroupCommitInterval <= 0 {
		o.GroupCommitInterval = 200 * time.Microsecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.RingSize <= 0 {
		o.RingSize = 8192
	}
	n := 1
	for n < o.RingSize {
		n <<= 1
	}
	o.RingSize = n
	return o
}

// Stats is a momentary reading of the log's counters.
type Stats struct {
	// Appends counts records published; AppendedBytes the encoded bytes
	// written to segment files.
	Appends       uint64
	AppendedBytes uint64
	// Fsyncs counts segment fsyncs; GroupCommits counts flush cycles that
	// wrote at least one record and GroupedRecords the records they
	// carried, so GroupedRecords/GroupCommits is the mean group size —
	// the amortization the group-commit interval buys.
	Fsyncs         uint64
	GroupCommits   uint64
	GroupedRecords uint64
	// PublishStalls counts publisher spins against a full ring
	// (backpressure: the flusher is behind).
	PublishStalls uint64
	// SyncWaits counts WaitDurable calls that had to wait; SyncParks the
	// ones that escalated into a condition-variable park.
	SyncWaits uint64
	SyncParks uint64
	// Rotations counts segment rotations, Checkpoints completed
	// checkpoints, TruncatedSegments segments retired by checkpoints.
	Rotations         uint64
	Checkpoints       uint64
	TruncatedSegments uint64
	// Seq is the last published sequence number and DurableSeq the last
	// fsynced one; their gap is the window a crash would lose under
	// Async.
	Seq        uint64
	DurableSeq uint64
}

type ringEntry struct {
	kind       uint8
	ver        uint64
	ops        *[]Op // pooled box; flusher returns it after encoding
	firstBlock uint64
	blocks     uint64
	site       string
	// ready is the publication flag: the publisher fills the entry and
	// stores 1; the flusher consumes in sequence order, stores 0, then
	// advances the tail.
	ready atomic.Uint32
}

// Log is an open write-ahead log. Publish methods are safe for
// concurrent use; Close/Abandon must be called after publishers stop.
type Log struct {
	dir  string
	opts Options
	mask uint64
	ring []ringEntry

	// head is the last assigned sequence number, tail the last consumed
	// by the flusher, durable the last fsynced.
	head    atomic.Uint64
	tail    atomic.Uint64
	durable atomic.Uint64

	// dead marks an abandoned log (simulated crash): publishes become
	// no-ops and WaitDurable returns false instead of parking forever.
	dead   atomic.Bool
	closed atomic.Bool

	wake     chan struct{}
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu   sync.Mutex
	cond *sync.Cond

	opPool sync.Pool

	// segMu guards the segment list, shared between the flusher
	// (rotation) and checkpoint truncation.
	segMu    sync.Mutex
	segments []segmentInfo

	// recovered are the pre-existing segments Replay reads; the active
	// segment created by Open holds only post-recovery records.
	recovered []segmentInfo

	// Flusher-owned state.
	f        *os.File
	segStart uint64
	segSize  int64
	enc      []byte
	closeErr error

	stAppends, stBytes, stFsyncs          atomic.Uint64
	stGroups, stGrouped, stStalls         atomic.Uint64
	stSyncWaits, stSyncParks              atomic.Uint64
	stRotations, stCkpts, stTruncatedSegs atomic.Uint64
}

// Open recovers the log in dir (creating it if needed) and starts the
// flusher. The returned RecoveryInfo describes what was found and
// repaired; use Replay to apply the surviving records before publishing
// new ones.
func Open(dir string, opts Options) (*Log, *RecoveryInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, err
	}
	segs, info, err := recoverSegments(dir, opts.StartSeq)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		mask:      uint64(opts.RingSize - 1),
		ring:      make([]ringEntry, opts.RingSize),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		segments:  segs,
		recovered: append([]segmentInfo(nil), segs...),
	}
	l.cond = sync.NewCond(&l.mu)
	l.opPool.New = func() any { s := make([]Op, 0, 64); return &s }
	l.head.Store(info.LastSeq)
	l.tail.Store(info.LastSeq)
	l.durable.Store(info.LastSeq)
	if err := l.openSegment(info.LastSeq + 1); err != nil {
		return nil, nil, err
	}
	go l.flusher()
	return l, info, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// SeqHorizon returns the last assigned sequence number: every record at
// or below it has been published (its commit finished assigning versions
// before the horizon was read), which is the watermark checkpoints cover.
func (l *Log) SeqHorizon() uint64 { return l.head.Load() }

// DurableSeq returns the last fsynced sequence number.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// Stats returns a momentary counter snapshot.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:           l.stAppends.Load(),
		AppendedBytes:     l.stBytes.Load(),
		Fsyncs:            l.stFsyncs.Load(),
		GroupCommits:      l.stGroups.Load(),
		GroupedRecords:    l.stGrouped.Load(),
		PublishStalls:     l.stStalls.Load(),
		SyncWaits:         l.stSyncWaits.Load(),
		SyncParks:         l.stSyncParks.Load(),
		Rotations:         l.stRotations.Load(),
		Checkpoints:       l.stCkpts.Load(),
		TruncatedSegments: l.stTruncatedSegs.Load(),
		Seq:               l.head.Load(),
		DurableSeq:        l.durable.Load(),
	}
}

// PublishCommit appends a commit record carrying the write set's absolute
// post-images. It MUST be called while the committing transaction still
// holds every write lock: the sequence claimed here then agrees with
// commit order on every address, which is what makes replay (and any
// recovered prefix) consistent. The ops slice is copied; the caller may
// reuse it. Returns the assigned sequence (0 when the log is down).
func (l *Log) PublishCommit(ver uint64, ops []Op) uint64 {
	if l.dead.Load() || l.closed.Load() {
		return 0
	}
	bufp := l.opPool.Get().(*[]Op)
	*bufp = append((*bufp)[:0], ops...)
	seq := l.head.Add(1)
	e := l.claim(seq)
	if e == nil {
		l.opPool.Put(bufp)
		return 0
	}
	e.kind = KindCommit
	e.ver = ver
	e.ops = bufp // the boxed slice rides the ring; the flusher pools it back
	e.ready.Store(1)
	l.stAppends.Add(1)
	return seq
}

// PublishGrab appends a block-grab record: blocks [firstBlock,
// firstBlock+blocks) were assigned to the named allocation site. Called
// under the arena's allocation mutex, so a grab's sequence always
// precedes any commit that writes into the grabbed blocks.
func (l *Log) PublishGrab(firstBlock, blocks uint64, site string) uint64 {
	if l.dead.Load() || l.closed.Load() {
		return 0
	}
	seq := l.head.Add(1)
	e := l.claim(seq)
	if e == nil {
		return 0
	}
	e.kind = KindGrab
	e.firstBlock = firstBlock
	e.blocks = blocks
	e.site = site
	e.ready.Store(1)
	l.stAppends.Add(1)
	return seq
}

// claim waits for seq's ring slot to be free and returns it, or nil when
// the log died while waiting (the flusher is gone; nothing will ever
// drain the ring). A nil return leaves a sequence gap that only the
// already-dead flusher would have noticed.
func (l *Log) claim(seq uint64) *ringEntry {
	ringLen := uint64(len(l.ring))
	for spins := 0; seq-l.tail.Load() > ringLen; spins++ {
		l.stStalls.Add(1)
		if l.dead.Load() {
			return nil
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
	return &l.ring[seq&l.mask]
}

// WaitDurable blocks until the record at seq is fsynced, escalating spin
// → yield → park exactly like the engine's conflict waits. It returns
// false when the log died or closed before seq became durable — the
// in-process analogue of crashing before the ack.
func (l *Log) WaitDurable(seq uint64) bool {
	if seq == 0 {
		return false
	}
	if l.durable.Load() >= seq {
		return true
	}
	l.stSyncWaits.Add(1)
	// Nudge the flusher rather than waiting out the rest of its window.
	select {
	case l.wake <- struct{}{}:
	default:
	}
	for i := 0; i < 128; i++ {
		if l.durable.Load() >= seq {
			return true
		}
		if l.dead.Load() {
			return false
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
	l.stSyncParks.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable.Load() < seq {
		if l.dead.Load() || l.closed.Load() {
			return l.durable.Load() >= seq
		}
		l.cond.Wait()
	}
	return true
}

// Sync forces a group commit of everything published so far and waits
// for it.
func (l *Log) Sync() bool {
	return l.WaitDurable(l.head.Load())
}

// Close drains the ring, fsyncs, and stops the flusher. Call it only
// after publishers have stopped (the engine detaches the log first).
func (l *Log) Close() error {
	l.closed.Store(true)
	l.stopOnce.Do(func() { close(l.quit) })
	<-l.done
	return l.closeErr
}

// Abandon simulates a crash without leaving the process: the flusher
// stops immediately WITHOUT flushing the ring or fsyncing, publishes
// become no-ops, and parked Sync waiters return false. Whatever the
// flusher had already written stays in the OS page cache — exactly the
// set of outcomes a real crash leaves on disk (an fsynced prefix, plus
// possibly more). The torture harness recovers the directory afterwards
// as if the process had died.
func (l *Log) Abandon() {
	l.dead.Store(true)
	l.stopOnce.Do(func() { close(l.quit) })
	<-l.done
}

// NoteCheckpoint bumps the checkpoint counter (called by the engine
// after WriteCheckpoint succeeds).
func (l *Log) NoteCheckpoint() { l.stCkpts.Add(1) }

// TruncateBefore retires segments every record of which has sequence <=
// seq (they are fully covered by a checkpoint). Removal runs oldest
// first, so a crash mid-truncate leaves a contiguous suffix. The active
// segment is never removed.
func (l *Log) TruncateBefore(seq uint64) error {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	if len(l.segments) == 0 {
		return nil
	}
	// The list's last entry is the active segment. Stopping the advance
	// at its path (not just its index) keeps the flusher's file on disk
	// even if the list ever aliased two entries to one path.
	active := l.segments[len(l.segments)-1].path
	keep := 0
	for keep+1 < len(l.segments) && l.segments[keep+1].startSeq <= seq+1 &&
		l.segments[keep].path != active {
		keep++
	}
	// segments[0:keep] end strictly before segments[keep].startSeq <=
	// seq+1, so every record in them is <= seq.
	for i := 0; i < keep; i++ {
		if err := os.Remove(l.segments[i].path); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.stTruncatedSegs.Add(1)
		crash(CrashMidTruncate)
	}
	if keep > 0 {
		l.segments = append(l.segments[:0], l.segments[keep:]...)
		return syncDir(l.dir)
	}
	return nil
}

// Replay re-reads the records recovered by Open (not anything published
// since) in sequence order, invoking fn for every record with Seq >
// fromSeq. Call it once, after Open and before publishing.
func (l *Log) Replay(fromSeq uint64, fn func(Record) error) (ReplayStats, error) {
	return replaySegments(l.recovered, fromSeq, fn)
}

// openSegment creates and fsyncs a fresh active segment whose first
// record will be startSeq, then fsyncs the directory so the file itself
// survives a crash.
func (l *Log) openSegment(startSeq uint64) error {
	path := filepath.Join(l.dir, segName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	hdr := appendSegHeader(nil, startSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = startSeq
	l.segSize = int64(len(hdr))
	l.segMu.Lock()
	l.segments = append(l.segments, segmentInfo{path: path, startSeq: startSeq})
	l.segMu.Unlock()
	return nil
}

// flusher is the single consumer: it coalesces published records into
// group commits on the configured interval (or sooner when a Sync waiter
// nudges it), writes, fsyncs, publishes the durable watermark, and
// rotates segments.
func (l *Log) flusher() {
	defer close(l.done)
	timer := time.NewTimer(l.opts.GroupCommitInterval)
	defer timer.Stop()
	for {
		select {
		case <-l.quit:
			if !l.dead.Load() {
				// Graceful close: drain whatever is published.
				for l.tail.Load() < l.head.Load() {
					if err := l.flushOnce(); err != nil {
						l.closeErr = err
						break
					}
				}
				if err := l.f.Sync(); err != nil && l.closeErr == nil {
					l.closeErr = err
				}
			}
			if err := l.f.Close(); err != nil && l.closeErr == nil && !l.dead.Load() {
				l.closeErr = err
			}
			// Release anyone parked in WaitDurable.
			l.mu.Lock()
			l.closed.Store(true)
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		case <-l.wake:
		case <-timer.C:
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if err := l.flushOnce(); err != nil {
			// An append error is unrecoverable mid-run: declare the log
			// dead so publishers and waiters stop relying on it.
			l.closeErr = err
			l.dead.Store(true)
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		}
		timer.Reset(l.opts.GroupCommitInterval)
	}
}

// flushOnce drains every ready record, writes them as one group, fsyncs,
// and advances the durable watermark.
func (l *Log) flushOnce() error {
	tail := l.tail.Load()
	head := l.head.Load()
	l.enc = l.enc[:0]
	n := 0
	for next := tail + 1; next <= head; next++ {
		e := &l.ring[next&l.mask]
		// The publisher claimed this sequence but has not stored ready
		// yet; the fill is a handful of instructions away. A dead
		// publisher (claim returned nil on a dying log) only happens
		// after dead is set, when this loop no longer runs.
		for spins := 0; e.ready.Load() == 0; spins++ {
			if spins > 1024 {
				runtime.Gosched()
			}
			if l.dead.Load() {
				head = next - 1 // flush what is contiguous
				break
			}
		}
		if e.ready.Load() == 0 {
			break
		}
		switch e.kind {
		case KindCommit:
			l.enc = appendCommitFrame(l.enc, next, e.ver, *e.ops)
			l.opPool.Put(e.ops)
			e.ops = nil
		case KindGrab:
			l.enc = appendGrabFrame(l.enc, next, e.firstBlock, e.blocks, e.site)
			e.site = ""
		}
		e.ready.Store(0)
		l.tail.Store(next)
		n++
	}
	if n == 0 {
		return nil
	}
	if hit(CrashMidAppend) {
		// A torn write: half the group's bytes reach the file, then the
		// process dies. Recovery must detect the dangling frame by
		// length/checksum and truncate it.
		l.f.Write(l.enc[:len(l.enc)/2])
		kill()
	}
	if _, err := l.f.Write(l.enc); err != nil {
		return err
	}
	crash(CrashPreFsync)
	if err := l.f.Sync(); err != nil {
		return err
	}
	crash(CrashPostFsyncPreAck)
	l.stBytes.Add(uint64(len(l.enc)))
	l.stFsyncs.Add(1)
	l.stGroups.Add(1)
	l.stGrouped.Add(uint64(n))
	l.segSize += int64(len(l.enc))
	l.mu.Lock()
	l.durable.Store(l.tail.Load())
	l.cond.Broadcast()
	l.mu.Unlock()
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.stRotations.Add(1)
		if err := l.openSegment(l.tail.Load() + 1); err != nil {
			return err
		}
	}
	return nil
}
