package wal

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// Crashpoint names an injection site in the durability path. When armed
// (SetCrashpoint or the WAL_CRASHPOINT environment variable), reaching the
// site SIGKILLs the process — not os.Exit, so no deferred cleanup, no
// flushes, nothing: the closest a test harness gets to a power failure.
// Each site sits on a distinct edge of the crash-consistency argument:
//
//	mid-append:         half of a group's encoded bytes reach the file — a
//	                    torn frame recovery must detect and truncate.
//	pre-fsync:          bytes written but not fsynced — the OS may keep or
//	                    drop them; either outcome must recover.
//	post-fsync-pre-ack: durable but unacknowledged — the commit must
//	                    survive even though no Sync caller saw it ack.
//	mid-checkpoint:     a partial checkpoint temp file — the rename never
//	                    happened, so recovery must ignore it.
//	mid-truncate:       segment retirement interrupted between unlinks —
//	                    the remaining contiguous suffix must still recover.
type Crashpoint int32

const (
	// CrashNone disarms injection (the default).
	CrashNone Crashpoint = iota
	// CrashMidAppend kills after writing half of a group's bytes.
	CrashMidAppend
	// CrashPreFsync kills after the group write, before its fsync.
	CrashPreFsync
	// CrashPostFsyncPreAck kills after fsync, before publishing the
	// durable watermark that acknowledges Sync commits.
	CrashPostFsyncPreAck
	// CrashMidCheckpoint kills midway through writing the checkpoint
	// temp file, before the atomic rename.
	CrashMidCheckpoint
	// CrashMidTruncate kills between segment unlinks during checkpoint
	// truncation.
	CrashMidTruncate
)

var crashpointNames = map[string]Crashpoint{
	"mid-append":         CrashMidAppend,
	"pre-fsync":          CrashPreFsync,
	"post-fsync-pre-ack": CrashPostFsyncPreAck,
	"mid-checkpoint":     CrashMidCheckpoint,
	"mid-truncate":       CrashMidTruncate,
}

// String returns the flag/env spelling of the crash point.
func (p Crashpoint) String() string {
	for name, v := range crashpointNames {
		if v == p {
			return name
		}
	}
	return "none"
}

// ParseCrashpoint maps a flag/env spelling ("mid-append", "pre-fsync",
// "post-fsync-pre-ack", "mid-checkpoint", "mid-truncate", "none") to its
// Crashpoint.
func ParseCrashpoint(s string) (Crashpoint, error) {
	if s == "" || s == "none" {
		return CrashNone, nil
	}
	if p, ok := crashpointNames[s]; ok {
		return p, nil
	}
	return CrashNone, fmt.Errorf("wal: unknown crash point %q", s)
}

var (
	armedPoint atomic.Int32
	// armedSkip counts down: the crash fires on the encounter that takes
	// the counter below zero, so skip=N survives the first N encounters.
	armedSkip atomic.Int64
)

// SetCrashpoint arms (or with CrashNone disarms) fault injection: the
// process SIGKILLs itself on the skip+1'th time the durability path
// reaches point. Tests arm it in a child process via the WAL_CRASHPOINT
// and WAL_CRASHPOINT_SKIP environment variables, which init reads.
func SetCrashpoint(point Crashpoint, skip int) {
	armedSkip.Store(int64(skip))
	armedPoint.Store(int32(point))
}

func init() {
	s := os.Getenv("WAL_CRASHPOINT")
	if s == "" {
		return
	}
	p, err := ParseCrashpoint(s)
	if err != nil {
		return // a typo must not arm anything
	}
	skip := 0
	if v := os.Getenv("WAL_CRASHPOINT_SKIP"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			skip = n
		}
	}
	SetCrashpoint(p, skip)
}

// hit reports whether an armed crash point fires at this encounter. The
// caller performs any site-specific half-work (e.g. the mid-append
// partial write) and then calls kill.
func hit(point Crashpoint) bool {
	if Crashpoint(armedPoint.Load()) != point {
		return false
	}
	return armedSkip.Add(-1) < 0
}

// crash performs site-independent injection: fire-and-die at point.
func crash(point Crashpoint) {
	if hit(point) {
		kill()
	}
}
