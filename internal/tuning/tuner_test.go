package tuning

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
)

func newEngine(t testing.TB) *core.Engine {
	t.Helper()
	arena, err := memory.NewArena(memory.Config{CapacityWords: 1 << 20, BlockShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(arena, core.DefaultPartConfig())
}

// drive runs a workload for the given number of tuner epochs, calling
// Tick between bursts, and returns all decisions.
func drive(t *testing.T, e *core.Engine, tn *Tuner, epochs int, burst func(th *core.Thread)) []Decision {
	t.Helper()
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var all []Decision
	for i := 0; i < epochs; i++ {
		burst(th)
		all = append(all, tn.Tick()...)
	}
	return all
}

func TestVisibilitySwitchToVisible(t *testing.T) {
	e := newEngine(t)
	// Suicide CM turns every lock conflict into an abort, and yield
	// injection makes transactions actually overlap on single-CPU hosts,
	// giving the update-heavy workload the abort rate the heuristic
	// looks for.
	e.SetYieldEveryOps(4)
	hot := core.DefaultPartConfig()
	hot.CM = core.CMSuicide
	if err := e.Reconfigure(core.GlobalPartition, hot); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.MinCommits = 10
	tn := New(e, cfg)

	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})

	// Update-heavy contended workload: two threads increment one word.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		th2 := e.MustAttachThread()
		defer e.DetachThread(th2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			th2.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	switched := false
	for time.Now().Before(deadline) && !switched {
		for i := 0; i < 500; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
		tn.Tick()
		if e.Partition(core.GlobalPartition).Config().Read == core.VisibleReads {
			switched = true
		}
	}
	close(stop)
	wg.Wait()
	if !switched {
		s := e.StatsSnapshot(core.GlobalPartition)
		t.Fatalf("tuner never switched to visible reads (update ratio %.2f, abort rate %.2f)",
			s.UpdateRatio(), s.AbortRate())
	}
	if len(tn.Trace()) == 0 {
		t.Fatal("empty trace after a switch")
	}
}

func TestVisibilitySwitchBackToInvisible(t *testing.T) {
	e := newEngine(t)
	start := core.DefaultPartConfig()
	start.Read = core.VisibleReads
	if err := e.Reconfigure(core.GlobalPartition, start); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.MinCommits = 10
	cfg.Hysteresis = 2
	tn := New(e, cfg)

	th := e.MustAttachThread()
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 8)
		tx.Store(a, 0)
	})

	// Read-only workload: update ratio ~0, abort rate ~0.
	decisions := drive(t, e, tn, 6, func(th *core.Thread) {
		for i := 0; i < 200; i++ {
			th.ReadOnlyAtomic(func(tx *core.Tx) { tx.Load(a) })
		}
	})
	if got := e.Partition(core.GlobalPartition).Config().Read; got != core.InvisibleReads {
		t.Fatalf("read mode = %v after read-only epochs; decisions: %v", got, decisions)
	}
}

func TestHillClimbProbesAndReverts(t *testing.T) {
	e := newEngine(t)
	cfg := DefaultConfig()
	cfg.ToVisibleAbortRate = 2.0 // disable visibility switching
	cfg.MinCommits = 10
	cfg.ProbeEvery = 1
	cfg.ImproveFrac = 100.0 // impossible improvement: every probe must revert
	tn := New(e, cfg)

	startBits := e.Partition(core.GlobalPartition).Config().LockBits
	drive(t, e, tn, 12, func(th *core.Thread) {
		var a memory.Addr
		th.Atomic(func(tx *core.Tx) {
			a = tx.Alloc(memory.DefaultSite, 4)
			tx.Store(a, 1)
		})
		for i := 0; i < 100; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	})
	tr := tn.Trace()
	if len(tr) == 0 {
		t.Fatal("hill climber never probed")
	}
	var probes, reverts int
	for _, d := range tr {
		switch {
		case d.New.LockBits != d.Old.LockBits && d.Reason[:5] == "probe":
			probes++
		case d.Reason[:6] == "revert":
			reverts++
		}
	}
	if probes == 0 || reverts == 0 {
		t.Fatalf("probes=%d reverts=%d; trace: %v", probes, reverts, tr)
	}
	// With an unachievable improvement threshold, bits must end where they
	// started (every probe reverted).
	if got := e.Partition(core.GlobalPartition).Config().LockBits; got != startBits {
		t.Fatalf("lockBits drifted: %d -> %d", startBits, got)
	}
}

func TestHillClimbRespectsBounds(t *testing.T) {
	e := newEngine(t)
	base := core.DefaultPartConfig()
	base.LockBits = 4
	if err := e.Reconfigure(core.GlobalPartition, base); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ToVisibleAbortRate = 2.0
	cfg.MinCommits = 10
	cfg.ProbeEvery = 1
	cfg.MinLockBits = 4
	cfg.MaxLockBits = 5
	cfg.ImproveFrac = 0.0 // accept everything: bits would run away if unbounded
	tn := New(e, cfg)
	drive(t, e, tn, 20, func(th *core.Thread) {
		var a memory.Addr
		th.Atomic(func(tx *core.Tx) {
			a = tx.Alloc(memory.DefaultSite, 4)
			tx.Store(a, 1)
		})
		for i := 0; i < 100; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	})
	got := e.Partition(core.GlobalPartition).Config().LockBits
	if got < 4 || got > 5 {
		t.Fatalf("lockBits %d escaped bounds [4,5]", got)
	}
}

func TestIdlePartitionLeftAlone(t *testing.T) {
	e := newEngine(t)
	cfg := DefaultConfig()
	cfg.MinCommits = 1000000 // everything is idle
	tn := New(e, cfg)
	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})
	for i := 0; i < 8; i++ {
		th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		tn.Tick()
	}
	if got := len(tn.Trace()); got != 0 {
		t.Fatalf("tuner touched an idle partition: %v", tn.Trace())
	}
	if tn.Epoch() != 8 {
		t.Fatalf("Epoch = %d", tn.Epoch())
	}
}

// TestCMAdaptationToArbiter drives a suicide-CM partition into heavy lock
// conflicts and checks heuristic (3) installs older-wins arbitration.
func TestCMAdaptationToArbiter(t *testing.T) {
	e := newEngine(t)
	e.SetYieldEveryOps(4)
	hot := core.DefaultPartConfig()
	hot.CM = core.CMSuicide
	if err := e.Reconfigure(core.GlobalPartition, hot); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptCM = true
	cfg.ToVisibleAbortRate = 2.0 // isolate the CM heuristic
	cfg.MinCommits = 10
	// The mechanism, not the production threshold, is under test: trigger
	// as soon as lock conflicts are measurable.
	cfg.ToArbiterConflictRate = 0.005
	cfg.ToSpinConflictRate = 0
	tn := New(e, cfg)

	th := e.MustAttachThread()
	const span = 32
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, span)
		for i := 0; i < span; i++ {
			tx.Store(a+memory.Addr(i), 0)
		}
	})

	// The transaction writes the hot word FIRST (taking its encounter-time
	// lock) and then reads a span of other words; the stretched critical
	// section makes concurrent attempts find the orec locked, so aborts
	// show up as lock conflicts — the signal heuristic (3) watches.
	hotTx := func(tx *core.Tx) {
		tx.Store(a, tx.Load(a)+1)
		for i := 1; i < span; i++ {
			tx.Load(a + memory.Addr(i))
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		th2 := e.MustAttachThread()
		defer e.DetachThread(th2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			th2.Atomic(hotTx)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	switched := false
	for time.Now().Before(deadline) && !switched {
		for i := 0; i < 500; i++ {
			th.Atomic(hotTx)
		}
		tn.Tick()
		if e.Partition(core.GlobalPartition).Config().CM == core.CMTimestamp {
			switched = true
		}
	}
	close(stop)
	wg.Wait()
	e.DetachThread(th)
	if !switched {
		s := e.StatsSnapshot(core.GlobalPartition)
		t.Fatalf("tuner never switched CM (abort rate %.2f, aborts %v)", s.AbortRate(), s.Aborts)
	}
}

// TestCMAdaptationBackToSpin starts from CMTimestamp under a conflict-free
// workload and checks the tuner relaxes back to spinning.
func TestCMAdaptationBackToSpin(t *testing.T) {
	e := newEngine(t)
	start := core.DefaultPartConfig()
	start.CM = core.CMTimestamp
	if err := e.Reconfigure(core.GlobalPartition, start); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptCM = true
	cfg.ToVisibleAbortRate = 2.0
	cfg.MinCommits = 10
	cfg.Hysteresis = 2
	tn := New(e, cfg)

	decisions := drive(t, e, tn, 8, func(th *core.Thread) {
		var a memory.Addr
		th.Atomic(func(tx *core.Tx) {
			a = tx.Alloc(memory.DefaultSite, 1)
			tx.Store(a, 0)
		})
		for i := 0; i < 200; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	})
	if got := e.Partition(core.GlobalPartition).Config().CM; got != core.CMSpin {
		t.Fatalf("CM = %v after conflict-free epochs; decisions: %v", got, decisions)
	}
}

// TestCMAdaptationDisabledByDefault confirms heuristic (3) does not fire
// unless explicitly enabled (the experiments that predate it must be
// unaffected).
func TestCMAdaptationDisabledByDefault(t *testing.T) {
	if DefaultConfig().AdaptCM {
		t.Fatal("AdaptCM must default to off")
	}
}

// TestTimeBaseAdaptation drives heuristic (4) through both directions:
// a partitioned, update-heavy, partition-confined workload must move the
// engine onto partition-local commit counters, and a workload whose
// update commits mostly span partitions must move it back to the global
// counter.
func TestTimeBaseAdaptation(t *testing.T) {
	e := newEngine(t)
	sites := e.Arena().Sites()
	sa := sites.Register("tb.a")
	sb := sites.Register("tb.b")
	full := make([]core.PartID, sites.Count())
	full[sa], full[sb] = 1, 2
	cfgs := []core.PartConfig{core.DefaultPartConfig(), core.DefaultPartConfig(), core.DefaultPartConfig()}
	if err := e.InstallPlan(full, []string{"g", "a", "b"}, cfgs); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptTimeBase = true
	cfg.MinCommits = 10
	cfg.ToPartitionLocalUpdates = 50
	cfg.Hysteresis = 2
	tn := New(e, cfg)

	var aa, ab memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *core.Tx) {
		aa = tx.Alloc(sa, 1)
		ab = tx.Alloc(sb, 1)
		tx.Store(aa, 0)
		tx.Store(ab, 0)
	})
	e.DetachThread(setup)

	// Phase 1: partition-confined updates — expect the switch to
	// partition-local.
	decs := drive(t, e, tn, 8, func(th *core.Thread) {
		for i := 0; i < 200; i++ {
			a := aa
			if i%2 == 0 {
				a = ab
			}
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	})
	toLocal := false
	for _, d := range decs {
		if d.OldTB == core.TimeBaseGlobal && d.NewTB == core.TimeBasePartitionLocal {
			toLocal = true
		}
	}
	if !toLocal {
		t.Fatalf("no switch to partition-local; decisions: %v", decs)
	}
	if e.TimeBaseMode() != core.TimeBasePartitionLocal {
		t.Fatalf("mode = %v after phase 1", e.TimeBaseMode())
	}

	// Phase 2: every update commit spans both partitions — the
	// cross-partition share hits 1.0 and the engine must fall back.
	decs = drive(t, e, tn, 16, func(th *core.Thread) {
		for i := 0; i < 200; i++ {
			th.Atomic(func(tx *core.Tx) {
				tx.Store(aa, tx.Load(aa)+1)
				tx.Store(ab, tx.Load(ab)+1)
			})
		}
	})
	toGlobal := false
	for _, d := range decs {
		if d.OldTB == core.TimeBasePartitionLocal && d.NewTB == core.TimeBaseGlobal {
			toGlobal = true
		}
	}
	if !toGlobal {
		t.Fatalf("no fallback to global; decisions: %v", decs)
	}
	if e.TimeBaseMode() != core.TimeBaseGlobal {
		t.Fatalf("mode = %v after phase 2", e.TimeBaseMode())
	}
}

// TestTimeBaseAdaptationDisabledByDefault pins heuristic (4) behind its
// flag.
func TestTimeBaseAdaptationDisabledByDefault(t *testing.T) {
	if DefaultConfig().AdaptTimeBase {
		t.Fatal("AdaptTimeBase should default to off")
	}
}

func TestStartStop(t *testing.T) {
	e := newEngine(t)
	cfg := DefaultConfig()
	cfg.Interval = time.Millisecond
	tn := New(e, cfg)
	tn.Start()
	time.Sleep(20 * time.Millisecond)
	tn.Stop()
	if tn.Epoch() == 0 {
		t.Fatal("Start never ticked")
	}
	// Stop must be idempotent.
	tn.Stop()
}

func TestDecisionString(t *testing.T) {
	d := Decision{Epoch: 3, Part: 1, Name: "x", Old: core.DefaultPartConfig(), New: core.DefaultPartConfig(), Reason: "r"}
	if d.String() == "" {
		t.Fatal("empty decision string")
	}
}

// TestSnapshotAdaptation drives a read-dominated partition with update
// traffic present and checks heuristic (5) attaches the snapshot store;
// then flips the workload to update-dominated and checks it drops it.
func TestSnapshotAdaptation(t *testing.T) {
	e := newEngine(t)
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptSnapshot = true
	cfg.MinCommits = 10
	cfg.Hysteresis = 2
	cfg.SnapshotHistCap = 64
	tn := New(e, cfg)

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 4)
		tx.Store(a, 0)
	})

	readHeavy := func(th *core.Thread) {
		for i := 0; i < 200; i++ {
			if i%10 == 0 {
				th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
			} else {
				th.ReadOnlyAtomic(func(tx *core.Tx) { _ = tx.Load(a) })
			}
		}
	}
	attached := false
	for epoch := 0; epoch < 20 && !attached; epoch++ {
		readHeavy(th)
		for _, d := range tn.Tick() {
			if d.New.HistCap == cfg.SnapshotHistCap {
				attached = true
			}
		}
	}
	if !attached {
		t.Fatalf("snapshot store never attached; trace: %v", tn.Trace())
	}
	if got := e.Partition(core.GlobalPartition).Config().HistCap; got != cfg.SnapshotHistCap {
		t.Fatalf("HistCap = %d after attach, want %d", got, cfg.SnapshotHistCap)
	}

	writeHeavy := func(th *core.Thread) {
		for i := 0; i < 200; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
	}
	dropped := false
	for epoch := 0; epoch < 20 && !dropped; epoch++ {
		writeHeavy(th)
		for _, d := range tn.Tick() {
			if d.Old.HistCap != 0 && d.New.HistCap == 0 {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Fatalf("snapshot store never dropped; trace: %v", tn.Trace())
	}
	if got := e.Partition(core.GlobalPartition).Config().HistCap; got != 0 {
		t.Fatalf("HistCap = %d after drop, want 0", got)
	}

	// Demand-driven re-attach: snapshot readers hitting stale orecs with
	// no store produce SnapMisses even when they barely commit — the
	// starving-reader signal must attach the store on its own, without
	// any read-only commit share.
	snapDemand := func(th *core.Thread) {
		for i := 0; i < 100; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
			th.SnapshotAtomic(func(tx *core.Tx) {
				// Pin the snapshot on word 0, then force staleness by
				// committing an update to word 1 before reading it.
				_ = tx.Load(a)
				if tx.SnapshotMode() {
					th2 := e.MustAttachThread()
					th2.Atomic(func(wtx *core.Tx) { wtx.Store(a+1, wtx.Load(a+1)+1) })
					e.DetachThread(th2)
				}
				_ = tx.Load(a + 1)
			})
		}
	}
	reattached := false
	for epoch := 0; epoch < 20 && !reattached; epoch++ {
		snapDemand(th)
		for _, d := range tn.Tick() {
			if d.Old.HistCap == 0 && d.New.HistCap != 0 {
				reattached = true
			}
		}
	}
	if !reattached {
		t.Fatalf("unserved snapshot demand never attached the store; trace: %v", tn.Trace())
	}
}

// TestSnapshotAdaptationDisabledByDefault pins heuristic (5) behind its
// flag.
func TestSnapshotAdaptationDisabledByDefault(t *testing.T) {
	if DefaultConfig().AdaptSnapshot {
		t.Fatal("AdaptSnapshot should default to off")
	}
}

// TestSnapshotRetentionGrowth checks the growth side of heuristic (5):
// an attached but undersized store whose lookups keep dying on evicted
// chain links (mvstore TruncMisses) gets its capacity doubled, while a
// store that misses only for lack of recorded history does not grow.
func TestSnapshotRetentionGrowth(t *testing.T) {
	e := newEngine(t)
	startCfg := core.DefaultPartConfig()
	startCfg.HistCap = 8 // tiny ring: a burst of commits evicts everything
	if err := e.Reconfigure(core.GlobalPartition, startCfg); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptSnapshot = true
	cfg.MinCommits = 10
	cfg.Hysteresis = 2
	tn := New(e, cfg)

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 2)
		tx.Store(a, 0)
		tx.Store(a+1, 0)
	})
	// Each burst: a snapshot reader pins its snapshot on word 0, then a
	// helper thread commits enough updates to word 1 to wrap the 8-record
	// ring before the reader looks — the covering record is guaranteed
	// evicted, producing a retention miss on every burst.
	burst := func(th *core.Thread) {
		for i := 0; i < 30; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
			th.SnapshotAtomic(func(tx *core.Tx) {
				_ = tx.Load(a)
				if tx.SnapshotMode() {
					th2 := e.MustAttachThread()
					for j := 0; j < 16; j++ {
						th2.Atomic(func(wtx *core.Tx) { wtx.Store(a+1, wtx.Load(a+1)+1) })
					}
					e.DetachThread(th2)
				}
				_ = tx.Load(a + 1)
			})
		}
	}
	grown := false
	for epoch := 0; epoch < 20 && !grown; epoch++ {
		burst(th)
		for _, d := range tn.Tick() {
			if d.New.HistCap > d.Old.HistCap && d.Old.HistCap == startCfg.HistCap {
				grown = true
			}
		}
	}
	if !grown {
		t.Fatalf("undersized store never grew on retention misses; trace: %v", tn.Trace())
	}
	if got := e.Partition(core.GlobalPartition).Config().HistCap; got < 2*startCfg.HistCap {
		t.Fatalf("HistCap = %d after growth, want >= %d", got, 2*startCfg.HistCap)
	}
}
