package tuning

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
)

// TestTunerInstallPlanStatsRace runs the started tuner (a continuous
// StatsSnapshot reader) concurrently with transaction traffic and repeated
// plan installs. Under -race this is the regression test for the
// InstallPlan vs StatsSnapshot data race on the per-thread stats slices.
func TestTunerInstallPlanStatsRace(t *testing.T) {
	e := newEngine(t)
	sites := e.Arena().Sites()
	sa := sites.Register("trace.a")
	sb := sites.Register("trace.b")
	var addrs [2]memory.Addr
	setup := e.MustAttachThread()
	setup.Atomic(func(tx *core.Tx) {
		addrs[0] = tx.Alloc(sa, 4)
		addrs[1] = tx.Alloc(sb, 4)
		for _, a := range addrs {
			for j := 0; j < 4; j++ {
				tx.Store(a+memory.Addr(j), 1)
			}
		}
	})
	e.DetachThread(setup)

	cfg := DefaultConfig()
	cfg.Interval = time.Millisecond
	tn := New(e, cfg)
	tn.Start()
	defer tn.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := e.MustAttachThread()
			defer e.DetachThread(th)
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := addrs[rng.Intn(2)] + memory.Addr(rng.Intn(4))
				th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}(int64(w) + 1)
	}
	// Extra monitor alongside the tuner, mirroring dashboard readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.AllStats()
		}
	}()

	full := make([]core.PartID, sites.Count())
	full[sa], full[sb] = 1, 2
	for i := 0; i < 15; i++ {
		if err := e.InstallPlan(full, []string{"g", "a", "b"},
			[]core.PartConfig{core.DefaultPartConfig(), core.DefaultPartConfig(), core.DefaultPartConfig()}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the tuner tick between installs
		if err := e.InstallPlan(make([]core.PartID, sites.Count()), []string{"g"},
			[]core.PartConfig{core.DefaultPartConfig()}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
