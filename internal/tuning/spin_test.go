package tuning

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
)

// holdLock starts a transaction that writes a (taking its orec lock at
// encounter time) and then parks inside user code until release is
// closed; held is closed once the lock is taken. done is closed after
// the transaction commits and the thread has left the engine — Ticks
// that reconfigure (quiesce) must not run before then.
func holdLock(e *core.Engine, a memory.Addr, held, release, done chan struct{}) {
	go func() {
		defer close(done)
		th := e.MustAttachThread()
		defer e.DetachThread(th)
		first := true
		th.Atomic(func(tx *core.Tx) {
			tx.Store(a, 7)
			if first {
				first = false
				close(held)
				<-release
			}
		})
	}()
}

// TestSpinBudgetShrinksOnEscalatedWaits: a partition whose waits
// routinely blow through the spin budget into scheduler yields/parks
// (here: a snapshot reader waiting out a long lock hold) must have its
// SpinBudget halved by heuristic (6).
func TestSpinBudgetShrinksOnEscalatedWaits(t *testing.T) {
	e := newEngine(t)
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptSpin = true
	cfg.MinCommits = 1
	tn := New(e, cfg)

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})

	startBudget := mustConfig(t, e).SpinBudget
	deadline := time.Now().Add(10 * time.Second)
	for mustConfig(t, e).SpinBudget >= startBudget {
		if time.Now().After(deadline) {
			t.Fatalf("spin budget never shrank from %d; trace: %v", startBudget, tn.Trace())
		}
		held := make(chan struct{})
		release := make(chan struct{})
		done := make(chan struct{})
		holdLock(e, a, held, release, done)
		<-held
		// Snapshot-mode reader: with no history store it simply waits the
		// writer out, escalating past the budget into yields and parks.
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			rth := e.MustAttachThread()
			defer e.DetachThread(rth)
			rth.Run(func(tx *core.Tx) error { tx.Load(a); return nil }, core.Snapshot())
		}()
		// Wait until the reader has demonstrably escalated: the yield and
		// park counters are the very signal under test.
		base := e.StatsSnapshot(core.GlobalPartition)
		for {
			cur := e.StatsSnapshot(core.GlobalPartition)
			if cur.Yields+cur.Parks >= base.Yields+base.Parks+2000 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reader never escalated past the spin budget (yields=%d parks=%d)",
					cur.Yields, cur.Parks)
			}
			time.Sleep(time.Millisecond)
		}
		close(release)
		<-done
		<-readerDone
		// A few clean commits so the partition counts as active.
		for i := 0; i < 20; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
		tn.Tick()
	}
	if got := mustConfig(t, e).SpinBudget; got != startBudget/2 {
		t.Fatalf("SpinBudget = %d after shrink, want %d", got, startBudget/2)
	}
}

// TestSpinBudgetGrowsOnNonEscalatingLockAborts: a partition aborting
// heavily on lock conflicts whose waits never leave the spin phase must
// have its SpinBudget doubled.
func TestSpinBudgetGrowsOnNonEscalatingLockAborts(t *testing.T) {
	e := newEngine(t)
	// CMSpin aborts the moment the budget is exhausted, so a lock held
	// longer than the budget converts bounded spinning (pure phase-1 wait
	// cycles, no yields) into AbortLockedOn* aborts — exactly the grow
	// signal.
	cfg := DefaultConfig()
	cfg.HillClimb = false
	cfg.AdaptSpin = true
	cfg.MinCommits = 1
	tn := New(e, cfg)

	th := e.MustAttachThread()
	defer e.DetachThread(th)
	var a memory.Addr
	th.Atomic(func(tx *core.Tx) {
		a = tx.Alloc(memory.DefaultSite, 1)
		tx.Store(a, 0)
	})

	startBudget := mustConfig(t, e).SpinBudget
	deadline := time.Now().Add(10 * time.Second)
	for mustConfig(t, e).SpinBudget <= startBudget {
		if time.Now().After(deadline) {
			t.Fatalf("spin budget never grew from %d; trace: %v", startBudget, tn.Trace())
		}
		held := make(chan struct{})
		release := make(chan struct{})
		done := make(chan struct{})
		holdLock(e, a, held, release, done)
		<-held
		// Bounded contenders: each attempt spins out its budget against
		// the held lock and aborts (one attempt each, so Run returns).
		for i := 0; i < 10; i++ {
			err := th.Run(func(tx *core.Tx) error {
				tx.Store(a, 1)
				return nil
			}, core.MaxAttempts(1))
			if !errors.Is(err, core.ErrMaxAttempts) {
				t.Fatalf("contender attempt %d: err = %v, want ErrMaxAttempts", i, err)
			}
		}
		close(release)
		<-done
		for i := 0; i < 20; i++ {
			th.Atomic(func(tx *core.Tx) { tx.Store(a, tx.Load(a)+1) })
		}
		tn.Tick()
	}
	if got := mustConfig(t, e).SpinBudget; got != startBudget*2 {
		t.Fatalf("SpinBudget = %d after growth, want %d", got, startBudget*2)
	}
}

// mustConfig returns the global partition's current configuration.
func mustConfig(t *testing.T, e *core.Engine) core.PartConfig {
	t.Helper()
	p := e.Partition(core.GlobalPartition)
	if p == nil {
		t.Fatal("no global partition")
	}
	return p.Config()
}
