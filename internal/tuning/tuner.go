// Package tuning implements the per-partition runtime tuner: the component
// that, in the paper, observes each partition's workload and adapts the
// STM's concurrency control for it ("tuning decisions are driven by
// runtime heuristics").
//
// Two heuristics are implemented, matching the knobs the paper discusses:
//
//  1. Read visibility: partitions with a high update ratio and a high
//     abort rate switch to visible reads (readers become visible to
//     writers, avoiding doomed executions); read-dominated partitions
//     switch back to cheap invisible reads. Both directions require the
//     condition to hold for Hysteresis consecutive epochs so the tuner
//     does not thrash on noise.
//
//  2. Conflict-detection granularity: a hill climber probes the
//     lock-array size (LockBits) one step at a time, keeps moves that
//     improve per-epoch commit throughput by more than ImproveFrac, and
//     reverts moves that do not.
//
//  3. Contention management (optional, AdaptCM): a partition whose
//     lock-conflict aborts dominate switches its CM policy to the
//     older-wins arbiter (CMTimestamp), which breaks convoys without
//     admitting livelock; an arbitrated partition that has gone quiet
//     falls back to bounded spinning. Like the visibility switch, every
//     CM change is probed with a throughput regret check and reverted if
//     it costs commits. This heuristic extends the paper's "different
//     transactional memory designs per partition" argument to the
//     arbitration axis.
//
//  4. Commit time base (optional, AdaptTimeBase): a partitioned workload
//     dominated by update commits moves the engine from the global commit
//     counter onto partition-local counters (internal/clock), removing
//     the shared commit-clock RMW from single-partition commits; a high
//     cross-partition commit share moves it back. Guarded by the same
//     regret check as the other probes. This is the "maintain the time
//     base per partition" payoff of the paper's partitioning argument,
//     actuated at the engine level rather than per partition.
//
//  5. Snapshot history (optional, AdaptSnapshot): a partition showing
//     unserved snapshot demand — SnapshotAtomic readers hitting stale
//     orecs the store cannot reconstruct (SnapMisses) — or a
//     read-dominated commit mix under update traffic attaches a
//     multi-version snapshot store (PartConfig.HistCap,
//     internal/mvstore), so snapshot readers stop aborting or extending
//     under the writers. Demand matters more than the commit mix:
//     starving snapshot readers barely commit, so their share of commits
//     stays invisible while their misses do not. With a store attached,
//     growth keys on the store's own lookup statistics
//     (mvstore.Stats.TruncMisses, the misses caused by an evicted chain
//     link): while retention misses persist, capacity doubles (up to the
//     engine clamp) — misses no capacity can cure (addresses with no
//     recorded history, snapshots outside the span) no longer trigger
//     growth. When snapshot demand disappears on an update-active
//     partition the store is dropped, removing the commit-path append
//     cost. Every direction requires its condition to hold for
//     Hysteresis consecutive epochs.
//
//  6. Spin budget (optional, AdaptSpin): the engine's waiting discipline
//     counts how often a partition's wait loops escalate past its
//     SpinBudget into scheduler yields and timed parks
//     (PartStats.Yields/Parks, subsets of WaitCycles). A partition whose
//     waits routinely escalate halves its budget — the spin phase buys
//     no resolutions, and on oversubscribed hosts it steals cycles from
//     the very lock owners being waited on; one aborting heavily on lock
//     conflicts while its waits never escalate doubles it, trading
//     patience for aborts.
//
// The tuner works on per-epoch deltas of the engine's monotonic
// per-partition counters; actuation goes through Engine.Reconfigure,
// which swaps the partition's configuration and orec table under
// quiescence.
package tuning

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Config tunes the tuner.
type Config struct {
	// Interval is the epoch length used by Start (ignored by manual Tick).
	Interval time.Duration

	// ToVisibleUpdateRatio and ToVisibleAbortRate: a partition whose
	// update ratio AND abort rate exceed these switches to visible reads.
	ToVisibleUpdateRatio float64
	ToVisibleAbortRate   float64
	// ToInvisibleUpdateRatio and ToInvisibleAbortRate: a visible-reads
	// partition whose update ratio OR abort rate falls below these
	// switches back to invisible reads.
	ToInvisibleUpdateRatio float64
	ToInvisibleAbortRate   float64
	// Hysteresis is the number of consecutive epochs a switch condition
	// must hold before it is applied.
	Hysteresis int

	// HillClimb enables lock-granularity adaptation.
	HillClimb bool
	// MinLockBits / MaxLockBits bound the probe range.
	MinLockBits uint
	MaxLockBits uint
	// ImproveFrac is the minimum relative throughput improvement for a
	// probe to be accepted (e.g. 0.05 = 5%).
	ImproveFrac float64
	// ProbeEvery is the number of stable epochs between probes.
	ProbeEvery int

	// MinCommits is the minimum per-epoch commit count for a partition to
	// be considered active; idle partitions are left alone.
	MinCommits uint64

	// AdaptCM enables heuristic (3): per-partition contention-manager
	// adaptation.
	AdaptCM bool
	// ToArbiterConflictRate: a partition whose lock-conflict aborts per
	// attempt exceed this switches to CMTimestamp arbitration.
	ToArbiterConflictRate float64
	// ToSpinConflictRate: an arbitrated partition whose conflict rate
	// falls below this switches back to CMSpin.
	ToSpinConflictRate float64

	// AdaptTimeBase enables heuristic (4): engine-level commit-clock
	// adaptation. A partitioned workload dominated by update commits moves
	// from the global commit counter to partition-local counters (update
	// commits confined to one partition then perform no shared-counter
	// RMW); it moves back when the cross-partition commit share makes the
	// per-partition bookkeeping a net loss. Like the other probing
	// heuristics, every switch is guarded by a throughput regret check.
	AdaptTimeBase bool
	// ToPartitionLocalUpdates: minimum update commits per epoch (across
	// all partitions) for the partition-local switch to be considered.
	ToPartitionLocalUpdates uint64
	// ToGlobalCrossShare: fraction of update commits that span partitions
	// above which a partition-local engine reverts to the global counter.
	ToGlobalCrossShare float64

	// AdaptSpin enables heuristic (6): per-partition spin-budget
	// adaptation from the waiting discipline's scheduler-cooperation
	// counters (PartStats.Yields/Parks). A partition whose waits routinely
	// escalate past the spin budget into yields and parks is burning its
	// budget without resolutions — on oversubscribed hosts those cycles
	// are stolen from the very lock owners being waited on — so the budget
	// halves. Conversely a partition aborting heavily on lock conflicts
	// while its waits never escalate is giving up on holds a little more
	// patience would survive: the budget doubles.
	AdaptSpin bool
	// ToShrinkYieldShare: fraction of wait cycles that escalated into
	// yields/parks at or above which the spin budget halves.
	ToShrinkYieldShare float64
	// ToGrowLockAbortRate: lock-conflict aborts per attempt at or above
	// which — with waits essentially never escalating — the budget
	// doubles.
	ToGrowLockAbortRate float64
	// MinSpinBudget / MaxSpinBudget bound the adaptation.
	MinSpinBudget int
	MaxSpinBudget int

	// AdaptHorizon enables heuristic (7): engine-level horizon-stall
	// detection for epoch-based reclamation. One long-parked transaction
	// pins the global horizon at its begin stamp; every word freed since
	// then sits in limbo, unreclaimed, engine-wide. The step watches for the
	// same minimum stamp persisting across Hysteresis epochs with the lag
	// (clock ceiling minus horizon) at or above ToHorizonStallLag while
	// limbo is non-empty, and records a decision naming the stall; with
	// HorizonKill set it also kills the pinning transaction
	// (core.Engine.KillHorizonPinner), which costs that reader one attempt
	// and releases the horizon. The decision's reason reports the snapshot
	// stores' HorizonShortfall so a trace shows whether retention growth
	// could instead have served the stalled reader (shortfall 0) or the
	// reader had already outlived every retained version.
	AdaptHorizon bool
	// ToHorizonStallLag is the minimum horizon lag, in commit ticks, for
	// the stall streak to advance.
	ToHorizonStallLag uint64
	// HorizonKill makes a detected stall kill the pinning transaction
	// rather than only recording the decision.
	HorizonKill bool

	// AdaptSnapshot enables heuristic (5): per-partition snapshot-history
	// adaptation for abort-free read-only transactions.
	AdaptSnapshot bool
	// ToSnapshotDemand: unserved snapshot reads per epoch (SnapMisses) at
	// or above which a store is attached — or, with one attached, its
	// capacity doubled.
	ToSnapshotDemand uint64
	// ToSnapshotROShare: alternatively, a partition whose read-only
	// commit share meets this (with update traffic present) gets a store
	// attached pre-emptively, before any snapshot reader starves.
	ToSnapshotROShare float64
	// SnapshotHistCap is the initial store capacity (records) the
	// heuristic installs.
	SnapshotHistCap uint
}

// DefaultConfig returns the tuner defaults used by the experiments.
func DefaultConfig() Config {
	return Config{
		Interval:               50 * time.Millisecond,
		ToVisibleUpdateRatio:   0.25,
		ToVisibleAbortRate:     0.10,
		ToInvisibleUpdateRatio: 0.08,
		ToInvisibleAbortRate:   0.02,
		Hysteresis:             2,
		HillClimb:              true,
		MinLockBits:            4,
		MaxLockBits:            20,
		ImproveFrac:            0.05,
		ProbeEvery:             3,
		MinCommits:             200,
		AdaptCM:                false,
		ToArbiterConflictRate:  0.20,
		ToSpinConflictRate:     0.02,

		AdaptTimeBase:           false,
		ToPartitionLocalUpdates: 1000,
		ToGlobalCrossShare:      0.50,

		AdaptHorizon:      false,
		ToHorizonStallLag: 1024,
		HorizonKill:       false,

		AdaptSnapshot:     false,
		ToSnapshotDemand:  64,
		ToSnapshotROShare: 0.60,
		SnapshotHistCap:   1024,

		AdaptSpin:           false,
		ToShrinkYieldShare:  0.50,
		ToGrowLockAbortRate: 0.10,
		MinSpinBudget:       16,
		MaxSpinBudget:       4096,
	}
}

// Decision records one actuation for the tuning trace (used by the fig4 /
// fig6 experiments and by the adaptive example).
type Decision struct {
	Epoch  int
	Part   core.PartID
	Name   string
	Old    core.PartConfig
	New    core.PartConfig
	Reason string
	// OldTB/NewTB differ when the decision switched the engine's commit
	// time base (an engine-level actuation) rather than one partition's
	// configuration; Part/Old/New are then unused.
	OldTB core.TimeBaseMode
	NewTB core.TimeBaseMode
}

func (d Decision) String() string {
	if d.OldTB != d.NewTB {
		return fmt.Sprintf("epoch %d: engine time base: %s -> %s (%s)",
			d.Epoch, d.OldTB, d.NewTB, d.Reason)
	}
	if d.Name == "engine" {
		// Engine-level decision with no config change to print (e.g. the
		// horizon-stall step): the reason is the whole story.
		return fmt.Sprintf("epoch %d: engine: %s", d.Epoch, d.Reason)
	}
	return fmt.Sprintf("epoch %d: partition %d (%s): %s -> %s (%s)",
		d.Epoch, d.Part, d.Name, d.Old, d.New, d.Reason)
}

// climbState is the hill climber's per-partition state machine.
type climbState int

const (
	climbStable climbState = iota
	climbProbing
)

type partTuneState struct {
	toVisStreak   int
	toInvisStreak int
	skipEpochs    int // cool-down after any reconfiguration

	// Visibility switches are guarded by a regret check: the tuner
	// remembers the pre-switch throughput and the configuration it came
	// from; if the first post-switch epoch is clearly worse, it reverts
	// and backs off from re-probing for visCooldown epochs. The decision
	// inputs (update ratio, abort rate) are necessary but not sufficient
	// conditions — whether visible reads pay depends on transaction
	// shape, which only the throughput reveals.
	visProbing  bool
	visBaseline float64
	visRevertTo core.PartConfig
	visCooldown int

	// CM adaptation mirrors the visibility machinery: streak, probe with
	// regret check, cool-down on revert.
	cmStreak   int
	cmProbing  bool
	cmBaseline float64
	cmRevertTo core.PartConfig
	cmCooldown int

	// Snapshot-history adaptation needs only streaks: attaching, growing
	// or dropping the store does not change the read/write protocol, so
	// there is no regret probe — the cost it weighs (commit-path appends
	// vs. unserved snapshot reads) is captured directly by the decision
	// inputs. snapPrevTrunc remembers the store's cumulative retention-
	// miss reading (mvstore.Stats.TruncMisses) from the previous epoch so
	// the growth step works on deltas; a reading below it means the store
	// was replaced (Reconfigure installs a fresh buffer) and the epoch is
	// treated as starting from zero.
	snapOnStreak   int
	snapGrowStreak int
	snapOffStreak  int
	snapPrevTrunc  uint64
	snapPrevSteals uint64

	// Spin-budget adaptation (heuristic 6) needs only streaks: the budget
	// moves one doubling at a time and the decision inputs (yield share,
	// lock-abort rate) price the trade directly, so there is no regret
	// probe to unwind.
	spinShrinkStreak int
	spinGrowStreak   int

	climb         climbState
	stableEpochs  int
	baseline      float64 // commits per epoch before the probe
	probeDir      int     // +1 or -1 lock bits
	lastGoodDir   int
	probePrevBits uint
}

// Tuner drives per-partition adaptation.
type Tuner struct {
	eng *core.Engine
	cfg Config

	mu    sync.Mutex
	epoch int
	prev  map[core.PartID]core.PartStats
	state map[core.PartID]*partTuneState
	trace []Decision

	// Time-base adaptation state (engine-level, heuristic 4).
	tbStreak    int
	tbProbing   bool
	tbBaseline  float64
	tbCooldown  int
	prevCross   uint64
	prevCrossOK bool // prevCross was read while partition-local

	// Horizon-stall state (engine-level, heuristic 7): the streak only
	// advances while the same minimum stamp keeps pinning the horizon.
	hzStreak    int
	hzLastStamp uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New creates a tuner over eng.
func New(eng *core.Engine, cfg Config) *Tuner {
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 1
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.ToShrinkYieldShare <= 0 {
		cfg.ToShrinkYieldShare = 0.50
	}
	if cfg.ToGrowLockAbortRate <= 0 {
		cfg.ToGrowLockAbortRate = 0.10
	}
	if cfg.MinSpinBudget <= 0 {
		cfg.MinSpinBudget = 16
	}
	if cfg.MaxSpinBudget <= 0 {
		cfg.MaxSpinBudget = 4096
	}
	if cfg.ToHorizonStallLag == 0 {
		cfg.ToHorizonStallLag = 1024
	}
	return &Tuner{
		eng:    eng,
		cfg:    cfg,
		prev:   make(map[core.PartID]core.PartStats),
		state:  make(map[core.PartID]*partTuneState),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Start runs Tick on the configured interval until Stop is called.
func (t *Tuner) Start() {
	go func() {
		defer close(t.doneCh)
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stopCh:
				return
			case <-ticker.C:
				t.Tick()
			}
		}
	}()
}

// Stop terminates the Start loop and waits for it.
func (t *Tuner) Stop() {
	t.stopOnce.Do(func() { close(t.stopCh) })
	<-t.doneCh
}

// Epoch returns the number of Ticks executed.
func (t *Tuner) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Trace returns a copy of all decisions taken so far.
func (t *Tuner) Trace() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, len(t.trace))
	copy(out, t.trace)
	return out
}

// Tick runs one tuning epoch over every partition and returns the
// decisions applied in this epoch.
func (t *Tuner) Tick() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch++
	var applied []Decision
	var total core.PartStats // aggregate delta across partitions
	nparts := 0
	for _, p := range t.eng.Partitions() {
		id := p.ID()
		cur := t.eng.StatsSnapshot(id)
		prev, seen := t.prev[id]
		t.prev[id] = cur
		if !seen {
			continue // need one epoch of history
		}
		nparts++
		delta := cur.Sub(prev)
		total.Commits += delta.Commits
		total.UpdateCommits += delta.UpdateCommits
		st := t.state[id]
		if st == nil {
			st = &partTuneState{}
			t.state[id] = st
		}
		if st.skipEpochs > 0 {
			st.skipEpochs--
			continue
		}
		if delta.Commits < t.cfg.MinCommits {
			st.toVisStreak, st.toInvisStreak = 0, 0
			continue
		}
		if d, ok := t.visibilityStep(p, &delta, st); ok {
			applied = append(applied, d)
			continue
		}
		if t.cfg.AdaptCM {
			if d, ok := t.cmStep(p, &delta, st); ok {
				applied = append(applied, d)
				continue
			}
		}
		if t.cfg.AdaptSnapshot {
			if d, ok := t.snapStep(p, &delta, st); ok {
				applied = append(applied, d)
				continue
			}
		}
		if t.cfg.AdaptSpin {
			if d, ok := t.spinStep(p, &delta, st); ok {
				applied = append(applied, d)
				continue
			}
		}
		if t.cfg.HillClimb {
			if d, ok := t.climbStep(p, &delta, st); ok {
				applied = append(applied, d)
			}
		}
	}
	if t.cfg.AdaptTimeBase {
		if d, ok := t.timeBaseStep(&total, nparts); ok {
			applied = append(applied, d)
		}
	}
	if t.cfg.AdaptHorizon {
		if d, ok := t.horizonStep(); ok {
			applied = append(applied, d)
		}
	}
	t.trace = append(t.trace, applied...)
	return applied
}

// timeBaseStep applies heuristic (4): move a partitioned, update-heavy
// workload onto partition-local commit counters; move back when the
// cross-partition commit share (derived from the epoch counter) erases
// the benefit. Engine-level: there is one time base, not one per
// partition, so this runs once per epoch on the aggregate delta.
func (t *Tuner) timeBaseStep(total *core.PartStats, nparts int) (Decision, bool) {
	mode := t.eng.TimeBaseMode()
	cross := t.eng.ClockStats().CrossCommits
	prevCross, prevOK := t.prevCross, t.prevCrossOK
	t.prevCross = cross
	t.prevCrossOK = mode == core.TimeBasePartitionLocal
	if t.tbCooldown > 0 {
		t.tbCooldown--
		t.tbStreak = 0
		return Decision{}, false
	}
	if total.Commits < t.cfg.MinCommits {
		t.tbStreak = 0
		// An idle epoch right after a switch makes the regret comparison
		// meaningless (the baseline came from a different workload phase):
		// disarm the probe instead of judging the new mode against it
		// later. The cross-share monitor keeps guarding the switch.
		t.tbProbing = false
		return Decision{}, false
	}
	switch mode {
	case core.TimeBaseGlobal:
		if nparts > 1 && total.UpdateCommits >= t.cfg.ToPartitionLocalUpdates {
			t.tbStreak++
		} else {
			t.tbStreak = 0
		}
		if t.tbStreak >= t.cfg.Hysteresis {
			t.tbStreak = 0
			t.tbProbing = true
			t.tbBaseline = float64(total.Commits)
			t.eng.SetTimeBaseMode(core.TimeBasePartitionLocal)
			return Decision{
				Epoch: t.epoch, Name: "engine",
				OldTB: core.TimeBaseGlobal, NewTB: core.TimeBasePartitionLocal,
				Reason: fmt.Sprintf("%d update commits/epoch across %d partitions: partition-local commit clock",
					total.UpdateCommits, nparts),
			}, true
		}
	case core.TimeBasePartitionLocal:
		if t.tbProbing {
			t.tbProbing = false
			if float64(total.Commits) < t.tbBaseline*0.9 {
				t.tbCooldown = 10
				t.eng.SetTimeBaseMode(core.TimeBaseGlobal)
				return Decision{
					Epoch: t.epoch, Name: "engine",
					OldTB: core.TimeBasePartitionLocal, NewTB: core.TimeBaseGlobal,
					Reason: fmt.Sprintf("partition-local clock regressed throughput (%.0f vs %.0f commits/epoch): revert",
						float64(total.Commits), t.tbBaseline),
				}, true
			}
		}
		if prevOK && total.UpdateCommits > 0 {
			crossShare := float64(cross-prevCross) / float64(total.UpdateCommits)
			if crossShare >= t.cfg.ToGlobalCrossShare {
				t.tbStreak++
			} else {
				t.tbStreak = 0
			}
			if t.tbStreak >= t.cfg.Hysteresis {
				t.tbStreak = 0
				// Structural revert: the update-heavy condition that admits
				// partition-local still holds, and the cross-partition share
				// is invisible from global mode — park the heuristic for a
				// long cool-down so it does not oscillate.
				t.tbCooldown = 50
				t.eng.SetTimeBaseMode(core.TimeBaseGlobal)
				return Decision{
					Epoch: t.epoch, Name: "engine",
					OldTB: core.TimeBasePartitionLocal, NewTB: core.TimeBaseGlobal,
					Reason: fmt.Sprintf("cross-partition commit share %.2f: global commit clock", crossShare),
				}, true
			}
		}
	}
	return Decision{}, false
}

// horizonStep applies heuristic (7): detect a stalled reclamation horizon
// — the same long-lived reader pinning the global minimum begin stamp
// across consecutive epochs while retired words sit in limbo — and, with
// HorizonKill set, kill that transaction so reclamation can proceed.
// Engine-level, like the time-base step: there is one horizon. The reason
// string reports the worst snapshot-store HorizonShortfall across
// partitions: 0 means the stalled reader's snapshot was still servable
// (retention growth could have helped); positive means the reader had
// outlived every retained version and unpinning was the only cure.
func (t *Tuner) horizonStep() (Decision, bool) {
	rs := t.eng.ReclaimStats()
	stamp := rs.Horizon
	stalled := stamp != core.HorizonIdle &&
		rs.HorizonLag >= t.cfg.ToHorizonStallLag &&
		rs.LimboWords > 0 &&
		stamp == t.hzLastStamp
	t.hzLastStamp = stamp
	if !stalled {
		t.hzStreak = 0
		return Decision{}, false
	}
	t.hzStreak++
	if t.hzStreak < t.cfg.Hysteresis {
		return Decision{}, false
	}
	t.hzStreak = 0
	var shortfall uint64
	for _, p := range t.eng.Partitions() {
		if s := t.eng.SnapshotHistory(p.ID()).HorizonShortfall(stamp); s > shortfall {
			shortfall = s
		}
	}
	action := "flagged"
	if t.cfg.HorizonKill {
		if _, ok := t.eng.KillHorizonPinner(); ok {
			action = "killed pinning transaction"
		}
	}
	return Decision{
		Epoch: t.epoch, Name: "engine",
		Reason: fmt.Sprintf("horizon stall: stamp %d lagging ceiling by %d ticks, %d words in limbo, snapshot shortfall %d: %s",
			stamp, rs.HorizonLag, rs.LimboWords, shortfall, action),
	}, true
}

// visibilityStep applies heuristic (1); returns the decision if one fired.
func (t *Tuner) visibilityStep(p *core.Partition, d *core.PartStats, st *partTuneState) (Decision, bool) {
	cfg := p.Config()
	ur, ar := d.UpdateRatio(), d.AbortRate()

	// Regret check for an in-flight visible probe: keep it only if it did
	// not cost throughput.
	if st.visProbing {
		st.visProbing = false
		if float64(d.Commits) < st.visBaseline*0.9 {
			st.visCooldown = 10
			return t.apply(p, cfg, st.visRevertTo, st,
				fmt.Sprintf("visible reads regressed throughput (%.0f vs %.0f commits/epoch): revert",
					float64(d.Commits), st.visBaseline))
		}
		// Accepted; fall through so the switch-back rule still applies.
	}
	if st.visCooldown > 0 {
		st.visCooldown--
		st.toVisStreak = 0
	}

	switch cfg.Read {
	case core.InvisibleReads:
		if st.visCooldown == 0 && ur >= t.cfg.ToVisibleUpdateRatio && ar >= t.cfg.ToVisibleAbortRate {
			st.toVisStreak++
		} else {
			st.toVisStreak = 0
		}
		if st.toVisStreak >= t.cfg.Hysteresis {
			newCfg := cfg
			newCfg.Read = core.VisibleReads
			// The aborts we are remedying are update transactions dying on
			// validation; reader priority is what protects them once their
			// reads are visible.
			newCfg.ReaderCM = core.WriterYieldsToReaders
			st.visProbing = true
			st.visBaseline = float64(d.Commits)
			st.visRevertTo = cfg
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("update ratio %.2f, abort rate %.2f: switch to visible reads", ur, ar))
		}
	case core.VisibleReads:
		if ur <= t.cfg.ToInvisibleUpdateRatio || ar <= t.cfg.ToInvisibleAbortRate {
			st.toInvisStreak++
		} else {
			st.toInvisStreak = 0
		}
		if st.toInvisStreak >= t.cfg.Hysteresis {
			newCfg := cfg
			newCfg.Read = core.InvisibleReads
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("update ratio %.2f, abort rate %.2f: switch to invisible reads", ur, ar))
		}
	}
	return Decision{}, false
}

// cmStep applies heuristic (3): switch the partition's contention manager
// between bounded spinning and older-wins arbitration based on the
// lock-conflict abort rate, guarded by a throughput regret check.
func (t *Tuner) cmStep(p *core.Partition, d *core.PartStats, st *partTuneState) (Decision, bool) {
	cfg := p.Config()
	attempts := d.Commits + d.TotalAborts()
	if attempts == 0 {
		return Decision{}, false
	}
	conflictRate := float64(d.Aborts[core.AbortLockedOnRead]+d.Aborts[core.AbortLockedOnWrite]) /
		float64(attempts)

	// Regret check for an in-flight CM probe.
	if st.cmProbing {
		st.cmProbing = false
		if float64(d.Commits) < st.cmBaseline*0.9 {
			st.cmCooldown = 10
			return t.apply(p, cfg, st.cmRevertTo, st,
				fmt.Sprintf("CM change regressed throughput (%.0f vs %.0f commits/epoch): revert",
					float64(d.Commits), st.cmBaseline))
		}
	}
	if st.cmCooldown > 0 {
		st.cmCooldown--
		st.cmStreak = 0
		return Decision{}, false
	}

	switch cfg.CM {
	case core.CMTimestamp:
		if conflictRate <= t.cfg.ToSpinConflictRate {
			st.cmStreak++
		} else {
			st.cmStreak = 0
		}
		if st.cmStreak >= t.cfg.Hysteresis {
			newCfg := cfg
			newCfg.CM = core.CMSpin
			st.cmStreak = 0
			st.cmProbing = true
			st.cmBaseline = float64(d.Commits)
			st.cmRevertTo = cfg
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("conflict rate %.2f: arbitration no longer needed, back to spin", conflictRate))
		}
	default:
		if conflictRate >= t.cfg.ToArbiterConflictRate {
			st.cmStreak++
		} else {
			st.cmStreak = 0
		}
		if st.cmStreak >= t.cfg.Hysteresis {
			newCfg := cfg
			newCfg.CM = core.CMTimestamp
			st.cmStreak = 0
			st.cmProbing = true
			st.cmBaseline = float64(d.Commits)
			st.cmRevertTo = cfg
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("conflict rate %.2f: switch to older-wins arbitration", conflictRate))
		}
	}
	return Decision{}, false
}

// snapStep applies heuristic (5). Attachment keys primarily on unserved
// snapshot demand (SnapMisses): snapshot readers starving under writers
// barely commit, so a commit-share trigger alone would never see them —
// their misses are the honest signal. A read-dominated commit mix under
// update traffic attaches pre-emptively. With a store attached,
// persistent misses double its capacity (retention growth); a partition
// whose snapshot demand has dried up while updates keep paying the
// append drops the store.
func (t *Tuner) snapStep(p *core.Partition, d *core.PartStats, st *partTuneState) (Decision, bool) {
	cfg := p.Config()
	demand := d.SnapHits + d.SnapMisses
	if cfg.HistCap == 0 {
		roHeavy := false
		if d.Commits > 0 {
			roShare := float64(d.ROCommits) / float64(d.Commits)
			roHeavy = roShare >= t.cfg.ToSnapshotROShare && d.UpdateCommits > 0
		}
		if d.SnapMisses >= t.cfg.ToSnapshotDemand || roHeavy {
			st.snapOnStreak++
		} else {
			st.snapOnStreak = 0
		}
		if st.snapOnStreak >= t.cfg.Hysteresis {
			st.snapOnStreak = 0
			newCfg := cfg
			newCfg.HistCap = t.cfg.SnapshotHistCap
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("%d unserved snapshot reads/epoch: attach snapshot store (%d records)",
					d.SnapMisses, t.cfg.SnapshotHistCap))
		}
		return Decision{}, false
	}
	// Retention growth: with a store attached and retention sufficient,
	// steady-state retention misses are exactly zero (that is the
	// design's whole point), so ANY persistent one means records are
	// being evicted faster than readers consume them — and an undersized
	// ring throttles its own miss count (readers abort early and back
	// off), so a volume threshold like the attach condition would never
	// fire. The store's own lookup statistics say precisely which misses
	// capacity can cure: TruncMisses counts lookups that died on an
	// evicted chain link (retention shortfall), as opposed to lookups for
	// addresses with no recorded history or snapshots outside the
	// recorded span, which no amount of ring would serve. Key growth on
	// that delta — SnapMisses alone (the engine-side fallback count)
	// conflates the two and over-grows on cold stores. Double the ring
	// (Normalize clamps the ceiling; stop proposing once pinned there).
	// Hysteresis filters the transient misses right after attach, when
	// stale orecs still predate the store.
	hist := t.eng.SnapshotHistory(p.ID())
	prevTrunc, prevSteals := st.snapPrevTrunc, st.snapPrevSteals
	st.snapPrevTrunc, st.snapPrevSteals = hist.TruncMisses, hist.Steals
	if hist.TruncMisses < prevTrunc || hist.Steals < prevSteals {
		prevTrunc, prevSteals = 0, 0 // fresh buffer since last epoch (store was replaced)
	}
	truncDelta := hist.TruncMisses - prevTrunc
	stealsDelta := hist.Steals - prevSteals
	// Steals (index entries reclaimed because the appended address set
	// outgrew the index) are also capacity-curable, but only matter when
	// readers actually missed this epoch — write-only churn over a huge
	// address universe steals constantly and growing for it would buy
	// nothing.
	if truncDelta > 0 || (stealsDelta > 0 && d.SnapMisses > 0) {
		st.snapGrowStreak++
	} else {
		st.snapGrowStreak = 0
	}
	if st.snapGrowStreak >= t.cfg.Hysteresis {
		st.snapGrowStreak = 0
		newCfg := cfg
		newCfg.HistCap = cfg.HistCap * 2
		if grown := newCfg.Normalize(); grown.HistCap > cfg.HistCap {
			depth := float64(0)
			if hist.Hits > 0 {
				depth = float64(hist.ChainSteps) / float64(hist.Hits)
			}
			return t.apply(p, cfg, newCfg, st,
				fmt.Sprintf("%d retention misses/epoch despite store (chain depth %.1f/hit): grow retention %d -> %d records",
					truncDelta, depth, cfg.HistCap, grown.HistCap))
		}
	}
	if demand == 0 && d.UpdateCommits > 0 {
		st.snapOffStreak++
	} else {
		st.snapOffStreak = 0
	}
	if st.snapOffStreak >= t.cfg.Hysteresis {
		st.snapOffStreak = 0
		newCfg := cfg
		newCfg.HistCap = 0
		return t.apply(p, cfg, newCfg, st, "no snapshot demand under update traffic: drop snapshot store")
	}
	return Decision{}, false
}

// spinStep applies heuristic (6): adapt the partition's SpinBudget to
// the observed waiting discipline. The engine's wait loops escalate from
// on-CPU spinning (within the budget) to scheduler yields and parks
// (past it), counting each phase separately — so the ratio of escalated
// waits to total wait cycles says directly whether the budget is doing
// its job. Waits that mostly escalate mean the budget buys no
// resolutions and its cycles are better handed to the scheduler: halve
// it. Lock-conflict aborts dominating while waits essentially never
// escalate mean transactions are giving up on holds that a little more
// on-CPU patience would survive: double it. Both directions hold for
// Hysteresis consecutive epochs before acting and are clamped to
// [MinSpinBudget, MaxSpinBudget].
func (t *Tuner) spinStep(p *core.Partition, d *core.PartStats, st *partTuneState) (Decision, bool) {
	cfg := p.Config()
	esc := d.Yields + d.Parks
	var escShare float64
	if d.WaitCycles > 0 {
		escShare = float64(esc) / float64(d.WaitCycles)
	}
	if d.WaitCycles > 0 && escShare >= t.cfg.ToShrinkYieldShare && cfg.SpinBudget/2 >= t.cfg.MinSpinBudget {
		st.spinShrinkStreak++
	} else {
		st.spinShrinkStreak = 0
	}
	if st.spinShrinkStreak >= t.cfg.Hysteresis {
		st.spinShrinkStreak = 0
		newCfg := cfg
		newCfg.SpinBudget = cfg.SpinBudget / 2
		return t.apply(p, cfg, newCfg, st,
			fmt.Sprintf("%.0f%% of waits escalate to the scheduler (%d yields, %d parks): halve spin budget %d -> %d",
				escShare*100, d.Yields, d.Parks, cfg.SpinBudget, newCfg.SpinBudget))
	}

	attempts := d.Commits + d.TotalAborts()
	lockAborts := d.Aborts[core.AbortLockedOnRead] + d.Aborts[core.AbortLockedOnWrite]
	lockRate := float64(0)
	if attempts > 0 {
		lockRate = float64(lockAborts) / float64(attempts)
	}
	if lockRate >= t.cfg.ToGrowLockAbortRate && escShare < t.cfg.ToShrinkYieldShare/8 &&
		cfg.SpinBudget*2 <= t.cfg.MaxSpinBudget {
		st.spinGrowStreak++
	} else {
		st.spinGrowStreak = 0
	}
	if st.spinGrowStreak >= t.cfg.Hysteresis {
		st.spinGrowStreak = 0
		newCfg := cfg
		newCfg.SpinBudget = cfg.SpinBudget * 2
		return t.apply(p, cfg, newCfg, st,
			fmt.Sprintf("lock-abort rate %.2f with non-escalating waits: double spin budget %d -> %d",
				lockRate, cfg.SpinBudget, newCfg.SpinBudget))
	}
	return Decision{}, false
}

// climbStep applies heuristic (2): probe LockBits and keep improvements.
func (t *Tuner) climbStep(p *core.Partition, d *core.PartStats, st *partTuneState) (Decision, bool) {
	cfg := p.Config()
	throughput := float64(d.Commits)
	switch st.climb {
	case climbStable:
		st.stableEpochs++
		st.baseline = throughput
		if st.stableEpochs < t.cfg.ProbeEvery {
			return Decision{}, false
		}
		st.stableEpochs = 0
		dir := st.lastGoodDir
		if dir == 0 {
			// First probe: grow the table when lock conflicts dominate,
			// otherwise try shrinking (smaller tables are cache-friendlier).
			if d.Aborts[core.AbortLockedOnWrite]+d.Aborts[core.AbortLockedOnRead] > d.Commits/20 {
				dir = +1
			} else {
				dir = -1
			}
		}
		bits := int(cfg.LockBits) + dir
		if bits < int(t.cfg.MinLockBits) || bits > int(t.cfg.MaxLockBits) {
			dir = -dir
			bits = int(cfg.LockBits) + dir
			if bits < int(t.cfg.MinLockBits) || bits > int(t.cfg.MaxLockBits) {
				return Decision{}, false
			}
		}
		newCfg := cfg
		newCfg.LockBits = uint(bits)
		st.climb = climbProbing
		st.probeDir = dir
		st.probePrevBits = cfg.LockBits
		return t.apply(p, cfg, newCfg, st,
			fmt.Sprintf("probe lockBits %d -> %d", cfg.LockBits, bits))
	case climbProbing:
		st.climb = climbStable
		st.stableEpochs = 0
		if throughput >= st.baseline*(1+t.cfg.ImproveFrac) {
			st.lastGoodDir = st.probeDir // accept; keep climbing this way
			st.baseline = throughput
			return Decision{}, false
		}
		st.lastGoodDir = -st.probeDir // revert and try the other way later
		newCfg := cfg
		newCfg.LockBits = st.probePrevBits
		return t.apply(p, cfg, newCfg, st,
			fmt.Sprintf("revert lockBits %d -> %d (%.0f vs baseline %.0f commits/epoch)",
				cfg.LockBits, st.probePrevBits, throughput, st.baseline))
	}
	return Decision{}, false
}

func (t *Tuner) apply(p *core.Partition, old, new core.PartConfig, st *partTuneState, reason string) (Decision, bool) {
	if err := t.eng.Reconfigure(p.ID(), new); err != nil {
		return Decision{}, false
	}
	st.skipEpochs = 1 // let one epoch of fresh stats accumulate
	st.toVisStreak, st.toInvisStreak = 0, 0
	d := Decision{
		Epoch:  t.epoch,
		Part:   p.ID(),
		Name:   p.Name(),
		Old:    old,
		New:    new.Normalize(),
		Reason: reason,
	}
	return d, true
}
