package epoch

import (
	"sync"
	"testing"
	"unsafe"
)

func TestNewTableIdle(t *testing.T) {
	tb := New()
	if h := tb.Horizon(); h != Idle {
		t.Fatalf("fresh table horizon = %d, want Idle", h)
	}
	if i, s := tb.MinSlot(); i != -1 || s != Idle {
		t.Fatalf("fresh table MinSlot = (%d, %d), want (-1, Idle)", i, s)
	}
	for i := 0; i < Slots; i++ {
		if s := tb.Load(i); s != Idle {
			t.Fatalf("slot %d = %d, want Idle", i, s)
		}
	}
}

func TestHorizonMinimum(t *testing.T) {
	tb := New()
	tb.Publish(3, 100)
	tb.Publish(17, 42)
	tb.Publish(63, 7000)
	if h := tb.Horizon(); h != 42 {
		t.Fatalf("horizon = %d, want 42", h)
	}
	if i, s := tb.MinSlot(); i != 17 || s != 42 {
		t.Fatalf("MinSlot = (%d, %d), want (17, 42)", i, s)
	}
	tb.Clear(17)
	if h := tb.Horizon(); h != 100 {
		t.Fatalf("horizon after clear = %d, want 100", h)
	}
	tb.Clear(3)
	tb.Clear(63)
	if h := tb.Horizon(); h != Idle {
		t.Fatalf("horizon after all clears = %d, want Idle", h)
	}
}

func TestPublishOverwrite(t *testing.T) {
	tb := New()
	tb.Publish(0, 5)
	tb.Publish(0, 9) // a new attempt on the same slot republishes
	if h := tb.Horizon(); h != 9 {
		t.Fatalf("horizon = %d, want 9", h)
	}
}

// TestSlotPadding pins the cache-line layout the package promises: each
// slot occupies exactly one 64-byte line, so a thread's publish never
// invalidates a neighbour's.
func TestSlotPadding(t *testing.T) {
	if sz := unsafe.Sizeof(slot{}); sz != 64 {
		t.Fatalf("slot size = %d bytes, want 64", sz)
	}
	if sz := unsafe.Sizeof(Table{}); sz != 64*Slots {
		t.Fatalf("table size = %d bytes, want %d", sz, 64*Slots)
	}
}

// TestConcurrentSweep runs publishers against horizon sweeps under the
// race detector: the sweep must never observe a value below the smallest
// stamp any publisher ever wrote.
func TestConcurrentSweep(t *testing.T) {
	tb := New()
	const lowest = 10
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(slotIdx int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tb.Publish(slotIdx, uint64(lowest+i%100))
				tb.Clear(slotIdx)
			}
		}(w)
	}
	for i := 0; i < 10000; i++ {
		if h := tb.Horizon(); h < lowest {
			t.Errorf("horizon %d below lowest published stamp %d", h, lowest)
			break
		}
	}
	close(stop)
	wg.Wait()
}
