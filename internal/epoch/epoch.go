// Package epoch implements the published-reader epoch table behind the
// engine's memory-reclamation horizon.
//
// The paper's STM derives all consistency from a scalable time base; this
// package extends the same idea to storage reclamation. Every transaction,
// at begin, publishes a stamp — a commit-clock ceiling sample taken before
// the transaction bases any read on the clock — into a slot of a fixed
// 64-entry table (one slot per engine thread slot, matching the
// reader-bitmap bound), and clears it when the attempt finishes, commit or
// abort alike. The table's minimum over live slots is the global horizon:
// a lower bound on "how old can a live reader be", expressed on the commit
// timeline.
//
// The reclamation contract, mode-independent across both time bases:
//
//   - A freeing commit retires an object with a stamp R sampled from the
//     clock ceiling AFTER the commit published its write versions (so the
//     unlink that made the object unreachable is at or below R on every
//     timeline).
//   - A transaction publishes its stamp B (a ceiling sample) BEFORE
//     sampling any snapshot, so every snapshot it ever reads at is taken
//     after B was visible to horizon sweeps.
//   - An object retired at R may be recycled once Horizon() > R: every
//     live reader then has B > R, which (ceilings are monotone) means it
//     sampled B after the freeing commit completed — so each of its
//     snapshots postdates the unlink and can never reach the object, not
//     even through multi-version reconstruction, which only rebuilds
//     values as of the (later) snapshot.
//
// Slots are cache-line padded: a slot is written only by its owning thread
// (twice per transaction) and read by horizon sweeps, so publication never
// bounces another thread's hot line.
package epoch

import "sync/atomic"

// Slots is the table size; it equals the engine's thread-slot bound
// (core.MaxThreads), so a thread's slot index addresses its epoch slot.
const Slots = 64

// Idle is the stamp of a slot with no live transaction. It is the maximum
// uint64, so the minimum sweep needs no liveness special-casing: an idle
// slot can never be the minimum unless every slot is idle — and a real
// stamp (a clock ceiling) never reaches it. Horizon() == Idle therefore
// means "no live reader: everything retired is reclaimable".
const Idle = ^uint64(0)

// slot is one thread's published stamp, padded to a cache line.
type slot struct {
	stamp atomic.Uint64
	_     [56]byte
}

// Table is the 64-slot epoch table. The zero value is NOT ready to use
// (all-zero stamps would pin the horizon at 0 forever); create with New.
type Table struct {
	slots [Slots]slot
}

// New returns a table with every slot idle.
func New() *Table {
	t := &Table{}
	for i := range t.slots {
		t.slots[i].stamp.Store(Idle)
	}
	return t
}

// Publish records stamp as slot i's live-transaction stamp. Only the
// owning thread may call it, and it must do so before the transaction
// samples any snapshot (see the package comment's ordering contract).
func (t *Table) Publish(i int, stamp uint64) {
	t.slots[i].stamp.Store(stamp)
}

// Clear marks slot i idle. Called by the owning thread when its attempt
// finishes, and defensively by pool return / thread detach so a parked or
// recycled slot can never strand a stale stamp and stall the horizon.
func (t *Table) Clear(i int) {
	t.slots[i].stamp.Store(Idle)
}

// Load returns slot i's current stamp (Idle when no transaction is live).
func (t *Table) Load(i int) uint64 {
	return t.slots[i].stamp.Load()
}

// Horizon sweeps the table once and returns the minimum published stamp —
// Idle when no transaction is live anywhere. Memory retired at stamp R is
// reclaimable exactly when Horizon() > R.
func (t *Table) Horizon() uint64 {
	min := uint64(Idle)
	for i := range t.slots {
		if s := t.slots[i].stamp.Load(); s < min {
			min = s
		}
	}
	return min
}

// MinSlot returns the slot index holding the minimum stamp and that stamp,
// or (-1, Idle) when every slot is idle. The tuner's horizon-stall
// mitigation uses it to identify the transaction pinning the horizon.
func (t *Table) MinSlot() (int, uint64) {
	min := uint64(Idle)
	idx := -1
	for i := range t.slots {
		if s := t.slots[i].stamp.Load(); s < min {
			min = s
			idx = i
		}
	}
	return idx, min
}
