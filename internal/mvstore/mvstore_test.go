package mvstore

import (
	"sync"
	"testing"
)

func TestReadAtIntervalSemantics(t *testing.T) {
	b := New(16)
	// addr 7 was overwritten twice: value 10 held on [1,5), value 20 on
	// [5,9). Records chain through orec versions.
	b.Append(7, 10, 1, 5)
	b.Append(7, 20, 5, 9)
	cases := []struct {
		at   uint64
		want uint64
		ok   bool
	}{
		{0, 0, false}, // before the oldest record's interval
		{1, 10, true},
		{4, 10, true},
		{5, 20, true},
		{8, 20, true},
		{9, 0, false}, // at/after the newest overwrite: read memory instead
	}
	for _, c := range cases {
		got, ok := b.ReadAt(7, c.at)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("ReadAt(7, %d) = %d, %v; want %d, %v", c.at, got, ok, c.want, c.ok)
		}
	}
	if _, ok := b.ReadAt(8, 3); ok {
		t.Fatal("ReadAt hit on an address never recorded")
	}
}

func TestEvictionTurnsHitIntoMiss(t *testing.T) {
	b := New(8)
	if b.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", b.Cap())
	}
	b.Append(1, 42, 1, 3)
	for i := 0; i < b.Cap(); i++ {
		b.Append(100+uint64(i), 0, 3, 4)
	}
	if _, ok := b.ReadAt(1, 2); ok {
		t.Fatal("evicted record still readable")
	}
	st := b.Stats()
	if st.Appends != uint64(b.Cap())+1 || st.Live != b.Cap() {
		t.Fatalf("stats = %+v", st)
	}
	if st.OldestVersion != 4 || st.NewestVersion != 4 {
		t.Fatalf("version span = [%d,%d], want [4,4]", st.OldestVersion, st.NewestVersion)
	}
}

func TestCapacityRounding(t *testing.T) {
	if c := New(0).Cap(); c != 8 {
		t.Fatalf("New(0).Cap() = %d, want 8", c)
	}
	if c := New(9).Cap(); c != 16 {
		t.Fatalf("New(9).Cap() = %d, want 16", c)
	}
	if c := New(1024).Cap(); c != 1024 {
		t.Fatalf("New(1024).Cap() = %d, want 1024", c)
	}
}

// TestConcurrentAppendRead hammers a small ring from several appenders
// while readers continuously probe; under -race this checks the seqlock
// publication, and every hit must return a value consistent with the
// interval invariant encoded in the appended records (value == interval
// start, by construction below).
func TestConcurrentAppendRead(t *testing.T) {
	b := New(64)
	const (
		writers = 4
		perW    = 5000
		readers = 2
	)
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			at := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				at++
				for addr := uint64(0); addr < 4; addr++ {
					if v, ok := b.ReadAt(addr, at%1000); ok {
						// By construction every record for addr has
						// val == prevVer, so a hit at S must return a
						// value <= S (the interval starts at val).
						if v > at%1000 {
							t.Errorf("ReadAt(%d, %d) = %d: interval violated", addr, at%1000, v)
							return
						}
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 1; i <= perW; i++ {
				ver := uint64(i)
				b.Append(uint64(w), ver, ver, ver+1)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}
