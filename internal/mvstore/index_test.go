package mvstore

import (
	"sync"
	"testing"
	"time"
)

// TestChainWalkDepth builds a deep chain for one address among unrelated
// traffic and checks hits at every depth, plus the depth/hit statistics.
func TestChainWalkDepth(t *testing.T) {
	b := New(64)
	// addr 3: value v held on [v, v+1) for v = 1..8, interleaved with
	// records for other addresses so chain links are non-adjacent in the
	// ring.
	for v := uint64(1); v <= 8; v++ {
		b.Append(3, v, v, v+1)
		b.Append(100+v, 0, v, v+1)
	}
	for v := uint64(1); v <= 8; v++ {
		got, ok := b.ReadAt(3, v)
		if !ok || got != v {
			t.Fatalf("ReadAt(3, %d) = %d, %v; want %d, true", v, got, ok, v)
		}
	}
	if _, ok := b.ReadAt(3, 9); ok {
		t.Fatal("hit at/after the newest overwrite; memory is authoritative there")
	}
	if _, ok := b.ReadAt(3, 0); ok {
		t.Fatal("hit before the oldest interval")
	}
	st := b.Stats()
	if st.Hits != 8 {
		t.Fatalf("Hits = %d, want 8", st.Hits)
	}
	if st.Probes != 10 {
		t.Fatalf("Probes = %d, want 10", st.Probes)
	}
	// Reading at v walks from the newest record (v=8) down to v: 8-v
	// chain steps; summed over v=1..8 that is 0+1+...+7 = 28. The two
	// misses add none (O(1) each: one is answered at the newest record,
	// the other walks to the chain bottom — 7 steps).
	if st.ChainSteps < 28 {
		t.Fatalf("ChainSteps = %d, want >= 28", st.ChainSteps)
	}
	if st.TruncMisses != 0 {
		t.Fatalf("TruncMisses = %d, want 0 (nothing evicted)", st.TruncMisses)
	}
}

// TestEvictionIsRetentionMiss checks that a chain cut by ring eviction is
// counted as a retention miss (the signal the tuner grows capacity on),
// while an address with no history at all is a plain miss.
func TestEvictionIsRetentionMiss(t *testing.T) {
	b := New(8)
	b.Append(1, 42, 1, 3)
	for i := 0; i < b.Cap(); i++ {
		b.Append(100+uint64(i), 0, 3, 4)
	}
	if _, ok := b.ReadAt(1, 2); ok {
		t.Fatal("evicted record still readable")
	}
	if _, ok := b.ReadAt(999999, 2); ok {
		t.Fatal("hit on an address never appended")
	}
	st := b.Stats()
	if st.TruncMisses != 1 {
		t.Fatalf("TruncMisses = %d, want 1 (only the evicted chain counts)", st.TruncMisses)
	}
	if st.Probes != 2 || st.Hits != 0 {
		t.Fatalf("Probes/Hits = %d/%d, want 2/0", st.Probes, st.Hits)
	}
}

// TestIndexStealSafety drives far more distinct addresses through a tiny
// buffer than its index can hold, forcing entry steals, and checks that
// every lookup is either a correct hit (records encode val == interval
// start) or a miss — never a wrong value.
func TestIndexStealSafety(t *testing.T) {
	b := New(8) // 8 ring slots, 16 index entries, addresses ≫ both
	const addrs = 4096
	for a := uint64(0); a < addrs; a++ {
		b.Append(a, a, a, a+1)
	}
	hits := 0
	for a := uint64(0); a < addrs; a++ {
		if v, ok := b.ReadAt(a, a); ok {
			if v != a {
				t.Fatalf("ReadAt(%d, %d) = %d: wrong value through stolen index", a, a, v)
			}
			hits++
		}
	}
	// The last few appended records are still live and should generally
	// be reachable; everything older must miss. Require at least one hit
	// so the test would notice the index degenerating to all-miss.
	if hits == 0 {
		t.Fatal("no hits at all: index unusable after steals")
	}
	if hits > b.Cap() {
		t.Fatalf("%d hits from a %d-record ring", hits, b.Cap())
	}
}

// TestCapacityClamp pins the New round-up fix: a huge capacity used to
// overflow the power-of-two loop into an infinite spin; it must clamp to
// MaxCap instead. Negative capacities get the minimum ring.
func TestCapacityClamp(t *testing.T) {
	done := make(chan int, 1)
	go func() { done <- New(1 << 62).Cap() }()
	select {
	case c := <-done:
		if c != MaxCap {
			t.Fatalf("New(1<<62).Cap() = %d, want %d", c, MaxCap)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("New(1<<62) hung: capacity round-up overflow")
	}
	if c := New(-5).Cap(); c != minCap {
		t.Fatalf("New(-5).Cap() = %d, want %d", c, minCap)
	}
	if c := New(MaxCap).Cap(); c != MaxCap {
		t.Fatalf("New(MaxCap).Cap() = %d, want %d", c, MaxCap)
	}
}

// TestAppendBatch checks the batched publish: records land with correct
// chains (per-address lookups behave exactly as with singular appends)
// and the head advances by the batch size in one step.
func TestAppendBatch(t *testing.T) {
	b := New(16)
	b.Append(7, 10, 1, 5)
	b.AppendBatch([]Record{
		{Addr: 7, Val: 20, PrevVer: 5, NewVer: 9},
		{Addr: 8, Val: 30, PrevVer: 2, NewVer: 9},
	})
	if got := b.Head(); got != 3 {
		t.Fatalf("Head = %d, want 3", got)
	}
	cases := []struct {
		addr, at, want uint64
		ok             bool
	}{
		{7, 4, 10, true},
		{7, 6, 20, true},
		{8, 3, 30, true},
		{8, 9, 0, false},
	}
	for _, c := range cases {
		got, ok := b.ReadAt(c.addr, c.at)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("ReadAt(%d, %d) = %d, %v; want %d, %v", c.addr, c.at, got, ok, c.want, c.ok)
		}
	}
	b.AppendBatch(nil) // no-op
	if got := b.Head(); got != 3 {
		t.Fatalf("Head after empty batch = %d, want 3", got)
	}
}

// TestConcurrentChainedAppendRead hammers a tiny ring with writers that
// all append to the same few addresses — building chains that wrap and
// evict continuously — while readers walk them. Hits must satisfy the
// interval invariant (val == interval start <= snapshot); everything else
// must be a clean miss. Run with -race this exercises the seqlock, the
// index CASes and the chain-walk validation under maximum churn.
func TestConcurrentChainedAppendRead(t *testing.T) {
	b := New(16) // small: constant wrap + eviction
	const (
		writers = 4
		perW    = 3000
		readers = 3
		addrs   = 4
	)
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			at := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				at++
				for a := uint64(0); a < addrs; a++ {
					if v, ok := b.ReadAt(a, at%1000); ok {
						if v > at%1000 {
							t.Errorf("ReadAt(%d, %d) = %d: interval violated", a, at%1000, v)
							return
						}
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 1; i <= perW; i++ {
				ver := uint64(i)
				// All writers share the address space: same-address
				// appends race (the engine serializes them; the store
				// must merely stay safe and miss-only under the race).
				b.Append(uint64((w+i)%addrs), ver, ver, ver+1)
				if i%64 == 0 {
					b.AppendBatch([]Record{
						{Addr: uint64(i % addrs), Val: ver, PrevVer: ver, NewVer: ver + 1},
						{Addr: uint64((i + 1) % addrs), Val: ver, PrevVer: ver, NewVer: ver + 1},
					})
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	st := b.Stats()
	if st.Appends == 0 || st.Live == 0 {
		t.Fatalf("stats after torture: %+v", st)
	}
}

// TestReadAtMissCostFlat is the O(1)-miss acceptance check in test form:
// the cost of a retention miss (the stale-scan path) must not scale with
// the ring capacity. It measures a fixed working set of evicted addresses
// against HistCap 64 and 4096 and requires the per-miss cost ratio to
// stay under 2x — the linear ring scan this replaces measured ~64x here.
func TestReadAtMissCostFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const probeAddrs = 64
	build := func(capacity int) *Buffer {
		b := New(capacity)
		// History for the probed addresses...
		for a := uint64(0); a < probeAddrs; a++ {
			b.Append(a, 1, 1, 2)
		}
		// ...evicted by a full ring of unrelated records.
		for i := 0; i < capacity; i++ {
			b.Append(1<<20+uint64(i), 2, 2, 3)
		}
		return b
	}
	measure := func(b *Buffer) time.Duration {
		const iters = 1 << 19
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, ok := b.ReadAt(uint64(i%probeAddrs), 1); ok {
				t.Fatal("expected a miss: record was evicted")
			}
		}
		return time.Since(start)
	}
	small, large := build(64), build(4096)
	measure(small) // warm both paths before timing
	measure(large)
	var bestS, bestL time.Duration
	for i := 0; i < 5; i++ {
		if d := measure(small); i == 0 || d < bestS {
			bestS = d
		}
		if d := measure(large); i == 0 || d < bestL {
			bestL = d
		}
	}
	ratio := float64(bestL) / float64(bestS)
	t.Logf("miss cost: hist=64 %v, hist=4096 %v (ratio %.2f)", bestS, bestL, ratio)
	if ratio > 2.0 {
		t.Fatalf("miss cost scaled with capacity: hist=64 %v vs hist=4096 %v (%.1fx, want <= 2x)",
			bestS, bestL, ratio)
	}
}
