// Package mvstore implements the multi-version snapshot store: a bounded,
// per-partition ring buffer of recently overwritten values that lets
// read-only transactions in snapshot mode (Tx under SnapshotAtomic) read
// a consistent past state instead of extending their snapshot or aborting
// when a writer commits under them — the LSA-style payoff of keeping a
// few recent committed versions around.
//
// # Records
//
// Every committing update transaction appends one record per written
// address, while all write locks are held and before any is released:
//
//	(addr, prevValue, prevVersion, newVersion)
//
// prevValue is the committed value the commit overwrote, prevVersion is
// the covering ownership record's version before the commit, and
// newVersion is the commit timestamp the partition's time base assigned.
// The record therefore certifies: "addr held prevValue at every snapshot
// S with prevVersion <= S < newVersion". prevVersion is an upper bound on
// the last commit that actually wrote addr (the orec may have ticked for
// a neighbouring address), so the interval is conservative — a record
// never claims more history than is true.
//
// A reader at snapshot S that finds an orec whose version exceeds S looks
// up (addr, S): any record whose interval contains S yields the exact
// committed value at S. Successive commits to one address chain through
// orec versions (each record's newVersion is the next record's
// prevVersion or earlier), so intervals for one address never overlap and
// at most one record can match — the lookup needs no ordering or
// minimality argument, and a record evicted by the bounded ring simply
// turns the lookup into a miss. Correctness never depends on retention:
// the engine falls back to its validate/extend read path on a miss.
//
// # Concurrency
//
// Appends are lock-free: a writer takes the next ring sequence with one
// atomic fetch-add, then claims the slot seqlock-style by CAS from an
// even (published or empty) sequence to its odd (writing) one, stores
// the fields it now exclusively owns, and publishes by storing the even
// sequence. A writer that loses the claim CAS — the ring wrapped a full
// revolution while another append was in flight on the same slot — drops
// its record instead of interleaving fields into a torn publication; a
// dropped record only ever turns a lookup into a miss, which the engine
// handles anyway. Readers accept a slot only when the sequence is even,
// nonzero, and unchanged across the field reads. All fields are atomics,
// so the Go memory model orders a record's publication before the lock
// release that makes its newVersion visible: a reader that observes the
// new orec version is guaranteed to observe the record, unless the ring
// has already evicted it.
//
// Buffers are bounded and per partition; capacity is a per-partition
// configuration knob (core.PartConfig.HistCap) the runtime tuner may
// adjust. A buffer belongs to one partition state (one orec table): the
// engine creates a fresh buffer whenever it rebuilds the table, because
// records are only meaningful against the version timeline of the table
// whose orecs minted their prevVersions.
package mvstore

import "sync/atomic"

// slot is one ring entry. seq is the seqlock word: 0 = never written,
// odd = being written, even nonzero = published record with ring sequence
// (seq-2)/2.
type slot struct {
	seq     atomic.Uint64
	addr    atomic.Uint64
	val     atomic.Uint64
	prevVer atomic.Uint64
	newVer  atomic.Uint64
	_       [3]uint64 // pad to 64 bytes against false sharing
}

// Buffer is one partition's bounded version store. The zero value is not
// usable; construct with New.
type Buffer struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // ring sequence of the next append
}

// minCap is the smallest usable ring; anything below churns too fast to
// ever satisfy a reader.
const minCap = 8

// New creates a buffer retaining the last capacity records (rounded up to
// a power of two, minimum 8).
func New(capacity int) *Buffer {
	n := uint64(minCap)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Buffer{slots: make([]slot, n), mask: n - 1}
}

// Cap returns the ring capacity in records.
func (b *Buffer) Cap() int { return len(b.slots) }

// Head returns the total number of records ever appended. Readers use it
// as a cheap change signal: a failed lookup can only start succeeding
// after Head moves.
func (b *Buffer) Head() uint64 { return b.head.Load() }

// Append publishes one overwrite record. Callers (committing writers)
// must append while still holding the write lock whose release will
// publish newVer, so no reader can need the record before it exists.
func (b *Buffer) Append(addr, val, prevVer, newVer uint64) {
	s := b.head.Add(1) - 1
	sl := &b.slots[s&b.mask]
	// Claim the slot by CAS to the odd (writing) sequence. Losing the
	// claim means the ring wrapped all the way around while another
	// append was mid-flight on this very slot; writing our fields anyway
	// could interleave with the owner's and publish a torn record, so the
	// record is dropped instead — by construction a dropped record only
	// ever turns a future lookup into a miss, and misses fall back to the
	// engine's validate/extend path. Between a successful claim and the
	// publish below the slot is exclusively ours: every other claimant's
	// CAS fails against the odd value.
	cur := sl.seq.Load()
	if cur&1 != 0 || !sl.seq.CompareAndSwap(cur, 2*s+1) {
		return
	}
	sl.addr.Store(addr)
	sl.val.Store(val)
	sl.prevVer.Store(prevVer)
	sl.newVer.Store(newVer)
	sl.seq.Store(2*s + 2)
}

// ReadAt returns the committed value of addr at snapshot at, if a record
// covering that instant is still retained. Newest slots are probed first,
// so a hit for a freshly overwritten address (the common case: the reader
// lost a race with one recent commit) costs a handful of loads.
func (b *Buffer) ReadAt(addr, at uint64) (uint64, bool) {
	head := b.head.Load()
	n := uint64(len(b.slots))
	span := head
	if span > n {
		span = n
	}
	for i := uint64(1); i <= span; i++ {
		sl := &b.slots[(head-i)&b.mask]
		q1 := sl.seq.Load()
		if q1 == 0 || q1&1 != 0 {
			continue
		}
		a := sl.addr.Load()
		v := sl.val.Load()
		pv := sl.prevVer.Load()
		nv := sl.newVer.Load()
		if sl.seq.Load() != q1 {
			continue // overwritten mid-read; a wrapped slot can't match anyway
		}
		if a == addr && pv <= at && at < nv {
			return v, true
		}
	}
	return 0, false
}

// Stats is a momentary reading of a buffer, for experiments and the
// engine's observability surface.
type Stats struct {
	// Cap is the ring capacity in records.
	Cap int
	// Appends is the total number of records ever appended.
	Appends uint64
	// Live is the number of records currently retained (<= Cap).
	Live int
	// OldestVersion and NewestVersion bound the newVersion stamps of the
	// retained records: the buffer can serve snapshots back to roughly
	// OldestVersion's predecessor. Both are 0 while the buffer is empty.
	OldestVersion uint64
	NewestVersion uint64
}

// Stats scans the ring and reports capacity, append count, live records
// and the retained version span. Concurrent appends make the reading
// approximate; every field is exact on a quiescent buffer.
func (b *Buffer) Stats() Stats {
	st := Stats{Cap: len(b.slots), Appends: b.head.Load()}
	for i := range b.slots {
		sl := &b.slots[i]
		q1 := sl.seq.Load()
		if q1 == 0 || q1&1 != 0 {
			continue
		}
		nv := sl.newVer.Load()
		if sl.seq.Load() != q1 {
			continue
		}
		st.Live++
		if st.OldestVersion == 0 || nv < st.OldestVersion {
			st.OldestVersion = nv
		}
		if nv > st.NewestVersion {
			st.NewestVersion = nv
		}
	}
	return st
}
