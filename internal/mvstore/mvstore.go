// Package mvstore implements the multi-version snapshot store: a bounded,
// per-partition ring buffer of recently overwritten values, indexed by
// address, that lets read-only transactions in snapshot mode (Tx under
// SnapshotAtomic) read a consistent past state instead of extending their
// snapshot or aborting when a writer commits under them — the LSA-style
// payoff of keeping a few recent committed versions around.
//
// # Records
//
// Every committing update transaction appends one record per written
// address, while all write locks are held and before any is released:
//
//	(addr, prevValue, prevVersion, newVersion)
//
// prevValue is the committed value the commit overwrote, prevVersion is
// the covering ownership record's version before the commit, and
// newVersion is the commit timestamp the partition's time base assigned.
// The record therefore certifies: "addr held prevValue at every snapshot
// S with prevVersion <= S < newVersion". prevVersion is an upper bound on
// the last commit that actually wrote addr (the orec may have ticked for
// a neighbouring address), so the interval is conservative — a record
// never claims more history than is true.
//
// # Index and version chains
//
// Lookup is driven by a lock-free open-addressed table mapping each
// address to the ring sequence of its newest record. Successive records
// for one address are chained: every record stores the ring sequence of
// the previous record for the same address, so the records of an address
// form a newest-first singly linked list threaded through the ring.
// ReadAt(addr, S) is one table probe followed by a walk of that chain:
//
//   - no table entry                      → miss, O(1)
//   - S at or above the newest newVersion → miss, O(1)
//   - a chain record's interval covers S  → hit, after as many steps as
//     commits landed on addr since S (the chain is short by construction:
//     its length is bounded by the live records for one address)
//   - a chain link's slot was overwritten → miss (the record was evicted;
//     counted as a retention miss)
//
// Critically, a miss never scans the ring: before the index, a stale
// scan's every load paid O(capacity) seqlock probes exactly when the
// store could not help it. Intervals for one address never overlap (each
// record's newVersion is at most the next record's prevVersion), so the
// chain walk needs no ordering or minimality argument, and a record
// evicted by the bounded ring simply turns the lookup into a miss.
// Correctness never depends on retention: the engine falls back to its
// validate/extend read path on a miss.
//
// Records of one commit are published back to back in the ring (the
// engine batches a commit's records per partition through AppendBatch), so
// the batch doubles as a grouped per-commit record: a conceptual header —
// the first record — followed by N contiguous values. ReadRangeAt exploits
// that layout to reconstruct a whole multi-word object with ONE index
// probe: it walks the first address's chain to the covering record, then
// serves the remaining words straight from the neighbouring ring slots,
// each verified by its own published sequence, stored address and version
// interval. Ranges whose covering records are not contiguous — commits
// that overwrote single member words since — degrade per word to the
// ordinary probe-and-walk (see ReadRangeAt).
//
// The table is sized with the ring and never rehashed (the fresh-table-
// per-partState discipline below plays the role core/txindex.go's
// generation stamps play for per-attempt indexes: a rebuild is a new
// buffer, so no in-place invalidation is ever needed). Entries are never
// deleted; when the addresses ever appended outgrow the table's probe
// window, an insert steals the window's stalest entry (smallest recorded
// ring sequence — its record is the first the ring evicts). A stolen
// entry only ever turns lookups for the victim address into misses, which
// the engine handles anyway; readers verify the address stored in the
// ring slot itself, so a stale or stolen index entry can never produce a
// wrong value.
//
// # Concurrency
//
// Appends are lock-free: a writer takes the next ring sequence with one
// atomic fetch-add (or one per batch, AppendBatch), then claims the slot
// seqlock-style by CAS from an even (published or empty) sequence to its
// odd (writing) one, stores the fields it now exclusively owns — among
// them the chain link read from the index — and publishes by storing the
// even sequence; only then does it advance the index entry, so a reader
// that finds the entry always finds the published record. A writer that
// loses the claim CAS — the ring wrapped a full revolution while another
// append was in flight on the same slot — drops its record instead of
// interleaving fields into a torn publication; a dropped record only
// ever turns a lookup into a miss, which the engine handles anyway.
// Readers accept a slot only when its sequence equals the exact published
// value for the ring sequence they followed (2s+2) before and after the
// field reads; sequences are strictly increasing per slot, so the check
// is ABA-free. All fields are atomics, so the Go memory model orders a
// record's publication before the lock release that makes its newVersion
// visible: a reader that observes the new orec version is guaranteed to
// observe the record, unless the ring has already evicted it.
//
// Concurrent appends for the same address are serialized by the caller
// (the engine appends while holding the address's write lock); the store
// itself stays memory-safe without that guarantee, but racing same-
// address appends may fork or shorten a chain, turning lookups into
// misses.
//
// Buffers are bounded and per partition; capacity is a per-partition
// configuration knob (core.PartConfig.HistCap) the runtime tuner may
// adjust. A buffer belongs to one partition state (one orec table): the
// engine creates a fresh buffer whenever it rebuilds the table, because
// records are only meaningful against the version timeline of the table
// whose orecs minted their prevVersions.
package mvstore

import "sync/atomic"

// slot is one ring entry. seq is the seqlock word: 0 = never written,
// odd = being written, even nonzero = published record with ring sequence
// (seq-2)/2. prev is the chain link: ring sequence + 1 of the previous
// record for the same address, 0 = none.
type slot struct {
	seq     atomic.Uint64
	addr    atomic.Uint64
	val     atomic.Uint64
	prevVer atomic.Uint64
	newVer  atomic.Uint64
	prev    atomic.Uint64
	_       [2]uint64 // pad to 64 bytes against false sharing
}

// idxSlot is one entry of the address index. key is addr+1 (0 = empty);
// head is the ring sequence + 1 of the address's newest record (0 = none
// yet). Keys are claimed by CAS and never deleted, only stolen (see the
// package comment); heads only move forward along the ring.
type idxSlot struct {
	key  atomic.Uint64
	head atomic.Uint64
}

// Buffer is one partition's bounded version store. The zero value is not
// usable; construct with New.
type Buffer struct {
	slots []slot
	mask  uint64
	idx   []idxSlot
	imask uint64
	_     [4]uint64     // keep head off the slice headers' line
	head  atomic.Uint64 // ring sequence of the next append
	_     [7]uint64     // and off the stats blocks below

	// Lookup statistics (see Stats), striped by address hash so that
	// concurrent readers scanning different addresses do not serialize on
	// one shared cache line (a scan's every reconstructed load updates
	// these): probes/hits partition every ReadAt, chainSteps counts walked
	// chain links beyond the newest record, and truncMisses counts misses
	// caused by an evicted chain link or a stolen/stale index entry — the
	// capacity-curable signal the tuner's growth heuristic keys on.
	stats [statStripes]statBlock

	// steals counts index entries reclaimed from another address at
	// append time: nonzero means the addresses ever appended outgrew the
	// index's probe coverage, so lookups for the victims miss — also
	// cured by capacity (the index is sized with the ring). Appends are
	// already serialized per address, so one counter does not contend.
	steals atomic.Uint64
}

// statStripes is the number of lookup-counter stripes; addresses spread
// across them by hash, bounding reader contention on the counters.
const statStripes = 8

// statBlock is one stripe of lookup counters, padded to a cache line.
type statBlock struct {
	probes      atomic.Uint64
	hits        atomic.Uint64
	chainSteps  atomic.Uint64
	truncMisses atomic.Uint64
	rangeReads  atomic.Uint64
	rangeFast   atomic.Uint64
	_           [2]uint64
}

// minCap is the smallest usable ring; anything below churns too fast to
// ever satisfy a reader.
const minCap = 8

// MaxCap bounds the ring capacity. New clamps here, and
// core.PartConfig.Normalize applies the same ceiling to HistCap, so the
// capacity round-up loop can never overflow (a huge request once spun
// n <<= 1 past 2^63 into an infinite loop).
const MaxCap = 1 << 20

// idxProbeWindow is the linear-probe bound of the address index: an
// insert or lookup examines at most this many consecutive table entries.
const idxProbeWindow = 16

// hashMul is the 64-bit Fibonacci multiplier (same constant as
// core/txindex.go); the high bits mix well for word-aligned addresses.
const hashMul = 0x9E3779B97F4A7C15

// New creates a buffer retaining the last capacity records (rounded up to
// a power of two, minimum 8, clamped to MaxCap). The address index is
// sized at twice the ring, so steals only start once the addresses ever
// appended approach double the retained records.
func New(capacity int) *Buffer {
	if capacity < 0 {
		capacity = 0
	}
	if capacity > MaxCap {
		capacity = MaxCap
	}
	n := uint64(minCap)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Buffer{
		slots: make([]slot, n),
		mask:  n - 1,
		idx:   make([]idxSlot, 2*n),
		imask: 2*n - 1,
	}
}

// Cap returns the ring capacity in records.
func (b *Buffer) Cap() int { return len(b.slots) }

// Head returns the total number of records ever appended. Readers use it
// as a cheap change signal: a failed lookup can only start succeeding
// after Head moves.
func (b *Buffer) Head() uint64 { return b.head.Load() }

// Record is one overwrite record for AppendBatch.
type Record struct {
	Addr    uint64
	Val     uint64
	PrevVer uint64
	NewVer  uint64
}

// Append publishes one overwrite record. Callers (committing writers)
// must append while still holding the write lock whose release will
// publish NewVer, so no reader can need the record before it exists.
func (b *Buffer) Append(addr, val, prevVer, newVer uint64) {
	s := b.head.Add(1) - 1
	b.publishAt(s, addr, val, prevVer, newVer)
}

// AppendBatch publishes a batch of records with a single fetch-add on the
// ring head — committing writers group their records per partition so a
// wide commit issues one shared read-modify-write per written partition
// instead of one per written address. Records in one batch must carry
// distinct addresses (the engine's write set is deduplicated per
// address); duplicate addresses are not unsafe, merely chain-forking as
// described in the package comment.
func (b *Buffer) AppendBatch(recs []Record) {
	n := uint64(len(recs))
	if n == 0 {
		return
	}
	s0 := b.head.Add(n) - n
	for i := range recs {
		r := &recs[i]
		b.publishAt(s0+uint64(i), r.Addr, r.Val, r.PrevVer, r.NewVer)
	}
}

// publishAt claims ring sequence s, publishes the record, and advances
// the address index to it.
func (b *Buffer) publishAt(s, addr, val, prevVer, newVer uint64) {
	is, prev := b.indexClaim(addr)
	sl := &b.slots[s&b.mask]
	// Claim the slot by CAS to the odd (writing) sequence. Losing the
	// claim means the ring wrapped all the way around while another
	// append was mid-flight on this very slot; writing our fields anyway
	// could interleave with the owner's and publish a torn record, so the
	// record is dropped instead — by construction a dropped record only
	// ever turns a future lookup into a miss, and misses fall back to the
	// engine's validate/extend path. Between a successful claim and the
	// publish below the slot is exclusively ours: every other claimant's
	// CAS fails against the odd value.
	cur := sl.seq.Load()
	if cur&1 != 0 || !sl.seq.CompareAndSwap(cur, 2*s+1) {
		return
	}
	sl.addr.Store(addr)
	sl.val.Store(val)
	sl.prevVer.Store(prevVer)
	sl.newVer.Store(newVer)
	sl.prev.Store(prev)
	sl.seq.Store(2*s + 2)
	if is == nil {
		return // index full in our window; record retained but unreachable
	}
	// Advance the index head, forward only: ring sequences grow
	// monotonically, so the largest value is the newest record. (Same-
	// address appends are serialized by the engine; this CAS loop only
	// matters for standalone misuse and costs one uncontended CAS.)
	for {
		h := is.head.Load()
		if h >= s+1 || is.head.CompareAndSwap(h, s+1) {
			return
		}
	}
}

// indexClaim locates (or creates) the index entry for addr and returns it
// together with the chain link for a new record: the entry's current head
// (ring sequence + 1 of the previous newest record), or 0 when the entry
// is fresh or stolen. Returns nil when the probe window is saturated by
// concurrent claims — the record then simply goes unindexed.
func (b *Buffer) indexClaim(addr uint64) (*idxSlot, uint64) {
	key := addr + 1
	if key == 0 {
		return nil, 0 // addr ^uint64(0) is unindexable; record drops to a miss
	}
	h := (addr * hashMul) >> 32
	var victim *idxSlot
	victimHead := ^uint64(0)
	for i := uint64(0); i < idxProbeWindow; i++ {
		is := &b.idx[(h+i)&b.imask]
		k := is.key.Load()
		if k == key {
			return is, is.head.Load()
		}
		if k == 0 {
			if is.key.CompareAndSwap(0, key) {
				return is, 0
			}
			if is.key.Load() == key {
				// Lost the race to a concurrent appender of the same
				// address (standalone misuse; the engine serializes).
				return is, is.head.Load()
			}
			// A different key landed; treat the slot as occupied.
		}
		if hd := is.head.Load(); hd < victimHead {
			victim, victimHead = is, hd
		}
	}
	// Window full: steal the stalest entry (smallest head — its record is
	// the one the ring evicts first). Lookups for the victim address turn
	// into misses; the old head may linger on the entry for an instant,
	// which is safe because ReadAt verifies the address stored in the
	// ring slot itself.
	if victim == nil {
		return nil, 0
	}
	if vk := victim.key.Load(); vk != key && victim.key.CompareAndSwap(vk, key) {
		victim.head.Store(0)
		b.steals.Add(1)
		return victim, 0
	}
	if victim.key.Load() == key {
		return victim, victim.head.Load()
	}
	return nil, 0
}

// indexFind returns the index entry for addr, or nil. Inserts claim the
// first empty slot in the probe window and entries are never emptied, so
// the scan may stop at the first empty slot.
func (b *Buffer) indexFind(addr uint64) *idxSlot {
	key := addr + 1
	if key == 0 {
		return nil
	}
	h := (addr * hashMul) >> 32
	for i := uint64(0); i < idxProbeWindow; i++ {
		is := &b.idx[(h+i)&b.imask]
		k := is.key.Load()
		if k == key {
			return is
		}
		if k == 0 {
			return nil
		}
	}
	return nil
}

// ReadAt returns the committed value of addr at snapshot at, if a record
// covering that instant is still retained. One index probe finds the
// address's newest record; the walk follows the per-address chain only as
// far as commits have landed on addr since the snapshot. A miss —
// including the stale-scan case that used to cost a full ring scan — is
// detected without ever touching more than the chain: no index entry, a
// snapshot at or above the newest record, or an evicted chain link each
// answer in O(1).
func (b *Buffer) ReadAt(addr, at uint64) (uint64, bool) {
	v, _, ok := b.lookupAt(b.stripe(addr), addr, at)
	return v, ok
}

// stripe returns the lookup-counter stripe for addr.
func (b *Buffer) stripe(addr uint64) *statBlock {
	return &b.stats[(addr*hashMul)>>(64-3)] // stripe by address hash
}

// lookupAt is the shared probe-and-walk behind ReadAt and ReadRangeAt: it
// returns the covering value together with the ring sequence of the record
// that carried it (so range lookups can try the record's batch neighbours
// without further index probes). Counter accounting matches ReadAt's
// documented semantics: one probe per call, one hit per served value.
func (b *Buffer) lookupAt(st *statBlock, addr, at uint64) (val, ringSeq uint64, ok bool) {
	st.probes.Add(1)
	is := b.indexFind(addr)
	if is == nil {
		return 0, 0, false // no recorded history for addr
	}
	cur := is.head.Load()
	for steps := 0; cur != 0; steps++ {
		s := cur - 1
		sl := &b.slots[s&b.mask]
		q := 2*s + 2
		if sl.seq.Load() != q {
			// The slot no longer holds ring sequence s: the record was
			// evicted (or is being overwritten). The chain below it is
			// at least as old, so the walk is over — a retention miss.
			st.truncMisses.Add(1)
			return 0, 0, false
		}
		a := sl.addr.Load()
		v := sl.val.Load()
		pv := sl.prevVer.Load()
		nv := sl.newVer.Load()
		prev := sl.prev.Load()
		if sl.seq.Load() != q {
			st.truncMisses.Add(1)
			return 0, 0, false
		}
		if a != addr {
			// Stale or stolen index entry: the address HAD history, the
			// index just cannot reach it any more — capacity-curable
			// (a bigger ring brings a bigger index), so it counts with
			// the retention misses.
			st.truncMisses.Add(1)
			return 0, 0, false
		}
		if steps > 0 {
			st.chainSteps.Add(1)
		}
		if pv <= at && at < nv {
			st.hits.Add(1)
			return v, s, true
		}
		if at >= nv {
			// The snapshot postdates the newest retained overwrite of
			// addr: no record covers it (memory, or the validate path,
			// is authoritative). Older chain records are older still.
			return 0, 0, false
		}
		if prev >= cur {
			// A chain must strictly descend in ring sequence; anything
			// else is a fork from unserialized same-address appends.
			st.truncMisses.Add(1)
			return 0, 0, false
		}
		cur = prev
	}
	return 0, 0, false // at predates the oldest record for addr
}

// ReadRangeAt reconstructs the committed values of the contiguous address
// range [addr, addr+len(dst)) at snapshot at, writing dst[i] for addr+i.
// It returns true only when every word of the range is served; on false,
// dst holds partial garbage and the caller must fall back to per-word
// reads (or the validate/extend path).
//
// The grouped-record fast path is what makes object reconstruction cost
// one index probe instead of one per word: a commit that writes a whole
// object publishes its records back to back in the ring (the engine's
// AppendBatch keeps a write set's records contiguous), so once the walk
// for addr lands on the covering record, the neighbouring ring slots are
// checked directly — each one verified by its published sequence, its
// stored address and its version interval, exactly the checks a chain
// walk performs — and index probing is skipped entirely. Interleaved or
// partially overwritten ranges degrade per word to the ordinary
// probe-and-walk, never to a wrong value.
func (b *Buffer) ReadRangeAt(addr, at uint64, dst []uint64) bool {
	if len(dst) == 0 {
		return true
	}
	st := b.stripe(addr)
	st.rangeReads.Add(1)
	v0, s0, ok := b.lookupAt(st, addr, at)
	if !ok {
		return false
	}
	dst[0] = v0
	grouped := true
	for i := 1; i < len(dst); i++ {
		a := addr + uint64(i)
		if grouped {
			si := s0 + uint64(i)
			sl := &b.slots[si&b.mask]
			q := 2*si + 2
			if sl.seq.Load() == q {
				sa := sl.addr.Load()
				sv := sl.val.Load()
				pv := sl.prevVer.Load()
				nv := sl.newVer.Load()
				if sl.seq.Load() == q && sa == a && pv <= at && at < nv {
					dst[i] = sv
					continue
				}
			}
			grouped = false
		}
		v, _, ok := b.lookupAt(b.stripe(a), a, at)
		if !ok {
			return false
		}
		dst[i] = v
	}
	if grouped {
		st.rangeFast.Add(1)
	}
	return true
}

// Stats is a momentary reading of a buffer, for experiments, the tuner
// and the engine's observability surface.
type Stats struct {
	// Cap is the ring capacity in records.
	Cap int
	// Appends is the total number of records ever appended.
	Appends uint64
	// Live is the number of records currently retained (<= Cap).
	Live int
	// OldestVersion and NewestVersion bound the newVersion stamps of the
	// retained records: the buffer can serve snapshots back to roughly
	// OldestVersion's predecessor. Both are 0 while the buffer is empty.
	OldestVersion uint64
	NewestVersion uint64
	// Probes and Hits count ReadAt calls and the subset that returned a
	// value; Probes-Hits is the miss count.
	Probes uint64
	Hits   uint64
	// TruncMisses is the subset of misses caused by an evicted (or torn)
	// chain link, or by a stale/stolen index entry: the record existed
	// but is no longer reachable. This is the capacity-shortfall signal
	// — the miss kinds that growing the ring (and with it the index) can
	// cure — and what the tuner's AdaptSnapshot growth step keys on.
	TruncMisses uint64
	// Steals counts index entries reclaimed for a different address at
	// append time: the addresses ever appended outgrew the index's probe
	// coverage. Persistent steals alongside misses are likewise cured by
	// capacity.
	Steals uint64
	// ChainSteps counts chain links walked beyond each address's newest
	// record; ChainSteps/Hits approximates how many commits landed on a
	// looked-up address between the reader's snapshot and the lookup
	// (the per-hit walk depth).
	ChainSteps uint64
	// RangeReads counts ReadRangeAt calls; RangeFastHits is the subset
	// fully served by the grouped-record fast path — one index probe for
	// the whole range instead of one per word. RangeReads-RangeFastHits
	// range lookups degraded (at least partially) to per-word probes,
	// which show up in Probes as usual.
	RangeReads    uint64
	RangeFastHits uint64
}

// HorizonShortfall reports how far the given reclamation horizon (the
// oldest live reader's begin stamp, core.Engine.Horizon) trails the
// buffer's retained version span: OldestVersion - horizon when the reader
// predates every retained record, else 0. A zero shortfall means the
// stalled reader's snapshot is still servable, so growing retention (the
// AdaptSnapshot response to TruncMisses) can help it; a positive shortfall
// means the reader already outlived the ring and only unpinning it —
// waiting it out or killing it — can move the horizon. An idle horizon
// (no live reader, all bits set) never reports a shortfall.
func (s Stats) HorizonShortfall(horizon uint64) uint64 {
	if s.Live == 0 || horizon >= s.OldestVersion {
		return 0
	}
	return s.OldestVersion - horizon
}

// Stats scans the ring and reports capacity, append count, live records,
// the retained version span, and the lookup counters. Concurrent appends
// make the reading approximate; every field is exact on a quiescent
// buffer.
func (b *Buffer) Stats() Stats {
	st := Stats{
		Cap:     len(b.slots),
		Appends: b.head.Load(),
		Steals:  b.steals.Load(),
	}
	for i := range b.stats {
		sb := &b.stats[i]
		st.Probes += sb.probes.Load()
		st.Hits += sb.hits.Load()
		st.TruncMisses += sb.truncMisses.Load()
		st.ChainSteps += sb.chainSteps.Load()
		st.RangeReads += sb.rangeReads.Load()
		st.RangeFastHits += sb.rangeFast.Load()
	}
	for i := range b.slots {
		sl := &b.slots[i]
		q1 := sl.seq.Load()
		if q1 == 0 || q1&1 != 0 {
			continue
		}
		nv := sl.newVer.Load()
		if sl.seq.Load() != q1 {
			continue
		}
		st.Live++
		if st.OldestVersion == 0 || nv < st.OldestVersion {
			st.OldestVersion = nv
		}
		if nv > st.NewestVersion {
			st.NewestVersion = nv
		}
	}
	return st
}
