package mvstore

import "testing"

// appendObject publishes one commit's overwrite records for the
// contiguous object [base, base+n) in a single batch, as the engine
// does: old values vals, versions prevVer -> newVer.
func appendObject(b *Buffer, base uint64, vals []uint64, prevVer, newVer uint64) {
	recs := make([]Record, len(vals))
	for i := range vals {
		recs[i] = Record{Addr: base + uint64(i), Val: vals[i], PrevVer: prevVer, NewVer: newVer}
	}
	b.AppendBatch(recs)
}

// TestReadRangeAtGrouped is the probe-amortization contract: an object
// overwritten by one commit reconstructs with ONE index probe, however
// many words it has — against 8 probes for 8 per-word ReadAt calls.
func TestReadRangeAtGrouped(t *testing.T) {
	b := New(256)
	const base, n = 100, 8
	old := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	appendObject(b, base, old, 1, 5)

	before := b.Stats()
	dst := make([]uint64, n)
	if !b.ReadRangeAt(base, 3, dst) {
		t.Fatal("range read missed")
	}
	for i := range dst {
		if dst[i] != old[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], old[i])
		}
	}
	after := b.Stats()
	if probes := after.Probes - before.Probes; probes != 1 {
		t.Fatalf("grouped range read paid %d index probes, want 1", probes)
	}
	if after.RangeReads != before.RangeReads+1 || after.RangeFastHits != before.RangeFastHits+1 {
		t.Fatalf("range counters: %+v -> %+v", before, after)
	}

	// The same object read per word pays one probe per word.
	before = after
	for i := 0; i < n; i++ {
		v, ok := b.ReadAt(base+uint64(i), 3)
		if !ok || v != old[i] {
			t.Fatalf("ReadAt(%d) = %d,%v", i, v, ok)
		}
	}
	after = b.Stats()
	if probes := after.Probes - before.Probes; probes != n {
		t.Fatalf("per-word reads paid %d probes, want %d", probes, n)
	}
}

// TestReadRangeAtNewerWordStillGrouped: a later commit overwriting one
// member word does not unseat the older batch — at a snapshot the batch
// covers, the fast path still serves every word (the newer record does
// not cover that snapshot), and at a snapshot only partially covered the
// range read misses rather than inventing values.
func TestReadRangeAtNewerWordStillGrouped(t *testing.T) {
	b := New(256)
	const base, n = 200, 4
	appendObject(b, base, []uint64{1, 2, 3, 4}, 1, 5)
	// A single-word commit lands on base+2: its pre-image (the first
	// commit's new value for that word) enters the ring alone.
	b.Append(base+2, 33, 5, 9)

	// At snapshot 6 (after the object commit, before the word commit):
	// only word 2 has a covering record, so the range read misses.
	dst := make([]uint64, n)
	if b.ReadRangeAt(base, 6, dst) {
		t.Fatal("range read served words with no covering record")
	}
	// At snapshot 3 the original batch covers every word — including
	// base+2, whose chain walks from the newer record down to it.
	before := b.Stats()
	if !b.ReadRangeAt(base, 3, dst) {
		t.Fatal("range read missed despite full coverage")
	}
	want := []uint64{1, 2, 3, 4}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	after := b.Stats()
	if probes := after.Probes - before.Probes; probes != 1 {
		t.Fatalf("grouped range read paid %d probes, want 1", probes)
	}
}

// TestReadRangeAtNonContiguous breaks physical contiguity — the batch
// published the object's records in reverse address order — and checks
// the range read degrades to correct per-word lookups instead of the
// fast path.
func TestReadRangeAtNonContiguous(t *testing.T) {
	b := New(256)
	const base, n = 300, 4
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Addr: base + uint64(n-1-i), Val: uint64(40 - i), PrevVer: 1, NewVer: 5}
	}
	b.AppendBatch(recs) // base+3, base+2, base+1, base

	before := b.Stats()
	dst := make([]uint64, n)
	if !b.ReadRangeAt(base, 3, dst) {
		t.Fatal("range read missed despite full coverage")
	}
	for i := range dst {
		// Val 40-i went to addr base+(n-1-i): addr base+i holds 40-(n-1-i).
		if want := uint64(40 - (n - 1 - i)); dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	after := b.Stats()
	if after.RangeFastHits != before.RangeFastHits {
		t.Fatal("fast path claimed despite non-contiguous records")
	}
	if probes := after.Probes - before.Probes; probes != n {
		t.Fatalf("degraded range read paid %d probes, want %d", probes, n)
	}
}

// TestReadRangeAtEviction: a range whose covering records were evicted
// by ring wrap-around misses cleanly.
func TestReadRangeAtEviction(t *testing.T) {
	b := New(16)
	appendObject(b, 50, []uint64{1, 2, 3, 4}, 1, 5)
	for i := 0; i < 64; i++ { // wrap the ring with unrelated traffic
		b.Append(1000+uint64(i), 9, 1, 2)
	}
	dst := make([]uint64, 4)
	if b.ReadRangeAt(50, 3, dst) {
		t.Fatal("range read served evicted records")
	}
}

// TestReadRangeAtEdges covers the trivial boundaries.
func TestReadRangeAtEdges(t *testing.T) {
	b := New(64)
	if !b.ReadRangeAt(10, 5, nil) {
		t.Fatal("empty range should trivially succeed")
	}
	dst := make([]uint64, 2)
	if b.ReadRangeAt(10, 5, dst) {
		t.Fatal("range over unrecorded addresses should miss")
	}
	// Snapshot at/above the newest version: memory is authoritative.
	appendObject(b, 10, []uint64{7, 8}, 1, 5)
	if b.ReadRangeAt(10, 5, dst) {
		t.Fatal("range at the newest version should miss (memory is current)")
	}
	if !b.ReadRangeAt(10, 4, dst) || dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("range just below newest = %v, want [7 8]", dst)
	}
}
