// Package repro_test holds the benchmark entry points: one testing.B
// bench per reproduced table/figure (delegating to internal/experiments
// in quick mode), plus micro-benchmarks of the STM's primitive costs.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The full-scale artefacts are produced by cmd/partbench; these benches
// regenerate the same rows/series at reduced scale so the whole suite
// stays fast enough for CI.
package repro_test

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/mvstore"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/stm"
	"repro/stmnet"
	"repro/txds"
)

// benchOptions returns experiment options scaled for testing.B.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Quick = true
	o.PointDuration = 120 * time.Millisecond
	o.Warmup = 30 * time.Millisecond
	return o
}

// runExperiment executes one experiment per b.N batch and reports its
// headline throughput.
func runExperiment(b *testing.B, id string) {
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Output == "" {
			b.Fatal("empty experiment output")
		}
		if i == 0 {
			b.Logf("%s: %s", rep.ID, rep.Summary)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }

// BenchmarkClockScale compares the global commit counter against
// partition-local commit counters on the partitioned workloads.
func BenchmarkClockScale(b *testing.B) { runExperiment(b, "clockscale") }

// BenchmarkRsDedup measures footprint-bounded bookkeeping: validate cost
// as loads grow over a fixed footprint, and write-set indexing across
// write modes.
func BenchmarkRsDedup(b *testing.B) { runExperiment(b, "rsdedup") }

// BenchmarkContend sweeps contention-management policies over a
// contended scan+transfer mix across threads.
func BenchmarkContend(b *testing.B) { runExperiment(b, "contend") }

// BenchmarkMVScan exercises the multi-version snapshot store: abort-free
// read-only scans against saturating writers, and the commit-path append
// price.
func BenchmarkMVScan(b *testing.B) { runExperiment(b, "mvscan") }

// BenchmarkSnapshotAppend measures the commit-path cost the snapshot
// store adds to a small update transaction, against the store-less
// baseline (the regression tripwire for "free when off").
func BenchmarkSnapshotAppend(b *testing.B) {
	for _, c := range []struct {
		name string
		hist uint
	}{
		{"hist-off", 0},
		{"hist-1k", 1 << 10},
	} {
		b.Run(c.name, func(b *testing.B) {
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, SnapshotHistory: c.hist})
			th := rt.MustAttach()
			defer rt.Detach(th)
			var a stm.Addr
			th.Atomic(func(tx *stm.Tx) {
				a = tx.Alloc(stm.SiteID(0), 4)
				for i := 0; i < 4; i++ {
					tx.Store(a+stm.Addr(i), 0)
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(tx *stm.Tx) {
					for j := 0; j < 4; j++ {
						tx.Store(a+stm.Addr(j), tx.Load(a+stm.Addr(j))+1)
					}
				})
			}
		})
	}
}

// BenchmarkSnapshotReadAtMiss measures the snapshot store's miss path —
// the cost a long scan over a stale snapshot pays on every load the store
// cannot serve. The probed addresses' records have been evicted by a full
// ring of unrelated traffic, so every lookup is a retention miss. With
// the address-indexed store the cost must be independent of HistCap
// (one index probe + one dead chain link); the newest-first ring scan
// this replaced paid O(HistCap) seqlock probes here, ~64x between the
// two sub-benchmarks.
func BenchmarkSnapshotReadAtMiss(b *testing.B) {
	const probeAddrs = 64
	for _, capacity := range []int{64, 4096} {
		b.Run(fmt.Sprintf("hist-%d", capacity), func(b *testing.B) {
			buf := mvstore.New(capacity)
			for a := uint64(0); a < probeAddrs; a++ {
				buf.Append(a, 1, 1, 2)
			}
			for i := 0; i < capacity; i++ {
				buf.Append(1<<20+uint64(i), 2, 2, 3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := buf.ReadAt(uint64(i%probeAddrs), 1); ok {
					b.Fatal("expected a miss: record was evicted")
				}
			}
		})
	}
}

// BenchmarkSnapshotReadAtHit measures the hit path at increasing chain
// depth: the walk visits one link per commit that landed on the address
// after the snapshot being read.
func BenchmarkSnapshotReadAtHit(b *testing.B) {
	for _, depth := range []int{1, 8} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			buf := mvstore.New(1024)
			const addrs = 64
			for d := 0; d < depth; d++ {
				for a := uint64(0); a < addrs; a++ {
					v := uint64(d + 1)
					buf.Append(a, v, v, v+1)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Snapshot 1 is covered by the oldest record: the walk
				// traverses the full chain (depth links).
				if _, ok := buf.ReadAt(uint64(i%addrs), 1); !ok {
					b.Fatal("expected a hit")
				}
			}
		})
	}
}

// BenchmarkSnapshotObjectRead prices object reconstruction from the
// snapshot store: an 8-word object written by one commit, read back at a
// past snapshot either word by word (8 index probes + 8 chain walks) or
// through the grouped-record range lookup (1 index probe, neighbours
// served from the batch's contiguous ring slots). The probes/op metric —
// straight from the store's lookup stats — is the contract: grouped must
// probe ~1, per-word exactly 8.
func BenchmarkSnapshotObjectRead(b *testing.B) {
	const objWords = 8
	setup := func() *mvstore.Buffer {
		buf := mvstore.New(1024)
		recs := make([]mvstore.Record, objWords)
		for i := range recs {
			recs[i] = mvstore.Record{Addr: 64 + uint64(i), Val: uint64(100 + i), PrevVer: 1, NewVer: 5}
		}
		buf.AppendBatch(recs)
		return buf
	}
	b.Run("per-word", func(b *testing.B) {
		buf := setup()
		start := buf.Stats().Probes
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := uint64(0); w < objWords; w++ {
				if _, ok := buf.ReadAt(64+w, 3); !ok {
					b.Fatal("expected a hit")
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(buf.Stats().Probes-start)/float64(b.N), "probes/op")
	})
	b.Run("grouped", func(b *testing.B) {
		buf := setup()
		start := buf.Stats().Probes
		var dst [objWords]uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !buf.ReadRangeAt(64, 3, dst[:]) {
				b.Fatal("expected a range hit")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(buf.Stats().Probes-start)/float64(b.N), "probes/op")
	})
}

// BenchmarkRefLoad is the typed-object hot path: loading an 8-word
// object through Ref.Load (one footprint touch, one multi-word read)
// against the same words loaded one at a time.
func BenchmarkRefLoad(b *testing.B) {
	type obj struct{ A, B, C, D, E, F, G, H uint64 }
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var r stm.Ref[obj]
	th.Run(func(tx *stm.Tx) error {
		r = stm.AllocRef[obj](tx, stm.SiteID(0))
		r.Store(tx, obj{A: 1, H: 8})
		return nil
	})
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Run(func(tx *stm.Tx) error {
				o := r.Load(tx)
				_ = o
				return nil
			}, stm.ReadOnly())
		}
	})
	b.Run("per-word", func(b *testing.B) {
		base := r.Addr()
		for i := 0; i < b.N; i++ {
			th.Run(func(tx *stm.Tx) error {
				var s uint64
				for w := 0; w < 8; w++ {
					s += tx.Load(base + stm.Addr(w))
				}
				_ = s
				return nil
			}, stm.ReadOnly())
		}
	})
}

// BenchmarkAllocFreeChurn measures the allocate/retire/reclaim cycle on
// the commit path: every transaction replaces an 8-word node (one Alloc,
// one Free), so steady state continually retires into limbo and drains it
// through the NeedsReclaim-gated commit-path sweeps. The reclaimed-words
// metric is the conservation check — at quiesce it must account for
// everything retired (words/op approaches 8).
func BenchmarkAllocFreeChurn(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var cell stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		cell = tx.Alloc(stm.SiteID(0), 1)
		n := tx.Alloc(stm.SiteID(0), 8)
		tx.Store(n, 1)
		tx.StoreAddr(cell, n)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) {
			old := tx.LoadAddr(cell)
			n := tx.Alloc(stm.SiteID(0), 8)
			tx.Store(n, tx.Load(old)+1)
			tx.StoreAddr(cell, n)
			tx.Free(old, 8)
		})
	}
	b.StopTimer()
	th.Reclaim()
	rs := rt.ReclaimStats()
	if rs.RetiredWords != rs.ReclaimedWords {
		b.Fatalf("limbo not drained at quiesce: retired %d, reclaimed %d", rs.RetiredWords, rs.ReclaimedWords)
	}
	b.ReportMetric(float64(rs.ReclaimedWords)/float64(b.N), "reclaimed-words/op")
}

// BenchmarkAllocFreeChurnSnapshot is the same churn with a snapshot store
// attached and a snapshot-mode scan interleaved every 8 updates: commits
// pay the history append, and the retire/reclaim cycle runs against
// readers that actually publish pinned stamps into the epoch table.
func BenchmarkAllocFreeChurnSnapshot(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18, SnapshotHistory: 1 << 10})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var cell stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		cell = tx.Alloc(stm.SiteID(0), 1)
		n := tx.Alloc(stm.SiteID(0), 8)
		tx.Store(n, 1)
		tx.StoreAddr(cell, n)
	})
	scan := func(tx *stm.Tx) error {
		n := tx.LoadAddr(cell)
		var s uint64
		for w := 0; w < 8; w++ {
			s += tx.Load(n + stm.Addr(w))
		}
		_ = s
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) {
			old := tx.LoadAddr(cell)
			n := tx.Alloc(stm.SiteID(0), 8)
			tx.Store(n, tx.Load(old)+1)
			tx.StoreAddr(cell, n)
			tx.Free(old, 8)
		})
		if i&7 == 0 {
			if err := rt.Run(scan, stm.Snapshot()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	th.Reclaim() // the pinned writer's limbo
	rt.Reclaim() // the pooled scan threads' + shared overflow
	rs := rt.ReclaimStats()
	if rs.LimboWords != 0 {
		b.Fatalf("limbo not drained at quiesce: %d words", rs.LimboWords)
	}
}

// --- primitive-cost micro-benchmarks ---

// BenchmarkRunPinned is the baseline for the pooled-entry overhead
// budget: the minimal update transaction on a Thread the caller pinned
// once and reuses directly.
func BenchmarkRunPinned(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
	})
	fn := func(tx *stm.Tx) error {
		tx.Store(a, tx.Load(a)+1)
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPooled measures the goroutine-native entry point: every
// transaction borrows a pooled Thread through Runtime.Run and returns it.
// The steady-state borrow is one sync.Pool hint get plus one CAS on the
// free-slot bitmap; the acceptance budget is <= 15% over BenchmarkRunPinned
// on this workload.
func BenchmarkRunPooled(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	var a stm.Addr
	if err := rt.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	fn := func(tx *stm.Tx) error {
		tx.Store(a, tx.Load(a)+1)
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncontendedIncrement measures the base cost of a minimal
// read-modify-write transaction (one load, one store, commit).
func BenchmarkUncontendedIncrement(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  stm.PartConfig
	}{
		{"etl-wb", stm.DefaultPartConfig()},
		{"etl-wt", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Write = stm.WriteThrough; return c }()},
		{"ctl", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Acquire = stm.CommitTime; return c }()},
		{"visible", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Read = stm.VisibleReads; return c }()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mode.cfg
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, Default: &cfg})
			th := rt.MustAttach()
			defer rt.Detach(th)
			var a stm.Addr
			th.Atomic(func(tx *stm.Tx) {
				a = tx.Alloc(stm.SiteID(0), 1)
				tx.Store(a, 0)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		})
	}
}

// BenchmarkTimeBaseIncrement measures the commit-path cost of the two
// time bases on the minimal update transaction (single thread, single
// partition): the partition-local bookkeeping must not tax the
// uncontended fast path.
func BenchmarkTimeBaseIncrement(b *testing.B) {
	for _, m := range []struct {
		name string
		tb   stm.TimeBaseMode
	}{
		{"global", stm.TimeBaseGlobal},
		{"plocal", stm.TimeBasePartitionLocal},
	} {
		b.Run(m.name, func(b *testing.B) {
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, TimeBase: m.tb})
			th := rt.MustAttach()
			defer rt.Detach(th)
			var a stm.Addr
			th.Atomic(func(tx *stm.Tx) {
				a = tx.Alloc(stm.SiteID(0), 1)
				tx.Store(a, 0)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		})
	}
}

// BenchmarkRepeatedReadSweep measures loop-heavy re-reading of a fixed
// footprint through the public facade: per-load cost must stay flat as
// passes multiply, because the read set is deduplicated per orec.
func BenchmarkRepeatedReadSweep(b *testing.B) {
	const words = 64
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var base stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		base = tx.Alloc(stm.SiteID(0), words)
		for i := 0; i < words; i++ {
			tx.Store(base+stm.Addr(i), uint64(i))
		}
	})
	for _, passes := range []int{1, 8} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				th.ReadOnlyAtomic(func(tx *stm.Tx) {
					var sink uint64
					for p := 0; p < passes; p++ {
						for j := 0; j < words; j++ {
							sink += tx.Load(base + stm.Addr(j))
						}
					}
					_ = sink
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*passes*words), "ns/load")
		})
	}
}

// BenchmarkReadOnlyScan measures per-read cost of long read-only
// transactions under both visibilities.
func BenchmarkReadOnlyScan(b *testing.B) {
	const n = 1024
	for _, mode := range []struct {
		name string
		read stm.PartConfig
	}{
		{"invisible", stm.DefaultPartConfig()},
		{"visible", func() stm.PartConfig { c := stm.DefaultPartConfig(); c.Read = stm.VisibleReads; return c }()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mode.read
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, Default: &cfg})
			th := rt.MustAttach()
			defer rt.Detach(th)
			var c *txds.CounterArray
			th.Atomic(func(tx *stm.Tx) { c = txds.NewCounterArray(tx, rt, "scan", n, 1) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.ReadOnlyAtomic(func(tx *stm.Tx) { c.Sum(tx) })
			}
			b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkPartitionLookup isolates the cost table2 measures: transactions
// against a partitioned heap vs the same heap unpartitioned.
func BenchmarkPartitionLookup(b *testing.B) {
	for _, partitioned := range []bool{false, true} {
		name := "unpartitioned"
		if partitioned {
			name = "partitioned"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 18})
			if partitioned {
				rt.StartProfiling()
			}
			th := rt.MustAttach()
			var tree *txds.RBTree
			th.Atomic(func(tx *stm.Tx) { tree = txds.NewRBTree(tx, rt, "pl.tree") })
			for k := uint64(0); k < 512; k++ {
				th.Atomic(func(tx *stm.Tx) { tree.Insert(tx, k*2, k) })
			}
			rt.Detach(th)
			if partitioned {
				if _, err := rt.StopProfilingAndPartition(); err != nil {
					b.Fatal(err)
				}
			}
			th = rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := rng.Uint64() % 1024
				th.ReadOnlyAtomic(func(tx *stm.Tx) { tree.Contains(tx, k) })
			}
		})
	}
}

// BenchmarkIntsetStructures measures single-thread operation cost per
// structure at 20% updates (the per-structure baseline of the intset
// microbenchmarks).
func BenchmarkIntsetStructures(b *testing.B) {
	for _, kind := range []apps.IntSetKind{apps.SetList, apps.SetSkipList, apps.SetRBTree, apps.SetHash, apps.SetBTree} {
		b.Run(kind.String(), func(b *testing.B) {
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 20})
			th := rt.MustAttach()
			is := apps.NewIntSet(rt, th, apps.IntSetSpec{
				Kind: kind, Name: "b." + kind.String(), KeyRange: 1024, UpdateRatio: 0.2, Buckets: 128,
			})
			defer rt.Detach(th)
			rng := workload.NewRng(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				is.Op(th, rng)
			}
		})
	}
}

// BenchmarkVacationOps measures the reservation transaction cost.
func BenchmarkVacationOps(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	th := rt.MustAttach()
	cfg := apps.DefaultVacationConfig()
	cfg.ItemsPerTable = 256
	cfg.Customers = 256
	v := apps.NewVacation(rt, th, cfg)
	defer rt.Detach(th)
	rng := workload.NewRng(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Op(th, rng)
	}
}

// BenchmarkTracingOverhead measures the per-transaction cost of the
// attempt tracer (one atomic pointer load when detached; one ring-buffer
// store when attached).
func BenchmarkTracingOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
			th := rt.MustAttach()
			defer rt.Detach(th)
			var a stm.Addr
			th.Atomic(func(tx *stm.Tx) {
				a = tx.Alloc(stm.SiteID(0), 1)
				tx.Store(a, 0)
			})
			if traced {
				rt.StartTracing(4096)
				defer rt.StopTracing()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		})
	}
}

// BenchmarkRangeScan measures ordered-structure range scans (B-tree's
// wide nodes vs the binary trees' pointer chases).
func BenchmarkRangeScan(b *testing.B) {
	const n, span = 4096, 256
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 21})
	th := rt.MustAttach()
	defer rt.Detach(th)
	var rb *txds.RBTree
	var bt *txds.BTree
	th.Atomic(func(tx *stm.Tx) {
		rb = txds.NewRBTree(tx, rt, "rs.rb")
		bt = txds.NewBTree(tx, rt, "rs.bt")
	})
	for k := uint64(0); k < n; k++ {
		th.Atomic(func(tx *stm.Tx) {
			rb.Insert(tx, k, k)
			bt.Insert(tx, k, k)
		})
	}
	rng := workload.NewRng(5)
	b.Run("rbtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := rng.Uint64() % (n - span)
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				rb.Range(tx, lo, lo+span, func(k, v uint64) bool { return true })
			})
		}
	})
	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := rng.Uint64() % (n - span)
			th.ReadOnlyAtomic(func(tx *stm.Tx) {
				bt.Range(tx, lo, lo+span, func(k, v uint64) bool { return true })
			})
		}
	})
}

// BenchmarkOpenLoopLatency is the tail-latency smoke guard: a contended
// counter driven open-loop (fixed 50k/s arrival schedule, 4 workers), so
// each op's latency counts from its scheduled due time and queueing
// shows up in the tail. The primary ns/op figure just tracks the
// arrival interval (constant by construction); the guarded figure is the
// p99-ns/op secondary metric, which cmd/benchdiff diffs against the
// checked-in baseline with its own regression threshold.
func BenchmarkOpenLoopLatency(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16})
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
	})
	rt.Detach(setup)
	const rate = 50000.0
	measure := time.Duration(float64(b.N) / rate * float64(time.Second))
	b.ResetTimer()
	res := bench.RunOpenLoop(rt, bench.OpenLoopConfig{
		Threads: 4,
		Rate:    rate,
		Warmup:  5 * time.Millisecond,
		Measure: measure,
		Seed:    11,
	}, func(th *stm.Thread, rng *workload.Rng, _ uint64) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	if res.Ops == 0 {
		b.Fatal("no measured ops")
	}
	b.ReportMetric(float64(res.Latency.Quantile(0.99)), "p99-ns/op")
	b.ReportMetric(res.Achieved, "ops/s")
}

// BenchmarkWALAppend prices the redo log's publish path in isolation:
// each op hands a small commit record to the group-commit ring (Async
// durability, so nothing waits for fsync). This is the fixed cost every
// durable commit adds on top of the STM commit itself.
func BenchmarkWALAppend(b *testing.B) {
	log, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	ops := []wal.Op{{Addr: 64, Val: 1}, {Addr: 65, Val: 2}, {Addr: 66, Val: 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.PublishCommit(uint64(i+1), ops)
	}
	b.StopTimer()
	if !log.Sync() {
		b.Fatal("final sync failed")
	}
}

// BenchmarkCommitSyncDurability measures the full durable commit path:
// small write transactions under DurabilitySync, where every Run parks
// until the group committer reports its LSN fsynced. With concurrent
// committers the fsync amortizes across the group, so per-op cost should
// sit well below one fsync.
func BenchmarkCommitSyncDurability(b *testing.B) {
	rt, err := stm.New(stm.Config{
		HeapWords: 1 << 16,
		WAL: &stm.WALConfig{
			Dir:                 b.TempDir(),
			Durability:          stm.DurabilitySync,
			GroupCommitInterval: 50 * time.Microsecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	setup := rt.MustAttach()
	var base stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		base = tx.Alloc(stm.SiteID(0), 64)
	})
	rt.Detach(setup)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th := rt.MustAttach()
		defer rt.Detach(th)
		slot := stm.Addr(next.Add(1) % 64)
		for pb.Next() {
			th.Run(func(tx *stm.Tx) error {
				tx.Store(base+slot, tx.Load(base+slot)+1)
				return nil
			})
		}
	})
}

// BenchmarkContendedCounter measures throughput of the maximal-contention
// workload under the harness (8 goroutines, interleaving simulation).
func BenchmarkContendedCounter(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, YieldEveryOps: 8})
	setup := rt.MustAttach()
	var a stm.Addr
	setup.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(stm.SiteID(0), 1)
		tx.Store(a, 0)
	})
	rt.Detach(setup)
	b.ResetTimer()
	res := bench.RunOps(rt, 8, b.N/8+1, 3, func(th *stm.Thread, rng *workload.Rng) {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	})
	b.ReportMetric(res.Throughput, "ops/s")
	b.ReportMetric(res.AbortRate, "abort-rate")
}

// BenchmarkNetPipelinedTxn is the network-path tail guard: a loopback
// stmd-equivalent server driven open-loop (fixed 20k/s arrivals, 8
// workers pipelining over 2 connections), each arrival one two-key
// transfer batch through the full stack — client encode, TCP, frame
// decode, pooled Run, response stream, client decode. As with
// BenchmarkOpenLoopLatency the primary ns/op figure just tracks the
// arrival interval; the guarded figure is the coordinated-omission-safe
// p99-ns/op secondary metric diffed by cmd/benchdiff.
func BenchmarkNetPipelinedTxn(b *testing.B) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20, SnapshotHistory: 1 << 10})
	srv, err := server.New(server.Config{Runtime: rt})
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	const nKeys = 64
	key := func(k int) string { return fmt.Sprintf("acct:%d", k) }
	setup, err := stmnet.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	pre := stmnet.NewBatch()
	for k := 0; k < nKeys; k++ {
		pre.Put(key(k), 1<<20)
	}
	if _, err := setup.Do(pre); err != nil {
		b.Fatal(err)
	}
	setup.Close()

	clients := make([]*stmnet.Client, 2)
	for i := range clients {
		if clients[i], err = stmnet.Dial(addr); err != nil {
			b.Fatal(err)
		}
		defer clients[i].Close()
	}

	const rate = 20000.0
	measure := time.Duration(float64(b.N) / rate * float64(time.Second))
	b.ResetTimer()
	res := bench.RunOpenLoopFunc(bench.OpenLoopConfig{
		Threads: 8,
		Rate:    rate,
		Warmup:  5 * time.Millisecond,
		Measure: measure,
		Seed:    13,
	}, func(worker int) (bench.RawOpFunc, func()) {
		c := clients[worker%len(clients)]
		return func(rng *workload.Rng, _ uint64) {
			from := rng.Intn(nKeys)
			to := (from + 1 + rng.Intn(nKeys-1)) % nKeys
			d := uint64(rng.Intn(100) + 1)
			if _, err := c.Do(stmnet.NewBatch().
				Add(key(from), stmnet.Neg(d)).
				Add(key(to), d)); err != nil {
				b.Error(err)
			}
		}, nil
	})
	b.StopTimer()
	if res.Ops == 0 {
		b.Fatal("no measured ops")
	}
	b.ReportMetric(float64(res.Latency.Quantile(0.99)), "p99-ns/op")
	b.ReportMetric(res.Achieved, "ops/s")
}
