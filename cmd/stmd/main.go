// Command stmd serves the transactional store over TCP.
//
// Usage:
//
//	stmd -addr :7437                          # volatile store
//	stmd -addr :7437 -wal /var/lib/stmd -sync # durable: ack ⇒ fsynced
//	stmd -addr :7437 -snapshot 0              # no snapshot-read history
//
// The daemon wraps one stm.Runtime behind the wire protocol (see
// internal/wire): length-prefixed CRC-checked frames carrying batched
// multi-key transactions, pipelined per connection. SIGINT/SIGTERM shut
// down gracefully — stop accepting, drain in-flight transactions, then
// close the runtime (flushing the redo log when one is attached).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/stm"
)

func main() {
	var (
		addr      = flag.String("addr", ":7437", "listen address")
		heapWords = flag.Uint64("heap-words", 1<<22, "transactional heap size in 64-bit words")
		arity     = flag.Int("arity", 8, "value vector size in words per key")
		snapshot  = flag.Uint("snapshot", 1<<16, "snapshot history records per partition (0 disables abort-free read batches)")
		maxAtt    = flag.Int("max-attempts", 64, "per-transaction retry budget (0 = unlimited)")
		walDir    = flag.String("wal", "", "redo-log directory (empty = volatile)")
		sync      = flag.Bool("sync", false, "with -wal: ack only after the commit's redo record is fsynced")
		group     = flag.Duration("group-commit", 0, "with -wal: group-commit coalescing window (0 = library default)")
		latency   = flag.Bool("latency", true, "track per-partition commit-latency histograms")
	)
	flag.Parse()

	cfg := stm.Config{
		HeapWords:       *heapWords,
		SnapshotHistory: *snapshot,
		LatencyStats:    *latency,
	}
	if *walDir != "" {
		d := stm.DurabilityAsync
		if *sync {
			d = stm.DurabilitySync
		}
		cfg.WAL = &stm.WALConfig{Dir: *walDir, Durability: d, GroupCommitInterval: *group}
	} else if *sync {
		log.Fatal("stmd: -sync requires -wal")
	}

	rt, err := stm.New(cfg)
	if err != nil {
		log.Fatalf("stmd: runtime: %v", err)
	}
	if rec := rt.Recovery(); rec != nil {
		log.Printf("stmd: recovered %+v", *rec)
	}

	srv, err := server.New(server.Config{
		Runtime:     rt,
		Arity:       *arity,
		MaxAttempts: *maxAtt,
	})
	if err != nil {
		log.Fatalf("stmd: %v", err)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		log.Printf("stmd: listening on %s (arity=%d, wal=%q, sync=%v)", *addr, *arity, *walDir, *sync)
		errc <- srv.ListenAndServe(*addr)
	}()

	select {
	case sig := <-sigc:
		log.Printf("stmd: %v: draining and closing", sig)
		start := time.Now()
		if err := srv.Close(); err != nil {
			log.Fatalf("stmd: close: %v", err)
		}
		st := srv.Stats()
		log.Printf("stmd: closed in %v (%d conns served, %d txns, %d keys)",
			time.Since(start).Round(time.Millisecond), st.Conns, st.Txns, st.Keys)
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmd: serve: %v\n", err)
			os.Exit(1)
		}
	}
}
