// Command vacation runs the travel-reservation application standalone:
// build tables, profile, partition, tune, run a timed workload, and print
// per-partition statistics plus the tuner's decision trace. It is the
// end-to-end demonstration of the paper's pipeline on one application.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stm"
)

func main() {
	var (
		threads   = flag.Int("threads", 8, "worker threads")
		duration  = flag.Duration("duration", 2*time.Second, "measured window")
		items     = flag.Int("items", 1024, "rows per reservation table")
		customers = flag.Int("customers", 1024, "customer count")
		partition = flag.Bool("partition", true, "enable automatic partitioning + tuning")
		yield     = flag.Uint64("yield", 8, "interleaving simulation (0 = off)")
	)
	flag.Parse()

	rt := stm.MustNew(stm.Config{HeapWords: 1 << 23, YieldEveryOps: *yield})
	cfg := apps.DefaultVacationConfig()
	cfg.ItemsPerTable = *items
	cfg.Customers = *customers

	if *partition {
		rt.StartProfiling()
	}
	setup := rt.MustAttach()
	fmt.Printf("building vacation: %d items/table, %d customers...\n", *items, *customers)
	v := apps.NewVacation(rt, setup, cfg)
	if *partition {
		rng := workload.NewRng(1)
		for i := 0; i < 500; i++ {
			v.Op(setup, rng)
		}
	}
	rt.Detach(setup)

	if *partition {
		plan, err := rt.StopProfilingAndPartition()
		if err != nil {
			fmt.Println("partitioning failed:", err)
			return
		}
		fmt.Print(plan.Describe(rt.Sites()))
		rt.StartTuner(stm.DefaultTunerConfig())
	}

	fmt.Printf("running %v with %d threads...\n", *duration, *threads)
	res := bench.Run(rt, bench.RunConfig{
		Threads: *threads,
		Warmup:  200 * time.Millisecond,
		Measure: *duration,
		Seed:    42,
	}, func(th *stm.Thread, rng *workload.Rng) { v.Op(th, rng) })
	fmt.Println("result:", res)

	fmt.Println("\nper-partition statistics:")
	for _, d := range res.PerPart {
		if d.Commits == 0 && d.TotalAborts() == 0 {
			continue
		}
		fmt.Printf("  %-28s commits=%-9d upd=%.2f reads/tx=%-6.1f abort=%.3f\n",
			d.Name, d.Commits, d.UpdateRatio(), float64(d.Loads)/float64(max(d.Commits, 1)), d.AbortRate())
	}

	if *partition {
		trace := rt.StopTuner()
		fmt.Printf("\ntuner decisions (%d):\n", len(trace))
		for _, d := range trace {
			fmt.Println(" ", d)
		}
	}

	check := rt.MustAttach()
	defer rt.Detach(check)
	if msg := v.CheckInvariants(check); msg != "" {
		fmt.Println("INVARIANT VIOLATION:", msg)
	} else {
		fmt.Println("\ninvariants: OK (seats conserved, trees well-formed)")
	}
}
