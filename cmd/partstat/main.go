// Command partstat runs the partition discovery pass on each benchmark
// application and prints the discovered plan: which allocation sites were
// grouped into which partitions, and the observed site connectivity
// graph. This is the inspection tool for the paper's "automatic
// partitioning" step in isolation.
package main

import (
	"flag"
	"fmt"

	"repro/internal/apps"
	"repro/internal/workload"
	"repro/stm"
)

func main() {
	var (
		app = flag.String("app", "all", "application: intset, vacation, bank, genome, kmeans, or all")
		ops = flag.Int("ops", 1000, "profiling operations to run")
	)
	flag.Parse()

	apps := map[string]func(int){
		"intset":    profileIntset,
		"vacation":  profileVacation,
		"bank":      profileBank,
		"genome":    profileGenome,
		"kmeans":    profileKMeans,
		"labyrinth": profileLabyrinth,
	}
	if *app == "all" {
		for _, name := range []string{"intset", "vacation", "bank", "genome", "kmeans", "labyrinth"} {
			apps[name](*ops)
		}
		return
	}
	f, ok := apps[*app]
	if !ok {
		fmt.Printf("unknown app %q (have intset, vacation, bank, genome, kmeans, all)\n", *app)
		return
	}
	f(*ops)
}

func profileIntset(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	m := apps.NewMultiSet(rt, th, apps.DefaultMultiSetSpecs())
	rng := workload.NewRng(1)
	for i := 0; i < ops; i++ {
		m.Op(th, rng)
	}
	rt.Detach(th)
	report(rt, "intset-multi")
}

func profileVacation(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	v := apps.NewVacation(rt, th, apps.DefaultVacationConfig())
	rng := workload.NewRng(2)
	for i := 0; i < ops; i++ {
		v.Op(th, rng)
	}
	rt.Detach(th)
	report(rt, "vacation")
}

func profileBank(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	cfg := apps.DefaultBankConfig()
	b := apps.NewBank(rt, th, cfg)
	rng := workload.NewRng(3)
	for i := 0; i < ops; i++ {
		b.Op(th, rng, cfg)
	}
	rt.Detach(th)
	report(rt, "bank")
}

func profileGenome(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	g := apps.NewGenome(rt, th, apps.DefaultGenomeConfig())
	rng := workload.NewRng(4)
	for i := 0; i < ops; i++ {
		g.Op(th, rng)
	}
	rt.Detach(th)
	report(rt, "genome")
}

func profileKMeans(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	cfg := apps.DefaultKMeansConfig()
	km := apps.NewKMeans(rt, th, cfg, 11)
	rng := workload.NewRng(5)
	for i := 0; i < ops; i++ {
		km.Op(th, rng, cfg)
	}
	rt.Detach(th)
	report(rt, "kmeans")
}

func profileLabyrinth(ops int) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22})
	rt.StartProfiling()
	th := rt.MustAttach()
	l := apps.NewLabyrinth(rt, th, apps.DefaultLabyrinthConfig())
	rng := workload.NewRng(6)
	for i := 0; i < ops/10; i++ { // routes are long transactions
		l.Op(th, rng)
	}
	rt.Detach(th)
	report(rt, "labyrinth")
}

func report(rt *stm.Runtime, name string) {
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		fmt.Printf("%s: %v\n", name, err)
		return
	}
	fmt.Printf("=== %s ===\n", name)
	fmt.Print(plan.Describe(rt.Sites()))
	fmt.Println()
}
