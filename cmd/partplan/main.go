// Command partplan runs the offline half of the hybrid tuning story:
// profile a benchmark application, install the discovered partitioning,
// let the runtime tuner specialize each partition under load, and emit
// the resulting plan (topology + tuned per-partition configurations) as
// JSON. A later run loads that file with Runtime.LoadAndInstallPlanFile
// and starts already-tuned — the runtime tuner then only tracks drift.
//
// Usage:
//
//	partplan -app vacation -tune 3s -o vacation.plan.json  # atomic, checksummed
//	partplan -app vacation -tune 3s > vacation.plan.json   # plain stdout
//	partplan -app intset -check vacation.plan.json   # validate a file loads
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stm"
)

func main() {
	var (
		app     = flag.String("app", "intset", "application: intset, vacation, bank, genome, kmeans")
		tune    = flag.Duration("tune", 2*time.Second, "tuning window under load before the plan is saved")
		threads = flag.Int("threads", 8, "worker threads during the tuning window")
		yield   = flag.Uint64("yield", 8, "interleaving simulation (see partbench)")
		check   = flag.String("check", "", "instead of generating: validate that this plan file loads against the app's sites")
		out     = flag.String("o", "", "write the plan to this file atomically (checksummed temp file + rename) instead of stdout")
	)
	flag.Parse()

	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22, YieldEveryOps: *yield})
	rt.StartProfiling()
	th := rt.MustAttach()
	op, err := buildApp(rt, th, *app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Warm-up drives the profiler.
	rng := workload.NewRng(1)
	for i := 0; i < 500; i++ {
		op(th, rng)
	}
	rt.Detach(th)

	if *check != "" {
		rt.StopProfiling()
		// LoadAndInstallPlanFile validates the envelope checksum, so a
		// torn or rotted file reports as corrupt rather than half-loading.
		plan, err := rt.LoadAndInstallPlanFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plan does not load: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plan ok: %d partitions\n", plan.NumPartitions())
		return
	}

	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, plan.Describe(rt.Sites()))

	// Tune under load.
	tc := stm.DefaultTunerConfig()
	tc.Interval = 25 * time.Millisecond
	rt.StartTuner(tc)
	bench.Run(rt, bench.RunConfig{
		Threads: *threads,
		Warmup:  0,
		Measure: *tune,
		Seed:    2,
	}, op)
	decisions := rt.StopTuner()
	fmt.Fprintf(os.Stderr, "tuner: %d decisions in %s\n", len(decisions), *tune)

	if *out != "" {
		if err := rt.SavePlanFile(*out, plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "plan written to %s\n", *out)
		return
	}
	if err := rt.SavePlan(os.Stdout, plan); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// buildApp constructs the named application and returns its op function.
func buildApp(rt *stm.Runtime, th *stm.Thread, name string) (bench.OpFunc, error) {
	switch name {
	case "intset":
		m := apps.NewMultiSet(rt, th, apps.DefaultMultiSetSpecs())
		return func(th *stm.Thread, rng *workload.Rng) { m.Op(th, rng) }, nil
	case "vacation":
		v := apps.NewVacation(rt, th, apps.DefaultVacationConfig())
		return func(th *stm.Thread, rng *workload.Rng) { v.Op(th, rng) }, nil
	case "bank":
		cfg := apps.DefaultBankConfig()
		b := apps.NewBank(rt, th, cfg)
		return func(th *stm.Thread, rng *workload.Rng) { b.Op(th, rng, cfg) }, nil
	case "genome":
		g := apps.NewGenome(rt, th, apps.DefaultGenomeConfig())
		return func(th *stm.Thread, rng *workload.Rng) { g.Op(th, rng) }, nil
	case "kmeans":
		cfg := apps.DefaultKMeansConfig()
		km := apps.NewKMeans(rt, th, cfg, 11)
		return func(th *stm.Thread, rng *workload.Rng) { km.Op(th, rng, cfg) }, nil
	default:
		return nil, fmt.Errorf("partplan: unknown app %q (have intset, vacation, bank, genome, kmeans)", name)
	}
}
