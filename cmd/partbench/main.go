// Command partbench regenerates the paper's tables and figures.
//
// Usage:
//
//	partbench -exp fig3                 # one experiment
//	partbench -exp all                  # the whole evaluation
//	partbench -exp fig2 -threads 16 -point 1s -csv
//
// Each experiment prints the rows/series of the corresponding artefact
// (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured notes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1, table2, fig2..fig10, or 'all'; see -list)")
		threads = flag.Int("threads", 8, "maximum worker threads (sweeps use powers of two up to this)")
		point   = flag.Duration("point", 400*time.Millisecond, "measured window per data point")
		warmup  = flag.Duration("warmup", 100*time.Millisecond, "warm-up before each measured window")
		yield   = flag.Uint64("yield", 8, "interleaving simulation: yield every ~N transactional ops (0 = off)")
		quick   = flag.Bool("quick", false, "shrink sweeps and sizes (smoke-test mode)")
		csv     = flag.Bool("csv", false, "append CSV output after each artefact")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		Threads:       *threads,
		PointDuration: *point,
		Warmup:        *warmup,
		YieldEveryOps: *yield,
		Quick:         *quick,
		CSV:           *csv,
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep.Output)
		fmt.Printf(">>> %s [%s]\n\n", rep.Summary, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
