// Command benchdiff compares two BENCH_SMOKE.json artifacts (as produced
// by the CI bench-smoke step) and exits nonzero when any benchmark
// regressed by more than the threshold factor — the trajectory guard that
// keeps the published bench numbers comparable across runs.
//
// Usage:
//
//	benchdiff old.json new.json            # fail on >2x regressions
//	benchdiff -threshold 1.5 old.json new.json
//	benchdiff -metrics p99-ns/op -metric-threshold 2 old.json new.json
//
// Alongside the primary ns/op figure, named secondary metrics (the units
// benchmarks emit via b.ReportMetric; default p99-ns/op) are diffed with
// their own threshold — tail latency is noisier than the mean, so it gets
// an independently tunable guard instead of silently sharing the primary
// one. Only lower-is-better units may be named: values are parsed
// best-of-N, which inverts for throughput-style metrics.
//
// Benchmarks present in only one artifact are ignored (bench sets drift
// as the suite grows); only matched names are compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// smokeArtifact mirrors the JSON written by the CI bench-smoke step.
type smokeArtifact struct {
	Generated string `json:"generated"`
	Commit    string `json:"commit"`
	Root      string `json:"root"`
	Core      string `json:"core"`
}

func load(path string) (map[string]float64, string, *smokeArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", nil, err
	}
	var a smokeArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, "", nil, fmt.Errorf("%s: %w", path, err)
	}
	text := a.Root + "\n" + a.Core
	m := bench.ParseGoBench(text)
	if len(m) == 0 {
		return nil, "", nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return m, text, &a, nil
}

func main() {
	threshold := flag.Float64("threshold", 2.0, "fail when new/old ns/op exceeds this factor")
	metricThreshold := flag.Float64("metric-threshold", 2.0, "fail when a named secondary metric exceeds this factor")
	metrics := flag.String("metrics", "p99-ns/op", "comma-separated lower-is-better secondary metric units to diff ('' disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 2.0] [-metrics p99-ns/op] old.json new.json")
		os.Exit(2)
	}
	oldM, oldText, oldA, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newM, newText, newA, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n", oldA.Commit, oldA.Generated, newA.Commit, newA.Generated)
	rows := bench.CompareBench(oldM, newM, *threshold)
	if len(rows) == 0 {
		fmt.Println("no benchmarks in common; nothing to compare")
		return
	}
	out, breached := bench.FormatComparison(rows, *threshold)
	fmt.Print(out)

	var units []string
	for _, u := range strings.Split(*metrics, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units = append(units, u)
		}
	}
	if len(units) > 0 {
		oldU := bench.ParseGoBenchMetrics(oldText, units)
		newU := bench.ParseGoBenchMetrics(newText, units)
		for _, u := range units {
			mrows := bench.CompareBench(oldU[u], newU[u], *metricThreshold)
			if len(mrows) == 0 {
				continue
			}
			fmt.Printf("\nsecondary metric %s (threshold %.1fx):\n", u, *metricThreshold)
			mout, mbreached := bench.FormatComparison(mrows, *metricThreshold)
			fmt.Print(mout)
			breached = breached || mbreached
		}
	}
	if breached {
		os.Exit(1)
	}
}
