// Command benchdiff compares two BENCH_SMOKE.json artifacts (as produced
// by the CI bench-smoke step) and exits nonzero when any benchmark
// regressed by more than the threshold factor — the trajectory guard that
// keeps the published bench numbers comparable across runs.
//
// Usage:
//
//	benchdiff old.json new.json            # fail on >2x regressions
//	benchdiff -threshold 1.5 old.json new.json
//
// Benchmarks present in only one artifact are ignored (bench sets drift
// as the suite grows); only matched names are compared, by ns/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

// smokeArtifact mirrors the JSON written by the CI bench-smoke step.
type smokeArtifact struct {
	Generated string `json:"generated"`
	Commit    string `json:"commit"`
	Root      string `json:"root"`
	Core      string `json:"core"`
}

func load(path string) (map[string]float64, *smokeArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var a smokeArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := bench.ParseGoBench(a.Root)
	for k, v := range bench.ParseGoBench(a.Core) {
		m[k] = v
	}
	if len(m) == 0 {
		return nil, nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return m, &a, nil
}

func main() {
	threshold := flag.Float64("threshold", 2.0, "fail when new/old ns/op exceeds this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 2.0] old.json new.json")
		os.Exit(2)
	}
	oldM, oldA, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newM, newA, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n", oldA.Commit, oldA.Generated, newA.Commit, newA.Generated)
	rows := bench.CompareBench(oldM, newM, *threshold)
	if len(rows) == 0 {
		fmt.Println("no benchmarks in common; nothing to compare")
		return
	}
	out, breached := bench.FormatComparison(rows, *threshold)
	fmt.Print(out)
	if breached {
		os.Exit(1)
	}
}
