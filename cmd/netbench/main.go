// Command netbench drives open-loop keyed traffic at a running stmd and
// reports coordinated-omission-safe latency percentiles.
//
// Usage:
//
//	stmd -addr :7437 &
//	netbench -addr localhost:7437 -rate 20000 -measure 5s
//	netbench -addr localhost:7437 -rate 5000,10000,20000,40000 -csv
//
// The load is an open-loop schedule (internal/bench.RunOpenLoopFunc):
// arrival i is due at start + i/rate whether or not the server keeps up,
// and each request's latency is measured from its intended start, so
// queueing during server stalls lands in the tail with its true weight.
// Workers multiplex over -conns pipelined connections (several workers
// per connection exercises the request-id pipelining path).
//
// Traffic per arrival: with probability -read-frac, a -batch-key GET
// batch (served from the snapshot store, abort-free, when the server has
// history); otherwise a two-key transfer batch (ADD −d / ADD +d) — the
// conserved-sum workload the integration tests verify.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stmnet"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7437", "stmd address")
		conns    = flag.Int("conns", 4, "client connections (workers share them, pipelining)")
		threads  = flag.Int("threads", 16, "open-loop workers draining the schedule")
		rates    = flag.String("rate", "10000", "offered rates in ops/s, comma-separated sweep")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "unmeasured warm-up per point")
		measure  = flag.Duration("measure", 2*time.Second, "measured window per point")
		keys     = flag.Int("keys", 1<<12, "distinct keys")
		readFrac = flag.Float64("read-frac", 0.5, "fraction of arrivals that are snapshot GET batches")
		batchGet = flag.Int("batch", 8, "keys per GET batch")
		seed     = flag.Uint64("seed", 1, "workload seed")
		csv      = flag.Bool("csv", false, "append CSV rows (rate,achieved,p50,p99,p999,lag)")
	)
	flag.Parse()

	var sweep []float64
	for _, f := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			fmt.Fprintf(os.Stderr, "netbench: bad -rate %q\n", f)
			os.Exit(2)
		}
		sweep = append(sweep, r)
	}

	// Preload the key space so measured traffic never pays first-touch
	// interning, then warm a starting balance into every key.
	setup, err := stmnet.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
		os.Exit(1)
	}
	const seedBalance = 1 << 20
	for base := 0; base < *keys; base += 256 {
		b := stmnet.NewBatch()
		for k := base; k < base+256 && k < *keys; k++ {
			b.Put(keyName(k), seedBalance)
		}
		if _, err := setup.Do(b); err != nil {
			fmt.Fprintf(os.Stderr, "netbench: preload: %v\n", err)
			os.Exit(1)
		}
	}
	setup.Close()

	if *csv {
		fmt.Println("rate,achieved,p50_us,p99_us,p999_us,lag_ms")
	}
	for _, rate := range sweep {
		res, errs := runPoint(*addr, bench.OpenLoopConfig{
			Threads: *threads,
			Rate:    rate,
			Warmup:  *warmup,
			Measure: *measure,
			Seed:    *seed,
		}, *conns, *keys, *readFrac, *batchGet)

		lat := res.Latency
		if *csv {
			fmt.Printf("%.0f,%.0f,%.1f,%.1f,%.1f,%.1f\n",
				rate, res.Achieved,
				us(lat.Quantile(0.50)), us(lat.Quantile(0.99)), us(lat.Quantile(0.999)),
				float64(res.Lag)/float64(time.Millisecond))
		} else {
			fmt.Printf("rate %8.0f/s  achieved %8.0f/s  p50 %8s  p99 %8s  p999 %8s  max %8s  lag %v  errs %d\n",
				rate, res.Achieved,
				time.Duration(lat.Quantile(0.50)), time.Duration(lat.Quantile(0.99)),
				time.Duration(lat.Quantile(0.999)), time.Duration(lat.Max()),
				res.Lag.Round(time.Millisecond), errs)
		}
	}

	// One last connection for the server's view of the run.
	if c, err := stmnet.Dial(*addr); err == nil {
		if p, err := c.Stats(); err == nil {
			fmt.Printf("server: %d txns (%d read-only, %d snapshot), %d aborts (%d snapshot), %d keys, %d collisions\n",
				p.Server.Txns, p.Server.ReadOnlyTxns, p.Server.SnapshotTxns,
				p.Server.TxnAborts, p.Server.SnapshotAborts, p.Server.Keys, p.Server.DirCollisions)
		}
		c.Close()
	}
}

// runPoint measures one offered rate and returns the open-loop result
// plus the number of failed requests (each also costs its worker a
// latency sample recorded at the failure time, so errors do not hide).
func runPoint(addr string, cfg bench.OpenLoopConfig, conns, keys int, readFrac float64, batchGet int) (bench.OpenLoopResult, uint64) {
	clients := make([]*stmnet.Client, conns)
	for i := range clients {
		c, err := stmnet.Dial(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
			os.Exit(1)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var errors atomic.Uint64
	res := bench.RunOpenLoopFunc(cfg, func(worker int) (bench.RawOpFunc, func()) {
		c := clients[worker%len(clients)]
		return func(rng *workload.Rng, i uint64) {
			var b *stmnet.Batch
			if rng.Float64() < readFrac {
				b = stmnet.NewBatch()
				for j := 0; j < batchGet; j++ {
					b.Get(keyName(rng.Intn(keys)))
				}
			} else {
				from, to := rng.Intn(keys), rng.Intn(keys)
				if from == to {
					to = (to + 1) % keys
				}
				d := uint64(rng.Intn(100) + 1)
				b = stmnet.NewBatch().
					Add(keyName(from), stmnet.Neg(d)).
					Add(keyName(to), d)
			}
			if _, err := c.Do(b); err != nil {
				errors.Add(1)
			}
		}, nil
	})
	return res, errors.Load()
}

func keyName(k int) string { return "acct:" + strconv.Itoa(k) }

func us(ns uint64) float64 { return float64(ns) / 1e3 }
