// Vacation: the paper's style of application benchmark as an example —
// a travel reservation system with four independent tables (flights,
// cars, rooms, customers). The example runs the full pipeline: build,
// profile, auto-partition, tune, execute a concurrent booking workload,
// and verify that every seat is accounted for.
package main

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/workload"
	"repro/stm"
)

func main() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 22, YieldEveryOps: 8})

	// Build under profiling so the partitioner sees the pointer graph.
	rt.StartProfiling()
	setup := rt.MustAttach()
	cfg := apps.VacationConfig{
		ItemsPerTable:       512,
		Customers:           512,
		InitialSeats:        20,
		QueriesPerTx:        4,
		UpdateTableRatio:    0.02,
		DeleteCustomerRatio: 0.02,
	}
	v := apps.NewVacation(rt, setup, cfg)
	rng := workload.NewRng(1)
	for i := 0; i < 300; i++ {
		v.Op(setup, rng)
	}
	rt.Detach(setup)

	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Describe(rt.Sites()))
	rt.StartTuner(stm.DefaultTunerConfig())

	// Concurrent booking agents.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			r := workload.NewRng(seed)
			for i := 0; i < 3000; i++ {
				v.Op(th, r)
			}
		}(uint64(w) + 100)
	}
	wg.Wait()
	trace := rt.StopTuner()

	fmt.Println("\nper-partition statistics:")
	for _, s := range rt.Stats() {
		if s.Commits == 0 {
			continue
		}
		fmt.Printf("  %-28s commits=%-7d upd-ratio=%.2f abort-rate=%.3f\n",
			s.Name, s.Commits, s.UpdateRatio(), s.AbortRate())
	}
	fmt.Printf("\ntuner made %d decisions\n", len(trace))
	for _, d := range trace {
		fmt.Println(" ", d)
	}

	check := rt.MustAttach()
	defer rt.Detach(check)
	if msg := v.CheckInvariants(check); msg != "" {
		panic("INVARIANT VIOLATION: " + msg)
	}
	fmt.Println("\ninvariants OK: every reserved seat is accounted for; all trees well-formed")
}
