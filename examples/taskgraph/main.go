// Taskgraph: a work-scheduling pipeline built from the container
// structures — a priority queue of pending tasks, a deque of running
// tasks (stolen from both ends), and a stack of completed task records —
// each discovered as its own partition with its own contention profile.
// The run enables the tuner's contention-manager adaptation (heuristic 3)
// so the hottest partition can switch to older-wins arbitration.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/stm"
	"repro/txds"
)

const (
	producers = 2
	workers   = 4
	tasks     = 4000
)

func main() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20, YieldEveryOps: 8})

	rt.StartProfiling()
	setup := rt.MustAttach()
	var (
		pending *txds.PriorityQueue
		running *txds.Deque
		done    *txds.Stack
	)
	setup.Atomic(func(tx *stm.Tx) {
		pending = txds.NewPriorityQueue(tx, rt, "graph.pending", 1)
		running = txds.NewDeque(tx, rt, "graph.running")
		done = txds.NewStack(tx, rt, "graph.done")
	})
	// Prime each structure so the profiler sees its pointer links.
	setup.Atomic(func(tx *stm.Tx) {
		pending.Insert(tx, 0, 0)
		running.PushBack(tx, 0)
		done.Push(tx, 0)
		pending.PopMin(tx)
		running.PopFront(tx)
		done.Pop(tx)
	})
	rt.Detach(setup)
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Describe(rt.Sites()))

	// Tuner with CM adaptation: the stack and queue ends are single hot
	// words, exactly the case older-wins arbitration protects.
	tc := stm.DefaultTunerConfig()
	tc.Interval = 20 * time.Millisecond
	tc.AdaptCM = true
	tc.ToArbiterConflictRate = 0.05
	tc.MinCommits = 50
	rt.StartTuner(tc)

	var wg sync.WaitGroup
	var produced, completed atomic.Uint64

	// Producers enqueue prioritized tasks.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < tasks/producers; i++ {
				taskID := id*1_000_000 + uint64(i)
				prio := taskID % 17
				th.Atomic(func(tx *stm.Tx) { pending.Insert(tx, prio, taskID) })
				produced.Add(1)
			}
		}(uint64(p))
	}

	// Workers: claim highest-priority task into the running deque, "run"
	// it, then move it to the done stack. Even-numbered workers steal from
	// the front of the running deque, odd ones from the back.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for completed.Load() < tasks {
				var task uint64
				var got bool
				th.Atomic(func(tx *stm.Tx) {
					_, task, got = pending.PopMin(tx)
					if got {
						running.PushBack(tx, task)
					}
				})
				if !got {
					continue
				}
				th.Atomic(func(tx *stm.Tx) {
					var t uint64
					var ok bool
					if id%2 == 0 {
						t, ok = running.PopFront(tx)
					} else {
						t, ok = running.PopBack(tx)
					}
					if ok {
						done.Push(tx, t)
					}
				})
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	decisions := rt.StopTuner()

	check := rt.MustAttach()
	defer rt.Detach(check)
	check.Atomic(func(tx *stm.Tx) {
		fmt.Printf("produced=%d completed(done stack)=%d pending-left=%d running-left=%d\n",
			produced.Load(), done.Len(tx), pending.Len(tx), running.Len(tx))
	})
	for _, s := range rt.Stats() {
		if s.Commits > 0 {
			fmt.Printf("partition %-20s commits=%-7d aborts=%-6d abort-rate=%.3f\n",
				s.Name, s.Commits, s.TotalAborts(), s.AbortRate())
		}
	}
	for _, d := range decisions {
		fmt.Println("tuner:", d)
	}
}
