// Bankaudit: invariant-preserving money transfers with concurrent
// consistent audits, on the options-driven Run API. Demonstrates that
// read-only transactions always see a consistent snapshot (the account
// total never wavers) while update transactions run at full speed, that
// MaxAttempts/OnAbort give callers control over the retry loop — and
// shows the per-partition statistics that drive the runtime tuner.
package main

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

const (
	accounts = 1 << 10
	initBal  = 1000
)

func main() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20, YieldEveryOps: 8})

	setup := rt.MustAttach()
	var arr *txds.CounterArray
	setup.Run(func(tx *stm.Tx) error {
		arr = txds.NewCounterArray(tx, rt, "bank.accounts", accounts, initBal)
		return nil
	})
	rt.Detach(setup)

	var (
		stop      atomic.Bool
		transfers atomic.Uint64
		gaveUp    atomic.Uint64
		retries   atomic.Uint64
		audits    atomic.Uint64
		wg        sync.WaitGroup
	)
	// Transfer workers. Each transfer runs with a bounded retry budget
	// and an abort observer — under pathological contention the worker
	// moves on instead of spinning forever.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for !stop.Load() {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				err := th.Run(func(tx *stm.Tx) error {
					arr.Transfer(tx, from, to, 1+rng.Uint64()%50)
					return nil
				},
					stm.MaxAttempts(64),
					stm.OnAbort(func(stm.AbortCause, int) { retries.Add(1) }))
				if errors.Is(err, stm.ErrMaxAttempts) {
					gaveUp.Add(1)
					continue
				}
				transfers.Add(1)
			}
		}(uint64(w) + 1)
	}
	// Audit workers: full-array read-only scans; every one must see the
	// exact invariant total.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for !stop.Load() {
				var sum uint64
				th.Run(func(tx *stm.Tx) error {
					sum = arr.Sum(tx)
					return nil
				}, stm.ReadOnly())
				if sum != accounts*initBal {
					panic(fmt.Sprintf("audit saw inconsistent total %d", sum))
				}
				audits.Add(1)
			}
		}()
	}

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("transfers: %d (%d retried attempts, %d hit MaxAttempts), audits: %d — every audit saw exactly %d\n",
		transfers.Load(), retries.Load(), gaveUp.Load(), audits.Load(), accounts*initBal)
	s := rt.PartitionStats(stm.GlobalPartition)
	fmt.Printf("commits=%d aborts=%d (validation=%d, locked=%d)\n",
		s.Commits, s.TotalAborts(),
		s.Aborts[stm.AbortValidation],
		s.Aborts[stm.AbortLockedOnRead]+s.Aborts[stm.AbortLockedOnWrite])
}
