// Warmstart: the offline half of the hybrid tuning story as a library
// workflow. Run 1 profiles the application, installs the discovered
// partitioning, lets the tuner specialize it under load, and saves the
// plan as JSON. Run 2 (a fresh runtime standing in for the next process)
// registers the same sites, loads the plan, and starts already
// partitioned and tuned — no profiling pass, no tuner convergence lag.
package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/workload"
	"repro/stm"
)

func main() {
	bankCfg := apps.BankConfig{
		Accounts:       1 << 10,
		InitialBalance: 1000,
		AuditRatio:     0.3, // audit-heavy: long scans writers love to kill
		MaxTransfer:    50,
	}

	// ---- Run 1: discover, tune, save -----------------------------------
	rt1 := stm.MustNew(stm.Config{HeapWords: 1 << 20, YieldEveryOps: 8})
	rt1.StartProfiling()
	th := rt1.MustAttach()
	bank := apps.NewBank(rt1, th, bankCfg)
	rng := workload.NewRng(1)
	for i := 0; i < 300; i++ {
		bank.Op(th, rng, bankCfg)
	}
	rt1.Detach(th)
	plan, err := rt1.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}

	tc := stm.DefaultTunerConfig()
	tc.Interval = 20 * time.Millisecond
	rt1.StartTuner(tc)
	res1 := bench.Run(rt1, bench.RunConfig{Threads: 4, Measure: 1500 * time.Millisecond, Seed: 2},
		func(th *stm.Thread, rng *workload.Rng) { bank.Op(th, rng, bankCfg) })
	decisions := rt1.StopTuner()

	// SavePlanFile writes atomically (checksummed temp file + rename), so
	// a crash mid-save can never leave a half-written plan for run 2.
	planPath := filepath.Join(os.TempDir(), fmt.Sprintf("warmstart-%d.plan.json", os.Getpid()))
	defer os.Remove(planPath)
	if err := rt1.SavePlanFile(planPath, plan); err != nil {
		panic(err)
	}
	saved, _ := os.ReadFile(planPath)
	fmt.Printf("run 1: %.0f ops/s, %d tuner decisions; saved plan:\n%s\n",
		res1.Throughput, len(decisions), saved)

	// ---- Run 2: fresh runtime, warm start ------------------------------
	rt2 := stm.MustNew(stm.Config{HeapWords: 1 << 20, YieldEveryOps: 8})
	// The application registers its sites during construction, so build it
	// first, then install the saved plan (installation re-routes existing
	// and future blocks of those sites).
	th2 := rt2.MustAttach()
	bank2 := apps.NewBank(rt2, th2, bankCfg)
	rt2.Detach(th2)
	loaded, err := rt2.LoadAndInstallPlanFile(planPath)
	if errors.Is(err, stm.ErrCorruptPlan) || errors.Is(err, os.ErrNotExist) {
		// The warm-start contract: a damaged or missing plan file means a
		// cold start, never a crash or a half-installed topology.
		fmt.Println("run 2: plan file unusable, cold start")
		return
	}
	if err != nil {
		panic(err)
	}
	fmt.Printf("run 2: warm-started with %d partitions, no profiling pass\n",
		loaded.NumPartitions())
	for id := 0; id < rt2.NumPartitions(); id++ {
		cfg, _ := rt2.PartitionConfig(stm.PartID(id))
		fmt.Printf("  [%d] %-22s %s\n", id, rt2.PartitionNames()[id], cfg)
	}

	res2 := bench.Run(rt2, bench.RunConfig{Threads: 4, Measure: 1500 * time.Millisecond, Seed: 3},
		func(th *stm.Thread, rng *workload.Rng) { bank2.Op(th, rng, bankCfg) })
	fmt.Printf("run 2: %.0f ops/s with the reloaded configuration (abort rate %.3f)\n",
		res2.Throughput, res2.AbortRate)
}
