// Quickstart: the smallest complete use of the partitioned STM — a
// shared typed counter object and a sorted list updated by concurrent
// goroutines through the options-driven Run API, with automatic
// partitioning discovered from a profiling run.
package main

import (
	"fmt"
	"sync"

	"repro/stm"
	"repro/txds"
)

// Counter is a typed heap object: any pointer-free struct round-trips
// through a stm.Ref handle with one multi-word read or write.
type Counter struct {
	Hits  uint64
	Total uint64
}

func main() {
	// A runtime owns the transactional heap (sized in 64-bit words).
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20})

	// Profiling records which allocation sites are linked by pointers;
	// the partitioner groups them into per-structure partitions.
	rt.StartProfiling()

	counterSite := rt.RegisterSite("quickstart.counter")
	var counter stm.Ref[Counter]
	var list *txds.List
	rt.Run(func(tx *stm.Tx) error {
		counter = stm.AllocRef[Counter](tx, counterSite)
		counter.Store(tx, Counter{})
		list = txds.NewList(tx, rt, "quickstart.list")
		return nil
	})
	// Touch the list so the profiler sees its head→node links.
	rt.Run(func(tx *stm.Tx) error {
		for k := uint64(0); k < 8; k++ {
			list.Insert(tx, k, k*k)
		}
		return nil
	})

	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Describe(rt.Sites()))

	// Concurrent workers: every Run block is one serializable
	// transaction; conflicts retry automatically. Transactions are
	// goroutine-native — workers call rt.Run directly, and the runtime's
	// slot pool hands each hot goroutine the same warm Thread on every
	// call (pin one with rt.MustAttach only to shave that last cost).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rt.Run(func(tx *stm.Tx) error {
					c := counter.Load(tx)
					c.Hits++
					c.Total += id
					counter.Store(tx, c)
					list.Set(tx, id*1000+uint64(i), uint64(i))
					return nil
				})
			}
		}(uint64(w))
	}
	wg.Wait()

	// A read-only transaction: the ReadOnly option takes the cheap
	// no-write-set path (and upgrades transparently if it ever writes).
	rt.Run(func(tx *stm.Tx) error {
		c := counter.Load(tx)
		fmt.Printf("counter hits = %d (want 4000), total = %d (want 6000)\n", c.Hits, c.Total)
		// Workers upsert keys 0..3999; the eight setup keys are a subset.
		fmt.Printf("list size = %d (want 4000)\n", list.Len(tx))
		return nil
	}, stm.ReadOnly())
	for _, s := range rt.Stats() {
		if s.Commits > 0 {
			fmt.Printf("partition %-22s commits=%-6d aborts=%d\n", s.Name, s.Commits, s.TotalAborts())
		}
	}
}
