// Quickstart: the smallest complete use of the partitioned STM — a
// shared counter and a sorted list updated by concurrent goroutines, with
// automatic partitioning discovered from a profiling run.
package main

import (
	"fmt"
	"sync"

	"repro/stm"
	"repro/txds"
)

func main() {
	// A runtime owns the transactional heap (sized in 64-bit words).
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20})

	// Profiling records which allocation sites are linked by pointers;
	// the partitioner groups them into per-structure partitions.
	rt.StartProfiling()

	counterSite := rt.RegisterSite("quickstart.counter")
	setup := rt.MustAttach()
	var counter stm.Addr
	var list *txds.List
	setup.Atomic(func(tx *stm.Tx) {
		counter = tx.Alloc(counterSite, 1)
		tx.Store(counter, 0)
		list = txds.NewList(tx, rt, "quickstart.list")
	})
	// Touch the list so the profiler sees its head→node links.
	setup.Atomic(func(tx *stm.Tx) {
		for k := uint64(0); k < 8; k++ {
			list.Insert(tx, k, k*k)
		}
	})
	rt.Detach(setup)

	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.Describe(rt.Sites()))

	// Concurrent workers: every Atomic block is one serializable
	// transaction; conflicts retry automatically.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < 1000; i++ {
				th.Atomic(func(tx *stm.Tx) {
					tx.Store(counter, tx.Load(counter)+1)
					list.Set(tx, id*1000+uint64(i), uint64(i))
				})
			}
		}(uint64(w))
	}
	wg.Wait()

	check := rt.MustAttach()
	defer rt.Detach(check)
	check.Atomic(func(tx *stm.Tx) {
		fmt.Printf("counter = %d (want 4000)\n", tx.Load(counter))
		// Workers upsert keys 0..3999; the eight setup keys are a subset.
		fmt.Printf("list size = %d (want 4000)\n", list.Len(tx))
	})
	for _, s := range rt.Stats() {
		if s.Commits > 0 {
			fmt.Printf("partition %-22s commits=%-6d aborts=%d\n", s.Name, s.Commits, s.TotalAborts())
		}
	}
}
