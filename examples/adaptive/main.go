// Adaptive: watch the runtime tuner follow a workload phase change live.
// The workload alternates between read-heavy range audits and update-heavy
// whole-array rebalances on one partition; the tuner switches the
// partition between invisible and visible reads and its decision trace is
// printed as it happens.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
	"repro/stm"
	"repro/txds"
)

const slots = 1 << 10

func main() {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 20, YieldEveryOps: 8})
	setup := rt.MustAttach()
	var arr *txds.CounterArray
	setup.Atomic(func(tx *stm.Tx) {
		arr = txds.NewCounterArray(tx, rt, "adaptive.arr", slots, 100)
	})
	rt.Detach(setup)

	tc := stm.DefaultTunerConfig()
	tc.Interval = 25 * time.Millisecond
	tc.Hysteresis = 1
	tc.HillClimb = false
	tc.MinCommits = 50
	rt.StartTuner(tc)

	// updatePhase is flipped by the main goroutine; workers read it.
	var updatePhase atomic.Bool
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			rng := workload.NewRng(seed)
			for !stop.Load() {
				if updatePhase.Load() && rng.Float64() < 0.5 {
					to := rng.Intn(slots)
					th.Atomic(func(tx *stm.Tx) { // long update: scan + move
						maxI, maxV := 0, uint64(0)
						for i := 0; i < slots; i++ {
							if v := arr.Get(tx, i); v > maxV {
								maxV, maxI = v, i
							}
						}
						if maxI != to && maxV > 0 {
							arr.Transfer(tx, maxI, to, 1)
						}
					})
				} else if updatePhase.Load() {
					from, to := rng.Intn(slots), rng.Intn(slots)
					th.Atomic(func(tx *stm.Tx) { arr.Transfer(tx, from, to, 1) })
				} else {
					start := rng.Intn(slots - 128)
					th.ReadOnlyAtomic(func(tx *stm.Tx) { // read-only audit
						var s uint64
						for i := 0; i < 128; i++ {
							s += arr.Get(tx, start+i)
						}
						_ = s
					})
				}
			}
		}(uint64(w) + 3)
	}

	printed := 0
	report := func(label string) {
		cfg, _ := rt.PartitionConfig(stm.GlobalPartition)
		fmt.Printf("[%s] partition config: %s\n", label, cfg)
		for _, d := range rt.TunerTrace()[printed:] {
			fmt.Println("  tuner:", d)
			printed++
		}
	}

	for cycle := 0; cycle < 2; cycle++ {
		updatePhase.Store(false)
		time.Sleep(700 * time.Millisecond)
		report(fmt.Sprintf("cycle %d, after read-heavy phase ", cycle))
		updatePhase.Store(true)
		time.Sleep(700 * time.Millisecond)
		report(fmt.Sprintf("cycle %d, after update-heavy phase", cycle))
	}
	stop.Store(true)
	wg.Wait()
	rt.StopTuner()

	var sum uint64
	th := rt.MustAttach()
	th.ReadOnlyAtomic(func(tx *stm.Tx) { sum = arr.Sum(tx) })
	rt.Detach(th)
	fmt.Printf("final array total: %d (want %d — conserved)\n", sum, slots*100)
}
