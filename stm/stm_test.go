package stm_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/stm"
)

func newRT(t testing.TB) *stm.Runtime {
	t.Helper()
	rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewValidation(t *testing.T) {
	if _, err := stm.New(stm.Config{HeapWords: 10, BlockShift: 8}); err == nil {
		t.Fatal("tiny heap accepted")
	}
	if rt, err := stm.New(stm.Config{}); err != nil || rt == nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	stm.MustNew(stm.Config{HeapWords: 10, BlockShift: 8})
}

func TestBasicTransactions(t *testing.T) {
	rt := newRT(t)
	site := rt.RegisterSite("t.basic")
	th := rt.MustAttach()
	defer rt.Detach(th)
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 2)
		tx.Store(a, 7)
		tx.Store(a+1, 8)
	})
	th.Atomic(func(tx *stm.Tx) {
		if tx.Load(a) != 7 || tx.Load(a+1) != 8 {
			t.Error("values lost")
		}
	})
	if err := th.AtomicErr(func(tx *stm.Tx) error {
		tx.Store(a, 99)
		return fmt.Errorf("user abort")
	}); err == nil {
		t.Fatal("AtomicErr swallowed the error")
	}
	th.Atomic(func(tx *stm.Tx) {
		if got := tx.Load(a); got != 7 {
			t.Errorf("aborted write visible: %d", got)
		}
	})
}

func TestManualPartitionAndReconfigure(t *testing.T) {
	rt := newRT(t)
	rt.RegisterSite("mp.a")
	rt.RegisterSite("mp.b")
	plan, err := rt.ManualPartition(map[string][]string{
		"pa": {"mp.a"},
		"pb": {"mp.b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 3 || rt.NumPartitions() != 3 {
		t.Fatalf("partitions: plan %d, runtime %d", plan.NumPartitions(), rt.NumPartitions())
	}
	names := rt.PartitionNames()
	if names[0] != "global" {
		t.Fatalf("names = %v", names)
	}

	cfg, err := rt.PartitionConfig(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Read = stm.VisibleReads
	if err := rt.Reconfigure(1, cfg); err != nil {
		t.Fatal(err)
	}
	got, _ := rt.PartitionConfig(1)
	if got.Read != stm.VisibleReads {
		t.Fatal("reconfigure did not stick")
	}
	if _, err := rt.PartitionConfig(99); err == nil {
		t.Fatal("config of unknown partition")
	}
	if _, err := rt.ManualPartition(map[string][]string{"x": {"nope"}}); err == nil {
		t.Fatal("unknown site accepted")
	}

	// Allocations route to the right partitions.
	sa, _ := rt.Sites().Lookup("mp.a")
	th := rt.MustAttach()
	defer rt.Detach(th)
	var addr stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		addr = tx.Alloc(sa, 1)
		tx.Store(addr, 1)
	})
	if rt.PartitionOf(addr) != 1 {
		t.Fatalf("addr in partition %d", rt.PartitionOf(addr))
	}

	// Back to the baseline.
	if err := rt.UnPartition(); err != nil {
		t.Fatal(err)
	}
	if rt.NumPartitions() != 1 {
		t.Fatalf("UnPartition left %d partitions", rt.NumPartitions())
	}
}

func TestProfilingPipeline(t *testing.T) {
	rt := newRT(t)
	rt.StartProfiling()
	sHead := rt.RegisterSite("pp.head")
	sNode := rt.RegisterSite("pp.node")
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.Atomic(func(tx *stm.Tx) {
		h := tx.Alloc(sHead, 1)
		n := tx.Alloc(sNode, 2)
		tx.StoreAddr(h, n)
	})
	plan, err := rt.StopProfilingAndPartition()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d\n%s", plan.NumPartitions(), plan.Describe(rt.Sites()))
	}
	if !strings.Contains(plan.Describe(rt.Sites()), "pp") {
		t.Fatal("describe lacks group name")
	}
}

func TestTunerLifecycle(t *testing.T) {
	rt := newRT(t)
	if rt.TunerTrace() != nil {
		t.Fatal("trace without tuner")
	}
	if tr := rt.StopTuner(); tr != nil {
		t.Fatal("StopTuner without StartTuner returned trace")
	}
	cfg := stm.DefaultTunerConfig()
	cfg.Interval = time.Millisecond
	rt.StartTuner(cfg)
	rt.StartTuner(cfg) // idempotent
	time.Sleep(5 * time.Millisecond)
	_ = rt.TunerTrace()
	_ = rt.StopTuner()
}

func TestStatsSurface(t *testing.T) {
	rt := newRT(t)
	th := rt.MustAttach()
	defer rt.Detach(th)
	site := rt.RegisterSite("ss.x")
	var a stm.Addr
	th.Atomic(func(tx *stm.Tx) {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
	})
	for i := 0; i < 5; i++ {
		th.Atomic(func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	all := rt.Stats()
	if len(all) != 1 {
		t.Fatalf("Stats len = %d", len(all))
	}
	one := rt.PartitionStats(stm.GlobalPartition)
	if one.Commits != all[0].Commits || one.Commits < 6 {
		t.Fatalf("commits: %d vs %d", one.Commits, all[0].Commits)
	}
	if rt.HeapInUseBlocks() == 0 {
		t.Fatal("no heap blocks in use")
	}
}

func TestConcurrentFacadeUse(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18, BlockShift: 8, YieldEveryOps: 8})
	site := rt.RegisterSite("cf.slots")
	setup := rt.MustAttach()
	var base stm.Addr
	const slots = 16
	setup.Atomic(func(tx *stm.Tx) {
		base = tx.Alloc(site, slots)
		for i := 0; i < slots; i++ {
			tx.Store(base+stm.Addr(i), 100)
		}
	})
	rt.Detach(setup)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			th := rt.MustAttach()
			defer rt.Detach(th)
			for i := 0; i < 2000; i++ {
				from := stm.Addr(seed+uint64(i)) % slots
				to := stm.Addr(seed+uint64(i)*7+3) % slots
				th.Atomic(func(tx *stm.Tx) {
					v := tx.Load(base + from)
					if v == 0 {
						return
					}
					tx.Store(base+from, v-1)
					tx.Store(base+to, tx.Load(base+to)+1)
				})
			}
		}(uint64(w))
	}
	wg.Wait()
	th := rt.MustAttach()
	defer rt.Detach(th)
	th.ReadOnlyAtomic(func(tx *stm.Tx) {
		var sum uint64
		for i := 0; i < slots; i++ {
			sum += tx.Load(base + stm.Addr(i))
		}
		if sum != slots*100 {
			t.Errorf("sum = %d", sum)
		}
	})
}

func TestDefaultConfigOverride(t *testing.T) {
	cfg := stm.DefaultPartConfig()
	cfg.Read = stm.VisibleReads
	cfg.LockBits = 6
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 18, BlockShift: 8, Default: &cfg})
	got, err := rt.PartitionConfig(stm.GlobalPartition)
	if err != nil {
		t.Fatal(err)
	}
	if got.Read != stm.VisibleReads || got.LockBits != 6 {
		t.Fatalf("default config not applied: %v", got)
	}
}

// TestSnapshotModeFacade exercises the snapshot surface end to end:
// Config.SnapshotHistory attaches stores to every partition,
// Thread.SnapshotAtomic reads a pinned snapshot through writer traffic,
// and SnapshotHistory/stats report the reconstructions.
func TestSnapshotModeFacade(t *testing.T) {
	rt, err := stm.New(stm.Config{HeapWords: 1 << 18, BlockShift: 8, SnapshotHistory: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rt.PartitionConfig(stm.GlobalPartition)
	if err != nil || cfg.HistCap != 256 {
		t.Fatalf("HistCap = %d (%v), want 256", cfg.HistCap, err)
	}

	reader := rt.MustAttach()
	writer := rt.MustAttach()
	defer rt.Detach(reader)
	defer rt.Detach(writer)
	site := rt.RegisterSite("snap.cells")
	const cells = 8
	var base stm.Addr
	writer.Atomic(func(tx *stm.Tx) {
		base = tx.Alloc(site, cells)
		for i := 0; i < cells; i++ {
			tx.Store(base+stm.Addr(i), 5)
		}
	})

	reader.SnapshotAtomic(func(tx *stm.Tx) {
		if got := tx.Load(base); got != 5 {
			t.Errorf("pin read = %d, want 5", got)
		}
		writer.Atomic(func(wtx *stm.Tx) {
			for i := 0; i < cells; i++ {
				wtx.Store(base+stm.Addr(i), 6)
			}
		})
		for i := 1; i < cells; i++ {
			if got := tx.Load(base + stm.Addr(i)); got != 5 {
				t.Errorf("cell %d = %d at pinned snapshot, want 5", i, got)
			}
		}
	})

	hist := rt.SnapshotHistory(stm.GlobalPartition)
	if hist.Cap != 256 || hist.Appends == 0 {
		t.Fatalf("history stats = %+v", hist)
	}
	st := rt.PartitionStats(stm.GlobalPartition)
	if st.SnapHits == 0 {
		t.Fatalf("no snapshot hits in stats: %+v", st)
	}
	if got := rt.SnapshotHistory(stm.PartID(99)); got.Cap != 0 {
		t.Fatalf("unknown partition returned history %+v", got)
	}
}
