package stm_test

import (
	"errors"
	"testing"

	"repro/stm"
)

// driveWorkload runs a fixed deterministic mix of update, read-only and
// snapshot transactions through `via`, which maps each step onto either
// the legacy wrappers or Run+options, and returns the final counter
// values plus the global partition's statistics. Both entrypoints must
// produce identical results and identical books.
type txDriver struct {
	update   func(th *stm.Thread, fn func(*stm.Tx))
	readOnly func(th *stm.Thread, fn func(*stm.Tx))
	snapshot func(th *stm.Thread, fn func(*stm.Tx))
	withErr  func(th *stm.Thread, fn func(*stm.Tx) error) error
}

func wrapperDriver() txDriver {
	return txDriver{
		update:   func(th *stm.Thread, fn func(*stm.Tx)) { th.Atomic(fn) },
		readOnly: func(th *stm.Thread, fn func(*stm.Tx)) { th.ReadOnlyAtomic(fn) },
		snapshot: func(th *stm.Thread, fn func(*stm.Tx)) { th.SnapshotAtomic(fn) },
		withErr:  func(th *stm.Thread, fn func(*stm.Tx) error) error { return th.AtomicErr(fn) },
	}
}

func runDriver() txDriver {
	void := func(fn func(*stm.Tx)) func(*stm.Tx) error {
		return func(tx *stm.Tx) error { fn(tx); return nil }
	}
	return txDriver{
		update:   func(th *stm.Thread, fn func(*stm.Tx)) { th.Run(void(fn)) },
		readOnly: func(th *stm.Thread, fn func(*stm.Tx)) { th.Run(void(fn), stm.ReadOnly()) },
		snapshot: func(th *stm.Thread, fn func(*stm.Tx)) { th.Run(void(fn), stm.Snapshot()) },
		withErr:  func(th *stm.Thread, fn func(*stm.Tx) error) error { return th.Run(fn) },
	}
}

func driveWorkload(t *testing.T, d txDriver) ([]uint64, stm.PartStats) {
	t.Helper()
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 16, SnapshotHistory: 256})
	site := rt.RegisterSite("eq.slots")
	th := rt.MustAttach()
	defer rt.Detach(th)
	const n = 64
	var base stm.Addr
	d.update(th, func(tx *stm.Tx) {
		base = tx.Alloc(site, n)
		for i := 0; i < n; i++ {
			tx.Store(base+stm.Addr(i), uint64(i))
		}
	})
	for round := 0; round < 10; round++ {
		d.update(th, func(tx *stm.Tx) {
			for i := 0; i < n; i += 2 {
				tx.Store(base+stm.Addr(i), tx.Load(base+stm.Addr(i))+1)
			}
		})
		d.readOnly(th, func(tx *stm.Tx) {
			var s uint64
			for i := 0; i < n; i++ {
				s += tx.Load(base + stm.Addr(i))
			}
			_ = s
		})
		d.snapshot(th, func(tx *stm.Tx) {
			var s uint64
			tx.LoadRange(base, n, func(_ int, v uint64) bool { s += v; return true })
			_ = s
		})
		// A read-only hint that writes: both entrypoints must upgrade.
		d.readOnly(th, func(tx *stm.Tx) {
			tx.Store(base+stm.Addr(1), tx.Load(base+stm.Addr(1))+1)
		})
		// A user error: both entrypoints must roll back and surface it.
		if err := d.withErr(th, func(tx *stm.Tx) error {
			tx.Store(base, 99999)
			return errSentinel{}
		}); err != (errSentinel{}) {
			t.Fatalf("user error = %v, want sentinel", err)
		}
	}
	vals := make([]uint64, n)
	d.readOnly(th, func(tx *stm.Tx) {
		for i := 0; i < n; i++ {
			vals[i] = tx.Load(base + stm.Addr(i))
		}
	})
	return vals, rt.PartitionStats(stm.GlobalPartition)
}

// TestRunEquivalence proves the deprecated wrappers and Run with the
// corresponding options execute bit-for-bit alike: same final heap
// state, and the same statistics footprint (commit counts by kind,
// loads, stores, upgrade aborts) over a deterministic single-thread mix.
func TestRunEquivalence(t *testing.T) {
	wVals, wStats := driveWorkload(t, wrapperDriver())
	rVals, rStats := driveWorkload(t, runDriver())
	for i := range wVals {
		if wVals[i] != rVals[i] {
			t.Fatalf("heap diverged at word %d: wrappers %d, Run %d", i, wVals[i], rVals[i])
		}
	}
	if wStats.Commits != rStats.Commits ||
		wStats.UpdateCommits != rStats.UpdateCommits ||
		wStats.ROCommits != rStats.ROCommits ||
		wStats.Loads != rStats.Loads ||
		wStats.Stores != rStats.Stores ||
		wStats.TotalAborts() != rStats.TotalAborts() ||
		wStats.Aborts[stm.AbortUpgrade] != rStats.Aborts[stm.AbortUpgrade] ||
		wStats.SnapHits != rStats.SnapHits ||
		wStats.SnapMisses != rStats.SnapMisses {
		t.Fatalf("statistics diverged:\nwrappers: %+v\nrun:      %+v", wStats, rStats)
	}
}

// TestRunMaxAttempts checks the bounded retry loop: a transaction that
// explicitly aborts every attempt exhausts its budget, returns
// ErrMaxAttempts, leaves no effects behind, and reports every attempt to
// the OnAbort hook with its cause.
func TestRunMaxAttempts(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	site := rt.RegisterSite("ma")
	th := rt.MustAttach()
	defer rt.Detach(th)
	var a stm.Addr
	th.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(site, 1)
		tx.Store(a, 7)
		return nil
	})

	var causes []stm.AbortCause
	var attempts []int
	err := th.Run(func(tx *stm.Tx) error {
		tx.Store(a, 1000)
		tx.Abort()
		return nil
	},
		stm.MaxAttempts(3),
		stm.OnAbort(func(c stm.AbortCause, attempt int) {
			causes = append(causes, c)
			attempts = append(attempts, attempt)
		}))
	if !errors.Is(err, stm.ErrMaxAttempts) {
		t.Fatalf("err = %v, want ErrMaxAttempts", err)
	}
	if len(causes) != 3 {
		t.Fatalf("OnAbort fired %d times, want 3", len(causes))
	}
	for i, c := range causes {
		if c != stm.AbortExplicit {
			t.Fatalf("cause[%d] = %v, want AbortExplicit", i, c)
		}
		if attempts[i] != i+1 {
			t.Fatalf("attempt[%d] = %d, want %d", i, attempts[i], i+1)
		}
	}
	th.Run(func(tx *stm.Tx) error {
		if got := tx.Load(a); got != 7 {
			t.Fatalf("exhausted transaction leaked a store: %d", got)
		}
		return nil
	}, stm.ReadOnly())

	// A committing transaction under a budget returns nil.
	if err := th.Run(func(tx *stm.Tx) error {
		tx.Store(a, 8)
		return nil
	}, stm.MaxAttempts(1)); err != nil {
		t.Fatalf("committing Run with budget returned %v", err)
	}
}

// TestRunUpgradeCountsAgainstBudget pins the documented MaxAttempts
// accounting: the internal read-only→update upgrade restart consumes an
// attempt and is visible to OnAbort.
func TestRunUpgradeCountsAgainstBudget(t *testing.T) {
	rt := stm.MustNew(stm.Config{HeapWords: 1 << 14})
	site := rt.RegisterSite("up")
	th := rt.MustAttach()
	defer rt.Detach(th)
	var a stm.Addr
	th.Run(func(tx *stm.Tx) error {
		a = tx.Alloc(site, 1)
		tx.Store(a, 0)
		return nil
	})
	var sawUpgrade bool
	err := th.Run(func(tx *stm.Tx) error {
		tx.Store(a, 1) // write in a read-only transaction: upgrade restart
		return nil
	},
		stm.ReadOnly(),
		stm.MaxAttempts(2),
		stm.OnAbort(func(c stm.AbortCause, _ int) {
			if c == stm.AbortUpgrade {
				sawUpgrade = true
			}
		}))
	if err != nil {
		t.Fatalf("upgraded Run failed: %v", err)
	}
	if !sawUpgrade {
		t.Fatal("OnAbort did not observe the upgrade restart")
	}
	th.Run(func(tx *stm.Tx) error {
		if got := tx.Load(a); got != 1 {
			t.Fatalf("upgraded store lost: %d", got)
		}
		return nil
	}, stm.ReadOnly())
}

// TestSnapshotHistoryConflict covers the Config.Default/SnapshotHistory
// precedence contract: filling an unset HistCap is fine, agreeing values
// are fine, conflicting nonzero values are a construction error.
func TestSnapshotHistoryConflict(t *testing.T) {
	def := stm.DefaultPartConfig()
	def.HistCap = 128
	if _, err := stm.New(stm.Config{HeapWords: 1 << 14, Default: &def, SnapshotHistory: 256}); err == nil {
		t.Fatal("conflicting HistCap/SnapshotHistory accepted")
	}
	rt, err := stm.New(stm.Config{HeapWords: 1 << 14, Default: &def, SnapshotHistory: 128})
	if err != nil {
		t.Fatalf("agreeing HistCap/SnapshotHistory rejected: %v", err)
	}
	if cfg, _ := rt.PartitionConfig(stm.GlobalPartition); cfg.HistCap != 128 {
		t.Fatalf("HistCap = %d, want 128", cfg.HistCap)
	}
	def2 := stm.DefaultPartConfig() // HistCap unset: SnapshotHistory fills it
	rt2, err := stm.New(stm.Config{HeapWords: 1 << 14, Default: &def2, SnapshotHistory: 64})
	if err != nil {
		t.Fatalf("merge rejected: %v", err)
	}
	if cfg, _ := rt2.PartitionConfig(stm.GlobalPartition); cfg.HistCap != 64 {
		t.Fatalf("HistCap = %d, want 64", cfg.HistCap)
	}
	// And the caller's struct is never written to.
	if def.HistCap != 128 || def2.HistCap != 0 {
		t.Fatalf("New mutated the caller's Config.Default (HistCap %d, %d)", def.HistCap, def2.HistCap)
	}
}
